file(REMOVE_RECURSE
  "CMakeFiles/storage_exec_test.dir/storage_exec_test.cc.o"
  "CMakeFiles/storage_exec_test.dir/storage_exec_test.cc.o.d"
  "storage_exec_test"
  "storage_exec_test.pdb"
  "storage_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
