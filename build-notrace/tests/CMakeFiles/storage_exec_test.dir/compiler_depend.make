# Empty compiler generated dependencies file for storage_exec_test.
# This may be replaced when dependencies are built.
