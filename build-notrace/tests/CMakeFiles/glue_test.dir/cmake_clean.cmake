file(REMOVE_RECURSE
  "CMakeFiles/glue_test.dir/glue_test.cc.o"
  "CMakeFiles/glue_test.dir/glue_test.cc.o.d"
  "glue_test"
  "glue_test.pdb"
  "glue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
