# Empty compiler generated dependencies file for glue_test.
# This may be replaced when dependencies are built.
