# Empty dependencies file for glue_test.
# This may be replaced when dependencies are built.
