# Empty dependencies file for dsl_printer_test.
# This may be replaced when dependencies are built.
