# Empty compiler generated dependencies file for dsl_printer_test.
# This may be replaced when dependencies are built.
