file(REMOVE_RECURSE
  "CMakeFiles/dsl_printer_test.dir/dsl_printer_test.cc.o"
  "CMakeFiles/dsl_printer_test.dir/dsl_printer_test.cc.o.d"
  "dsl_printer_test"
  "dsl_printer_test.pdb"
  "dsl_printer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
