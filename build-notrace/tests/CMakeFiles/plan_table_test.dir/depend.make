# Empty dependencies file for plan_table_test.
# This may be replaced when dependencies are built.
