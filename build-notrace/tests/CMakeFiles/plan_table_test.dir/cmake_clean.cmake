file(REMOVE_RECURSE
  "CMakeFiles/plan_table_test.dir/plan_table_test.cc.o"
  "CMakeFiles/plan_table_test.dir/plan_table_test.cc.o.d"
  "plan_table_test"
  "plan_table_test.pdb"
  "plan_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
