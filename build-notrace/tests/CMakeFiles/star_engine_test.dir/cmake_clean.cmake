file(REMOVE_RECURSE
  "CMakeFiles/star_engine_test.dir/star_engine_test.cc.o"
  "CMakeFiles/star_engine_test.dir/star_engine_test.cc.o.d"
  "star_engine_test"
  "star_engine_test.pdb"
  "star_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
