# Empty dependencies file for star_engine_test.
# This may be replaced when dependencies are built.
