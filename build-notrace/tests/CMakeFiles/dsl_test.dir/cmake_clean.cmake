file(REMOVE_RECURSE
  "CMakeFiles/dsl_test.dir/dsl_test.cc.o"
  "CMakeFiles/dsl_test.dir/dsl_test.cc.o.d"
  "dsl_test"
  "dsl_test.pdb"
  "dsl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
