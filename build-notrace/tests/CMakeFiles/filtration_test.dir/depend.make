# Empty dependencies file for filtration_test.
# This may be replaced when dependencies are built.
