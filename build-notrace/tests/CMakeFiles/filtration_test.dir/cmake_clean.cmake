file(REMOVE_RECURSE
  "CMakeFiles/filtration_test.dir/filtration_test.cc.o"
  "CMakeFiles/filtration_test.dir/filtration_test.cc.o.d"
  "filtration_test"
  "filtration_test.pdb"
  "filtration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filtration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
