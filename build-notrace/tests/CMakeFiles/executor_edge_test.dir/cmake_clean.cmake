file(REMOVE_RECURSE
  "CMakeFiles/executor_edge_test.dir/executor_edge_test.cc.o"
  "CMakeFiles/executor_edge_test.dir/executor_edge_test.cc.o.d"
  "executor_edge_test"
  "executor_edge_test.pdb"
  "executor_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
