# Empty dependencies file for executor_edge_test.
# This may be replaced when dependencies are built.
