file(REMOVE_RECURSE
  "CMakeFiles/optimizer_property_test.dir/optimizer_property_test.cc.o"
  "CMakeFiles/optimizer_property_test.dir/optimizer_property_test.cc.o.d"
  "optimizer_property_test"
  "optimizer_property_test.pdb"
  "optimizer_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
