# Empty dependencies file for access_strategies_test.
# This may be replaced when dependencies are built.
