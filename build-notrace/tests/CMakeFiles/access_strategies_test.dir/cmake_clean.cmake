file(REMOVE_RECURSE
  "CMakeFiles/access_strategies_test.dir/access_strategies_test.cc.o"
  "CMakeFiles/access_strategies_test.dir/access_strategies_test.cc.o.d"
  "access_strategies_test"
  "access_strategies_test.pdb"
  "access_strategies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_strategies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
