file(REMOVE_RECURSE
  "CMakeFiles/bench_star_vs_transform.dir/bench_star_vs_transform.cc.o"
  "CMakeFiles/bench_star_vs_transform.dir/bench_star_vs_transform.cc.o.d"
  "bench_star_vs_transform"
  "bench_star_vs_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_star_vs_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
