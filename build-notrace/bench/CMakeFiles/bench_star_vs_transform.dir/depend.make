# Empty dependencies file for bench_star_vs_transform.
# This may be replaced when dependencies are built.
