# Empty compiler generated dependencies file for bench_figure3_glue.
# This may be replaced when dependencies are built.
