file(REMOVE_RECURSE
  "CMakeFiles/bench_figure3_glue.dir/bench_figure3_glue.cc.o"
  "CMakeFiles/bench_figure3_glue.dir/bench_figure3_glue.cc.o.d"
  "bench_figure3_glue"
  "bench_figure3_glue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure3_glue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
