# Empty compiler generated dependencies file for bench_figure2_properties.
# This may be replaced when dependencies are built.
