file(REMOVE_RECURSE
  "CMakeFiles/bench_figure2_properties.dir/bench_figure2_properties.cc.o"
  "CMakeFiles/bench_figure2_properties.dir/bench_figure2_properties.cc.o.d"
  "bench_figure2_properties"
  "bench_figure2_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure2_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
