file(REMOVE_RECURSE
  "CMakeFiles/bench_access_paths.dir/bench_access_paths.cc.o"
  "CMakeFiles/bench_access_paths.dir/bench_access_paths.cc.o.d"
  "bench_access_paths"
  "bench_access_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_access_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
