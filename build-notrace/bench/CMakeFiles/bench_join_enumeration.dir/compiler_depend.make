# Empty compiler generated dependencies file for bench_join_enumeration.
# This may be replaced when dependencies are built.
