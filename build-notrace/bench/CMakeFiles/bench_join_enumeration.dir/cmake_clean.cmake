file(REMOVE_RECURSE
  "CMakeFiles/bench_join_enumeration.dir/bench_join_enumeration.cc.o"
  "CMakeFiles/bench_join_enumeration.dir/bench_join_enumeration.cc.o.d"
  "bench_join_enumeration"
  "bench_join_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
