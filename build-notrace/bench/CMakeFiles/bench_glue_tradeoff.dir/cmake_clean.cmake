file(REMOVE_RECURSE
  "CMakeFiles/bench_glue_tradeoff.dir/bench_glue_tradeoff.cc.o"
  "CMakeFiles/bench_glue_tradeoff.dir/bench_glue_tradeoff.cc.o.d"
  "bench_glue_tradeoff"
  "bench_glue_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_glue_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
