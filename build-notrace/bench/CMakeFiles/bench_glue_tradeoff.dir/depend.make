# Empty dependencies file for bench_glue_tradeoff.
# This may be replaced when dependencies are built.
