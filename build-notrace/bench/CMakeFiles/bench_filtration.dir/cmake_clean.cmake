file(REMOVE_RECURSE
  "CMakeFiles/bench_filtration.dir/bench_filtration.cc.o"
  "CMakeFiles/bench_filtration.dir/bench_filtration.cc.o.d"
  "bench_filtration"
  "bench_filtration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_filtration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
