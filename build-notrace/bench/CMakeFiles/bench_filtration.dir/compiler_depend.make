# Empty compiler generated dependencies file for bench_filtration.
# This may be replaced when dependencies are built.
