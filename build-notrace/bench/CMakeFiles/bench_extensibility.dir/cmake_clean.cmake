file(REMOVE_RECURSE
  "CMakeFiles/bench_extensibility.dir/bench_extensibility.cc.o"
  "CMakeFiles/bench_extensibility.dir/bench_extensibility.cc.o.d"
  "bench_extensibility"
  "bench_extensibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extensibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
