# Empty compiler generated dependencies file for bench_extensibility.
# This may be replaced when dependencies are built.
