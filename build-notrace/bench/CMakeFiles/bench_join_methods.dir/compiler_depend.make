# Empty compiler generated dependencies file for bench_join_methods.
# This may be replaced when dependencies are built.
