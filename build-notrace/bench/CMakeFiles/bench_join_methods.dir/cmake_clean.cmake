file(REMOVE_RECURSE
  "CMakeFiles/bench_join_methods.dir/bench_join_methods.cc.o"
  "CMakeFiles/bench_join_methods.dir/bench_join_methods.cc.o.d"
  "bench_join_methods"
  "bench_join_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
