file(REMOVE_RECURSE
  "CMakeFiles/bench_interpreter.dir/bench_interpreter.cc.o"
  "CMakeFiles/bench_interpreter.dir/bench_interpreter.cc.o.d"
  "bench_interpreter"
  "bench_interpreter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interpreter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
