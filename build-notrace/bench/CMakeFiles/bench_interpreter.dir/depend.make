# Empty dependencies file for bench_interpreter.
# This may be replaced when dependencies are built.
