
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/pattern.cc" "src/CMakeFiles/starburst.dir/baseline/pattern.cc.o" "gcc" "src/CMakeFiles/starburst.dir/baseline/pattern.cc.o.d"
  "/root/repo/src/baseline/transform_optimizer.cc" "src/CMakeFiles/starburst.dir/baseline/transform_optimizer.cc.o" "gcc" "src/CMakeFiles/starburst.dir/baseline/transform_optimizer.cc.o.d"
  "/root/repo/src/baseline/transform_rules.cc" "src/CMakeFiles/starburst.dir/baseline/transform_rules.cc.o" "gcc" "src/CMakeFiles/starburst.dir/baseline/transform_rules.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/starburst.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/starburst.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/synthetic.cc" "src/CMakeFiles/starburst.dir/catalog/synthetic.cc.o" "gcc" "src/CMakeFiles/starburst.dir/catalog/synthetic.cc.o.d"
  "/root/repo/src/common/fault_injector.cc" "src/CMakeFiles/starburst.dir/common/fault_injector.cc.o" "gcc" "src/CMakeFiles/starburst.dir/common/fault_injector.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/starburst.dir/common/status.cc.o" "gcc" "src/CMakeFiles/starburst.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/starburst.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/starburst.dir/common/strings.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/starburst.dir/common/value.cc.o" "gcc" "src/CMakeFiles/starburst.dir/common/value.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "src/CMakeFiles/starburst.dir/cost/cost_model.cc.o" "gcc" "src/CMakeFiles/starburst.dir/cost/cost_model.cc.o.d"
  "/root/repo/src/cost/selectivity.cc" "src/CMakeFiles/starburst.dir/cost/selectivity.cc.o" "gcc" "src/CMakeFiles/starburst.dir/cost/selectivity.cc.o.d"
  "/root/repo/src/exec/evaluator.cc" "src/CMakeFiles/starburst.dir/exec/evaluator.cc.o" "gcc" "src/CMakeFiles/starburst.dir/exec/evaluator.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/starburst.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/starburst.dir/exec/executor.cc.o.d"
  "/root/repo/src/glue/glue.cc" "src/CMakeFiles/starburst.dir/glue/glue.cc.o" "gcc" "src/CMakeFiles/starburst.dir/glue/glue.cc.o.d"
  "/root/repo/src/obs/metrics.cc" "src/CMakeFiles/starburst.dir/obs/metrics.cc.o" "gcc" "src/CMakeFiles/starburst.dir/obs/metrics.cc.o.d"
  "/root/repo/src/obs/trace.cc" "src/CMakeFiles/starburst.dir/obs/trace.cc.o" "gcc" "src/CMakeFiles/starburst.dir/obs/trace.cc.o.d"
  "/root/repo/src/optimizer/enumerator.cc" "src/CMakeFiles/starburst.dir/optimizer/enumerator.cc.o" "gcc" "src/CMakeFiles/starburst.dir/optimizer/enumerator.cc.o.d"
  "/root/repo/src/optimizer/governor.cc" "src/CMakeFiles/starburst.dir/optimizer/governor.cc.o" "gcc" "src/CMakeFiles/starburst.dir/optimizer/governor.cc.o.d"
  "/root/repo/src/optimizer/greedy_enumerator.cc" "src/CMakeFiles/starburst.dir/optimizer/greedy_enumerator.cc.o" "gcc" "src/CMakeFiles/starburst.dir/optimizer/greedy_enumerator.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/starburst.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/starburst.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/plan_table.cc" "src/CMakeFiles/starburst.dir/optimizer/plan_table.cc.o" "gcc" "src/CMakeFiles/starburst.dir/optimizer/plan_table.cc.o.d"
  "/root/repo/src/plan/explain.cc" "src/CMakeFiles/starburst.dir/plan/explain.cc.o" "gcc" "src/CMakeFiles/starburst.dir/plan/explain.cc.o.d"
  "/root/repo/src/plan/operator.cc" "src/CMakeFiles/starburst.dir/plan/operator.cc.o" "gcc" "src/CMakeFiles/starburst.dir/plan/operator.cc.o.d"
  "/root/repo/src/plan/plan.cc" "src/CMakeFiles/starburst.dir/plan/plan.cc.o" "gcc" "src/CMakeFiles/starburst.dir/plan/plan.cc.o.d"
  "/root/repo/src/plan/validate.cc" "src/CMakeFiles/starburst.dir/plan/validate.cc.o" "gcc" "src/CMakeFiles/starburst.dir/plan/validate.cc.o.d"
  "/root/repo/src/properties/property.cc" "src/CMakeFiles/starburst.dir/properties/property.cc.o" "gcc" "src/CMakeFiles/starburst.dir/properties/property.cc.o.d"
  "/root/repo/src/properties/property_functions.cc" "src/CMakeFiles/starburst.dir/properties/property_functions.cc.o" "gcc" "src/CMakeFiles/starburst.dir/properties/property_functions.cc.o.d"
  "/root/repo/src/query/expr.cc" "src/CMakeFiles/starburst.dir/query/expr.cc.o" "gcc" "src/CMakeFiles/starburst.dir/query/expr.cc.o.d"
  "/root/repo/src/query/predicate.cc" "src/CMakeFiles/starburst.dir/query/predicate.cc.o" "gcc" "src/CMakeFiles/starburst.dir/query/predicate.cc.o.d"
  "/root/repo/src/query/query.cc" "src/CMakeFiles/starburst.dir/query/query.cc.o" "gcc" "src/CMakeFiles/starburst.dir/query/query.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/starburst.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/starburst.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/starburst.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/starburst.dir/sql/parser.cc.o.d"
  "/root/repo/src/star/builtins.cc" "src/CMakeFiles/starburst.dir/star/builtins.cc.o" "gcc" "src/CMakeFiles/starburst.dir/star/builtins.cc.o.d"
  "/root/repo/src/star/default_rules.cc" "src/CMakeFiles/starburst.dir/star/default_rules.cc.o" "gcc" "src/CMakeFiles/starburst.dir/star/default_rules.cc.o.d"
  "/root/repo/src/star/dsl_lexer.cc" "src/CMakeFiles/starburst.dir/star/dsl_lexer.cc.o" "gcc" "src/CMakeFiles/starburst.dir/star/dsl_lexer.cc.o.d"
  "/root/repo/src/star/dsl_parser.cc" "src/CMakeFiles/starburst.dir/star/dsl_parser.cc.o" "gcc" "src/CMakeFiles/starburst.dir/star/dsl_parser.cc.o.d"
  "/root/repo/src/star/dsl_printer.cc" "src/CMakeFiles/starburst.dir/star/dsl_printer.cc.o" "gcc" "src/CMakeFiles/starburst.dir/star/dsl_printer.cc.o.d"
  "/root/repo/src/star/engine.cc" "src/CMakeFiles/starburst.dir/star/engine.cc.o" "gcc" "src/CMakeFiles/starburst.dir/star/engine.cc.o.d"
  "/root/repo/src/star/rule.cc" "src/CMakeFiles/starburst.dir/star/rule.cc.o" "gcc" "src/CMakeFiles/starburst.dir/star/rule.cc.o.d"
  "/root/repo/src/storage/datagen.cc" "src/CMakeFiles/starburst.dir/storage/datagen.cc.o" "gcc" "src/CMakeFiles/starburst.dir/storage/datagen.cc.o.d"
  "/root/repo/src/storage/index.cc" "src/CMakeFiles/starburst.dir/storage/index.cc.o" "gcc" "src/CMakeFiles/starburst.dir/storage/index.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/starburst.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/starburst.dir/storage/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
