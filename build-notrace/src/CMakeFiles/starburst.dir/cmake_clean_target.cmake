file(REMOVE_RECURSE
  "libstarburst.a"
)
