# Empty compiler generated dependencies file for starburst.
# This may be replaced when dependencies are built.
