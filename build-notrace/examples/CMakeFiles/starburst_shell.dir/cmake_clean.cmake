file(REMOVE_RECURSE
  "CMakeFiles/starburst_shell.dir/starburst_shell.cpp.o"
  "CMakeFiles/starburst_shell.dir/starburst_shell.cpp.o.d"
  "starburst_shell"
  "starburst_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starburst_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
