# Empty compiler generated dependencies file for starburst_shell.
# This may be replaced when dependencies are built.
