# Empty dependencies file for rule_dsl_tour.
# This may be replaced when dependencies are built.
