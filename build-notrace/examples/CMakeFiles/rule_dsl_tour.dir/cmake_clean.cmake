file(REMOVE_RECURSE
  "CMakeFiles/rule_dsl_tour.dir/rule_dsl_tour.cpp.o"
  "CMakeFiles/rule_dsl_tour.dir/rule_dsl_tour.cpp.o.d"
  "rule_dsl_tour"
  "rule_dsl_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_dsl_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
