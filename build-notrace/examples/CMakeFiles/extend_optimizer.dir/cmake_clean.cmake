file(REMOVE_RECURSE
  "CMakeFiles/extend_optimizer.dir/extend_optimizer.cpp.o"
  "CMakeFiles/extend_optimizer.dir/extend_optimizer.cpp.o.d"
  "extend_optimizer"
  "extend_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extend_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
