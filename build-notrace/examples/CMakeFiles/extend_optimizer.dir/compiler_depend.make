# Empty compiler generated dependencies file for extend_optimizer.
# This may be replaced when dependencies are built.
