# Empty dependencies file for distributed_query.
# This may be replaced when dependencies are built.
