file(REMOVE_RECURSE
  "CMakeFiles/distributed_query.dir/distributed_query.cpp.o"
  "CMakeFiles/distributed_query.dir/distributed_query.cpp.o.d"
  "distributed_query"
  "distributed_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
