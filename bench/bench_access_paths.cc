// Experiment E9 (DESIGN.md): the §4 "omitted STAR" access strategies —
// TID-sorting before GET and index ANDing — across a selectivity sweep,
// showing where each single-table access plan shape wins.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "plan/explain.h"

namespace starburst {
namespace {

ColumnDef Col(const char* name, double distinct, double width = 8.0) {
  ColumnDef c;
  c.name = name;
  c.distinct_values = distinct;
  c.min_value = 0;
  c.max_value = distinct - 1;
  c.avg_width = width;
  return c;
}

/// A wide table with two single-column indexes; `kind_distinct` /
/// `region_distinct` steer the per-index selectivity.
Catalog EventsCatalog(double kind_distinct, double region_distinct) {
  Catalog cat;
  TableDef t;
  t.name = "EVENTS";
  t.columns = {Col("id", 200000), Col("kind", kind_distinct),
               Col("region", region_distinct), Col("payload", 100, 150)};
  t.row_count = 200000;
  t.data_pages = 8000;
  IndexDef kind_ix{"ev_kind_ix", {1}, false, false, 1000};
  IndexDef region_ix{"ev_region_ix", {2}, false, false, 1000};
  t.indexes = {kind_ix, region_ix};
  cat.AddTable(std::move(t)).ValueOrDie();
  return cat;
}

std::string WinnerShape(const PlanPtr& plan) {
  std::string sig = PlanSignature(*plan);
  if (sig.find("TIDAND") != std::string::npos) return "index-AND + GET";
  if (sig.find("GET(SORT(") == 0 ||
      sig.find("GET(SORT") != std::string::npos) {
    return "TID-sort + GET";
  }
  if (sig.find("ACCESS(index)") != std::string::npos ||
      sig.find("#iev") != std::string::npos) {
    return "plain index + GET";
  }
  return "sequential scan";
}

void PrintArtifact() {
  bench::PrintHeader(
      "E9: §4's omitted access-path STARs",
      "\"sorting TIDs taken from an unordered index to order I/O\" and "
      "\"ANDing ... of multiple indexes for a single table\"");

  std::printf("%-26s | %10s | %-20s | %12s\n",
              "per-index selectivity", "est. rows", "winning access shape",
              "best cost");
  struct Case {
    double kind_distinct, region_distinct;
    const char* label;
  };
  for (const Case& c : {Case{10000, 10000, "0.01% x 0.01%"},
                        Case{1000, 1000, "0.1% x 0.1%"},
                        Case{50, 40, "2% x 2.5%"},
                        Case{20, 10, "5% x 10%"},
                        Case{4, 3, "25% x 33%"}}) {
    Catalog cat = EventsCatalog(c.kind_distinct, c.region_distinct);
    Query query = bench::MustParse(
        cat, "SELECT payload FROM EVENTS WHERE kind = 1 AND region = 1");
    Optimizer optimizer(DefaultRuleSet(bench::FullRepertoire()));
    auto r = optimizer.Optimize(query).ValueOrDie();
    std::printf("%-26s | %10.1f | %-20s | %12.0f\n", c.label,
                r.best->props.card(), WinnerShape(r.best).c_str(),
                r.total_cost);
  }

  // TID-sort in isolation: one index, medium selectivity, wide table.
  std::printf("\nTID-sort vs. unsorted fetch (one index, 4%% selectivity):\n");
  Catalog cat = EventsCatalog(25, 2);
  Query query =
      bench::MustParse(cat, "SELECT payload FROM EVENTS WHERE kind = 1");
  DefaultRuleOptions plain;  // NL+MG, no access extensions
  DefaultRuleOptions tid = plain;
  tid.tid_sort = true;
  Optimizer p(DefaultRuleSet(plain)), t(DefaultRuleSet(tid));
  auto rp = p.Optimize(query).ValueOrDie();
  auto rt = t.Optimize(query).ValueOrDie();
  std::printf("  without: %8.0f   with: %8.0f   (%.1fx)\n\n", rp.total_cost,
              rt.total_cost, rp.total_cost / rt.total_cost);
}

void BM_FullAccessRepertoire(benchmark::State& state) {
  Catalog cat = EventsCatalog(50, 40);
  Query query = bench::MustParse(
      cat, "SELECT payload FROM EVENTS WHERE kind = 1 AND region = 1");
  Optimizer optimizer(DefaultRuleSet(bench::FullRepertoire()));
  for (auto _ : state) {
    auto r = optimizer.Optimize(query);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FullAccessRepertoire)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace starburst

int main(int argc, char** argv) {
  starburst::PrintArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
