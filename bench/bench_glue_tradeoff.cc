// Experiment E7 (DESIGN.md): §3.2's observation that Glue should consider
// *all* plans against the required properties, because "even though there is
// an index EMP.DNO by which we can access EMP in the required DNO order, it
// might be cheaper ... to access EMP sequentially and sort it". We sweep the
// predicate selectivity on the ordered column and report which producer of
// the required order wins, locating the crossover.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "cost/cost_model.h"
#include "glue/glue.h"
#include "plan/explain.h"
#include "properties/property_functions.h"
#include "star/builtins.h"

namespace starburst {
namespace {

struct Setup {
  Catalog catalog;
  std::unique_ptr<Query> query;
  CostModel cost_model;
  OperatorRegistry operators;
  FunctionRegistry functions;
  RuleSet rules;
  std::unique_ptr<PlanFactory> factory;
  std::unique_ptr<StarEngine> engine;
  std::unique_ptr<PlanTable> table;
  std::unique_ptr<Glue> glue;

  /// `dno_upper`: the query keeps EMP.DNO < dno_upper, sweeping how many
  /// rows survive; the required order is (EMP.DNO).
  explicit Setup(int64_t dno_upper) : rules(DefaultRuleSet()) {
    catalog = MakePaperCatalog();
    query = std::make_unique<Query>(
        bench::MustParse(catalog, "SELECT EMP.NAME FROM EMP WHERE EMP.DNO < " +
                                      std::to_string(dno_upper)));
    if (!RegisterBuiltinOperators(&operators).ok()) std::abort();
    if (!RegisterBuiltinFunctions(&functions).ok()) std::abort();
    factory = std::make_unique<PlanFactory>(*query, cost_model, operators);
    engine = std::make_unique<StarEngine>(factory.get(), &rules, &functions);
    table = std::make_unique<PlanTable>(&cost_model);
    glue = std::make_unique<Glue>(engine.get(), table.get());
    engine->set_glue(glue.get());
  }

  StreamSpec OrderedSpec() {
    StreamSpec s;
    s.tables = QuantifierSet::Single(0);
    s.preds = PredSet::Single(0);
    s.required.order =
        SortOrder{query->ResolveColumn("EMP", "DNO").ValueOrDie()};
    return s;
  }
};

void PrintArtifact() {
  bench::PrintHeader(
      "E7: sort-the-scan vs. use-the-index under an order requirement",
      "\"it might be cheaper ... to access EMP sequentially and sort it "
      "into DNO order\" (§3.2)");
  std::printf("%-14s | %10s | %-28s | %12s\n", "DNO < x (sel)", "est. rows",
              "winning producer of order", "best cost");
  for (int64_t upper : {2, 5, 15, 50, 150, 400, 500}) {
    Setup s(upper);
    auto sap = s.glue->Resolve(s.OrderedSpec()).ValueOrDie();
    PlanPtr best = CheapestPlan(sap, s.cost_model);
    const char* producer =
        best->name() == op::kSort ? "SORT(sequential scan)" : "index + GET";
    std::printf("%-14s | %10.0f | %-28s | %12.0f\n",
                ("DNO < " + std::to_string(upper)).c_str(),
                best->props.card(), producer,
                s.cost_model.Total(best->props.cost()));
  }
  std::printf(
      "\n(selective predicates favor the index probe — few random fetches —\n"
      " while wide ranges favor scanning sequentially and sorting: the\n"
      " §3.2 trade-off, with the crossover visible above.)\n\n");
}

void BM_GlueOrderedResolve(benchmark::State& state) {
  Setup s(static_cast<int64_t>(state.range(0)));
  StreamSpec spec = s.OrderedSpec();
  for (auto _ : state) {
    auto sap = s.glue->Resolve(spec);
    if (!sap.ok()) state.SkipWithError(sap.status().ToString().c_str());
    benchmark::DoNotOptimize(sap);
  }
}
BENCHMARK(BM_GlueOrderedResolve)->Arg(5)->Arg(150)->Arg(500);

}  // namespace
}  // namespace starburst

int main(int argc, char** argv) {
  starburst::PrintArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
