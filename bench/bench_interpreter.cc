// Experiment E6 (DESIGN.md): the [LEE 88] companion claim — interpreting
// STARs is cheap. Micro-benchmarks of the interpreter's primitive steps:
// STAR expansion, Glue resolution, plan-table lookups, and memo hit rate.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "cost/cost_model.h"
#include "glue/glue.h"
#include "optimizer/plan_table.h"
#include "properties/property_functions.h"
#include "star/builtins.h"
#include "star/memo.h"

namespace starburst {
namespace {

struct InterpSetup {
  Catalog catalog;
  Query query;
  CostModel cost_model;
  OperatorRegistry operators;
  FunctionRegistry functions;
  RuleSet rules;
  std::unique_ptr<PlanFactory> factory;
  std::unique_ptr<StarEngine> engine;
  std::unique_ptr<PlanTable> table;
  std::unique_ptr<Glue> glue;

  InterpSetup()
      : catalog(MakePaperCatalog()),
        query(bench::MustParse(catalog, bench::kPaperSql)),
        rules(DefaultRuleSet(bench::FullRepertoire())) {
    if (!RegisterBuiltinOperators(&operators).ok()) std::abort();
    if (!RegisterBuiltinFunctions(&functions).ok()) std::abort();
    factory = std::make_unique<PlanFactory>(query, cost_model, operators);
    engine = std::make_unique<StarEngine>(factory.get(), &rules, &functions);
    table = std::make_unique<PlanTable>(&cost_model);
    glue = std::make_unique<Glue>(engine.get(), table.get());
    engine->set_glue(glue.get());
  }

  StreamSpec Spec(int q, PredSet preds = PredSet{}) {
    StreamSpec s;
    s.tables = QuantifierSet::Single(q);
    s.preds = preds;
    return s;
  }
};

void PrintArtifact() {
  bench::PrintHeader(
      "E6: interpreter overhead ([LEE 88])",
      "STAR evaluation is a dictionary lookup plus substitution; see the "
      "per-step timings below");
  InterpSetup s;
  auto sap = s.engine
                 ->EvalStar("AccessRoot", {RuleValue(s.Spec(1)),
                                           RuleValue(PredSet{})})
                 .ValueOrDie();
  std::printf("AccessRoot(EMP, {}) expands to %zu plans with metrics %s\n\n",
              sap.size(), s.engine->metrics().ToString().c_str());

  // The shared-memo view of the same claim: a full optimize of the paper
  // query with both cache layers on, reporting how much of the interpreter
  // work the memo absorbed.
  OptimizerOptions opts;
  opts.shared_memo = true;
  opts.cache_augmented = true;
  Optimizer optimizer(DefaultRuleSet(bench::FullRepertoire()), opts);
  auto r = optimizer.Optimize(s.query);
  if (r.ok()) {
    const ExpansionMemo::Stats& m = r.value().memo_stats;
    std::printf("shared memo on the paper query: %s\n", m.ToString().c_str());
    std::printf(
        "BENCH_JSON {\"bench\":\"interpreter\",\"query\":\"paper\","
        "\"memo_hit_rate\":%.3f,\"memo_hits\":%lld,\"memo_entries\":%lld,"
        "\"star_refs\":%lld}\n\n",
        m.hit_rate(), static_cast<long long>(m.hits),
        static_cast<long long>(m.entries),
        static_cast<long long>(r.value().engine_metrics.star_refs));
  }
}

void BM_EvalAccessRoot(benchmark::State& state) {
  InterpSetup s;
  std::vector<RuleValue> args{RuleValue(s.Spec(1)), RuleValue(PredSet{})};
  for (auto _ : state) {
    auto sap = s.engine->EvalStar("AccessRoot", args);
    if (!sap.ok()) state.SkipWithError(sap.status().ToString().c_str());
    benchmark::DoNotOptimize(sap);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvalAccessRoot);

void BM_EvalJoinRootTwoTables(benchmark::State& state) {
  InterpSetup s;
  // Populate single-table buckets once.
  (void)s.glue->Resolve(s.Spec(0, PredSet::Single(0)));
  (void)s.glue->Resolve(s.Spec(1));
  std::vector<RuleValue> args{RuleValue(s.Spec(0, PredSet::Single(0))),
                              RuleValue(s.Spec(1)),
                              RuleValue(PredSet::Single(1))};
  for (auto _ : state) {
    auto sap = s.engine->EvalStar("JoinRoot", args);
    if (!sap.ok()) state.SkipWithError(sap.status().ToString().c_str());
    benchmark::DoNotOptimize(sap);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvalJoinRootTwoTables);

void BM_GlueMemoHit(benchmark::State& state) {
  InterpSetup s;
  StreamSpec spec = s.Spec(1);
  (void)s.glue->Resolve(spec);  // warm
  for (auto _ : state) {
    auto sap = s.glue->Resolve(spec);
    benchmark::DoNotOptimize(sap);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GlueMemoHit);

void BM_SharedMemoLookupHit(benchmark::State& state) {
  // One shared-memo probe — the unit of work every cached STAR reference
  // and Glue resolution pays: canonical-key build plus a sharded map hit.
  InterpSetup s;
  std::vector<RuleValue> args{RuleValue(s.Spec(1)), RuleValue(PredSet{})};
  SAP sap = s.engine->EvalStar("AccessRoot", args).ValueOrDie();
  ExpansionMemo memo;
  memo.Insert(CanonicalStarKey("AccessRoot", args), sap);
  for (auto _ : state) {
    auto hit = memo.Lookup(CanonicalStarKey("AccessRoot", args));
    benchmark::DoNotOptimize(hit);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["memo_hit_rate"] = memo.stats().hit_rate();
}
BENCHMARK(BM_SharedMemoLookupHit);

void BM_PlanTableLookup(benchmark::State& state) {
  InterpSetup s;
  (void)s.glue->Resolve(s.Spec(1));
  QuantifierSet q = QuantifierSet::Single(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.table->Lookup(q, PredSet{}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanTableLookup);

void BM_ConditionEvaluation(benchmark::State& state) {
  // The cost of one rule condition: classify predicates + emptiness test,
  // the work the paper contrasts with transformational unification.
  InterpSetup s;
  RuleExprPtr cond = RuleExpr::Call(
      "nonempty", {RuleExpr::Call("sortable_preds",
                                  {RuleExpr::Param("P"), RuleExpr::Param("T1"),
                                   RuleExpr::Param("T2")})});
  StarEngine::Env env;
  env.Bind("P", RuleValue(PredSet::Single(1)));
  env.Bind("T1", RuleValue(s.Spec(0)));
  env.Bind("T2", RuleValue(s.Spec(1)));
  for (auto _ : state) {
    auto v = s.engine->Eval(*cond, env);
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConditionEvaluation);

}  // namespace
}  // namespace starburst

int main(int argc, char** argv) {
  starburst::PrintArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
