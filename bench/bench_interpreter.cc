// Experiment E6 (DESIGN.md): the [LEE 88] companion claim — interpreting
// STARs is cheap. Micro-benchmarks of the interpreter's primitive steps:
// STAR expansion, Glue resolution, plan-table lookups, and memo hit rate.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "bench_util.h"
#include "cost/cost_model.h"
#include "exec/evaluator.h"
#include "glue/glue.h"
#include "obs/profiler.h"
#include "optimizer/plan_table.h"
#include "properties/property_functions.h"
#include "star/builtins.h"
#include "star/memo.h"
#include "storage/datagen.h"

namespace starburst {
namespace {

struct InterpSetup {
  Catalog catalog;
  Query query;
  CostModel cost_model;
  OperatorRegistry operators;
  FunctionRegistry functions;
  RuleSet rules;
  std::unique_ptr<PlanFactory> factory;
  std::unique_ptr<StarEngine> engine;
  std::unique_ptr<PlanTable> table;
  std::unique_ptr<Glue> glue;

  InterpSetup()
      : catalog(MakePaperCatalog()),
        query(bench::MustParse(catalog, bench::kPaperSql)),
        rules(DefaultRuleSet(bench::FullRepertoire())) {
    if (!RegisterBuiltinOperators(&operators).ok()) std::abort();
    if (!RegisterBuiltinFunctions(&functions).ok()) std::abort();
    factory = std::make_unique<PlanFactory>(query, cost_model, operators);
    engine = std::make_unique<StarEngine>(factory.get(), &rules, &functions);
    table = std::make_unique<PlanTable>(&cost_model);
    glue = std::make_unique<Glue>(engine.get(), table.get());
    engine->set_glue(glue.get());
  }

  StreamSpec Spec(int q, PredSet preds = PredSet{}) {
    StreamSpec s;
    s.tables = QuantifierSet::Single(q);
    s.preds = preds;
    return s;
  }
};

void PrintArtifact() {
  bench::PrintHeader(
      "E6: interpreter overhead ([LEE 88])",
      "STAR evaluation is a dictionary lookup plus substitution; see the "
      "per-step timings below");
  InterpSetup s;
  auto sap = s.engine
                 ->EvalStar("AccessRoot", {RuleValue(s.Spec(1)),
                                           RuleValue(PredSet{})})
                 .ValueOrDie();
  std::printf("AccessRoot(EMP, {}) expands to %zu plans with metrics %s\n\n",
              sap.size(), s.engine->metrics().ToString().c_str());

  // The shared-memo view of the same claim: a full optimize of the paper
  // query with both cache layers on, reporting how much of the interpreter
  // work the memo absorbed.
  OptimizerOptions opts;
  opts.shared_memo = true;
  opts.cache_augmented = true;
  Optimizer optimizer(DefaultRuleSet(bench::FullRepertoire()), opts);
  auto r = optimizer.Optimize(s.query);
  if (r.ok()) {
    const ExpansionMemo::Stats& m = r.value().memo_stats;
    std::printf("shared memo on the paper query: %s\n", m.ToString().c_str());
    std::printf(
        "BENCH_JSON {\"bench\":\"interpreter\",\"query\":\"paper\","
        "\"memo_hit_rate\":%.3f,\"memo_hits\":%lld,\"memo_entries\":%lld,"
        "\"star_refs\":%lld}\n\n",
        m.hit_rate(), static_cast<long long>(m.hits),
        static_cast<long long>(m.entries),
        static_cast<long long>(r.value().engine_metrics.star_refs));
  }
}

// The run-time side of the interpreter-overhead claim: a plain scan-filter
// over EMP, legacy row-at-a-time evaluation vs the vectorized batch
// pipeline with a compiled predicate program. The predicate reads SALARY,
// which the scan does not project, so both engines evaluate it against the
// base row.
void PrintExecArtifact() {
  bench::PrintHeader(
      "E6b: scan-filter throughput, legacy vs vectorized",
      "one heap ACCESS with a compiled predicate program vs per-tuple tree "
      "walks");
  Catalog catalog = MakePaperCatalog();
  Database db(catalog);
  if (!PopulatePaperDatabase(&db, /*seed=*/23, /*scale=*/1.0).ok())
    std::abort();
  Query query = bench::MustParse(
      catalog, "SELECT EMP.NAME FROM EMP WHERE EMP.SALARY >= 100000");

  CostModel cost_model;
  OperatorRegistry operators;
  if (!RegisterBuiltinOperators(&operators).ok()) std::abort();
  PlanFactory factory(query, cost_model, operators);
  OpArgs args;
  args.Set(arg::kQuantifier, int64_t{0});
  args.Set(arg::kCols, std::vector<ColumnRef>{
                           query.ResolveColumn("EMP", "NAME").ValueOrDie()});
  args.Set(arg::kPreds, PredSet::Single(0));
  PlanPtr scan =
      factory.Make(op::kAccess, flavor::kHeap, {}, std::move(args))
          .ValueOrDie();

  auto measure = [&](bool vectorized, size_t* out_rows) {
    ExecOptions options;
    options.vectorized = vectorized ? 1 : 0;
    auto warm = ExecutePlan(db, query, scan, options).ValueOrDie();
    *out_rows = warm.rows.size();
    const int kIters = 40;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      auto rs = ExecutePlan(db, query, scan, options);
      if (!rs.ok()) std::abort();
      benchmark::DoNotOptimize(rs.value().rows.data());
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    return static_cast<double>(*out_rows) * kIters / secs;
  };
  size_t rows = 0;
  double legacy = measure(false, &rows);
  double vec = measure(true, &rows);
  std::printf("%-28s | %14s | %14s | %8s\n", "EMP scan (20k rows)",
              "legacy rows/s", "vector rows/s", "speedup");
  std::printf("%-28s | %14.0f | %14.0f | %7.2fx\n", "SALARY >= 100000",
              legacy, vec, vec / legacy);
  std::printf(
      "BENCH_JSON {\"bench\":\"scan_filter\",\"rows\":%zu,"
      "\"legacy_rows_per_sec\":%.0f,\"vectorized_rows_per_sec\":%.0f,"
      "\"speedup\":%.2f}\n\n",
      rows, legacy, vec, vec / legacy);
}

// Experiment E14a: type-specialized fused kernels on a conjunctive
// scan-filter. The whole WHERE clause compiles to one typed kernel that
// streams the base column arrays into a selection vector; the legacy engine
// walks the predicate tree per tuple, and the kernels-off vectorized engine
// runs the stack-machine interpreter per tuple. The acceptance bar is
// core-aware: 4x on real multi-core boxes, relaxed where the measurement
// loop itself gets time-sliced.
void PrintKernelArtifact() {
  bench::PrintHeader(
      "E14a: typed-kernel scan-filter vs legacy interpreter",
      "a fused int64 conjunction filling a selection vector vs per-tuple "
      "tree walks");
  PaperCatalogOptions copts;
  copts.emp_rows = 100000;
  Catalog catalog = MakePaperCatalog(copts);
  Database db(catalog);
  if (!PopulatePaperDatabase(&db, /*seed=*/23, /*scale=*/1.0).ok())
    std::abort();
  // Selective 3-conjunct filter: the run is predicate-bound, not output-
  // materialization-bound, so the engines differ by evaluation cost alone.
  Query query = bench::MustParse(
      catalog,
      "SELECT EMP.NAME FROM EMP WHERE EMP.SALARY >= 100000 AND "
      "EMP.SALARY <= 120000 AND EMP.DNO >= 5");
  const double kScanRows = 100000.0;

  CostModel cost_model;
  OperatorRegistry operators;
  if (!RegisterBuiltinOperators(&operators).ok()) std::abort();
  PlanFactory factory(query, cost_model, operators);
  OpArgs args;
  args.Set(arg::kQuantifier, int64_t{0});
  args.Set(arg::kCols, std::vector<ColumnRef>{
                           query.ResolveColumn("EMP", "NAME").ValueOrDie()});
  args.Set(arg::kPreds, query.AllPredicates());
  PlanPtr scan =
      factory.Make(op::kAccess, flavor::kHeap, {}, std::move(args))
          .ValueOrDie();

  auto measure = [&](bool vectorized, int typed_kernels, size_t* out_rows) {
    ExecOptions options;
    options.vectorized = vectorized ? 1 : 0;
    options.typed_kernels = typed_kernels;
    auto warm = ExecutePlan(db, query, scan, options).ValueOrDie();
    *out_rows = warm.rows.size();
    const int kIters = 15;
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kIters; ++i) {
        auto rs = ExecutePlan(db, query, scan, options);
        if (!rs.ok()) std::abort();
        benchmark::DoNotOptimize(rs.value().rows.data());
      }
      double secs = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      best = std::max(best, kScanRows * kIters / secs);
    }
    return best;
  };
  size_t rows = 0;
  double legacy = measure(false, -1, &rows);
  double interp = measure(true, 0, &rows);
  double fused = measure(true, 1, &rows);
  double speedup = fused / legacy;
  unsigned cores = std::thread::hardware_concurrency();
  double floor = bench::KernelSpeedupFloor(cores);
  // One profiled run proves the fused path actually carried the scan.
  int64_t fused_rows = 0;
  {
    ExecOptions options;
    options.vectorized = 1;
    options.typed_kernels = 1;
    ExecProfile profile;
    options.profile_sink = &profile;
    if (!ExecutePlan(db, query, scan, options).ok()) std::abort();
    for (const auto& [node, p] : profile.ops()) fused_rows += p.kernel_rows;
  }
  std::printf("%-28s | %13s | %13s | %13s | %8s\n", "EMP scan (100k rows)",
              "legacy scan/s", "interp scan/s", "kernel scan/s", "speedup");
  std::printf("%-28s | %13.0f | %13.0f | %13.0f | %7.2fx\n",
              "3-conjunct int64 filter", legacy, interp, fused, speedup);
  std::printf(
      "BENCH_JSON {\"bench\":\"kernel_scan_filter\",\"rows\":%zu,"
      "\"fused_rows\":%lld,\"legacy_rows_per_sec\":%.0f,"
      "\"interp_rows_per_sec\":%.0f,\"kernel_rows_per_sec\":%.0f,"
      "\"speedup\":%.2f,\"cores\":%u,\"floor\":%.2f,"
      "\"kernel_speedup_ok\":%s}\n\n",
      rows, static_cast<long long>(fused_rows), legacy, interp, fused,
      speedup, cores, floor,
      fused_rows > 0 && speedup >= floor ? "true" : "false");
}

// Morsel parallelism on the same scan-filter shape: one heap ACCESS with a
// compiled predicate, 1 vs 8 exchange workers, on an EMP big enough that
// the morsel pool engages (200k rows -> ~196 morsels).
void PrintParallelScanArtifact() {
  bench::PrintHeader(
      "E6d: exchange scaling, scan-filter at 1 vs 8 workers",
      "morsel-parallel heap scan through shared compiled predicates");
  PaperCatalogOptions copts;
  copts.emp_rows = 200000;
  Catalog catalog = MakePaperCatalog(copts);
  Database db(catalog);
  if (!PopulatePaperDatabase(&db, /*seed=*/23, /*scale=*/1.0).ok())
    std::abort();
  Query query = bench::MustParse(
      catalog, "SELECT EMP.NAME FROM EMP WHERE EMP.SALARY >= 100000");

  CostModel cost_model;
  OperatorRegistry operators;
  if (!RegisterBuiltinOperators(&operators).ok()) std::abort();
  PlanFactory factory(query, cost_model, operators);
  OpArgs args;
  args.Set(arg::kQuantifier, int64_t{0});
  args.Set(arg::kCols, std::vector<ColumnRef>{
                           query.ResolveColumn("EMP", "NAME").ValueOrDie()});
  args.Set(arg::kPreds, PredSet::Single(0));
  PlanPtr scan =
      factory.Make(op::kAccess, flavor::kHeap, {}, std::move(args))
          .ValueOrDie();

  auto measure = [&](int exec_threads, size_t* out_rows) {
    ExecOptions options;
    options.vectorized = 1;
    options.exec_threads = exec_threads;
    auto warm = ExecutePlan(db, query, scan, options).ValueOrDie();
    *out_rows = warm.rows.size();
    const int kIters = 10;
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kIters; ++i) {
        auto rs = ExecutePlan(db, query, scan, options);
        if (!rs.ok()) std::abort();
        benchmark::DoNotOptimize(rs.value().rows.data());
      }
      double secs = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      best = std::max(best,
                      static_cast<double>(*out_rows) * kIters / secs);
    }
    return best;
  };
  size_t rows = 0;
  double one = measure(1, &rows);
  double eight = measure(8, &rows);
  double speedup = eight / one;
  unsigned cores = std::thread::hardware_concurrency();
  double floor = bench::ParallelScalingFloor(cores);
  std::printf("%-28s | %14s | %14s | %8s | %5s\n", "EMP scan (200k rows)",
              "1-worker r/s", "8-worker r/s", "speedup", "cores");
  std::printf("%-28s | %14.0f | %14.0f | %7.2fx | %5u\n", "SALARY >= 100000",
              one, eight, speedup, cores);
  std::printf(
      "BENCH_JSON {\"bench\":\"scan_filter_parallel\",\"rows\":%zu,"
      "\"exec_threads\":8,\"rows_per_sec_1t\":%.0f,\"rows_per_sec\":%.0f,"
      "\"speedup\":%.2f,\"cores\":%u,\"floor\":%.2f,\"scaling_ok\":%s}\n\n",
      rows, one, eight, speedup, cores, floor,
      speedup >= floor ? "true" : "false");
}

// The spill-discipline claim: an external-merge SORT under a tight memory
// budget must stay within a small constant factor of the in-memory sort —
// it trades residency for temp-file I/O, not for an algorithmic blowup.
// Same 20k-row EMP, ORDER BY NAME, unlimited vs a 64 KiB budget.
void PrintSortSpillArtifact() {
  bench::PrintHeader(
      "E6e: SORT spill overhead, in-memory vs external merge",
      "run generation + k-way merge through self-deleting temp files under "
      "STARBURST_EXEC_MEM_LIMIT-style budgets");
  Catalog catalog = MakePaperCatalog();
  Database db(catalog);
  if (!PopulatePaperDatabase(&db, /*seed=*/23, /*scale=*/1.0).ok())
    std::abort();
  Query query = bench::MustParse(
      catalog, "SELECT EMP.NAME, EMP.SALARY FROM EMP ORDER BY EMP.NAME");

  CostModel cost_model;
  OperatorRegistry operators;
  if (!RegisterBuiltinOperators(&operators).ok()) std::abort();
  PlanFactory factory(query, cost_model, operators);
  OpArgs args;
  args.Set(arg::kQuantifier, int64_t{0});
  args.Set(arg::kCols,
           std::vector<ColumnRef>{
               query.ResolveColumn("EMP", "NAME").ValueOrDie(),
               query.ResolveColumn("EMP", "SALARY").ValueOrDie()});
  args.Set(arg::kPreds, PredSet{});
  PlanPtr scan =
      factory.Make(op::kAccess, flavor::kHeap, {}, std::move(args))
          .ValueOrDie();
  OpArgs sort_args;
  sort_args.Set(arg::kOrder,
                std::vector<ColumnRef>{
                    query.ResolveColumn("EMP", "NAME").ValueOrDie()});
  PlanPtr plan =
      factory.Make(op::kSort, "", {std::move(scan)}, std::move(sort_args))
          .ValueOrDie();

  int64_t spill_runs = 0;
  auto measure = [&](int64_t mem_limit, size_t* out_rows) {
    ExecOptions options;
    options.vectorized = 1;
    options.exec_mem_limit = mem_limit;
    if (mem_limit > 0) {
      ExecProfile profile;
      options.profile_sink = &profile;
      auto warm = ExecutePlan(db, query, plan, options).ValueOrDie();
      *out_rows = warm.rows.size();
      for (const auto& [node, p] : profile.ops()) spill_runs += p.spill_runs;
      options.profile_sink = nullptr;
    } else {
      auto warm = ExecutePlan(db, query, plan, options).ValueOrDie();
      *out_rows = warm.rows.size();
    }
    const int kIters = 20;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      auto rs = ExecutePlan(db, query, plan, options);
      if (!rs.ok()) std::abort();
      benchmark::DoNotOptimize(rs.value().rows.data());
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    return static_cast<double>(*out_rows) * kIters / secs;
  };
  size_t rows = 0;
  double in_memory = measure(/*mem_limit=*/-1, &rows);
  double spilled = measure(/*mem_limit=*/64 * 1024, &rows);
  double ratio = in_memory / spilled;
  // Spilling may cost, but never more than 3x: run generation and the merge
  // are both linear passes.
  bool spill_ok = spill_runs > 0 && spilled >= in_memory / 3.0;
  std::printf("%-28s | %14s | %14s | %8s | %5s\n", "EMP sort (20k rows)",
              "in-mem rows/s", "spilled rows/s", "slowdown", "runs");
  std::printf("%-28s | %14.0f | %14.0f | %7.2fx | %5lld\n", "ORDER BY NAME",
              in_memory, spilled, ratio,
              static_cast<long long>(spill_runs));
  std::printf(
      "BENCH_JSON {\"bench\":\"sort_spill\",\"rows\":%zu,"
      "\"in_memory_rows_per_sec\":%.0f,\"spilled_rows_per_sec\":%.0f,"
      "\"slowdown\":%.2f,\"spill_runs\":%lld,\"spill_ok\":%s}\n\n",
      rows, in_memory, spilled, ratio, static_cast<long long>(spill_runs),
      spill_ok ? "true" : "false");
}

// The observability-overhead claim: profiling must be opt-in at run time
// with near-zero cost when off (one predicted branch per batch) and a
// small, bounded cost when on. Same scan-filter as E6b, vectorized engine,
// profiler off vs on, best-of-several so scheduler noise does not leak
// into the ratio.
void PrintProfileArtifact() {
  bench::PrintHeader(
      "E6c: profiler overhead, off vs on",
      "per-operator wall time, row counts, and memory accounting behind one "
      "branch per batch");
  Catalog catalog = MakePaperCatalog();
  Database db(catalog);
  if (!PopulatePaperDatabase(&db, /*seed=*/23, /*scale=*/1.0).ok())
    std::abort();
  Query query = bench::MustParse(
      catalog, "SELECT EMP.NAME FROM EMP WHERE EMP.SALARY >= 100000");

  CostModel cost_model;
  OperatorRegistry operators;
  if (!RegisterBuiltinOperators(&operators).ok()) std::abort();
  PlanFactory factory(query, cost_model, operators);
  OpArgs args;
  args.Set(arg::kQuantifier, int64_t{0});
  args.Set(arg::kCols, std::vector<ColumnRef>{
                           query.ResolveColumn("EMP", "NAME").ValueOrDie()});
  args.Set(arg::kPreds, PredSet::Single(0));
  PlanPtr scan =
      factory.Make(op::kAccess, flavor::kHeap, {}, std::move(args))
          .ValueOrDie();

  ExecProfile sink;
  size_t rows = 0;
  // Best-of-kRepeats wall time for kIters executions; the minimum is the
  // least-noisy estimate of the true cost on a shared machine.
  auto best_secs = [&](bool profiled) {
    ExecOptions options;
    options.vectorized = 1;
    options.profile = profiled ? 1 : 0;
    if (profiled) options.profile_sink = &sink;
    auto warm = ExecutePlan(db, query, scan, options).ValueOrDie();
    rows = warm.rows.size();
    const int kIters = 30;
    const int kRepeats = 5;
    double best = 1e100;
    for (int r = 0; r < kRepeats; ++r) {
      auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kIters; ++i) {
        auto rs = ExecutePlan(db, query, scan, options);
        if (!rs.ok()) std::abort();
        benchmark::DoNotOptimize(rs.value().rows.data());
      }
      double secs = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count() /
                    kIters;
      if (secs < best) best = secs;
    }
    return best;
  };
  double off = best_secs(false);
  double on = best_secs(true);
  double overhead_pct = (on / off - 1.0) * 100.0;
  const double kBoundPct = 3.0;
  std::printf("%-28s | %12s | %12s | %9s\n", "EMP scan-filter (vectorized)",
              "off us/exec", "on us/exec", "overhead");
  std::printf("%-28s | %12.1f | %12.1f | %8.2f%%\n", "SALARY >= 100000",
              off * 1e6, on * 1e6, overhead_pct);
  std::printf(
      "BENCH_JSON {\"bench\":\"profiler_overhead\",\"rows\":%zu,"
      "\"off_us\":%.1f,\"on_us\":%.1f,\"overhead_pct\":%.2f,"
      "\"bound_pct\":%.1f,\"profile_overhead_ok\":%s}\n\n",
      rows, off * 1e6, on * 1e6, overhead_pct, kBoundPct,
      overhead_pct <= kBoundPct ? "true" : "false");
}

void BM_EvalAccessRoot(benchmark::State& state) {
  InterpSetup s;
  std::vector<RuleValue> args{RuleValue(s.Spec(1)), RuleValue(PredSet{})};
  for (auto _ : state) {
    auto sap = s.engine->EvalStar("AccessRoot", args);
    if (!sap.ok()) state.SkipWithError(sap.status().ToString().c_str());
    benchmark::DoNotOptimize(sap);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvalAccessRoot);

void BM_EvalJoinRootTwoTables(benchmark::State& state) {
  InterpSetup s;
  // Populate single-table buckets once.
  (void)s.glue->Resolve(s.Spec(0, PredSet::Single(0)));
  (void)s.glue->Resolve(s.Spec(1));
  std::vector<RuleValue> args{RuleValue(s.Spec(0, PredSet::Single(0))),
                              RuleValue(s.Spec(1)),
                              RuleValue(PredSet::Single(1))};
  for (auto _ : state) {
    auto sap = s.engine->EvalStar("JoinRoot", args);
    if (!sap.ok()) state.SkipWithError(sap.status().ToString().c_str());
    benchmark::DoNotOptimize(sap);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvalJoinRootTwoTables);

void BM_GlueMemoHit(benchmark::State& state) {
  InterpSetup s;
  StreamSpec spec = s.Spec(1);
  (void)s.glue->Resolve(spec);  // warm
  for (auto _ : state) {
    auto sap = s.glue->Resolve(spec);
    benchmark::DoNotOptimize(sap);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GlueMemoHit);

void BM_SharedMemoLookupHit(benchmark::State& state) {
  // One shared-memo probe — the unit of work every cached STAR reference
  // and Glue resolution pays: canonical-key build plus a sharded map hit.
  InterpSetup s;
  std::vector<RuleValue> args{RuleValue(s.Spec(1)), RuleValue(PredSet{})};
  SAP sap = s.engine->EvalStar("AccessRoot", args).ValueOrDie();
  ExpansionMemo memo;
  memo.Insert(CanonicalStarKey("AccessRoot", args), sap);
  for (auto _ : state) {
    auto hit = memo.Lookup(CanonicalStarKey("AccessRoot", args));
    benchmark::DoNotOptimize(hit);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["memo_hit_rate"] = memo.stats().hit_rate();
}
BENCHMARK(BM_SharedMemoLookupHit);

void BM_PlanTableLookup(benchmark::State& state) {
  InterpSetup s;
  (void)s.glue->Resolve(s.Spec(1));
  QuantifierSet q = QuantifierSet::Single(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.table->Lookup(q, PredSet{}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanTableLookup);

void BM_ConditionEvaluation(benchmark::State& state) {
  // The cost of one rule condition: classify predicates + emptiness test,
  // the work the paper contrasts with transformational unification.
  InterpSetup s;
  RuleExprPtr cond = RuleExpr::Call(
      "nonempty", {RuleExpr::Call("sortable_preds",
                                  {RuleExpr::Param("P"), RuleExpr::Param("T1"),
                                   RuleExpr::Param("T2")})});
  StarEngine::Env env;
  env.Bind("P", RuleValue(PredSet::Single(1)));
  env.Bind("T1", RuleValue(s.Spec(0)));
  env.Bind("T2", RuleValue(s.Spec(1)));
  for (auto _ : state) {
    auto v = s.engine->Eval(*cond, env);
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConditionEvaluation);

}  // namespace
}  // namespace starburst

int main(int argc, char** argv) {
  starburst::PrintArtifact();
  starburst::PrintExecArtifact();
  starburst::PrintKernelArtifact();
  starburst::PrintParallelScanArtifact();
  starburst::PrintSortSpillArtifact();
  starburst::PrintProfileArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
