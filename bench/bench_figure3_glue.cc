// Experiment F3 (DESIGN.md): reproduce Figure 3 — the Glue mechanism
// injecting SHIP/SORT veneers to meet [site = L.A., order = DNO] on DEPT
// stored at N.Y., then choosing the cheapest — and benchmark Glue.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "cost/cost_model.h"
#include "glue/glue.h"
#include "optimizer/plan_table.h"
#include "plan/explain.h"
#include "properties/property_functions.h"
#include "star/builtins.h"

namespace starburst {
namespace {

struct Fig3Setup {
  Catalog catalog;
  Query query;
  CostModel cost_model;
  OperatorRegistry operators;
  FunctionRegistry functions;
  RuleSet rules;
  std::unique_ptr<PlanFactory> factory;
  std::unique_ptr<StarEngine> engine;
  std::unique_ptr<PlanTable> table;
  std::unique_ptr<Glue> glue;

  Fig3Setup()
      : catalog([] {
          PaperCatalogOptions opts;
          opts.distributed = true;
          return MakePaperCatalog(opts);
        }()),
        query(bench::MustParse(catalog, "SELECT DEPT.DNO FROM DEPT")),
        rules(DefaultRuleSet()) {
    if (!RegisterBuiltinOperators(&operators).ok()) std::abort();
    if (!RegisterBuiltinFunctions(&functions).ok()) std::abort();
    factory = std::make_unique<PlanFactory>(query, cost_model, operators);
    engine = std::make_unique<StarEngine>(factory.get(), &rules, &functions);
    table = std::make_unique<PlanTable>(&cost_model);
    glue = std::make_unique<Glue>(engine.get(), table.get());
    engine->set_glue(glue.get());
  }

  StreamSpec RequiredSpec() {
    StreamSpec spec;
    spec.tables = QuantifierSet::Single(0);
    spec.required.site = catalog.FindSite("L.A.").ValueOrDie();
    spec.required.order =
        SortOrder{query.ResolveColumn("DEPT", "DNO").ValueOrDie()};
    return spec;
  }
};

void PrintArtifact() {
  bench::PrintHeader(
      "F3: Figure 3 — the Glue mechanism",
      "DEPT stored at N.Y.; required [site=L.A., order=DNO]; Glue injects "
      "SHIP/SORT veneers and returns the satisfying plans");
  Fig3Setup s;

  // Show the available plans before Glue (the figure's left column).
  StreamSpec bare;
  bare.tables = QuantifierSet::Single(0);
  SAP base = s.glue->Resolve(bare).ValueOrDie();
  std::printf("available plans before requirements:\n");
  for (const PlanPtr& p : base) {
    std::printf("%s", ExplainPlan(*p, s.query).c_str());
  }

  SAP matched = s.glue->Resolve(s.RequiredSpec()).ValueOrDie();
  std::printf("\nplans after Glue matched [site=L.A., order=(DEPT.DNO)]:\n");
  for (const PlanPtr& p : matched) {
    std::printf("%s", ExplainPlan(*p, s.query).c_str());
  }
  PlanPtr cheapest = CheapestPlan(matched, s.cost_model);
  std::printf("\ncheapest satisfying plan (cost %.1f):\n%s",
              s.cost_model.Total(cheapest->props.cost()),
              ExplainPlan(*cheapest, s.query).c_str());
  std::printf("\nglue effort: %s\n\n", s.glue->metrics().ToString().c_str());
}

void BM_GlueResolveWithRequirements(benchmark::State& state) {
  Fig3Setup s;
  StreamSpec spec = s.RequiredSpec();
  for (auto _ : state) {
    auto sap = s.glue->Resolve(spec);
    if (!sap.ok()) state.SkipWithError(sap.status().ToString().c_str());
    benchmark::DoNotOptimize(sap);
  }
}
BENCHMARK(BM_GlueResolveWithRequirements);

void BM_GlueResolvePlanTableHit(benchmark::State& state) {
  Fig3Setup s;
  StreamSpec bare;
  bare.tables = QuantifierSet::Single(0);
  (void)s.glue->Resolve(bare);  // warm the table
  for (auto _ : state) {
    auto sap = s.glue->Resolve(bare);
    benchmark::DoNotOptimize(sap);
  }
}
BENCHMARK(BM_GlueResolvePlanTableHit);

}  // namespace
}  // namespace starburst

int main(int argc, char** argv) {
  starburst::PrintArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
