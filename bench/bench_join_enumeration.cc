// Experiment E2 (DESIGN.md): §2.3's claim that composite inners and
// Cartesian products "significantly complicate the generation of legal join
// pairs and increase their number. However, a cheaper plan is more likely to
// be discovered among this expanded repertoire!" — sweep table count and the
// two session toggles; report pairs considered, plans kept, and best cost.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "plan/explain.h"

namespace starburst {
namespace {

struct Config {
  const char* label;
  bool composite;
  bool cartesian;
};

constexpr Config kConfigs[] = {
    {"left/right-deep only", false, false},
    {"+composite inners", true, false},
    {"+cartesian products", true, true},
};

void PrintArtifact() {
  bench::PrintHeader(
      "E2: join enumeration repertoire",
      "\"a cheaper plan is more likely to be discovered among this expanded "
      "repertoire\" (§2.3)");
  std::printf("%-7s | %-22s | %10s %10s %10s | %12s\n", "tables", "config",
              "splits", "pairs", "plans", "best_cost");
  for (int n = 3; n <= 7; ++n) {
    SyntheticCatalogOptions copts;
    copts.num_tables = n;
    copts.seed = 90 + static_cast<uint64_t>(n);
    Catalog catalog = MakeSyntheticCatalog(copts);
    Query query = bench::MustParse(catalog, bench::ChainSql(n));
    for (const Config& cfg : kConfigs) {
      OptimizerOptions opts;
      opts.engine.allow_composite_inner = cfg.composite;
      opts.engine.allow_cartesian = cfg.cartesian;
      Optimizer optimizer(DefaultRuleSet(), opts);
      auto r = optimizer.Optimize(query).ValueOrDie();
      std::printf("%-7d | %-22s | %10lld %10lld %10lld | %12.0f\n", n,
                  cfg.label,
                  static_cast<long long>(r.enumerator_stats.splits_considered),
                  static_cast<long long>(r.enumerator_stats.joinable_pairs),
                  static_cast<long long>(r.plans_in_table), r.total_cost);
    }
  }
  std::printf("\n");
}

/// Workload where a bushy plan (composite inner) wins: selective filters on
/// both ends of a 4-chain, so (T0⨝T1) ⨝ (T2⨝T3) keeps both intermediate
/// results tiny while any left-deep order drags a large intermediate.
void PrintBushyArtifact() {
  Catalog cat;
  auto table = [&](const char* name, double rows, bool fk,
                   double payload_distinct) {
    TableDef t;
    t.name = name;
    ColumnDef id;
    id.name = "id";
    id.distinct_values = rows;
    id.min_value = 0;
    id.max_value = rows - 1;
    t.columns.push_back(id);
    if (fk) {
      ColumnDef f;
      f.name = "fk0";
      f.distinct_values = rows;
      f.min_value = 0;
      f.max_value = rows - 1;
      t.columns.push_back(f);
    }
    ColumnDef c;
    c.name = "c0";
    c.distinct_values = payload_distinct;
    c.min_value = 0;
    c.max_value = payload_distinct - 1;
    t.columns.push_back(c);
    t.row_count = rows;
    t.data_pages = std::max(1.0, rows / 40.0);
    cat.AddTable(std::move(t)).ValueOrDie();
  };
  table("T0", 50000, false, 25000);  // filtered to ~2 rows
  table("T1", 50000, true, 100);
  table("T2", 50000, true, 100);
  table("T3", 50000, true, 25000);  // filtered to ~2 rows

  Query query = bench::MustParse(
      cat,
      "SELECT T0.id FROM T0, T1, T2, T3 WHERE T0.c0 = 1 AND T3.c0 = 1 AND "
      "T1.fk0 = T0.id AND T2.fk0 = T1.id AND T3.fk0 = T2.id");

  std::printf("bushy-friendly query (selective filters on both chain ends):\n");
  for (bool composite : {false, true}) {
    OptimizerOptions opts;
    opts.engine.allow_composite_inner = composite;
    Optimizer optimizer(DefaultRuleSet(), opts);
    auto r = optimizer.Optimize(query).ValueOrDie();
    std::printf("  composite inners %-3s -> best cost %10.0f  (%lld plans)\n",
                composite ? "on" : "off", r.total_cost,
                static_cast<long long>(r.plans_in_table));
  }
  std::printf("\n");
}

/// Workload where a Cartesian product wins (§2.3: "Cartesian products
/// between two streams of small estimated cardinality"): two tiny filtered
/// dimensions and one huge fact table; (A×C) lets one pass over B apply both
/// join predicates at once.
void PrintCartesianArtifact() {
  Catalog cat;
  auto dim = [&](const char* name, double rows, double payload_distinct) {
    TableDef t;
    t.name = name;
    ColumnDef id;
    id.name = "id";
    id.distinct_values = rows;
    id.min_value = 0;
    id.max_value = rows - 1;
    ColumnDef c;
    c.name = "c0";
    c.distinct_values = payload_distinct;
    c.min_value = 0;
    c.max_value = payload_distinct - 1;
    t.columns = {id, c};
    t.row_count = rows;
    t.data_pages = std::max(1.0, rows / 40.0);
    cat.AddTable(std::move(t)).ValueOrDie();
  };
  dim("A", 2000, 1000);  // filtered to ~2 rows
  dim("C", 2000, 1000);
  TableDef b;
  b.name = "B";
  ColumnDef ba;
  ba.name = "a";
  ba.distinct_values = 2000;
  ba.min_value = 0;
  ba.max_value = 1999;
  ColumnDef bc = ba;
  bc.name = "c";
  ColumnDef pay;
  pay.name = "pay";
  pay.distinct_values = 100;
  pay.avg_width = 64;
  b.columns = {ba, bc, pay};
  b.row_count = 1000000;
  b.data_pages = 20000;
  // The multi-column index is what makes the Cartesian product pay: probing
  // with (a, c) simultaneously needs both dimension tuples in hand — a plan
  // only reachable via A × C (and the §1 prefix rule decides which of the
  // two predicates a left-deep plan may push).
  IndexDef ix;
  ix.name = "B_a_c_ix";
  ix.key_columns = {0, 1};
  ix.leaf_pages = 5000;
  b.indexes.push_back(std::move(ix));
  cat.AddTable(std::move(b)).ValueOrDie();

  Query query = bench::MustParse(
      cat,
      "SELECT B.pay FROM A, B, C WHERE A.c0 = 1 AND C.c0 = 1 AND "
      "B.a = A.id AND B.c = C.id");
  std::printf("cartesian-friendly query (two tiny dimensions, huge fact):\n");
  for (bool cartesian : {false, true}) {
    OptimizerOptions opts;
    opts.engine.allow_cartesian = cartesian;
    Optimizer optimizer(DefaultRuleSet(), opts);
    auto r = optimizer.Optimize(query).ValueOrDie();
    std::printf("  cartesian products %-3s -> best cost %10.0f\n",
                cartesian ? "on" : "off", r.total_cost);
  }
  std::printf("\n");
}

/// Parallel-enumeration artifact: a 10-table chain optimized at 1, 2 and 4
/// threads. Emits one machine-readable BENCH_JSON line per thread count so
/// CI can assert the speedup and, more importantly, that every thread count
/// lands on the identical best plan (cost and shape).
void PrintParallelArtifact() {
  constexpr int kTables = 10;
  constexpr int kReps = 3;  // best-of-N to shave scheduler noise
  SyntheticCatalogOptions copts;
  copts.num_tables = kTables;
  copts.seed = 90 + static_cast<uint64_t>(kTables);
  Catalog catalog = MakeSyntheticCatalog(copts);
  Query query = bench::MustParse(catalog, bench::ChainSql(kTables));

  std::printf("parallel enumeration (%d-table chain, best of %d runs):\n",
              kTables, kReps);
  std::string baseline_sig;
  double baseline_us = 0.0;
  for (int threads : {1, 2, 4}) {
    OptimizerOptions opts;
    opts.num_threads = threads;
    Optimizer optimizer(DefaultRuleSet(), opts);
    double best_us = 0.0;
    OptimizeResult last;
    for (int rep = 0; rep < kReps; ++rep) {
      auto t0 = std::chrono::steady_clock::now();
      auto r = optimizer.Optimize(query);
      auto t1 = std::chrono::steady_clock::now();
      if (!r.ok()) {
        std::printf("  threads=%d FAILED: %s\n", threads,
                    r.status().ToString().c_str());
        return;
      }
      last = std::move(r).value();
      double us = std::chrono::duration<double, std::micro>(t1 - t0).count();
      if (rep == 0 || us < best_us) best_us = us;
    }
    std::string sig = PlanSignature(*last.best);
    if (threads == 1) {
      baseline_sig = sig;
      baseline_us = best_us;
    }
    bool match = sig == baseline_sig;
    std::printf(
        "  threads=%d  %10.0f us  speedup %.2fx  best cost %.0f  plans %lld"
        "  plan %s\n",
        threads, best_us, baseline_us / best_us, last.total_cost,
        static_cast<long long>(last.plans_in_table),
        match ? "identical" : "DIVERGED");
    std::printf(
        "BENCH_JSON {\"bench\":\"join_enumeration\",\"tables\":%d,"
        "\"threads\":%d,\"micros\":%.0f,\"best_cost\":%.2f,\"plans\":%lld,"
        "\"signature_match\":%s,\"degraded\":%d,\"memo_hit_rate\":%.3f}\n",
        kTables, threads, best_us, last.total_cost,
        static_cast<long long>(last.plans_in_table),
        match ? "true" : "false", last.degraded() ? 1 : 0,
        last.memo_stats.hit_rate());
  }
  std::printf("\n");
}

/// Shared-memo artifact: an 8-relation chain with the expansion memo and the
/// deterministic augmented-plan cache on vs. off, sequential and parallel.
/// The memo-on rows must show a substantial hit rate (>30% on this workload)
/// and an identical best plan; the threads=1 comparison is the
/// no-regression evidence for the cache lookups themselves.
void PrintMemoArtifact() {
  constexpr int kTables = 8;
  constexpr int kReps = 3;
  SyntheticCatalogOptions copts;
  copts.num_tables = kTables;
  copts.seed = 90 + static_cast<uint64_t>(kTables);
  Catalog catalog = MakeSyntheticCatalog(copts);
  Query query = bench::MustParse(catalog, bench::ChainSql(kTables));

  std::printf("shared expansion memo (%d-table chain, best of %d runs):\n",
              kTables, kReps);
  std::string baseline_sig;
  double off_seq_us = 0.0;
  for (bool memo : {false, true}) {
    for (int threads : {1, 4}) {
      OptimizerOptions opts;
      opts.num_threads = threads;
      opts.shared_memo = memo;
      opts.cache_augmented = memo;
      Optimizer optimizer(DefaultRuleSet(), opts);
      double best_us = 0.0;
      OptimizeResult last;
      for (int rep = 0; rep < kReps; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        auto r = optimizer.Optimize(query);
        auto t1 = std::chrono::steady_clock::now();
        if (!r.ok()) {
          std::printf("  memo=%d threads=%d FAILED: %s\n", memo ? 1 : 0,
                      threads, r.status().ToString().c_str());
          return;
        }
        last = std::move(r).value();
        double us = std::chrono::duration<double, std::micro>(t1 - t0).count();
        if (rep == 0 || us < best_us) best_us = us;
      }
      std::string sig = PlanSignature(*last.best);
      if (baseline_sig.empty()) baseline_sig = sig;
      if (!memo && threads == 1) off_seq_us = best_us;
      bool match = sig == baseline_sig;
      double hit_rate = last.memo_stats.hit_rate();
      std::printf(
          "  memo=%-3s threads=%d  %10.0f us  hit rate %5.1f%%  "
          "(%lld hits / %lld lookups)  plan %s\n",
          memo ? "on" : "off", threads, best_us, 100.0 * hit_rate,
          static_cast<long long>(last.memo_stats.hits),
          static_cast<long long>(last.memo_stats.hits +
                                 last.memo_stats.misses),
          match ? "identical" : "DIVERGED");
      std::printf(
          "BENCH_JSON {\"bench\":\"memo\",\"tables\":%d,\"memo\":%d,"
          "\"threads\":%d,\"micros\":%.0f,\"best_cost\":%.2f,"
          "\"memo_hit_rate\":%.3f,\"memo_hits\":%lld,"
          "\"signature_match\":%s,\"seq_micros_vs_uncached\":%.3f}\n",
          kTables, memo ? 1 : 0, threads, best_us, last.total_cost,
          hit_rate, static_cast<long long>(last.memo_stats.hits),
          match ? "true" : "false",
          (memo && threads == 1 && off_seq_us > 0.0) ? best_us / off_seq_us
                                                     : 1.0);
    }
  }
  std::printf("\n");
}

void BM_Enumeration(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool composite = state.range(1) != 0;
  SyntheticCatalogOptions copts;
  copts.num_tables = n;
  copts.seed = 90 + static_cast<uint64_t>(n);
  Catalog catalog = MakeSyntheticCatalog(copts);
  Query query = bench::MustParse(catalog, bench::ChainSql(n));
  OptimizerOptions opts;
  opts.engine.allow_composite_inner = composite;
  Optimizer optimizer(DefaultRuleSet(), opts);
  OptimizeResult last;
  for (auto _ : state) {
    auto r = optimizer.Optimize(query);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    last = std::move(r).value();
    benchmark::DoNotOptimize(last);
  }
  bench::RecordOptimizerEffort(state, last);
}
BENCHMARK(BM_Enumeration)
    ->ArgsProduct({{3, 4, 5, 6, 7, 8}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void BM_ParallelEnumeration(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int threads = static_cast<int>(state.range(1));
  SyntheticCatalogOptions copts;
  copts.num_tables = n;
  copts.seed = 90 + static_cast<uint64_t>(n);
  Catalog catalog = MakeSyntheticCatalog(copts);
  Query query = bench::MustParse(catalog, bench::ChainSql(n));
  OptimizerOptions opts;
  opts.num_threads = threads;
  Optimizer optimizer(DefaultRuleSet(), opts);
  OptimizeResult last;
  for (auto _ : state) {
    auto r = optimizer.Optimize(query);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    last = std::move(r).value();
    benchmark::DoNotOptimize(last);
  }
  bench::RecordOptimizerEffort(state, last);
}
BENCHMARK(BM_ParallelEnumeration)
    ->ArgsProduct({{8, 10}, {1, 2, 4}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace starburst

int main(int argc, char** argv) {
  starburst::PrintArtifact();
  starburst::PrintBushyArtifact();
  starburst::PrintCartesianArtifact();
  starburst::PrintParallelArtifact();
  starburst::PrintMemoArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
