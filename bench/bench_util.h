#ifndef STARBURST_BENCH_BENCH_UTIL_H_
#define STARBURST_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment benches (DESIGN.md §4). Each bench
// binary first prints the reproduced paper artifact (figure or claim table)
// and then runs google-benchmark timings for the mechanism involved.

#include <cstdio>
#include <string>

#include "catalog/synthetic.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "star/default_rules.h"

namespace starburst::bench {

/// The Figure-1 query over the paper catalog (§2.1).
inline const char* kPaperSql =
    "SELECT EMP.NAME, EMP.ADDRESS FROM DEPT, EMP "
    "WHERE DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO";

inline Query MustParse(const Catalog& catalog, const std::string& sql) {
  return ParseSql(catalog, sql).ValueOrDie();
}

/// SQL for a k-way chain join over the synthetic schema.
inline std::string ChainSql(int n, bool with_filter = true) {
  std::string sql = "SELECT T0.id FROM T0";
  for (int i = 1; i < n; ++i) sql += ", T" + std::to_string(i);
  std::string where;
  if (with_filter) where = " WHERE T0.c0 <= 2";
  for (int i = 1; i < n; ++i) {
    where += where.empty() ? " WHERE " : " AND ";
    where += "T" + std::to_string(i) + ".fk0 = T" + std::to_string(i - 1) +
             ".id";
  }
  return sql + where;
}

inline DefaultRuleOptions FullRepertoire() {
  DefaultRuleOptions o;
  o.merge_join = true;
  o.hash_join = true;
  o.forced_projection = true;
  o.dynamic_index = true;
  o.tid_sort = true;
  o.index_and = true;
  o.bloomjoin = true;
  return o;
}

inline void PrintHeader(const char* experiment, const char* claim) {
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s\n", experiment);
  std::printf("  paper artifact/claim: %s\n", claim);
  std::printf("==============================================================="
              "=========\n");
}

}  // namespace starburst::bench

#endif  // STARBURST_BENCH_BENCH_UTIL_H_
