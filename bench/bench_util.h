#ifndef STARBURST_BENCH_BENCH_UTIL_H_
#define STARBURST_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment benches (DESIGN.md §4). Each bench
// binary first prints the reproduced paper artifact (figure or claim table)
// and then runs google-benchmark timings for the mechanism involved.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "catalog/synthetic.h"
#include "obs/metrics.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "star/default_rules.h"

namespace starburst::bench {

/// The Figure-1 query over the paper catalog (§2.1).
inline const char* kPaperSql =
    "SELECT EMP.NAME, EMP.ADDRESS FROM DEPT, EMP "
    "WHERE DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO";

inline Query MustParse(const Catalog& catalog, const std::string& sql) {
  return ParseSql(catalog, sql).ValueOrDie();
}

/// SQL for a k-way chain join over the synthetic schema.
inline std::string ChainSql(int n, bool with_filter = true) {
  std::string sql = "SELECT T0.id FROM T0";
  for (int i = 1; i < n; ++i) sql += ", T" + std::to_string(i);
  std::string where;
  if (with_filter) where = " WHERE T0.c0 <= 2";
  for (int i = 1; i < n; ++i) {
    where += where.empty() ? " WHERE " : " AND ";
    where += "T" + std::to_string(i) + ".fk0 = T" + std::to_string(i - 1) +
             ".id";
  }
  return sql + where;
}

inline DefaultRuleOptions FullRepertoire() {
  DefaultRuleOptions o;
  o.merge_join = true;
  o.hash_join = true;
  o.forced_projection = true;
  o.dynamic_index = true;
  o.tid_sort = true;
  o.index_and = true;
  o.bloomjoin = true;
  return o;
}

/// Attaches the optimizer-effort counters of `r` to the benchmark state, so
/// `--benchmark_out=BENCH_*.json` gains per-benchmark optimizer-effort
/// columns next to the timings (counters land in each run's JSON record).
inline void RecordOptimizerEffort(benchmark::State& state,
                                  const OptimizeResult& r) {
  state.counters["star_refs"] =
      static_cast<double>(r.engine_metrics.star_refs);
  state.counters["alternatives_considered"] =
      static_cast<double>(r.engine_metrics.alternatives_considered);
  state.counters["plans_built"] =
      static_cast<double>(r.engine_metrics.plans_built);
  state.counters["glue_calls"] =
      static_cast<double>(r.glue_metrics.calls);
  state.counters["veneers_added"] =
      static_cast<double>(r.glue_metrics.veneers_added);
  state.counters["plans_pruned"] =
      static_cast<double>(r.table_stats.pruned_dominated +
                          r.table_stats.evicted_dominated);
  state.counters["plans_in_table"] = static_cast<double>(r.plans_in_table);
  state.counters["plan_nodes_created"] =
      static_cast<double>(r.plan_nodes_created);
  state.counters["join_root_refs"] =
      static_cast<double>(r.enumerator_stats.join_root_refs);
  state.counters["memo_hits"] = static_cast<double>(r.memo_stats.hits);
  state.counters["memo_hit_rate"] = r.memo_stats.hit_rate();
}

/// Dumps a metrics-registry snapshot as JSON to stdout (one line, prefixed),
/// for harnesses that scrape bench output rather than --benchmark_out.
inline void PrintMetricsJson(const MetricsRegistry& metrics,
                             const char* tag) {
  std::printf("METRICS_JSON %s %s\n", tag, metrics.ToJson().c_str());
}

/// Core-aware floor for the parallel-execution scaling artifacts: the
/// acceptance bar (>= 2.5x rows/s at 8 exchange workers) only makes sense
/// where 8 hardware threads exist. Smaller machines get a proportionally
/// lower bar, and a single-core box merely checks that the exchange did not
/// badly regress (threads can only timeslice there).
inline double ParallelScalingFloor(unsigned cores) {
  if (cores >= 8) return 2.5;
  if (cores >= 4) return 1.8;
  if (cores >= 2) return 1.25;
  return 0.5;
}

/// Core-aware floor for the typed-kernel speedup artifacts (E14): fused
/// kernels vs the legacy row-at-a-time interpreter. The kernels themselves
/// are single-threaded, but tiny shared boxes time-slice the measurement
/// loop itself, so the bar relaxes the same way the scaling floors do.
inline double KernelSpeedupFloor(unsigned cores) {
  if (cores >= 4) return 4.0;
  if (cores >= 2) return 3.0;
  return 2.0;
}

inline void PrintHeader(const char* experiment, const char* claim) {
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s\n", experiment);
  std::printf("  paper artifact/claim: %s\n", claim);
  std::printf("==============================================================="
              "=========\n");
}

}  // namespace starburst::bench

#endif  // STARBURST_BENCH_BENCH_UTIL_H_
