// Experiment F2 (DESIGN.md): reproduce Figure 2 — the property vector — by
// printing every property of every node of the Figure-1 plan (each LOLEPOP's
// property function at work), then benchmark property-function evaluation.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "plan/explain.h"
#include "properties/property_functions.h"

namespace starburst {
namespace {

void PrintNodeProperties(const PlanOp& node, const Query& query, int depth) {
  std::printf("%*s%s\n", depth * 2, "", node.Label().c_str());
  std::printf("%*s  %s\n", depth * 2, "",
              node.props.ToString(&query).c_str());
  for (const PlanPtr& in : node.inputs) {
    PrintNodeProperties(*in, query, depth + 1);
  }
}

void PrintArtifact() {
  bench::PrintHeader(
      "F2: Figure 2 — properties of a plan",
      "relational (TABLES/COLS/PREDS), physical (ORDER/SITE/TEMP/PATHS), "
      "estimated (CARD/COST) per LOLEPOP");
  Catalog catalog = MakePaperCatalog();
  Query query = bench::MustParse(catalog, bench::kPaperSql);
  Optimizer optimizer(DefaultRuleSet(bench::FullRepertoire()));
  OptimizeResult result = optimizer.Optimize(query).ValueOrDie();
  std::printf("property vectors along the chosen plan:\n\n");
  PrintNodeProperties(*result.best, query, 0);
  std::printf("\n");
}

void BM_AccessPropertyFunction(benchmark::State& state) {
  Catalog catalog = MakePaperCatalog();
  Query query = bench::MustParse(catalog, bench::kPaperSql);
  CostModel cost_model;
  OperatorRegistry registry;
  if (!RegisterBuiltinOperators(&registry).ok()) std::abort();
  PlanFactory factory(query, cost_model, registry);
  OpArgs args;
  args.Set(arg::kQuantifier, int64_t{0});
  args.Set(arg::kCols,
           std::vector<ColumnRef>{ColumnRef{0, 0}, ColumnRef{0, 1}});
  args.Set(arg::kPreds, PredSet::Single(0));
  for (auto _ : state) {
    auto plan = factory.Make(op::kAccess, flavor::kHeap, {}, args);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_AccessPropertyFunction);

void BM_JoinPropertyFunction(benchmark::State& state) {
  Catalog catalog = MakePaperCatalog();
  Query query = bench::MustParse(catalog, bench::kPaperSql);
  CostModel cost_model;
  OperatorRegistry registry;
  if (!RegisterBuiltinOperators(&registry).ok()) std::abort();
  PlanFactory factory(query, cost_model, registry);
  OpArgs dept_args;
  dept_args.Set(arg::kQuantifier, int64_t{0});
  dept_args.Set(arg::kCols, std::vector<ColumnRef>{ColumnRef{0, 0}});
  PlanPtr dept =
      factory.Make(op::kAccess, flavor::kHeap, {}, dept_args).ValueOrDie();
  OpArgs emp_args;
  emp_args.Set(arg::kQuantifier, int64_t{1});
  emp_args.Set(arg::kCols, std::vector<ColumnRef>{ColumnRef{1, 1}});
  PlanPtr emp =
      factory.Make(op::kAccess, flavor::kHeap, {}, emp_args).ValueOrDie();
  OpArgs join_args;
  join_args.Set(arg::kJoinPreds, PredSet::Single(1));
  join_args.Set(arg::kResidualPreds, PredSet{});
  for (auto _ : state) {
    auto plan = factory.Make(op::kJoin, flavor::kNL, {dept, emp}, join_args);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_JoinPropertyFunction);

void BM_PropertyVectorSetGet(benchmark::State& state) {
  for (auto _ : state) {
    PropertyVector pv;
    pv.set_tables(QuantifierSet::FirstN(3));
    pv.set_card(1234.5);
    pv.set_site(1);
    pv.set_temp(true);
    benchmark::DoNotOptimize(pv.card());
    benchmark::DoNotOptimize(pv.site());
  }
}
BENCHMARK(BM_PropertyVectorSetGet);

}  // namespace
}  // namespace starburst

int main(int argc, char** argv) {
  starburst::PrintArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
