// Experiment E5 (DESIGN.md): §5's claim that adding a strategy is a rule
// edit, not an optimizer rebuild. We measure (a) parsing/installing the
// whole default rule base from text, (b) appending one strategy to a live
// rule base, and show the plan-space delta the edit produces.

#include <benchmark/benchmark.h>

#include <fstream>
#include <sstream>

#include "bench_util.h"
#include "star/dsl_parser.h"

#ifndef STARBURST_RULES_DIR
#define STARBURST_RULES_DIR "rules"
#endif

namespace starburst {
namespace {

std::string DefaultRuleText() {
  std::ifstream in(std::string(STARBURST_RULES_DIR) + "/default.star");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void PrintArtifact() {
  bench::PrintHeader(
      "E5: strategies are data (§5)",
      "\"new STARs can be added to that file without impacting the "
      "Starburst system code at all\"");
  Catalog catalog = MakePaperCatalog();
  Query query = bench::MustParse(catalog, bench::kPaperSql);

  Optimizer optimizer(DefaultRuleSet());  // NL + MG
  auto before = optimizer.Optimize(query).ValueOrDie();
  std::printf("before edit (NL+MG):     plans_built=%lld best_cost=%.0f\n",
              static_cast<long long>(before.engine_metrics.plans_built),
              before.total_cost);

  // The DBC appends the hash-join strategy to the *live* rule base.
  AddHashJoinAlternative(&optimizer.rules());
  auto after = optimizer.Optimize(query).ValueOrDie();
  std::printf("after  edit (+hash):     plans_built=%lld best_cost=%.0f\n",
              static_cast<long long>(after.engine_metrics.plans_built),
              after.total_cost);

  // Or replaces a STAR wholesale from rule text.
  Status st = LoadRules(&optimizer.rules(), R"(
    star JoinRoot(T1, T2, P)
      alt 'left-deep-only':
        PermutedJoin(T1, T2, P)
    end
  )");
  if (!st.ok()) std::abort();
  auto narrowed = optimizer.Optimize(query).ValueOrDie();
  std::printf("after replacing JoinRoot (no permutation): plans_built=%lld "
              "best_cost=%.0f\n\n",
              static_cast<long long>(narrowed.engine_metrics.plans_built),
              narrowed.total_cost);
}

void BM_ParseDefaultRuleFile(benchmark::State& state) {
  std::string text = DefaultRuleText();
  for (auto _ : state) {
    RuleSet rules;
    Status st = LoadRules(&rules, text);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(rules);
  }
  state.counters["bytes"] =
      benchmark::Counter(static_cast<double>(text.size()));
}
BENCHMARK(BM_ParseDefaultRuleFile)->Unit(benchmark::kMicrosecond);

void BM_AppendStrategyToLiveRuleBase(benchmark::State& state) {
  for (auto _ : state) {
    RuleSet rules = DefaultRuleSet();
    AddHashJoinAlternative(&rules);
    AddDynamicIndexAlternative(&rules);
    benchmark::DoNotOptimize(rules);
  }
}
BENCHMARK(BM_AppendStrategyToLiveRuleBase)->Unit(benchmark::kMicrosecond);

void BM_OptimizeAfterRuleEdit(benchmark::State& state) {
  // Full cycle a DBC experiences: edit rules, re-optimize. No compilation.
  Catalog catalog = MakePaperCatalog();
  Query query = bench::MustParse(catalog, bench::kPaperSql);
  for (auto _ : state) {
    Optimizer optimizer(DefaultRuleSet());
    AddHashJoinAlternative(&optimizer.rules());
    auto r = optimizer.Optimize(query);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_OptimizeAfterRuleEdit)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace starburst

int main(int argc, char** argv) {
  starburst::PrintArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
