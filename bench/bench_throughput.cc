// Experiment E13 (DESIGN.md): serving throughput through the concurrent
// front end. N client threads each push M statements through SqlServer,
// once with the normalized-SQL plan cache on and once off. The cache
// converts per-statement rule-driven optimization into a digest lookup, so
// cache-on QPS must beat cache-off QPS — CI greps the BENCH_JSON line for
// "cache_speedup_ok":true.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "catalog/synthetic.h"
#include "server/server.h"
#include "star/default_rules.h"
#include "storage/datagen.h"

namespace starburst {
namespace {

struct ServingSetup {
  Catalog catalog;
  Database db;

  ServingSetup() : catalog(MakePaperCatalog()), db(catalog) {
    if (!PopulatePaperDatabase(&db, /*seed=*/7, /*scale=*/0.1).ok())
      std::abort();
  }

  std::unique_ptr<SqlServer> MakeServer(bool cache_on, int workers) {
    ServerOptions opts;
    opts.num_workers = workers;
    opts.cache_enabled = cache_on;
    // Budgets pinned off so both configurations optimize identically; the
    // comparison is pure serving throughput, not degradation behavior.
    opts.optimizer.deadline_ms = 0;
    opts.optimizer.max_plans = 0;
    opts.optimizer.max_plan_table_bytes = 0;
    return std::make_unique<SqlServer>(&catalog, &db, DefaultRuleSet(),
                                       opts);
  }
};

/// The server_test differential workload shape: literal-varied equality
/// statements (which fold to shared cache entries) plus fixed multi-table
/// and ORDER BY statements, so the cache sees realistic reuse rather than
/// one statement hammered N*M times.
std::vector<std::string> ClientStatements(int client, int statements) {
  const std::string base[] = {
      "SELECT EMP.NAME, EMP.ADDRESS FROM DEPT, EMP "
      "WHERE DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO",
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = $P",
      "SELECT DEPT.DNAME, DEPT.BUDGET FROM DEPT WHERE DEPT.DNO = $P",
      "SELECT EMP.NAME, EMP.SALARY FROM EMP "
      "WHERE EMP.SALARY >= 100000 ORDER BY EMP.SALARY",
      "SELECT EMP.NAME FROM DEPT, EMP "
      "WHERE DEPT.DNO = EMP.DNO AND DEPT.BUDGET >= 500",
      "SELECT EMP.ENO, EMP.NAME FROM EMP WHERE EMP.ENO = $P",
  };
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(statements));
  for (int i = 0; i < statements; ++i) {
    std::string sql = base[static_cast<size_t>(i) % std::size(base)];
    size_t p = sql.find("$P");
    if (p != std::string::npos) {
      sql.replace(p, 2, std::to_string((client * 7 + i) % 20));
    }
    out.push_back(sql);
  }
  return out;
}

struct ServingRun {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  long long statements = 0;
  long long errors = 0;
  long long hits = 0;
  long long misses = 0;
};

ServingRun RunServing(ServingSetup& setup, bool cache_on, int clients,
                      int per_client) {
  std::unique_ptr<SqlServer> server = setup.MakeServer(cache_on, clients);
  std::vector<SessionPtr> sessions;
  sessions.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    sessions.push_back(
        server->OpenSession("bench-" + std::to_string(c)).ValueOrDie());
  }
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (const std::string& sql : ClientStatements(c, per_client)) {
        auto result = server->Execute(sessions[static_cast<size_t>(c)], sql);
        if (!result.ok()) std::abort();  // the workload must serve cleanly
      }
    });
  }
  for (auto& t : threads) t.join();
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  MetricsRegistry::Snapshot snap = server->metrics().TakeSnapshot();
  ServingRun run;
  run.statements = snap.counters["server.statements"];
  run.errors = snap.counters["server.errors"];
  run.hits = snap.counters["server.cache_hits"];
  run.misses = snap.counters["server.cache_misses"];
  run.qps = seconds > 0 ? static_cast<double>(run.statements) / seconds : 0;
  auto it = snap.histograms.find("server.statement_us");
  if (it != snap.histograms.end()) {
    run.p50_us = it->second.p50;
    run.p99_us = it->second.p99;
  }
  return run;
}

void PrintArtifact() {
  bench::PrintHeader(
      "E13: serving throughput, plan cache on vs off",
      "amortizing rule-driven optimization across statements: the cache "
      "turns optimize into a digest lookup, so cache-on QPS must win");
  ServingSetup setup;
  unsigned cores = std::thread::hardware_concurrency();
  const int clients = static_cast<int>(std::clamp(cores, 2u, 4u));
  const int per_client = 48;

  ServingRun off = RunServing(setup, /*cache_on=*/false, clients, per_client);
  ServingRun on = RunServing(setup, /*cache_on=*/true, clients, per_client);

  std::printf(
      "  %d clients x %d statements each (paper schema, scale 0.1)\n"
      "  cache off: %8.1f qps  p50 %8.1f us  p99 %8.1f us\n"
      "  cache on:  %8.1f qps  p50 %8.1f us  p99 %8.1f us  "
      "(%lld hits / %lld misses)\n"
      "  speedup: %.2fx\n\n",
      clients, per_client, off.qps, off.p50_us, off.p99_us, on.qps,
      on.p50_us, on.p99_us, on.hits, on.misses,
      off.qps > 0 ? on.qps / off.qps : 0.0);

  bool speedup_ok = on.qps > off.qps && on.errors == 0 && off.errors == 0;
  std::printf(
      "BENCH_JSON {\"bench\":\"throughput\",\"clients\":%d,"
      "\"per_client\":%d,\"qps_cache_on\":%.1f,\"qps_cache_off\":%.1f,"
      "\"p99_us_cache_on\":%.1f,\"p99_us_cache_off\":%.1f,"
      "\"cache_hits\":%lld,\"cache_misses\":%lld,"
      "\"cache_speedup_ok\":%s}\n\n",
      clients, per_client, on.qps, off.qps, on.p99_us, off.p99_us, on.hits,
      on.misses, speedup_ok ? "true" : "false");
}

// ---------------------------------------------------------------------------
// google-benchmark timings: one statement through the full serving path
// (parse -> cache -> execute), inline on a 0-worker server so the numbers
// measure the statement pipeline rather than queue handoff.
// ---------------------------------------------------------------------------

void BM_ServeStatementCached(benchmark::State& state) {
  ServingSetup setup;
  auto server = setup.MakeServer(/*cache_on=*/true, /*workers=*/0);
  SessionPtr session = server->OpenSession("bm").ValueOrDie();
  const std::string sql = "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 7";
  (void)server->Execute(session, sql);  // warm the cache entry
  for (auto _ : state) {
    auto result = server->Execute(session, sql);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeStatementCached);

void BM_ServeStatementUncached(benchmark::State& state) {
  ServingSetup setup;
  auto server = setup.MakeServer(/*cache_on=*/false, /*workers=*/0);
  SessionPtr session = server->OpenSession("bm").ValueOrDie();
  const std::string sql = "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 7";
  for (auto _ : state) {
    auto result = server->Execute(session, sql);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeStatementUncached);

void BM_PreparedExecute(benchmark::State& state) {
  ServingSetup setup;
  auto server = setup.MakeServer(/*cache_on=*/true, /*workers=*/0);
  SessionPtr session = server->OpenSession("bm").ValueOrDie();
  Status st = server->Prepare(
      session, "by_dno", "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = ?");
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  int64_t dno = 0;
  for (auto _ : state) {
    auto result = server->ExecutePrepared(session, "by_dno",
                                          {Datum(int64_t{dno++ % 20})});
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PreparedExecute);

}  // namespace
}  // namespace starburst

int main(int argc, char** argv) {
  starburst::PrintArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
