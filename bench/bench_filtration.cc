// Experiment E8 (DESIGN.md): the §4 "filtration methods" (semi-joins /
// Bloom-joins) the paper lists among its constructible-but-omitted STARs,
// validated for R* in [MACK 86]. Sweep the communication price and the
// outer's filter selectivity; report when the Bloom-reduced shipment beats
// the classical alternatives.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "plan/explain.h"

namespace starburst {
namespace {

ColumnDef Col(const char* name, double distinct, double width = 8.0) {
  ColumnDef c;
  c.name = name;
  c.distinct_values = distinct;
  c.min_value = 0;
  c.max_value = distinct - 1;
  c.avg_width = width;
  return c;
}

/// Wide filtered outer at the result site, large narrow inner remote.
Catalog MackertLohmanCatalog(double filter_distinct) {
  Catalog cat;
  SiteId ny = cat.AddSite("N.Y.");
  TableDef a;
  a.name = "CUST";
  a.columns = {Col("id", 10000), Col("c", filter_distinct),
               Col("profile", 100, 300)};
  a.row_count = 10000;
  a.data_pages = 800;
  a.site = ny;
  cat.AddTable(std::move(a)).ValueOrDie();
  TableDef b;
  b.name = "ORDERS";
  b.columns = {Col("fk", 10000), Col("val", 1000)};
  b.row_count = 100000;
  b.data_pages = 500;
  b.site = 0;
  cat.AddTable(std::move(b)).ValueOrDie();
  return cat;
}

const char* kSql =
    "SELECT profile, val FROM CUST, ORDERS WHERE c = 1 AND id = fk "
    "AT SITE 'N.Y.'";

void PrintArtifact() {
  bench::PrintHeader(
      "E8: semijoin / Bloomjoin filtration (§4, [MACK 86])",
      "reduce a remote inner by a shipped filter of the outer's join "
      "columns before shipping it to the join site");

  std::printf("outer filter selectivity sweep (default comm price):\n");
  std::printf("%-12s | %12s %12s | %8s | %s\n", "outer rows", "no bloom",
              "with bloom", "speedup", "bloom chosen?");
  for (double distinct : {2.0, 5.0, 20.0, 100.0, 1000.0}) {
    Catalog cat = MackertLohmanCatalog(distinct);
    Query query = bench::MustParse(cat, kSql);
    Optimizer plain{DefaultRuleSet()};
    DefaultRuleOptions with;
    with.bloomjoin = true;
    Optimizer bloom(DefaultRuleSet(with));
    auto r0 = plain.Optimize(query).ValueOrDie();
    auto r1 = bloom.Optimize(query).ValueOrDie();
    bool used =
        PlanSignature(*r1.best).find("FILTERBY") != std::string::npos;
    std::printf("%-12.0f | %12.0f %12.0f | %7.2fx | %s\n", 10000.0 / distinct,
                r0.total_cost, r1.total_cost, r0.total_cost / r1.total_cost,
                used ? "yes" : "no");
  }

  std::printf("\ncommunication price sweep (outer filtered to 500 rows):\n");
  std::printf("%-10s | %12s %12s | %8s | %s\n", "comm x", "no bloom",
              "with bloom", "speedup", "bloom chosen?");
  for (double mult : {0.1, 1.0, 10.0, 100.0}) {
    Catalog cat = MackertLohmanCatalog(20.0);
    Query query = bench::MustParse(cat, kSql);
    OptimizerOptions opts;
    opts.cost_params.msg_cost *= mult;
    opts.cost_params.byte_cost *= mult;
    Optimizer plain(DefaultRuleSet(), opts);
    DefaultRuleOptions with;
    with.bloomjoin = true;
    Optimizer bloom(DefaultRuleSet(with), opts);
    auto r0 = plain.Optimize(query).ValueOrDie();
    auto r1 = bloom.Optimize(query).ValueOrDie();
    bool used =
        PlanSignature(*r1.best).find("FILTERBY") != std::string::npos;
    std::printf("%-10.1f | %12.0f %12.0f | %7.2fx | %s\n", mult,
                r0.total_cost, r1.total_cost, r0.total_cost / r1.total_cost,
                used ? "yes" : "no");
  }

  Catalog cat = MackertLohmanCatalog(20.0);
  Query query = bench::MustParse(cat, kSql);
  DefaultRuleOptions with;
  with.bloomjoin = true;
  Optimizer bloom(DefaultRuleSet(with));
  auto r = bloom.Optimize(query).ValueOrDie();
  std::printf("\nchosen Bloomjoin plan:\n%s\n",
              ExplainPlan(*r.best, query).c_str());
}

void BM_OptimizeWithBloomjoin(benchmark::State& state) {
  Catalog cat = MackertLohmanCatalog(20.0);
  Query query = bench::MustParse(cat, kSql);
  DefaultRuleOptions with;
  with.bloomjoin = true;
  Optimizer optimizer(DefaultRuleSet(with));
  for (auto _ : state) {
    auto r = optimizer.Optimize(query);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_OptimizeWithBloomjoin)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace starburst

int main(int argc, char** argv) {
  starburst::PrintArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
