// Experiment E3 (DESIGN.md): each §4.4/§4.5 join-method STAR wins on the
// workload that motivates it. For every workload we report the best total
// cost without and with the strategy under test (all from the same rule
// base, differing only in the JMeth alternatives present), reproducing the
// paper's rationale for each alternative.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>

#include "bench_util.h"
#include "exec/evaluator.h"
#include "plan/explain.h"
#include "properties/property_functions.h"
#include "storage/datagen.h"

namespace starburst {
namespace {

ColumnDef IntCol(const char* name, double distinct, double max_v,
                 double width = 8.0) {
  ColumnDef c;
  c.name = name;
  c.distinct_values = distinct;
  c.min_value = 0;
  c.max_value = max_v;
  c.avg_width = width;
  return c;
}

// --- W-MG: both inputs clustered on the join key -> merge join needs no
// sorts, nested-loop pays a B-tree descend per outer tuple (§4.4). ---------
Catalog MergeWorkload() {
  Catalog cat;
  TableDef a;
  a.name = "A";
  a.columns = {IntCol("id", 20000, 19999), IntCol("pay", 100, 99, 64)};
  a.row_count = 20000;
  a.data_pages = 400;
  a.storage = StorageKind::kBTree;
  a.btree_key = {0};
  cat.AddTable(std::move(a)).ValueOrDie();
  TableDef b;
  b.name = "B";
  b.columns = {IntCol("aid", 20000, 19999), IntCol("val", 100, 99, 64)};
  b.row_count = 20000;
  b.data_pages = 400;
  b.storage = StorageKind::kBTree;
  b.btree_key = {0};
  cat.AddTable(std::move(b)).ValueOrDie();
  return cat;
}
const char* kMergeSql = "SELECT A.pay FROM A, B WHERE A.id = B.aid";

// --- W-HA: expression join predicate -> not sortable, no index applies;
// plain nested-loop rescans the inner heap per outer tuple (§4.5.1). -------
Catalog HashWorkload() {
  Catalog cat;
  TableDef a;
  a.name = "A";
  a.columns = {IntCol("x", 10000, 9999), IntCol("pay", 100, 99, 32)};
  a.row_count = 10000;
  a.data_pages = 150;
  cat.AddTable(std::move(a)).ValueOrDie();
  TableDef b;
  b.name = "B";
  b.columns = {IntCol("y", 10000, 9999), IntCol("val", 100, 99, 32)};
  b.row_count = 10000;
  b.data_pages = 150;
  cat.AddTable(std::move(b)).ValueOrDie();
  return cat;
}
const char* kHashSql = "SELECT A.pay FROM A, B WHERE A.x + 1 = B.y * 1";

// --- W-DynX: large unsorted outer, selective inner predicate, no index on
// the inner join column -> build one on the fly instead of sorting both
// sides (§4.5.3). -----------------------------------------------------------
Catalog DynIxWorkload() {
  Catalog cat;
  TableDef a;
  a.name = "A";
  a.columns = {IntCol("fk", 50000, 49999), IntCol("pay", 100, 99, 256)};
  a.row_count = 100000;
  a.data_pages = 6500;
  cat.AddTable(std::move(a)).ValueOrDie();
  TableDef b;
  b.name = "B";
  b.columns = {IntCol("id", 50000, 49999), IntCol("c", 500, 499, 8)};
  b.row_count = 50000;
  b.data_pages = 1000;
  cat.AddTable(std::move(b)).ValueOrDie();
  return cat;
}
const char* kDynIxSql =
    "SELECT A.pay FROM A, B WHERE A.fk = B.id AND B.c = 7";

// --- W-FP: highly selective, narrow inner that would otherwise be
// re-scanned per outer tuple -> materialize the projection once (§4.5.2).
// The expression join predicate keeps merge/hash/index out of this
// comparison. ---------------------------------------------------------------
Catalog FProjWorkload() {
  Catalog cat;
  TableDef a;
  a.name = "A";
  a.columns = {IntCol("x", 20000, 19999), IntCol("pay", 100, 99, 32)};
  a.row_count = 50000;
  a.data_pages = 800;
  cat.AddTable(std::move(a)).ValueOrDie();
  TableDef b;
  b.name = "B";
  b.columns = {IntCol("y", 20000, 19999), IntCol("c", 200, 199, 8),
               IntCol("wide", 100, 99, 200)};
  b.row_count = 20000;
  b.data_pages = 1200;
  cat.AddTable(std::move(b)).ValueOrDie();
  return cat;
}
const char* kFProjSql =
    "SELECT A.pay FROM A, B WHERE A.x + 1 = B.y + 2 AND B.c = 7";

struct Workload {
  const char* name;
  const char* motivates;
  std::function<Catalog()> catalog;
  const char* sql;
  DefaultRuleOptions without;
  DefaultRuleOptions with;
};

std::vector<Workload> Workloads() {
  DefaultRuleOptions nl_only;
  nl_only.merge_join = false;

  Workload w_mg{"W-MG (pre-clustered inputs)", "sort-merge (§4.4)",
                MergeWorkload, kMergeSql, nl_only, {}};
  w_mg.with.merge_join = true;

  Workload w_ha{"W-HA (expression join pred)", "hash join (§4.5.1)",
                HashWorkload, kHashSql, nl_only, nl_only};
  w_ha.with.hash_join = true;

  Workload w_dx{"W-DynX (no index on inner)", "dynamic index (§4.5.3)",
                DynIxWorkload, kDynIxSql, {}, {}};
  w_dx.with.dynamic_index = true;

  Workload w_fp{"W-FP (tiny projected inner)", "forced projection (§4.5.2)",
                FProjWorkload, kFProjSql, nl_only, nl_only};
  w_fp.with.forced_projection = true;

  return {w_mg, w_ha, w_dx, w_fp};
}

double BestCost(const Catalog& catalog, const char* sql,
                const DefaultRuleOptions& rules, std::string* winner) {
  Query query = bench::MustParse(catalog, sql);
  Optimizer optimizer(DefaultRuleSet(rules));
  auto r = optimizer.Optimize(query).ValueOrDie();
  if (winner != nullptr) *winner = r.best->Label();
  return r.total_cost;
}

void PrintArtifact() {
  bench::PrintHeader("E3: each join-method STAR wins somewhere",
                     "the §4.4-§4.5 rationale for every JMeth alternative");
  std::printf("%-30s | %-26s | %12s %12s | %8s | %s\n", "workload",
              "strategy under test", "cost without", "cost with", "speedup",
              "winning root op");
  for (const Workload& w : Workloads()) {
    Catalog catalog = w.catalog();
    std::string winner;
    double without = BestCost(catalog, w.sql, w.without, nullptr);
    double with = BestCost(catalog, w.sql, w.with, &winner);
    std::printf("%-30s | %-26s | %12.0f %12.0f | %7.1fx | %s\n", w.name,
                w.motivates, without, with, without / with, winner.c_str());
  }
  std::printf("\n");
}

// --- Execution: the vectorized batch pipeline vs the legacy row-at-a-time
// interpreter on the same HA-join plan. The batch engine's open-addressing
// hash table and compiled key programs carry the speedup. ------------------

double MeasureRowsPerSec(const Database& db, const Query& query,
                         const PlanPtr& plan, bool vectorized, int iters,
                         size_t* out_rows, int typed_kernels = -1) {
  ExecOptions options;
  options.vectorized = vectorized ? 1 : 0;
  options.typed_kernels = typed_kernels;
  auto warm = ExecutePlan(db, query, plan, options).ValueOrDie();
  *out_rows = warm.rows.size();
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    auto rs = ExecutePlan(db, query, plan, options);
    if (!rs.ok()) std::abort();
    benchmark::DoNotOptimize(rs.value().rows.data());
  }
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return static_cast<double>(*out_rows) * iters / secs;
}

void PrintExecArtifact() {
  bench::PrintHeader(
      "E3b: vectorized executor vs legacy interpreter (HA join)",
      "same plan, two engines; batching + compiled predicates + "
      "open-addressing hash table");
  Catalog catalog = HashWorkload();
  Database db(catalog);
  if (!PopulateDatabase(&db, /*seed=*/17, /*scale=*/1.0).ok()) std::abort();
  // Expression keys: both engines hash them, but the legacy interpreter
  // re-walks the expression tree per tuple where the batch engine runs a
  // compiled two-step program.
  Query query = bench::MustParse(catalog,
                                 "SELECT A.pay FROM A, B WHERE "
                                 "A.x + 1 = B.y + 1");

  CostModel cost_model;
  OperatorRegistry operators;
  if (!RegisterBuiltinOperators(&operators).ok()) std::abort();
  PlanFactory factory(query, cost_model, operators);
  auto scan = [&](int q, ColumnRef key, ColumnRef payload) {
    OpArgs args;
    args.Set(arg::kQuantifier, int64_t{q});
    args.Set(arg::kCols, std::vector<ColumnRef>{key, payload});
    args.Set(arg::kPreds, PredSet{});
    return factory.Make(op::kAccess, flavor::kHeap, {}, std::move(args))
        .ValueOrDie();
  };
  OpArgs join;
  join.Set(arg::kJoinPreds, PredSet::Single(0));
  join.Set(arg::kResidualPreds, PredSet{});
  PlanPtr ha =
      factory
          .Make(op::kJoin, flavor::kHA,
                {scan(0, query.ResolveColumn("A", "x").ValueOrDie(),
                      query.ResolveColumn("A", "pay").ValueOrDie()),
                 scan(1, query.ResolveColumn("B", "y").ValueOrDie(),
                      query.ResolveColumn("B", "val").ValueOrDie())},
                std::move(join))
          .ValueOrDie();

  size_t rows = 0;
  const int kIters = 5;
  double legacy = MeasureRowsPerSec(db, query, ha, false, kIters, &rows);
  double vec = MeasureRowsPerSec(db, query, ha, true, kIters, &rows);
  double speedup = vec / legacy;
  std::printf("%-28s | %14s | %14s | %8s\n", "HA join 10k x 10k",
              "legacy rows/s", "vector rows/s", "speedup");
  std::printf("%-28s | %14.0f | %14.0f | %7.2fx\n", "A.x + 1 = B.y + 1",
              legacy, vec, speedup);
  std::printf(
      "BENCH_JSON {\"bench\":\"join_exec\",\"flavor\":\"HA\","
      "\"rows\":%zu,\"legacy_rows_per_sec\":%.0f,"
      "\"vectorized_rows_per_sec\":%.0f,\"speedup\":%.2f,"
      "\"speedup_ge2\":%s}\n\n",
      rows, legacy, vec, speedup, speedup >= 2.0 ? "true" : "false");
}

// --- Experiment E14b: typed key kernels on the same HA shape with bare
// int64 columns as keys. The build and probe sides hash straight from the
// base column (HashInt64JoinKey) instead of materializing a Datum key per
// tuple; the legacy engine walks the key expression and hashes generically
// per tuple. Core-aware bar like E14a. --------------------------------------

void PrintKernelExecArtifact() {
  bench::PrintHeader(
      "E14b: typed-kernel HA join vs legacy interpreter",
      "int64 key kernels hash the base column directly; mismatch rows fall "
      "back to the generic per-tuple path");
  Catalog catalog = HashWorkload();
  Database db(catalog);
  if (!PopulateDatabase(&db, /*seed=*/17, /*scale=*/1.0).ok()) std::abort();
  Query query = bench::MustParse(catalog,
                                 "SELECT A.pay FROM A, B WHERE A.x = B.y");

  CostModel cost_model;
  OperatorRegistry operators;
  if (!RegisterBuiltinOperators(&operators).ok()) std::abort();
  PlanFactory factory(query, cost_model, operators);
  auto scan = [&](int q, ColumnRef key, ColumnRef payload) {
    OpArgs args;
    args.Set(arg::kQuantifier, int64_t{q});
    args.Set(arg::kCols, std::vector<ColumnRef>{key, payload});
    args.Set(arg::kPreds, PredSet{});
    return factory.Make(op::kAccess, flavor::kHeap, {}, std::move(args))
        .ValueOrDie();
  };
  OpArgs join;
  join.Set(arg::kJoinPreds, PredSet::Single(0));
  join.Set(arg::kResidualPreds, PredSet{});
  PlanPtr ha =
      factory
          .Make(op::kJoin, flavor::kHA,
                {scan(0, query.ResolveColumn("A", "x").ValueOrDie(),
                      query.ResolveColumn("A", "pay").ValueOrDie()),
                 scan(1, query.ResolveColumn("B", "y").ValueOrDie(),
                      query.ResolveColumn("B", "val").ValueOrDie())},
                std::move(join))
          .ValueOrDie();

  size_t rows = 0;
  const int kIters = 5;
  double legacy = MeasureRowsPerSec(db, query, ha, false, kIters, &rows);
  double interp = MeasureRowsPerSec(db, query, ha, true, kIters, &rows, 0);
  double fused = MeasureRowsPerSec(db, query, ha, true, kIters, &rows, 1);
  double speedup = fused / legacy;
  unsigned cores = std::thread::hardware_concurrency();
  double floor = bench::KernelSpeedupFloor(cores);
  std::printf("%-28s | %13s | %13s | %13s | %8s\n", "HA join 10k x 10k",
              "legacy rows/s", "interp rows/s", "kernel rows/s", "speedup");
  std::printf("%-28s | %13.0f | %13.0f | %13.0f | %7.2fx\n", "A.x = B.y",
              legacy, interp, fused, speedup);
  std::printf(
      "BENCH_JSON {\"bench\":\"kernel_join\",\"flavor\":\"HA\",\"rows\":%zu,"
      "\"legacy_rows_per_sec\":%.0f,\"interp_rows_per_sec\":%.0f,"
      "\"kernel_rows_per_sec\":%.0f,\"speedup\":%.2f,\"cores\":%u,"
      "\"floor\":%.2f,\"kernel_speedup_ok\":%s}\n\n",
      rows, legacy, interp, fused, speedup, cores, floor,
      speedup >= floor ? "true" : "false");
}

// --- Grace spill: the same 10k x 10k HA plan under a tight memory budget.
// Both sides partition to temp files and join partition-by-partition; the
// result is bit-identical and the slowdown is bounded by linear re-reads. --

void PrintSpillExecArtifact() {
  bench::PrintHeader(
      "E3d: JOIN(HA) Grace spill overhead, in-memory vs partitioned",
      "16-way partition files on both sides under a 256 KiB budget, "
      "index-merged back to streaming emission order");
  Catalog catalog = HashWorkload();
  Database db(catalog);
  if (!PopulateDatabase(&db, /*seed=*/17, /*scale=*/1.0).ok()) std::abort();
  Query query = bench::MustParse(catalog,
                                 "SELECT A.pay FROM A, B WHERE "
                                 "A.x + 1 = B.y + 1");

  CostModel cost_model;
  OperatorRegistry operators;
  if (!RegisterBuiltinOperators(&operators).ok()) std::abort();
  PlanFactory factory(query, cost_model, operators);
  auto scan = [&](int q, ColumnRef key, ColumnRef payload) {
    OpArgs args;
    args.Set(arg::kQuantifier, int64_t{q});
    args.Set(arg::kCols, std::vector<ColumnRef>{key, payload});
    args.Set(arg::kPreds, PredSet{});
    return factory.Make(op::kAccess, flavor::kHeap, {}, std::move(args))
        .ValueOrDie();
  };
  OpArgs join;
  join.Set(arg::kJoinPreds, PredSet::Single(0));
  join.Set(arg::kResidualPreds, PredSet{});
  PlanPtr ha =
      factory
          .Make(op::kJoin, flavor::kHA,
                {scan(0, query.ResolveColumn("A", "x").ValueOrDie(),
                      query.ResolveColumn("A", "pay").ValueOrDie()),
                 scan(1, query.ResolveColumn("B", "y").ValueOrDie(),
                      query.ResolveColumn("B", "val").ValueOrDie())},
                std::move(join))
          .ValueOrDie();

  int64_t spill_runs = 0;
  auto measure = [&](int64_t mem_limit, size_t* out_rows) {
    ExecOptions options;
    options.vectorized = 1;
    options.exec_mem_limit = mem_limit;
    if (mem_limit > 0) {
      ExecProfile profile;
      options.profile_sink = &profile;
      auto warm = ExecutePlan(db, query, ha, options).ValueOrDie();
      *out_rows = warm.rows.size();
      for (const auto& [node, p] : profile.ops()) spill_runs += p.spill_runs;
      options.profile_sink = nullptr;
    } else {
      auto warm = ExecutePlan(db, query, ha, options).ValueOrDie();
      *out_rows = warm.rows.size();
    }
    // Best-of-3 repetitions: the ratio below gates CI, so scheduler noise
    // in either measurement must not leak into it.
    const int kIters = 5;
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kIters; ++i) {
        auto rs = ExecutePlan(db, query, ha, options);
        if (!rs.ok()) std::abort();
        benchmark::DoNotOptimize(rs.value().rows.data());
      }
      double secs = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      best = std::max(best,
                      static_cast<double>(*out_rows) * kIters / secs);
    }
    return best;
  };
  size_t rows = 0;
  double in_memory = measure(/*mem_limit=*/-1, &rows);
  // A budget around a quarter of the join's working set: most of both sides
  // still partitions to disk (spill_runs stays at dozens of partition
  // files), representative of a real memory squeeze rather than the 1-byte
  // torture budget the correctness tests use.
  double spilled = measure(/*mem_limit=*/256 * 1024, &rows);
  double ratio = in_memory / spilled;
  bool spill_ok = spill_runs > 0 && spilled >= in_memory / 3.0;
  std::printf("%-28s | %14s | %14s | %8s | %5s\n", "HA join 10k x 10k",
              "in-mem rows/s", "spilled rows/s", "slowdown", "parts");
  std::printf("%-28s | %14.0f | %14.0f | %7.2fx | %5lld\n",
              "A.x + 1 = B.y + 1", in_memory, spilled, ratio,
              static_cast<long long>(spill_runs));
  std::printf(
      "BENCH_JSON {\"bench\":\"join_spill\",\"flavor\":\"HA\",\"rows\":%zu,"
      "\"in_memory_rows_per_sec\":%.0f,\"spilled_rows_per_sec\":%.0f,"
      "\"slowdown\":%.2f,\"spill_runs\":%lld,\"spill_ok\":%s}\n\n",
      rows, in_memory, spilled, ratio, static_cast<long long>(spill_runs),
      spill_ok ? "true" : "false");
}

// --- Morsel parallelism: the same vectorized HA plan at 1 vs 8 exchange
// workers. The partitioned build and probe morsels carry the scaling; the
// floor is core-aware so the artifact is meaningful on small runners. ------

void PrintParallelExecArtifact() {
  bench::PrintHeader(
      "E3c: exchange scaling, JOIN(HA) at 1 vs 8 workers",
      "morsel-parallel partitioned build + probe, bit-identical output");
  Catalog cat;
  TableDef a;
  a.name = "A";
  a.columns = {IntCol("fk", 100000, 99999), IntCol("pay", 100, 99, 32)};
  a.row_count = 200000;
  a.data_pages = 3000;
  cat.AddTable(std::move(a)).ValueOrDie();
  TableDef b;
  b.name = "B";
  b.columns = {IntCol("id", 100000, 99999), IntCol("val", 100, 99, 32)};
  b.row_count = 100000;
  b.data_pages = 1500;
  cat.AddTable(std::move(b)).ValueOrDie();
  Database db(cat);
  if (!PopulateDatabase(&db, /*seed=*/29, /*scale=*/1.0).ok()) std::abort();
  Query query =
      bench::MustParse(cat, "SELECT A.pay FROM A, B WHERE A.fk = B.id");

  CostModel cost_model;
  OperatorRegistry operators;
  if (!RegisterBuiltinOperators(&operators).ok()) std::abort();
  PlanFactory factory(query, cost_model, operators);
  auto scan = [&](int q, const char* t, const char* key, const char* pay) {
    OpArgs args;
    args.Set(arg::kQuantifier, int64_t{q});
    args.Set(arg::kCols,
             std::vector<ColumnRef>{query.ResolveColumn(t, key).ValueOrDie(),
                                    query.ResolveColumn(t, pay).ValueOrDie()});
    args.Set(arg::kPreds, PredSet{});
    return factory.Make(op::kAccess, flavor::kHeap, {}, std::move(args))
        .ValueOrDie();
  };
  OpArgs join;
  join.Set(arg::kJoinPreds, PredSet::Single(0));
  join.Set(arg::kResidualPreds, PredSet{});
  PlanPtr ha = factory
                   .Make(op::kJoin, flavor::kHA,
                         {scan(0, "A", "fk", "pay"), scan(1, "B", "id", "val")},
                         std::move(join))
                   .ValueOrDie();

  auto measure = [&](int exec_threads, size_t* out_rows) {
    ExecOptions options;
    options.vectorized = 1;
    options.exec_threads = exec_threads;
    auto warm = ExecutePlan(db, query, ha, options).ValueOrDie();
    *out_rows = warm.rows.size();
    const int kIters = 3;
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kIters; ++i) {
        auto rs = ExecutePlan(db, query, ha, options);
        if (!rs.ok()) std::abort();
        benchmark::DoNotOptimize(rs.value().rows.data());
      }
      double secs = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      best = std::max(best,
                      static_cast<double>(*out_rows) * kIters / secs);
    }
    return best;
  };
  size_t rows = 0;
  double one = measure(1, &rows);
  double eight = measure(8, &rows);
  double speedup = eight / one;
  unsigned cores = std::thread::hardware_concurrency();
  double floor = bench::ParallelScalingFloor(cores);
  std::printf("%-28s | %14s | %14s | %8s | %5s\n", "HA join 200k x 100k",
              "1-worker r/s", "8-worker r/s", "speedup", "cores");
  std::printf("%-28s | %14.0f | %14.0f | %7.2fx | %5u\n", "A.fk = B.id", one,
              eight, speedup, cores);
  std::printf(
      "BENCH_JSON {\"bench\":\"join_exec_parallel\",\"flavor\":\"HA\","
      "\"rows\":%zu,\"exec_threads\":8,\"rows_per_sec_1t\":%.0f,"
      "\"rows_per_sec\":%.0f,\"speedup\":%.2f,\"cores\":%u,"
      "\"floor\":%.2f,\"scaling_ok\":%s}\n\n",
      rows, one, eight, speedup, cores, floor,
      speedup >= floor ? "true" : "false");
}

void BM_OptimizeWorkload(benchmark::State& state) {
  std::vector<Workload> ws = Workloads();
  const Workload& w = ws[static_cast<size_t>(state.range(0))];
  Catalog catalog = w.catalog();
  Query query = bench::MustParse(catalog, w.sql);
  Optimizer optimizer(DefaultRuleSet(w.with));
  for (auto _ : state) {
    auto r = optimizer.Optimize(query);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_OptimizeWorkload)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace starburst

int main(int argc, char** argv) {
  starburst::PrintArtifact();
  starburst::PrintExecArtifact();
  starburst::PrintKernelExecArtifact();
  starburst::PrintSpillExecArtifact();
  starburst::PrintParallelExecArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
