// Experiment E1 (DESIGN.md): the paper's central efficiency claim (§1, §7):
// STAR expansion triggers "only those STARs referenced in its definition,
// just like a macro expander", while transformational rules "must examine a
// large set of rules and apply complicated conditions on each of a large set
// of plans". We run both optimizers — same LOLEPOP algebra, same cost model,
// comparable repertoires — over chain joins of growing size and report
// effort and wall time.

#include <benchmark/benchmark.h>

#include "baseline/transform_optimizer.h"
#include "bench_util.h"
#include "storage/datagen.h"

namespace starburst {
namespace {

struct Row {
  int tables;
  double star_us, base_us;
  int64_t star_conditions, base_comparisons;
  int64_t star_plans, base_plans;
  double star_cost, base_cost;
};

Row RunComparison(int n, uint64_t seed) {
  SyntheticCatalogOptions copts;
  copts.num_tables = n;
  copts.seed = seed;
  Catalog catalog = MakeSyntheticCatalog(copts);
  Query query = bench::MustParse(catalog, bench::ChainSql(n));

  Row row{};
  row.tables = n;

  Optimizer star(DefaultRuleSet());  // NL + MG, mirrored by the baseline
  auto sr = star.Optimize(query).ValueOrDie();
  row.star_us = sr.optimize_micros;
  row.star_conditions = sr.engine_metrics.conditions_evaluated;
  row.star_plans = sr.plans_in_table;
  row.star_cost = sr.total_cost;

  BaselineOptions bopts;
  bopts.max_plans = 20000;
  TransformOptimizer baseline(bopts);
  auto br = baseline.Optimize(query).ValueOrDie();
  row.base_us = br.optimize_micros;
  row.base_comparisons = br.metrics.pattern_comparisons;
  row.base_plans = br.plans_total;
  row.base_cost = br.total_cost;
  return row;
}

void PrintArtifact() {
  bench::PrintHeader(
      "E1: STAR expansion vs. transformational search",
      "\"referencing a STAR triggers ... only those STARs referenced in its "
      "definition, just like a macro expander\" (§7)");
  std::printf(
      "%-7s | %12s %12s | %12s %14s | %9s %9s | %12s %12s\n", "tables",
      "star_us", "baseline_us", "star_conds", "base_unify", "star_pl",
      "base_pl", "star_cost", "base_cost");
  for (int n = 2; n <= 5; ++n) {
    Row r = RunComparison(n, 40 + static_cast<uint64_t>(n));
    std::printf(
        "%-7d | %12.0f %12.0f | %12lld %14lld | %9lld %9lld | %12.0f %12.0f\n",
        r.tables, r.star_us, r.base_us,
        static_cast<long long>(r.star_conditions),
        static_cast<long long>(r.base_comparisons),
        static_cast<long long>(r.star_plans),
        static_cast<long long>(r.base_plans), r.star_cost, r.base_cost);
  }
  std::printf(
      "\n(star_conds = conditions evaluated by the rule interpreter;\n"
      " base_unify = pattern-node comparisons during unification — the\n"
      " quantity the paper argues explodes. Plan quality: both engines use\n"
      " the same cost model, so equal costs mean equal-quality winners.)\n\n");
}

void BM_StarOptimizer(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  SyntheticCatalogOptions copts;
  copts.num_tables = n;
  copts.seed = 40 + static_cast<uint64_t>(n);
  Catalog catalog = MakeSyntheticCatalog(copts);
  Query query = bench::MustParse(catalog, bench::ChainSql(n));
  Optimizer star(DefaultRuleSet());
  for (auto _ : state) {
    auto r = star.Optimize(query);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_StarOptimizer)->DenseRange(2, 6)->Unit(benchmark::kMicrosecond);

void BM_TransformBaseline(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  SyntheticCatalogOptions copts;
  copts.num_tables = n;
  copts.seed = 40 + static_cast<uint64_t>(n);
  Catalog catalog = MakeSyntheticCatalog(copts);
  Query query = bench::MustParse(catalog, bench::ChainSql(n));
  BaselineOptions bopts;
  bopts.max_plans = 20000;
  TransformOptimizer baseline(bopts);
  for (auto _ : state) {
    auto r = baseline.Optimize(query);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TransformBaseline)
    ->DenseRange(2, 5)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace starburst

int main(int argc, char** argv) {
  starburst::PrintArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
