// Experiment E4 (DESIGN.md): §4.2's R* join-site alternatives. Sweep the
// number of sites holding the query's tables; report the join-site
// alternatives generated (one RemoteJoin per site in σ), the communication
// share of the best plan, and optimization effort.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "plan/explain.h"

namespace starburst {
namespace {

struct Row {
  int sites;
  int64_t star_refs;
  int64_t plans;
  double best_cost;
  double comm_share;
  double micros;
};

Row RunDistributed(int sites, int tables) {
  SyntheticCatalogOptions copts;
  copts.num_tables = tables;
  copts.num_sites = sites;
  copts.seed = 7;
  Catalog catalog = MakeSyntheticCatalog(copts);
  Query query = bench::MustParse(catalog, bench::ChainSql(tables));
  Optimizer optimizer(DefaultRuleSet());
  auto r = optimizer.Optimize(query).ValueOrDie();
  Row row;
  row.sites = sites;
  row.star_refs = r.engine_metrics.star_refs;
  row.plans = r.plans_in_table;
  row.best_cost = r.total_cost;
  Cost c = r.best->props.cost();
  row.comm_share = r.total_cost > 0 ? c.comm / r.total_cost : 0.0;
  row.micros = r.optimize_micros;
  return row;
}

void PrintArtifact() {
  bench::PrintHeader(
      "E4: R* join-site alternatives (§4.2)",
      "remote joins are required at every site in sigma; local queries "
      "bypass RemoteJoin entirely");
  std::printf("%-6s | %10s %8s | %12s %10s | %10s\n", "sites", "star_refs",
              "plans", "best_cost", "comm%", "time_us");
  for (int sites : {1, 2, 3, 4}) {
    Row r = RunDistributed(sites, 3);
    std::printf("%-6d | %10lld %8lld | %12.0f %9.1f%% | %10.0f\n", r.sites,
                static_cast<long long>(r.star_refs),
                static_cast<long long>(r.plans), r.best_cost,
                r.comm_share * 100.0, r.micros);
  }
  std::printf(
      "\n(1 site: PermutedJoin's 'local' alternative fires, no SHIPs, zero\n"
      " comm. More sites: one SitedJoin per candidate site, SHIP veneers\n"
      " from Glue, and the plan space grows accordingly.)\n\n");

  // The paper's Figure-3 flavored two-table case, end to end.
  PaperCatalogOptions popts;
  popts.distributed = true;
  Catalog catalog = MakePaperCatalog(popts);
  Query query = bench::MustParse(
      catalog, std::string(bench::kPaperSql) + " AT SITE 'L.A.'");
  Optimizer optimizer(DefaultRuleSet());
  auto r = optimizer.Optimize(query).ValueOrDie();
  std::printf("paper query with DEPT at N.Y., result required at L.A.:\n%s\n",
              ExplainPlan(*r.best, query).c_str());
}

void BM_DistributedOptimize(benchmark::State& state) {
  int sites = static_cast<int>(state.range(0));
  SyntheticCatalogOptions copts;
  copts.num_tables = 3;
  copts.num_sites = sites;
  copts.seed = 7;
  Catalog catalog = MakeSyntheticCatalog(copts);
  Query query = bench::MustParse(catalog, bench::ChainSql(3));
  Optimizer optimizer(DefaultRuleSet());
  for (auto _ : state) {
    auto r = optimizer.Optimize(query);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DistributedOptimize)
    ->DenseRange(1, 4)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace starburst

int main(int argc, char** argv) {
  starburst::PrintArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
