#ifndef STARBURST_COMMON_STATUS_H_
#define STARBURST_COMMON_STATUS_H_

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace starburst {

/// Error codes used across the library. Kept deliberately small; the message
/// carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kInternal,
  kUnimplemented,
  /// A cooperative budget (deadline, plan count, memory) was exhausted. A
  /// distinct code because kInvalidArgument/kNotFound are treated as
  /// "infeasible, skip this combination" inside the STAR engine — budget
  /// exhaustion must never be swallowed that way.
  kResourceExhausted,
  /// The client cooperatively cancelled the operation (the execution
  /// governor's cancel token). Distinct from kResourceExhausted so callers
  /// can tell "you asked us to stop" from "a budget stopped us".
  kCancelled,
};

/// A lightweight status object in the RocksDB/Arrow tradition: functions that
/// can fail return `Status` (or `Result<T>`), never throw across the public
/// API boundary.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "ParseError: unexpected token".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error, in the spirit of arrow::Result. `ValueOrDie()` aborts via
/// exception on error and is intended for tests and examples; library code
/// checks `ok()` first.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  T ValueOrDie() && {
    if (!ok()) throw std::runtime_error(status_.ToString());
    return std::move(*value_);
  }
  const T& ValueOrDie() const& {
    if (!ok()) throw std::runtime_error(status_.ToString());
    return *value_;
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagate a non-OK Status from an expression, Arrow-style.
#define STARBURST_RETURN_NOT_OK(expr)                  \
  do {                                                 \
    ::starburst::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                         \
  } while (0)

}  // namespace starburst

#endif  // STARBURST_COMMON_STATUS_H_
