#include "common/strings.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace starburst {

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  return StrJoinMapped(parts, sep, [](const std::string& s) { return s; });
}

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  double rounded = std::round(v);
  if (rounded == v && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(rounded));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace starburst
