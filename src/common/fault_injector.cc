#include "common/fault_injector.h"

#include <cstdio>
#include <cstdlib>

namespace starburst {

const std::vector<std::string>& KnownFaultSites() {
  static const std::vector<std::string> kSites = {
      faultsite::kEngineExpand, faultsite::kGlueResolve,
      faultsite::kGlueStore,    faultsite::kExecScanOpen,
      faultsite::kExecTempProbe, faultsite::kExecJoinRun,
      faultsite::kExecSortRun,  faultsite::kExecStoreRun,
      faultsite::kExecSpillOpen, faultsite::kExecSpillWrite,
      faultsite::kExecSpillRead,
  };
  return kSites;
}

namespace {

bool IsKnownSite(const std::string& name) {
  for (const std::string& s : KnownFaultSites()) {
    if (s == name) return true;
  }
  return false;
}

/// SplitMix64: a well-mixed 64-bit hash, good enough to turn
/// (seed, site, hit) into an independent uniform draw.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double UniformDraw(uint64_t seed, const std::string& site, int64_t hit) {
  uint64_t h = seed;
  for (char c : site) h = Mix64(h ^ static_cast<uint64_t>(c));
  h = Mix64(h ^ static_cast<uint64_t>(hit));
  // Top 53 bits → [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Result<double> ParseRate(const std::string& text) {
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || v < 0.0 || v > 1.0) {
    return Status::InvalidArgument("fault spec: rate '" + text +
                                   "' is not a probability in [0,1]");
  }
  return v;
}

}  // namespace

Status FaultInjector::Configure(const std::string& spec) {
  uint64_t seed = 0;
  double global_rate = 0.0;
  bool configured = false;
  std::map<std::string, SiteRule> rules;

  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string entry = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    // Trim surrounding spaces.
    while (!entry.empty() && entry.front() == ' ') entry.erase(entry.begin());
    while (!entry.empty() && entry.back() == ' ') entry.pop_back();
    if (entry.empty() || entry == "off") continue;
    configured = true;

    size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          "fault spec: entry '" + entry +
          "' is not key=value (expected seed=, rate=, or <site>=)");
    }
    std::string key = entry.substr(0, eq);
    std::string value = entry.substr(eq + 1);
    if (key == "seed") {
      char* end = nullptr;
      unsigned long long v = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("fault spec: seed '" + value +
                                       "' is not an unsigned integer");
      }
      seed = static_cast<uint64_t>(v);
    } else if (key == "rate") {
      auto rate = ParseRate(value);
      if (!rate.ok()) return rate.status();
      global_rate = rate.value();
    } else {
      if (!IsKnownSite(key)) {
        std::string known;
        for (const std::string& s : KnownFaultSites()) {
          if (!known.empty()) known += ", ";
          known += s;
        }
        return Status::InvalidArgument("fault spec: unknown site '" + key +
                                       "' (known sites: " + known + ")");
      }
      SiteRule rule;
      if (value.find('.') != std::string::npos) {
        auto rate = ParseRate(value);
        if (!rate.ok()) return rate.status();
        rule.rate = rate.value();
      } else {
        char* end = nullptr;
        long long v = std::strtoll(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0' || v < 1) {
          return Status::InvalidArgument(
              "fault spec: '" + key + "=" + value +
              "' must name a 1-based hit count or a probability with '.'");
        }
        rule.nth = v;
      }
      rules[key] = rule;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  global_rate_ = global_rate;
  rules_ = std::move(rules);
  hits_.clear();
  armed_.store(!rules_.empty() || global_rate_ > 0.0,
               std::memory_order_release);
  configured_.store(configured, std::memory_order_release);
  return Status::OK();
}

Status FaultInjector::Check(const char* site) {
  // Counting is gated on configured_, not armed_: a spec that can never
  // fire (bare "seed=", "rate=0.0") still counts hits so sweeps can assert
  // which sites a workload reached.
  if (!configured_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  std::string key(site);
  int64_t hit = ++hits_[key];
  if (!armed_.load(std::memory_order_relaxed)) return Status::OK();

  bool fire = false;
  auto it = rules_.find(key);
  if (it != rules_.end()) {
    if (it->second.nth > 0 && hit == it->second.nth) fire = true;
    if (it->second.rate > 0.0 &&
        UniformDraw(seed_, key, hit) < it->second.rate) {
      fire = true;
    }
  }
  if (!fire && global_rate_ > 0.0 &&
      UniformDraw(seed_, key, hit) < global_rate_) {
    fire = true;
  }
  if (!fire) return Status::OK();
  return Status::Internal("injected fault at " + key + " (hit " +
                          std::to_string(hit) + ", seed " +
                          std::to_string(seed_) + ")");
}

int64_t FaultInjector::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(site);
  return it == hits_.end() ? 0 : it->second;
}

void FaultInjector::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  hits_.clear();
}

std::string FaultInjector::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!configured_.load(std::memory_order_relaxed)) return "off";
  std::string out = "seed=" + std::to_string(seed_);
  if (global_rate_ > 0.0) {
    out += ",rate=" + std::to_string(global_rate_);
  }
  for (const auto& [site, rule] : rules_) {
    out += "," + site + "=";
    out += rule.nth > 0 ? std::to_string(rule.nth) : std::to_string(rule.rate);
  }
  return out;
}

FaultInjector* FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* f = new FaultInjector();
    const char* env = std::getenv("STARBURST_FAULTS");
    if (env != nullptr && *env != '\0') {
      Status st = f->Configure(env);
      if (!st.ok()) {
        std::fprintf(stderr, "STARBURST_FAULTS ignored: %s\n",
                     st.ToString().c_str());
      }
    }
    return f;
  }();
  return injector;
}

}  // namespace starburst
