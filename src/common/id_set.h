#ifndef STARBURST_COMMON_ID_SET_H_
#define STARBURST_COMMON_ID_SET_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace starburst {

/// A set of small dense integer ids represented as a 64-bit mask. Used for
/// quantifier sets (the paper's table sets T1, T2) and predicate sets (P, JP,
/// SP, ...). The `Tag` parameter makes QuantifierSet and PredSet distinct
/// types so they cannot be mixed accidentally.
template <typename Tag>
class IdSet {
 public:
  static constexpr int kMaxId = 64;

  constexpr IdSet() : mask_(0) {}
  static constexpr IdSet FromMask(uint64_t mask) { return IdSet(mask); }
  static IdSet Single(int id) { return IdSet(Bit(id)); }

  /// The set {0, 1, ..., n-1}.
  static IdSet FirstN(int n) {
    assert(n >= 0 && n <= kMaxId);
    if (n == 64) return IdSet(~uint64_t{0});
    return IdSet((uint64_t{1} << n) - 1);
  }

  uint64_t mask() const { return mask_; }
  bool empty() const { return mask_ == 0; }
  int size() const { return __builtin_popcountll(mask_); }
  bool Contains(int id) const { return (mask_ & Bit(id)) != 0; }
  bool ContainsAll(IdSet other) const {
    return (other.mask_ & ~mask_) == 0;
  }
  bool Intersects(IdSet other) const { return (mask_ & other.mask_) != 0; }

  IdSet& Insert(int id) {
    mask_ |= Bit(id);
    return *this;
  }
  IdSet& Remove(int id) {
    mask_ &= ~Bit(id);
    return *this;
  }

  IdSet Union(IdSet other) const { return IdSet(mask_ | other.mask_); }
  IdSet Intersect(IdSet other) const { return IdSet(mask_ & other.mask_); }
  IdSet Minus(IdSet other) const { return IdSet(mask_ & ~other.mask_); }

  /// Lowest id in the set; set must be non-empty.
  int First() const {
    assert(!empty());
    return __builtin_ctzll(mask_);
  }

  /// Members in increasing order.
  std::vector<int> ToVector() const {
    std::vector<int> out;
    out.reserve(static_cast<size_t>(size()));
    uint64_t m = mask_;
    while (m != 0) {
      int id = __builtin_ctzll(m);
      out.push_back(id);
      m &= m - 1;
    }
    return out;
  }

  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (int id : ToVector()) {
      if (!first) out += ",";
      first = false;
      out += std::to_string(id);
    }
    return out + "}";
  }

  bool operator==(const IdSet& o) const { return mask_ == o.mask_; }
  bool operator!=(const IdSet& o) const { return mask_ != o.mask_; }
  bool operator<(const IdSet& o) const { return mask_ < o.mask_; }

 private:
  explicit constexpr IdSet(uint64_t mask) : mask_(mask) {}
  static uint64_t Bit(int id) {
    assert(id >= 0 && id < kMaxId);
    return uint64_t{1} << id;
  }

  uint64_t mask_;
};

struct QuantifierTag {};
struct PredicateTag {};

/// A set of quantifiers (table occurrences): the paper's T1, T2, table sets.
using QuantifierSet = IdSet<QuantifierTag>;
/// A set of predicate ids: the paper's P, JP, SP, HP, IP, XP.
using PredSet = IdSet<PredicateTag>;

}  // namespace starburst

#endif  // STARBURST_COMMON_ID_SET_H_
