#ifndef STARBURST_COMMON_VALUE_H_
#define STARBURST_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace starburst {

/// Column data types supported by the storage engine and expression
/// evaluator. Deliberately small — the paper's subject is plan generation,
/// not a type system — but wide enough for realistic catalogs.
enum class ColumnType { kInt64, kDouble, kString };

const char* ColumnTypeName(ColumnType type);

/// A runtime datum: NULL, 64-bit integer, double, or string. Tuples are
/// vectors of `Datum`; the expression evaluator and the B-tree/index
/// comparators operate on this type.
class Datum {
 public:
  struct Null {
    bool operator==(const Null&) const { return true; }
  };

  Datum() : v_(Null{}) {}
  explicit Datum(int64_t v) : v_(v) {}
  explicit Datum(double v) : v_(v) {}
  explicit Datum(std::string v) : v_(std::move(v)) {}

  static Datum NullValue() { return Datum(); }

  bool is_null() const { return std::holds_alternative<Null>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const;
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Three-way comparison with SQL-ish semantics used by sort/merge/B-tree:
  /// NULL sorts first; numeric types compare by value across int/double.
  /// Returns -1, 0, or +1.
  int Compare(const Datum& other) const;

  bool operator==(const Datum& other) const { return Compare(other) == 0; }
  bool operator<(const Datum& other) const { return Compare(other) < 0; }

  size_t Hash() const;

  /// Stable 64-bit hash compatible with Compare() equality across int/double
  /// (an int and a double that compare equal hash equal). The vectorized hash
  /// join keys its open-addressing table on this; exact-key verification via
  /// Compare() backs it up, so collisions cost time, never correctness.
  uint64_t Hash64() const;

  std::string ToString() const;

 private:
  std::variant<Null, int64_t, double, std::string> v_;
};

/// Order-dependent 64-bit hash combiner for composite join keys.
inline uint64_t HashCombine64(uint64_t seed, uint64_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Datum(v).Hash64() without constructing the Datum — the typed join-key
/// kernels hash raw int64 keys through the identical equivalence-class
/// mixing so typed and generic probes land in the same bucket.
uint64_t DatumHashInt64(int64_t v);

/// Datum::NullValue().Hash64() without the Datum.
inline constexpr uint64_t kDatumNullHash64 = 0x2545f4914f6cdd1dULL;

}  // namespace starburst

#endif  // STARBURST_COMMON_VALUE_H_
