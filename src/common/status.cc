#include "common/status.h"

namespace starburst {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace starburst
