#ifndef STARBURST_COMMON_FAULT_INJECTOR_H_
#define STARBURST_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace starburst {

/// The registered fault sites: every place in the pipeline where a
/// FaultInjector::Check call is compiled in. Kept as a central list so tests
/// can iterate all of them (and the spec parser can reject typos).
namespace faultsite {
inline constexpr const char* kEngineExpand = "engine.expand";
inline constexpr const char* kGlueResolve = "glue.resolve";
inline constexpr const char* kGlueStore = "glue.store";
inline constexpr const char* kExecScanOpen = "exec.scan.open";
inline constexpr const char* kExecTempProbe = "exec.temp.probe";
inline constexpr const char* kExecJoinRun = "exec.join.run";
inline constexpr const char* kExecSortRun = "exec.sort.run";
inline constexpr const char* kExecStoreRun = "exec.store.run";
inline constexpr const char* kExecSpillOpen = "exec.spill.open";
inline constexpr const char* kExecSpillWrite = "exec.spill.write";
inline constexpr const char* kExecSpillRead = "exec.spill.read";
}  // namespace faultsite

/// All registered fault-site names, in a fixed order.
const std::vector<std::string>& KnownFaultSites();

/// Deterministic, seeded, site-keyed fault injection for robustness tests
/// and the CI fault sweep. A disarmed injector costs one relaxed atomic load
/// per Check — cheap enough to leave compiled into hot paths.
///
/// Spec grammar (STARBURST_FAULTS), comma-separated entries:
///   seed=<uint>           seed for probabilistic entries (default 0)
///   rate=<float in [0,1]> every site fails each hit with probability p,
///                         decided by a deterministic hash of
///                         (seed, site, hit index) — same seed, same faults
///   <site>=<n>            the n-th hit (1-based) of <site> fails, exactly once
///   <site>=<p>            per-hit probability for <site> alone (p contains '.')
///   off                   disarm (also: the empty string)
///
/// Examples:
///   STARBURST_FAULTS="exec.scan.open=2"        second scan open fails
///   STARBURST_FAULTS="seed=7,rate=0.02"        2% of every site's hits fail
class FaultInjector {
 public:
  FaultInjector() = default;

  /// Parses `spec` and replaces the active configuration. "" and "off"
  /// disarm. Unknown site names and malformed entries are rejected with a
  /// descriptive InvalidArgument (the whole point is failing loudly at
  /// configuration time, not silently never firing).
  Status Configure(const std::string& spec);

  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// The cooperative hook: returns OK, or the injected fault as
  /// Internal("injected fault at <site> ...") when this hit fires.
  /// Thread-safe; hit counting is per site.
  ///
  /// Hit ORDER is part of the determinism contract: nth-hit specs like
  /// "exec.scan.open=2" must trip the same logical operation regardless of
  /// engine, batch size, or exec thread count. The exchange operator keeps
  /// this true by construction — every exec-site Check stays on the
  /// coordinator thread in the sequential call sequence; morsel workers
  /// never call Check, so parallelism can neither consume nor reorder hits.
  Status Check(const char* site);

  /// Times `site` was checked since the last Configure. Counted whenever ANY
  /// spec is configured — including pure `rate=` mode and specs that can
  /// never fire (a bare `seed=`, `rate=0.0`) — so fault-sweep tests can
  /// assert site coverage independently of whether faults actually trip.
  int64_t hits(const std::string& site) const;
  /// Resets hit counters without changing the configuration.
  void ResetCounters();

  std::string ToString() const;

  /// Process-wide injector, configured once from STARBURST_FAULTS on first
  /// use (a malformed env spec disarms and is reported on stderr once).
  /// Components default to this instance so the env knob reaches every
  /// executor/engine/glue without explicit wiring.
  static FaultInjector* Global();

 private:
  struct SiteRule {
    int64_t nth = 0;    // fail the nth hit (1-based); 0 = not set
    double rate = 0.0;  // per-hit probability; 0 = not set
  };

  std::atomic<bool> armed_{false};
  // True when any non-"off" entry was configured, even if nothing can fire
  // (e.g. a bare "seed=7"): hit counting is gated on this, firing on armed_.
  std::atomic<bool> configured_{false};
  mutable std::mutex mu_;
  uint64_t seed_ = 0;
  double global_rate_ = 0.0;
  std::map<std::string, SiteRule> rules_;
  std::map<std::string, int64_t> hits_;
};

}  // namespace starburst

#endif  // STARBURST_COMMON_FAULT_INJECTOR_H_
