#include "common/value.h"

#include <functional>

#include "common/strings.h"

namespace starburst {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "INT";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kString:
      return "STRING";
  }
  return "?";
}

double Datum::AsDouble() const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(v_));
  return std::get<double>(v_);
}

int Datum::Compare(const Datum& other) const {
  // NULL sorts before everything, equal to NULL.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  // Numeric cross-type comparison.
  if ((is_int() || is_double()) && (other.is_int() || other.is_double())) {
    if (is_int() && other.is_int()) {
      int64_t a = AsInt(), b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsDouble(), b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (is_string() && other.is_string()) {
    int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Heterogeneous non-numeric comparison: order by type index for stability.
  size_t a = v_.index(), b = other.v_.index();
  return a < b ? -1 : (a > b ? 1 : 0);
}

size_t Datum::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ULL;
  if (is_string()) return std::hash<std::string>{}(AsString());
  // Hash int-valued doubles identically to ints so that hash join buckets
  // agree with Compare() equality.
  double d = AsDouble();
  int64_t as_int = static_cast<int64_t>(d);
  if (static_cast<double>(as_int) == d) return std::hash<int64_t>{}(as_int);
  return std::hash<double>{}(d);
}

std::string Datum::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) return FormatDouble(AsDouble());
  return "'" + AsString() + "'";
}

}  // namespace starburst
