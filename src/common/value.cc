#include "common/value.h"

#include <functional>

#include "common/strings.h"

namespace starburst {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "INT";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kString:
      return "STRING";
  }
  return "?";
}

double Datum::AsDouble() const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(v_));
  return std::get<double>(v_);
}

int Datum::Compare(const Datum& other) const {
  // NULL sorts before everything, equal to NULL.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  // Numeric cross-type comparison.
  if ((is_int() || is_double()) && (other.is_int() || other.is_double())) {
    if (is_int() && other.is_int()) {
      int64_t a = AsInt(), b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsDouble(), b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (is_string() && other.is_string()) {
    int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Heterogeneous non-numeric comparison: order by type index for stability.
  size_t a = v_.index(), b = other.v_.index();
  return a < b ? -1 : (a > b ? 1 : 0);
}

size_t Datum::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ULL;
  if (is_string()) return std::hash<std::string>{}(AsString());
  // Hash int-valued doubles identically to ints so that hash join buckets
  // agree with Compare() equality.
  double d = AsDouble();
  int64_t as_int = static_cast<int64_t>(d);
  if (static_cast<double>(as_int) == d) return std::hash<int64_t>{}(as_int);
  return std::hash<double>{}(d);
}

namespace {

// SplitMix64 finalizer: cheap, well-distributed bit mixing.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

namespace {

// Hash of a double through its numeric equivalence class: integer-exact
// values hash by integer, everything else by bit pattern. Casting back to
// int64 is guarded to stay in range (values at/above 2^63 fall through to
// the bit-pattern path).
uint64_t HashDouble(double d) {
  if (d >= -9.2e18 && d <= 9.2e18) {
    int64_t t = static_cast<int64_t>(d);
    if (static_cast<double>(t) == d) return Mix64(static_cast<uint64_t>(t));
  }
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return Mix64(bits);
}

}  // namespace

uint64_t DatumHashInt64(int64_t i) {
  // Mirrors the is_int() branch of Datum::Hash64 below; a divergence would
  // silently split typed and generic hash-join probes across buckets.
  double d = static_cast<double>(i);
  if (d >= -9.2e18 && d <= 9.2e18 && static_cast<int64_t>(d) == i) {
    return Mix64(static_cast<uint64_t>(i));
  }
  return HashDouble(d);
}

uint64_t Datum::Hash64() const {
  if (is_null()) return kDatumNullHash64;
  if (is_string()) {
    // FNV-1a over the bytes, then mixed.
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : AsString()) {
      h = (h ^ c) * 0x100000001b3ULL;
    }
    return Mix64(h);
  }
  // Numerics hash through their double equivalence class so that values that
  // Compare() equal across int/double hash equal (mixed-type comparison is
  // done in double precision).
  if (is_int()) {
    int64_t i = AsInt();
    double d = static_cast<double>(i);
    if (d >= -9.2e18 && d <= 9.2e18 && static_cast<int64_t>(d) == i) {
      return Mix64(static_cast<uint64_t>(i));
    }
    // |i| not exactly representable: hash its rounded double image.
    return HashDouble(d);
  }
  return HashDouble(AsDouble());
}

std::string Datum::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) return FormatDouble(AsDouble());
  return "'" + AsString() + "'";
}

}  // namespace starburst
