#ifndef STARBURST_COMMON_STRINGS_H_
#define STARBURST_COMMON_STRINGS_H_

#include <sstream>
#include <string>
#include <vector>

namespace starburst {

/// Join the elements of `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

/// Join arbitrary elements, rendering each with `fn(element) -> std::string`.
template <typename Container, typename Fn>
std::string StrJoinMapped(const Container& items, const std::string& sep,
                          Fn fn) {
  std::string out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out += sep;
    first = false;
    out += fn(item);
  }
  return out;
}

/// Render a double compactly ("3", "3.5", "0.123") for plan/explain output.
std::string FormatDouble(double v);

/// Uppercase a copy of `s` (ASCII).
std::string ToUpper(std::string s);

/// True if `prefix` is a prefix of `s`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Combine a hash into a seed (boost::hash_combine recipe).
inline void HashCombine(size_t* seed, size_t h) {
  *seed ^= h + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

}  // namespace starburst

#endif  // STARBURST_COMMON_STRINGS_H_
