#ifndef STARBURST_OBS_PROFILER_H_
#define STARBURST_OBS_PROFILER_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/value.h"

namespace starburst {

struct PlanOp;
class Query;

/// Profiling from STARBURST_PROFILE (=1/on/true enables), else off. The
/// default keeps the executor's fast path at one branch per batch.
inline bool DefaultProfileEnabled() {
  const char* env = std::getenv("STARBURST_PROFILE");
  if (env == nullptr) return false;
  std::string_view v(env);
  return v == "1" || v == "on" || v == "true";
}

/// Per-query memory high-water accounting. Operators charge bytes when they
/// materialize state (sort buffers, hash tables, cached subplan results) and
/// release when they drop it; `peak_bytes` is the run's high-water mark.
/// Byte counts are accounting-granularity approximations — Datum payload
/// plus container element sizes — not allocator truth.
///
/// Thread-safe: charges use atomic fetch_add and the peak is maintained with
/// a CAS loop, so concurrent charge sites (exchange workers, future parallel
/// operators) can never corrupt the high-water mark. The peak stays exact —
/// every CAS publishes a real observed `current_` value, never a stale or
/// torn one.
class MemoryTracker {
 public:
  void Charge(int64_t bytes) {
    int64_t now =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak && !peak_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }
  void Release(int64_t bytes) {
    int64_t now =
        current_.fetch_sub(bytes, std::memory_order_relaxed) - bytes;
    // Over-release clamps at zero, as the non-atomic tracker always did —
    // but no longer silently: each clamp is counted (published as the
    // exec.tracker_clamps gauge) and fails a debug assertion, because an
    // over-release always means a charge/release accounting bug somewhere.
    // The clamp CAS only fires when the counter is actually negative, so a
    // concurrent charge is never erased.
    if (now < 0) {
      clamps_.fetch_add(1, std::memory_order_relaxed);
      assert(false && "MemoryTracker over-release clamped to zero");
      while (now < 0 &&
             !current_.compare_exchange_weak(now, 0,
                                             std::memory_order_relaxed)) {
      }
    }
  }
  int64_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  /// Times Release() clamped a negative balance back to zero. Nonzero means
  /// some operator released more than it charged.
  int64_t clamp_count() const {
    return clamps_.load(std::memory_order_relaxed);
  }
  void Reset() {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
    clamps_.store(0, std::memory_order_relaxed);
  }

  MemoryTracker() = default;
  // Atomics delete the implicit copies; snapshot semantics keep ExecProfile
  // copyable (a copy is a point-in-time reading, copied when no run is live).
  MemoryTracker(const MemoryTracker& o)
      : current_(o.current_bytes()),
        peak_(o.peak_bytes()),
        clamps_(o.clamp_count()) {}
  MemoryTracker& operator=(const MemoryTracker& o) {
    current_.store(o.current_bytes(), std::memory_order_relaxed);
    peak_.store(o.peak_bytes(), std::memory_order_relaxed);
    clamps_.store(o.clamp_count(), std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<int64_t> clamps_{0};
};

/// Actuals for one operator of a profiled run. Wall times are inclusive of
/// the operator's inputs (tree time, like OpRunStats); `rows_out` follows
/// exactly the same accounting as OpRunStats::rows, so the two engines and
/// every batch size agree on it. Operator-specific detail is only filled by
/// the operator it applies to.
struct OpProfile {
  std::string label;   ///< "JOIN(HA)", captured when the profile is exported
  int64_t node_id = 0;

  int64_t opens = 0;
  int64_t next_calls = 0;
  int64_t closes = 0;
  int64_t rows_out = 0;
  int64_t batches_out = 0;
  double open_micros = 0.0;
  double next_micros = 0.0;
  double close_micros = 0.0;

  /// Memory charged by this operator (cumulative and its own high water).
  int64_t bytes_charged = 0;
  int64_t cur_bytes = 0;
  int64_t peak_bytes = 0;

  // JOIN(HA) / FILTERBY detail.
  int64_t hash_build_rows = 0;
  int64_t hash_groups = 0;
  int64_t hash_buckets = 0;
  int64_t hash_bytes = 0;
  int64_t hash_probes = 0;
  int64_t hash_chain_steps = 0;

  // SORT (and temp-index dynamic sort) detail.
  int64_t sort_rows = 0;
  int64_t sort_bytes = 0;

  // Spill detail (external-merge SORT runs, Grace JOIN(HA) partitions):
  // number of spilled runs/partitions and bytes written to temp files.
  int64_t spill_runs = 0;
  int64_t spill_bytes = 0;

  // Exchange detail: worker count the coordinator actually fanned this
  // operator out to (0 = ran sequentially, no exchange involved).
  int64_t exchange_workers = 0;

  // Compiled predicate-program detail.
  int64_t pred_evals = 0;
  int64_t pred_steps = 0;

  // Typed-kernel detail (exec/kernel.{h,cc}): rows decided by a fused
  // kernel, rows routed back to the interpreter (type mismatch or unfused
  // remainder conjuncts), and the static fused/fallback conjunct split of
  // the compiled program.
  int64_t kernel_rows = 0;
  int64_t kernel_fallbacks = 0;
  int64_t kernel_fused_preds = 0;
  int64_t kernel_fallback_preds = 0;

  double total_micros() const {
    return open_micros + next_micros + close_micros;
  }
};

/// The profile of one execution: per-operator actuals keyed by plan-node
/// identity plus the query-wide memory tracker. One profile belongs to one
/// run (like PlanRunStats). The op map is NOT thread-safe — under the
/// exchange operator, only the coordinator thread mutates OpProfile entries
/// (workers report per-morsel counters that the coordinator merges in
/// canonical morsel order); the embedded MemoryTracker is atomic.
class ExecProfile {
 public:
  OpProfile& at(const PlanOp* node);
  const OpProfile* find(const PlanOp* node) const;

  /// Charges `bytes` to `node` and to the query-wide tracker.
  void ChargeBytes(const PlanOp* node, int64_t bytes);
  void ReleaseBytes(const PlanOp* node, int64_t bytes);

  MemoryTracker& memory() { return mem_; }
  const MemoryTracker& memory() const { return mem_; }

  const std::map<const PlanOp*, OpProfile>& ops() const { return ops_; }
  bool empty() const { return ops_.empty(); }
  void Clear();

  /// Creates a zeroed entry for every node of `root`. Run once at execution
  /// start so profile coverage is engine-invariant: an inner that the legacy
  /// interpreter never opens (empty outer) still reports zeros instead of
  /// being absent.
  void Register(const PlanOp& root);

  /// Stamps `label`/`node_id` on every entry (the PlanOp keys may outlive
  /// neither the export nor a durable workload record otherwise).
  void CaptureLabels();

  /// {"peak_bytes":...,"ops":[{"label":...,"rows_out":...},...]} — the
  /// scrapeable JSON export. Ops are ordered by node id for determinism.
  std::string ToJson() const;

 private:
  std::map<const PlanOp*, OpProfile> ops_;
  MemoryTracker mem_;
};

/// Accounting-granularity byte sizes shared by every charge site, so tests
/// can recompute them independently.
int64_t DatumApproxBytes(const Datum& d);
int64_t TupleApproxBytes(const std::vector<Datum>& t);
int64_t RowsApproxBytes(const std::vector<std::vector<Datum>>& rows);

}  // namespace starburst

#endif  // STARBURST_OBS_PROFILER_H_
