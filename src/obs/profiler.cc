#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>

#include "obs/trace.h"
#include "plan/plan.h"

namespace starburst {

int64_t DatumApproxBytes(const Datum& d) {
  int64_t bytes = static_cast<int64_t>(sizeof(Datum));
  if (d.is_string()) bytes += static_cast<int64_t>(d.AsString().size());
  return bytes;
}

int64_t TupleApproxBytes(const std::vector<Datum>& t) {
  int64_t bytes = static_cast<int64_t>(sizeof(std::vector<Datum>));
  for (const Datum& d : t) bytes += DatumApproxBytes(d);
  return bytes;
}

int64_t RowsApproxBytes(const std::vector<std::vector<Datum>>& rows) {
  int64_t bytes = 0;
  for (const auto& t : rows) bytes += TupleApproxBytes(t);
  return bytes;
}

OpProfile& ExecProfile::at(const PlanOp* node) { return ops_[node]; }

const OpProfile* ExecProfile::find(const PlanOp* node) const {
  auto it = ops_.find(node);
  return it == ops_.end() ? nullptr : &it->second;
}

void ExecProfile::ChargeBytes(const PlanOp* node, int64_t bytes) {
  OpProfile& p = ops_[node];
  p.bytes_charged += bytes;
  p.cur_bytes += bytes;
  if (p.cur_bytes > p.peak_bytes) p.peak_bytes = p.cur_bytes;
  mem_.Charge(bytes);
}

void ExecProfile::ReleaseBytes(const PlanOp* node, int64_t bytes) {
  OpProfile& p = ops_[node];
  p.cur_bytes -= bytes;
  if (p.cur_bytes < 0) p.cur_bytes = 0;
  mem_.Release(bytes);
}

void ExecProfile::Clear() {
  ops_.clear();
  mem_.Reset();
}

void ExecProfile::Register(const PlanOp& root) {
  ops_[&root];
  for (const PlanPtr& in : root.inputs) {
    if (in != nullptr) Register(*in);
  }
}

void ExecProfile::CaptureLabels() {
  for (auto& [node, p] : ops_) {
    if (p.label.empty()) p.label = node->Label();
    p.node_id = node->id;
  }
}

namespace {

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string ExecProfile::ToJson() const {
  // Order by node id (falling back to pointer order for id 0 nodes built
  // outside a factory) so the export is stable across runs of the same plan.
  std::vector<std::pair<const PlanOp*, const OpProfile*>> ordered;
  ordered.reserve(ops_.size());
  for (const auto& [node, p] : ops_) ordered.push_back({node, &p});
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto& a, const auto& b) {
                     return a.first->id < b.first->id;
                   });
  std::string out = "{\"peak_bytes\":" + std::to_string(mem_.peak_bytes()) +
                    ",\"ops\":[";
  bool first = true;
  for (const auto& [node, p] : ordered) {
    if (!first) out += ",";
    first = false;
    std::string label = p->label.empty() ? node->Label() : p->label;
    out += "{\"label\":\"" + JsonEscape(label) + "\"";
    out += ",\"node_id\":" + std::to_string(node->id);
    out += ",\"opens\":" + std::to_string(p->opens);
    out += ",\"next_calls\":" + std::to_string(p->next_calls);
    out += ",\"closes\":" + std::to_string(p->closes);
    out += ",\"rows_out\":" + std::to_string(p->rows_out);
    out += ",\"batches_out\":" + std::to_string(p->batches_out);
    out += ",\"open_us\":" + Num(p->open_micros);
    out += ",\"next_us\":" + Num(p->next_micros);
    out += ",\"close_us\":" + Num(p->close_micros);
    out += ",\"bytes\":" + std::to_string(p->bytes_charged);
    out += ",\"peak_bytes\":" + std::to_string(p->peak_bytes);
    if (p->hash_build_rows > 0 || p->hash_groups > 0) {
      out += ",\"hash\":{\"build_rows\":" + std::to_string(p->hash_build_rows) +
             ",\"groups\":" + std::to_string(p->hash_groups) +
             ",\"buckets\":" + std::to_string(p->hash_buckets) +
             ",\"bytes\":" + std::to_string(p->hash_bytes) +
             ",\"probes\":" + std::to_string(p->hash_probes) +
             ",\"chain_steps\":" + std::to_string(p->hash_chain_steps) + "}";
    }
    if (p->sort_rows > 0) {
      out += ",\"sort\":{\"rows\":" + std::to_string(p->sort_rows) +
             ",\"bytes\":" + std::to_string(p->sort_bytes) + "}";
    }
    if (p->spill_runs > 0) {
      out += ",\"spill\":{\"runs\":" + std::to_string(p->spill_runs) +
             ",\"bytes\":" + std::to_string(p->spill_bytes) + "}";
    }
    if (p->pred_evals > 0) {
      out += ",\"pred\":{\"evals\":" + std::to_string(p->pred_evals) +
             ",\"steps\":" + std::to_string(p->pred_steps) + "}";
    }
    if (p->kernel_rows > 0 || p->kernel_fallbacks > 0) {
      out += ",\"kernel\":{\"rows\":" + std::to_string(p->kernel_rows) +
             ",\"fallbacks\":" + std::to_string(p->kernel_fallbacks) +
             ",\"fused_preds\":" + std::to_string(p->kernel_fused_preds) +
             ",\"fallback_preds\":" +
             std::to_string(p->kernel_fallback_preds) + "}";
    }
    if (p->exchange_workers > 0) {
      out += ",\"xchg_workers\":" + std::to_string(p->exchange_workers);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace starburst
