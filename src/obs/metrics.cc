#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/trace.h"

namespace starburst {

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

int LatencyHistogram::BucketOf(double micros) {
  if (!(micros > 1.0)) return 0;  // also catches NaN
  // Bucket index = log2(micros) * kSubBuckets, capped to the table.
  int b = static_cast<int>(std::log2(micros) * kSubBuckets);
  return std::min(b, kNumBuckets - 1);
}

double LatencyHistogram::BucketLowerBound(int bucket) {
  // Bucket 0 holds everything BucketOf sends there — all samples in
  // [0, 2^(1/kSubBuckets)) — so its lower bound is 0, not 2^0.
  if (bucket <= 0) return 0.0;
  return std::exp2(static_cast<double>(bucket) / kSubBuckets);
}

void LatencyHistogram::Record(double micros) {
  if (micros < 0.0 || std::isnan(micros)) {
    ++dropped_;  // a measurement bug, not an observation
    return;
  }
  ++buckets_[static_cast<size_t>(BucketOf(micros))];
  ++count_;
  sum_ += micros;
  if (count_ == 1 || micros < min_) min_ = micros;
  if (micros > max_) max_ = micros;
}

double LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  // The edges are exact observations, not interpolations: q=0 is the
  // minimum (nearest-rank would otherwise upper-bias it inside the first
  // occupied bucket) and q=1 is the maximum.
  if (q <= 0.0) return min();
  if (q >= 1.0) return max_;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested observation (1-based, nearest-rank).
  int64_t rank = static_cast<int64_t>(std::ceil(q * static_cast<double>(count_)));
  rank = std::max<int64_t>(rank, 1);
  int64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    int64_t in_bucket = buckets_[static_cast<size_t>(b)];
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= rank) {
      // Interpolate within the bucket; clamp to the observed extremes so a
      // single-value histogram reports that exact value.
      double lo = BucketLowerBound(b);
      double hi = BucketLowerBound(b + 1);
      double frac = static_cast<double>(rank - seen) /
                    static_cast<double>(in_bucket);
      double v = lo + (hi - lo) * frac;
      return std::clamp(v, min(), max());
    }
    seen += in_bucket;
  }
  return max_;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

void MetricsRegistry::AddCounter(const std::string& name, int64_t delta) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters_[name] += delta;
  }
  // Mirror outside our lock: the parent takes its own mutex, and holding
  // both would create a lock order between registries.
  if (parent_ != nullptr) parent_->AddCounter(name, delta);
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::RecordLatency(const std::string& name, double micros) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    histograms_[name].Record(micros);
  }
  if (parent_ != nullptr) parent_->RecordLatency(name, micros);
}

int64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const LatencyHistogram* MetricsRegistry::histogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters = counters_;
  snap.gauges = gauges_;
  for (const auto& [name, h] : histograms_) {
    Snapshot::HistogramStats s;
    s.count = h.count();
    s.dropped = h.dropped();
    s.sum = h.sum();
    s.min = h.min();
    s.max = h.max();
    s.p50 = h.Percentile(0.50);
    s.p95 = h.Percentile(0.95);
    s.p99 = h.Percentile(0.99);
    snap.histograms[name] = s;
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

namespace {

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::Snapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + JsonNumber(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":{\"count\":" +
           std::to_string(h.count) + ",\"dropped\":" +
           std::to_string(h.dropped) + ",\"sum\":" + JsonNumber(h.sum) +
           ",\"min\":" + JsonNumber(h.min) + ",\"max\":" + JsonNumber(h.max) +
           ",\"p50\":" + JsonNumber(h.p50) + ",\"p95\":" + JsonNumber(h.p95) +
           ",\"p99\":" + JsonNumber(h.p99) + "}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::Snapshot::ToText() const {
  std::string out;
  char buf[160];
  for (const auto& [name, v] : counters) {
    std::snprintf(buf, sizeof(buf), "  %-40s %12lld\n", name.c_str(),
                  static_cast<long long>(v));
    out += buf;
  }
  for (const auto& [name, v] : gauges) {
    std::snprintf(buf, sizeof(buf), "  %-40s %12.2f\n", name.c_str(), v);
    out += buf;
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(buf, sizeof(buf),
                  "  %-40s n=%lld p50=%.0fus p95=%.0fus p99=%.0fus "
                  "max=%.0fus\n",
                  name.c_str(), static_cast<long long>(h.count), h.p50, h.p95,
                  h.p99, h.max);
    out += buf;
  }
  return out;
}

namespace {

/// Prometheus metric names admit only [a-zA-Z0-9_:] (and must not start
/// with a digit); dot-scoped registry names mangle to underscores.
std::string PromName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out = "_" + out;
  return out;
}

std::string PromNumber(double v) {
  // The exposition format spells non-finite values out; coercing them to
  // "0" would fabricate a measurement that never happened.
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::Snapshot::ToPrometheus() const {
  std::string out;
  for (const auto& [name, v] : counters) {
    std::string n = PromName(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : gauges) {
    std::string n = PromName(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + PromNumber(v) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    // A summary with zero observations (e.g. every sample was dropped as
    // invalid) has no quantiles; emitting quantile lines with value 0 would
    // read as real zero-latency measurements. Omit the summary entirely.
    if (h.count == 0) continue;
    std::string n = PromName(name) + "_us";
    out += "# TYPE " + n + " summary\n";
    out += n + "{quantile=\"0.5\"} " + PromNumber(h.p50) + "\n";
    out += n + "{quantile=\"0.95\"} " + PromNumber(h.p95) + "\n";
    out += n + "{quantile=\"0.99\"} " + PromNumber(h.p99) + "\n";
    out += n + "_sum " + PromNumber(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

void ScopedTimer::Stop() {
  if (registry_ == nullptr) return;
  double us = std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
  registry_->RecordLatency(name_, us);
  registry_->SetGauge(name_ + ".last_us", us);
  registry_ = nullptr;
}

}  // namespace starburst
