#ifndef STARBURST_OBS_WORKLOAD_H_
#define STARBURST_OBS_WORKLOAD_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/profiler.h"

namespace starburst {

struct PlanOp;
class Query;
struct Predicate;

/// Durable record of one observed query: keyed by a normalized digest so
/// repeated runs of the "same" query (identical tables and predicate shapes,
/// different literals) fold into one entry.
struct WorkloadQueryRecord {
  std::string digest;
  std::string normalized;  ///< human-readable normalized form
  int64_t runs = 0;
  int64_t last_rows = 0;         ///< root rows of the latest run
  double last_total_micros = 0;  ///< root tree time of the latest run
  int64_t last_peak_bytes = 0;
  double max_q_error = 0.0;      ///< worst per-operator q-error ever seen
};

/// Cumulative actual-vs-estimated cardinalities for one (table,
/// predicate-shape) pair, aggregated across every observed run. This is the
/// substrate a feedback-driven re-optimizer reads: "scans of EMP under
/// `EMP.SALARY >= ?` misestimate by 12x on average".
struct TableShapeStats {
  std::string table;
  std::string shape;  ///< normalized conjunct list, literals replaced by '?'
  int64_t observations = 0;
  double est_rows = 0.0;     ///< cumulative estimates
  double actual_rows = 0.0;  ///< cumulative actuals
  double max_q_error = 1.0;
  double sum_q_error = 0.0;

  double mean_q_error() const {
    return observations > 0 ? sum_q_error / static_cast<double>(observations)
                            : 0.0;
  }
};

/// Workload statistics repository: a bounded ring of per-query records plus
/// the cumulative per-(table, predicate-shape) cardinality aggregates. When
/// the ring is full the oldest query record is evicted; the table/shape
/// aggregates persist (they are the long-lived feedback signal). Thread-safe.
class WorkloadRepository {
 public:
  explicit WorkloadRepository(size_t capacity = 128)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Folds one profiled execution of `query` under plan `root` into the
  /// repository. Per-(table, shape) actuals come from the plan's base-table
  /// ACCESS nodes: actual rows per open vs the node's estimated cardinality.
  void Observe(const Query& query, const PlanOp& root,
               const ExecProfile& profile);

  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Ring contents, oldest first.
  std::vector<WorkloadQueryRecord> Records() const;
  /// Aggregates sorted by (table, shape).
  std::vector<TableShapeStats> TableStats() const;

  /// {"queries":[...],"table_stats":[...]} for scraping alongside the
  /// metrics registry.
  std::string ToJson() const;

  void Clear();

  /// Normalized digest of a query: FNV-1a over its table names and
  /// predicate shapes (literals replaced by '?'), so the digest is stable
  /// across literal values and alias renaming.
  static std::string QueryDigest(const Query& query);
  /// Normalized human-readable form the digest is computed from.
  static std::string NormalizedQuery(const Query& query);
  /// One predicate's shape: `EMP.SALARY >= ?`, table-qualified columns,
  /// literals replaced by '?', symmetric comparisons side-ordered.
  static std::string PredicateShape(const Predicate& pred, const Query& query);

 private:
  void ObserveAccessLocked(const std::string& table, const std::string& shape,
                           double est, double actual);

  mutable std::mutex mu_;
  size_t capacity_;
  std::deque<std::string> ring_;  ///< digests, oldest first
  std::map<std::string, WorkloadQueryRecord> queries_;
  std::map<std::pair<std::string, std::string>, TableShapeStats> shapes_;
};

}  // namespace starburst

#endif  // STARBURST_OBS_WORKLOAD_H_
