#ifndef STARBURST_OBS_METRICS_H_
#define STARBURST_OBS_METRICS_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace starburst {

/// Log-scale latency histogram: 4 sub-buckets per power of two covers
/// [1us, ~4.3e9us] with <= ~19% relative bucket width, which is plenty for
/// p50/p95/p99 over optimizer phases. Recording is two comparisons, a
/// bit-scan, and an increment.
class LatencyHistogram {
 public:
  static constexpr int kSubBuckets = 4;       ///< buckets per doubling
  static constexpr int kNumBuckets = 32 * kSubBuckets;

  /// Records one sample. Negative and NaN durations are measurement bugs,
  /// not observations: they are dropped (not folded into count/sum/min) and
  /// tallied in `dropped()` so the corruption stays visible.
  void Record(double micros);

  int64_t count() const { return count_; }
  int64_t dropped() const { return dropped_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  /// Value at quantile `q` in [0,1], interpolated inside the bucket.
  /// Accuracy is bounded by the bucket width (~19% relative).
  double Percentile(double q) const;

  void Reset() { *this = LatencyHistogram{}; }

 private:
  static int BucketOf(double micros);
  static double BucketLowerBound(int bucket);

  std::array<int64_t, kNumBuckets> buckets_{};
  int64_t count_ = 0;
  int64_t dropped_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One registry instance holds every named observable of a component (or of
/// the whole process): monotonic counters, point-in-time gauges, and latency
/// histograms. Names are dot-scoped by subsystem — `star.refs`,
/// `glue.veneers_added`, `plan_table.pruned_dominated`,
/// `optimizer.phase.enumeration` — so a snapshot reads like a tree.
///
/// Thread-safe: every method takes an internal mutex, so parallel
/// enumeration workers (and any other threads) may publish concurrently.
/// The one exception is `histogram()`, which hands out a raw pointer for
/// test convenience — do not use it while writers are active.
class MetricsRegistry {
 public:
  /// Chains this registry under `parent`: every counter increment and
  /// latency observation recorded here is also applied to the parent, giving
  /// layered views (per-session registry -> global server registry) without
  /// double bookkeeping at call sites. Gauges are NOT mirrored — concurrent
  /// sessions setting the same gauge name would just stomp each other.
  /// The parent must outlive this registry. Set before concurrent use.
  void set_parent(MetricsRegistry* parent) { parent_ = parent; }

  /// Adds `delta` to the named counter (creating it at zero).
  void AddCounter(const std::string& name, int64_t delta);
  /// Sets the named gauge.
  void SetGauge(const std::string& name, double value);
  /// Records one latency observation into the named histogram.
  void RecordLatency(const std::string& name, double micros);

  int64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  const LatencyHistogram* histogram(const std::string& name) const;

  /// A consistent copy of everything the registry holds.
  struct Snapshot {
    struct HistogramStats {
      int64_t count = 0;
      int64_t dropped = 0;
      double sum = 0.0;
      double min = 0.0;
      double max = 0.0;
      double p50 = 0.0;
      double p95 = 0.0;
      double p99 = 0.0;
    };
    std::map<std::string, int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramStats> histograms;

    /// {"counters":{...},"gauges":{...},"histograms":{name:{count,...}}}
    std::string ToJson() const;
    /// Aligned human-readable listing for the shell's \metrics command.
    std::string ToText() const;
    /// Prometheus text exposition (version 0.0.4): counters and gauges as-is
    /// (names mangled to [a-zA-Z0-9_:]), histograms as summaries with
    /// `_count`/`_sum` and quantile-labeled sample lines.
    std::string ToPrometheus() const;
  };
  Snapshot TakeSnapshot() const;

  /// JSON of a fresh snapshot (convenience for benches and the shell).
  std::string ToJson() const { return TakeSnapshot().ToJson(); }

  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
  MetricsRegistry* parent_ = nullptr;
};

/// Times a scope and records the elapsed microseconds into a registry
/// histogram (and, for at-a-glance reads, a same-named `.last_us` gauge).
/// Null registry = no-op.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, std::string name)
      : registry_(registry), name_(std::move(name)) {
    if (registry_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() { Stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records now rather than at scope exit (idempotent).
  void Stop();

 private:
  MetricsRegistry* registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace starburst

#endif  // STARBURST_OBS_METRICS_H_
