#ifndef STARBURST_OBS_TRACE_H_
#define STARBURST_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace starburst {

/// What part of the optimizer emitted a trace event. The kinds mirror the
/// stages of one optimization run: STAR interpretation, Glue resolution,
/// plan-table pruning, join enumeration, the optimizer's coarse phases, and
/// executor activity during EXPLAIN ANALYZE.
enum class TraceKind {
  kStar,         ///< a STAR reference being expanded
  kAlternative,  ///< one alternative definition of a STAR tried
  kCondition,    ///< an alternative's condition evaluated (detail: outcome)
  kOp,           ///< a LOLEPOP reference mapped over its input SAPs
  kGlue,         ///< a Glue::Resolve call (detail: requirements, veneers)
  kPlanTable,    ///< a prune/keep/evict decision (detail: dominating plan)
  kEnumerator,   ///< a join-enumeration subset or JoinRoot reference
  kPhase,        ///< a coarse optimizer phase (enumeration, glue, costing)
  kExec,         ///< executor-side activity
};

const char* TraceKindName(TraceKind kind);

/// One node of the rule-firing trace. Spans (`dur_us >= 0`) nest by `depth`;
/// instants carry `dur_us == 0` and sit at the depth they were emitted.
struct TraceEvent {
  TraceKind kind;
  std::string label;   ///< e.g. the STAR name, "Resolve", "prune"
  std::string detail;  ///< outcome summary filled when the span closes
  int depth = 0;
  int64_t start_us = 0;  ///< microseconds since the tracer's epoch
  int64_t dur_us = 0;
};

/// Low-overhead span tracer for one optimization (or execution) run. A
/// disabled tracer costs one predictable branch per instrumentation point;
/// instrumented code must only build labels/details after checking
/// `ShouldTrace(tracer)` (the RAII TraceSpan does this for you).
///
/// Render with ToText() (indented rule-firing tree) or ToChromeJson()
/// (Chrome trace-event format, loadable in chrome://tracing and Perfetto).
class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Drops recorded events and restarts the clock (depth is preserved so a
  /// Clear mid-span stays balanced).
  void Clear() {
    events_.clear();
    epoch_ = std::chrono::steady_clock::now();
  }

  /// Opens a span and returns its event index (pass to EndSpan).
  size_t BeginSpan(TraceKind kind, std::string label);
  /// Closes the span, stamping its duration and outcome detail.
  void EndSpan(size_t index, std::string detail = "");
  /// Records a zero-duration event at the current nesting depth.
  void Instant(TraceKind kind, std::string label, std::string detail = "");

  /// Appends another tracer's events to this one, re-based onto this
  /// tracer's epoch and nested under the current depth. Parallel enumeration
  /// gives each worker its own Tracer (a Tracer is not thread-safe) and
  /// merges the buffers back in worker-creation order once the workers have
  /// joined, so the combined trace is deterministic in structure even though
  /// the workers ran concurrently.
  void MergeFrom(const Tracer& other);

  const std::vector<TraceEvent>& events() const { return events_; }

  /// The indented rule-firing tree, e.g.:
  ///   star AccessRoot  (2 plans, 312us)
  ///     alt 'scan'  (1 plan)
  ///     cond 'HasIndex' -> true
  std::string ToText() const;

  /// Chrome trace-event JSON ("traceEvents" array of complete events).
  std::string ToChromeJson() const;

  int64_t NowMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

 private:
  bool enabled_ = false;
  int depth_ = 0;
  std::vector<TraceEvent> events_;
  std::chrono::steady_clock::time_point epoch_;
};

/// True if instrumentation should pay the cost of building labels.
inline bool ShouldTrace(const Tracer* tracer) {
  return tracer != nullptr && tracer->enabled();
}

/// RAII span: no-op unless the tracer is live. `set_detail` lazily records
/// the outcome that is only known when the span closes.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, TraceKind kind, const std::string& label)
      : tracer_(ShouldTrace(tracer) ? tracer : nullptr) {
    if (tracer_ != nullptr) index_ = tracer_->BeginSpan(kind, label);
  }
  ~TraceSpan() {
    if (tracer_ != nullptr) tracer_->EndSpan(index_, std::move(detail_));
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True if this span records events (guard detail construction with it).
  bool active() const { return tracer_ != nullptr; }
  void set_detail(std::string detail) { detail_ = std::move(detail); }

 private:
  Tracer* tracer_;
  size_t index_ = 0;
  std::string detail_;
};

// STARBURST_TRACE_SPAN(tracer, kind, label): scoped span for the rest of the
// enclosing block. Compiles to nothing under -DSTARBURST_DISABLE_TRACING so
// the instrumentation can be removed entirely from release builds.
#ifdef STARBURST_DISABLE_TRACING
#define STARBURST_TRACE_SPAN(tracer, kind, label) \
  do {                                            \
  } while (0)
#else
#define STARBURST_TRACE_CONCAT_INNER(a, b) a##b
#define STARBURST_TRACE_CONCAT(a, b) STARBURST_TRACE_CONCAT_INNER(a, b)
#define STARBURST_TRACE_SPAN(tracer, kind, label)                         \
  ::starburst::TraceSpan STARBURST_TRACE_CONCAT(_sb_trace_span_,          \
                                                __LINE__)(tracer, kind,  \
                                                          label)
#endif

/// Escapes a string for embedding in a JSON double-quoted literal (shared by
/// the tracer and the metrics registry).
std::string JsonEscape(const std::string& s);

}  // namespace starburst

#endif  // STARBURST_OBS_TRACE_H_
