#include "obs/trace.h"

#include <cstdio>

namespace starburst {

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kStar:
      return "star";
    case TraceKind::kAlternative:
      return "alt";
    case TraceKind::kCondition:
      return "cond";
    case TraceKind::kOp:
      return "op";
    case TraceKind::kGlue:
      return "glue";
    case TraceKind::kPlanTable:
      return "plan_table";
    case TraceKind::kEnumerator:
      return "enum";
    case TraceKind::kPhase:
      return "phase";
    case TraceKind::kExec:
      return "exec";
  }
  return "?";
}

size_t Tracer::BeginSpan(TraceKind kind, std::string label) {
  TraceEvent ev;
  ev.kind = kind;
  ev.label = std::move(label);
  ev.depth = depth_++;
  ev.start_us = NowMicros();
  ev.dur_us = -1;  // open; stamped by EndSpan
  events_.push_back(std::move(ev));
  return events_.size() - 1;
}

void Tracer::EndSpan(size_t index, std::string detail) {
  --depth_;
  if (index >= events_.size()) return;  // span opened before a Clear()
  TraceEvent& ev = events_[index];
  ev.dur_us = NowMicros() - ev.start_us;
  if (!detail.empty()) ev.detail = std::move(detail);
}

void Tracer::MergeFrom(const Tracer& other) {
  if (other.events_.empty()) return;
  const int64_t offset = std::chrono::duration_cast<std::chrono::microseconds>(
                             other.epoch_ - epoch_)
                             .count();
  events_.reserve(events_.size() + other.events_.size());
  for (TraceEvent ev : other.events_) {
    ev.depth += depth_;
    ev.start_us += offset;
    events_.push_back(std::move(ev));
  }
}

void Tracer::Instant(TraceKind kind, std::string label, std::string detail) {
  TraceEvent ev;
  ev.kind = kind;
  ev.label = std::move(label);
  ev.detail = std::move(detail);
  ev.depth = depth_;
  ev.start_us = NowMicros();
  ev.dur_us = 0;
  events_.push_back(std::move(ev));
}

std::string Tracer::ToText() const {
  std::string out;
  for (const TraceEvent& ev : events_) {
    out.append(static_cast<size_t>(ev.depth) * 2, ' ');
    out += TraceKindName(ev.kind);
    out += ' ';
    out += ev.label;
    if (!ev.detail.empty()) {
      out += "  -> ";
      out += ev.detail;
    }
    if (ev.dur_us > 0) {
      out += "  (" + std::to_string(ev.dur_us) + "us)";
    }
    out += '\n';
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Tracer::ToChromeJson() const {
  // Chrome trace-event format: complete events ("ph":"X") carry their own
  // duration, so nesting is reconstructed by the viewer from time overlap.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(ev.label) + "\",\"cat\":\"" +
           TraceKindName(ev.kind) + "\",\"ph\":\"X\",\"ts\":" +
           std::to_string(ev.start_us) + ",\"dur\":" +
           std::to_string(ev.dur_us < 0 ? 0 : ev.dur_us) +
           ",\"pid\":1,\"tid\":1";
    if (!ev.detail.empty()) {
      out += ",\"args\":{\"detail\":\"" + JsonEscape(ev.detail) + "\"}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace starburst
