#include "obs/workload.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <set>

#include "obs/trace.h"
#include "plan/plan.h"
#include "query/query.h"

namespace starburst {

namespace {

const char* ArithName(ExprKind kind) {
  switch (kind) {
    case ExprKind::kAdd: return "+";
    case ExprKind::kSub: return "-";
    case ExprKind::kMul: return "*";
    case ExprKind::kDiv: return "/";
    default: return "?";
  }
}

/// Renders an expression with table-qualified columns and literals replaced
/// by '?': the shape is invariant under literal values and alias renaming.
std::string ExprShape(const Expr& expr, const Query& query) {
  switch (expr.kind()) {
    case ExprKind::kColumn: {
      ColumnRef ref = expr.column();
      std::string table = query.table_of(ref.quantifier).name;
      if (ref.is_tid()) return table + ".TID";
      return table + "." + query.column_def(ref).name;
    }
    case ExprKind::kLiteral:
      return "?";
    default:
      return "(" + ExprShape(*expr.lhs(), query) + " " +
             ArithName(expr.kind()) + " " + ExprShape(*expr.rhs(), query) +
             ")";
  }
}

uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string Hex64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

double QError(double actual, double est) {
  if (actual == 0.0 && est == 0.0) return 1.0;
  if (actual <= 0.0 || est <= 0.0) {
    // One side empty where the other was not: cap rather than inf so
    // aggregates stay finite.
    return 1e9;
  }
  return actual > est ? actual / est : est / actual;
}

}  // namespace

std::string WorkloadRepository::PredicateShape(const Predicate& pred,
                                               const Query& query) {
  std::string lhs = ExprShape(*pred.lhs, query);
  std::string rhs = ExprShape(*pred.rhs, query);
  if ((pred.op == CompareOp::kEq || pred.op == CompareOp::kNe) && rhs < lhs) {
    std::swap(lhs, rhs);  // symmetric compare: canonical side order
  }
  return lhs + " " + CompareOpName(pred.op) + " " + rhs;
}

std::string WorkloadRepository::NormalizedQuery(const Query& query) {
  std::set<std::string> tables;
  for (int q = 0; q < query.num_quantifiers(); ++q) {
    tables.insert(query.table_of(q).name);
  }
  std::set<std::string> shapes;
  for (int p = 0; p < query.num_predicates(); ++p) {
    shapes.insert(PredicateShape(query.predicate(p), query));
  }
  std::string out = "FROM ";
  bool first = true;
  for (const std::string& t : tables) {
    if (!first) out += ",";
    first = false;
    out += t;
  }
  if (!shapes.empty()) {
    out += " WHERE ";
    first = true;
    for (const std::string& s : shapes) {
      if (!first) out += " AND ";
      first = false;
      out += s;
    }
  }
  return out;
}

std::string WorkloadRepository::QueryDigest(const Query& query) {
  return Hex64(Fnv1a64(NormalizedQuery(query)));
}

void WorkloadRepository::ObserveAccessLocked(const std::string& table,
                                             const std::string& shape,
                                             double est, double actual) {
  TableShapeStats& s = shapes_[{table, shape}];
  if (s.observations == 0) {
    s.table = table;
    s.shape = shape;
  }
  ++s.observations;
  s.est_rows += est;
  s.actual_rows += actual;
  double q = QError(actual, est);
  s.sum_q_error += q;
  if (q > s.max_q_error) s.max_q_error = q;
}

void WorkloadRepository::Observe(const Query& query, const PlanOp& root,
                                 const ExecProfile& profile) {
  std::lock_guard<std::mutex> lock(mu_);

  double worst_q = 0.0;
  // Walk the DAG once; base-table ACCESS nodes feed the (table, shape)
  // aggregates with per-open actual rows vs the estimated cardinality.
  std::set<const PlanOp*> seen;
  std::function<void(const PlanOp&)> walk = [&](const PlanOp& node) {
    if (!seen.insert(&node).second) return;
    for (const PlanPtr& in : node.inputs) walk(*in);
    if (node.name() != op::kAccess) return;
    if (node.flavor == flavor::kTemp || node.flavor == flavor::kTempIndex) {
      return;  // temps carry no base-table estimate of their own
    }
    const OpProfile* p = profile.find(&node);
    // Every node is pre-registered at run start, so this only guards against
    // a profile that belongs to a different plan.
    if (p == nullptr) return;
    int q = static_cast<int>(node.args.GetInt(arg::kQuantifier, -1));
    if (q < 0) return;
    std::string table = query.table_of(q).name;
    std::vector<std::string> parts;
    for (int id : node.args.GetPreds(arg::kPreds).ToVector()) {
      parts.push_back(PredicateShape(query.predicate(id), query));
    }
    std::sort(parts.begin(), parts.end());
    std::string shape;
    for (const std::string& part : parts) {
      if (!shape.empty()) shape += " AND ";
      shape += part;
    }
    if (shape.empty()) shape = "<none>";
    int64_t invocations = p->opens > 0 ? p->opens : 1;
    double actual = static_cast<double>(p->rows_out) /
                    static_cast<double>(invocations);
    double est = node.props.card();
    ObserveAccessLocked(table, shape, est, actual);
    double qe = QError(actual, est);
    if (qe > worst_q) worst_q = qe;
  };
  walk(root);

  std::string digest = QueryDigest(query);
  auto it = queries_.find(digest);
  if (it == queries_.end()) {
    if (queries_.size() >= capacity_) {
      queries_.erase(ring_.front());
      ring_.pop_front();
    }
    ring_.push_back(digest);
    WorkloadQueryRecord rec;
    rec.digest = digest;
    rec.normalized = NormalizedQuery(query);
    it = queries_.emplace(digest, std::move(rec)).first;
  }
  WorkloadQueryRecord& rec = it->second;
  ++rec.runs;
  const OpProfile* rootp = profile.find(&root);
  if (rootp != nullptr) {
    rec.last_rows = rootp->rows_out;
    rec.last_total_micros = rootp->total_micros();
  }
  rec.last_peak_bytes = profile.memory().peak_bytes();
  if (worst_q > rec.max_q_error) rec.max_q_error = worst_q;
}

size_t WorkloadRepository::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queries_.size();
}

std::vector<WorkloadQueryRecord> WorkloadRepository::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WorkloadQueryRecord> out;
  out.reserve(ring_.size());
  for (const std::string& digest : ring_) {
    auto it = queries_.find(digest);
    if (it != queries_.end()) out.push_back(it->second);
  }
  return out;
}

std::vector<TableShapeStats> WorkloadRepository::TableStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TableShapeStats> out;
  out.reserve(shapes_.size());
  for (const auto& [key, s] : shapes_) out.push_back(s);
  return out;
}

std::string WorkloadRepository::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"queries\":[";
  bool first = true;
  for (const std::string& digest : ring_) {
    auto it = queries_.find(digest);
    if (it == queries_.end()) continue;
    const WorkloadQueryRecord& r = it->second;
    if (!first) out += ",";
    first = false;
    out += "{\"digest\":\"" + JsonEscape(r.digest) + "\",\"query\":\"" +
           JsonEscape(r.normalized) + "\",\"runs\":" + std::to_string(r.runs) +
           ",\"last_rows\":" + std::to_string(r.last_rows) +
           ",\"last_total_us\":" + Num(r.last_total_micros) +
           ",\"last_peak_bytes\":" + std::to_string(r.last_peak_bytes) +
           ",\"max_q_error\":" + Num(r.max_q_error) + "}";
  }
  out += "],\"table_stats\":[";
  first = true;
  for (const auto& [key, s] : shapes_) {
    if (!first) out += ",";
    first = false;
    out += "{\"table\":\"" + JsonEscape(s.table) + "\",\"shape\":\"" +
           JsonEscape(s.shape) +
           "\",\"observations\":" + std::to_string(s.observations) +
           ",\"est_rows\":" + Num(s.est_rows) +
           ",\"actual_rows\":" + Num(s.actual_rows) +
           ",\"mean_q_error\":" + Num(s.mean_q_error()) +
           ",\"max_q_error\":" + Num(s.max_q_error) + "}";
  }
  out += "]}";
  return out;
}

void WorkloadRepository::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  queries_.clear();
  shapes_.clear();
}

}  // namespace starburst
