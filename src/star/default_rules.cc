#include "star/default_rules.h"

#include <algorithm>

#include "plan/operator.h"

namespace starburst {

namespace {

// Terse builders so the rule definitions below read like the paper's
// notation.
RuleExprPtr P(const char* name) { return RuleExpr::Param(name); }
RuleExprPtr Fn(const char* fn, std::vector<RuleExprPtr> args) {
  return RuleExpr::Call(fn, std::move(args));
}
RuleExprPtr NoPreds() { return RuleExpr::Const(RuleValue(PredSet{})); }
RuleExprPtr True() { return RuleExpr::Const(RuleValue(true)); }
RuleExprPtr Str(const char* s) {
  return RuleExpr::Const(RuleValue(std::string(s)));
}
RuleExprPtr Int(int64_t v) { return RuleExpr::Const(RuleValue(v)); }

using NamedArgs = std::vector<std::pair<std::string, RuleExprPtr>>;

Alternative TidSortRootAlternative();
Alternative IndexAndRootAlternative();

// ---------------------------------------------------------------------------
// Single-table access STARs ([LEE 88], paper §2.1 OrderedStream examples and
// §4.5.2 TableAccess).
// ---------------------------------------------------------------------------

Star MakeAccessRoot(const DefaultRuleOptions& options) {
  Star s;
  s.name = "AccessRoot";
  s.params = {"T", "P"};
  // Inclusive: a sequential/clustered scan plus one plan per index, plus the
  // optional §4 "omitted STAR" access strategies.
  Alternative scan;
  scan.label = "table-scan";
  scan.body = RuleExpr::StarRef("TableAccess", {P("T"), P("P")});
  s.alternatives.push_back(std::move(scan));

  Alternative index;
  index.label = "index-scans";
  index.body = RuleExpr::ForEach(
      "i", Fn("indexes_on", {P("T")}),
      RuleExpr::StarRef("IndexAccess", {P("T"), P("P"), P("i")}));
  s.alternatives.push_back(std::move(index));

  if (options.tid_sort) s.alternatives.push_back(TidSortRootAlternative());
  if (options.index_and) s.alternatives.push_back(IndexAndRootAlternative());
  return s;
}

Star MakeTableAccess() {
  // One (and only one) flavor of ACCESS, dispatched on the storage-manager
  // type (§4.5.2) — hence an *exclusive* STAR.
  Star s;
  s.name = "TableAccess";
  s.params = {"T", "P"};
  s.exclusive = true;

  auto access_with = [](const char* flv) {
    return RuleExpr::OpRef(
        op::kAccess, flv, {},
        NamedArgs{{arg::kQuantifier, Fn("quant", {P("T")})},
                  {arg::kCols, Fn("access_cols", {P("T"), P("P")})},
                  {arg::kPreds, P("P")}});
  };

  Alternative heap;
  heap.label = "heap";
  heap.condition = Fn("eq", {Fn("storage_kind", {P("T")}), Str("heap")});
  heap.body = access_with(flavor::kHeap);
  s.alternatives.push_back(std::move(heap));

  Alternative btree;
  btree.label = "btree";
  btree.condition = Fn("eq", {Fn("storage_kind", {P("T")}), Str("btree")});
  btree.body = access_with(flavor::kBTree);
  s.alternatives.push_back(std::move(btree));
  return s;
}

Star MakeIndexAccess() {
  // GET(ACCESS(index, {key, TID}, KP), T, remaining columns, P - KP) — the
  // paper's OrderedStream2 shape (§2.1).
  Star s;
  s.name = "IndexAccess";
  s.params = {"T", "P", "i"};

  Alternative alt;
  alt.label = "index";
  alt.lets = {{"KP", Fn("index_eligible_preds", {P("T"), P("i"), P("P")})}};
  alt.body = RuleExpr::OpRef(
      op::kGet, "",
      {RuleExpr::OpRef(
          op::kAccess, flavor::kIndex, {},
          NamedArgs{{arg::kQuantifier, Fn("quant", {P("T")})},
                    {arg::kIndex, P("i")},
                    {arg::kCols, Fn("key_and_tid", {P("T"), P("i")})},
                    {arg::kPreds, P("KP")}})},
      NamedArgs{{arg::kQuantifier, Fn("quant", {P("T")})},
                {arg::kCols, Fn("access_cols", {P("T"), P("P")})},
                {arg::kPreds, Fn("minus", {P("P"), P("KP")})}});
  s.alternatives.push_back(std::move(alt));
  return s;
}

Star MakeTidSortAccess() {
  // GET(SORT(ACCESS(index), TID), ...): sort the TIDs of a filtering index
  // so the data-page fetches are sequential (paper §4, omitted STAR #1).
  Star s;
  s.name = "TidSortAccess";
  s.params = {"T", "P", "i"};

  Alternative alt;
  alt.label = "tid-sort";
  alt.lets = {{"KP", Fn("index_eligible_preds", {P("T"), P("i"), P("P")})}};
  alt.condition = Fn("nonempty", {P("KP")});  // unfiltered scans gain nothing
  alt.body = RuleExpr::OpRef(
      op::kGet, "",
      {RuleExpr::OpRef(
          op::kSort, "",
          {RuleExpr::OpRef(
              op::kAccess, flavor::kIndex, {},
              NamedArgs{{arg::kQuantifier, Fn("quant", {P("T")})},
                        {arg::kIndex, P("i")},
                        {arg::kCols, Fn("key_and_tid", {P("T"), P("i")})},
                        {arg::kPreds, P("KP")}})},
          NamedArgs{{arg::kOrder, Fn("tid_col", {P("T")})}})},
      NamedArgs{{arg::kQuantifier, Fn("quant", {P("T")})},
                {arg::kCols, Fn("access_cols", {P("T"), P("P")})},
                {arg::kPreds, Fn("minus", {P("P"), P("KP")})}});
  s.alternatives.push_back(std::move(alt));
  return s;
}

Star MakeAndIndexAccess() {
  // GET(TIDAND(ACCESS(i), ACCESS(j)), ...): intersect the TID streams of
  // two filtering indexes (paper §4, omitted STAR #2). TIDAND emits in TID
  // order, so the GET's page accesses are sequential for free.
  Star s;
  s.name = "AndIndexAccess";
  s.params = {"T", "P", "i", "j"};

  auto index_access = [](const char* index_param, const char* preds_let) {
    return RuleExpr::OpRef(
        op::kAccess, flavor::kIndex, {},
        NamedArgs{{arg::kQuantifier, Fn("quant", {P("T")})},
                  {arg::kIndex, P(index_param)},
                  {arg::kCols, Fn("key_and_tid", {P("T"), P(index_param)})},
                  {arg::kPreds, P(preds_let)}});
  };

  Alternative alt;
  alt.label = "index-and";
  alt.lets = {
      {"KPi", Fn("index_eligible_preds", {P("T"), P("i"), P("P")})},
      {"KPj", Fn("index_eligible_preds",
                 {P("T"), P("j"), Fn("minus", {P("P"), P("KPi")})})}};
  alt.condition = Fn("and", {Fn("lt", {P("i"), P("j")}),
                             Fn("nonempty", {P("KPi")}),
                             Fn("nonempty", {P("KPj")})});
  alt.body = RuleExpr::OpRef(
      op::kGet, "",
      {RuleExpr::OpRef(op::kTidAnd, "",
                       {index_access("i", "KPi"), index_access("j", "KPj")},
                       {})},
      NamedArgs{{arg::kQuantifier, Fn("quant", {P("T")})},
                {arg::kCols, Fn("access_cols", {P("T"), P("P")})},
                {arg::kPreds,
                 Fn("minus", {P("P"), Fn("union", {P("KPi"), P("KPj")})})}});
  s.alternatives.push_back(std::move(alt));
  return s;
}

Alternative TidSortRootAlternative() {
  Alternative alt;
  alt.label = "tid-sort-scans";
  alt.body = RuleExpr::ForEach(
      "i", Fn("indexes_on", {P("T")}),
      RuleExpr::StarRef("TidSortAccess", {P("T"), P("P"), P("i")}));
  return alt;
}

Alternative IndexAndRootAlternative() {
  Alternative alt;
  alt.label = "index-and-scans";
  alt.body = RuleExpr::ForEach(
      "i", Fn("indexes_on", {P("T")}),
      RuleExpr::ForEach(
          "j", Fn("indexes_on", {P("T")}),
          RuleExpr::StarRef("AndIndexAccess",
                            {P("T"), P("P"), P("i"), P("j")})));
  return alt;
}

Star MakeTempAccess() {
  // Re-ACCESS a materialized temp, applying P2 during the scan (§4.5.2:
  // "All columns (*) of the temp are then re-accessed").
  Star s;
  s.name = "TempAccess";
  s.params = {"S", "P2"};

  Alternative alt;
  alt.label = "temp-scan";
  alt.body = RuleExpr::OpRef(op::kAccess, flavor::kTemp, {P("S")},
                             NamedArgs{{arg::kPreds, P("P2")}});
  s.alternatives.push_back(std::move(alt));
  return s;
}

// ---------------------------------------------------------------------------
// Join STARs (paper §4.1-§4.4).
// ---------------------------------------------------------------------------

Star MakeJoinRoot() {
  // §4.1 PermutedJoin: either side may be the outer. Composite inners are
  // gated by the session's compile-time parameter (§2.3; the paper notes the
  // condition "restricting the inner table-set to be one table").
  Star s;
  s.name = "JoinRoot";
  s.params = {"T1", "T2", "P"};

  auto gate = [](const char* inner) {
    return Fn("or", {Fn("not", {Fn("composite", {P(inner)})}),
                     Fn("allow_composite_inner", {})});
  };

  Alternative keep;
  keep.label = "as-given";
  keep.condition = gate("T2");
  keep.body = RuleExpr::StarRef("PermutedJoin", {P("T1"), P("T2"), P("P")});
  s.alternatives.push_back(std::move(keep));

  Alternative swapped;
  swapped.label = "swapped";
  swapped.condition = gate("T1");
  swapped.body = RuleExpr::StarRef("PermutedJoin", {P("T2"), P("T1"), P("P")});
  s.alternatives.push_back(std::move(swapped));
  return s;
}

Star MakePermutedJoin() {
  // §4.2 join-site alternatives: local queries skip RemoteJoin; otherwise
  // require the join at each candidate site s ∈ σ.
  Star s;
  s.name = "PermutedJoin";
  s.params = {"T1", "T2", "P"};
  s.exclusive = true;

  Alternative local;
  local.label = "local";
  local.condition = Fn("is_local_query", {});
  local.body = RuleExpr::StarRef("SitedJoin", {P("T1"), P("T2"), P("P")});
  s.alternatives.push_back(std::move(local));

  Alternative remote;
  remote.label = "remote";  // OTHERWISE
  remote.body = RuleExpr::ForEach(
      "s", Fn("sites", {}),
      RuleExpr::StarRef("RemoteJoin", {P("T1"), P("T2"), P("P"), P("s")}));
  s.alternatives.push_back(std::move(remote));
  return s;
}

Star MakeRemoteJoin() {
  Star s;
  s.name = "RemoteJoin";
  s.params = {"T1", "T2", "P", "s"};

  Alternative alt;
  alt.label = "site";
  alt.body = RuleExpr::StarRef(
      "SitedJoin",
      {RuleExpr::Require(P("T1"), ReqKind::kSite, P("s")),
       RuleExpr::Require(P("T2"), ReqKind::kSite, P("s")), P("P")});
  s.alternatives.push_back(std::move(alt));
  return s;
}

Star MakeSitedJoin() {
  // §4.3 store-inner-stream condition C1: composite inner, or the inner's
  // natural site differs from its required site.
  Star s;
  s.name = "SitedJoin";
  s.params = {"T1", "T2", "P"};
  s.exclusive = true;

  RuleExprPtr c1 = Fn(
      "or",
      {Fn("composite", {P("T2")}),
       Fn("and",
          {Fn("not", {Fn("eq", {Fn("required_site", {P("T2")}), Int(-1)})}),
           Fn("not", {Fn("eq", {Fn("natural_site", {P("T2")}),
                                Fn("required_site", {P("T2")})})})})});

  Alternative temp;
  temp.label = "temp-inner";
  temp.condition = std::move(c1);
  temp.body = RuleExpr::StarRef(
      "JMeth",
      {P("T1"), RuleExpr::Require(P("T2"), ReqKind::kTemp, True()), P("P")});
  s.alternatives.push_back(std::move(temp));

  Alternative plain;
  plain.label = "plain";  // OTHERWISE
  plain.body = RuleExpr::StarRef("JMeth", {P("T1"), P("T2"), P("P")});
  s.alternatives.push_back(std::move(plain));
  return s;
}

Alternative NestedLoopAlternative() {
  // JOIN(NL, Glue(T1, φ), Glue(T2, JP ∪ IP), JP, P - (JP ∪ IP)).
  Alternative alt;
  alt.label = "nested-loop";
  alt.body = RuleExpr::OpRef(
      op::kJoin, flavor::kNL,
      {RuleExpr::Glue(P("T1"), NoPreds()),
       RuleExpr::Glue(P("T2"), Fn("union", {P("JP"), P("IP")}))},
      NamedArgs{
          {arg::kJoinPreds, P("JP")},
          {arg::kResidualPreds,
           Fn("minus", {P("P"), Fn("union", {P("JP"), P("IP")})})}});
  return alt;
}

Alternative MergeJoinAlternative() {
  // JOIN(MG, Glue(T1[order = χ(SP) ∩ χ(T1)], φ),
  //          Glue(T2[order = χ(SP) ∩ χ(T2)], IP), SP, P - (IP ∪ SP))
  //                                                        IF SP ≠ φ.
  Alternative alt;
  alt.label = "sort-merge";
  alt.lets = {{"SP", Fn("sortable_preds", {P("P"), P("T1"), P("T2")})}};
  alt.condition = Fn("nonempty", {P("SP")});
  alt.body = RuleExpr::OpRef(
      op::kJoin, flavor::kMG,
      {RuleExpr::Glue(RuleExpr::Require(P("T1"), ReqKind::kOrder,
                                        Fn("sort_cols", {P("SP"), P("T1")})),
                      NoPreds()),
       RuleExpr::Glue(RuleExpr::Require(P("T2"), ReqKind::kOrder,
                                        Fn("sort_cols", {P("SP"), P("T2")})),
                      P("IP"))},
      NamedArgs{
          {arg::kJoinPreds, P("SP")},
          {arg::kResidualPreds,
           Fn("minus", {P("P"), Fn("union", {P("IP"), P("SP")})})}});
  return alt;
}

Alternative HashJoinAlternative() {
  // §4.5.1: JOIN(HA, Glue(T1, φ), Glue(T2, IP), HP, P - IP)  IF HP ≠ φ.
  // All multi-table predicates stay residual (hash collisions).
  Alternative alt;
  alt.label = "hash";
  alt.lets = {{"HP", Fn("hashable_preds", {P("P"), P("T1"), P("T2")})}};
  alt.condition = Fn("nonempty", {P("HP")});
  alt.body = RuleExpr::OpRef(
      op::kJoin, flavor::kHA,
      {RuleExpr::Glue(P("T1"), NoPreds()),
       RuleExpr::Glue(P("T2"), P("IP"))},
      NamedArgs{{arg::kJoinPreds, P("HP")},
                {arg::kResidualPreds, Fn("minus", {P("P"), P("IP")})}});
  return alt;
}

Alternative ForcedProjectionAlternative() {
  // §4.5.2: JOIN(NL, Glue(T1, φ),
  //              TempAccess(Glue(T2[temp], IP), JP), JP, P - (IP ∪ JP)).
  // The STAR structure confines the join predicates to the re-access, so the
  // temp is not re-materialized for each outer tuple.
  Alternative alt;
  alt.label = "forced-projection";
  alt.condition = Fn("nonempty", {P("JP")});
  alt.body = RuleExpr::OpRef(
      op::kJoin, flavor::kNL,
      {RuleExpr::Glue(P("T1"), NoPreds()),
       RuleExpr::StarRef(
           "TempAccess",
           {RuleExpr::Glue(RuleExpr::Require(P("T2"), ReqKind::kTemp, True()),
                           P("IP")),
            P("JP")})},
      NamedArgs{
          {arg::kJoinPreds, P("JP")},
          {arg::kResidualPreds,
           Fn("minus", {P("P"), Fn("union", {P("IP"), P("JP")})})}});
  return alt;
}

Alternative DynamicIndexAlternative() {
  // §4.5.3: JOIN(NL, Glue(T1, φ), Glue(T2[paths ⊇ IX], XP ∪ IP),
  //              XP - IP, P - (XP ∪ IP))
  // where IX = (χ(IP) ∪ χ(XP)) ∩ χ(T2), '=' predicates first.
  Alternative alt;
  alt.label = "dynamic-index";
  alt.lets = {{"XP", Fn("indexable_preds", {P("P"), P("T1"), P("T2")})},
              {"IX", Fn("index_cols", {P("IP"), P("XP"), P("T2")})}};
  alt.condition = Fn("nonempty", {P("XP")});
  alt.body = RuleExpr::OpRef(
      op::kJoin, flavor::kNL,
      {RuleExpr::Glue(P("T1"), NoPreds()),
       RuleExpr::Glue(RuleExpr::Require(P("T2"), ReqKind::kPath, P("IX")),
                      Fn("union", {P("XP"), P("IP")}))},
      NamedArgs{
          {arg::kJoinPreds, Fn("minus", {P("XP"), P("IP")})},
          {arg::kResidualPreds,
           Fn("minus", {P("P"), Fn("union", {P("XP"), P("IP")})})}});
  return alt;
}

Alternative BloomJoinAlternative() {
  // Distributed filtration (paper §4's "filtration methods such as
  // semi-joins and Bloom-joins", validated for R* in [MACK 86]): project the
  // outer's join columns, ship the (small) filter to the inner's home site,
  // reduce the inner there, and ship only the survivors to the join site.
  Alternative alt;
  alt.label = "bloomjoin";
  alt.lets = {{"BP", Fn("hashable_preds", {P("P"), P("T1"), P("T2")})}};
  alt.condition =
      Fn("and", {Fn("not", {Fn("is_local_query", {})}),
                 Fn("not", {Fn("composite", {P("T2")})}),
                 Fn("nonempty", {P("BP")}),
                 Fn("not", {Fn("eq", {Fn("required_site", {P("T2")}),
                                      Int(-1)})})});

  RuleExprPtr filter_stream = RuleExpr::OpRef(
      op::kShip, "",
      {RuleExpr::OpRef(
          op::kProject, "", {RuleExpr::Glue(P("T1"), NoPreds())},
          NamedArgs{{arg::kCols, Fn("pred_cols", {P("BP"), P("T1")})},
                    {arg::kDistinct, RuleExpr::Const(RuleValue(true))}})},
      NamedArgs{{arg::kSite, Fn("natural_site", {P("T2")})}});

  RuleExprPtr reduced_inner = RuleExpr::OpRef(
      op::kShip, "",
      {RuleExpr::OpRef(
          op::kFilterBy, flavor::kBloom,
          {RuleExpr::Glue(Fn("at_natural_site", {P("T2")}), P("IP")),
           std::move(filter_stream)},
          NamedArgs{{arg::kJoinPreds, P("BP")}})},
      NamedArgs{{arg::kSite, Fn("required_site", {P("T2")})}});

  alt.body = RuleExpr::OpRef(
      op::kJoin, flavor::kHA,
      {RuleExpr::Glue(P("T1"), NoPreds()), std::move(reduced_inner)},
      NamedArgs{
          {arg::kJoinPreds, P("BP")},
          {arg::kResidualPreds,
           Fn("minus", {P("P"), Fn("union", {P("IP"), P("BP")})})}});
  return alt;
}

Star MakeJMeth(const DefaultRuleOptions& options) {
  Star s;
  s.name = "JMeth";
  s.params = {"T1", "T2", "P"};
  s.lets = {{"JP", Fn("join_preds", {P("P"), P("T1"), P("T2")})},
            {"IP", Fn("inner_preds", {P("P"), P("T2")})}};
  s.alternatives.push_back(NestedLoopAlternative());
  if (options.merge_join) s.alternatives.push_back(MergeJoinAlternative());
  if (options.hash_join) s.alternatives.push_back(HashJoinAlternative());
  if (options.forced_projection) {
    s.alternatives.push_back(ForcedProjectionAlternative());
  }
  if (options.dynamic_index) {
    s.alternatives.push_back(DynamicIndexAlternative());
  }
  if (options.bloomjoin) s.alternatives.push_back(BloomJoinAlternative());
  return s;
}

void AppendAlternative(RuleSet* rules, const char* star_name,
                       Alternative alt) {
  auto star = rules->Find(star_name);
  if (!star.ok()) return;
  Star updated = *star.value();
  for (const Alternative& existing : updated.alternatives) {
    if (existing.label == alt.label) return;  // already present
  }
  updated.alternatives.push_back(std::move(alt));
  rules->AddOrReplace(std::move(updated));
}

void AppendJMethAlternative(RuleSet* rules, Alternative alt) {
  AppendAlternative(rules, "JMeth", std::move(alt));
}

}  // namespace

RuleSet DefaultRuleSet(const DefaultRuleOptions& options) {
  RuleSet rules;
  rules.AddOrReplace(MakeAccessRoot(options));
  rules.AddOrReplace(MakeTableAccess());
  rules.AddOrReplace(MakeIndexAccess());
  if (options.tid_sort) rules.AddOrReplace(MakeTidSortAccess());
  if (options.index_and) rules.AddOrReplace(MakeAndIndexAccess());
  rules.AddOrReplace(MakeTempAccess());
  rules.AddOrReplace(MakeJoinRoot());
  rules.AddOrReplace(MakePermutedJoin());
  rules.AddOrReplace(MakeRemoteJoin());
  rules.AddOrReplace(MakeSitedJoin());
  rules.AddOrReplace(MakeJMeth(options));
  return rules;
}

void AddMergeJoinAlternative(RuleSet* rules) {
  AppendJMethAlternative(rules, MergeJoinAlternative());
}
void AddHashJoinAlternative(RuleSet* rules) {
  AppendJMethAlternative(rules, HashJoinAlternative());
}
void AddForcedProjectionAlternative(RuleSet* rules) {
  AppendJMethAlternative(rules, ForcedProjectionAlternative());
}
void AddDynamicIndexAlternative(RuleSet* rules) {
  AppendJMethAlternative(rules, DynamicIndexAlternative());
}

void AddBloomJoinAlternative(RuleSet* rules) {
  AppendJMethAlternative(rules, BloomJoinAlternative());
}

void AddTidSortAlternative(RuleSet* rules) {
  rules->AddOrReplace(MakeTidSortAccess());
  AppendAlternative(rules, "AccessRoot", TidSortRootAlternative());
}

void AddIndexAndAlternative(RuleSet* rules) {
  rules->AddOrReplace(MakeAndIndexAccess());
  AppendAlternative(rules, "AccessRoot", IndexAndRootAlternative());
}

}  // namespace starburst
