#include "star/dsl_lexer.h"

#include <cctype>
#include <set>

namespace starburst::dsl {

namespace {
const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "star", "exclusive", "where", "alt", "if",
      "end",  "forall",    "in",    "do",  "true",
      "false"};
  return kKeywords;
}
}  // namespace

Result<std::vector<Tok>> Tokenize(const std::string& input) {
  std::vector<Tok> out;
  size_t i = 0;
  int line = 1;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Tok tok;
    tok.line = line;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      std::string word = input.substr(i, j - i);
      tok.kind = Keywords().count(word) ? TokKind::kKeyword : TokKind::kIdent;
      tok.text = std::move(word);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      tok.kind = TokKind::kNumber;
      tok.text = input.substr(i, j - i);
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      std::string content;
      while (j < n && input[j] != '\'') content += input[j++];
      if (j >= n) {
        return Status::ParseError("unterminated string on line " +
                                  std::to_string(line));
      }
      tok.kind = TokKind::kString;
      tok.text = std::move(content);
      i = j + 1;
    } else {
      tok.kind = TokKind::kSymbol;
      if (c == '>' && i + 1 < n && input[i + 1] == '=') {
        tok.text = ">=";
        i += 2;
      } else if (std::string("()[]{},;:=-").find(c) != std::string::npos) {
        tok.text = std::string(1, c);
        ++i;
      } else {
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' on line " + std::to_string(line));
      }
    }
    out.push_back(std::move(tok));
  }
  Tok end;
  end.kind = TokKind::kEnd;
  end.line = line;
  out.push_back(end);
  return out;
}

}  // namespace starburst::dsl
