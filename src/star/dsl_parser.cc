#include "star/dsl_parser.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "plan/operator.h"
#include "properties/property_functions.h"
#include "star/dsl_lexer.h"

namespace starburst {

namespace {

using dsl::Tok;
using dsl::TokKind;

enum class NameClass { kOperator, kStar, kFunctionOrVar };

NameClass ClassifyName(const std::string& name) {
  bool any_lower = false, any_upper = false;
  for (char c : name) {
    if (std::islower(static_cast<unsigned char>(c))) any_lower = true;
    if (std::isupper(static_cast<unsigned char>(c))) any_upper = true;
  }
  if (any_upper && !any_lower) return NameClass::kOperator;
  if (std::isupper(static_cast<unsigned char>(name[0]))) {
    return NameClass::kStar;
  }
  return NameClass::kFunctionOrVar;
}

class Parser {
 public:
  explicit Parser(std::vector<Tok> toks) : toks_(std::move(toks)) {}

  Result<std::vector<Star>> ParseFile() {
    std::vector<Star> out;
    while (!Peek().IsKeyword("end") && Peek().kind != TokKind::kEnd) {
      auto star = ParseStar();
      if (!star.ok()) return star.status();
      out.push_back(std::move(star).value());
    }
    if (Peek().kind != TokKind::kEnd) {
      return Err("unexpected trailing input");
    }
    return out;
  }

 private:
  const Tok& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  Tok Next() { return toks_[pos_++]; }

  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " (line " +
                              std::to_string(Peek().line) + ", near '" +
                              Peek().text + "')");
  }

  Status ExpectSymbol(const char* sym) {
    if (!Peek().IsSymbol(sym)) {
      return Err(std::string("expected '") + sym + "'");
    }
    Next();
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokKind::kIdent) return Err("expected identifier");
    return Next().text;
  }

  Result<Star> ParseStar() {
    if (!Peek().IsKeyword("star")) return Err("expected 'star'");
    Star star;
    star.line = Peek().line;
    Next();
    if (Peek().IsKeyword("exclusive")) {
      Next();
      star.exclusive = true;
    }
    auto name = ExpectIdent();
    if (!name.ok()) return name.status();
    star.name = std::move(name).value();
    if (ClassifyName(star.name) != NameClass::kStar) {
      return Err("STAR names must be MixedCase: '" + star.name + "'");
    }
    STARBURST_RETURN_NOT_OK(ExpectSymbol("("));
    while (!Peek().IsSymbol(")")) {
      auto param = ExpectIdent();
      if (!param.ok()) return param.status();
      star.params.push_back(std::move(param).value());
      if (Peek().IsSymbol(",")) Next();
    }
    Next();  // ')'

    while (Peek().IsKeyword("where")) {
      auto let = ParseWhere();
      if (!let.ok()) return let.status();
      star.lets.push_back(std::move(let).value());
    }
    while (Peek().IsKeyword("alt")) {
      auto alt = ParseAlt();
      if (!alt.ok()) return alt.status();
      star.alternatives.push_back(std::move(alt).value());
    }
    if (star.alternatives.empty()) {
      return Err("STAR '" + star.name + "' has no alternatives");
    }
    if (!Peek().IsKeyword("end")) return Err("expected 'end'");
    Next();
    return star;
  }

  Result<std::pair<std::string, RuleExprPtr>> ParseWhere() {
    Next();  // 'where'
    auto name = ExpectIdent();
    if (!name.ok()) return name.status();
    STARBURST_RETURN_NOT_OK(ExpectSymbol("="));
    auto expr = ParseExpr();
    if (!expr.ok()) return expr.status();
    return std::make_pair(std::move(name).value(), std::move(expr).value());
  }

  Result<Alternative> ParseAlt() {
    Next();  // 'alt'
    Alternative alt;
    if (Peek().kind != TokKind::kString) return Err("expected alt label");
    alt.label = Next().text;
    while (Peek().IsKeyword("where")) {
      auto let = ParseWhere();
      if (!let.ok()) return let.status();
      alt.lets.push_back(std::move(let).value());
    }
    if (Peek().IsKeyword("if")) {
      Next();
      auto cond = ParseExpr();
      if (!cond.ok()) return cond.status();
      alt.condition = std::move(cond).value();
    }
    STARBURST_RETURN_NOT_OK(ExpectSymbol(":"));
    auto body = ParseExpr();
    if (!body.ok()) return body.status();
    alt.body = std::move(body).value();
    return alt;
  }

  Result<RuleExprPtr> ParseExpr() {
    // Recursion depth tracks input nesting; without a cap, a deep chain of
    // '('s overflows the stack before any syntax error is reached.
    if (depth_ >= kMaxExprDepth) {
      return Err("expression nesting exceeds " +
                 std::to_string(kMaxExprDepth) + " levels");
    }
    ++depth_;
    auto expr = ParseExprNoGuard();
    --depth_;
    return expr;
  }

  Result<RuleExprPtr> ParseExprNoGuard() {
    if (Peek().IsKeyword("forall")) return ParseForall();
    auto base = ParsePrimary();
    if (!base.ok()) return base;
    // Required-property suffixes: T[order = ..., temp, ...]
    RuleExprPtr expr = std::move(base).value();
    while (Peek().IsSymbol("[")) {
      Next();
      while (true) {
        auto tagged = ParseRequirement(expr);
        if (!tagged.ok()) return tagged;
        expr = std::move(tagged).value();
        if (Peek().IsSymbol(",")) {
          Next();
          continue;
        }
        break;
      }
      STARBURST_RETURN_NOT_OK(ExpectSymbol("]"));
    }
    return expr;
  }

  Result<RuleExprPtr> ParseRequirement(RuleExprPtr stream) {
    auto name = ExpectIdent();
    if (!name.ok()) return name.status();
    const std::string& req = name.value();
    if (req == "temp") {
      return RuleExpr::Require(std::move(stream), ReqKind::kTemp,
                               RuleExpr::Const(RuleValue(true)));
    }
    if (req == "order") {
      STARBURST_RETURN_NOT_OK(ExpectSymbol("="));
      auto value = ParseExpr();
      if (!value.ok()) return value;
      return RuleExpr::Require(std::move(stream), ReqKind::kOrder,
                               std::move(value).value());
    }
    if (req == "site") {
      STARBURST_RETURN_NOT_OK(ExpectSymbol("="));
      auto value = ParseExpr();
      if (!value.ok()) return value;
      return RuleExpr::Require(std::move(stream), ReqKind::kSite,
                               std::move(value).value());
    }
    if (req == "paths") {
      STARBURST_RETURN_NOT_OK(ExpectSymbol(">="));
      auto value = ParseExpr();
      if (!value.ok()) return value;
      return RuleExpr::Require(std::move(stream), ReqKind::kPath,
                               std::move(value).value());
    }
    return Err("unknown required property '" + req +
               "' (order, site, temp, paths)");
  }

  Result<RuleExprPtr> ParseForall() {
    Next();  // 'forall'
    auto var = ExpectIdent();
    if (!var.ok()) return var.status();
    if (!Peek().IsKeyword("in")) return Err("expected 'in'");
    Next();
    auto domain = ParseExpr();
    if (!domain.ok()) return domain;
    if (!Peek().IsKeyword("do")) return Err("expected 'do'");
    Next();
    auto body = ParseExpr();
    if (!body.ok()) return body;
    return RuleExpr::ForEach(std::move(var).value(),
                             std::move(domain).value(),
                             std::move(body).value());
  }

  Result<RuleExprPtr> ParsePrimary() {
    const Tok& t = Peek();
    switch (t.kind) {
      case TokKind::kNumber:
        return RuleExpr::Const(
            RuleValue(static_cast<int64_t>(std::strtoll(
                Next().text.c_str(), nullptr, 10))));
      case TokKind::kString:
        return RuleExpr::Const(RuleValue(Next().text));
      case TokKind::kKeyword:
        if (t.text == "true" || t.text == "false") {
          return RuleExpr::Const(RuleValue(Next().text == "true"));
        }
        return Err("unexpected keyword '" + t.text + "'");
      case TokKind::kSymbol:
        if (t.IsSymbol("-")) {
          Next();
          if (Peek().kind != TokKind::kNumber) {
            return Err("expected number after '-'");
          }
          return RuleExpr::Const(
              RuleValue(-static_cast<int64_t>(std::strtoll(
                  Next().text.c_str(), nullptr, 10))));
        }
        if (t.IsSymbol("{")) {
          Next();
          STARBURST_RETURN_NOT_OK(ExpectSymbol("}"));
          return RuleExpr::Const(RuleValue(PredSet{}));  // φ
        }
        if (t.IsSymbol("(")) {
          Next();
          auto inner = ParseExpr();
          if (!inner.ok()) return inner;
          STARBURST_RETURN_NOT_OK(ExpectSymbol(")"));
          return inner;
        }
        return Err("unexpected symbol '" + t.text + "'");
      case TokKind::kIdent:
        return ParseIdentExpr();
      case TokKind::kEnd:
        return Err("unexpected end of input");
    }
    return Err("unexpected token");
  }

  Result<RuleExprPtr> ParseIdentExpr() {
    const int line = Peek().line;
    std::string name = Next().text;
    // Flavor suffix: NAME:flavor (flavor may contain '-', e.g. temp-index).
    std::string flavor;
    if (Peek().IsSymbol(":") && Peek(1).kind == TokKind::kIdent) {
      Next();
      flavor = Next().text;
      while (Peek().IsSymbol("-") && Peek(1).kind == TokKind::kIdent) {
        Next();
        flavor += "-" + Next().text;
      }
    }
    if (!Peek().IsSymbol("(")) {
      if (!flavor.empty()) return Err("flavor on a non-call");
      return RuleExpr::Param(std::move(name));  // bare variable reference
    }
    Next();  // '('

    if (name == "Glue") {
      auto stream = ParseExpr();
      if (!stream.ok()) return stream;
      STARBURST_RETURN_NOT_OK(ExpectSymbol(","));
      auto preds = ParseExpr();
      if (!preds.ok()) return preds;
      STARBURST_RETURN_NOT_OK(ExpectSymbol(")"));
      return RuleExpr::Glue(std::move(stream).value(),
                            std::move(preds).value());
    }

    NameClass cls = ClassifyName(name);
    std::vector<RuleExprPtr> positional;
    std::vector<std::pair<std::string, RuleExprPtr>> named;
    bool in_named = false;
    while (!Peek().IsSymbol(")")) {
      if (Peek().IsSymbol(";")) {
        Next();
        in_named = true;
        continue;
      }
      if (in_named) {
        auto arg_name = ExpectIdent();
        if (!arg_name.ok()) return arg_name.status();
        STARBURST_RETURN_NOT_OK(ExpectSymbol("="));
        auto value = ParseExpr();
        if (!value.ok()) return value;
        named.emplace_back(std::move(arg_name).value(),
                           std::move(value).value());
      } else {
        auto value = ParseExpr();
        if (!value.ok()) return value;
        positional.push_back(std::move(value).value());
      }
      if (Peek().IsSymbol(",")) Next();
    }
    Next();  // ')'

    switch (cls) {
      case NameClass::kOperator:
        return RuleExpr::OpRef(std::move(name), std::move(flavor),
                               std::move(positional), std::move(named), line);
      case NameClass::kStar:
        if (!named.empty()) {
          return Err("STAR references take positional arguments only");
        }
        if (!flavor.empty()) return Err("STAR references have no flavor");
        return RuleExpr::StarRef(std::move(name), std::move(positional), line);
      case NameClass::kFunctionOrVar:
        if (!named.empty()) {
          return Err("function calls take positional arguments only");
        }
        if (!flavor.empty()) return Err("function calls have no flavor");
        return RuleExpr::Call(std::move(name), std::move(positional), line);
    }
    return Err("unreachable");
  }

  static constexpr int kMaxExprDepth = 200;

  std::vector<Tok> toks_;
  size_t pos_ = 0;
  int depth_ = 0;
};

std::string AtLine(int line) {
  return line > 0 ? " (line " + std::to_string(line) + ")" : "";
}

/// Recursively checks every STAR and LOLEPOP reference in `expr`.
/// `arities` holds the parameter counts of every resolvable STAR (the batch
/// being loaded shadowing the already-installed rule set, matching
/// AddOrReplace semantics); `op_names` the registered LOLEPOPs.
Status ValidateExpr(const Star& star, const RuleExpr& expr,
                    const std::map<std::string, size_t>& arities,
                    const std::set<std::string>& op_names) {
  switch (expr.kind()) {
    case RuleExprKind::kStarRef: {
      auto it = arities.find(expr.name());
      if (it == arities.end()) {
        return Status::InvalidArgument(
            "rule validation: STAR '" + star.name + "'" + AtLine(star.line) +
            " references undefined STAR '" + expr.name() + "'" +
            AtLine(expr.line()));
      }
      if (expr.args().size() != it->second) {
        return Status::InvalidArgument(
            "rule validation: STAR '" + star.name + "'" + AtLine(star.line) +
            " references '" + expr.name() + "' with " +
            std::to_string(expr.args().size()) + " argument(s)" +
            AtLine(expr.line()) + ", but it takes " +
            std::to_string(it->second));
      }
      break;
    }
    case RuleExprKind::kOpRef:
      if (op_names.count(expr.name()) == 0) {
        return Status::InvalidArgument(
            "rule validation: STAR '" + star.name + "'" + AtLine(star.line) +
            " references unregistered LOLEPOP '" + expr.name() + "'" +
            AtLine(expr.line()) +
            "; register it (OperatorRegistry) before loading the rule");
      }
      break;
    default:
      break;
  }
  for (const RuleExprPtr& a : expr.args()) {
    if (a != nullptr) {
      STARBURST_RETURN_NOT_OK(ValidateExpr(star, *a, arities, op_names));
    }
  }
  for (const auto& [arg_name, a] : expr.named_args()) {
    if (a != nullptr) {
      STARBURST_RETURN_NOT_OK(ValidateExpr(star, *a, arities, op_names));
    }
  }
  return Status::OK();
}

Status ValidateRules(const std::vector<Star>& batch, const RuleSet* existing,
                     const OperatorRegistry* operators) {
  // Validating LOLEPOP references against the builtin registry is the right
  // default: rule text referencing a custom operator should be loaded with
  // the registry the operator was registered in.
  static const OperatorRegistry* builtin = [] {
    auto* r = new OperatorRegistry();
    Status st = RegisterBuiltinOperators(r);
    (void)st;  // a fresh registry cannot hold duplicates
    return r;
  }();
  const OperatorRegistry* ops = operators != nullptr ? operators : builtin;
  std::set<std::string> op_names;
  for (const std::string& name : ops->Names()) op_names.insert(name);

  // Duplicate definitions in one text are almost always an editing mistake
  // (a stale copy that would silently be replaced by the later one).
  std::map<std::string, int> batch_lines;
  for (const Star& star : batch) {
    auto [it, inserted] = batch_lines.emplace(star.name, star.line);
    if (!inserted) {
      return Status::InvalidArgument(
          "rule validation: STAR '" + star.name +
          "' is defined twice in one rule text" + AtLine(it->second) +
          AtLine(star.line));
    }
  }

  // STAR references resolve against the union of the batch and the already
  // installed rules, the batch shadowing (AddOrReplace semantics).
  std::map<std::string, size_t> arities;
  if (existing != nullptr) {
    for (const std::string& name : existing->Names()) {
      auto found = existing->Find(name);
      if (found.ok()) arities[name] = found.value()->params.size();
    }
  }
  for (const Star& star : batch) arities[star.name] = star.params.size();

  for (const Star& star : batch) {
    for (const auto& [let_name, let_expr] : star.lets) {
      STARBURST_RETURN_NOT_OK(
          ValidateExpr(star, *let_expr, arities, op_names));
    }
    for (const Alternative& alt : star.alternatives) {
      if (alt.condition != nullptr) {
        STARBURST_RETURN_NOT_OK(
            ValidateExpr(star, *alt.condition, arities, op_names));
      }
      for (const auto& [let_name, let_expr] : alt.lets) {
        STARBURST_RETURN_NOT_OK(
            ValidateExpr(star, *let_expr, arities, op_names));
      }
      STARBURST_RETURN_NOT_OK(
          ValidateExpr(star, *alt.body, arities, op_names));
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<Star>> ParseRules(const std::string& text) {
  auto toks = dsl::Tokenize(text);
  if (!toks.ok()) return toks.status();
  Parser parser(std::move(toks).value());
  return parser.ParseFile();
}

Status LoadRules(RuleSet* rules, const std::string& text,
                 const OperatorRegistry* operators) {
  auto parsed = ParseRules(text);
  if (!parsed.ok()) return parsed.status();
  STARBURST_RETURN_NOT_OK(ValidateRules(parsed.value(), rules, operators));
  for (Star& star : parsed.value()) {
    rules->AddOrReplace(std::move(star));
  }
  return Status::OK();
}

Status LoadRulesFromFile(RuleSet* rules, const std::string& path,
                         const OperatorRegistry* operators) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open rule file '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return LoadRules(rules, buf.str(), operators);
}

}  // namespace starburst
