#include "star/rule.h"

#include "common/strings.h"
#include "query/query.h"

namespace starburst {

namespace {
std::string ColsToString(const std::vector<ColumnRef>& cols,
                         const Query* query) {
  return "(" + StrJoinMapped(cols, ",", [query](ColumnRef c) {
           return query != nullptr ? query->ColumnName(c)
                                   : "q" + std::to_string(c.quantifier) +
                                         ".c" + std::to_string(c.column);
         }) +
         ")";
}
}  // namespace

void Requirements::Merge(const Requirements& other) {
  if (other.order.has_value()) order = other.order;
  if (other.site.has_value()) site = other.site;
  temp = temp || other.temp;
  if (other.path.has_value()) path = other.path;
}

std::string Requirements::ToString(const Query* query) const {
  std::vector<std::string> parts;
  if (order.has_value()) {
    parts.push_back("order=" + ColsToString(*order, query));
  }
  if (site.has_value()) {
    parts.push_back("site=" + (query != nullptr
                                   ? query->catalog().site_name(*site)
                                   : std::to_string(*site)));
  }
  if (temp) parts.push_back("temp");
  if (path.has_value()) {
    parts.push_back("paths>=" + ColsToString(*path, query));
  }
  if (parts.empty()) return "";
  return "[" + StrJoin(parts, " ") + "]";
}

std::string StreamSpec::ToString(const Query* query) const {
  std::string out = "stream" + tables.ToString();
  if (!preds.empty()) out += "|preds" + preds.ToString();
  out += required.ToString(query);
  return out;
}

std::string RuleValue::ToString(const Query* query) const {
  struct Visitor {
    const Query* query;
    std::string operator()(std::monostate) const { return "nil"; }
    std::string operator()(bool b) const { return b ? "true" : "false"; }
    std::string operator()(int64_t i) const { return std::to_string(i); }
    std::string operator()(double d) const { return FormatDouble(d); }
    std::string operator()(const std::string& s) const {
      return "'" + s + "'";
    }
    std::string operator()(const QuantifierSet& s) const {
      return "T" + s.ToString();
    }
    std::string operator()(const PredSet& s) const {
      return "P" + s.ToString();
    }
    std::string operator()(const ColumnSet& s) const {
      return "{" + StrJoinMapped(s, ",", [this](ColumnRef c) {
               return query != nullptr ? query->ColumnName(c)
                                       : std::to_string(c.quantifier) + "." +
                                             std::to_string(c.column);
             }) +
             "}";
    }
    std::string operator()(const SortOrder& o) const {
      return ColsToString(o, query);
    }
    std::string operator()(const ColumnRef& c) const {
      return query != nullptr ? query->ColumnName(c)
                              : std::to_string(c.quantifier) + "." +
                                    std::to_string(c.column);
    }
    std::string operator()(const StreamSpec& s) const {
      return s.ToString(query);
    }
    std::string operator()(const SAP& sap) const {
      return "SAP<" + std::to_string(sap.size()) + ">";
    }
    std::string operator()(const RuleList& l) const {
      return "[" + StrJoinMapped(l, ",", [this](const RuleValue& v) {
               return v.ToString(query);
             }) +
             "]";
    }
  };
  return std::visit(Visitor{query}, v_);
}

RuleExprPtr RuleExpr::Param(std::string name) {
  auto e = std::shared_ptr<RuleExpr>(new RuleExpr());
  e->kind_ = RuleExprKind::kParam;
  e->name_ = std::move(name);
  return e;
}

RuleExprPtr RuleExpr::Const(RuleValue value) {
  auto e = std::shared_ptr<RuleExpr>(new RuleExpr());
  e->kind_ = RuleExprKind::kConst;
  e->value_ = std::move(value);
  return e;
}

RuleExprPtr RuleExpr::Call(std::string fn, std::vector<RuleExprPtr> args,
                           int line) {
  auto e = std::shared_ptr<RuleExpr>(new RuleExpr());
  e->kind_ = RuleExprKind::kCall;
  e->name_ = std::move(fn);
  e->args_ = std::move(args);
  e->line_ = line;
  return e;
}

RuleExprPtr RuleExpr::OpRef(
    std::string op, std::string flavor, std::vector<RuleExprPtr> inputs,
    std::vector<std::pair<std::string, RuleExprPtr>> args, int line) {
  auto e = std::shared_ptr<RuleExpr>(new RuleExpr());
  e->kind_ = RuleExprKind::kOpRef;
  e->name_ = std::move(op);
  e->flavor_ = std::move(flavor);
  e->args_ = std::move(inputs);
  e->named_args_ = std::move(args);
  e->line_ = line;
  return e;
}

RuleExprPtr RuleExpr::StarRef(std::string star,
                              std::vector<RuleExprPtr> args, int line) {
  auto e = std::shared_ptr<RuleExpr>(new RuleExpr());
  e->kind_ = RuleExprKind::kStarRef;
  e->name_ = std::move(star);
  e->args_ = std::move(args);
  e->line_ = line;
  return e;
}

RuleExprPtr RuleExpr::Glue(RuleExprPtr stream, RuleExprPtr preds) {
  auto e = std::shared_ptr<RuleExpr>(new RuleExpr());
  e->kind_ = RuleExprKind::kGlue;
  e->args_ = {std::move(stream), std::move(preds)};
  return e;
}

RuleExprPtr RuleExpr::ForEach(std::string var, RuleExprPtr domain,
                              RuleExprPtr body) {
  auto e = std::shared_ptr<RuleExpr>(new RuleExpr());
  e->kind_ = RuleExprKind::kForEach;
  e->name_ = std::move(var);
  e->args_ = {std::move(domain), std::move(body)};
  return e;
}

RuleExprPtr RuleExpr::Require(RuleExprPtr stream, ReqKind req,
                              RuleExprPtr value) {
  auto e = std::shared_ptr<RuleExpr>(new RuleExpr());
  e->kind_ = RuleExprKind::kRequire;
  e->req_kind_ = req;
  e->args_ = {std::move(stream), std::move(value)};
  return e;
}

void RuleSet::AddOrReplace(Star star) { stars_[star.name] = std::move(star); }

Result<const Star*> RuleSet::Find(const std::string& name) const {
  auto it = stars_.find(name);
  if (it == stars_.end()) {
    return Status::NotFound("no STAR named '" + name + "'");
  }
  return &it->second;
}

bool RuleSet::Remove(const std::string& name) {
  return stars_.erase(name) > 0;
}

std::vector<std::string> RuleSet::Names() const {
  std::vector<std::string> out;
  out.reserve(stars_.size());
  for (const auto& [name, star] : stars_) out.push_back(name);
  return out;
}

}  // namespace starburst
