#include "star/engine.h"

#include "common/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/governor.h"
#include "query/query.h"
#include "star/memo.h"

namespace starburst {

namespace {
/// Balances depth_ on every exit path of EvalStarRef — a leaked increment
/// would make later EvalStar calls hit the recursion guard spuriously.
class DepthGuard {
 public:
  explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
  ~DepthGuard() { --*depth_; }
  DepthGuard(const DepthGuard&) = delete;
  DepthGuard& operator=(const DepthGuard&) = delete;

 private:
  int* depth_;
};
}  // namespace

std::string EngineMetrics::ToString() const {
  return "{star_refs=" + std::to_string(star_refs) +
         " alts_considered=" + std::to_string(alternatives_considered) +
         " alts_taken=" + std::to_string(alternatives_taken) +
         " conditions=" + std::to_string(conditions_evaluated) +
         " op_refs=" + std::to_string(op_refs) +
         " plans_built=" + std::to_string(plans_built) +
         " infeasible=" + std::to_string(infeasible_combinations) +
         " glue_calls=" + std::to_string(glue_calls) +
         " foreach=" + std::to_string(foreach_expansions) +
         " memo_hits=" + std::to_string(memo_hits) +
         " memo_misses=" + std::to_string(memo_misses) +
         " memo_bytes=" + std::to_string(memo_bytes) + "}";
}

void EngineMetrics::Publish(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->AddCounter("star.refs", star_refs);
  registry->AddCounter("star.alternatives_considered",
                       alternatives_considered);
  registry->AddCounter("star.alternatives_taken", alternatives_taken);
  registry->AddCounter("star.conditions_evaluated", conditions_evaluated);
  registry->AddCounter("star.op_refs", op_refs);
  registry->AddCounter("star.plans_built", plans_built);
  registry->AddCounter("star.infeasible_combinations",
                       infeasible_combinations);
  registry->AddCounter("star.glue_calls", glue_calls);
  registry->AddCounter("star.foreach_expansions", foreach_expansions);
  registry->AddCounter("engine.memo_hits", memo_hits);
  registry->AddCounter("engine.memo_misses", memo_misses);
  registry->AddCounter("engine.memo_bytes", memo_bytes);
}

void EngineMetrics::MergeFrom(const EngineMetrics& other) {
  star_refs += other.star_refs;
  alternatives_considered += other.alternatives_considered;
  alternatives_taken += other.alternatives_taken;
  conditions_evaluated += other.conditions_evaluated;
  op_refs += other.op_refs;
  plans_built += other.plans_built;
  infeasible_combinations += other.infeasible_combinations;
  glue_calls += other.glue_calls;
  foreach_expansions += other.foreach_expansions;
  memo_hits += other.memo_hits;
  memo_misses += other.memo_misses;
  memo_bytes += other.memo_bytes;
}

const RuleValue* StarEngine::Env::Lookup(const std::string& name) const {
  auto it = vars_.find(name);
  if (it != vars_.end()) return &it->second;
  return parent_ != nullptr ? parent_->Lookup(name) : nullptr;
}

StarEngine::StarEngine(const PlanFactory* factory, const RuleSet* rules,
                       const FunctionRegistry* functions,
                       EngineOptions options)
    : factory_(factory),
      rules_(rules),
      functions_(functions),
      faults_(FaultInjector::Global()),
      options_(options) {}

const Query& StarEngine::query() const { return factory_->query(); }

Result<SAP> StarEngine::ToSAP(RuleValue value) const {
  if (const SAP* sap = value.get_if<SAP>()) return *sap;
  if (value.is<std::monostate>()) return SAP{};
  if (value.is<StreamSpec>()) {
    return Status::InvalidArgument(
        "a STAR body produced an unresolved stream; reference Glue to turn "
        "it into plans");
  }
  return Status::InvalidArgument("a STAR body must produce plans, got " +
                                 value.ToString());
}

Result<SAP> StarEngine::EvalStar(const std::string& name,
                                 const std::vector<RuleValue>& args) {
  auto v = EvalStarRef(name, args);
  if (!v.ok()) return v.status();
  return ToSAP(std::move(v).value());
}

Result<RuleValue> StarEngine::EvalStarRef(const std::string& name,
                                          const std::vector<RuleValue>& args) {
  // STAR expansion is the engine's natural re-entry point: checking here
  // bounds the work between governor observations to one alternative body.
  if (governor_ != nullptr) {
    STARBURST_RETURN_NOT_OK(governor_->Check());
  }
  STARBURST_RETURN_NOT_OK(faults_->Check(faultsite::kEngineExpand));
  auto star_r = rules_->Find(name);
  if (!star_r.ok()) return star_r.status();
  const Star& star = *star_r.value();
  if (args.size() != star.params.size()) {
    return Status::InvalidArgument(
        "STAR " + name + " takes " + std::to_string(star.params.size()) +
        " argument(s), got " + std::to_string(args.size()));
  }
  if (depth_ >= options_.max_depth) {
    return Status::Internal("STAR recursion limit exceeded at '" + name +
                            "' (cyclic rule set?)");
  }
  // Shared-memo consult: STARs are pure functions from (rule, arguments) to
  // a SAP, so a prior expansion — by this engine or any rank-parallel peer —
  // can be substituted wholesale.
  std::string memo_key;
  if (memo_ != nullptr) {
    memo_key = CanonicalStarKey(name, args);
    if (std::optional<SAP> cached = memo_->Lookup(memo_key)) {
      ++metrics_.star_refs;
      ++metrics_.memo_hits;
      TraceSpan hit_span(tracer_, TraceKind::kStar, name);
      if (hit_span.active()) {
        hit_span.set_detail("memo hit, SAP size " +
                            std::to_string(cached->size()));
      }
      return RuleValue(*std::move(cached));
    }
    ++metrics_.memo_misses;
  }
  DepthGuard depth_guard(&depth_);
  ++metrics_.star_refs;
  TraceSpan star_span(tracer_, TraceKind::kStar, name);

  Env env;
  for (size_t i = 0; i < args.size(); ++i) env.Bind(star.params[i], args[i]);

  // STAR-level `where` bindings, in order (later ones may use earlier ones).
  for (const auto& [let_name, let_expr] : star.lets) {
    auto v = Eval(*let_expr, env);
    if (!v.ok()) return v.status();
    env.Bind(let_name, std::move(v).value());
  }

  SAP result;
  for (const Alternative& alt : star.alternatives) {
    ++metrics_.alternatives_considered;
    TraceSpan alt_span(tracer_, TraceKind::kAlternative, alt.label);
    Env alt_env(&env);
    for (const auto& [let_name, let_expr] : alt.lets) {
      auto v = Eval(*let_expr, alt_env);
      if (!v.ok()) return v.status();
      alt_env.Bind(let_name, std::move(v).value());
    }
    bool applicable = true;
    if (alt.condition != nullptr) {
      ++metrics_.conditions_evaluated;
      auto cond = Eval(*alt.condition, alt_env);
      if (!cond.ok()) return cond.status();
      const bool* b = cond.value().get_if<bool>();
      if (b == nullptr) {
        return Status::InvalidArgument("condition of " + name + "/" +
                                       alt.label +
                                       " did not evaluate to a boolean");
      }
      applicable = *b;
      if (alt_span.active()) {
        tracer_->Instant(TraceKind::kCondition, alt.label,
                         applicable ? "true" : "false");
      }
    }
    if (!applicable) {
      alt_span.set_detail("skipped");
      continue;
    }
    ++metrics_.alternatives_taken;
    auto body = Eval(*alt.body, alt_env);
    if (!body.ok()) return body.status();
    auto sap = ToSAP(std::move(body).value());
    if (!sap.ok()) return sap.status();
    if (alt_span.active()) {
      alt_span.set_detail(std::to_string(sap.value().size()) + " plan(s)");
    }
    result.insert(result.end(), sap.value().begin(), sap.value().end());
    if (star.exclusive) break;  // '{': first applicable definition wins
  }
  if (star_span.active()) {
    star_span.set_detail("SAP size " + std::to_string(result.size()));
  }
  // Only complete, successful expansions are memoized (every error path
  // above returns before this point), so a concurrent reader can never
  // observe a partially populated entry.
  if (memo_ != nullptr) {
    metrics_.memo_bytes += memo_->Insert(memo_key, result);
  }
  return RuleValue(std::move(result));
}

Result<RuleValue> StarEngine::EvalOpRef(const RuleExpr& expr, const Env& env) {
  ++metrics_.op_refs;
  TraceSpan op_span(tracer_, TraceKind::kOp, expr.name());
  // Evaluate the plan-valued inputs: each must be a SAP; map the LOLEPOP
  // over the cartesian product of the input SAPs (paper §2.2: STARs "are
  // mapped (in the LISP sense) onto each element of those SAPs").
  std::vector<SAP> input_saps;
  for (const RuleExprPtr& in : expr.args()) {
    auto v = Eval(*in, env);
    if (!v.ok()) return v.status();
    auto sap = ToSAP(std::move(v).value());
    if (!sap.ok()) return sap.status();
    input_saps.push_back(std::move(sap).value());
  }
  // Evaluate operator arguments once (they do not depend on which
  // alternative input plan is chosen).
  OpArgs args;
  for (const auto& [arg_name, arg_expr] : expr.named_args()) {
    auto v = Eval(*arg_expr, env);
    if (!v.ok()) return v.status();
    const RuleValue& rv = v.value();
    if (const int64_t* i = rv.get_if<int64_t>()) {
      args.Set(arg_name, *i);
    } else if (const bool* b = rv.get_if<bool>()) {
      args.Set(arg_name, *b);
    } else if (const double* d = rv.get_if<double>()) {
      args.Set(arg_name, *d);
    } else if (const std::string* s = rv.get_if<std::string>()) {
      args.Set(arg_name, *s);
    } else if (const SortOrder* o = rv.get_if<SortOrder>()) {
      args.Set(arg_name, *o);
    } else if (const ColumnSet* c = rv.get_if<ColumnSet>()) {
      args.Set(arg_name, *c);
    } else if (const PredSet* p = rv.get_if<PredSet>()) {
      args.Set(arg_name, *p);
    } else if (const QuantifierSet* t = rv.get_if<QuantifierSet>()) {
      args.Set(arg_name, *t);
    } else if (const ColumnRef* cr = rv.get_if<ColumnRef>()) {
      args.Set(arg_name, *cr);
    } else if (rv.is<std::monostate>()) {
      // omitted optional argument
    } else {
      return Status::InvalidArgument("argument '" + arg_name + "' of " +
                                     expr.name() +
                                     " has no operator-argument encoding");
    }
  }

  SAP out;
  std::vector<size_t> idx(input_saps.size(), 0);
  while (true) {
    std::vector<PlanPtr> combo;
    combo.reserve(input_saps.size());
    bool done = false;
    for (size_t i = 0; i < input_saps.size(); ++i) {
      if (input_saps[i].empty()) {
        done = true;  // an empty input SAP yields no plans at all
        break;
      }
      combo.push_back(input_saps[i][idx[i]]);
    }
    if (done) break;

    auto plan = factory_->Make(expr.name(), expr.flavor(), std::move(combo),
                               args);
    if (plan.ok()) {
      ++metrics_.plans_built;
      out.push_back(std::move(plan).value());
    } else if (plan.status().code() == StatusCode::kInvalidArgument ||
               plan.status().code() == StatusCode::kNotFound) {
      // This particular combination of alternatives is infeasible (e.g.
      // sites differ before Glue, or the index lacks a column) — skip it.
      ++metrics_.infeasible_combinations;
    } else {
      return plan.status();
    }

    // Advance the cartesian-product counter.
    if (input_saps.empty()) break;
    size_t i = 0;
    while (i < idx.size()) {
      if (++idx[i] < input_saps[i].size()) break;
      idx[i] = 0;
      ++i;
    }
    if (i == idx.size()) break;
  }
  if (op_span.active()) {
    op_span.set_detail(std::to_string(out.size()) + " plan(s)");
  }
  return RuleValue(std::move(out));
}

Result<RuleValue> StarEngine::Eval(const RuleExpr& expr, const Env& env) {
  switch (expr.kind()) {
    case RuleExprKind::kConst:
      return expr.value();
    case RuleExprKind::kParam: {
      const RuleValue* v = env.Lookup(expr.name());
      if (v == nullptr) {
        return Status::InvalidArgument("unbound rule parameter '" +
                                       expr.name() + "'");
      }
      return *v;
    }
    case RuleExprKind::kCall: {
      auto fn = functions_->Find(expr.name());
      if (!fn.ok()) return fn.status();
      std::vector<RuleValue> args;
      args.reserve(expr.args().size());
      for (const RuleExprPtr& a : expr.args()) {
        auto v = Eval(*a, env);
        if (!v.ok()) return v;
        args.push_back(std::move(v).value());
      }
      RuleFnContext ctx;
      ctx.query = &query();
      ctx.allow_composite_inner = options_.allow_composite_inner;
      ctx.allow_cartesian = options_.allow_cartesian;
      return (*fn.value())(args, ctx);
    }
    case RuleExprKind::kOpRef:
      return EvalOpRef(expr, env);
    case RuleExprKind::kStarRef: {
      std::vector<RuleValue> args;
      args.reserve(expr.args().size());
      for (const RuleExprPtr& a : expr.args()) {
        auto v = Eval(*a, env);
        if (!v.ok()) return v;
        args.push_back(std::move(v).value());
      }
      return EvalStarRef(expr.name(), args);
    }
    case RuleExprKind::kGlue: {
      if (glue_ == nullptr) {
        return Status::Internal("no Glue mechanism attached to the engine");
      }
      auto stream = Eval(*expr.args()[0], env);
      if (!stream.ok()) return stream;
      const StreamSpec* spec = stream.value().get_if<StreamSpec>();
      if (spec == nullptr) {
        return Status::InvalidArgument("Glue expects a stream argument");
      }
      auto preds = Eval(*expr.args()[1], env);
      if (!preds.ok()) return preds;
      StreamSpec resolved = *spec;
      if (const PredSet* p = preds.value().get_if<PredSet>()) {
        resolved.preds = resolved.preds.Union(*p);
      } else if (!preds.value().is<std::monostate>()) {
        return Status::InvalidArgument(
            "Glue expects a predicate-set argument");
      }
      ++metrics_.glue_calls;
      auto sap = glue_->Resolve(resolved);
      if (!sap.ok()) return sap.status();
      return RuleValue(std::move(sap).value());
    }
    case RuleExprKind::kForEach: {
      auto domain = Eval(*expr.args()[0], env);
      if (!domain.ok()) return domain;
      RuleList items;
      if (const RuleList* l = domain.value().get_if<RuleList>()) {
        items = *l;
      } else if (const PredSet* p = domain.value().get_if<PredSet>()) {
        for (int id : p->ToVector()) {
          items.push_back(RuleValue(static_cast<int64_t>(id)));
        }
      } else if (const ColumnSet* c = domain.value().get_if<ColumnSet>()) {
        for (const ColumnRef& ref : *c) items.push_back(RuleValue(ref));
      } else if (const SortOrder* o = domain.value().get_if<SortOrder>()) {
        for (const ColumnRef& ref : *o) items.push_back(RuleValue(ref));
      } else {
        return Status::InvalidArgument("forall: domain is not iterable: " +
                                       domain.value().ToString());
      }
      SAP out;
      for (RuleValue& item : items) {
        ++metrics_.foreach_expansions;
        Env inner(&env);
        inner.Bind(expr.name(), std::move(item));
        auto body = Eval(*expr.args()[1], inner);
        if (!body.ok()) return body;
        auto sap = ToSAP(std::move(body).value());
        if (!sap.ok()) return sap.status();
        out.insert(out.end(), sap.value().begin(), sap.value().end());
      }
      return RuleValue(std::move(out));
    }
    case RuleExprKind::kRequire: {
      auto stream = Eval(*expr.args()[0], env);
      if (!stream.ok()) return stream;
      const StreamSpec* spec = stream.value().get_if<StreamSpec>();
      if (spec == nullptr) {
        return Status::InvalidArgument(
            "required properties can only be attached to a stream");
      }
      StreamSpec out = *spec;
      auto value = Eval(*expr.args()[1], env);
      if (!value.ok()) return value;
      const RuleValue& rv = value.value();
      switch (expr.req_kind()) {
        case ReqKind::kOrder: {
          const SortOrder* o = rv.get_if<SortOrder>();
          if (o == nullptr) {
            return Status::InvalidArgument("[order=...] expects columns");
          }
          // An empty order requirement is vacuous (arises when the sortable
          // predicates contribute no columns for this side).
          if (!o->empty()) out.required.order = *o;
          break;
        }
        case ReqKind::kSite: {
          const int64_t* s = rv.get_if<int64_t>();
          if (s == nullptr) {
            return Status::InvalidArgument("[site=...] expects a site id");
          }
          out.required.site = static_cast<SiteId>(*s);
          break;
        }
        case ReqKind::kTemp:
          out.required.temp = true;
          break;
        case ReqKind::kPath: {
          const SortOrder* o = rv.get_if<SortOrder>();
          if (o == nullptr) {
            return Status::InvalidArgument("[paths>=...] expects columns");
          }
          if (!o->empty()) out.required.path = *o;
          break;
        }
      }
      return RuleValue(std::move(out));
    }
  }
  return Status::Internal("unknown rule expression kind");
}

}  // namespace starburst
