#ifndef STARBURST_STAR_DEFAULT_RULES_H_
#define STARBURST_STAR_DEFAULT_RULES_H_

#include "star/rule.h"

namespace starburst {

/// Which strategies the default rule base includes. Nested-loop join and the
/// single-table access STARs are always present; the rest map one-to-one to
/// the paper's sections.
struct DefaultRuleOptions {
  bool merge_join = true;         ///< §4.4 MG alternative
  bool hash_join = false;         ///< §4.5.1 HA alternative
  bool forced_projection = false; ///< §4.5.2 materialize-the-inner alternative
  bool dynamic_index = false;     ///< §4.5.3 build-an-index-on-the-fly
  /// The two access-path STARs the paper lists as "constructed, but omitted
  /// for brevity" (§4): sort TIDs from an unordered index to order the data
  /// page I/O, and AND the TID streams of two indexes on the same table.
  bool tid_sort = false;
  bool index_and = false;
  /// Distributed filtration (§4's omitted "semi-joins and Bloom-joins"):
  /// reduce a remote inner by a shipped filter of the outer's join columns
  /// before shipping it to the join site.
  bool bloomjoin = false;
};

/// Builds the paper's rule base (§4 plus the single-table access STARs of
/// [LEE 88]):
///
///   AccessRoot(T, P)     — table scan plus one plan per index
///   TableAccess(T, P)    — heap vs. B-tree flavor by storage manager type
///   IndexAccess(T, P, i) — GET(ACCESS(index i, key+TID, KP), remaining)
///   TempAccess(S, P2)    — re-ACCESS a materialized temp (§4.5.2)
///   JoinRoot(T1, T2, P)  — §4.1 permutation (composite inners gated by the
///                          session parameter)
///   PermutedJoin(...)    — §4.2 join-site alternatives
///   RemoteJoin(...)      — §4.2 [site=s] requirement
///   SitedJoin(...)       — §4.3 store-inner-as-temp condition C1
///   JMeth(...)           — §4.4/§4.5 join-method alternatives
RuleSet DefaultRuleSet(const DefaultRuleOptions& options = {});

/// Appends one strategy to an existing rule base's JMeth STAR — what a DBC
/// does to extend the optimizer (§5). Idempotent by alternative label.
void AddMergeJoinAlternative(RuleSet* rules);
void AddHashJoinAlternative(RuleSet* rules);
void AddForcedProjectionAlternative(RuleSet* rules);
void AddDynamicIndexAlternative(RuleSet* rules);
void AddBloomJoinAlternative(RuleSet* rules);

/// Appends the TID-sort / index-ANDing access strategies to AccessRoot
/// (installing their helper STARs). Idempotent by alternative label.
void AddTidSortAlternative(RuleSet* rules);
void AddIndexAndAlternative(RuleSet* rules);

}  // namespace starburst

#endif  // STARBURST_STAR_DEFAULT_RULES_H_
