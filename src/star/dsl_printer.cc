#include "star/dsl_printer.h"

#include "common/strings.h"

namespace starburst {

namespace {

Result<std::string> FormatExpr(const RuleExpr& e);

Result<std::string> FormatArgs(const std::vector<RuleExprPtr>& args,
                               const char* sep = ", ") {
  std::string out;
  bool first = true;
  for (const RuleExprPtr& a : args) {
    if (!first) out += sep;
    first = false;
    auto s = FormatExpr(*a);
    if (!s.ok()) return s;
    out += s.value();
  }
  return out;
}

Result<std::string> FormatConst(const RuleValue& v) {
  if (const bool* b = v.get_if<bool>()) return std::string(*b ? "true" : "false");
  if (const int64_t* i = v.get_if<int64_t>()) return std::to_string(*i);
  if (const std::string* s = v.get_if<std::string>()) return "'" + *s + "'";
  if (const PredSet* p = v.get_if<PredSet>()) {
    if (p->empty()) return std::string("{}");
  }
  return Status::InvalidArgument("constant has no DSL spelling: " +
                                 v.ToString());
}

const char* ReqName(ReqKind kind) {
  switch (kind) {
    case ReqKind::kOrder:
      return "order";
    case ReqKind::kSite:
      return "site";
    case ReqKind::kTemp:
      return "temp";
    case ReqKind::kPath:
      return "paths";
  }
  return "?";
}

Result<std::string> FormatExpr(const RuleExpr& e) {
  switch (e.kind()) {
    case RuleExprKind::kParam:
      return e.name();
    case RuleExprKind::kConst:
      return FormatConst(e.value());
    case RuleExprKind::kCall: {
      auto args = FormatArgs(e.args());
      if (!args.ok()) return args;
      return e.name() + "(" + args.value() + ")";
    }
    case RuleExprKind::kStarRef: {
      auto args = FormatArgs(e.args());
      if (!args.ok()) return args;
      return e.name() + "(" + args.value() + ")";
    }
    case RuleExprKind::kOpRef: {
      std::string out = e.name();
      if (!e.flavor().empty()) out += ":" + e.flavor();
      auto inputs = FormatArgs(e.args());
      if (!inputs.ok()) return inputs;
      out += "(" + inputs.value();
      if (!e.named_args().empty()) {
        out += "; ";
        bool first = true;
        for (const auto& [name, value] : e.named_args()) {
          if (!first) out += ", ";
          first = false;
          auto v = FormatExpr(*value);
          if (!v.ok()) return v;
          out += name + " = " + v.value();
        }
      }
      return out + ")";
    }
    case RuleExprKind::kGlue: {
      auto stream = FormatExpr(*e.args()[0]);
      if (!stream.ok()) return stream;
      auto preds = FormatExpr(*e.args()[1]);
      if (!preds.ok()) return preds;
      return "Glue(" + stream.value() + ", " + preds.value() + ")";
    }
    case RuleExprKind::kForEach: {
      auto domain = FormatExpr(*e.args()[0]);
      if (!domain.ok()) return domain;
      auto body = FormatExpr(*e.args()[1]);
      if (!body.ok()) return body;
      return "forall " + e.name() + " in " + domain.value() + " do " +
             body.value();
    }
    case RuleExprKind::kRequire: {
      auto base = FormatExpr(*e.args()[0]);
      if (!base.ok()) return base;
      if (e.req_kind() == ReqKind::kTemp) {
        return base.value() + "[temp]";
      }
      auto value = FormatExpr(*e.args()[1]);
      if (!value.ok()) return value;
      const char* op = e.req_kind() == ReqKind::kPath ? " >= " : " = ";
      return base.value() + "[" + ReqName(e.req_kind()) + op + value.value() +
             "]";
    }
  }
  return Status::Internal("unknown rule expression kind");
}

Result<std::string> FormatLets(
    const std::vector<std::pair<std::string, RuleExprPtr>>& lets,
    const char* indent) {
  std::string out;
  for (const auto& [name, expr] : lets) {
    auto s = FormatExpr(*expr);
    if (!s.ok()) return s;
    out += std::string(indent) + "where " + name + " = " + s.value() + "\n";
  }
  return out;
}

}  // namespace

Result<std::string> FormatStar(const Star& star) {
  std::string out = "star ";
  if (star.exclusive) out += "exclusive ";
  out += star.name + "(" + StrJoin(star.params, ", ") + ")\n";
  auto lets = FormatLets(star.lets, "  ");
  if (!lets.ok()) return lets;
  out += lets.value();
  for (const Alternative& alt : star.alternatives) {
    out += "  alt '" + alt.label + "'";
    if (!alt.lets.empty()) {
      out += "\n";
      auto alt_lets = FormatLets(alt.lets, "    ");
      if (!alt_lets.ok()) return alt_lets;
      // trim the trailing newline so the condition/colon lines up
      std::string text = alt_lets.value();
      if (!text.empty() && text.back() == '\n') text.pop_back();
      out += text;
    }
    if (alt.condition != nullptr) {
      auto cond = FormatExpr(*alt.condition);
      if (!cond.ok()) return cond.status();
      out += (alt.lets.empty() ? " " : "\n    ");
      out += "if " + cond.value();
    }
    out += ":\n    ";
    auto body = FormatExpr(*alt.body);
    if (!body.ok()) return body.status();
    out += body.value() + "\n";
  }
  out += "end\n";
  return out;
}

Result<std::string> FormatRules(const RuleSet& rules) {
  std::string out;
  for (const std::string& name : rules.Names()) {
    auto star = rules.Find(name);
    if (!star.ok()) return star.status();
    auto text = FormatStar(*star.value());
    if (!text.ok()) return text;
    out += text.value() + "\n";
  }
  return out;
}

}  // namespace starburst
