#ifndef STARBURST_STAR_MEMO_H_
#define STARBURST_STAR_MEMO_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "star/rule.h"

namespace starburst {

class MetricsRegistry;
class ResourceGovernor;

/// Canonical, order-insensitive serializations used as memo keys. Two values
/// that are semantically equal — the same quantifier/predicate bitmasks no
/// matter what order their ids were inserted in, the same requirements no
/// matter what order they were attached in — serialize identically; values
/// whose STAR expansions could differ serialize differently. Plan keys
/// deliberately exclude generated temp names (like PlanSignature), which is
/// the one axis along which equal-key expansions may vary.
std::string CanonicalPlanKey(const PlanOp& plan);
std::string CanonicalValueKey(const RuleValue& value);
std::string CanonicalStarKey(const std::string& star,
                             const std::vector<RuleValue>& args);
std::string CanonicalSpecKey(const StreamSpec& spec);

/// A read-mostly shared memo of rule-engine expansions, keyed on the
/// canonical signatures above. One instance serves one Optimize call and is
/// shared by every rank-parallel worker: STARs are pure functions from
/// (rule, arguments) to a SAP (paper §2.2), and — once augmented plans stop
/// being written back into the plan table mid-resolve — so is Glue::Resolve
/// per run, because every plan-table bucket a resolve reads is complete
/// before any worker of a later rank can reference it (the rank barrier).
///
/// Sharded like the PlanTable; inserts are first-writer-wins, so a lost race
/// costs only the duplicated expansion work, never a divergent value (debug
/// builds assert the incumbent is canonically identical).
class ExpansionMemo {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t inserts = 0;        ///< first-writer insertions kept
    int64_t insert_races = 0;   ///< insertions dropped (another writer won)
    int64_t entries = 0;        ///< entries currently held
    int64_t approx_bytes = 0;   ///< approximate memory of held entries

    double hit_rate() const {
      const int64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) / total : 0.0;
    }
    std::string ToString() const;
    /// Publishes the counters into `registry` under the `memo.` prefix.
    void Publish(MetricsRegistry* registry) const;
  };

  /// A copy of the memoized SAP for `key`, or nullopt. Thread-safe.
  std::optional<SAP> Lookup(const std::string& key);

  /// Memoizes `value` under `key` (first writer wins). Returns the bytes
  /// newly accounted, 0 when an earlier writer already holds the key.
  /// Entries are inserted whole under the shard lock — a concurrent Lookup
  /// sees either nothing or the complete SAP, never a partial one.
  int64_t Insert(const std::string& key, const SAP& value);

  /// Drops every entry and returns the byte gauge to zero (cumulative
  /// counters are kept). The degrade-to-greedy path clears the memo so the
  /// fallback never reads state whose content depended on trip timing.
  void Clear();

  /// Attach a governor: memoized bytes count against the same
  /// max_plan_table_bytes budget as the plan table (null = off). Not safe to
  /// call while inserts are in flight.
  void set_governor(ResourceGovernor* governor) { governor_ = governor; }

  int64_t entries() const { return entries_.load(std::memory_order_relaxed); }
  int64_t approx_bytes() const {
    return approx_bytes_.load(std::memory_order_relaxed);
  }

  /// A consistent snapshot of the counters.
  Stats stats() const;

 private:
  static constexpr size_t kNumShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, SAP> entries;
  };

  Shard& ShardFor(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % kNumShards];
  }

  ResourceGovernor* governor_ = nullptr;
  std::array<Shard, kNumShards> shards_;

  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> inserts_{0};
  std::atomic<int64_t> insert_races_{0};
  std::atomic<int64_t> entries_{0};
  std::atomic<int64_t> approx_bytes_{0};
};

}  // namespace starburst

#endif  // STARBURST_STAR_MEMO_H_
