#ifndef STARBURST_STAR_DSL_LEXER_H_
#define STARBURST_STAR_DSL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace starburst::dsl {

enum class TokKind {
  kIdent,    // identifiers; the parser classifies by capitalization
  kNumber,   // integer literal
  kString,   // 'quoted'
  kSymbol,   // ( ) [ ] { } , ; : = >= -
  kKeyword,  // star exclusive where alt if end forall in do true false
  kEnd,
};

struct Tok {
  TokKind kind = TokKind::kEnd;
  std::string text;
  int line = 1;

  bool IsKeyword(const char* kw) const {
    return kind == TokKind::kKeyword && text == kw;
  }
  bool IsSymbol(const char* sym) const {
    return kind == TokKind::kSymbol && text == sym;
  }
};

/// Tokenizes STAR rule text. `#` starts a comment to end of line.
Result<std::vector<Tok>> Tokenize(const std::string& input);

}  // namespace starburst::dsl

#endif  // STARBURST_STAR_DSL_LEXER_H_
