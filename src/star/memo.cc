#include "star/memo.h"

#include <cassert>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "optimizer/governor.h"
#include "optimizer/plan_table.h"
#include "plan/operator.h"

namespace starburst {

namespace {

void AppendInt(int64_t v, std::string* out) {
  out->append(std::to_string(v));
}

/// Exact (bit-pattern) encoding: the keys must distinguish doubles that
/// compare unequal even when they print identically.
void AppendDouble(double v, std::string* out) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  out->append(buf);
}

void AppendMask(uint64_t mask, std::string* out) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%llx",
                static_cast<unsigned long long>(mask));
  out->append(buf);
}

/// Length-prefixed so a string can never be confused with the surrounding
/// punctuation of the key grammar.
void AppendString(const std::string& s, std::string* out) {
  AppendInt(static_cast<int64_t>(s.size()), out);
  out->push_back(':');
  out->append(s);
}

void AppendColumn(const ColumnRef& c, std::string* out) {
  out->push_back('c');
  AppendInt(c.quantifier, out);
  out->push_back('.');
  AppendInt(c.column, out);
}

void AppendColumns(const std::vector<ColumnRef>& cols, std::string* out) {
  out->push_back('[');
  for (const ColumnRef& c : cols) {
    AppendColumn(c, out);
    out->push_back(',');
  }
  out->push_back(']');
}

void AppendPlan(const PlanOp& plan, std::string* out);

void AppendArgValue(const OpArgs::ArgValue& value, std::string* out) {
  if (std::holds_alternative<std::monostate>(value)) {
    out->push_back('_');
  } else if (const bool* b = std::get_if<bool>(&value)) {
    out->append(*b ? "b1" : "b0");
  } else if (const int64_t* i = std::get_if<int64_t>(&value)) {
    out->push_back('i');
    AppendInt(*i, out);
  } else if (const double* d = std::get_if<double>(&value)) {
    out->push_back('d');
    AppendDouble(*d, out);
  } else if (const std::string* s = std::get_if<std::string>(&value)) {
    out->push_back('s');
    AppendString(*s, out);
  } else if (const ColumnRef* c = std::get_if<ColumnRef>(&value)) {
    AppendColumn(*c, out);
  } else if (const std::vector<ColumnRef>* v =
                 std::get_if<std::vector<ColumnRef>>(&value)) {
    out->push_back('o');
    AppendColumns(*v, out);
  } else if (const ColumnSet* cs = std::get_if<ColumnSet>(&value)) {
    // std::set iterates in (quantifier, column) order — already canonical.
    out->push_back('C');
    out->push_back('{');
    for (const ColumnRef& c : *cs) {
      AppendColumn(c, out);
      out->push_back(',');
    }
    out->push_back('}');
  } else if (const PredSet* p = std::get_if<PredSet>(&value)) {
    out->push_back('p');
    AppendMask(p->mask(), out);
  } else if (const QuantifierSet* q = std::get_if<QuantifierSet>(&value)) {
    out->push_back('q');
    AppendMask(q->mask(), out);
  } else {
    out->push_back('?');
  }
}

void AppendPlan(const PlanOp& plan, std::string* out) {
  out->push_back('(');
  out->append(plan.name());
  out->push_back('/');
  out->append(plan.flavor);
  out->push_back('|');
  // OpArgs iterates its map in argument-name order, so the encoding is
  // independent of the order arguments were set. Temp names are the one
  // per-resolver artifact (workers use distinct prefixes); plans differing
  // only there are interchangeable, exactly as for PlanSignature.
  for (const auto& [name, value] : plan.args.values()) {
    if (name == arg::kTempName) continue;
    out->append(name);
    out->push_back('=');
    AppendArgValue(value, out);
    out->push_back(';');
  }
  out->push_back('<');
  for (const PlanPtr& in : plan.inputs) {
    AppendPlan(*in, out);
  }
  out->push_back('>');
  out->push_back(')');
}

void AppendRequirements(const Requirements& req, std::string* out) {
  out->append("R{");
  if (req.order.has_value()) {
    out->append("o=");
    AppendColumns(*req.order, out);
  }
  if (req.site.has_value()) {
    out->append("s=");
    AppendInt(static_cast<int64_t>(*req.site), out);
  }
  if (req.temp) out->append("t1");
  if (req.path.has_value()) {
    out->append("x=");
    AppendColumns(*req.path, out);
  }
  out->push_back('}');
}

void AppendSpec(const StreamSpec& spec, std::string* out) {
  out->append("S{q");
  AppendMask(spec.tables.mask(), out);
  out->push_back('p');
  AppendMask(spec.preds.mask(), out);
  AppendRequirements(spec.required, out);
  out->push_back('}');
}

void AppendValue(const RuleValue& value, std::string* out) {
  if (value.is<std::monostate>()) {
    out->push_back('_');
  } else if (const bool* b = value.get_if<bool>()) {
    out->append(*b ? "b1" : "b0");
  } else if (const int64_t* i = value.get_if<int64_t>()) {
    out->push_back('i');
    AppendInt(*i, out);
  } else if (const double* d = value.get_if<double>()) {
    out->push_back('d');
    AppendDouble(*d, out);
  } else if (const std::string* s = value.get_if<std::string>()) {
    out->push_back('s');
    AppendString(*s, out);
  } else if (const QuantifierSet* q = value.get_if<QuantifierSet>()) {
    out->push_back('q');
    AppendMask(q->mask(), out);
  } else if (const PredSet* p = value.get_if<PredSet>()) {
    out->push_back('p');
    AppendMask(p->mask(), out);
  } else if (const ColumnSet* cs = value.get_if<ColumnSet>()) {
    out->push_back('C');
    out->push_back('{');
    for (const ColumnRef& c : *cs) {
      AppendColumn(c, out);
      out->push_back(',');
    }
    out->push_back('}');
  } else if (const SortOrder* o = value.get_if<SortOrder>()) {
    out->push_back('o');
    AppendColumns(*o, out);
  } else if (const ColumnRef* c = value.get_if<ColumnRef>()) {
    AppendColumn(*c, out);
  } else if (const StreamSpec* spec = value.get_if<StreamSpec>()) {
    AppendSpec(*spec, out);
  } else if (const SAP* sap = value.get_if<SAP>()) {
    // SAPs are ordered collections: LOLEPOP references map over them in
    // element order, so a permuted SAP argument is a different key (and a
    // correspondingly permuted expansion).
    out->push_back('A');
    out->push_back('[');
    for (const PlanPtr& p : *sap) AppendPlan(*p, out);
    out->push_back(']');
  } else if (const RuleList* list = value.get_if<RuleList>()) {
    out->push_back('L');
    out->push_back('[');
    for (const RuleValue& v : *list) {
      AppendValue(v, out);
      out->push_back(',');
    }
    out->push_back(']');
  } else {
    out->push_back('?');
  }
}

int64_t ApproxEntryBytes(const std::string& key, const SAP& value) {
  int64_t bytes = static_cast<int64_t>(key.size()) +
                  static_cast<int64_t>(sizeof(SAP)) +
                  static_cast<int64_t>(value.size() * sizeof(PlanPtr));
  for (const PlanPtr& p : value) bytes += ApproxPlanBytes(*p);
  return bytes;
}

}  // namespace

std::string CanonicalPlanKey(const PlanOp& plan) {
  std::string out;
  AppendPlan(plan, &out);
  return out;
}

std::string CanonicalValueKey(const RuleValue& value) {
  std::string out;
  AppendValue(value, &out);
  return out;
}

std::string CanonicalStarKey(const std::string& star,
                             const std::vector<RuleValue>& args) {
  std::string out = "star|";
  out.append(star);
  out.push_back('|');
  for (const RuleValue& arg : args) {
    AppendValue(arg, &out);
    out.push_back('|');
  }
  return out;
}

std::string CanonicalSpecKey(const StreamSpec& spec) {
  std::string out;
  AppendSpec(spec, &out);
  return out;
}

std::string ExpansionMemo::Stats::ToString() const {
  return "{hits=" + std::to_string(hits) +
         " misses=" + std::to_string(misses) +
         " inserts=" + std::to_string(inserts) +
         " races=" + std::to_string(insert_races) +
         " entries=" + std::to_string(entries) +
         " bytes=" + std::to_string(approx_bytes) + "}";
}

void ExpansionMemo::Stats::Publish(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->AddCounter("memo.hits", hits);
  registry->AddCounter("memo.misses", misses);
  registry->AddCounter("memo.inserts", inserts);
  registry->AddCounter("memo.insert_races", insert_races);
  registry->SetGauge("memo.entries", static_cast<double>(entries));
  registry->SetGauge("memo.approx_bytes", static_cast<double>(approx_bytes));
}

std::optional<SAP> ExpansionMemo::Lookup(const std::string& key) {
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

int64_t ExpansionMemo::Insert(const std::string& key, const SAP& value) {
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.entries.emplace(key, value);
    if (!inserted) {
      // First writer wins. Concurrent workers can only have computed the
      // same expansion (STARs are pure per run), so the incumbent must be
      // canonically identical — a mismatch means a key that under-describes
      // its arguments.
#ifndef NDEBUG
      assert(it->second.size() == value.size() &&
             "memo value race with differing SAP size");
      for (size_t i = 0; i < value.size(); ++i) {
        assert(CanonicalPlanKey(*it->second[i]) ==
                   CanonicalPlanKey(*value[i]) &&
               "memo value race with differing plans");
      }
#endif
      insert_races_.fetch_add(1, std::memory_order_relaxed);
      return 0;
    }
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
  const int64_t bytes = ApproxEntryBytes(key, value);
  approx_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  if (governor_ != nullptr) governor_->NotePlanTableBytes(bytes);
  return bytes;
}

void ExpansionMemo::Clear() {
  int64_t dropped_entries = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    dropped_entries += static_cast<int64_t>(shard.entries.size());
    shard.entries.clear();
  }
  entries_.fetch_sub(dropped_entries, std::memory_order_relaxed);
  const int64_t bytes = approx_bytes_.exchange(0, std::memory_order_relaxed);
  if (governor_ != nullptr && bytes > 0) {
    governor_->NotePlanTableBytes(-bytes);
  }
}

ExpansionMemo::Stats ExpansionMemo::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.insert_races = insert_races_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  s.approx_bytes = approx_bytes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace starburst
