#ifndef STARBURST_STAR_DSL_PRINTER_H_
#define STARBURST_STAR_DSL_PRINTER_H_

#include <string>

#include "star/rule.h"

namespace starburst {

/// Renders a STAR (or a whole rule base) back into the rule DSL, the inverse
/// of ParseRules. Useful for inspecting a live rule base after programmatic
/// edits and for persisting it; `ParseRules(FormatRules(rules))` yields a
/// behaviorally identical rule base (tested).
///
/// Only constants that have DSL spellings can be printed: booleans,
/// integers, strings, and the empty predicate set φ. Rule bases built by
/// DefaultRuleSet and the DSL itself never contain anything else.
Result<std::string> FormatStar(const Star& star);
Result<std::string> FormatRules(const RuleSet& rules);

}  // namespace starburst

#endif  // STARBURST_STAR_DSL_PRINTER_H_
