#ifndef STARBURST_STAR_DSL_PARSER_H_
#define STARBURST_STAR_DSL_PARSER_H_

#include <string>
#include <vector>

#include "star/rule.h"

namespace starburst {

/// Parses STAR definitions from the rule DSL — the concrete form of the
/// paper's §5 "STARs ... treated as input data to a rule interpreter".
///
/// Syntax (see rules/default.star for the full default rule base):
///
///   # comment
///   star [exclusive] Name(Param, ...)
///     where V = expr            # STAR-level bindings, usable by all alts
///     alt 'label' [where V = expr]* [if expr] :
///       body-expr
///     ...
///   end
///
/// Expressions:
///   P                         parameter / where-variable reference
///   123, -1, 'text', true     literals;  {} is the empty predicate set (φ)
///   lower_case(args)          function call (FunctionRegistry)
///   MixedCase(args)           STAR reference
///   UPPER[:flavor](inputs ; name = expr, ...)   LOLEPOP reference
///   Glue(stream, preds)       Glue reference
///   forall v in domain do body                  ∀-expansion
///   stream[order = e, site = e, temp, paths >= e]  required properties
///
/// Capitalization encodes the paper's typography: LOLEPOPs are BOLD CAPS,
/// STAR names RegularMixedCase, functions lowercase.
Result<std::vector<Star>> ParseRules(const std::string& text);

/// Parses and installs (AddOrReplace) every STAR in `text`.
Status LoadRules(RuleSet* rules, const std::string& text);

/// Loads rule text from a file.
Status LoadRulesFromFile(RuleSet* rules, const std::string& path);

}  // namespace starburst

#endif  // STARBURST_STAR_DSL_PARSER_H_
