#ifndef STARBURST_STAR_DSL_PARSER_H_
#define STARBURST_STAR_DSL_PARSER_H_

#include <string>
#include <vector>

#include "star/rule.h"

namespace starburst {

class OperatorRegistry;

/// Parses STAR definitions from the rule DSL — the concrete form of the
/// paper's §5 "STARs ... treated as input data to a rule interpreter".
///
/// Syntax (see rules/default.star for the full default rule base):
///
///   # comment
///   star [exclusive] Name(Param, ...)
///     where V = expr            # STAR-level bindings, usable by all alts
///     alt 'label' [where V = expr]* [if expr] :
///       body-expr
///     ...
///   end
///
/// Expressions:
///   P                         parameter / where-variable reference
///   123, -1, 'text', true     literals;  {} is the empty predicate set (φ)
///   lower_case(args)          function call (FunctionRegistry)
///   MixedCase(args)           STAR reference
///   UPPER[:flavor](inputs ; name = expr, ...)   LOLEPOP reference
///   Glue(stream, preds)       Glue reference
///   forall v in domain do body                  ∀-expansion
///   stream[order = e, site = e, temp, paths >= e]  required properties
///
/// Capitalization encodes the paper's typography: LOLEPOPs are BOLD CAPS,
/// STAR names RegularMixedCase, functions lowercase.
Result<std::vector<Star>> ParseRules(const std::string& text);

/// Parses, validates, and installs (AddOrReplace) every STAR in `text`.
///
/// Validation catches the DBC mistakes that would otherwise surface as
/// confusing mid-optimization errors (or not at all):
///   - the same STAR defined twice in one text (almost always a stale copy);
///   - references to STARs that exist neither in `text` nor in `rules`;
///   - STAR references whose argument count differs from the definition;
///   - LOLEPOP references not present in the operator registry.
/// Each failure names the STAR and the source line. `operators` is the
/// registry to check LOLEPOP references against — pass the optimizer's own
/// registry when custom operators are in play; null uses the builtin set.
Status LoadRules(RuleSet* rules, const std::string& text,
                 const OperatorRegistry* operators = nullptr);

/// Loads rule text from a file (same validation as LoadRules).
Status LoadRulesFromFile(RuleSet* rules, const std::string& path,
                         const OperatorRegistry* operators = nullptr);

}  // namespace starburst

#endif  // STARBURST_STAR_DSL_PARSER_H_
