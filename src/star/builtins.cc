#include "star/builtins.h"

#include <algorithm>

#include "properties/property_functions.h"
#include "query/query.h"

namespace starburst {

void FunctionRegistry::Register(const std::string& name, RuleFn fn) {
  fns_[name] = std::move(fn);
}

Result<const RuleFn*> FunctionRegistry::Find(const std::string& name) const {
  auto it = fns_.find(name);
  if (it == fns_.end()) {
    return Status::NotFound("no rule function named '" + name + "'");
  }
  return &it->second;
}

std::vector<std::string> FunctionRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(fns_.size());
  for (const auto& [name, fn] : fns_) out.push_back(name);
  return out;
}

namespace {

// ---- coercion helpers ------------------------------------------------------

Result<QuantifierSet> TablesOf(const RuleValue& v) {
  if (const StreamSpec* s = v.get_if<StreamSpec>()) return s->tables;
  if (const QuantifierSet* t = v.get_if<QuantifierSet>()) return *t;
  return Status::InvalidArgument("expected a stream or table set, got " +
                                 v.ToString());
}

Result<const StreamSpec*> StreamOf(const RuleValue& v) {
  if (const StreamSpec* s = v.get_if<StreamSpec>()) return s;
  return Status::InvalidArgument("expected a stream, got " + v.ToString());
}

Result<PredSet> PredsOf(const RuleValue& v) {
  if (const PredSet* p = v.get_if<PredSet>()) return *p;
  if (v.is<std::monostate>()) return PredSet{};
  return Status::InvalidArgument("expected a predicate set, got " +
                                 v.ToString());
}

Result<int> SingleQuantifier(const RuleValue& v) {
  auto tables = TablesOf(v);
  if (!tables.ok()) return tables.status();
  if (tables.value().size() != 1) {
    return Status::InvalidArgument("expected a single-table stream, got " +
                                   tables.value().ToString());
  }
  return tables.value().First();
}

Status Arity(const std::vector<RuleValue>& args, size_t n,
             const char* name) {
  if (args.size() != n) {
    return Status::InvalidArgument(std::string(name) + " expects " +
                                   std::to_string(n) + " argument(s), got " +
                                   std::to_string(args.size()));
  }
  return Status::OK();
}

/// For an indexable-style predicate, the bare column of side `t` when the
/// other side does not reference `t`; nullopt otherwise.
std::optional<ColumnRef> ProbeColumnOf(const Predicate& p, QuantifierSet t) {
  auto side_free_of_t = [&](const ColumnSet& cols) {
    for (const ColumnRef& c : cols) {
      if (t.Contains(c.quantifier)) return false;
    }
    return true;
  };
  if (p.lhs->IsBareColumn() && t.Contains(p.lhs->column().quantifier) &&
      side_free_of_t(p.rhs_columns)) {
    return p.lhs->column();
  }
  if (p.rhs->IsBareColumn() && t.Contains(p.rhs->column().quantifier) &&
      side_free_of_t(p.lhs_columns)) {
    return p.rhs->column();
  }
  return std::nullopt;
}

// ---- set algebra -----------------------------------------------------------

Result<RuleValue> FnUnion(const std::vector<RuleValue>& args,
                          const RuleFnContext&) {
  STARBURST_RETURN_NOT_OK(Arity(args, 2, "union"));
  if (args[0].is<PredSet>() || args[1].is<PredSet>()) {
    auto a = PredsOf(args[0]);
    if (!a.ok()) return a.status();
    auto b = PredsOf(args[1]);
    if (!b.ok()) return b.status();
    return RuleValue(a.value().Union(b.value()));
  }
  if (args[0].is<ColumnSet>() && args[1].is<ColumnSet>()) {
    ColumnSet out = args[0].as<ColumnSet>();
    const ColumnSet& b = args[1].as<ColumnSet>();
    out.insert(b.begin(), b.end());
    return RuleValue(out);
  }
  if (args[0].is<QuantifierSet>() && args[1].is<QuantifierSet>()) {
    return RuleValue(args[0].as<QuantifierSet>().Union(
        args[1].as<QuantifierSet>()));
  }
  return Status::InvalidArgument("union: incompatible operand types");
}

Result<RuleValue> FnMinus(const std::vector<RuleValue>& args,
                          const RuleFnContext&) {
  STARBURST_RETURN_NOT_OK(Arity(args, 2, "minus"));
  if (args[0].is<PredSet>() || args[1].is<PredSet>()) {
    auto a = PredsOf(args[0]);
    if (!a.ok()) return a.status();
    auto b = PredsOf(args[1]);
    if (!b.ok()) return b.status();
    return RuleValue(a.value().Minus(b.value()));
  }
  if (args[0].is<ColumnSet>() && args[1].is<ColumnSet>()) {
    ColumnSet out;
    const ColumnSet& b = args[1].as<ColumnSet>();
    for (const ColumnRef& c : args[0].as<ColumnSet>()) {
      if (!b.count(c)) out.insert(c);
    }
    return RuleValue(out);
  }
  if (args[0].is<QuantifierSet>() && args[1].is<QuantifierSet>()) {
    return RuleValue(args[0].as<QuantifierSet>().Minus(
        args[1].as<QuantifierSet>()));
  }
  return Status::InvalidArgument("minus: incompatible operand types");
}

Result<RuleValue> FnIntersect(const std::vector<RuleValue>& args,
                              const RuleFnContext&) {
  STARBURST_RETURN_NOT_OK(Arity(args, 2, "intersect"));
  if (args[0].is<PredSet>() || args[1].is<PredSet>()) {
    auto a = PredsOf(args[0]);
    if (!a.ok()) return a.status();
    auto b = PredsOf(args[1]);
    if (!b.ok()) return b.status();
    return RuleValue(a.value().Intersect(b.value()));
  }
  if (args[0].is<ColumnSet>() && args[1].is<ColumnSet>()) {
    ColumnSet out;
    const ColumnSet& b = args[1].as<ColumnSet>();
    for (const ColumnRef& c : args[0].as<ColumnSet>()) {
      if (b.count(c)) out.insert(c);
    }
    return RuleValue(out);
  }
  return Status::InvalidArgument("intersect: incompatible operand types");
}

Result<RuleValue> FnEmpty(const std::vector<RuleValue>& args,
                          const RuleFnContext&) {
  STARBURST_RETURN_NOT_OK(Arity(args, 1, "empty"));
  if (const PredSet* p = args[0].get_if<PredSet>()) {
    return RuleValue(p->empty());
  }
  if (const ColumnSet* c = args[0].get_if<ColumnSet>()) {
    return RuleValue(c->empty());
  }
  if (const QuantifierSet* t = args[0].get_if<QuantifierSet>()) {
    return RuleValue(t->empty());
  }
  if (const SortOrder* o = args[0].get_if<SortOrder>()) {
    return RuleValue(o->empty());
  }
  if (const RuleList* l = args[0].get_if<RuleList>()) {
    return RuleValue(l->empty());
  }
  if (args[0].is<std::monostate>()) return RuleValue(true);
  return Status::InvalidArgument("empty: expected a set");
}

Result<RuleValue> FnNonempty(const std::vector<RuleValue>& args,
                             const RuleFnContext& ctx) {
  auto e = FnEmpty(args, ctx);
  if (!e.ok()) return e;
  return RuleValue(!e.value().as<bool>());
}

Result<RuleValue> FnSize(const std::vector<RuleValue>& args,
                         const RuleFnContext&) {
  STARBURST_RETURN_NOT_OK(Arity(args, 1, "size"));
  if (const PredSet* p = args[0].get_if<PredSet>()) {
    return RuleValue(static_cast<int64_t>(p->size()));
  }
  if (const ColumnSet* c = args[0].get_if<ColumnSet>()) {
    return RuleValue(static_cast<int64_t>(c->size()));
  }
  if (const QuantifierSet* t = args[0].get_if<QuantifierSet>()) {
    return RuleValue(static_cast<int64_t>(t->size()));
  }
  if (const RuleList* l = args[0].get_if<RuleList>()) {
    return RuleValue(static_cast<int64_t>(l->size()));
  }
  return Status::InvalidArgument("size: expected a set");
}

// ---- logic -----------------------------------------------------------------

Result<bool> AsBool(const RuleValue& v, const char* fn) {
  if (const bool* b = v.get_if<bool>()) return *b;
  return Status::InvalidArgument(std::string(fn) + ": expected a boolean");
}

Result<RuleValue> FnAnd(const std::vector<RuleValue>& args,
                        const RuleFnContext&) {
  for (const RuleValue& v : args) {
    auto b = AsBool(v, "and");
    if (!b.ok()) return b.status();
    if (!b.value()) return RuleValue(false);
  }
  return RuleValue(true);
}

Result<RuleValue> FnOr(const std::vector<RuleValue>& args,
                       const RuleFnContext&) {
  for (const RuleValue& v : args) {
    auto b = AsBool(v, "or");
    if (!b.ok()) return b.status();
    if (b.value()) return RuleValue(true);
  }
  return RuleValue(false);
}

Result<RuleValue> FnNot(const std::vector<RuleValue>& args,
                        const RuleFnContext&) {
  STARBURST_RETURN_NOT_OK(Arity(args, 1, "not"));
  auto b = AsBool(args[0], "not");
  if (!b.ok()) return b.status();
  return RuleValue(!b.value());
}

Result<RuleValue> FnEq(const std::vector<RuleValue>& args,
                       const RuleFnContext&) {
  STARBURST_RETURN_NOT_OK(Arity(args, 2, "eq"));
  if (args[0].is<int64_t>() && args[1].is<int64_t>()) {
    return RuleValue(args[0].as<int64_t>() == args[1].as<int64_t>());
  }
  if (args[0].is<std::string>() && args[1].is<std::string>()) {
    return RuleValue(args[0].as<std::string>() == args[1].as<std::string>());
  }
  if (args[0].is<bool>() && args[1].is<bool>()) {
    return RuleValue(args[0].as<bool>() == args[1].as<bool>());
  }
  return Status::InvalidArgument("eq: incompatible operand types");
}

// ---- stream tests ----------------------------------------------------------

Result<RuleValue> FnComposite(const std::vector<RuleValue>& args,
                              const RuleFnContext&) {
  STARBURST_RETURN_NOT_OK(Arity(args, 1, "composite"));
  auto t = TablesOf(args[0]);
  if (!t.ok()) return t.status();
  return RuleValue(t.value().size() > 1);
}

Result<RuleValue> FnNaturalSite(const std::vector<RuleValue>& args,
                                const RuleFnContext& ctx) {
  STARBURST_RETURN_NOT_OK(Arity(args, 1, "natural_site"));
  auto t = TablesOf(args[0]);
  if (!t.ok()) return t.status();
  int64_t site = -1;
  for (int q : t.value().ToVector()) {
    SiteId s = ctx.query->table_of(q).site;
    if (site == -1) {
      site = s;
    } else if (site != s) {
      return RuleValue(int64_t{-1});  // mixed sites
    }
  }
  return RuleValue(site);
}

Result<RuleValue> FnRequiredSite(const std::vector<RuleValue>& args,
                                 const RuleFnContext&) {
  STARBURST_RETURN_NOT_OK(Arity(args, 1, "required_site"));
  auto s = StreamOf(args[0]);
  if (!s.ok()) return s.status();
  if (!s.value()->required.site.has_value()) return RuleValue(int64_t{-1});
  return RuleValue(static_cast<int64_t>(*s.value()->required.site));
}

Result<RuleValue> FnIsLocalQuery(const std::vector<RuleValue>& args,
                                 const RuleFnContext& ctx) {
  if (!args.empty()) {
    return Status::InvalidArgument("is_local_query takes no arguments");
  }
  SiteId query_site = ctx.query->required_site().value_or(0);
  for (int q = 0; q < ctx.query->num_quantifiers(); ++q) {
    if (ctx.query->table_of(q).site != query_site) return RuleValue(false);
  }
  return RuleValue(true);
}

Result<RuleValue> FnAllowCompositeInner(const std::vector<RuleValue>&,
                                        const RuleFnContext& ctx) {
  return RuleValue(ctx.allow_composite_inner);
}

Result<RuleValue> FnAllowCartesian(const std::vector<RuleValue>&,
                                   const RuleFnContext& ctx) {
  return RuleValue(ctx.allow_cartesian);
}

// ---- predicate classification (paper §4.4-4.5) -----------------------------

template <bool (*Classify)(const Predicate&, QuantifierSet, QuantifierSet)>
Result<RuleValue> ClassifyPreds(const std::vector<RuleValue>& args,
                                const RuleFnContext& ctx, const char* name) {
  STARBURST_RETURN_NOT_OK(Arity(args, 3, name));
  auto preds = PredsOf(args[0]);
  if (!preds.ok()) return preds.status();
  auto t1 = TablesOf(args[1]);
  if (!t1.ok()) return t1.status();
  auto t2 = TablesOf(args[2]);
  if (!t2.ok()) return t2.status();
  PredSet out;
  for (int id : preds.value().ToVector()) {
    if (Classify(ctx.query->predicate(id), t1.value(), t2.value())) {
      out.Insert(id);
    }
  }
  return RuleValue(out);
}

Result<RuleValue> FnJoinPreds(const std::vector<RuleValue>& args,
                              const RuleFnContext& ctx) {
  return ClassifyPreds<IsJoinPredicate>(args, ctx, "join_preds");
}
Result<RuleValue> FnSortablePreds(const std::vector<RuleValue>& args,
                                  const RuleFnContext& ctx) {
  return ClassifyPreds<IsSortable>(args, ctx, "sortable_preds");
}
Result<RuleValue> FnHashablePreds(const std::vector<RuleValue>& args,
                                  const RuleFnContext& ctx) {
  return ClassifyPreds<IsHashable>(args, ctx, "hashable_preds");
}
Result<RuleValue> FnIndexablePreds(const std::vector<RuleValue>& args,
                                   const RuleFnContext& ctx) {
  return ClassifyPreds<IsIndexable>(args, ctx, "indexable_preds");
}

Result<RuleValue> FnInnerPreds(const std::vector<RuleValue>& args,
                               const RuleFnContext& ctx) {
  STARBURST_RETURN_NOT_OK(Arity(args, 2, "inner_preds"));
  auto preds = PredsOf(args[0]);
  if (!preds.ok()) return preds.status();
  auto t2 = TablesOf(args[1]);
  if (!t2.ok()) return t2.status();
  PredSet out;
  for (int id : preds.value().ToVector()) {
    if (IsInnerOnly(ctx.query->predicate(id), t2.value())) out.Insert(id);
  }
  return RuleValue(out);
}

// ---- column derivation -----------------------------------------------------

Result<RuleValue> FnSortCols(const std::vector<RuleValue>& args,
                             const RuleFnContext& ctx) {
  STARBURST_RETURN_NOT_OK(Arity(args, 2, "sort_cols"));
  auto preds = PredsOf(args[0]);
  if (!preds.ok()) return preds.status();
  auto t = TablesOf(args[1]);
  if (!t.ok()) return t.status();
  SortOrder out;
  for (int id : preds.value().ToVector()) {
    const Predicate& p = ctx.query->predicate(id);
    if (!p.lhs->IsBareColumn() || !p.rhs->IsBareColumn()) continue;
    ColumnRef c = SortColumnFor(p, t.value());
    if (!t.value().Contains(c.quantifier)) continue;
    if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
  }
  return RuleValue(out);
}

Result<RuleValue> FnIndexCols(const std::vector<RuleValue>& args,
                              const RuleFnContext& ctx) {
  STARBURST_RETURN_NOT_OK(Arity(args, 3, "index_cols"));
  auto ip = PredsOf(args[0]);
  if (!ip.ok()) return ip.status();
  auto xp = PredsOf(args[1]);
  if (!xp.ok()) return xp.status();
  auto t = TablesOf(args[2]);
  if (!t.ok()) return t.status();
  // '=' predicates first (paper §4.5.3).
  SortOrder out;
  PredSet all = ip.value().Union(xp.value());
  auto add_matching = [&](bool want_eq) {
    for (int id : all.ToVector()) {
      const Predicate& p = ctx.query->predicate(id);
      if ((p.op == CompareOp::kEq) != want_eq) continue;
      std::optional<ColumnRef> c = ProbeColumnOf(p, t.value());
      if (!c.has_value()) continue;
      if (std::find(out.begin(), out.end(), *c) == out.end()) {
        out.push_back(*c);
      }
    }
  };
  add_matching(true);
  add_matching(false);
  return RuleValue(out);
}

Result<RuleValue> FnAccessCols(const std::vector<RuleValue>& args,
                               const RuleFnContext& ctx) {
  STARBURST_RETURN_NOT_OK(Arity(args, 2, "access_cols"));
  auto q = SingleQuantifier(args[0]);
  if (!q.ok()) return q.status();
  auto preds = PredsOf(args[1]);
  if (!preds.ok()) return preds.status();
  ColumnSet cols = ctx.query->ColumnsNeeded(q.value());
  for (int id : preds.value().ToVector()) {
    for (const ColumnRef& c : ctx.query->predicate(id).Columns()) {
      if (c.quantifier == q.value()) cols.insert(c);
    }
  }
  SortOrder out(cols.begin(), cols.end());
  return RuleValue(out);
}

Result<const IndexDef*> FindIndexDef(const Query& query, int q,
                                     const std::string& name) {
  for (const IndexDef& ix : query.table_of(q).indexes) {
    if (ix.name == name) return &ix;
  }
  return Status::NotFound("no index '" + name + "'");
}

Result<RuleValue> FnIndexKey(const std::vector<RuleValue>& args,
                             const RuleFnContext& ctx) {
  STARBURST_RETURN_NOT_OK(Arity(args, 2, "index_key"));
  auto q = SingleQuantifier(args[0]);
  if (!q.ok()) return q.status();
  if (!args[1].is<std::string>()) {
    return Status::InvalidArgument("index_key: expected an index name");
  }
  auto ix = FindIndexDef(*ctx.query, q.value(), args[1].as<std::string>());
  if (!ix.ok()) return ix.status();
  SortOrder out;
  for (int ord : ix.value()->key_columns) {
    out.push_back(ColumnRef{q.value(), ord});
  }
  return RuleValue(out);
}

Result<RuleValue> FnKeyAndTid(const std::vector<RuleValue>& args,
                              const RuleFnContext& ctx) {
  STARBURST_RETURN_NOT_OK(Arity(args, 2, "key_and_tid"));
  auto key = FnIndexKey(args, ctx);
  if (!key.ok()) return key;
  auto q = SingleQuantifier(args[0]);
  if (!q.ok()) return q.status();
  SortOrder out = key.value().as<SortOrder>();
  out.push_back(ColumnRef{q.value(), ColumnRef::kTidColumn});
  return RuleValue(out);
}

Result<RuleValue> FnPrefixOf(const std::vector<RuleValue>& args,
                             const RuleFnContext&) {
  STARBURST_RETURN_NOT_OK(Arity(args, 2, "prefix_of"));
  const SortOrder* required = args[0].get_if<SortOrder>();
  const SortOrder* available = args[1].get_if<SortOrder>();
  if (required == nullptr || available == nullptr) {
    return Status::InvalidArgument("prefix_of: expected two column lists");
  }
  return RuleValue(OrderSatisfies(*available, *required));
}

// ---- catalog access --------------------------------------------------------

Result<RuleValue> FnSites(const std::vector<RuleValue>&,
                          const RuleFnContext& ctx) {
  // σ: sites at which tables of the query are stored, plus the query site
  // (paper §4.2).
  std::set<SiteId> sites;
  sites.insert(ctx.query->required_site().value_or(0));
  for (int q = 0; q < ctx.query->num_quantifiers(); ++q) {
    sites.insert(ctx.query->table_of(q).site);
  }
  RuleList out;
  for (SiteId s : sites) out.push_back(RuleValue(static_cast<int64_t>(s)));
  return RuleValue(out);
}

Result<RuleValue> FnIndexesOn(const std::vector<RuleValue>& args,
                              const RuleFnContext& ctx) {
  STARBURST_RETURN_NOT_OK(Arity(args, 1, "indexes_on"));
  auto q = SingleQuantifier(args[0]);
  if (!q.ok()) return q.status();
  RuleList out;
  for (const IndexDef& ix : ctx.query->table_of(q.value()).indexes) {
    out.push_back(RuleValue(ix.name));
  }
  return RuleValue(out);
}

Result<RuleValue> FnIndexEligiblePreds(const std::vector<RuleValue>& args,
                                       const RuleFnContext& ctx) {
  STARBURST_RETURN_NOT_OK(Arity(args, 3, "index_eligible_preds"));
  auto q = SingleQuantifier(args[0]);
  if (!q.ok()) return q.status();
  if (!args[1].is<std::string>()) {
    return Status::InvalidArgument(
        "index_eligible_preds: expected an index name");
  }
  auto preds = PredsOf(args[2]);
  if (!preds.ok()) return preds.status();
  auto ix = FindIndexDef(*ctx.query, q.value(), args[1].as<std::string>());
  if (!ix.ok()) return ix.status();
  std::vector<ColumnRef> key;
  for (int ord : ix.value()->key_columns) {
    key.push_back(ColumnRef{q.value(), ord});
  }
  return RuleValue(
      IndexEligiblePreds(*ctx.query, q.value(), key, preds.value()));
}

Result<RuleValue> FnStorageKind(const std::vector<RuleValue>& args,
                                const RuleFnContext& ctx) {
  STARBURST_RETURN_NOT_OK(Arity(args, 1, "storage_kind"));
  auto q = SingleQuantifier(args[0]);
  if (!q.ok()) return q.status();
  return RuleValue(
      std::string(StorageKindName(ctx.query->table_of(q.value()).storage)));
}

Result<RuleValue> FnAtNaturalSite(const std::vector<RuleValue>& args,
                                  const RuleFnContext&) {
  STARBURST_RETURN_NOT_OK(Arity(args, 1, "at_natural_site"));
  auto s = StreamOf(args[0]);
  if (!s.ok()) return s.status();
  // The stream with its placement requirements stripped: Glue will build it
  // where its tables live (semijoin reductions filter *before* shipping).
  StreamSpec out = *s.value();
  out.required.site.reset();
  out.required.temp = false;
  return RuleValue(std::move(out));
}

Result<RuleValue> FnPredCols(const std::vector<RuleValue>& args,
                             const RuleFnContext& ctx) {
  STARBURST_RETURN_NOT_OK(Arity(args, 2, "pred_cols"));
  auto preds = PredsOf(args[0]);
  if (!preds.ok()) return preds.status();
  auto t = TablesOf(args[1]);
  if (!t.ok()) return t.status();
  // χ(P) ∩ χ(T): every column of the predicates that belongs to T, in
  // predicate order.
  SortOrder out;
  for (int id : preds.value().ToVector()) {
    for (const ColumnRef& c : ctx.query->predicate(id).Columns()) {
      if (!t.value().Contains(c.quantifier)) continue;
      if (std::find(out.begin(), out.end(), c) == out.end()) {
        out.push_back(c);
      }
    }
  }
  return RuleValue(out);
}

Result<RuleValue> FnTidCol(const std::vector<RuleValue>& args,
                           const RuleFnContext&) {
  STARBURST_RETURN_NOT_OK(Arity(args, 1, "tid_col"));
  auto q = SingleQuantifier(args[0]);
  if (!q.ok()) return q.status();
  return RuleValue(SortOrder{ColumnRef{q.value(), ColumnRef::kTidColumn}});
}

Result<RuleValue> FnLt(const std::vector<RuleValue>& args,
                       const RuleFnContext&) {
  STARBURST_RETURN_NOT_OK(Arity(args, 2, "lt"));
  if (args[0].is<int64_t>() && args[1].is<int64_t>()) {
    return RuleValue(args[0].as<int64_t>() < args[1].as<int64_t>());
  }
  if (args[0].is<std::string>() && args[1].is<std::string>()) {
    return RuleValue(args[0].as<std::string>() < args[1].as<std::string>());
  }
  return Status::InvalidArgument("lt: incompatible operand types");
}

Result<RuleValue> FnQuant(const std::vector<RuleValue>& args,
                          const RuleFnContext&) {
  STARBURST_RETURN_NOT_OK(Arity(args, 1, "quant"));
  auto q = SingleQuantifier(args[0]);
  if (!q.ok()) return q.status();
  return RuleValue(static_cast<int64_t>(q.value()));
}

Result<RuleValue> FnPredsOfStream(const std::vector<RuleValue>& args,
                                  const RuleFnContext&) {
  STARBURST_RETURN_NOT_OK(Arity(args, 1, "preds_of"));
  auto s = StreamOf(args[0]);
  if (!s.ok()) return s.status();
  return RuleValue(s.value()->preds);
}

Result<RuleValue> FnHasOrderRequirement(const std::vector<RuleValue>& args,
                                        const RuleFnContext&) {
  STARBURST_RETURN_NOT_OK(Arity(args, 1, "has_order_requirement"));
  auto s = StreamOf(args[0]);
  if (!s.ok()) return s.status();
  return RuleValue(s.value()->required.order.has_value());
}

Result<RuleValue> FnRequiredOrder(const std::vector<RuleValue>& args,
                                  const RuleFnContext&) {
  STARBURST_RETURN_NOT_OK(Arity(args, 1, "required_order"));
  auto s = StreamOf(args[0]);
  if (!s.ok()) return s.status();
  return RuleValue(s.value()->required.order.value_or(SortOrder{}));
}

}  // namespace

Status RegisterBuiltinFunctions(FunctionRegistry* registry) {
  registry->Register("union", FnUnion);
  registry->Register("minus", FnMinus);
  registry->Register("intersect", FnIntersect);
  registry->Register("empty", FnEmpty);
  registry->Register("nonempty", FnNonempty);
  registry->Register("size", FnSize);
  registry->Register("and", FnAnd);
  registry->Register("or", FnOr);
  registry->Register("not", FnNot);
  registry->Register("eq", FnEq);
  registry->Register("composite", FnComposite);
  registry->Register("natural_site", FnNaturalSite);
  registry->Register("required_site", FnRequiredSite);
  registry->Register("is_local_query", FnIsLocalQuery);
  registry->Register("allow_composite_inner", FnAllowCompositeInner);
  registry->Register("allow_cartesian", FnAllowCartesian);
  registry->Register("join_preds", FnJoinPreds);
  registry->Register("sortable_preds", FnSortablePreds);
  registry->Register("hashable_preds", FnHashablePreds);
  registry->Register("indexable_preds", FnIndexablePreds);
  registry->Register("inner_preds", FnInnerPreds);
  registry->Register("sort_cols", FnSortCols);
  registry->Register("index_cols", FnIndexCols);
  registry->Register("access_cols", FnAccessCols);
  registry->Register("index_key", FnIndexKey);
  registry->Register("key_and_tid", FnKeyAndTid);
  registry->Register("prefix_of", FnPrefixOf);
  registry->Register("sites", FnSites);
  registry->Register("indexes_on", FnIndexesOn);
  registry->Register("index_eligible_preds", FnIndexEligiblePreds);
  registry->Register("storage_kind", FnStorageKind);
  registry->Register("tid_col", FnTidCol);
  registry->Register("lt", FnLt);
  registry->Register("at_natural_site", FnAtNaturalSite);
  registry->Register("pred_cols", FnPredCols);
  registry->Register("quant", FnQuant);
  registry->Register("preds_of", FnPredsOfStream);
  registry->Register("has_order_requirement", FnHasOrderRequirement);
  registry->Register("required_order", FnRequiredOrder);
  return Status::OK();
}

}  // namespace starburst
