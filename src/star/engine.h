#ifndef STARBURST_STAR_ENGINE_H_
#define STARBURST_STAR_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "star/builtins.h"
#include "star/rule.h"

namespace starburst {

class ExpansionMemo;
class FaultInjector;
class MetricsRegistry;
class ResourceGovernor;
class Tracer;

/// Session options of the rule engine — the paper's compile-time parameters
/// (§2.3) plus interpreter safety limits.
struct EngineOptions {
  bool allow_composite_inner = true;
  bool allow_cartesian = false;
  /// Glue returns the whole Pareto frontier (true) or only the cheapest
  /// satisfying plan (false) — §3.2's "cheapest ... or (optionally) all".
  bool glue_return_all = true;
  /// Recursion guard against cyclic STAR definitions (an open issue the
  /// paper acknowledges in §5: "we assume the DBC specifies the STARs
  /// correctly, i.e. without infinite cycles").
  int max_depth = 64;
};

/// Interpreter effort counters, the measured quantity of experiment E1/E6:
/// a STAR reference expands only the STARs its definition mentions
/// (dictionary lookup), so these stay small compared to the transformational
/// baseline's match attempts.
struct EngineMetrics {
  int64_t star_refs = 0;
  int64_t alternatives_considered = 0;
  int64_t alternatives_taken = 0;
  int64_t conditions_evaluated = 0;
  int64_t op_refs = 0;
  int64_t plans_built = 0;
  int64_t infeasible_combinations = 0;
  int64_t glue_calls = 0;
  int64_t foreach_expansions = 0;
  /// Shared-memo traffic of this engine instance (see star/memo.h): hits
  /// and misses of its EvalStarRef consultations, and the bytes its own
  /// insertions added to the memo. Published under `engine.memo_*` so the
  /// per-worker counters merged from rank-parallel enumeration stay visible.
  int64_t memo_hits = 0;
  int64_t memo_misses = 0;
  int64_t memo_bytes = 0;

  void Reset() { *this = EngineMetrics{}; }
  std::string ToString() const;
  /// Publishes the counters into `registry` under the `star.` prefix.
  void Publish(MetricsRegistry* registry) const;
  /// Accumulates another engine's counters (parallel enumeration merges
  /// per-worker engines back into the main one after the run).
  void MergeFrom(const EngineMetrics& other);
};

/// Interface Glue implements; broken out so star/ does not depend on glue/
/// (Glue itself re-references root STARs through the engine, §3.2 step 1).
class GlueInterface {
 public:
  virtual ~GlueInterface() = default;
  /// Returns plans for the spec's relational content that satisfy its
  /// accumulated requirements, injecting veneer operators as needed.
  virtual Result<SAP> Resolve(const StreamSpec& spec) = 0;
};

/// The STAR interpreter (the paper's §2.3 / [LEE 88] prototype): expands a
/// root STAR reference top-down into a SAP by substituting alternative
/// definitions whose conditions hold, mapping LOLEPOP references over
/// SAP-valued inputs, and delegating required-property matching to Glue.
class StarEngine {
 public:
  StarEngine(const PlanFactory* factory, const RuleSet* rules,
             const FunctionRegistry* functions,
             EngineOptions options = EngineOptions{});

  void set_glue(GlueInterface* glue) { glue_ = glue; }
  /// Attach a tracer to record the rule-firing tree (null = off).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }
  /// Attach a resource governor checked at every STAR expansion (null = off).
  void set_governor(ResourceGovernor* governor) { governor_ = governor; }
  /// Override the fault injector (tests); defaults to FaultInjector::Global().
  void set_faults(FaultInjector* faults) { faults_ = faults; }
  /// Attach a shared expansion memo consulted before every STAR expansion
  /// (null = off). The memo may be shared across engines: rank-parallel
  /// workers all point at the same instance.
  void set_memo(ExpansionMemo* memo) { memo_ = memo; }
  ExpansionMemo* memo() const { return memo_; }

  /// Evaluates `name(args...)` to a set of alternative plans.
  Result<SAP> EvalStar(const std::string& name,
                       const std::vector<RuleValue>& args);

  /// Scoped variable bindings during rule evaluation.
  class Env {
   public:
    explicit Env(const Env* parent = nullptr) : parent_(parent) {}
    void Bind(const std::string& name, RuleValue value) {
      vars_[name] = std::move(value);
    }
    const RuleValue* Lookup(const std::string& name) const;

   private:
    const Env* parent_;
    std::map<std::string, RuleValue> vars_;
  };

  /// Evaluates one rule expression under `env` (exposed for tests and for
  /// Glue's own glue-operator STARs).
  Result<RuleValue> Eval(const RuleExpr& expr, const Env& env);

  EngineMetrics& metrics() { return metrics_; }
  const EngineOptions& options() const { return options_; }
  const PlanFactory& factory() const { return *factory_; }
  // The immutable inputs, exposed so parallel enumeration can build one
  // engine per worker over the same factory/rules/functions (the engine's
  // own state — depth, metrics, glue, tracer — is per-instance and not
  // thread-safe, so workers must not share an engine).
  const RuleSet* rules() const { return rules_; }
  const FunctionRegistry* functions() const { return functions_; }
  const Query& query() const;

 private:
  Result<RuleValue> EvalStarRef(const std::string& name,
                                const std::vector<RuleValue>& args);
  Result<RuleValue> EvalOpRef(const RuleExpr& expr, const Env& env);
  Result<SAP> ToSAP(RuleValue value) const;

  const PlanFactory* factory_;
  const RuleSet* rules_;
  const FunctionRegistry* functions_;
  GlueInterface* glue_ = nullptr;
  Tracer* tracer_ = nullptr;
  ExpansionMemo* memo_ = nullptr;
  ResourceGovernor* governor_ = nullptr;
  FaultInjector* faults_;
  EngineOptions options_;
  EngineMetrics metrics_;
  int depth_ = 0;
};

}  // namespace starburst

#endif  // STARBURST_STAR_ENGINE_H_
