#ifndef STARBURST_STAR_RULE_H_
#define STARBURST_STAR_RULE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/id_set.h"
#include "common/status.h"
#include "plan/plan.h"
#include "properties/property.h"

namespace starburst {

/// A Set of Alternative Plans — the abstract data type every STAR consumes
/// and produces (paper §2.2: "It is easiest to treat all STARs as operations
/// on the abstract data type Set of Alternative Plans for a stream (SAP)").
using SAP = std::vector<PlanPtr>;

/// Properties *required* of a stream (paper §3.2): the square-bracket
/// annotations like [order=...], [site=...], [temp], [paths ⊇ IX]. They
/// accumulate on a StreamSpec until Glue is referenced.
struct Requirements {
  std::optional<SortOrder> order;
  std::optional<SiteId> site;
  bool temp = false;
  /// Key columns an access path must exist on (dynamic index, §4.5.3).
  std::optional<std::vector<ColumnRef>> path;

  bool Any() const {
    return order.has_value() || site.has_value() || temp || path.has_value();
  }
  /// Later requirements override earlier ones for the same property (the
  /// innermost STAR to require a property wins; in the paper's rule sets at
  /// most one STAR requires each property per stream).
  void Merge(const Requirements& other);
  std::string ToString(const Query* query = nullptr) const;

  bool operator==(const Requirements& o) const {
    return order == o.order && site == o.site && temp == o.temp &&
           path == o.path;
  }
};

/// A descriptor of a not-yet-materialized table stream: which quantifiers it
/// covers, which predicates its plans must apply, and the requirements
/// accumulated so far. This is the value the paper's T1/T2 parameters carry
/// between STARs; only Glue turns it into a SAP.
struct StreamSpec {
  QuantifierSet tables;
  PredSet preds;
  Requirements required;

  bool operator==(const StreamSpec& o) const {
    return tables == o.tables && preds == o.preds && required == o.required;
  }
  std::string ToString(const Query* query = nullptr) const;
};

class RuleValue;
/// Generic list for ∀-expansion domains (sites, indexes, ...).
using RuleList = std::vector<RuleValue>;

/// The value domain of rule-expression evaluation.
class RuleValue {
 public:
  using Storage =
      std::variant<std::monostate, bool, int64_t, double, std::string,
                   QuantifierSet, PredSet, ColumnSet, SortOrder, ColumnRef,
                   StreamSpec, SAP, RuleList>;

  RuleValue() = default;
  RuleValue(Storage v) : v_(std::move(v)) {}  // NOLINT(runtime/explicit)
  template <typename T>
  RuleValue(T v) : v_(std::move(v)) {}  // NOLINT(runtime/explicit)

  const Storage& storage() const { return v_; }

  template <typename T>
  bool is() const {
    return std::holds_alternative<T>(v_);
  }
  template <typename T>
  const T& as() const {
    return std::get<T>(v_);
  }
  template <typename T>
  const T* get_if() const {
    return std::get_if<T>(&v_);
  }

  std::string ToString(const Query* query = nullptr) const;

 private:
  Storage v_;
};

/// Kinds of rule-expression nodes.
enum class RuleExprKind {
  kParam,    ///< parameter or ∀-variable reference by name
  kConst,    ///< literal RuleValue
  kCall,     ///< builtin / DBC-registered function call
  kOpRef,    ///< LOLEPOP reference — a grammar *terminal*
  kStarRef,  ///< STAR reference — a grammar *non-terminal*
  kGlue,     ///< Glue reference (paper §3.2)
  kForEach,  ///< ∀ var ∈ set : body (paper §2.2, IndexAccess example)
  kRequire,  ///< attach a required property to a stream: T[order=...]
};

class RuleExpr;
using RuleExprPtr = std::shared_ptr<const RuleExpr>;

/// Which requirement a kRequire node attaches.
enum class ReqKind { kOrder, kSite, kTemp, kPath };

/// An immutable rule-expression tree. Construct via the factory functions;
/// fields are interpreted per `kind` (see accessors).
class RuleExpr {
 public:
  static RuleExprPtr Param(std::string name);
  static RuleExprPtr Const(RuleValue value);
  /// `line` (1-based source line, 0 = unknown/built programmatically) lets
  /// load-time validation point at the offending reference.
  static RuleExprPtr Call(std::string fn, std::vector<RuleExprPtr> args,
                          int line = 0);
  /// LOLEPOP reference: `inputs` evaluate to SAPs (mapped, §2.2); `args`
  /// evaluate to operator arguments.
  static RuleExprPtr OpRef(std::string op, std::string flavor,
                           std::vector<RuleExprPtr> inputs,
                           std::vector<std::pair<std::string, RuleExprPtr>> args,
                           int line = 0);
  static RuleExprPtr StarRef(std::string star, std::vector<RuleExprPtr> args,
                             int line = 0);
  /// Glue(stream, preds): resolve the stream spec into a SAP, pushing
  /// `preds` into its plans.
  static RuleExprPtr Glue(RuleExprPtr stream, RuleExprPtr preds);
  static RuleExprPtr ForEach(std::string var, RuleExprPtr domain,
                             RuleExprPtr body);
  static RuleExprPtr Require(RuleExprPtr stream, ReqKind req,
                             RuleExprPtr value);

  RuleExprKind kind() const { return kind_; }
  const std::string& name() const { return name_; }    // param/fn/op/star
  const std::string& flavor() const { return flavor_; }
  const RuleValue& value() const { return value_; }    // kConst
  const std::vector<RuleExprPtr>& args() const { return args_; }
  const std::vector<std::pair<std::string, RuleExprPtr>>& named_args() const {
    return named_args_;
  }
  ReqKind req_kind() const { return req_kind_; }
  /// Source line of the reference (0 = unknown).
  int line() const { return line_; }
  /// kForEach: args_[0]=domain, args_[1]=body; name_ = variable.
  /// kGlue/kRequire: args_[0]=stream, args_[1]=value/preds.

 private:
  RuleExpr() = default;

  RuleExprKind kind_ = RuleExprKind::kConst;
  std::string name_;
  std::string flavor_;
  RuleValue value_;
  std::vector<RuleExprPtr> args_;
  std::vector<std::pair<std::string, RuleExprPtr>> named_args_;
  ReqKind req_kind_ = ReqKind::kOrder;
  int line_ = 0;
};

/// One alternative definition of a STAR: optional condition, local `where`
/// bindings, and a body producing plans.
struct Alternative {
  std::string label;
  RuleExprPtr condition;  ///< null = always applicable ("OTHERWISE")
  std::vector<std::pair<std::string, RuleExprPtr>> lets;
  RuleExprPtr body;
};

/// A STrategy Alternative Rule: a named, parameterized non-terminal with
/// alternative definitions (paper §2.2). `exclusive` distinguishes the
/// paper's '{' (first applicable alternative only) from '[' (all applicable
/// alternatives).
struct Star {
  std::string name;
  std::vector<std::string> params;
  std::vector<std::pair<std::string, RuleExprPtr>> lets;  ///< shared `where`s
  std::vector<Alternative> alternatives;
  bool exclusive = false;
  /// Source line of the definition (0 = built programmatically).
  int line = 0;
};

/// The rule base: a dictionary of STARs, replaceable at run time — the
/// paper's "rules as input data to the optimizer" (§5). Re-adding a name
/// replaces the definition (how a DBC revises a strategy).
class RuleSet {
 public:
  void AddOrReplace(Star star);
  Result<const Star*> Find(const std::string& name) const;
  bool Remove(const std::string& name);
  std::vector<std::string> Names() const;
  int size() const { return static_cast<int>(stars_.size()); }

 private:
  std::map<std::string, Star> stars_;
};

}  // namespace starburst

#endif  // STARBURST_STAR_RULE_H_
