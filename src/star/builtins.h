#ifndef STARBURST_STAR_BUILTINS_H_
#define STARBURST_STAR_BUILTINS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "star/rule.h"

namespace starburst {

class Query;

/// Read-only context handed to rule functions: the query being optimized and
/// the session's compile-time parameters (paper §2.3: "What constitutes a
/// joinable pair of streams depends upon a compile-time parameter").
struct RuleFnContext {
  const Query* query = nullptr;
  bool allow_composite_inner = true;
  bool allow_cartesian = false;
};

using RuleFn =
    std::function<Result<RuleValue>(const std::vector<RuleValue>&,
                                    const RuleFnContext&)>;

/// Named functions callable from STAR conditions and argument expressions.
/// The paper's conditions compile to C functions (§5); registering a RuleFn
/// is this library's equivalent. `Register` replaces existing names so a DBC
/// can refine a condition without touching the library.
class FunctionRegistry {
 public:
  void Register(const std::string& name, RuleFn fn);
  Result<const RuleFn*> Find(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, RuleFn> fns_;
};

/// Installs the standard function library:
///
/// Set algebra:      union, minus, intersect, empty, nonempty, size
/// Logic:            and, or, not, eq, true, false
/// Stream tests:     composite(T), natural_site(T), required_site(T),
///                   is_local_query(), allow_composite_inner(),
///                   allow_cartesian()
/// Predicate classes (paper §4.4-4.5):
///                   join_preds(P,T1,T2), sortable_preds(P,T1,T2),
///                   hashable_preds(P,T1,T2), indexable_preds(P,T1,T2),
///                   inner_preds(P,T2)
/// Column derivation: sort_cols(SP,T), index_cols(IP,XP,T),
///                   access_cols(T,P), key_and_tid(T,index),
///                   index_key(T,index), prefix_of(order,key)
/// Catalog access:   sites(), indexes_on(T), index_eligible_preds(T,ix,P),
///                   storage_kind(T), has_order_requirement(T),
///                   required_order(T)
Status RegisterBuiltinFunctions(FunctionRegistry* registry);

}  // namespace starburst

#endif  // STARBURST_STAR_BUILTINS_H_
