#ifndef STARBURST_PLAN_OPERATOR_H_
#define STARBURST_PLAN_OPERATOR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/id_set.h"
#include "common/status.h"
#include "properties/property.h"
#include "query/expr.h"

namespace starburst {

class Query;
class CostModel;

/// Named arguments of a LOLEPOP reference (paper §2.1: "a LOLEPOP may have
/// other parameters that control its operation"). A small typed bag keyed by
/// argument name so new operators can define new argument conventions
/// without changing this layer.
class OpArgs {
 public:
  using ArgValue = std::variant<std::monostate, bool, int64_t, double,
                                std::string, ColumnRef, std::vector<ColumnRef>,
                                ColumnSet, PredSet, QuantifierSet>;

  OpArgs& Set(const std::string& name, ArgValue value) {
    values_[name] = std::move(value);
    return *this;
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  template <typename T>
  const T* Get(const std::string& name) const {
    auto it = values_.find(name);
    if (it == values_.end()) return nullptr;
    return std::get_if<T>(&it->second);
  }

  int64_t GetInt(const std::string& name, int64_t fallback = 0) const {
    const int64_t* v = Get<int64_t>(name);
    return v != nullptr ? *v : fallback;
  }
  bool GetBool(const std::string& name, bool fallback = false) const {
    const bool* v = Get<bool>(name);
    return v != nullptr ? *v : fallback;
  }
  std::string GetString(const std::string& name) const {
    const std::string* v = Get<std::string>(name);
    return v != nullptr ? *v : std::string();
  }
  std::vector<ColumnRef> GetColumns(const std::string& name) const {
    const std::vector<ColumnRef>* v = Get<std::vector<ColumnRef>>(name);
    return v != nullptr ? *v : std::vector<ColumnRef>();
  }
  PredSet GetPreds(const std::string& name) const {
    const PredSet* v = Get<PredSet>(name);
    return v != nullptr ? *v : PredSet();
  }

  const std::map<std::string, ArgValue>& values() const { return values_; }

 private:
  std::map<std::string, ArgValue> values_;
};

/// Conventional argument names used by the built-in LOLEPOPs.
namespace arg {
inline constexpr const char* kQuantifier = "quantifier";  // int64
inline constexpr const char* kTable = "table";            // int64 TableId
inline constexpr const char* kIndex = "index";            // string index name
inline constexpr const char* kCols = "cols";              // vector<ColumnRef>
inline constexpr const char* kPreds = "preds";            // PredSet
inline constexpr const char* kOrder = "order";            // vector<ColumnRef>
inline constexpr const char* kSite = "site";              // int64 SiteId
inline constexpr const char* kTempName = "temp_name";     // string
inline constexpr const char* kIndexOn = "index_on";       // vector<ColumnRef>
inline constexpr const char* kJoinPreds = "join_preds";   // PredSet
inline constexpr const char* kResidualPreds = "residual_preds";  // PredSet
inline constexpr const char* kDistinct = "distinct";      // bool (PROJECT)
}  // namespace arg

struct PlanOp;
using PlanPtr = std::shared_ptr<const PlanOp>;

/// Everything a property function may consult: the reference's arguments and
/// the property vectors of any plan-valued inputs (paper §3.1: "Each property
/// function is passed the arguments of the LOLEPOP, including the property
/// vector for arguments that are ... plans, and returns the revised property
/// vector").
struct OpContext {
  const Query& query;
  const CostModel& cost_model;
  const std::string& flavor;
  const OpArgs& args;
  std::vector<const PropertyVector*> inputs;
};

using PropertyFn = std::function<Result<PropertyVector>(const OpContext&)>;

/// Definition of one LOLEPOP kind. Adding an operator (paper §5) means
/// registering one of these (property function) plus an executor in
/// exec/ExecutorRegistry (run-time routine).
struct OperatorDef {
  std::string name;
  int min_inputs = 0;
  int max_inputs = 2;
  /// Allowed flavors; empty means "any" (flavor-less operators pass "").
  std::vector<std::string> flavors;
  PropertyFn property_fn;
};

/// Registry of LOLEPOPs. A fresh registry contains no operators;
/// `RegisterBuiltinOperators` (properties/property_functions.h) installs the
/// paper's set.
class OperatorRegistry {
 public:
  Status Register(OperatorDef def);
  Result<const OperatorDef*> Find(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, OperatorDef> ops_;
};

/// Conventional operator names used by the built-in rule set.
namespace op {
inline constexpr const char* kAccess = "ACCESS";
inline constexpr const char* kGet = "GET";
inline constexpr const char* kSort = "SORT";
inline constexpr const char* kShip = "SHIP";
inline constexpr const char* kStore = "STORE";
inline constexpr const char* kJoin = "JOIN";
inline constexpr const char* kFilter = "FILTER";
/// Intersects two TID streams over the same table — the paper's omitted
/// "ANDing ... of multiple indexes for a single table" STAR (§4).
inline constexpr const char* kTidAnd = "TIDAND";
/// Projects a stream to a column subset, optionally deduplicating — the
/// building block of semijoin reductions (paper §4: "filtration methods").
inline constexpr const char* kProject = "PROJECT";
/// Reduces a probe stream by membership of its join-column values in a
/// shipped filter stream: flavor "exact" is the semijoin [BERN 81], flavor
/// "bloom" the Bloomjoin [BABB 79, MACK 86] (costed with a false-positive
/// allowance; executed exactly).
inline constexpr const char* kFilterBy = "FILTERBY";
/// Exchange — the engine's parallelism glue, named after the paper's §3
/// stream-movement LOLEPOPs (SHIP moves streams between sites; XCHG moves
/// them between workers on one site). Not a plan-tree operator: the
/// vectorized executor fans eligible ACCESS/JOIN(HA)/SORT nodes out over
/// morsel workers at runtime, and EXPLAIN annotates the profiled node with
/// `XCHG[workers=N]` instead of rewriting the plan shape.
inline constexpr const char* kXchg = "XCHG";
}  // namespace op

/// Conventional flavors.
namespace flavor {
// ACCESS flavors (paper §4.5.2 TableAccess + §2.1 index accesses).
inline constexpr const char* kHeap = "heap";
inline constexpr const char* kBTree = "btree";
inline constexpr const char* kIndex = "index";
inline constexpr const char* kTemp = "temp";
inline constexpr const char* kTempIndex = "temp-index";
// JOIN flavors (§4.4, §4.5.1).
inline constexpr const char* kNL = "NL";
inline constexpr const char* kMG = "MG";
inline constexpr const char* kHA = "HA";
// FILTERBY flavors.
inline constexpr const char* kExact = "exact";
inline constexpr const char* kBloom = "bloom";
}  // namespace flavor

}  // namespace starburst

#endif  // STARBURST_PLAN_OPERATOR_H_
