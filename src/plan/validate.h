#ifndef STARBURST_PLAN_VALIDATE_H_
#define STARBURST_PLAN_VALIDATE_H_

#include "plan/plan.h"

namespace starburst {

class Query;

/// Checks that a plan is *well-formed* in the sense of Rosenthal & Helman
/// [ROSE 87] (paper §6): every predicate evaluated by every node references
/// only columns that are in scope there — the node's own tables plus the
/// outer bindings of enclosing nested-loop joins (sideways information
/// passing binds the OUTER side only; a predicate in an outer subtree that
/// references the inner's tables can never be evaluated).
///
/// The STAR engine produces well-formed plans by construction (Glue pushes
/// correlated predicates only into inner streams); the transformational
/// baseline must check this after every rewrite — one more per-plan cost of
/// that architecture.
Status ValidatePlan(const PlanOp& root, const Query& query);

}  // namespace starburst

#endif  // STARBURST_PLAN_VALIDATE_H_
