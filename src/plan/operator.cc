#include "plan/operator.h"

namespace starburst {

Status OperatorRegistry::Register(OperatorDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("operator name must be non-empty");
  }
  if (!def.property_fn) {
    return Status::InvalidArgument("operator '" + def.name +
                                   "' needs a property function");
  }
  if (ops_.count(def.name)) {
    return Status::AlreadyExists("operator '" + def.name +
                                 "' already registered");
  }
  ops_.emplace(def.name, std::move(def));
  return Status::OK();
}

Result<const OperatorDef*> OperatorRegistry::Find(
    const std::string& name) const {
  auto it = ops_.find(name);
  if (it == ops_.end()) {
    return Status::NotFound("no operator named '" + name + "'");
  }
  return &it->second;
}

std::vector<std::string> OperatorRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(ops_.size());
  for (const auto& [name, def] : ops_) out.push_back(name);
  return out;
}

}  // namespace starburst
