#ifndef STARBURST_PLAN_EXPLAIN_H_
#define STARBURST_PLAN_EXPLAIN_H_

#include <string>

#include "plan/plan.h"

namespace starburst {

class Query;

struct ExplainOptions {
  bool show_properties = true;  ///< append [ORDER=... SITE=... CARD=... COST]
  bool show_args = true;        ///< append cols/preds/order arguments
};

/// Renders a plan DAG as an indented tree, e.g. (Figure 1's plan):
///
///   JOIN(MG) pred={DEPT.DNO = EMP.DNO} [CARD=... COST=...]
///     SORT order=(DEPT.DNO)
///       ACCESS(heap) DEPT cols={DNO,MGR} preds={DEPT.MGR = 'Haas'}
///     GET EMP cols={NAME,ADDRESS}
///       ACCESS(index) EMP_DNO_IX cols={DNO,TID}
std::string ExplainPlan(const PlanOp& root, const Query& query,
                        const ExplainOptions& options = ExplainOptions{});

/// One-line structural signature, e.g.
/// "JOIN(MG)(SORT(ACCESS(heap)),GET(ACCESS(index)))" — used by tests and by
/// the baseline optimizer's duplicate detection.
std::string PlanSignature(const PlanOp& root);

}  // namespace starburst

#endif  // STARBURST_PLAN_EXPLAIN_H_
