#ifndef STARBURST_PLAN_EXPLAIN_H_
#define STARBURST_PLAN_EXPLAIN_H_

#include <cstdint>
#include <map>
#include <string>

#include "plan/plan.h"

namespace starburst {

class ExecProfile;
class Query;

/// Run-time actuals for one plan node, collected by the Executor when stats
/// collection is on (EXPLAIN ANALYZE). `invocations` counts logical
/// evaluations — a nested-loop inner is invoked once per outer tuple;
/// `rows` accumulates rows produced across all invocations; `wall_micros`
/// is inclusive of the node's inputs (tree time, like EXPLAIN ANALYZE in
/// most systems).
struct OpRunStats {
  int64_t invocations = 0;
  int64_t rows = 0;
  /// RowBatches produced (vectorized executor only; 0 under the legacy
  /// row-at-a-time path).
  int64_t batches = 0;
  double wall_micros = 0.0;
};

/// Actuals per plan node of one execution, keyed by node identity (plans are
/// shared DAGs, so a node reached through two parents has one entry).
using PlanRunStats = std::map<const PlanOp*, OpRunStats>;

struct ExplainOptions {
  bool show_properties = true;  ///< append [ORDER=... SITE=... CARD=... COST]
  bool show_args = true;        ///< append cols/preds/order arguments
  /// EXPLAIN ANALYZE: append `actual rows=... (est=..., q-err=...)` per
  /// node from `run_stats`. The q-error is max(actual/est, est/actual) on
  /// per-invocation rows — the standard measure of cardinality-estimation
  /// error (1.0 = perfect).
  bool analyze = false;
  const PlanRunStats* run_stats = nullptr;
  /// Profile tree: append `actual time=... (N% of total) mem=...` plus
  /// operator detail (hash build/probes, sort bytes, predicate steps) per
  /// node from a profiled run. Independent of `run_stats`.
  const ExecProfile* profile = nullptr;
};

/// Renders a plan DAG as an indented tree, e.g. (Figure 1's plan):
///
///   JOIN(MG) pred={DEPT.DNO = EMP.DNO} [CARD=... COST=...]
///     SORT order=(DEPT.DNO)
///       ACCESS(heap) DEPT cols={DNO,MGR} preds={DEPT.MGR = 'Haas'}
///     GET EMP cols={NAME,ADDRESS}
///       ACCESS(index) EMP_DNO_IX cols={DNO,TID}
std::string ExplainPlan(const PlanOp& root, const Query& query,
                        const ExplainOptions& options = ExplainOptions{});

/// One-line structural signature, e.g.
/// "JOIN(MG)(SORT(ACCESS(heap)),GET(ACCESS(index)))" — used by tests and by
/// the baseline optimizer's duplicate detection.
std::string PlanSignature(const PlanOp& root);

}  // namespace starburst

#endif  // STARBURST_PLAN_EXPLAIN_H_
