#include "plan/validate.h"

#include "query/query.h"

namespace starburst {

namespace {

Status Check(const PlanOp& node, const Query& query, QuantifierSet bound) {
  QuantifierSet in_scope = bound.Union(node.props.tables());
  for (const char* name :
       {arg::kPreds, arg::kJoinPreds, arg::kResidualPreds}) {
    if (!node.args.Has(name)) continue;
    for (int id : node.args.GetPreds(name).ToVector()) {
      const Predicate& p = query.predicate(id);
      if (!in_scope.ContainsAll(p.quantifiers)) {
        return Status::InvalidArgument(
            node.Label() + " evaluates predicate '" + p.ToString(&query) +
            "' referencing tables outside its scope " + in_scope.ToString());
      }
    }
  }
  if (node.name() == op::kJoin && node.inputs.size() == 2) {
    // The outer stream sees only the enclosing bindings; the inner stream
    // additionally sees the outer's tables (§4.4 sideways information
    // passing).
    STARBURST_RETURN_NOT_OK(Check(*node.inputs[0], query, bound));
    return Check(*node.inputs[1], query,
                 bound.Union(node.inputs[0]->props.tables()));
  }
  for (const PlanPtr& in : node.inputs) {
    STARBURST_RETURN_NOT_OK(Check(*in, query, bound));
  }
  return Status::OK();
}

}  // namespace

Status ValidatePlan(const PlanOp& root, const Query& query) {
  // A complete plan must be self-contained at the top: every predicate it
  // claims to have applied is over tables it produces.
  for (int id : root.props.preds().ToVector()) {
    if (!root.props.tables().ContainsAll(query.predicate(id).quantifiers)) {
      return Status::InvalidArgument(
          "plan applies predicate '" + query.predicate(id).ToString(&query) +
          "' over tables it does not produce");
    }
  }
  return Check(root, query, QuantifierSet{});
}

}  // namespace starburst
