#include "plan/plan.h"

#include <algorithm>
#include <set>

namespace starburst {

namespace {
void CountNodesRec(const PlanOp* node, std::set<const PlanOp*>* seen) {
  if (!seen->insert(node).second) return;
  for (const PlanPtr& in : node->inputs) CountNodesRec(in.get(), seen);
}
}  // namespace

int PlanOp::CountNodes() const {
  std::set<const PlanOp*> seen;
  CountNodesRec(this, &seen);
  return static_cast<int>(seen.size());
}

Result<PlanPtr> PlanFactory::Make(const std::string& op_name,
                                  std::string flavor,
                                  std::vector<PlanPtr> inputs,
                                  OpArgs args) const {
  auto def = registry_.Find(op_name);
  if (!def.ok()) return def.status();
  const OperatorDef* op = def.value();

  int n = static_cast<int>(inputs.size());
  if (n < op->min_inputs || n > op->max_inputs) {
    return Status::InvalidArgument(
        op->name + " takes " + std::to_string(op->min_inputs) + ".." +
        std::to_string(op->max_inputs) + " inputs, got " + std::to_string(n));
  }
  if (!op->flavors.empty() &&
      std::find(op->flavors.begin(), op->flavors.end(), flavor) ==
          op->flavors.end()) {
    return Status::InvalidArgument("unknown flavor '" + flavor + "' of " +
                                   op->name);
  }
  for (const PlanPtr& in : inputs) {
    if (in == nullptr) {
      return Status::InvalidArgument(op->name + " got a null input plan");
    }
  }

  OpContext ctx{query_, cost_model_, flavor, args, {}};
  ctx.inputs.reserve(inputs.size());
  for (const PlanPtr& in : inputs) ctx.inputs.push_back(&in->props);

  auto props = op->property_fn(ctx);
  if (!props.ok()) return props.status();

  auto node = std::make_shared<PlanOp>();
  node->op = op;
  node->flavor = std::move(flavor);
  node->inputs = std::move(inputs);
  node->args = std::move(args);
  node->props = std::move(props).value();
  node->id = nodes_created_.fetch_add(1, std::memory_order_relaxed) + 1;
  return PlanPtr(std::move(node));
}

}  // namespace starburst
