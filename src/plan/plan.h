#ifndef STARBURST_PLAN_PLAN_H_
#define STARBURST_PLAN_PLAN_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "plan/operator.h"

namespace starburst {

/// One node of a query evaluation plan (QEP, paper §2.1): a LOLEPOP
/// reference with its flavor, arguments, input plans, and the property
/// vector computed by the operator's property function at construction.
/// Nodes are immutable and shared — alternative plans reuse common subplans
/// ("Alternative plans may incorporate the same plan fragment", §1).
struct PlanOp {
  const OperatorDef* op = nullptr;
  std::string flavor;
  std::vector<PlanPtr> inputs;
  OpArgs args;
  PropertyVector props;
  /// Creation sequence number within the factory (1-based): a stable,
  /// human-readable identity for traces ("#17 JOIN(MG)"); 0 for nodes built
  /// outside a factory.
  int64_t id = 0;

  const std::string& name() const { return op->name; }

  /// "JOIN(MG)" / "ACCESS(index)" / "SORT".
  std::string Label() const {
    return flavor.empty() ? op->name : op->name + "(" + flavor + ")";
  }

  /// Total number of nodes in the DAG, counting shared nodes once.
  int CountNodes() const;
};

/// Builds plan nodes: looks up the operator, validates arity/flavor, runs
/// the property function, and returns the immutable node. The factory is the
/// single place plans come to life — the STAR engine, Glue, and the baseline
/// optimizer all construct through it, so every plan always carries a
/// consistent property vector.
class PlanFactory {
 public:
  PlanFactory(const Query& query, const CostModel& cost_model,
              const OperatorRegistry& registry)
      : query_(query), cost_model_(cost_model), registry_(registry) {}

  Result<PlanPtr> Make(const std::string& op_name, std::string flavor,
                       std::vector<PlanPtr> inputs, OpArgs args) const;

  const Query& query() const { return query_; }
  const CostModel& cost_model() const { return cost_model_; }
  const OperatorRegistry& registry() const { return registry_; }

  /// Number of plan nodes constructed through this factory (optimizer
  /// effort metric used by the benchmarks).
  int64_t nodes_created() const {
    return nodes_created_.load(std::memory_order_relaxed);
  }

 private:
  const Query& query_;
  const CostModel& cost_model_;
  const OperatorRegistry& registry_;
  // Atomic so parallel enumeration workers can construct plans through the
  // shared factory; ids stay unique but their order reflects scheduling.
  mutable std::atomic<int64_t> nodes_created_{0};
};

}  // namespace starburst

#endif  // STARBURST_PLAN_PLAN_H_
