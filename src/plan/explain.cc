#include "plan/explain.h"

#include "common/strings.h"
#include "obs/profiler.h"
#include "plan/operator.h"
#include "query/query.h"

namespace starburst {

namespace {

std::string ColsToString(const std::vector<ColumnRef>& cols,
                         const Query& query) {
  return "{" + StrJoinMapped(cols, ",", [&](ColumnRef c) {
           return query.ColumnName(c);
         }) +
         "}";
}

std::string PredsToString(PredSet preds, const Query& query) {
  return "{" + StrJoinMapped(preds.ToVector(), ", ", [&](int id) {
           return query.predicate(id).ToString(&query);
         }) +
         "}";
}

std::string ArgsSummary(const PlanOp& node, const Query& query) {
  std::string out;
  const OpArgs& args = node.args;
  if (args.Has(arg::kQuantifier)) {
    int q = static_cast<int>(args.GetInt(arg::kQuantifier));
    out += " " + query.quantifier(q).alias;
  }
  if (args.Has(arg::kIndex)) out += " via " + args.GetString(arg::kIndex);
  if (args.Has(arg::kTempName)) out += " as " + args.GetString(arg::kTempName);
  if (args.Has(arg::kCols)) {
    out += " cols=" + ColsToString(args.GetColumns(arg::kCols), query);
  }
  if (args.Has(arg::kOrder)) {
    out += " order=" + ColsToString(args.GetColumns(arg::kOrder), query);
  }
  if (args.Has(arg::kIndexOn)) {
    out += " index_on=" + ColsToString(args.GetColumns(arg::kIndexOn), query);
  }
  if (args.Has(arg::kSite)) {
    out += " to " +
           query.catalog().site_name(
               static_cast<SiteId>(args.GetInt(arg::kSite)));
  }
  if (args.Has(arg::kPreds) && !args.GetPreds(arg::kPreds).empty()) {
    out += " preds=" + PredsToString(args.GetPreds(arg::kPreds), query);
  }
  if (args.Has(arg::kJoinPreds)) {
    out += " on=" + PredsToString(args.GetPreds(arg::kJoinPreds), query);
  }
  if (args.Has(arg::kResidualPreds) &&
      !args.GetPreds(arg::kResidualPreds).empty()) {
    out += " residual=" +
           PredsToString(args.GetPreds(arg::kResidualPreds), query);
  }
  return out;
}

std::string PropsSummary(const PlanOp& node, const Query& query) {
  const PropertyVector& p = node.props;
  std::string out = "  [card=" + FormatDouble(p.card()) +
                    " cost=" + FormatDouble(query.catalog().num_sites() > 0
                                                ? TotalCost(p.cost())
                                                : 0.0);
  SortOrder order = p.order();
  if (!order.empty()) {
    out += " order=(" + StrJoinMapped(order, ",", [&](ColumnRef c) {
             return query.ColumnName(c);
           }) +
           ")";
  }
  if (query.catalog().num_sites() > 1) {
    out += " site=" + query.catalog().site_name(p.site());
  }
  if (p.temp()) out += " temp";
  return out + "]";
}

std::string AnalyzeSummary(const PlanOp& node, const PlanRunStats& stats) {
  auto it = stats.find(&node);
  if (it == stats.end()) {
    return "  [actual: never executed]";
  }
  const OpRunStats& s = it->second;
  double actual = s.invocations > 0
                      ? static_cast<double>(s.rows) /
                            static_cast<double>(s.invocations)
                      : 0.0;
  double est = node.props.card();
  std::string qerr;
  if (actual == 0.0 && est == 0.0) {
    qerr = "1";
  } else if (actual == 0.0 || est == 0.0) {
    qerr = "inf";
  } else {
    qerr = FormatDouble(actual > est ? actual / est : est / actual);
  }
  std::string out = "  [actual rows=" + FormatDouble(actual) +
                    " (est=" + FormatDouble(est) + ", q-err=" + qerr + ")";
  if (s.invocations != 1) {
    out += " loops=" + std::to_string(s.invocations);
  }
  if (s.batches > 0) {
    out += " batches=" + std::to_string(s.batches);
  }
  out += " time=" + FormatDouble(s.wall_micros) + "us]";
  return out;
}

std::string FormatBytes(int64_t bytes) {
  if (bytes >= 1024 * 1024) {
    return FormatDouble(static_cast<double>(bytes) / (1024.0 * 1024.0)) +
           "MiB";
  }
  if (bytes >= 1024) {
    return FormatDouble(static_cast<double>(bytes) / 1024.0) + "KiB";
  }
  return std::to_string(bytes) + "B";
}

std::string ProfileSummary(const PlanOp& node, const ExecProfile& profile,
                           double total_micros) {
  const OpProfile* p = profile.find(&node);
  if (p == nullptr) return "  [profile: never executed]";
  std::string out = "  [time=" + FormatDouble(p->total_micros()) + "us";
  if (total_micros > 0.0) {
    out += " (" +
           FormatDouble(100.0 * p->total_micros() / total_micros) +
           "% of total)";
  }
  out += " rows=" + std::to_string(p->rows_out);
  if (p->opens != 1) out += " opens=" + std::to_string(p->opens);
  if (p->peak_bytes > 0) out += " mem=" + FormatBytes(p->peak_bytes);
  if (p->hash_build_rows > 0 || p->hash_probes > 0) {
    out += " hash(build=" + std::to_string(p->hash_build_rows) +
           " groups=" + std::to_string(p->hash_groups) +
           " probes=" + std::to_string(p->hash_probes);
    if (p->hash_chain_steps > 0) {
      out += " chain=" + std::to_string(p->hash_chain_steps);
    }
    out += ")";
  }
  if (p->sort_rows > 0) {
    out += " sort(rows=" + std::to_string(p->sort_rows) +
           " bytes=" + FormatBytes(p->sort_bytes) + ")";
  }
  if (p->pred_evals > 0) {
    out += " pred(evals=" + std::to_string(p->pred_evals) +
           " steps=" + std::to_string(p->pred_steps) + ")";
  }
  if (p->kernel_rows > 0 || p->kernel_fallbacks > 0) {
    out += " KERNEL[fused=" + std::to_string(p->kernel_rows) +
           " fallback=" + std::to_string(p->kernel_fallbacks) + "]";
  }
  if (p->exchange_workers > 1) {
    out += std::string(" ") + op::kXchg + "[workers=" +
           std::to_string(p->exchange_workers) + "]";
  }
  if (p->spill_runs > 0) {
    out += " SPILL[runs=" + std::to_string(p->spill_runs) +
           " bytes=" + FormatBytes(p->spill_bytes) + "]";
  }
  return out + "]";
}

void ExplainRec(const PlanOp& node, const Query& query,
                const ExplainOptions& options, int depth, double total_micros,
                std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.Label();
  if (options.show_args) *out += ArgsSummary(node, query);
  if (options.show_properties) *out += PropsSummary(node, query);
  if (options.analyze && options.run_stats != nullptr) {
    *out += AnalyzeSummary(node, *options.run_stats);
  }
  if (options.profile != nullptr) {
    *out += ProfileSummary(node, *options.profile, total_micros);
  }
  *out += "\n";
  for (const PlanPtr& in : node.inputs) {
    ExplainRec(*in, query, options, depth + 1, total_micros, out);
  }
}

}  // namespace

std::string ExplainPlan(const PlanOp& root, const Query& query,
                        const ExplainOptions& options) {
  std::string out;
  double total_micros = 0.0;
  if (options.profile != nullptr) {
    // "% of total" is relative to the root's inclusive tree time.
    const OpProfile* p = options.profile->find(&root);
    if (p != nullptr) total_micros = p->total_micros();
  }
  ExplainRec(root, query, options, 0, total_micros, &out);
  if (options.profile != nullptr) {
    out += "peak memory: " +
           std::to_string(options.profile->memory().peak_bytes()) +
           " bytes\n";
  }
  return out;
}

std::string PlanSignature(const PlanOp& root) {
  std::string out = root.Label();
  if (root.args.Has(arg::kQuantifier)) {
    out += "#q" + std::to_string(root.args.GetInt(arg::kQuantifier));
  }
  if (root.args.Has(arg::kPreds)) {
    out += "#p" + std::to_string(root.args.GetPreds(arg::kPreds).mask());
  }
  if (root.args.Has(arg::kJoinPreds)) {
    out += "#j" + std::to_string(root.args.GetPreds(arg::kJoinPreds).mask());
  }
  if (root.args.Has(arg::kOrder)) {
    out += "#o" + StrJoinMapped(root.args.GetColumns(arg::kOrder), ".",
                                [](ColumnRef c) {
                                  return std::to_string(c.quantifier) + "_" +
                                         std::to_string(c.column);
                                });
  }
  if (root.args.Has(arg::kSite)) {
    out += "#s" + std::to_string(root.args.GetInt(arg::kSite));
  }
  if (root.args.Has(arg::kIndex)) out += "#i" + root.args.GetString(arg::kIndex);
  if (root.inputs.empty()) return out;
  out += "(";
  bool first = true;
  for (const PlanPtr& in : root.inputs) {
    if (!first) out += ",";
    first = false;
    out += PlanSignature(*in);
  }
  return out + ")";
}

}  // namespace starburst
