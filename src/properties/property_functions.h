#ifndef STARBURST_PROPERTIES_PROPERTY_FUNCTIONS_H_
#define STARBURST_PROPERTIES_PROPERTY_FUNCTIONS_H_

#include "plan/operator.h"

namespace starburst {

/// Registers the paper's built-in LOLEPOPs — ACCESS (heap / btree / index /
/// temp / temp-index flavors), GET, SORT, SHIP, STORE, JOIN (NL / MG / HA),
/// FILTER — with their property functions (paper §3.1). The run-time
/// executors live in exec/ and are registered separately, mirroring the
/// paper's split of "a run-time execution routine ... and a property
/// function" (§5).
Status RegisterBuiltinOperators(OperatorRegistry* registry);

/// Access paths available on quantifier `q`'s stored table: the B-tree
/// clustering order (if any) plus every secondary index, with columns
/// expressed as query-scope references.
AccessPathList BaseTablePaths(const Query& query, int q);

/// The subset of `candidates` a given index can apply: predicates of the
/// form `key_col op <expr free of q>` where the referenced key columns form
/// a prefix of the index key — equality on every prefix column, at most one
/// trailing range (paper §1: "a multi-column index can apply one or more
/// predicates only if the columns referenced ... form a prefix").
PredSet IndexEligiblePreds(const Query& query, int q,
                           const std::vector<ColumnRef>& key_columns,
                           PredSet candidates);

/// Helper: the ordered key of `path` satisfies `required` order (prefix
/// test, paper's "order ⊑ a").
bool PathSatisfiesOrder(const AccessPath& path, const SortOrder& required);

/// Helper: set from an ordered column list.
ColumnSet ToColumnSet(const std::vector<ColumnRef>& cols);

}  // namespace starburst

#endif  // STARBURST_PROPERTIES_PROPERTY_FUNCTIONS_H_
