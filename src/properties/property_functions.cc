#include "properties/property_functions.h"

#include <algorithm>
#include <cmath>

#include "cost/cost_model.h"
#include "cost/selectivity.h"
#include "query/query.h"

namespace starburst {

namespace {

/// True if `e` is a bare reference to column `c`.
bool IsColumn(const ExprPtr& e, ColumnRef c) {
  return e->IsBareColumn() && e->column() == c;
}

/// Predicates in `preds` that reference column `c` on one side with the
/// other side free of quantifier `q` (so the index key can be probed with a
/// value computable before scanning `q`). Returns (eq_preds, range_preds).
std::pair<PredSet, PredSet> KeyColumnPreds(const Query& query, int q,
                                           ColumnRef c, PredSet preds) {
  PredSet eq, range;
  for (int id : preds.ToVector()) {
    const Predicate& p = query.predicate(id);
    const ExprPtr* other = nullptr;
    if (IsColumn(p.lhs, c)) {
      other = &p.rhs;
    } else if (IsColumn(p.rhs, c)) {
      other = &p.lhs;
    } else {
      continue;
    }
    // Other side must not reference q itself (e.g. EMP.A = EMP.B cannot be
    // applied as an index key probe).
    bool refs_q = false;
    for (const ColumnRef& oc : (*other)->Columns()) {
      if (oc.quantifier == q) refs_q = true;
    }
    if (refs_q) continue;
    if (p.op == CompareOp::kEq) {
      eq.Insert(id);
    } else if (p.op != CompareOp::kNe) {
      range.Insert(id);
    }
  }
  return {eq, range};
}

}  // namespace

ColumnSet ToColumnSet(const std::vector<ColumnRef>& cols) {
  return ColumnSet(cols.begin(), cols.end());
}

AccessPathList BaseTablePaths(const Query& query, int q) {
  AccessPathList out;
  const TableDef& table = query.table_of(q);
  auto refs = [q](const std::vector<int>& ordinals) {
    std::vector<ColumnRef> cols;
    cols.reserve(ordinals.size());
    for (int ord : ordinals) cols.push_back(ColumnRef{q, ord});
    return cols;
  };
  if (table.storage == StorageKind::kBTree) {
    AccessPath p;
    p.name = "<btree:" + table.name + ">";
    p.columns = refs(table.btree_key);
    out.push_back(std::move(p));
  }
  for (const IndexDef& ix : table.indexes) {
    AccessPath p;
    p.name = ix.name;
    p.columns = refs(ix.key_columns);
    out.push_back(std::move(p));
  }
  return out;
}

PredSet IndexEligiblePreds(const Query& query, int q,
                           const std::vector<ColumnRef>& key_columns,
                           PredSet candidates) {
  PredSet out;
  for (const ColumnRef& key : key_columns) {
    auto [eq, range] = KeyColumnPreds(query, q, key, candidates);
    out = out.Union(eq);
    if (eq.empty()) {
      // No equality on this prefix column: at most a trailing range applies,
      // then the prefix stops.
      out = out.Union(range);
      break;
    }
  }
  return out;
}

bool PathSatisfiesOrder(const AccessPath& path, const SortOrder& required) {
  return OrderSatisfies(path.columns, required);
}

namespace {

// --------------------------------------------------------------------------
// ACCESS
// --------------------------------------------------------------------------

Result<PropertyVector> AccessProperties(const OpContext& ctx) {
  const Query& query = ctx.query;
  const CostModel& cm = ctx.cost_model;
  PropertyVector out;

  if (ctx.flavor == flavor::kTemp || ctx.flavor == flavor::kTempIndex) {
    if (ctx.inputs.size() != 1) {
      return Status::InvalidArgument("temp ACCESS needs a stored input");
    }
    const PropertyVector& in = *ctx.inputs[0];
    if (!in.temp()) {
      return Status::InvalidArgument("temp ACCESS over a non-temp input");
    }
    PredSet preds = ctx.args.GetPreds(arg::kPreds);
    PredSet all_preds = in.preds().Union(preds);
    double sel = CombinedSelectivity(query, preds, in.preds());
    double card = in.card() * sel;
    double width = cm.RowWidth(query, in.cols());

    out.set_tables(in.tables());
    out.set_cols(in.cols());
    out.set_preds(all_preds);
    out.set_site(in.site());
    out.set_temp(true);
    out.set_paths(in.paths());
    out.set_card(card);
    if (ctx.flavor == flavor::kTempIndex) {
      // Probe the dynamic index built by STORE.
      AccessPathList paths = in.paths();
      const AccessPath* dyn = nullptr;
      for (const AccessPath& p : paths) {
        if (p.dynamic) dyn = &p;
      }
      if (dyn == nullptr) {
        return Status::InvalidArgument(
            "temp-index ACCESS needs a dynamic path on its input");
      }
      Cost probe = cm.IndexProbeCost(in.card(), card);
      probe += cm.PredicateCost(card, preds.size());
      out.set_order(dyn->columns);
      out.set_cost(in.cost() + probe);
      out.set_rescan(probe);
    } else {
      Cost scan = cm.TempScanCost(in.card(), width);
      scan += cm.PredicateCost(in.card(), preds.size());
      out.set_order(in.order());
      out.set_cost(in.cost() + scan);
      out.set_rescan(scan);
    }
    return out;
  }

  // Base-table flavors.
  if (!ctx.inputs.empty()) {
    return Status::InvalidArgument("base ACCESS takes no plan inputs");
  }
  int q = static_cast<int>(ctx.args.GetInt(arg::kQuantifier, -1));
  if (q < 0 || q >= query.num_quantifiers()) {
    return Status::InvalidArgument("ACCESS needs a valid quantifier arg");
  }
  const TableDef& table = query.table_of(q);
  std::vector<ColumnRef> cols = ctx.args.GetColumns(arg::kCols);
  PredSet preds = ctx.args.GetPreds(arg::kPreds);
  double sel = CombinedSelectivity(query, preds);
  double card = table.row_count * sel;

  out.set_tables(QuantifierSet::Single(q));
  out.set_cols(ToColumnSet(cols));
  out.set_preds(preds);
  out.set_site(static_cast<SiteId>(table.site));
  out.set_temp(false);
  out.set_paths(BaseTablePaths(query, q));
  out.set_card(card);

  auto key_refs = [&](const std::vector<int>& ordinals) {
    std::vector<ColumnRef> refs;
    for (int ord : ordinals) refs.push_back(ColumnRef{q, ord});
    return refs;
  };

  if (ctx.flavor == flavor::kHeap) {
    if (table.storage != StorageKind::kHeap) {
      return Status::InvalidArgument("heap ACCESS of non-heap table '" +
                                     table.name + "'");
    }
    Cost c = cm.ScanCost(table) + cm.PredicateCost(table.row_count,
                                                   preds.size());
    out.set_order(SortOrder{});
    out.set_cost(c);
    out.set_rescan(c);
  } else if (ctx.flavor == flavor::kBTree) {
    if (table.storage != StorageKind::kBTree) {
      return Status::InvalidArgument("btree ACCESS of non-btree table '" +
                                     table.name + "'");
    }
    std::vector<ColumnRef> key = key_refs(table.btree_key);
    PredSet key_preds = IndexEligiblePreds(query, q, key, preds);
    double key_sel = CombinedSelectivity(query, key_preds);
    Cost c = cm.BTreeAccessCost(table, key_sel);
    c += cm.PredicateCost(table.row_count * key_sel,
                          preds.Minus(key_preds).size());
    out.set_order(key);
    out.set_cost(c);
    out.set_rescan(c);
  } else if (ctx.flavor == flavor::kIndex) {
    std::string index_name = ctx.args.GetString(arg::kIndex);
    const IndexDef* ix = nullptr;
    for (const IndexDef& cand : table.indexes) {
      if (cand.name == index_name) ix = &cand;
    }
    if (ix == nullptr) {
      return Status::NotFound("no index '" + index_name + "' on '" +
                              table.name + "'");
    }
    std::vector<ColumnRef> key = key_refs(ix->key_columns);
    PredSet key_preds = IndexEligiblePreds(query, q, key, preds);
    if (!preds.Minus(key_preds).empty()) {
      return Status::InvalidArgument(
          "index ACCESS may only apply key-prefix predicates");
    }
    double key_sel = CombinedSelectivity(query, key_preds);
    Cost c = cm.IndexScanCost(table, *ix, key_sel, card);
    out.set_order(key);
    out.set_cost(c);
    out.set_rescan(c);
  } else {
    return Status::InvalidArgument("unknown ACCESS flavor '" + ctx.flavor +
                                   "'");
  }
  return out;
}

// --------------------------------------------------------------------------
// GET: fetch additional columns of a stored table via TIDs in the stream.
// --------------------------------------------------------------------------

Result<PropertyVector> GetProperties(const OpContext& ctx) {
  const Query& query = ctx.query;
  const CostModel& cm = ctx.cost_model;
  const PropertyVector& in = *ctx.inputs[0];

  int q = static_cast<int>(ctx.args.GetInt(arg::kQuantifier, -1));
  if (q < 0 || q >= query.num_quantifiers()) {
    return Status::InvalidArgument("GET needs a valid quantifier arg");
  }
  ColumnRef tid{q, ColumnRef::kTidColumn};
  if (!in.cols().count(tid)) {
    return Status::InvalidArgument("GET input must carry the TID of q" +
                                   std::to_string(q));
  }
  std::vector<ColumnRef> fetch = ctx.args.GetColumns(arg::kCols);
  PredSet preds = ctx.args.GetPreds(arg::kPreds);

  ColumnSet cols = in.cols();
  for (const ColumnRef& c : fetch) cols.insert(c);

  double sel = CombinedSelectivity(query, preds, in.preds());
  double card = in.card() * sel;

  // A TID-ordered input stream sequentializes the data-page accesses
  // (the paper's TID-sort strategy).
  SortOrder in_order = in.order();
  Cost step = (!in_order.empty() && in_order[0] == tid)
                  ? cm.SortedFetchCost(in.card(),
                                       query.table_of(q).data_pages)
                  : cm.FetchCost(in.card());
  step += cm.PredicateCost(in.card(), preds.Minus(in.preds()).size());

  PropertyVector out;
  out.set_tables(in.tables());
  out.set_cols(std::move(cols));
  out.set_preds(in.preds().Union(preds));
  out.set_order(in.order());
  out.set_site(in.site());
  out.set_temp(in.temp());
  out.set_paths(in.paths());
  out.set_card(card);
  out.set_cost(in.cost() + step);
  out.set_rescan(in.rescan() + step);
  return out;
}

// --------------------------------------------------------------------------
// SORT
// --------------------------------------------------------------------------

Result<PropertyVector> SortProperties(const OpContext& ctx) {
  const CostModel& cm = ctx.cost_model;
  const PropertyVector& in = *ctx.inputs[0];
  std::vector<ColumnRef> order = ctx.args.GetColumns(arg::kOrder);
  if (order.empty()) {
    return Status::InvalidArgument("SORT needs a non-empty order arg");
  }
  for (const ColumnRef& c : order) {
    if (!in.cols().count(c)) {
      return Status::InvalidArgument("SORT key column not in input stream");
    }
  }
  double width = cm.RowWidth(ctx.query, in.cols());

  PropertyVector out;
  out.set_tables(in.tables());
  out.set_cols(in.cols());
  out.set_preds(in.preds());
  out.set_order(order);
  out.set_site(in.site());
  out.set_temp(in.temp());
  out.set_paths(in.paths());
  out.set_card(in.card());
  out.set_cost(in.cost() + cm.SortCost(in.card(), width));
  // The sorted result is held (in memory or a spill file); a rescan re-reads
  // it rather than re-sorting.
  out.set_rescan(cm.TempScanCost(in.card(), width));
  return out;
}

// --------------------------------------------------------------------------
// SHIP
// --------------------------------------------------------------------------

Result<PropertyVector> ShipProperties(const OpContext& ctx) {
  const CostModel& cm = ctx.cost_model;
  const PropertyVector& in = *ctx.inputs[0];
  SiteId site = static_cast<SiteId>(ctx.args.GetInt(arg::kSite, -1));
  if (site < 0 || site >= ctx.query.catalog().num_sites()) {
    return Status::InvalidArgument("SHIP needs a valid site arg");
  }
  double width = cm.RowWidth(ctx.query, in.cols());

  PropertyVector out;
  out.set_tables(in.tables());
  out.set_cols(in.cols());
  out.set_preds(in.preds());
  out.set_order(in.order());
  out.set_site(site);
  out.set_temp(false);
  out.set_paths(in.paths());
  out.set_card(in.card());
  if (site == in.site()) {
    out.set_cost(in.cost());
    out.set_rescan(in.rescan());
  } else {
    out.set_cost(in.cost() + cm.ShipCost(in.card(), width));
    // The receiving site buffers the stream; rescans re-read locally.
    out.set_rescan(cm.TempScanCost(in.card(), width));
  }
  return out;
}

// --------------------------------------------------------------------------
// STORE: materialize a stream as a temp, optionally building a dynamic
// index (paper §4.5.3: Glue creates "a compact index on a stored table").
// --------------------------------------------------------------------------

Result<PropertyVector> StoreProperties(const OpContext& ctx) {
  const CostModel& cm = ctx.cost_model;
  const PropertyVector& in = *ctx.inputs[0];
  double width = cm.RowWidth(ctx.query, in.cols());

  PropertyVector out;
  out.set_tables(in.tables());
  out.set_cols(in.cols());
  out.set_preds(in.preds());
  out.set_order(in.order());
  out.set_site(in.site());
  out.set_temp(true);
  out.set_card(in.card());

  Cost c = in.cost() + cm.StoreCost(in.card(), width);
  AccessPathList paths;
  std::vector<ColumnRef> index_on = ctx.args.GetColumns(arg::kIndexOn);
  if (!index_on.empty()) {
    for (const ColumnRef& col : index_on) {
      if (!in.cols().count(col)) {
        return Status::InvalidArgument("STORE index key not in input stream");
      }
    }
    AccessPath p;
    p.name = "<dynamic:" + ctx.args.GetString(arg::kTempName) + ">";
    p.columns = index_on;
    p.dynamic = true;
    paths.push_back(std::move(p));
    ColumnSet key_cols = ToColumnSet(index_on);
    c += cm.IndexBuildCost(in.card(), cm.RowWidth(ctx.query, key_cols));
  }
  out.set_paths(std::move(paths));
  out.set_cost(c);
  out.set_rescan(cm.TempScanCost(in.card(), width));
  return out;
}

// --------------------------------------------------------------------------
// JOIN: NL, MG, HA flavors (paper §4.4, §4.5.1).
// --------------------------------------------------------------------------

Result<PropertyVector> JoinProperties(const OpContext& ctx) {
  const Query& query = ctx.query;
  const CostModel& cm = ctx.cost_model;
  const PropertyVector& outer = *ctx.inputs[0];
  const PropertyVector& inner = *ctx.inputs[1];

  if (outer.site() != inner.site()) {
    return Status::InvalidArgument(
        "JOIN requires both input streams at the same site (paper §3.2)");
  }
  if (outer.tables().Intersects(inner.tables())) {
    return Status::InvalidArgument("JOIN inputs overlap in tables");
  }
  PredSet join_preds = ctx.args.GetPreds(arg::kJoinPreds);
  PredSet residual = ctx.args.GetPreds(arg::kResidualPreds);

  QuantifierSet tables = outer.tables().Union(inner.tables());
  for (int id : join_preds.Union(residual).ToVector()) {
    if (!IsEligible(query.predicate(id), tables)) {
      return Status::InvalidArgument("JOIN predicate not eligible on inputs");
    }
  }

  PredSet applied = outer.preds().Union(inner.preds());
  PredSet new_preds = join_preds.Union(residual).Minus(applied);
  // Output cardinality is computed from relational content — base row
  // counts times the selectivity of every predicate applied anywhere in the
  // plan — so it is invariant under how the inputs chose to apply them
  // (pushed-down, semijoin-reduced, residual, ...). Input cards still drive
  // the *cost* formulas below.
  PredSet all_preds = applied.Union(join_preds).Union(residual);
  double card = CombinedSelectivity(query, all_preds);
  for (int q : tables.ToVector()) {
    card *= std::max(1.0, query.table_of(q).row_count);
  }

  ColumnSet cols = outer.cols();
  {
    ColumnSet ic = inner.cols();
    cols.insert(ic.begin(), ic.end());
  }
  AccessPathList paths = outer.paths();
  {
    AccessPathList ip = inner.paths();
    paths.insert(paths.end(), ip.begin(), ip.end());
  }

  PropertyVector out;
  out.set_tables(tables);
  out.set_cols(std::move(cols));
  out.set_preds(applied.Union(join_preds).Union(residual));
  out.set_site(outer.site());
  out.set_temp(false);
  out.set_paths(std::move(paths));
  out.set_card(card);

  Cost c = outer.cost();
  if (ctx.flavor == flavor::kNL) {
    // Each outer tuple (re)scans the inner stream; the converted join
    // predicates were pushed into the inner by Glue, so inner.card is the
    // expected matches per outer tuple and inner.rescan the per-tuple cost
    // ([MACK 86] nested-loop equations). The inner is evaluated lazily —
    // with an expected outer cardinality below one it usually never runs.
    c += inner.cost() * std::min(1.0, outer.card());
    c += inner.rescan() * std::max(0.0, outer.card() - 1.0);
    double pairs = outer.card() * inner.card();
    c += cm.PredicateCost(pairs, new_preds.size());
    c += cm.OutputCost(card);
    out.set_order(outer.order());
  } else if (ctx.flavor == flavor::kMG) {
    c += inner.cost();
    // Inputs must arrive ordered on *corresponding* columns: the leading
    // sort columns of the two inputs must be linked by an equality join
    // predicate (the key the run-time merge advances on). The JMeth STAR
    // guarantees this via [order = χ(SP) ∩ χ(T)]; anything else — e.g. a
    // transformational rewrite that commuted differently-ordered inputs —
    // is rejected so the cost model never prices a merge that could not
    // run as one.
    SortOrder oorder = outer.order();
    SortOrder iorder = inner.order();
    if (oorder.empty() || iorder.empty()) {
      return Status::InvalidArgument("merge JOIN requires ordered inputs");
    }
    bool linked = false;
    for (int id : join_preds.ToVector()) {
      const Predicate& p = query.predicate(id);
      if (p.op != CompareOp::kEq || !p.lhs->IsBareColumn() ||
          !p.rhs->IsBareColumn()) {
        continue;
      }
      ColumnRef a = p.lhs->column(), b = p.rhs->column();
      if ((a == oorder[0] && b == iorder[0]) ||
          (b == oorder[0] && a == iorder[0])) {
        linked = true;
        break;
      }
    }
    if (!linked) {
      return Status::InvalidArgument(
          "merge JOIN inputs are not ordered on a common equality key");
    }
    double merge_sel = CombinedSelectivity(query, join_preds.Minus(applied));
    double candidates = outer.card() * inner.card() * merge_sel;
    Cost merge;
    merge.cpu = (outer.card() + inner.card()) * cm.params().cpu_per_compare;
    c += merge;
    c += cm.PredicateCost(candidates, residual.Minus(applied).size());
    c += cm.OutputCost(card);
    out.set_order(outer.order());
  } else if (ctx.flavor == flavor::kHA) {
    c += inner.cost();
    double hash_sel = CombinedSelectivity(query, join_preds.Minus(applied));
    double candidates = outer.card() * inner.card() * hash_sel;
    Cost hash;
    hash.cpu = (outer.card() + inner.card()) * cm.params().cpu_per_hash;
    double width_out = cm.RowWidth(query, outer.cols());
    double width_in = cm.RowWidth(query, inner.cols());
    double pages = cm.PagesFor(outer.card(), width_out) +
                   cm.PagesFor(inner.card(), width_in);
    if (pages > cm.params().sort_memory_pages) {
      hash.io = 2.0 * pages;  // partition both inputs to disk and re-read
    }
    c += hash;
    // All join predicates stay residual (hash collisions, §4.5.1): evaluate
    // them plus residuals on the colliding candidates.
    c += cm.PredicateCost(candidates, new_preds.size());
    c += cm.OutputCost(card);
    out.set_order(SortOrder{});  // bucketizing destroys order
  } else {
    return Status::InvalidArgument("unknown JOIN flavor '" + ctx.flavor +
                                   "'");
  }
  out.set_cost(c);
  out.set_rescan(c);  // composite rescan = recompute (composites get temped)
  return out;
}

// --------------------------------------------------------------------------
// TIDAND: intersect two TID streams over the same stored table (index
// ANDing, an omitted STAR of paper §4). Output carries only the TID, in TID
// order — which also sequentializes the subsequent GET.
// --------------------------------------------------------------------------

Result<PropertyVector> TidAndProperties(const OpContext& ctx) {
  const Query& query = ctx.query;
  const CostModel& cm = ctx.cost_model;
  const PropertyVector& a = *ctx.inputs[0];
  const PropertyVector& b = *ctx.inputs[1];

  if (a.tables() != b.tables() || a.tables().size() != 1) {
    return Status::InvalidArgument(
        "TIDAND requires two streams over the same single table");
  }
  int q = a.tables().First();
  ColumnRef tid{q, ColumnRef::kTidColumn};
  if (!a.cols().count(tid) || !b.cols().count(tid)) {
    return Status::InvalidArgument("TIDAND inputs must both carry the TID");
  }
  if (a.site() != b.site()) {
    return Status::InvalidArgument("TIDAND inputs must be co-located");
  }
  double rows = std::max(1.0, query.table_of(q).row_count);
  // Independence: |A ∩ B| = |A| * |B| / N.
  double card = a.card() * b.card() / rows;

  PropertyVector out;
  out.set_tables(a.tables());
  out.set_cols(ColumnSet{tid});
  out.set_preds(a.preds().Union(b.preds()));
  out.set_order(SortOrder{tid});
  out.set_site(a.site());
  out.set_temp(false);
  out.set_paths(a.paths());
  out.set_card(card);
  Cost c = a.cost() + b.cost();
  c += cm.SortCost(a.card(), 8.0);
  c += cm.SortCost(b.card(), 8.0);
  Cost merge;
  merge.cpu = (a.card() + b.card()) * cm.params().cpu_per_compare;
  c += merge;
  out.set_cost(c);
  out.set_rescan(c);
  return out;
}

// --------------------------------------------------------------------------
// PROJECT: column subset, optionally deduplicated — the semijoin reduction's
// "ship only the join columns" step (paper §4 filtration methods).
// --------------------------------------------------------------------------

Result<PropertyVector> ProjectProperties(const OpContext& ctx) {
  const Query& query = ctx.query;
  const CostModel& cm = ctx.cost_model;
  const PropertyVector& in = *ctx.inputs[0];
  std::vector<ColumnRef> keep = ctx.args.GetColumns(arg::kCols);
  if (keep.empty()) {
    return Status::InvalidArgument("PROJECT needs a non-empty column list");
  }
  ColumnSet kept(keep.begin(), keep.end());
  for (const ColumnRef& c : kept) {
    if (!in.cols().count(c)) {
      return Status::InvalidArgument("PROJECT column not in input stream");
    }
  }
  bool distinct = ctx.args.GetBool(arg::kDistinct, false);

  double card = in.card();
  Cost step = cm.OutputCost(in.card());
  if (distinct) {
    // Distinct values of the kept columns bound the output.
    double domain = 1.0;
    for (const ColumnRef& c : kept) {
      domain *= c.is_tid() ? in.card()
                           : std::max(1.0, query.column_def(c).distinct_values);
    }
    card = std::min(in.card(), domain);
    Cost dedup;
    dedup.cpu = in.card() * cm.params().cpu_per_hash;
    step += dedup;
  }

  // Order survives as long as its leading columns are kept.
  SortOrder order;
  for (const ColumnRef& c : in.order()) {
    if (!kept.count(c)) break;
    order.push_back(c);
  }

  PropertyVector out;
  out.set_tables(in.tables());
  out.set_cols(std::move(kept));
  out.set_preds(in.preds());
  out.set_order(std::move(order));
  out.set_site(in.site());
  out.set_temp(false);
  out.set_paths(in.paths());
  out.set_card(card);
  out.set_cost(in.cost() + step);
  out.set_rescan(in.rescan() + step);
  return out;
}

// --------------------------------------------------------------------------
// FILTERBY: semijoin / Bloomjoin reduction of a probe stream by a shipped
// filter stream. Both flavors mark the join predicates as applied (the
// enclosing JOIN re-checks them at run time, which also absorbs the Bloom
// filter's false positives); "bloom" costs less CPU per probe and allows a
// small cardinality inflation for collisions.
// --------------------------------------------------------------------------

Result<PropertyVector> FilterByProperties(const OpContext& ctx) {
  const Query& query = ctx.query;
  const CostModel& cm = ctx.cost_model;
  const PropertyVector& probe = *ctx.inputs[0];
  const PropertyVector& filter = *ctx.inputs[1];

  if (probe.site() != filter.site()) {
    return Status::InvalidArgument(
        "FILTERBY requires the filter to be shipped to the probe's site");
  }
  if (probe.tables().Intersects(filter.tables())) {
    return Status::InvalidArgument("FILTERBY inputs overlap in tables");
  }
  PredSet join_preds = ctx.args.GetPreds(arg::kJoinPreds);
  if (join_preds.empty()) {
    return Status::InvalidArgument("FILTERBY needs join predicates");
  }
  for (int id : join_preds.ToVector()) {
    if (!IsHashable(query.predicate(id), filter.tables(), probe.tables())) {
      return Status::InvalidArgument(
          "FILTERBY predicates must be hashable between filter and probe");
    }
  }
  const bool bloom = ctx.flavor == flavor::kBloom;
  // Semijoin selectivity: the fraction of the probe's join-key domain
  // covered by the filter's keys — NOT the per-pair join selectivity.
  double sel = 1.0;
  for (int id : join_preds.ToVector()) {
    const Predicate& p = query.predicate(id);
    const ExprPtr& probe_side =
        ColumnsWithin(p.lhs_columns, probe.tables()) ? p.lhs : p.rhs;
    double domain = 10.0;  // expression fallback
    if (probe_side->IsBareColumn() && !probe_side->column().is_tid()) {
      domain =
          std::max(1.0, query.column_def(probe_side->column()).distinct_values);
    }
    sel *= std::min(1.0, filter.card() / domain);
  }
  double fp_allowance = bloom ? 1.1 : 1.0;
  double card = std::min(probe.card(), probe.card() * sel * fp_allowance);

  Cost step;
  double per_probe = bloom ? cm.params().cpu_per_hash
                           : cm.params().cpu_per_hash * 2.0;
  step.cpu = filter.card() * cm.params().cpu_per_hash +  // build
             probe.card() * per_probe;                   // probe

  PropertyVector out;
  // The result is a *reduction of the probe stream*: relationally it still
  // covers only the probe's tables; the filter contributed no columns.
  out.set_tables(probe.tables());
  out.set_cols(probe.cols());
  out.set_preds(probe.preds().Union(join_preds));
  out.set_order(probe.order());
  out.set_site(probe.site());
  out.set_temp(false);
  out.set_paths(probe.paths());
  out.set_card(card);
  out.set_cost(probe.cost() + filter.cost() + step);
  out.set_rescan(probe.cost() + filter.cost() + step);
  return out;
}

// --------------------------------------------------------------------------
// FILTER: retrofit predicates onto an existing stream.
// --------------------------------------------------------------------------

Result<PropertyVector> FilterProperties(const OpContext& ctx) {
  const CostModel& cm = ctx.cost_model;
  const PropertyVector& in = *ctx.inputs[0];
  PredSet preds = ctx.args.GetPreds(arg::kPreds);
  PredSet new_preds = preds.Minus(in.preds());
  double sel = CombinedSelectivity(ctx.query, new_preds);
  Cost step = cm.PredicateCost(in.card(), new_preds.size());

  PropertyVector out;
  out.set_tables(in.tables());
  out.set_cols(in.cols());
  out.set_preds(in.preds().Union(preds));
  out.set_order(in.order());
  out.set_site(in.site());
  out.set_temp(in.temp());
  out.set_paths(in.paths());
  out.set_card(in.card() * sel);
  out.set_cost(in.cost() + step);
  out.set_rescan(in.rescan() + step);
  return out;
}

}  // namespace

Status RegisterBuiltinOperators(OperatorRegistry* registry) {
  OperatorDef access;
  access.name = op::kAccess;
  access.min_inputs = 0;
  access.max_inputs = 1;
  access.flavors = {flavor::kHeap, flavor::kBTree, flavor::kIndex,
                    flavor::kTemp, flavor::kTempIndex};
  access.property_fn = AccessProperties;
  STARBURST_RETURN_NOT_OK(registry->Register(std::move(access)));

  OperatorDef get;
  get.name = op::kGet;
  get.min_inputs = 1;
  get.max_inputs = 1;
  get.property_fn = GetProperties;
  STARBURST_RETURN_NOT_OK(registry->Register(std::move(get)));

  OperatorDef sort;
  sort.name = op::kSort;
  sort.min_inputs = 1;
  sort.max_inputs = 1;
  sort.property_fn = SortProperties;
  STARBURST_RETURN_NOT_OK(registry->Register(std::move(sort)));

  OperatorDef ship;
  ship.name = op::kShip;
  ship.min_inputs = 1;
  ship.max_inputs = 1;
  ship.property_fn = ShipProperties;
  STARBURST_RETURN_NOT_OK(registry->Register(std::move(ship)));

  OperatorDef store;
  store.name = op::kStore;
  store.min_inputs = 1;
  store.max_inputs = 1;
  store.property_fn = StoreProperties;
  STARBURST_RETURN_NOT_OK(registry->Register(std::move(store)));

  OperatorDef join;
  join.name = op::kJoin;
  join.min_inputs = 2;
  join.max_inputs = 2;
  join.flavors = {flavor::kNL, flavor::kMG, flavor::kHA};
  join.property_fn = JoinProperties;
  STARBURST_RETURN_NOT_OK(registry->Register(std::move(join)));

  OperatorDef filter;
  filter.name = op::kFilter;
  filter.min_inputs = 1;
  filter.max_inputs = 1;
  filter.property_fn = FilterProperties;
  STARBURST_RETURN_NOT_OK(registry->Register(std::move(filter)));

  OperatorDef tid_and;
  tid_and.name = op::kTidAnd;
  tid_and.min_inputs = 2;
  tid_and.max_inputs = 2;
  tid_and.property_fn = TidAndProperties;
  STARBURST_RETURN_NOT_OK(registry->Register(std::move(tid_and)));

  OperatorDef project;
  project.name = op::kProject;
  project.min_inputs = 1;
  project.max_inputs = 1;
  project.property_fn = ProjectProperties;
  STARBURST_RETURN_NOT_OK(registry->Register(std::move(project)));

  OperatorDef filter_by;
  filter_by.name = op::kFilterBy;
  filter_by.min_inputs = 2;
  filter_by.max_inputs = 2;
  filter_by.flavors = {flavor::kExact, flavor::kBloom};
  filter_by.property_fn = FilterByProperties;
  STARBURST_RETURN_NOT_OK(registry->Register(std::move(filter_by)));
  return Status::OK();
}

}  // namespace starburst
