#ifndef STARBURST_PROPERTIES_PROPERTY_H_
#define STARBURST_PROPERTIES_PROPERTY_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "catalog/catalog.h"
#include "common/id_set.h"
#include "common/status.h"
#include "cost/cost.h"
#include "query/expr.h"

namespace starburst {

class Query;

/// Identifier of a property in the property vector. The nine properties from
/// the paper's Figure 2 are built in; a Database Customizer can register more
/// (paper §5), and unregistered operators leave them unchanged by default.
using PropertyId = int;

namespace prop {
// Relational ("WHAT").
inline constexpr PropertyId kTables = 0;  ///< QuantifierSet accessed
inline constexpr PropertyId kCols = 1;    ///< ColumnSet accessed
inline constexpr PropertyId kPreds = 2;   ///< PredSet applied
// Physical ("HOW").
inline constexpr PropertyId kOrder = 3;  ///< SortOrder of the tuples
inline constexpr PropertyId kSite = 4;   ///< SiteId tuples are delivered to
inline constexpr PropertyId kTemp = 5;   ///< bool: materialized in a temp
inline constexpr PropertyId kPaths = 6;  ///< AccessPathList available
// Estimated ("HOW MUCH").
inline constexpr PropertyId kCard = 7;  ///< double: estimated tuples
inline constexpr PropertyId kCost = 8;  ///< Cost: estimated resources
/// Estimated cost of re-evaluating the stream once more (what a nested-loop
/// outer tuple pays to rescan the inner). Not in the paper's Figure 2 —
/// that list is explicitly "example properties" — but the NL cost equations
/// of [MACK 86] need it, and carrying it in the vector exercises the
/// paper's "just add a property" extensibility (§5).
inline constexpr PropertyId kRescan = 9;  ///< Cost

inline constexpr PropertyId kNumBuiltin = 10;
}  // namespace prop

/// Tuple ordering: the ordered list of columns the stream is sorted by
/// (paper Figure 2). Empty = unknown order.
using SortOrder = std::vector<ColumnRef>;

/// True if `required` is a prefix of `available` — the paper's
/// "order ⊑ a" test (§2.1).
bool OrderSatisfies(const SortOrder& available, const SortOrder& required);

/// One available access path on a (set of) tables: an ordered list of key
/// columns, per Figure 2. Paths come from catalog indexes, B-tree clustering,
/// or dynamically created indexes on temps (§4.5.3).
struct AccessPath {
  std::string name;          ///< index name, or "<btree>"/"<dynamic>"
  std::vector<ColumnRef> columns;
  bool dynamic = false;      ///< created by Glue on a temp

  bool operator==(const AccessPath& o) const {
    return name == o.name && columns == o.columns && dynamic == o.dynamic;
  }
  std::string ToString(const Query* query = nullptr) const;
};

using AccessPathList = std::vector<AccessPath>;

/// The value of one property. `monostate` means "unset" (defaults apply).
using PropertyValue =
    std::variant<std::monostate, bool, int64_t, double, QuantifierSet, PredSet,
                 ColumnSet, SortOrder, AccessPathList, Cost, std::string>;

bool PropertyValueEquals(const PropertyValue& a, const PropertyValue& b);
std::string PropertyValueToString(const PropertyValue& v,
                                  const Query* query = nullptr);

/// The per-plan property vector (paper §3.1): a self-defining record with a
/// variable number of fields. Implemented as a sorted sparse association
/// list; absent fields read as the registered default, so adding a new
/// property never perturbs existing property functions (§5).
class PropertyVector {
 public:
  PropertyVector() = default;

  void Set(PropertyId id, PropertyValue value);
  const PropertyValue* Find(PropertyId id) const;
  bool Has(PropertyId id) const { return Find(id) != nullptr; }

  // Typed accessors for the built-in properties. Absent -> zero value.
  QuantifierSet tables() const;
  ColumnSet cols() const;
  PredSet preds() const;
  SortOrder order() const;
  SiteId site() const;
  bool temp() const;
  AccessPathList paths() const;
  double card() const;
  Cost cost() const;
  Cost rescan() const;

  void set_tables(QuantifierSet v) { Set(prop::kTables, v); }
  void set_cols(ColumnSet v) { Set(prop::kCols, std::move(v)); }
  void set_preds(PredSet v) { Set(prop::kPreds, v); }
  void set_order(SortOrder v) { Set(prop::kOrder, std::move(v)); }
  void set_site(SiteId v) { Set(prop::kSite, static_cast<int64_t>(v)); }
  void set_temp(bool v) { Set(prop::kTemp, v); }
  void set_paths(AccessPathList v) { Set(prop::kPaths, std::move(v)); }
  void set_card(double v) { Set(prop::kCard, v); }
  void set_cost(Cost v) { Set(prop::kCost, v); }
  void set_rescan(Cost v) { Set(prop::kRescan, v); }

  /// Fields present, in id order.
  const std::vector<std::pair<PropertyId, PropertyValue>>& entries() const {
    return entries_;
  }

  std::string ToString(const Query* query = nullptr) const;

 private:
  std::vector<std::pair<PropertyId, PropertyValue>> entries_;
};

/// Registry of known properties: id, name, and default value. The nine
/// built-ins are pre-registered; `Register` adds DBC extensions.
class PropertyRegistry {
 public:
  PropertyRegistry();

  /// Registers a new property and returns its id.
  Result<PropertyId> Register(const std::string& name,
                              PropertyValue default_value);

  Result<PropertyId> Find(const std::string& name) const;
  const std::string& name(PropertyId id) const { return names_[id]; }
  const PropertyValue& default_value(PropertyId id) const {
    return defaults_[id];
  }
  int size() const { return static_cast<int>(names_.size()); }

 private:
  std::vector<std::string> names_;
  std::vector<PropertyValue> defaults_;
  std::map<std::string, PropertyId> by_name_;
};

}  // namespace starburst

#endif  // STARBURST_PROPERTIES_PROPERTY_H_
