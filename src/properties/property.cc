#include "properties/property.h"

#include <algorithm>

#include "common/strings.h"
#include "query/query.h"

namespace starburst {

bool OrderSatisfies(const SortOrder& available, const SortOrder& required) {
  if (required.size() > available.size()) return false;
  return std::equal(required.begin(), required.end(), available.begin());
}

std::string AccessPath::ToString(const Query* query) const {
  std::string cols = StrJoinMapped(columns, ",", [query](ColumnRef c) {
    return query != nullptr ? query->ColumnName(c)
                            : "q" + std::to_string(c.quantifier) + ".c" +
                                  std::to_string(c.column);
  });
  return name + "(" + cols + ")" + (dynamic ? "*" : "");
}

std::string Cost::ToString() const {
  return "{io=" + FormatDouble(io) + " cpu=" + FormatDouble(cpu) +
         " comm=" + FormatDouble(comm) + "}";
}

bool PropertyValueEquals(const PropertyValue& a, const PropertyValue& b) {
  return a == b;
}

std::string PropertyValueToString(const PropertyValue& v, const Query* query) {
  struct Visitor {
    const Query* query;
    std::string operator()(std::monostate) const { return "unset"; }
    std::string operator()(bool b) const { return b ? "true" : "false"; }
    std::string operator()(int64_t i) const { return std::to_string(i); }
    std::string operator()(double d) const { return FormatDouble(d); }
    std::string operator()(const QuantifierSet& s) const {
      return s.ToString();
    }
    std::string operator()(const PredSet& s) const { return s.ToString(); }
    std::string operator()(const ColumnSet& s) const {
      return "{" + StrJoinMapped(s, ",", [this](ColumnRef c) {
               return query != nullptr
                          ? query->ColumnName(c)
                          : "q" + std::to_string(c.quantifier) + ".c" +
                                std::to_string(c.column);
             }) +
             "}";
    }
    std::string operator()(const SortOrder& o) const {
      if (o.empty()) return "unknown";
      return "(" + StrJoinMapped(o, ",", [this](ColumnRef c) {
               return query != nullptr
                          ? query->ColumnName(c)
                          : "q" + std::to_string(c.quantifier) + ".c" +
                                std::to_string(c.column);
             }) +
             ")";
    }
    std::string operator()(const AccessPathList& l) const {
      return "{" + StrJoinMapped(l, ",", [this](const AccessPath& p) {
               return p.ToString(query);
             }) +
             "}";
    }
    std::string operator()(const Cost& c) const { return c.ToString(); }
    std::string operator()(const std::string& s) const { return s; }
  };
  return std::visit(Visitor{query}, v);
}

void PropertyVector::Set(PropertyId id, PropertyValue value) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const auto& e, PropertyId key) { return e.first < key; });
  if (it != entries_.end() && it->first == id) {
    it->second = std::move(value);
  } else {
    entries_.insert(it, {id, std::move(value)});
  }
}

const PropertyValue* PropertyVector::Find(PropertyId id) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const auto& e, PropertyId key) { return e.first < key; });
  if (it != entries_.end() && it->first == id) return &it->second;
  return nullptr;
}

namespace {
template <typename T>
T GetOr(const PropertyVector& pv, PropertyId id, T fallback) {
  const PropertyValue* v = pv.Find(id);
  if (v == nullptr) return fallback;
  if (const T* t = std::get_if<T>(v)) return *t;
  return fallback;
}
}  // namespace

QuantifierSet PropertyVector::tables() const {
  return GetOr(*this, prop::kTables, QuantifierSet{});
}
ColumnSet PropertyVector::cols() const {
  return GetOr(*this, prop::kCols, ColumnSet{});
}
PredSet PropertyVector::preds() const {
  return GetOr(*this, prop::kPreds, PredSet{});
}
SortOrder PropertyVector::order() const {
  return GetOr(*this, prop::kOrder, SortOrder{});
}
SiteId PropertyVector::site() const {
  return static_cast<SiteId>(GetOr(*this, prop::kSite, int64_t{0}));
}
bool PropertyVector::temp() const { return GetOr(*this, prop::kTemp, false); }
AccessPathList PropertyVector::paths() const {
  return GetOr(*this, prop::kPaths, AccessPathList{});
}
double PropertyVector::card() const {
  return GetOr(*this, prop::kCard, 0.0);
}
Cost PropertyVector::cost() const { return GetOr(*this, prop::kCost, Cost{}); }
Cost PropertyVector::rescan() const {
  return GetOr(*this, prop::kRescan, Cost{});
}

std::string PropertyVector::ToString(const Query* query) const {
  static const char* kBuiltinNames[] = {"TABLES", "COLS", "PREDS",  "ORDER",
                                        "SITE",   "TEMP", "PATHS",  "CARD",
                                        "COST",   "RESCAN"};
  std::string out = "[";
  bool first = true;
  for (const auto& [id, value] : entries_) {
    if (!first) out += " ";
    first = false;
    std::string name = id < prop::kNumBuiltin ? kBuiltinNames[id]
                                              : "P" + std::to_string(id);
    if (id == prop::kSite && query != nullptr) {
      out += name + "=" +
             query->catalog().site_name(
                 static_cast<SiteId>(std::get<int64_t>(value)));
      continue;
    }
    out += name + "=" + PropertyValueToString(value, query);
  }
  return out + "]";
}

PropertyRegistry::PropertyRegistry() {
  static const std::pair<const char*, PropertyValue> kBuiltins[] = {
      {"TABLES", QuantifierSet{}}, {"COLS", ColumnSet{}},
      {"PREDS", PredSet{}},        {"ORDER", SortOrder{}},
      {"SITE", int64_t{0}},        {"TEMP", false},
      {"PATHS", AccessPathList{}}, {"CARD", 0.0},
      {"COST", Cost{}},            {"RESCAN", Cost{}},
  };
  for (const auto& [name, def] : kBuiltins) {
    names_.push_back(name);
    defaults_.push_back(def);
    by_name_[name] = static_cast<PropertyId>(names_.size()) - 1;
  }
}

Result<PropertyId> PropertyRegistry::Register(const std::string& name,
                                              PropertyValue default_value) {
  if (by_name_.count(name)) {
    return Status::AlreadyExists("property '" + name + "' already registered");
  }
  names_.push_back(name);
  defaults_.push_back(std::move(default_value));
  PropertyId id = static_cast<PropertyId>(names_.size()) - 1;
  by_name_[name] = id;
  return id;
}

Result<PropertyId> PropertyRegistry::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no property named '" + name + "'");
  }
  return it->second;
}

}  // namespace starburst
