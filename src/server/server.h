#ifndef STARBURST_SERVER_SERVER_H_
#define STARBURST_SERVER_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "exec/evaluator.h"
#include "obs/metrics.h"
#include "obs/workload.h"
#include "optimizer/optimizer.h"
#include "server/plan_cache.h"
#include "server/session.h"
#include "storage/table.h"

namespace starburst {

struct ServerOptions {
  /// Worker threads draining the statement queue. 0 = no workers: Submit()
  /// only enqueues (deterministic admission tests) and Execute() runs
  /// inline on the calling thread (the sequential oracle).
  int num_workers = 4;
  /// Admission control: pending statements beyond this are rejected with
  /// kResourceExhausted before touching optimizer or executor state
  /// (0 = unbounded).
  size_t max_queue = 0;
  /// Open sessions beyond this are rejected (0 = unbounded).
  size_t max_sessions = 0;

  /// Plan cache: off means every statement optimizes from scratch (the
  /// differential oracle configuration).
  bool cache_enabled = true;
  int cache_shards = 8;
  /// Completed-entry bound across all shards, evicting LRU entries past it:
  /// -1 inherits STARBURST_PLAN_CACHE_CAP (fallback 1024), 0 = unbounded.
  int64_t cache_capacity = -1;

  /// Re-optimization trigger: after each execution the worst per-node
  /// q-error (actual rows per invocation vs estimated cardinality, max over
  /// executed nodes) is compared against this; exceeding it invalidates the
  /// statement's cache entry so the NEXT execution re-optimizes against
  /// current statistics. 0 disables the check (and its EXPLAIN ANALYZE
  /// overhead), keeping cache-counter tests exactly deterministic.
  double qerror_reoptimize_threshold = 0.0;

  /// Handed to Optimizer (metrics is overridden to the server registry when
  /// null). tracer must stay null when num_workers > 1 — Optimize() is
  /// re-entrant except for tracing.
  OptimizerOptions optimizer;

  /// Observability/fault hooks threaded into every execution.
  WorkloadRepository* workload = nullptr;
  FaultInjector* faults = nullptr;
};

/// Everything a client learns from one statement.
struct StatementResult {
  /// Rows projected to the statement's select list, so the layout is stable
  /// across plan shapes (differential comparisons rely on this).
  ResultSet rows;
  /// PlanSignature() of the executed plan.
  std::string plan_signature;
  double total_cost = 0.0;
  bool cache_hit = false;
  /// Worst per-node q-error of this execution (0 when the q-error check is
  /// disabled); `reoptimize_scheduled` reports that it tripped the
  /// threshold and the cache entry was dropped.
  double worst_q_error = 0.0;
  bool reoptimize_scheduled = false;
};

/// The concurrent query-serving front end (the ROADMAP's "session manager"):
/// N sessions submit SQL over a bounded queue to a worker pool; each
/// statement runs parse -> plan-cache lookup / optimize -> execute, sharing
/// one Optimizer, one Database, and one sharded PlanCache across all
/// workers.
///
/// Shared-state discipline (what makes concurrent serving sound):
///   - Optimizer::Optimize builds all mutable state per call; rules /
///     operators / functions are only read. Editing them (a Database
///     Customizer action) requires quiescing the server and calling
///     cache().Clear() — cached plans point into the operator registry.
///   - Database is read-only during serving; Catalog mutations (DDL, stats)
///     bump generations that invalidate cached plans on next lookup.
///   - The cache returns shared_ptr-to-const entries, executed without any
///     cache lock held.
///
/// Global metrics (server.*): statements, errors, cache_{hits,misses,
/// invalidations,races}, reoptimizations, qps gauge, statement/optimize/
/// execute latency histograms. Per-session registries parent-chain here.
class SqlServer {
 public:
  SqlServer(const Catalog* catalog, const Database* db, RuleSet rules,
            ServerOptions options = ServerOptions{});
  /// Stops workers, then fails every undrained queued statement with
  /// kCancelled so no client future is left dangling.
  ~SqlServer();

  SqlServer(const SqlServer&) = delete;
  SqlServer& operator=(const SqlServer&) = delete;

  /// Opens a client session (admission-controlled by max_sessions).
  Result<SessionPtr> OpenSession(std::string name = "");
  void CloseSession(const SessionPtr& session);
  size_t num_sessions() const;

  /// Asynchronous submission: enqueues for the worker pool and returns the
  /// future. Admission rejection (queue full, server stopping) resolves the
  /// future immediately with kResourceExhausted / kCancelled.
  std::future<Result<StatementResult>> Submit(SessionPtr session,
                                              std::string sql);
  /// Synchronous convenience: inline on the calling thread when
  /// num_workers == 0, otherwise Submit().get().
  Result<StatementResult> Execute(const SessionPtr& session,
                                  const std::string& sql);

  /// PREPARE name AS sql — validates the template (counting '?' markers)
  /// and stores it in the session's namespace.
  Status Prepare(const SessionPtr& session, const std::string& name,
                 const std::string& sql);
  /// EXECUTE name (params...) — binds and runs through the same queue.
  std::future<Result<StatementResult>> SubmitPrepared(
      SessionPtr session, std::string name, std::vector<Datum> params);
  Result<StatementResult> ExecutePrepared(const SessionPtr& session,
                                          const std::string& name,
                                          std::vector<Datum> params);

  PlanCache& cache() { return cache_; }
  MetricsRegistry& metrics() { return metrics_; }
  Optimizer& optimizer() { return optimizer_; }
  const ServerOptions& options() const { return options_; }
  const Catalog& catalog() const { return *catalog_; }

 private:
  struct Request {
    SessionPtr session;
    std::string sql;            ///< direct statement text, or
    std::string prepared_name;  ///< prepared name (non-empty wins)
    std::vector<Datum> params;
    std::promise<Result<StatementResult>> promise;
  };

  void WorkerLoop();
  Result<StatementResult> RunRequest(const SessionPtr& session,
                                     const std::string& sql,
                                     const std::string& prepared_name,
                                     const std::vector<Datum>& params);
  Result<StatementResult> RunStatement(const SessionPtr& session,
                                       const Query& query);
  std::future<Result<StatementResult>> Enqueue(Request req);

  const Catalog* catalog_;
  const Database* db_;
  ServerOptions options_;
  MetricsRegistry metrics_;
  Optimizer optimizer_;
  PlanCache cache_;
  std::chrono::steady_clock::time_point started_;

  mutable std::mutex sessions_mu_;
  std::map<int, SessionPtr> sessions_;
  int next_session_id_ = 1;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// The ISSUE/ROADMAP name for this layer.
using SessionManager = SqlServer;

}  // namespace starburst

#endif  // STARBURST_SERVER_SERVER_H_
