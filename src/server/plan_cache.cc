#include "server/plan_cache.h"

#include <functional>

#include "obs/metrics.h"
#include "obs/workload.h"
#include "query/predicate.h"

namespace starburst {

namespace {

/// Renders an expression positionally: columns as q<i>.c<j> (aliases never
/// appear, so renamed-alias statements key identically), literals as '?'
/// (so literal-differing statements fold to one entry — reuse is safe
/// because plan arguments carry ColumnRefs, never literal values; the
/// executor re-evaluates predicates from the *submitted* query).
std::string ExprShape(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kColumn:
      return "q" + std::to_string(e.column().quantifier) + ".c" +
             std::to_string(e.column().column);
    case ExprKind::kLiteral:
      return "?";
    case ExprKind::kAdd:
      return "(" + ExprShape(*e.lhs()) + "+" + ExprShape(*e.rhs()) + ")";
    case ExprKind::kSub:
      return "(" + ExprShape(*e.lhs()) + "-" + ExprShape(*e.rhs()) + ")";
    case ExprKind::kMul:
      return "(" + ExprShape(*e.lhs()) + "*" + ExprShape(*e.rhs()) + ")";
    case ExprKind::kDiv:
      return "(" + ExprShape(*e.lhs()) + "/" + ExprShape(*e.rhs()) + ")";
  }
  return "?";
}

std::string ColShape(ColumnRef ref) {
  return "q" + std::to_string(ref.quantifier) + ".c" +
         std::to_string(ref.column);
}

/// Ordered structural rendering of the query — see PlanCacheKey. Symmetric
/// comparisons (=, <>) are canonically side-ordered, matching the digest's
/// PredicateShape normalization AND the executor, which picks join build /
/// index-probe sides from column sets at runtime, so a side-swapped
/// statement really can run the cached plan.
std::string StructuralForm(const Query& query) {
  std::string out = "F:";
  for (int q = 0; q < query.num_quantifiers(); ++q) {
    if (q > 0) out += ",";
    out += query.table_of(q).name;
  }
  out += ";W:";
  for (int p = 0; p < query.num_predicates(); ++p) {
    const Predicate& pred = query.predicate(p);
    std::string lhs = ExprShape(*pred.lhs);
    std::string rhs = ExprShape(*pred.rhs);
    if ((pred.op == CompareOp::kEq || pred.op == CompareOp::kNe) &&
        rhs < lhs) {
      std::swap(lhs, rhs);
    }
    if (p > 0) out += ",";
    out += lhs;
    out += CompareOpName(pred.op);
    out += rhs;
  }
  out += ";S:";
  for (size_t i = 0; i < query.select_list().size(); ++i) {
    if (i > 0) out += ",";
    out += ColShape(query.select_list()[i]);
  }
  out += ";O:";
  for (size_t i = 0; i < query.order_by().size(); ++i) {
    if (i > 0) out += ",";
    out += ColShape(query.order_by()[i]);
  }
  out += ";A:";
  out += query.required_site().has_value()
             ? std::to_string(*query.required_site())
             : "-";
  return out;
}

}  // namespace

PlanCacheKey PlanCacheKeyForQuery(const Query& query) {
  PlanCacheKey key;
  key.digest = WorkloadRepository::QueryDigest(query);
  key.structure = StructuralForm(query);
  return key;
}

PlanCache::PlanCache(int num_shards, MetricsRegistry* metrics,
                     int64_t max_entries)
    : metrics_(metrics) {
  if (num_shards < 1) num_shards = 1;
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  max_entries_ = max_entries < 0 ? DefaultPlanCacheCapacity() : max_entries;
  if (max_entries_ > 0) {
    shard_cap_ = max_entries_ / num_shards;
    if (shard_cap_ < 1) shard_cap_ = 1;
  }
}

void PlanCache::EvictLocked(Shard* shard) {
  if (shard_cap_ <= 0) return;
  while (true) {
    int64_t completed = 0;
    auto victim = shard->entries.end();
    for (auto it = shard->entries.begin(); it != shard->entries.end(); ++it) {
      if (it->second.in_flight) continue;  // the optimizing thread owns it
      ++completed;
      if (victim == shard->entries.end() ||
          it->second.lru < victim->second.lru) {
        victim = it;
      }
    }
    if (completed <= shard_cap_ || victim == shard->entries.end()) return;
    shard->entries.erase(victim);
    Count("server.cache_evictions");
  }
}

PlanCache::Shard& PlanCache::ShardFor(const PlanCacheKey& key) {
  size_t h = std::hash<std::string>{}(key.digest);
  return *shards_[h % shards_.size()];
}

void PlanCache::Count(const char* name, int64_t delta) {
  if (metrics_ != nullptr) metrics_->AddCounter(name, delta);
}

Result<CachedPlanPtr> PlanCache::GetOrOptimize(const PlanCacheKey& key,
                                               const Catalog& catalog,
                                               const OptimizeFn& optimize,
                                               bool* hit) {
  if (hit != nullptr) *hit = false;
  Shard& shard = ShardFor(key);
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    bool counted_race = false;
    while (true) {
      auto it = shard.entries.find(key);
      if (it == shard.entries.end()) {
        Count("server.cache_misses");
        shard.entries[key].in_flight = true;  // claim the single flight
        break;
      }
      if (it->second.in_flight) {
        // Someone else is optimizing this exact statement shape right now;
        // wait rather than duplicate the work. Counted once per waiter.
        if (!counted_race) {
          counted_race = true;
          Count("server.cache_races");
        }
        shard.cv.wait(lock);
        continue;  // re-find: the flight may have succeeded, failed, or the
                   // entry may have been invalidated since
      }
      const CachedPlan& got = *it->second.plan;
      if (got.ddl_generation != catalog.ddl_generation() ||
          got.stats_generation != catalog.stats_generation()) {
        Count("server.cache_invalidations");
        shard.entries.erase(it);
        continue;  // retake the miss path and re-optimize
      }
      Count("server.cache_hits");
      if (hit != nullptr) *hit = true;
      it->second.lru = Tick();
      return it->second.plan;
    }
  }
  // Generations are captured before the optimizer runs: if DDL lands
  // mid-optimization the entry self-invalidates on its first hit.
  CachedPlan fresh;
  fresh.ddl_generation = catalog.ddl_generation();
  fresh.stats_generation = catalog.stats_generation();
  Result<CachedPlan> optimized = optimize();
  std::lock_guard<std::mutex> lock(shard.mu);
  if (!optimized.ok()) {
    // Erase the marker and wake everyone: the first waiter to re-check
    // becomes the new optimizer, so an injected fault can't wedge the key.
    shard.entries.erase(key);
    shard.cv.notify_all();
    return optimized.status();
  }
  fresh.plan = optimized.value().plan;
  fresh.total_cost = optimized.value().total_cost;
  fresh.signature = std::move(optimized.value().signature);
  auto ptr = std::make_shared<const CachedPlan>(std::move(fresh));
  Entry& entry = shard.entries[key];
  entry.plan = ptr;
  entry.in_flight = false;
  entry.lru = Tick();
  EvictLocked(&shard);
  shard.cv.notify_all();
  return ptr;
}

void PlanCache::Invalidate(const PlanCacheKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end() || it->second.in_flight) return;
  shard.entries.erase(it);
  Count("server.cache_invalidations");
}

void PlanCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->entries.begin(); it != shard->entries.end();) {
      if (it->second.in_flight) {
        ++it;  // the optimizing thread owns the marker
      } else {
        it = shard->entries.erase(it);
      }
    }
  }
}

size_t PlanCache::size() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->entries) {
      if (!entry.in_flight) ++n;
    }
  }
  return n;
}

}  // namespace starburst
