#ifndef STARBURST_SERVER_PLAN_CACHE_H_
#define STARBURST_SERVER_PLAN_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "plan/plan.h"
#include "query/query.h"

namespace starburst {

class MetricsRegistry;

/// Cache key for one statement shape. `digest` is WorkloadRepository's
/// literal-folded, alias-insensitive, order-insensitive digest — it folds
/// "same query, different literals" (and symmetric-predicate side order)
/// into one entry. The digest alone is NOT a safe reuse key: a cached
/// PlanOp's arguments hold quantifier ids, predicate ids, and ColumnRefs
/// that index into the query it was optimized for, while the digest hashes
/// *sorted* table/shape sets. `structure` therefore records the ordered
/// structural rendering (quantifier tables in quantifier order, predicate
/// shapes in predicate-id order, select list, order-by, site); two queries
/// with equal keys are positionally interchangeable, so either can execute
/// the other's plan.
struct PlanCacheKey {
  std::string digest;
  std::string structure;

  bool operator==(const PlanCacheKey& o) const {
    return digest == o.digest && structure == o.structure;
  }
  bool operator<(const PlanCacheKey& o) const {
    if (digest != o.digest) return digest < o.digest;
    return structure < o.structure;
  }
};

/// Builds the cache key for an analyzed query. Literals never appear in
/// either component; aliases never appear; symmetric (=, <>) predicate sides
/// are canonically ordered in both.
PlanCacheKey PlanCacheKeyForQuery(const Query& query);

/// Capacity from STARBURST_PLAN_CACHE_CAP (entries across all shards);
/// unset or unparsable falls back to 1024, 0 means unbounded.
inline int64_t DefaultPlanCacheCapacity() {
  const char* env = std::getenv("STARBURST_PLAN_CACHE_CAP");
  if (env == nullptr || *env == '\0') return 1024;
  char* end = nullptr;
  long long v = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || v < 0) return 1024;
  return static_cast<int64_t>(v);
}

/// One cached optimization result. The plan's operator definitions point
/// into the owning Optimizer's OperatorRegistry, so the cache must not
/// outlive the Optimizer whose Optimize() produced the entries.
struct CachedPlan {
  PlanPtr plan;
  double total_cost = 0.0;
  std::string signature;  ///< PlanSignature(*plan), for differential tests
  /// Catalog generations observed *before* the optimization ran (a bump
  /// during optimization conservatively invalidates the entry).
  int64_t ddl_generation = 0;
  int64_t stats_generation = 0;
};

using CachedPlanPtr = std::shared_ptr<const CachedPlan>;

/// Sharded, single-flight plan cache keyed on normalized statement shape.
///
/// Concurrency discipline (the PostgreSQL plancache shape, adapted):
///   - Lookup/insert take one shard mutex; shards are independent.
///   - A miss installs an in-flight marker and releases the lock while the
///     caller-supplied optimize function runs; concurrent requests for the
///     same key wait on the shard condvar instead of optimizing again
///     (counted as `server.cache_races`).
///   - A failed optimization erases the marker and wakes all waiters; the
///     first to wake retakes the miss path, so a fault-injected failure can
///     never wedge the key.
///   - Hits validate the entry's catalog generations; a stale entry is
///     erased (counted as `server.cache_invalidations`) and re-optimized.
///   - Capacity is bounded: each shard holds at most max_entries/num_shards
///     completed entries, evicting its least-recently-used one (counted as
///     `server.cache_evictions`) after each insert. In-flight markers are
///     never evicted — the optimizing thread owns them.
///
/// Entries are returned as shared_ptr-to-const so a hit can be executed
/// without holding any cache lock while Clear()/Invalidate() run.
class PlanCache {
 public:
  /// Optimizes one statement: returns the plan, its weighted cost, and its
  /// signature. Runs outside all cache locks.
  using OptimizeFn = std::function<Result<CachedPlan>()>;

  /// `max_entries` bounds completed entries across all shards: -1 inherits
  /// STARBURST_PLAN_CACHE_CAP (fallback 1024), 0 disables the bound. A
  /// nonzero bound is split evenly over shards, at least one per shard.
  explicit PlanCache(int num_shards = 8, MetricsRegistry* metrics = nullptr,
                     int64_t max_entries = -1);

  /// Returns the cached plan for `key`, optimizing via `optimize` on a miss
  /// or stale hit. `catalog` supplies the generations entries are validated
  /// against; they are captured before `optimize` runs. `hit` (optional)
  /// reports whether the returned plan came from the cache — true also for
  /// racers that waited out another thread's optimization.
  Result<CachedPlanPtr> GetOrOptimize(const PlanCacheKey& key,
                                      const Catalog& catalog,
                                      const OptimizeFn& optimize,
                                      bool* hit = nullptr);

  /// Drops one entry (e.g. after a q-error trip showed the plan was built
  /// from badly wrong estimates). No-op if absent. Never touches in-flight
  /// markers — the optimizing thread owns those.
  void Invalidate(const PlanCacheKey& key);

  /// Drops every completed entry (rule-base edits, bulk reloads).
  void Clear();

  /// Completed (non-in-flight) entries across all shards.
  size_t size() const;

  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Total-entry bound the cache was built with (0 = unbounded).
  int64_t capacity() const { return max_entries_; }

 private:
  struct Entry {
    CachedPlanPtr plan;  ///< null while in-flight
    bool in_flight = false;
    int64_t lru = 0;  ///< last-touch tick; smallest = evict first
  };
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::map<PlanCacheKey, Entry> entries;
  };

  Shard& ShardFor(const PlanCacheKey& key);
  void Count(const char* name, int64_t delta = 1);
  int64_t Tick() { return ++tick_; }
  /// Evicts least-recently-used completed entries until the shard is within
  /// its cap. Caller holds the shard lock.
  void EvictLocked(Shard* shard);

  std::vector<std::unique_ptr<Shard>> shards_;
  MetricsRegistry* metrics_;
  int64_t max_entries_ = 0;
  int64_t shard_cap_ = 0;  ///< 0 = unbounded
  std::atomic<int64_t> tick_{0};
};

}  // namespace starburst

#endif  // STARBURST_SERVER_PLAN_CACHE_H_
