#include "server/server.h"

#include <algorithm>
#include <set>
#include <utility>

#include "plan/explain.h"
#include "sql/parser.h"

namespace starburst {

namespace {

/// Worst per-node q-error of one execution: max over executed nodes of
/// actual rows per invocation vs estimated cardinality. Both sides are
/// clamped to >= 1 row so empty results don't read as infinite error — the
/// trigger should fire on badly wrong *plans*, not on selective predicates.
void WorstQErrorWalk(const PlanOp& node, const PlanRunStats& stats,
                     std::set<const PlanOp*>* seen, double* worst) {
  if (!seen->insert(&node).second) return;
  auto it = stats.find(&node);
  if (it != stats.end() && it->second.invocations > 0) {
    double actual = std::max(
        1.0, static_cast<double>(it->second.rows) /
                 static_cast<double>(it->second.invocations));
    double est = std::max(1.0, node.props.card());
    double q = actual > est ? actual / est : est / actual;
    *worst = std::max(*worst, q);
  }
  for (const PlanPtr& in : node.inputs) {
    WorstQErrorWalk(*in, stats, seen, worst);
  }
}

double WorstQError(const PlanOp& root, const PlanRunStats& stats) {
  std::set<const PlanOp*> seen;
  double worst = 1.0;
  WorstQErrorWalk(root, stats, &seen, &worst);
  return worst;
}

OptimizerOptions PatchedOptimizerOptions(ServerOptions* options,
                                         MetricsRegistry* metrics) {
  if (options->optimizer.metrics == nullptr) {
    options->optimizer.metrics = metrics;
  }
  return options->optimizer;
}

}  // namespace

SqlServer::SqlServer(const Catalog* catalog, const Database* db,
                     RuleSet rules, ServerOptions options)
    : catalog_(catalog),
      db_(db),
      options_(std::move(options)),
      metrics_(),
      optimizer_(std::move(rules),
                 PatchedOptimizerOptions(&options_, &metrics_)),
      cache_(options_.cache_shards, &metrics_, options_.cache_capacity),
      started_(std::chrono::steady_clock::now()) {
  workers_.reserve(static_cast<size_t>(std::max(0, options_.num_workers)));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SqlServer::~SqlServer() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Workers are gone; fail whatever is still queued so no client future
  // dangles (num_workers == 0 servers queue without draining by design).
  std::deque<Request> leftover;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    leftover.swap(queue_);
  }
  for (Request& req : leftover) {
    req.promise.set_value(Status::Cancelled("server shutting down"));
  }
}

Result<SessionPtr> SqlServer::OpenSession(std::string name) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (options_.max_sessions > 0 &&
      sessions_.size() >= options_.max_sessions) {
    return Status::ResourceExhausted(
        "session limit of " + std::to_string(options_.max_sessions) +
        " reached");
  }
  int id = next_session_id_++;
  if (name.empty()) name = "session-" + std::to_string(id);
  auto session = std::make_shared<Session>(id, std::move(name), &metrics_);
  sessions_[id] = session;
  metrics_.SetGauge("server.sessions", static_cast<double>(sessions_.size()));
  return session;
}

void SqlServer::CloseSession(const SessionPtr& session) {
  if (session == nullptr) return;
  session->Cancel();  // in-flight statements observe it at next check
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.erase(session->id());
  metrics_.SetGauge("server.sessions", static_cast<double>(sessions_.size()));
}

size_t SqlServer::num_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

std::future<Result<StatementResult>> SqlServer::Enqueue(Request req) {
  std::future<Result<StatementResult>> future = req.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      req.promise.set_value(Status::Cancelled("server shutting down"));
      return future;
    }
    if (options_.max_queue > 0 && queue_.size() >= options_.max_queue) {
      metrics_.AddCounter("server.admission_rejected", 1);
      req.promise.set_value(Status::ResourceExhausted(
          "admission queue full (" + std::to_string(options_.max_queue) +
          " statements pending)"));
      return future;
    }
    queue_.push_back(std::move(req));
  }
  queue_cv_.notify_one();
  return future;
}

std::future<Result<StatementResult>> SqlServer::Submit(SessionPtr session,
                                                       std::string sql) {
  Request req;
  req.session = std::move(session);
  req.sql = std::move(sql);
  return Enqueue(std::move(req));
}

std::future<Result<StatementResult>> SqlServer::SubmitPrepared(
    SessionPtr session, std::string name, std::vector<Datum> params) {
  Request req;
  req.session = std::move(session);
  req.prepared_name = std::move(name);
  req.params = std::move(params);
  return Enqueue(std::move(req));
}

Result<StatementResult> SqlServer::Execute(const SessionPtr& session,
                                           const std::string& sql) {
  if (options_.num_workers == 0) {
    return RunRequest(session, sql, "", {});
  }
  return Submit(session, sql).get();
}

Result<StatementResult> SqlServer::ExecutePrepared(
    const SessionPtr& session, const std::string& name,
    std::vector<Datum> params) {
  if (options_.num_workers == 0) {
    return RunRequest(session, "", name, params);
  }
  return SubmitPrepared(session, name, std::move(params)).get();
}

Status SqlServer::Prepare(const SessionPtr& session, const std::string& name,
                          const std::string& sql) {
  if (session == nullptr) {
    return Status::InvalidArgument("null session");
  }
  if (name.empty()) {
    return Status::InvalidArgument("prepared statement needs a name");
  }
  int num_params = 0;
  auto query = ParseSqlTemplate(*catalog_, sql, &num_params);
  if (!query.ok()) return query.status();
  PreparedStatement stmt;
  stmt.sql = sql;
  stmt.num_params = num_params;
  session->StorePrepared(name, std::move(stmt));
  metrics_.AddCounter("server.prepares", 1);
  return Status::OK();
}

void SqlServer::WorkerLoop() {
  while (true) {
    Request req;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      req = std::move(queue_.front());
      queue_.pop_front();
    }
    req.promise.set_value(
        RunRequest(req.session, req.sql, req.prepared_name, req.params));
  }
}

Result<StatementResult> SqlServer::RunRequest(
    const SessionPtr& session, const std::string& sql,
    const std::string& prepared_name, const std::vector<Datum>& params) {
  if (session == nullptr) {
    return Status::InvalidArgument("null session");
  }
  Result<Query> query = [&]() -> Result<Query> {
    if (!prepared_name.empty()) {
      auto stmt = session->FindPrepared(prepared_name);
      if (!stmt.ok()) return stmt.status();
      return BindSql(*catalog_, stmt.value().sql, params);
    }
    return ParseSql(*catalog_, sql);
  }();
  if (!query.ok()) {
    session->metrics().AddCounter("server.errors", 1);
    return query.status();
  }
  return RunStatement(session, query.value());
}

Result<StatementResult> SqlServer::RunStatement(const SessionPtr& session,
                                                const Query& query) {
  ScopedTimer statement_timer(&session->metrics(), "server.statement_us");
  CancelToken token = session->BeginStatement();

  // Optimize through the cache (or directly when it's off). The closure
  // runs outside all cache locks; generations are captured by the cache
  // before it is invoked.
  auto optimize = [&]() -> Result<CachedPlan> {
    ScopedTimer timer(&metrics_, "server.optimize_us");
    auto optimized = optimizer_.Optimize(query);
    if (!optimized.ok()) return optimized.status();
    CachedPlan out;
    out.plan = optimized.value().best;
    out.total_cost = optimized.value().total_cost;
    out.signature = PlanSignature(*out.plan);
    return out;
  };

  StatementResult result;
  PlanCacheKey key;
  CachedPlanPtr cached;
  if (options_.cache_enabled) {
    key = PlanCacheKeyForQuery(query);
    bool hit = false;
    auto got = cache_.GetOrOptimize(key, *catalog_, optimize, &hit);
    if (!got.ok()) {
      session->metrics().AddCounter("server.errors", 1);
      session->EndStatement(token);
      return got.status();
    }
    cached = got.value();
    result.cache_hit = hit;
  } else {
    auto fresh = optimize();
    if (!fresh.ok()) {
      session->metrics().AddCounter("server.errors", 1);
      session->EndStatement(token);
      return fresh.status();
    }
    cached = std::make_shared<const CachedPlan>(std::move(fresh).value());
  }
  result.plan_signature = cached->signature;
  result.total_cost = cached->total_cost;

  // Execute under the session's budgets and cancel token. Run-stats are
  // only collected when the q-error trigger needs them.
  ExecOptions exec_opts;
  exec_opts.metrics = &session->metrics();
  exec_opts.faults = options_.faults;
  exec_opts.vectorized = session->vectorized;
  exec_opts.batch_size = session->batch_size;
  exec_opts.exec_threads = session->exec_threads;
  exec_opts.exec_deadline_ms = session->exec_deadline_ms;
  exec_opts.exec_mem_limit = session->exec_mem_limit;
  exec_opts.cancel = token;
  exec_opts.workload = options_.workload;
  if (session->collect_profile) {
    exec_opts.profile_sink = &session->last_profile();
  }
  PlanRunStats run_stats;
  if (options_.qerror_reoptimize_threshold > 0.0) {
    exec_opts.stats = &run_stats;
  }
  Result<ResultSet> rows = [&] {
    ScopedTimer timer(&metrics_, "server.execute_us");
    return ExecutePlan(*db_, query, cached->plan, exec_opts);
  }();
  session->EndStatement(token);
  if (!rows.ok()) {
    session->metrics().AddCounter("server.errors", 1);
    return rows.status();
  }
  auto projected = ProjectResult(rows.value(), query.select_list());
  if (!projected.ok()) {
    session->metrics().AddCounter("server.errors", 1);
    return projected.status();
  }
  result.rows = std::move(projected).value();

  if (options_.qerror_reoptimize_threshold > 0.0) {
    result.worst_q_error = WorstQError(*cached->plan, run_stats);
    if (result.worst_q_error > options_.qerror_reoptimize_threshold) {
      // The plan came from badly wrong estimates; drop it so the next
      // execution of this shape re-optimizes (parameter-sensitive
      // statements get a fresh plan, PostgreSQL custom-plan style).
      if (options_.cache_enabled) cache_.Invalidate(key);
      metrics_.AddCounter("server.reoptimizations", 1);
      result.reoptimize_scheduled = true;
    }
  }

  session->metrics().AddCounter("server.statements", 1);
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - started_)
                       .count();
  if (elapsed > 0.0) {
    metrics_.SetGauge("server.qps",
                      static_cast<double>(metrics_.counter(
                          "server.statements")) /
                          elapsed);
  }
  return result;
}

}  // namespace starburst
