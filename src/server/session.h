#ifndef STARBURST_SERVER_SESSION_H_
#define STARBURST_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/governor.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace starburst {

/// A named statement template with '?' parameter markers, validated at
/// Prepare time (PostgreSQL PREPARE shape). The text is re-parsed with the
/// bound parameters at execute time — binding happens in the expression
/// tree, never by textual substitution, so parameter values cannot change
/// the statement shape.
struct PreparedStatement {
  std::string sql;
  int num_params = 0;
};

/// One client connection's state: identity, per-session metrics (parented
/// to the server's global registry), per-session execution budgets, the
/// prepared-statement namespace, and cancellation plumbing.
///
/// A session runs ONE statement at a time (the server serializes per-session
/// work only in the sense that clients submit sequentially; nothing enforces
/// it). The per-statement profile and run-stats sinks assume that contract —
/// interleaving two statements on one session leaves `last_profile`
/// reflecting whichever finished last.
class Session {
 public:
  Session(int id, std::string name, MetricsRegistry* global_metrics)
      : id_(id), name_(std::move(name)) {
    metrics_.set_parent(global_metrics);
  }

  int id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Per-session view; every counter/latency recorded here also lands in
  /// the server's global registry via the parent chain.
  MetricsRegistry& metrics() { return metrics_; }

  /// Per-session execution budgets, applied to every statement this session
  /// runs. Semantics follow ExecOptions: 0 inherits the environment
  /// (STARBURST_EXEC_*), negative forces the knob off.
  int64_t exec_deadline_ms = 0;
  int64_t exec_mem_limit = 0;
  /// Engine knobs: -1/0 inherit, else override.
  int vectorized = -1;
  int batch_size = 0;
  int exec_threads = 0;
  /// Collect an execution profile into last_profile() for each statement
  /// (needed by cancellation-residue checks; off by default).
  bool collect_profile = false;

  /// Cancels the in-flight statement if any, and latches so the NEXT
  /// statement this session submits starts pre-cancelled. The latch makes
  /// cancellation deterministic for tests: with no statement in flight the
  /// cancel is not lost, it fires at the next statement's first governor
  /// check.
  void Cancel() {
    std::lock_guard<std::mutex> lock(mu_);
    pending_cancel_ = true;
    for (const CancelToken& t : active_) {
      t->store(true, std::memory_order_release);
    }
  }

  /// Statement lifecycle, called by the server around each run. The token
  /// is fresh per statement; a pending Cancel() is consumed into it.
  CancelToken BeginStatement() {
    auto token = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_cancel_) {
      pending_cancel_ = false;
      token->store(true, std::memory_order_release);
    }
    active_.push_back(token);
    return token;
  }
  void EndStatement(const CancelToken& token) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = active_.begin(); it != active_.end(); ++it) {
      if (*it == token) {
        active_.erase(it);
        return;
      }
    }
  }

  /// Prepared-statement namespace (session-scoped, like PostgreSQL's).
  void StorePrepared(const std::string& name, PreparedStatement stmt) {
    std::lock_guard<std::mutex> lock(mu_);
    prepared_[name] = std::move(stmt);
  }
  Result<PreparedStatement> FindPrepared(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = prepared_.find(name);
    if (it == prepared_.end()) {
      return Status::NotFound("no prepared statement named '" + name + "'");
    }
    return it->second;
  }
  void Deallocate(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    prepared_.erase(name);
  }

  /// Profile of the most recent statement when collect_profile is set; the
  /// executor clears and refills it per run. After a cancelled or failed
  /// statement its MemoryTracker must read zero current bytes — the
  /// cancellation-residue tests assert exactly that.
  ExecProfile& last_profile() { return profile_; }

 private:
  const int id_;
  const std::string name_;
  MetricsRegistry metrics_;
  ExecProfile profile_;

  mutable std::mutex mu_;
  bool pending_cancel_ = false;
  std::vector<CancelToken> active_;
  std::map<std::string, PreparedStatement> prepared_;
};

using SessionPtr = std::shared_ptr<Session>;

}  // namespace starburst

#endif  // STARBURST_SERVER_SESSION_H_
