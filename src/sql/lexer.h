#ifndef STARBURST_SQL_LEXER_H_
#define STARBURST_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace starburst::sql {

enum class TokenKind {
  kIdent,
  kNumber,   // int or double literal; text holds the spelling
  kString,   // quoted string, text holds the unquoted content
  kSymbol,   // punctuation / operators, text holds the spelling
  kKeyword,  // uppercased SQL keyword
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int position = 0;  ///< byte offset in the input, for error messages

  bool IsKeyword(const char* kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
  bool IsSymbol(const char* sym) const {
    return kind == TokenKind::kSymbol && text == sym;
  }
};

/// Tokenizes a SQL string. Keywords are recognized case-insensitively and
/// normalized to upper case; identifiers keep their spelling.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace starburst::sql

#endif  // STARBURST_SQL_LEXER_H_
