#include "sql/parser.h"

#include <cstdlib>

#include "sql/lexer.h"

namespace starburst {

namespace {

using sql::Token;
using sql::TokenKind;

/// Recursive-descent parser over the token stream. Quantifiers must be
/// registered before predicate expressions can resolve columns, so we parse
/// FROM before SELECT columns are resolved (select text is buffered).
class Parser {
 public:
  /// How '?' parameter markers are handled (prepared statements):
  ///   kReject   — plain ParseSql: markers are a parse error.
  ///   kTemplate — markers become NULL literals and are counted.
  ///   kBind     — the i-th marker becomes Literal(params[i]).
  enum class ParamMode { kReject, kTemplate, kBind };

  Parser(const Catalog& catalog, std::vector<Token> tokens)
      : catalog_(catalog), tokens_(std::move(tokens)), query_(&catalog) {}

  void set_template_mode() { param_mode_ = ParamMode::kTemplate; }
  void set_bind_params(const std::vector<Datum>* params) {
    param_mode_ = ParamMode::kBind;
    params_ = params;
  }
  int num_params() const { return num_params_; }

  Result<Query> Parse() {
    STARBURST_RETURN_NOT_OK(Expect(TokenKind::kKeyword, "SELECT"));
    // Buffer select-list tokens until FROM; resolve after quantifiers exist.
    std::vector<Token> select_tokens;
    while (!Peek().IsKeyword("FROM")) {
      if (Peek().kind == TokenKind::kEnd) {
        return Status::ParseError("expected FROM clause");
      }
      select_tokens.push_back(Next());
    }
    STARBURST_RETURN_NOT_OK(Expect(TokenKind::kKeyword, "FROM"));
    STARBURST_RETURN_NOT_OK(ParseFromList());
    STARBURST_RETURN_NOT_OK(ResolveSelectList(select_tokens));
    if (Peek().IsKeyword("WHERE")) {
      Next();
      STARBURST_RETURN_NOT_OK(ParseConjuncts());
    }
    if (Peek().IsKeyword("ORDER")) {
      Next();
      STARBURST_RETURN_NOT_OK(Expect(TokenKind::kKeyword, "BY"));
      STARBURST_RETURN_NOT_OK(ParseOrderBy());
    }
    if (Peek().IsKeyword("AT")) {
      Next();
      STARBURST_RETURN_NOT_OK(Expect(TokenKind::kKeyword, "SITE"));
      STARBURST_RETURN_NOT_OK(ParseSite());
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Status::ParseError("trailing input at offset " +
                                std::to_string(Peek().position));
    }
    return std::move(query_);
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Next() { return tokens_[pos_++]; }

  Status Expect(TokenKind kind, const char* text) {
    const Token& t = Peek();
    if (t.kind != kind || t.text != text) {
      return Status::ParseError(std::string("expected '") + text +
                                "' at offset " + std::to_string(t.position) +
                                ", got '" + t.text + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Status ParseFromList() {
    while (true) {
      const Token& t = Peek();
      if (t.kind != TokenKind::kIdent) {
        return Status::ParseError("expected table name at offset " +
                                  std::to_string(t.position));
      }
      std::string table = Next().text;
      std::string alias;
      if (Peek().IsKeyword("AS")) Next();
      if (Peek().kind == TokenKind::kIdent) alias = Next().text;
      auto q = query_.AddQuantifier(table, alias);
      if (!q.ok()) return q.status();
      if (Peek().IsSymbol(",")) {
        Next();
        continue;
      }
      return Status::OK();
    }
  }

  Status ResolveSelectList(const std::vector<Token>& toks) {
    if (toks.size() == 1 && toks[0].IsSymbol("*")) {
      for (int q = 0; q < query_.num_quantifiers(); ++q) {
        int ncols = static_cast<int>(query_.table_of(q).columns.size());
        for (int c = 0; c < ncols; ++c) {
          query_.AddSelectColumn(ColumnRef{q, c});
        }
      }
      return Status::OK();
    }
    size_t i = 0;
    while (i < toks.size()) {
      if (toks[i].kind != TokenKind::kIdent) {
        return Status::ParseError("expected column in select list at offset " +
                                  std::to_string(toks[i].position));
      }
      auto ref = ResolveColumnToken(toks[i]);
      if (!ref.ok()) return ref.status();
      query_.AddSelectColumn(ref.value());
      ++i;
      if (i < toks.size()) {
        if (!toks[i].IsSymbol(",")) {
          return Status::ParseError("expected ',' in select list at offset " +
                                    std::to_string(toks[i].position));
        }
        ++i;
      }
    }
    if (query_.select_list().empty()) {
      return Status::ParseError("empty select list");
    }
    return Status::OK();
  }

  Result<ColumnRef> ResolveColumnToken(const Token& tok) {
    // Identifier may be "alias.column" or bare "column".
    size_t dot = tok.text.find('.');
    if (dot != std::string::npos) {
      return query_.ResolveColumn(tok.text.substr(0, dot),
                                  tok.text.substr(dot + 1));
    }
    return query_.ResolveBareColumn(tok.text);
  }

  Status ParseConjuncts() {
    while (true) {
      auto lhs = ParseExpr();
      if (!lhs.ok()) return lhs.status();
      auto op = ParseCompareOp();
      if (!op.ok()) return op.status();
      auto rhs = ParseExpr();
      if (!rhs.ok()) return rhs.status();
      auto pred = query_.AddPredicate(lhs.value(), op.value(), rhs.value());
      if (!pred.ok()) return pred.status();
      if (Peek().IsKeyword("AND")) {
        Next();
        continue;
      }
      return Status::OK();
    }
  }

  Result<CompareOp> ParseCompareOp() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kSymbol) {
      if (t.text == "=") return (Next(), CompareOp::kEq);
      if (t.text == "<>") return (Next(), CompareOp::kNe);
      if (t.text == "<") return (Next(), CompareOp::kLt);
      if (t.text == "<=") return (Next(), CompareOp::kLe);
      if (t.text == ">") return (Next(), CompareOp::kGt);
      if (t.text == ">=") return (Next(), CompareOp::kGe);
    }
    return Status::ParseError("expected comparison operator at offset " +
                              std::to_string(t.position));
  }

  Result<ExprPtr> ParseExpr() {
    // Depth guard: deeply parenthesized input must fail with a Status, not
    // exhaust the stack (ParseExpr → ParseTerm → ParseFactor → ParseExpr).
    if (depth_ >= kMaxExprDepth) {
      return Status::ParseError("expression nesting exceeds " +
                                std::to_string(kMaxExprDepth) + " levels");
    }
    ++depth_;
    auto lhs = ParseExprNoGuard();
    --depth_;
    return lhs;
  }

  Result<ExprPtr> ParseExprNoGuard() {
    auto lhs = ParseTerm();
    if (!lhs.ok()) return lhs;
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      ExprKind op = Next().text == "+" ? ExprKind::kAdd : ExprKind::kSub;
      auto rhs = ParseTerm();
      if (!rhs.ok()) return rhs;
      lhs = Expr::Binary(op, std::move(lhs).value(), std::move(rhs).value());
    }
    return lhs;
  }

  Result<ExprPtr> ParseTerm() {
    auto lhs = ParseFactor();
    if (!lhs.ok()) return lhs;
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/")) {
      ExprKind op = Next().text == "*" ? ExprKind::kMul : ExprKind::kDiv;
      auto rhs = ParseFactor();
      if (!rhs.ok()) return rhs;
      lhs = Expr::Binary(op, std::move(lhs).value(), std::move(rhs).value());
    }
    return lhs;
  }

  Result<ExprPtr> ParseFactor() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kNumber: {
        Token tok = Next();
        if (tok.text.find('.') != std::string::npos) {
          return Expr::Literal(Datum(std::strtod(tok.text.c_str(), nullptr)));
        }
        return Expr::Literal(
            Datum(static_cast<int64_t>(std::strtoll(tok.text.c_str(),
                                                    nullptr, 10))));
      }
      case TokenKind::kString:
        return Expr::Literal(Datum(Next().text));
      case TokenKind::kIdent: {
        auto ref = ResolveColumnToken(Next());
        if (!ref.ok()) return ref.status();
        return Expr::Column(ref.value());
      }
      case TokenKind::kSymbol:
        if (t.text == "?") {
          if (param_mode_ == ParamMode::kReject) {
            return Status::ParseError(
                "parameter marker '?' outside a prepared statement at offset " +
                std::to_string(t.position));
          }
          Next();
          int ordinal = num_params_++;
          if (param_mode_ == ParamMode::kTemplate) {
            return Expr::Literal(Datum::NullValue());
          }
          if (ordinal >= static_cast<int>(params_->size())) {
            return Status::InvalidArgument(
                "statement has more '?' markers than the " +
                std::to_string(params_->size()) + " bound parameter(s)");
          }
          return Expr::Literal((*params_)[static_cast<size_t>(ordinal)]);
        }
        if (t.text == "(") {
          Next();
          auto inner = ParseExpr();
          if (!inner.ok()) return inner;
          if (!Peek().IsSymbol(")")) {
            return Status::ParseError("expected ')' at offset " +
                                      std::to_string(Peek().position));
          }
          Next();
          return inner;
        }
        break;
      default:
        break;
    }
    return Status::ParseError("expected expression at offset " +
                              std::to_string(t.position));
  }

  Status ParseOrderBy() {
    while (true) {
      const Token& t = Peek();
      if (t.kind != TokenKind::kIdent) {
        return Status::ParseError("expected column in ORDER BY at offset " +
                                  std::to_string(t.position));
      }
      auto ref = ResolveColumnToken(Next());
      if (!ref.ok()) return ref.status();
      query_.AddOrderBy(ref.value());
      if (Peek().IsSymbol(",")) {
        Next();
        continue;
      }
      return Status::OK();
    }
  }

  Status ParseSite() {
    const Token& t = Peek();
    std::string name;
    if (t.kind == TokenKind::kIdent || t.kind == TokenKind::kString) {
      name = Next().text;
    } else {
      return Status::ParseError("expected site name at offset " +
                                std::to_string(t.position));
    }
    auto site = catalog_.FindSite(name);
    if (!site.ok()) return site.status();
    query_.set_required_site(site.value());
    return Status::OK();
  }

  static constexpr int kMaxExprDepth = 200;

  const Catalog& catalog_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
  Query query_;
  ParamMode param_mode_ = ParamMode::kReject;
  const std::vector<Datum>* params_ = nullptr;
  int num_params_ = 0;
};

}  // namespace

Result<Query> ParseSql(const Catalog& catalog, const std::string& text) {
  auto tokens = sql::Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(catalog, std::move(tokens).value());
  return parser.Parse();
}

Result<Query> ParseSqlTemplate(const Catalog& catalog, const std::string& text,
                               int* num_params) {
  auto tokens = sql::Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(catalog, std::move(tokens).value());
  parser.set_template_mode();
  auto query = parser.Parse();
  if (!query.ok()) return query;
  if (num_params != nullptr) *num_params = parser.num_params();
  return query;
}

Result<Query> BindSql(const Catalog& catalog, const std::string& text,
                      const std::vector<Datum>& params) {
  auto tokens = sql::Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(catalog, std::move(tokens).value());
  parser.set_bind_params(&params);
  auto query = parser.Parse();
  if (!query.ok()) return query;
  if (parser.num_params() != static_cast<int>(params.size())) {
    return Status::InvalidArgument(
        "statement has " + std::to_string(parser.num_params()) +
        " '?' marker(s) but " + std::to_string(params.size()) +
        " parameter(s) were bound");
  }
  return query;
}

}  // namespace starburst
