#include "sql/lexer.h"

#include <cctype>
#include <set>

#include "common/strings.h"

namespace starburst::sql {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "SELECT", "FROM", "WHERE", "AND", "ORDER", "BY", "AT", "SITE", "AS",
  };
  return kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.position = static_cast<int>(i);
    if (IsIdentStart(c)) {
      size_t j = i;
      // Identifiers may contain one '.' separator (alias.column); the parser
      // splits on it. Site names like "N.Y." are quoted strings instead.
      while (j < n && IsIdentChar(input[j])) ++j;
      std::string word = input.substr(i, j - i);
      std::string upper = ToUpper(word);
      if (Keywords().count(upper)) {
        tok.kind = TokenKind::kKeyword;
        tok.text = upper;
      } else {
        tok.kind = TokenKind::kIdent;
        tok.text = word;
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i;
      bool seen_dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       (input[j] == '.' && !seen_dot))) {
        if (input[j] == '.') seen_dot = true;
        ++j;
      }
      tok.kind = TokenKind::kNumber;
      tok.text = input.substr(i, j - i);
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      std::string content;
      while (j < n && input[j] != '\'') content += input[j++];
      if (j >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(i));
      }
      tok.kind = TokenKind::kString;
      tok.text = content;
      i = j + 1;
    } else {
      static const char* kTwoCharOps[] = {"<=", ">=", "<>", "!="};
      tok.kind = TokenKind::kSymbol;
      bool matched = false;
      if (i + 1 < n) {
        std::string two = input.substr(i, 2);
        for (const char* op : kTwoCharOps) {
          if (two == op) {
            tok.text = two == "!=" ? "<>" : two;
            i += 2;
            matched = true;
            break;
          }
        }
      }
      if (!matched) {
        if (std::string("=<>+-*/(),.?").find(c) == std::string::npos) {
          return Status::ParseError(std::string("unexpected character '") + c +
                                    "' at offset " + std::to_string(i));
        }
        tok.text = std::string(1, c);
        ++i;
      }
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = static_cast<int>(n);
  out.push_back(end);
  return out;
}

}  // namespace starburst::sql
