#ifndef STARBURST_SQL_PARSER_H_
#define STARBURST_SQL_PARSER_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "common/value.h"
#include "query/query.h"

namespace starburst {

/// Parses a conjunctive SQL query against `catalog` into an analyzed Query.
///
/// Supported grammar (enough for every example in the paper):
///
///   query     := SELECT select FROM tables [WHERE conj] [ORDER BY cols]
///                [AT SITE name]
///   select    := '*' | column (',' column)*
///   tables    := table [alias] (',' table [alias])*
///   conj      := cmp (AND cmp)*
///   cmp       := expr ('='|'<>'|'<'|'<='|'>'|'>=') expr
///   expr      := term (('+'|'-') term)*
///   term      := factor (('*'|'/') factor)*
///   factor    := number | 'string' | column | '(' expr ')'
///   column    := [alias '.'] name
///
/// `AT SITE` is an extension expressing the R* requirement that results be
/// delivered to a particular site (the query site by default). Parameter
/// markers ('?') are rejected here; use the prepared-statement entry points
/// below.
Result<Query> ParseSql(const Catalog& catalog, const std::string& text);

/// Parses a statement template containing '?' parameter markers (factor
/// position only, per the grammar above). Each marker becomes a NULL literal
/// in the returned Query — good enough to validate the statement shape and
/// normalize it for plan-cache keying — and `*num_params` (if non-null)
/// receives the marker count. A template with zero markers is legal.
Result<Query> ParseSqlTemplate(const Catalog& catalog, const std::string& text,
                               int* num_params);

/// Parses `text` binding the i-th '?' marker to `params[i]` at parse time.
/// Binding happens in the expression tree, never by textual substitution, so
/// a parameter value can never change the statement shape (no SQL-injection
/// style aliasing). Fails unless exactly params.size() markers are present.
Result<Query> BindSql(const Catalog& catalog, const std::string& text,
                      const std::vector<Datum>& params);

}  // namespace starburst

#endif  // STARBURST_SQL_PARSER_H_
