#ifndef STARBURST_SQL_PARSER_H_
#define STARBURST_SQL_PARSER_H_

#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "query/query.h"

namespace starburst {

/// Parses a conjunctive SQL query against `catalog` into an analyzed Query.
///
/// Supported grammar (enough for every example in the paper):
///
///   query     := SELECT select FROM tables [WHERE conj] [ORDER BY cols]
///                [AT SITE name]
///   select    := '*' | column (',' column)*
///   tables    := table [alias] (',' table [alias])*
///   conj      := cmp (AND cmp)*
///   cmp       := expr ('='|'<>'|'<'|'<='|'>'|'>=') expr
///   expr      := term (('+'|'-') term)*
///   term      := factor (('*'|'/') factor)*
///   factor    := number | 'string' | column | '(' expr ')'
///   column    := [alias '.'] name
///
/// `AT SITE` is an extension expressing the R* requirement that results be
/// delivered to a particular site (the query site by default).
Result<Query> ParseSql(const Catalog& catalog, const std::string& text);

}  // namespace starburst

#endif  // STARBURST_SQL_PARSER_H_
