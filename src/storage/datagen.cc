#include "storage/datagen.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace starburst {

namespace {

Datum RandomValue(const ColumnDef& col, std::mt19937_64* rng) {
  double distinct = std::max(1.0, col.distinct_values);
  uint64_t bucket = (*rng)() % static_cast<uint64_t>(distinct);
  switch (col.type) {
    case ColumnType::kInt64: {
      int64_t lo = col.min_value ? static_cast<int64_t>(*col.min_value) : 0;
      int64_t hi = col.max_value ? static_cast<int64_t>(*col.max_value)
                                 : lo + static_cast<int64_t>(distinct) - 1;
      int64_t span = std::max<int64_t>(1, hi - lo + 1);
      // Spread the distinct buckets across [lo, hi].
      int64_t step = std::max<int64_t>(1, span / static_cast<int64_t>(distinct));
      return Datum(lo + static_cast<int64_t>(bucket) * step % span);
    }
    case ColumnType::kDouble:
      return Datum(static_cast<double>(bucket));
    case ColumnType::kString:
      return Datum("v" + std::to_string(bucket));
  }
  return Datum::NullValue();
}

int64_t ScaledRows(double row_count, double scale) {
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(
                                  row_count * std::max(0.0, scale))));
}

}  // namespace

Status PopulateDatabase(Database* db, uint64_t seed, double scale) {
  std::mt19937_64 rng(seed);
  const Catalog& cat = db->catalog();
  for (TableId id = 0; id < cat.num_tables(); ++id) {
    const TableDef& def = cat.table(id);
    StoredTable& table = db->table(id);
    int64_t rows = ScaledRows(def.row_count, scale);
    for (int64_t r = 0; r < rows; ++r) {
      Tuple row;
      row.reserve(def.columns.size());
      for (size_t c = 0; c < def.columns.size(); ++c) {
        // Column "id" gets unique ascending values so foreign keys can hit.
        if (def.columns[c].name == "id") {
          row.push_back(Datum(r));
        } else {
          row.push_back(RandomValue(def.columns[c], &rng));
        }
      }
      STARBURST_RETURN_NOT_OK(table.Insert(std::move(row)));
    }
  }
  return db->Finalize();
}

Status PopulatePaperDatabase(Database* db, uint64_t seed, double scale) {
  std::mt19937_64 rng(seed);
  const Catalog& cat = db->catalog();

  auto dept_id = cat.FindTable("DEPT");
  auto emp_id = cat.FindTable("EMP");
  if (!dept_id.ok()) return dept_id.status();
  if (!emp_id.ok()) return emp_id.status();

  const TableDef& dept_def = cat.table(dept_id.value());
  const TableDef& emp_def = cat.table(emp_id.value());
  int64_t dept_rows = ScaledRows(dept_def.row_count, scale);
  int64_t emp_rows = ScaledRows(emp_def.row_count, scale);

  StoredTable& dept = db->table(dept_id.value());
  // Managers: 'Haas' runs a handful of departments, everybody else one.
  for (int64_t d = 0; d < dept_rows; ++d) {
    Tuple row;
    row.push_back(Datum(d));  // DNO
    bool haas = d % std::max<int64_t>(2, dept_rows / 3) == 0;
    row.push_back(Datum(haas ? std::string("Haas")
                             : "mgr" + std::to_string(d)));  // MGR
    row.push_back(Datum("dept" + std::to_string(d)));        // DNAME
    row.push_back(Datum(static_cast<int64_t>(rng() % 1000000)));  // BUDGET
    STARBURST_RETURN_NOT_OK(dept.Insert(std::move(row)));
  }

  StoredTable& emp = db->table(emp_id.value());
  for (int64_t e = 0; e < emp_rows; ++e) {
    Tuple row;
    row.push_back(Datum(e));  // ENO
    row.push_back(Datum(static_cast<int64_t>(rng() %
                                             std::max<int64_t>(1, dept_rows))));  // DNO
    row.push_back(Datum("emp" + std::to_string(e)));                 // NAME
    row.push_back(Datum("addr" + std::to_string(e % 97)));           // ADDRESS
    row.push_back(Datum(static_cast<int64_t>(30000 + rng() % 470000)));  // SALARY
    STARBURST_RETURN_NOT_OK(emp.Insert(std::move(row)));
  }
  (void)emp_def;
  return db->Finalize();
}

}  // namespace starburst
