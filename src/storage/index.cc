#include "storage/index.h"

#include <algorithm>

namespace starburst {

namespace {
int CompareKeys(const std::vector<Datum>& a, const std::vector<Datum>& b,
                size_t prefix_len) {
  size_t n = std::min({a.size(), b.size(), prefix_len});
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  return 0;
}
}  // namespace

SecondaryIndex::SecondaryIndex(const StoredTable& table,
                               std::vector<int> key_columns, std::string name)
    : name_(std::move(name)), key_columns_(std::move(key_columns)) {
  entries_.reserve(static_cast<size_t>(table.num_rows()));
  for (Tid tid = 0; tid < table.num_rows(); ++tid) {
    Entry e;
    e.key.reserve(key_columns_.size());
    for (int ord : key_columns_) e.key.push_back(table.row(tid)[ord]);
    e.tid = tid;
    entries_.push_back(std::move(e));
  }
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) {
                     int c = CompareKeys(a.key, b.key, a.key.size());
                     if (c != 0) return c < 0;
                     return a.tid < b.tid;
                   });
}

std::vector<const SecondaryIndex::Entry*> SecondaryIndex::LookupPrefix(
    const std::vector<Datum>& prefix) const {
  std::vector<const Entry*> out;
  auto lo = std::lower_bound(entries_.begin(), entries_.end(), prefix,
                             [&](const Entry& e, const std::vector<Datum>& p) {
                               return CompareKeys(e.key, p, p.size()) < 0;
                             });
  for (auto it = lo; it != entries_.end(); ++it) {
    if (CompareKeys(it->key, prefix, prefix.size()) != 0) break;
    out.push_back(&*it);
  }
  return out;
}

}  // namespace starburst
