#ifndef STARBURST_STORAGE_TABLE_H_
#define STARBURST_STORAGE_TABLE_H_

#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "common/value.h"

namespace starburst {

/// A row of datums, positionally matching a table's column definitions (or a
/// stream schema in the executor).
using Tuple = std::vector<Datum>;

/// Tuple identifier: position of the row within its stored table. The paper
/// treats TIDs as opaque values carried through index ACCESSes and consumed
/// by GET; row position is the simplest faithful realization in an
/// in-memory store.
using Tid = int64_t;

/// One stored table: the run-time counterpart of a catalog TableDef. For
/// kBTree storage the rows are kept sorted on the clustering key (so a
/// "btree" ACCESS naturally yields ordered tuples, giving the base table its
/// ORDER property).
class StoredTable {
 public:
  explicit StoredTable(const TableDef& def) : def_(&def) {}

  const TableDef& def() const { return *def_; }

  /// Appends a row; must match the column count. Call Finalize() after the
  /// last insert.
  Status Insert(Tuple row);

  /// Sorts B-tree tables into clustering-key order. Idempotent.
  void Finalize();

  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }
  const Tuple& row(Tid tid) const { return rows_[static_cast<size_t>(tid)]; }
  const std::vector<Tuple>& rows() const { return rows_; }

 private:
  const TableDef* def_;
  std::vector<Tuple> rows_;
  bool finalized_ = false;
};

class SecondaryIndex;

/// The run-time database: one StoredTable per catalog table plus built
/// secondary indexes. Pointer-stable across inserts; the catalog must
/// outlive it.
class Database {
 public:
  explicit Database(const Catalog& catalog);
  ~Database();

  const Catalog& catalog() const { return *catalog_; }

  StoredTable& table(TableId id) { return *tables_[id]; }
  const StoredTable& table(TableId id) const { return *tables_[id]; }

  Result<StoredTable*> FindTable(const std::string& name);

  /// Sorts B-tree tables and (re)builds every secondary index declared in
  /// the catalog. Call once after loading data.
  Status Finalize();

  /// The built index named `index_name` on table `id` (after Finalize).
  Result<const SecondaryIndex*> FindIndex(TableId id,
                                          const std::string& index_name) const;

 private:
  const Catalog* catalog_;
  std::vector<std::unique_ptr<StoredTable>> tables_;
  // Parallel to catalog indexes: (table id, index name) -> built index.
  std::vector<std::vector<std::unique_ptr<SecondaryIndex>>> indexes_;
};

}  // namespace starburst

#endif  // STARBURST_STORAGE_TABLE_H_
