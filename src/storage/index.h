#ifndef STARBURST_STORAGE_INDEX_H_
#define STARBURST_STORAGE_INDEX_H_

#include <vector>

#include "storage/table.h"

namespace starburst {

/// A secondary access path: sorted (key, TID) entries over a stored table.
/// Scanning it yields tuples in key order — exactly the ORDER property the
/// optimizer attributes to an index ACCESS — and equality prefixes can be
/// probed by binary search.
class SecondaryIndex {
 public:
  /// Builds the index over `table` with the given key column ordinals.
  SecondaryIndex(const StoredTable& table, std::vector<int> key_columns,
                 std::string name);

  const std::string& name() const { return name_; }
  const std::vector<int>& key_columns() const { return key_columns_; }

  struct Entry {
    std::vector<Datum> key;
    Tid tid;
  };

  /// All entries in key order.
  const std::vector<Entry>& entries() const { return entries_; }

  /// Entries whose key starts with `prefix` (binary search; prefix may be
  /// shorter than the full key).
  std::vector<const Entry*> LookupPrefix(const std::vector<Datum>& prefix) const;

 private:
  std::string name_;
  std::vector<int> key_columns_;
  std::vector<Entry> entries_;
};

}  // namespace starburst

#endif  // STARBURST_STORAGE_INDEX_H_
