#ifndef STARBURST_STORAGE_DATAGEN_H_
#define STARBURST_STORAGE_DATAGEN_H_

#include <cstdint>
#include <memory>

#include "storage/table.h"

namespace starburst {

/// Fills every table in `db` with rows consistent with its catalog
/// statistics: integer columns draw uniformly from `distinct_values` values
/// in [min,max]; string columns draw from "v0".."v<distinct-1>". `scale`
/// multiplies catalog row counts (use < 1 to keep executor tests fast while
/// the optimizer sees the full statistics).
Status PopulateDatabase(Database* db, uint64_t seed, double scale = 1.0);

/// Builds and populates the paper's DEPT/EMP example database (§2.1): DNO
/// values join, and DEPT.MGR includes the literal 'Haas' so Figure 1's
/// predicate selects real rows. Row counts are scaled the same way.
Status PopulatePaperDatabase(Database* db, uint64_t seed, double scale = 1.0);

}  // namespace starburst

#endif  // STARBURST_STORAGE_DATAGEN_H_
