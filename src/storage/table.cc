#include "storage/table.h"

#include <algorithm>

#include "storage/index.h"

namespace starburst {

Status StoredTable::Insert(Tuple row) {
  if (row.size() != def_->columns.size()) {
    return Status::InvalidArgument("row arity mismatch for table '" +
                                   def_->name + "'");
  }
  rows_.push_back(std::move(row));
  finalized_ = false;
  return Status::OK();
}

void StoredTable::Finalize() {
  if (finalized_) return;
  if (def_->storage == StorageKind::kBTree) {
    const std::vector<int>& key = def_->btree_key;
    std::stable_sort(rows_.begin(), rows_.end(),
                     [&key](const Tuple& a, const Tuple& b) {
                       for (int ord : key) {
                         int c = a[ord].Compare(b[ord]);
                         if (c != 0) return c < 0;
                       }
                       return false;
                     });
  }
  finalized_ = true;
}

Database::Database(const Catalog& catalog) : catalog_(&catalog) {
  tables_.reserve(catalog.num_tables());
  indexes_.resize(catalog.num_tables());
  for (int i = 0; i < catalog.num_tables(); ++i) {
    tables_.push_back(std::make_unique<StoredTable>(catalog.table(i)));
  }
}

Database::~Database() = default;

Result<StoredTable*> Database::FindTable(const std::string& name) {
  auto id = catalog_->FindTable(name);
  if (!id.ok()) return id.status();
  return tables_[id.value()].get();
}

Status Database::Finalize() {
  for (int i = 0; i < catalog_->num_tables(); ++i) {
    tables_[i]->Finalize();
    indexes_[i].clear();
    for (const IndexDef& ix : catalog_->table(i).indexes) {
      indexes_[i].push_back(std::make_unique<SecondaryIndex>(
          *tables_[i], ix.key_columns, ix.name));
    }
  }
  return Status::OK();
}

Result<const SecondaryIndex*> Database::FindIndex(
    TableId id, const std::string& index_name) const {
  for (const auto& ix : indexes_[id]) {
    if (ix->name() == index_name) return ix.get();
  }
  return Status::NotFound("index '" + index_name + "' not built on table " +
                          catalog_->table(id).name);
}

}  // namespace starburst
