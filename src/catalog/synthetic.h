#ifndef STARBURST_CATALOG_SYNTHETIC_H_
#define STARBURST_CATALOG_SYNTHETIC_H_

#include <cstdint>

#include "catalog/catalog.h"

namespace starburst {

/// Options for the synthetic star/chain-schema catalog generator used by the
/// benchmarks (the paper evaluated against R*'s catalogs, which we do not
/// have; a seeded generator with System-R-style statistics is the documented
/// substitute — see DESIGN.md §7).
struct SyntheticCatalogOptions {
  int num_tables = 4;
  /// Rows in table i are drawn log-uniformly from [min_rows, max_rows].
  int64_t min_rows = 1000;
  int64_t max_rows = 100000;
  /// Non-key payload columns per table (each table also gets `id` and one
  /// foreign key per chain edge).
  int payload_columns = 3;
  /// Fraction of tables whose primary data is a B-tree on `id`.
  double btree_fraction = 0.5;
  /// Probability that a foreign-key column has a secondary index.
  double fk_index_probability = 0.7;
  /// Number of sites; tables are assigned round-robin. 1 = centralized.
  int num_sites = 1;
  /// Rows per data page (uniform, drives page-count statistics).
  double rows_per_page = 40.0;
  uint64_t seed = 42;
};

/// Builds a chain schema T0 <- T1 <- ... <- Tn-1: each Ti (i>0) has a column
/// `fk0` referencing T(i-1).id, so any contiguous table subset is joinable by
/// equality predicates — the workload shape the System-R lineage (and the
/// paper's join enumeration discussion) assumes.
Catalog MakeSyntheticCatalog(const SyntheticCatalogOptions& options);

/// The paper's running example (§2.1, Figures 1 and 3): DEPT(DNO, MGR, ...)
/// and EMP(ENO, DNO, NAME, ADDRESS, ...), with an index on EMP.DNO.
/// `dept_site`/`emp_site` allow the Figure-3 distributed variant (DEPT at
/// N.Y., query at L.A.); by default everything is at the query site.
struct PaperCatalogOptions {
  int64_t dept_rows = 500;
  int64_t emp_rows = 20000;
  bool emp_dno_index = true;
  bool distributed = false;  ///< adds sites N.Y., L.A.; DEPT at N.Y.
};

Catalog MakePaperCatalog(const PaperCatalogOptions& options = {});

}  // namespace starburst

#endif  // STARBURST_CATALOG_SYNTHETIC_H_
