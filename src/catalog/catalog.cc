#include "catalog/catalog.h"

namespace starburst {

const char* StorageKindName(StorageKind kind) {
  switch (kind) {
    case StorageKind::kHeap:
      return "heap";
    case StorageKind::kBTree:
      return "btree";
  }
  return "?";
}

int TableDef::FindColumn(const std::string& column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

Catalog::Catalog() {
  site_names_.push_back("query-site");
  site_by_name_["query-site"] = 0;
}

Catalog::Catalog(const Catalog& other)
    : tables_(other.tables_),
      table_by_name_(other.table_by_name_),
      site_names_(other.site_names_),
      site_by_name_(other.site_by_name_),
      ddl_generation_(other.ddl_generation()),
      stats_generation_(other.stats_generation()) {}

Catalog& Catalog::operator=(const Catalog& other) {
  if (this == &other) return *this;
  tables_ = other.tables_;
  table_by_name_ = other.table_by_name_;
  site_names_ = other.site_names_;
  site_by_name_ = other.site_by_name_;
  ddl_generation_.store(other.ddl_generation(), std::memory_order_release);
  stats_generation_.store(other.stats_generation(), std::memory_order_release);
  return *this;
}

SiteId Catalog::AddSite(const std::string& name) {
  auto it = site_by_name_.find(name);
  if (it != site_by_name_.end()) return it->second;
  SiteId id = static_cast<SiteId>(site_names_.size());
  site_names_.push_back(name);
  site_by_name_[name] = id;
  BumpDdl();
  return id;
}

Result<TableId> Catalog::AddTable(TableDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  if (table_by_name_.count(def.name)) {
    return Status::AlreadyExists("table '" + def.name + "' already defined");
  }
  if (def.columns.empty()) {
    return Status::InvalidArgument("table '" + def.name + "' has no columns");
  }
  if (def.site < 0 || def.site >= num_sites()) {
    return Status::InvalidArgument("table '" + def.name + "' has unknown site");
  }
  for (int ord : def.btree_key) {
    if (ord < 0 || ord >= static_cast<int>(def.columns.size())) {
      return Status::InvalidArgument("btree key ordinal out of range for '" +
                                     def.name + "'");
    }
  }
  if (def.storage == StorageKind::kBTree && def.btree_key.empty()) {
    return Status::InvalidArgument("btree table '" + def.name +
                                   "' needs a clustering key");
  }
  for (const IndexDef& ix : def.indexes) {
    for (int ord : ix.key_columns) {
      if (ord < 0 || ord >= static_cast<int>(def.columns.size())) {
        return Status::InvalidArgument("index '" + ix.name +
                                       "' key ordinal out of range");
      }
    }
  }
  TableId id = static_cast<TableId>(tables_.size());
  table_by_name_[def.name] = id;
  tables_.push_back(std::move(def));
  BumpDdl();
  return id;
}

Status Catalog::AddIndex(const std::string& table, IndexDef index) {
  auto id = FindTable(table);
  if (!id.ok()) return id.status();
  TableDef& def = tables_[id.value()];
  for (const IndexDef& existing : def.indexes) {
    if (existing.name == index.name) {
      return Status::AlreadyExists("index '" + index.name + "' exists on '" +
                                   table + "'");
    }
  }
  for (int ord : index.key_columns) {
    if (ord < 0 || ord >= static_cast<int>(def.columns.size())) {
      return Status::InvalidArgument("index key ordinal out of range");
    }
  }
  def.indexes.push_back(std::move(index));
  BumpDdl();
  return Status::OK();
}

Result<TableId> Catalog::FindTable(const std::string& name) const {
  auto it = table_by_name_.find(name);
  if (it == table_by_name_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second;
}

Result<SiteId> Catalog::FindSite(const std::string& name) const {
  auto it = site_by_name_.find(name);
  if (it == site_by_name_.end()) {
    return Status::NotFound("no site named '" + name + "'");
  }
  return it->second;
}

std::vector<SiteId> Catalog::AllSites() const {
  std::vector<SiteId> out;
  out.reserve(site_names_.size());
  for (int i = 0; i < num_sites(); ++i) out.push_back(i);
  return out;
}

}  // namespace starburst
