#ifndef STARBURST_CATALOG_CATALOG_H_
#define STARBURST_CATALOG_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace starburst {

/// Identifier of a site in a distributed database. Site 0 is always the
/// query site ("local"). The paper's SITE property ranges over these.
using SiteId = int;

/// Identifier of a table within a Catalog (dense, 0-based).
using TableId = int;

/// Per-column statistics and schema, as recorded in the system catalogs
/// (paper §3.1: "Initially, the properties of stored objects ... are
/// determined from the system catalogs").
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  /// Estimated number of distinct values (System-R style statistic).
  double distinct_values = 1.0;
  /// Min/max for range-selectivity estimation; unset for strings.
  std::optional<double> min_value;
  std::optional<double> max_value;
  /// Average stored width in bytes (drives SHIP and temp sizing).
  double avg_width = 8.0;
};

/// How a stored table's primary data is managed (paper §4.5.2: the
/// TableAccess STAR dispatches on the storage-manager type per [LIND 87]).
enum class StorageKind { kHeap, kBTree };

const char* StorageKindName(StorageKind kind);

/// A secondary access path (index) on a stored table. Index entries expose
/// the key columns plus the tuple identifier (TID); matching the paper, an
/// index ACCESS yields {key columns, TID} and a GET fetches the rest.
struct IndexDef {
  std::string name;
  /// Ordinals (into TableDef::columns) of the key columns, in key order.
  std::vector<int> key_columns;
  bool unique = false;
  /// Clustered: data pages are in index order, so range scans touch
  /// ~selectivity * data_pages pages rather than one page per matching row.
  bool clustered = false;
  /// Estimated number of leaf pages.
  double leaf_pages = 1.0;
};

/// Schema + statistics + physical placement of one stored table.
struct TableDef {
  std::string name;
  std::vector<ColumnDef> columns;
  double row_count = 0.0;
  double data_pages = 1.0;
  SiteId site = 0;
  StorageKind storage = StorageKind::kHeap;
  /// For kBTree storage: ordinals of the clustering key (tuples are stored
  /// in this order, so the base table itself has a known ORDER property).
  std::vector<int> btree_key;
  std::vector<IndexDef> indexes;

  /// Ordinal of `column_name`, or -1 if absent.
  int FindColumn(const std::string& column_name) const;
};

/// The system catalogs: sites and stored tables with statistics. This is the
/// optimizer's entire view of the database; the storage engine (storage/)
/// holds the actual rows, keyed by the same names.
class Catalog {
 public:
  Catalog();
  /// Generation counters are atomics, which delete the implicit copies; a
  /// copied catalog starts its own generation history from the source's.
  Catalog(const Catalog& other);
  Catalog& operator=(const Catalog& other);

  /// Registers a site and returns its id. Site 0 ("query site") always
  /// exists.
  SiteId AddSite(const std::string& name);

  /// Registers a table; fails if the name exists or the def is malformed.
  Result<TableId> AddTable(TableDef def);

  /// Adds an index to an existing table.
  Status AddIndex(const std::string& table, IndexDef index);

  int num_tables() const { return static_cast<int>(tables_.size()); }
  int num_sites() const { return static_cast<int>(site_names_.size()); }

  const TableDef& table(TableId id) const { return tables_[id]; }
  TableDef& mutable_table(TableId id) { return tables_[id]; }

  Result<TableId> FindTable(const std::string& name) const;
  const std::string& site_name(SiteId id) const { return site_names_[id]; }
  Result<SiteId> FindSite(const std::string& name) const;

  /// All site ids (0..n-1), convenience for the join-site STAR's sigma set.
  std::vector<SiteId> AllSites() const;

  /// Schema (DDL) generation: bumped by AddSite/AddTable/AddIndex. Plan
  /// caches key their entries on this; a bump means every cached plan that
  /// was optimized against the old schema is stale.
  int64_t ddl_generation() const {
    return ddl_generation_.load(std::memory_order_acquire);
  }
  /// Statistics generation: bumped by NoteStatisticsUpdate() after callers
  /// mutate statistics in place via mutable_table(). Cached plans remain
  /// *correct* across a stats bump but may no longer be the cheapest, so
  /// caches treat it exactly like a DDL bump and re-optimize.
  int64_t stats_generation() const {
    return stats_generation_.load(std::memory_order_acquire);
  }
  /// Callers that edit statistics through mutable_table() announce it here
  /// (RUNSTATS in System R terms); the catalog cannot see in-place edits.
  void NoteStatisticsUpdate() {
    stats_generation_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  void BumpDdl() { ddl_generation_.fetch_add(1, std::memory_order_acq_rel); }

  std::vector<TableDef> tables_;
  std::map<std::string, TableId> table_by_name_;
  std::vector<std::string> site_names_;
  std::map<std::string, SiteId> site_by_name_;
  std::atomic<int64_t> ddl_generation_{0};
  std::atomic<int64_t> stats_generation_{0};
};

}  // namespace starburst

#endif  // STARBURST_CATALOG_CATALOG_H_
