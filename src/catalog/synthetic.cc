#include "catalog/synthetic.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>

namespace starburst {

namespace {

/// AddTable can only fail on a duplicate name, which the generators never
/// produce; if that invariant is ever broken, abort with the message instead
/// of throwing (the library keeps exceptions out of its public surface).
void MustAddTable(Catalog* cat, TableDef t) {
  auto added = cat->AddTable(std::move(t));
  if (!added.ok()) {
    std::fprintf(stderr, "synthetic catalog: %s\n",
                 added.status().ToString().c_str());
    std::abort();
  }
}

ColumnDef IntColumn(std::string name, double distinct, double min_v,
                    double max_v) {
  ColumnDef c;
  c.name = std::move(name);
  c.type = ColumnType::kInt64;
  c.distinct_values = distinct;
  c.min_value = min_v;
  c.max_value = max_v;
  c.avg_width = 8.0;
  return c;
}

ColumnDef StringColumn(std::string name, double distinct, double width) {
  ColumnDef c;
  c.name = std::move(name);
  c.type = ColumnType::kString;
  c.distinct_values = distinct;
  c.avg_width = width;
  return c;
}

}  // namespace

Catalog MakeSyntheticCatalog(const SyntheticCatalogOptions& options) {
  Catalog cat;
  std::mt19937_64 rng(options.seed);
  for (int s = 1; s < options.num_sites; ++s) {
    cat.AddSite("site-" + std::to_string(s));
  }

  std::uniform_real_distribution<double> unit(0.0, 1.0);
  double log_min = std::log(static_cast<double>(options.min_rows));
  double log_max = std::log(static_cast<double>(options.max_rows));

  std::vector<double> row_counts(options.num_tables);
  for (int i = 0; i < options.num_tables; ++i) {
    double lr = log_min + unit(rng) * (log_max - log_min);
    row_counts[i] = std::floor(std::exp(lr));
  }

  for (int i = 0; i < options.num_tables; ++i) {
    TableDef t;
    t.name = "T" + std::to_string(i);
    double rows = row_counts[i];
    t.row_count = rows;
    t.data_pages = std::max(1.0, std::ceil(rows / options.rows_per_page));
    t.site = options.num_sites > 1 ? (i % options.num_sites) : 0;

    t.columns.push_back(IntColumn("id", rows, 0, rows - 1));
    if (i > 0) {
      // Foreign key into the previous table in the chain; value domain is
      // that table's id domain.
      double parent_rows = row_counts[i - 1];
      t.columns.push_back(
          IntColumn("fk0", std::min(rows, parent_rows), 0, parent_rows - 1));
    }
    for (int p = 0; p < options.payload_columns; ++p) {
      double distinct = std::max(2.0, std::floor(rows / std::pow(10, p % 3)));
      t.columns.push_back(IntColumn("c" + std::to_string(p),
                                    distinct, 0, distinct - 1));
    }

    if (unit(rng) < options.btree_fraction) {
      t.storage = StorageKind::kBTree;
      t.btree_key = {0};  // clustered on id
    }

    if (i > 0 && unit(rng) < options.fk_index_probability) {
      IndexDef ix;
      ix.name = t.name + "_fk0_ix";
      ix.key_columns = {1};  // fk0
      ix.leaf_pages = std::max(1.0, std::ceil(rows / 200.0));
      t.indexes.push_back(ix);
    }
    MustAddTable(&cat, std::move(t));
  }
  return cat;
}

Catalog MakePaperCatalog(const PaperCatalogOptions& options) {
  Catalog cat;
  SiteId dept_site = 0;
  if (options.distributed) {
    dept_site = cat.AddSite("N.Y.");
    cat.AddSite("L.A.");
  }

  double dept_rows = static_cast<double>(options.dept_rows);
  double emp_rows = static_cast<double>(options.emp_rows);

  TableDef dept;
  dept.name = "DEPT";
  dept.columns.push_back(IntColumn("DNO", dept_rows, 0, dept_rows - 1));
  dept.columns.push_back(StringColumn("MGR", dept_rows / 2.0, 16.0));
  dept.columns.push_back(StringColumn("DNAME", dept_rows, 20.0));
  dept.columns.push_back(IntColumn("BUDGET", dept_rows / 4.0, 0, 1e6));
  dept.row_count = dept_rows;
  dept.data_pages = std::max(1.0, std::ceil(dept_rows / 40.0));
  dept.site = dept_site;
  MustAddTable(&cat, std::move(dept));

  TableDef emp;
  emp.name = "EMP";
  emp.columns.push_back(IntColumn("ENO", emp_rows, 0, emp_rows - 1));
  emp.columns.push_back(IntColumn("DNO", dept_rows, 0, dept_rows - 1));
  emp.columns.push_back(StringColumn("NAME", emp_rows, 16.0));
  emp.columns.push_back(StringColumn("ADDRESS", emp_rows, 32.0));
  emp.columns.push_back(IntColumn("SALARY", 1000, 0, 500000));
  emp.row_count = emp_rows;
  emp.data_pages = std::max(1.0, std::ceil(emp_rows / 20.0));
  emp.site = 0;
  if (options.emp_dno_index) {
    IndexDef ix;
    ix.name = "EMP_DNO_IX";
    ix.key_columns = {1};  // DNO
    ix.leaf_pages = std::max(1.0, std::ceil(emp_rows / 200.0));
    emp.indexes.push_back(ix);
  }
  MustAddTable(&cat, std::move(emp));
  return cat;
}

}  // namespace starburst
