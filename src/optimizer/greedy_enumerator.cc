#include "optimizer/greedy_enumerator.h"

#include <limits>
#include <vector>

#include "cost/cost_model.h"
#include "obs/trace.h"
#include "query/query.h"

namespace starburst {

namespace {
/// Same rationale as enumeration proper: augmented-plan caching depends on
/// resolve order, and the degraded plan must not.
class GlueCacheGuard {
 public:
  explicit GlueCacheGuard(Glue* glue)
      : glue_(glue), saved_(glue->cache_augmented()) {
    glue_->set_cache_augmented(false);
  }
  ~GlueCacheGuard() { glue_->set_cache_augmented(saved_); }
  GlueCacheGuard(const GlueCacheGuard&) = delete;
  GlueCacheGuard& operator=(const GlueCacheGuard&) = delete;

 private:
  Glue* glue_;
  bool saved_;
};
}  // namespace

Status GreedyJoinEnumerator::Run() {
  const Query& query = engine_->query();
  const int n = query.num_quantifiers();
  if (n == 0) {
    return Status::InvalidArgument("query has no tables");
  }
  const PredSet all_preds = query.AllPredicates();
  const CostModel& cost_model = engine_->factory().cost_model();
  const bool allow_cartesian = engine_->options().allow_cartesian;
  Tracer* tracer = engine_->tracer();
  TraceSpan run_span(tracer, TraceKind::kEnumerator, "greedy enumerate");

  GlueCacheGuard cache_guard(glue_);

  auto eligible = [&](QuantifierSet tables) {
    return query.EligiblePredicates(tables, all_preds);
  };

  // Base plans for every table (the table was cleared before the fallback,
  // so each Resolve re-references AccessRoot and repopulates the bucket).
  std::vector<double> base_cost(static_cast<size_t>(n), 0.0);
  for (int q = 0; q < n; ++q) {
    StreamSpec spec;
    spec.tables = QuantifierSet::Single(q);
    spec.preds = eligible(spec.tables);
    auto sap = glue_->Resolve(spec);
    if (!sap.ok()) return sap.status();
    PlanPtr cheapest = CheapestPlan(sap.value(), cost_model);
    if (cheapest == nullptr) {
      return Status::NotFound("greedy fallback: no access plan satisfies "
                              "quantifier '" + query.quantifier(q).alias +
                              "'");
    }
    base_cost[static_cast<size_t>(q)] = cost_model.Total(cheapest->props.cost());
  }
  if (n == 1) return Status::OK();

  // Start from the cheapest base table (ties to the lowest index).
  int start = 0;
  for (int q = 1; q < n; ++q) {
    if (base_cost[static_cast<size_t>(q)] <
        base_cost[static_cast<size_t>(start)]) {
      start = q;
    }
  }

  auto joinable = [&](QuantifierSet t1, QuantifierSet t2) {
    for (int id = 0; id < query.num_predicates(); ++id) {
      const Predicate& p = query.predicate(id);
      if (p.quantifiers.size() < 2) continue;
      if (!t1.Union(t2).ContainsAll(p.quantifiers)) continue;
      if (p.quantifiers.Intersects(t1) && p.quantifiers.Intersects(t2)) {
        return true;
      }
    }
    return false;
  };

  QuantifierSet current = QuantifierSet::Single(start);
  while (current.size() < static_cast<size_t>(n)) {
    PredSet elig_cur = eligible(current);
    StreamSpec cur_spec{current, elig_cur, {}};

    // Cheapest feasible next join: evaluate JoinRoot(current, t) for every
    // joinable remaining table and commit the cheapest extension.
    int best_q = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    SAP best_sap;
    for (int q = 0; q < n; ++q) {
      QuantifierSet t = QuantifierSet::Single(q);
      if (current.Intersects(t)) continue;
      if (!joinable(current, t) && !allow_cartesian) continue;

      PredSet elig_t = eligible(t);
      PredSet elig_union = eligible(current.Union(t));
      PredSet newly = elig_union.Minus(elig_cur).Minus(elig_t);
      StreamSpec t_spec{t, elig_t, {}};
      ++join_root_refs_;
      auto sap = engine_->EvalStar(join_root_, {RuleValue(cur_spec),
                                                RuleValue(t_spec),
                                                RuleValue(newly)});
      if (!sap.ok()) return sap.status();
      PlanPtr cheapest = CheapestPlan(sap.value(), cost_model);
      if (cheapest == nullptr) continue;
      double cost = cost_model.Total(cheapest->props.cost());
      // Strict `<` breaks cost ties toward the lowest quantifier index.
      if (cost < best_cost) {
        best_cost = cost;
        best_q = q;
        best_sap = std::move(sap).value();
      }
    }
    if (best_q < 0) {
      return Status::NotFound(
          "greedy fallback: no joinable table extends " +
          current.ToString() +
          (allow_cartesian ? "" : " (Cartesian products are disabled)"));
    }
    current = current.Union(QuantifierSet::Single(best_q));
    // The canonical key is where Glue's composite lookup will search.
    table_->InsertBatch(current, eligible(current), best_sap);
  }

  if (run_span.active()) {
    run_span.set_detail(std::to_string(join_root_refs_) +
                        " join_root_ref(s)");
  }
  return Status::OK();
}

}  // namespace starburst
