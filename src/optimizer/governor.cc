#include "optimizer/governor.h"

namespace starburst {

ResourceGovernor::ResourceGovernor(GovernorLimits limits)
    : limits_(limits), deadline_(limits.deadline_ms) {}

void ResourceGovernor::Trip(std::string reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (reason_.empty()) reason_ = std::move(reason);
  }
  stopped_.store(true, std::memory_order_release);
}

std::string ResourceGovernor::reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reason_;
}

Status ResourceGovernor::Check() {
  // Once tripped — by any thread — every check everywhere reports the same
  // exhaustion, so the whole run winds down cooperatively.
  if (!stopped_.load(std::memory_order_acquire)) {
    if (limits_.max_plans > 0 &&
        plans_.load(std::memory_order_relaxed) >= limits_.max_plans) {
      Trip("max_plans budget of " + std::to_string(limits_.max_plans) +
           " plans exhausted (" +
           std::to_string(plans_.load(std::memory_order_relaxed)) +
           " considered)");
    } else if (limits_.max_plan_table_bytes > 0 &&
               bytes_.load(std::memory_order_relaxed) >=
                   limits_.max_plan_table_bytes) {
      Trip("plan-table memory budget of " +
           std::to_string(limits_.max_plan_table_bytes) +
           " bytes exhausted (approx " +
           std::to_string(bytes_.load(std::memory_order_relaxed)) +
           " bytes held)");
    } else if (deadline_.expired()) {
      Trip("deadline of " + std::to_string(limits_.deadline_ms) +
           "ms exceeded");
    }
  }
  if (!stopped_.load(std::memory_order_acquire)) return Status::OK();
  return Status::ResourceExhausted("optimizer budget exhausted: " + reason());
}

}  // namespace starburst
