#ifndef STARBURST_OPTIMIZER_OPTIMIZER_H_
#define STARBURST_OPTIMIZER_OPTIMIZER_H_

#include <string>

#include "cost/cost_model.h"
#include "glue/glue.h"
#include "optimizer/enumerator.h"
#include "optimizer/plan_table.h"
#include "star/default_rules.h"
#include "star/engine.h"
#include "star/memo.h"

namespace starburst {

class MetricsRegistry;
class Tracer;

/// Default for OptimizerOptions::num_threads: the STARBURST_NUM_THREADS
/// environment variable if set (0 = one per hardware thread), else 1.
int DefaultEnumerationThreads();

/// Defaults for the resource budgets, from STARBURST_DEADLINE_MS,
/// STARBURST_MAX_PLANS, and STARBURST_MAX_PLAN_TABLE_BYTES respectively
/// (0 or unset/invalid = unlimited).
int64_t DefaultDeadlineMs();
int64_t DefaultMaxPlans();
int64_t DefaultMaxPlanTableBytes();

/// Default for OptimizerOptions::shared_memo: STARBURST_SHARED_MEMO (on
/// unless set to 0/false).
bool DefaultSharedMemo();

struct OptimizerOptions {
  EngineOptions engine;
  CostParams cost_params;
  /// Worker count for rank-parallel join enumeration: 1 = sequential,
  /// 0 = one per hardware thread, n = a pool of n workers. Any value yields
  /// the same best-plan cost and plan shape (see DESIGN.md).
  int num_threads = DefaultEnumerationThreads();
  /// Resource budgets for one Optimize call (0 = unlimited). When a budget
  /// trips mid-enumeration the optimizer degrades to a greedy left-deep
  /// search instead of failing; see OptimizeResult::degradation_reason.
  int64_t deadline_ms = DefaultDeadlineMs();
  int64_t max_plans = DefaultMaxPlans();
  int64_t max_plan_table_bytes = DefaultMaxPlanTableBytes();
  /// Consult a shared cross-worker memo of STAR expansions keyed on
  /// canonical (star, args) signatures. Purely an effort saver: any
  /// combination of shared_memo/cache_augmented/num_threads yields the same
  /// best-plan cost and shape (tests/plan_equivalence_test.cc). The memo's
  /// bytes count against max_plan_table_bytes.
  bool shared_memo = DefaultSharedMemo();
  /// Cache Glue resolutions of augmented plans (Figure 3's plan 3) as
  /// whole-Resolve memo entries under canonical spec keys — deterministic,
  /// so it stays on during parallel enumeration.
  bool cache_augmented = true;
  /// Non-owning observability sinks, both optional. The tracer records one
  /// rule-firing tree per Optimize call; the registry accumulates effort
  /// counters (star.*, glue.*, plan_table.*, enumerator.*) and per-phase
  /// latency histograms (optimizer.phase.*) across calls.
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
};

/// Everything a caller might want to know about one optimization run.
struct OptimizeResult {
  PlanPtr best;     ///< cheapest plan satisfying the query's requirements
  SAP final_plans;  ///< Pareto frontier of satisfying plans

  EngineMetrics engine_metrics;
  Glue::Metrics glue_metrics;
  PlanTable::Stats table_stats;
  JoinEnumerator::Stats enumerator_stats;
  ExpansionMemo::Stats memo_stats;
  int64_t plan_nodes_created = 0;
  int64_t plans_in_table = 0;
  double total_cost = 0.0;  ///< weighted cost of `best`
  double optimize_micros = 0.0;
  /// Empty for a full dynamic-programming run; otherwise the budget that
  /// tripped (e.g. "max_plans budget of 500 plans exhausted ..."), meaning
  /// `best` came from the greedy left-deep fallback.
  std::string degradation_reason;

  bool degraded() const { return !degradation_reason.empty(); }
};

/// The rule-driven optimizer: owns the rule base, the operator registry, and
/// the function registry — the three things a Database Customizer edits
/// (paper §5) — and runs the STAR engine + Glue + join enumerator per query.
class Optimizer {
 public:
  explicit Optimizer(RuleSet rules,
                     OptimizerOptions options = OptimizerOptions{});

  /// Optimizes `query` and returns the chosen plan plus effort metrics.
  /// Query-level requirements (ORDER BY, AT SITE) become the final Glue
  /// reference's required properties.
  Result<OptimizeResult> Optimize(const Query& query);

  /// The live rule base; replace or extend STARs between queries.
  RuleSet& rules() { return rules_; }
  /// Register new LOLEPOPs (property functions) here.
  OperatorRegistry& operators() { return operators_; }
  /// Register new condition/derivation functions here.
  FunctionRegistry& functions() { return functions_; }

  OptimizerOptions& options() { return options_; }

 private:
  RuleSet rules_;
  OptimizerOptions options_;
  OperatorRegistry operators_;
  FunctionRegistry functions_;
  /// Builtin-registration outcome, reported from Optimize() rather than
  /// thrown from the constructor.
  Status init_status_;
};

}  // namespace starburst

#endif  // STARBURST_OPTIMIZER_OPTIMIZER_H_
