#ifndef STARBURST_OPTIMIZER_PLAN_TABLE_H_
#define STARBURST_OPTIMIZER_PLAN_TABLE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/id_set.h"
#include "star/rule.h"

namespace starburst {

class CostModel;
class MetricsRegistry;
class ResourceGovernor;
class Tracer;

/// Rough per-node memory footprint of a plan (the node itself, excluding
/// shared subtrees) — the unit of the plan table's byte accounting.
int64_t ApproxPlanBytes(const PlanOp& plan);

/// True if `a` is at least as cheap as `b` and at least as good on every
/// physical property (site equal, temp equal, b's order a prefix of a's,
/// a's paths covering b's) — then `b` is redundant.
bool PlanDominates(const PlanOp& a, const PlanOp& b,
                   const CostModel& cost_model);

/// Removes every plan dominated by another plan in the set.
void PruneDominated(SAP* plans, const CostModel& cost_model);

/// The plan with the lowest total cost (nullptr for an empty set). Cost ties
/// are broken structurally (plan signature, then node id), never by position
/// in `plans`, so the choice is identical no matter what order parallel
/// enumeration inserted the candidates in.
PlanPtr CheapestPlan(const SAP& plans, const CostModel& cost_model);

/// The optimizer's memo: "a data structure hashed on the tables and
/// predicates facilitates finding all such plans" (paper §4.4). Each bucket
/// keeps the Pareto frontier over (total cost; ORDER, SITE, TEMP, PATHS):
/// a plan is dropped only if some kept plan is no more expensive and at
/// least as good on every physical property — the System-R "interesting
/// order" rule generalized to the whole property vector.
///
/// Thread-safe: the buckets are sharded by key hash, each shard behind its
/// own mutex, so rank-parallel enumeration workers insert and look up
/// concurrently. Lookup returns a copy of the bucket taken under the shard
/// lock rather than a pointer into it — a pointer could dangle (or expose a
/// half-built bucket) the moment another worker inserts into the same key.
class PlanTable {
 public:
  explicit PlanTable(const CostModel* cost_model) : cost_model_(cost_model) {}

  struct Stats {
    int64_t inserts = 0;
    int64_t kept = 0;
    int64_t pruned_dominated = 0;   ///< arrivals dominated by a kept plan
    int64_t evicted_dominated = 0;  ///< kept plans dominated by an arrival
    int64_t lookups = 0;
    int64_t hits = 0;
    int64_t approx_bytes = 0;  ///< approximate memory of currently kept plans

    std::string ToString() const;
    /// Publishes the counters into `registry` under the `plan_table.` prefix.
    void Publish(MetricsRegistry* registry) const;
  };

  /// Adds `plan` under (tables, preds); returns true if it was kept.
  bool Insert(QuantifierSet tables, PredSet preds, PlanPtr plan);

  /// Inserts every plan of `plans` under one shard-lock acquisition, so
  /// concurrent readers see either none or all of the batch — never a
  /// partially filled bucket whose Pareto frontier is still being built.
  /// Returns the number of plans kept.
  int InsertBatch(QuantifierSet tables, PredSet preds, const SAP& plans);

  /// A copy of the kept plans for the key, or nullopt if none. The copy is
  /// cheap (a vector of shared_ptr) and safe to use without holding any lock.
  std::optional<SAP> Lookup(QuantifierSet tables, PredSet preds);

  /// True if the key holds at least one plan (counted as a lookup/hit).
  bool Contains(QuantifierSet tables, PredSet preds);

  /// Number of keys / total plans held.
  int64_t num_buckets() const;
  int64_t num_plans() const;

  /// Approximate memory held by the kept plans (node-level estimate).
  int64_t approx_bytes() const {
    return approx_bytes_.load(std::memory_order_relaxed);
  }

  /// Drops every bucket and resets the byte gauge (cumulative counters are
  /// kept). The greedy fallback clears the table before rebuilding so the
  /// degraded plan never depends on whatever partial DP state the interrupt
  /// left behind — that keeps the fallback deterministic at any thread count.
  void Clear();

  /// A consistent snapshot of the counters.
  Stats stats() const;

  /// Attach a tracer to record each prune/keep/evict decision (null = off).
  /// Not safe to call while inserts are in flight.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Attach a governor to account plan arrivals and byte deltas against its
  /// budgets (null = off). Not safe to call while inserts are in flight.
  void set_governor(ResourceGovernor* governor) { governor_ = governor; }

 private:
  struct Key {
    uint64_t tables;
    uint64_t preds;
    bool operator==(const Key& o) const {
      return tables == o.tables && preds == o.preds;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>{}(k.tables * 0x9e3779b97f4a7c15ULL ^
                                   k.preds);
    }
  };

  // 16 shards keeps lock contention negligible for the handful of workers a
  // query optimizer runs, without bloating the table for tiny queries.
  static constexpr size_t kNumShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, SAP, KeyHash> buckets;
  };

  Shard& ShardFor(const Key& key) {
    return shards_[KeyHash{}(key) % kNumShards];
  }
  const Shard& ShardFor(const Key& key) const {
    return shards_[KeyHash{}(key) % kNumShards];
  }

  /// Inserts one plan into `bucket` (the shard lock must be held).
  bool InsertLocked(QuantifierSet tables, SAP& bucket, PlanPtr plan);

  const CostModel* cost_model_;
  Tracer* tracer_ = nullptr;
  ResourceGovernor* governor_ = nullptr;
  std::array<Shard, kNumShards> shards_;

  // The tracer itself is not thread-safe; a dedicated mutex serializes the
  // (rare, debug-only) prune/keep/evict instants from concurrent workers.
  std::mutex trace_mu_;

  std::atomic<int64_t> inserts_{0};
  std::atomic<int64_t> kept_{0};
  std::atomic<int64_t> pruned_dominated_{0};
  std::atomic<int64_t> evicted_dominated_{0};
  std::atomic<int64_t> lookups_{0};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> approx_bytes_{0};
};

}  // namespace starburst

#endif  // STARBURST_OPTIMIZER_PLAN_TABLE_H_
