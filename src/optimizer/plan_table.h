#ifndef STARBURST_OPTIMIZER_PLAN_TABLE_H_
#define STARBURST_OPTIMIZER_PLAN_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/id_set.h"
#include "star/rule.h"

namespace starburst {

class CostModel;
class MetricsRegistry;
class Tracer;

/// True if `a` is at least as cheap as `b` and at least as good on every
/// physical property (site equal, temp equal, b's order a prefix of a's,
/// a's paths covering b's) — then `b` is redundant.
bool PlanDominates(const PlanOp& a, const PlanOp& b,
                   const CostModel& cost_model);

/// Removes every plan dominated by another plan in the set.
void PruneDominated(SAP* plans, const CostModel& cost_model);

/// The plan with the lowest total cost (nullptr for an empty set).
PlanPtr CheapestPlan(const SAP& plans, const CostModel& cost_model);

/// The optimizer's memo: "a data structure hashed on the tables and
/// predicates facilitates finding all such plans" (paper §4.4). Each bucket
/// keeps the Pareto frontier over (total cost; ORDER, SITE, TEMP, PATHS):
/// a plan is dropped only if some kept plan is no more expensive and at
/// least as good on every physical property — the System-R "interesting
/// order" rule generalized to the whole property vector.
class PlanTable {
 public:
  explicit PlanTable(const CostModel* cost_model) : cost_model_(cost_model) {}

  struct Stats {
    int64_t inserts = 0;
    int64_t kept = 0;
    int64_t pruned_dominated = 0;   ///< arrivals dominated by a kept plan
    int64_t evicted_dominated = 0;  ///< kept plans dominated by an arrival
    int64_t lookups = 0;
    int64_t hits = 0;

    std::string ToString() const;
    /// Publishes the counters into `registry` under the `plan_table.` prefix.
    void Publish(MetricsRegistry* registry) const;
  };

  /// Adds `plan` under (tables, preds); returns true if it was kept.
  bool Insert(QuantifierSet tables, PredSet preds, PlanPtr plan);

  /// All kept plans for the key, or nullptr if none.
  const SAP* Lookup(QuantifierSet tables, PredSet preds);

  /// Number of keys / total plans held.
  int64_t num_buckets() const {
    return static_cast<int64_t>(buckets_.size());
  }
  int64_t num_plans() const;

  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }

  /// Attach a tracer to record each prune/keep/evict decision (null = off).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  struct Key {
    uint64_t tables;
    uint64_t preds;
    bool operator==(const Key& o) const {
      return tables == o.tables && preds == o.preds;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>{}(k.tables * 0x9e3779b97f4a7c15ULL ^
                                   k.preds);
    }
  };

  const CostModel* cost_model_;
  Tracer* tracer_ = nullptr;
  std::unordered_map<Key, SAP, KeyHash> buckets_;
  Stats stats_;
};

}  // namespace starburst

#endif  // STARBURST_OPTIMIZER_PLAN_TABLE_H_
