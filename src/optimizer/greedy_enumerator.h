#ifndef STARBURST_OPTIMIZER_GREEDY_ENUMERATOR_H_
#define STARBURST_OPTIMIZER_GREEDY_ENUMERATOR_H_

#include <string>

#include "glue/glue.h"
#include "optimizer/plan_table.h"
#include "star/engine.h"

namespace starburst {

/// The degraded-mode planner: a greedy left-deep enumerator that the
/// Optimizer falls back to when the ResourceGovernor trips a budget mid-DP.
/// It reuses the same STARs and Glue as exhaustive enumeration — AccessRoot
/// for the base tables, JoinRoot for every join step — so every plan it
/// emits is one the rule set could have produced; only the search strategy
/// changes (cheapest-feasible-join-next instead of dynamic programming).
///
/// Cost: O(n^2) JoinRoot references for n tables instead of O(3^n) subset
/// splits, so it completes even for queries whose DP blew the budget.
///
/// Deterministic by construction: it runs single-threaded over a plan table
/// cleared of any partial DP state, starts from the cheapest base table, and
/// breaks cost ties by quantifier index.
class GreedyJoinEnumerator {
 public:
  GreedyJoinEnumerator(StarEngine* engine, Glue* glue, PlanTable* table,
                       std::string join_root = "JoinRoot")
      : engine_(engine),
        glue_(glue),
        table_(table),
        join_root_(std::move(join_root)) {}

  /// Populates the plan table with base plans for every table plus one
  /// join bucket per greedy step, ending at the full table set (under its
  /// canonical key, where Glue's final Resolve will find it).
  Status Run();

  /// JoinRoot references made (for metrics/diagnostics).
  int64_t join_root_refs() const { return join_root_refs_; }

 private:
  StarEngine* engine_;
  Glue* glue_;
  PlanTable* table_;
  std::string join_root_;
  int64_t join_root_refs_ = 0;
};

}  // namespace starburst

#endif  // STARBURST_OPTIMIZER_GREEDY_ENUMERATOR_H_
