#ifndef STARBURST_OPTIMIZER_GOVERNOR_H_
#define STARBURST_OPTIMIZER_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace starburst {

/// A precomputed steady_clock deadline shared by the optimizer's
/// ResourceGovernor and the executor's ExecGovernor. The deadline is fixed
/// at construction (one clock read); expired() is a single clock read and
/// compare afterwards.
///
/// Overshoot contract: deadlines are enforced COOPERATIVELY, at check
/// points. The worst-case overshoot past the deadline is therefore the
/// longest interval between two consecutive Check() calls — one enumerator
/// subset for the optimizer, one batch (or one morsel) for the executor —
/// plus scheduler latency. The deadline itself never drifts: it is computed
/// once, so repeated checks compare against the same instant rather than
/// accumulating per-check clock error.
class Deadline {
 public:
  /// 0 (or negative) ms means "no deadline": enabled() stays false and
  /// expired() never fires.
  explicit Deadline(int64_t ms) : ms_(ms > 0 ? ms : 0) {
    if (ms_ > 0) {
      at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms_);
    }
  }
  Deadline() : Deadline(0) {}

  bool enabled() const { return ms_ > 0; }
  bool expired() const {
    return ms_ > 0 && std::chrono::steady_clock::now() >= at_;
  }
  int64_t ms() const { return ms_; }

 private:
  int64_t ms_ = 0;
  std::chrono::steady_clock::time_point at_;
};

/// The optimizer's resource budgets; 0 means unlimited for each.
struct GovernorLimits {
  int64_t deadline_ms = 0;           ///< wall-clock budget for one Optimize
  int64_t max_plans = 0;             ///< plans arriving at the plan table
  int64_t max_plan_table_bytes = 0;  ///< approximate plan-table memory
};

/// Cooperative resource governor for one optimization run. The enumerator,
/// the STAR engine, and Glue call Check() at their natural re-entry points;
/// the first exceeded budget trips a shared atomic stop flag (with the
/// reason recorded once), and every subsequent Check — on any thread —
/// returns kResourceExhausted immediately. Rank-parallel workers therefore
/// observe the stop within one subset of work.
///
/// Budget exhaustion is not an error: the Optimizer catches
/// kResourceExhausted and degrades to the greedy left-deep enumerator,
/// tagging the result with degradation_reason().
class ResourceGovernor {
 public:
  explicit ResourceGovernor(GovernorLimits limits);

  /// False when every limit is 0 — callers can skip attaching entirely.
  bool enabled() const {
    return limits_.deadline_ms > 0 || limits_.max_plans > 0 ||
           limits_.max_plan_table_bytes > 0;
  }

  /// The cooperative check: OK while within budget, ResourceExhausted (with
  /// the tripping reason) afterwards. Thread-safe and cheap — atomic loads
  /// plus a steady_clock read when a deadline is set.
  Status Check();

  /// True once any budget tripped (the workers' shared stop flag).
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  /// The human-readable reason the run was stopped ("" while running).
  std::string reason() const;

  /// Accounting hooks (called by the PlanTable).
  void NotePlansConsidered(int64_t n) {
    plans_.fetch_add(n, std::memory_order_relaxed);
  }
  void NotePlanTableBytes(int64_t delta) {
    bytes_.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t plans_considered() const {
    return plans_.load(std::memory_order_relaxed);
  }
  int64_t plan_table_bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  const GovernorLimits& limits() const { return limits_; }

 private:
  /// Records the first trip reason and raises the stop flag.
  void Trip(std::string reason);

  GovernorLimits limits_;
  Deadline deadline_;
  std::atomic<bool> stopped_{false};
  std::atomic<int64_t> plans_{0};
  std::atomic<int64_t> bytes_{0};
  mutable std::mutex mu_;
  std::string reason_;
};

}  // namespace starburst

#endif  // STARBURST_OPTIMIZER_GOVERNOR_H_
