#include "optimizer/optimizer.h"

#include <chrono>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/governor.h"
#include "optimizer/greedy_enumerator.h"
#include "properties/property_functions.h"
#include "query/query.h"

namespace starburst {

int DefaultEnumerationThreads() {
  // Lets CI (and users) run the whole suite parallel without touching every
  // call site: STARBURST_NUM_THREADS=4 ctest ...
  const char* env = std::getenv("STARBURST_NUM_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  long v = std::strtol(env, &end, 10);
  if (end == env || v < 0 || v > 1024) return 1;
  return static_cast<int>(v);
}

namespace {
/// Shared parser for the budget variables: a non-negative integer, anything
/// else (unset, empty, malformed, negative) meaning unlimited.
int64_t EnvBudget(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  long long v = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || v < 0) return 0;
  return static_cast<int64_t>(v);
}
}  // namespace

bool DefaultSharedMemo() {
  // On by default; STARBURST_SHARED_MEMO=0 disables it (the CI leg that
  // proves the optimizer's outcome does not depend on the memo).
  const char* env = std::getenv("STARBURST_SHARED_MEMO");
  if (env == nullptr || *env == '\0') return true;
  return std::string(env) != "0" && std::string(env) != "false";
}

int64_t DefaultDeadlineMs() { return EnvBudget("STARBURST_DEADLINE_MS"); }
int64_t DefaultMaxPlans() { return EnvBudget("STARBURST_MAX_PLANS"); }
int64_t DefaultMaxPlanTableBytes() {
  return EnvBudget("STARBURST_MAX_PLAN_TABLE_BYTES");
}

Optimizer::Optimizer(RuleSet rules, OptimizerOptions options)
    : rules_(std::move(rules)), options_(options) {
  // Failures here would be programming errors (duplicate registration in a
  // fresh registry). Recorded rather than thrown: every Optimize call
  // reports them as a Status, keeping the library exception-free.
  init_status_ = RegisterBuiltinOperators(&operators_);
  if (init_status_.ok()) {
    init_status_ = RegisterBuiltinFunctions(&functions_);
  }
}

Result<OptimizeResult> Optimizer::Optimize(const Query& query) {
  STARBURST_RETURN_NOT_OK(init_status_);
  auto start = std::chrono::steady_clock::now();
  Tracer* tracer = options_.tracer;
  MetricsRegistry* metrics = options_.metrics;

  CostModel cost_model(options_.cost_params);
  PlanFactory factory(query, cost_model, operators_);
  StarEngine engine(&factory, &rules_, &functions_, options_.engine);
  engine.set_tracer(tracer);
  PlanTable table(&cost_model);
  table.set_tracer(tracer);
  Glue glue(&engine, &table);
  glue.set_tracer(tracer);
  engine.set_glue(&glue);

  // One shared memo per run serves both cache layers: STAR expansions
  // (consulted by the engine and every rank-parallel worker, gated by
  // shared_memo) and whole Glue resolutions (the deterministic
  // augmented-plan cache, gated by cache_augmented).
  ExpansionMemo memo;
  if (options_.shared_memo) engine.set_memo(&memo);
  glue.set_memo(&memo);
  glue.set_cache_augmented(options_.cache_augmented);

  // The governor's clock starts here and covers the whole Optimize call.
  GovernorLimits limits;
  limits.deadline_ms = options_.deadline_ms;
  limits.max_plans = options_.max_plans;
  limits.max_plan_table_bytes = options_.max_plan_table_bytes;
  ResourceGovernor governor(limits);
  if (governor.enabled()) {
    engine.set_governor(&governor);
    glue.set_governor(&governor);
    table.set_governor(&governor);
    // Memoized bytes draw from the same budget as the plan table, so a
    // STARBURST_MAX_PLAN_TABLE_BYTES cap bounds both structures together.
    memo.set_governor(&governor);
  }

  std::string degradation_reason;
  // Degraded mode: detach the governor (the fallback must be allowed to
  // finish — an O(n^2) greedy pass over an already-loaded rule set is fast),
  // drop whatever partial DP state the interrupt left behind (its content
  // depends on trip timing and thread count; the greedy rebuild from a clean
  // table is deterministic), and re-enumerate greedily.
  auto degrade = [&]() -> Status {
    degradation_reason = governor.reason();
    engine.set_governor(nullptr);
    glue.set_governor(nullptr);
    table.set_governor(nullptr);
    memo.set_governor(nullptr);
    if (ShouldTrace(tracer)) {
      tracer->Instant(TraceKind::kPhase, "degrade to greedy",
                      degradation_reason);
      tracer->Instant(TraceKind::kGlue, "expansion memo invalidated",
                      "cleared and detached for the greedy fallback");
    }
    if (metrics != nullptr) {
      metrics->AddCounter("optimizer.cache_invalidated", 1);
    }
    // The fallback must not read memoized state: entry content can depend on
    // where the budget tripped, and the greedy pass has to be deterministic.
    engine.set_memo(nullptr);
    glue.set_memo(nullptr);
    memo.Clear();
    table.Clear();
    GreedyJoinEnumerator greedy(&engine, &glue, &table, "JoinRoot");
    STARBURST_TRACE_SPAN(tracer, TraceKind::kPhase, "greedy fallback");
    ScopedTimer timer(metrics, "optimizer.phase.greedy_fallback");
    return greedy.Run();
  };

  // Phase 1: bottom-up STAR expansion over all table subsets (this is where
  // most STAR references and Glue calls happen).
  JoinEnumerator enumerator(&engine, &glue, &table, "JoinRoot",
                            options_.num_threads);
  if (governor.enabled()) enumerator.set_governor(&governor);
  {
    STARBURST_TRACE_SPAN(tracer, TraceKind::kPhase, "enumeration");
    ScopedTimer timer(metrics, "optimizer.phase.enumeration");
    Status st = enumerator.Run();
    if (!st.ok()) {
      if (st.code() != StatusCode::kResourceExhausted) return st;
      STARBURST_RETURN_NOT_OK(degrade());
    }
  }

  // Phase 2: final Glue reference — the query's own required properties:
  // deliver the result at the query site, in the requested order.
  StreamSpec final_spec;
  final_spec.tables = query.AllQuantifiers();
  final_spec.preds =
      query.EligiblePredicates(final_spec.tables, query.AllPredicates());
  if (!query.order_by().empty()) {
    final_spec.required.order = query.order_by();
  }
  final_spec.required.site = query.required_site().value_or(0);

  Result<SAP> final_plans = SAP{};
  {
    STARBURST_TRACE_SPAN(tracer, TraceKind::kPhase, "glue");
    ScopedTimer timer(metrics, "optimizer.phase.glue");
    final_plans = glue.Resolve(final_spec);
  }
  if (!final_plans.ok() &&
      final_plans.status().code() == StatusCode::kResourceExhausted &&
      degradation_reason.empty()) {
    // The budget held through enumeration but tripped during the final
    // resolve (a deadline, typically): same degradation path, then retry.
    STARBURST_RETURN_NOT_OK(degrade());
    final_plans = glue.Resolve(final_spec);
  }
  if (!final_plans.ok()) return final_plans.status();
  if (final_plans.value().empty()) {
    return Status::Internal(
        "optimization produced no plan satisfying the query requirements "
        "(disconnected join graph without allow_cartesian?)");
  }

  // Phase 3: pick the cheapest plan off the final Pareto frontier.
  OptimizeResult result;
  {
    STARBURST_TRACE_SPAN(tracer, TraceKind::kPhase, "costing");
    ScopedTimer timer(metrics, "optimizer.phase.costing");
    result.final_plans = std::move(final_plans).value();
    result.best = CheapestPlan(result.final_plans, cost_model);
    result.total_cost = cost_model.Total(result.best->props.cost());
  }
  result.engine_metrics = engine.metrics();
  result.glue_metrics = glue.metrics();
  result.table_stats = table.stats();
  result.enumerator_stats = enumerator.stats();
  result.memo_stats = memo.stats();
  result.plan_nodes_created = factory.nodes_created();
  result.plans_in_table = table.num_plans();
  result.degradation_reason = degradation_reason;
  result.optimize_micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count();

  // The ad-hoc structs remain the per-run view on OptimizeResult; the
  // registry is the accumulated, uniformly named view across runs.
  if (metrics != nullptr) {
    result.engine_metrics.Publish(metrics);
    result.glue_metrics.Publish(metrics);
    result.table_stats.Publish(metrics);
    result.enumerator_stats.Publish(metrics);
    result.memo_stats.Publish(metrics);
    metrics->AddCounter("optimizer.runs", 1);
    if (result.degraded()) metrics->AddCounter("optimizer.degraded", 1);
    metrics->AddCounter("optimizer.plan_nodes_created",
                        result.plan_nodes_created);
    metrics->SetGauge("optimizer.plans_in_table",
                      static_cast<double>(result.plans_in_table));
    metrics->RecordLatency("optimizer.optimize", result.optimize_micros);
  }
  return result;
}

}  // namespace starburst
