#include "optimizer/optimizer.h"

#include <chrono>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "properties/property_functions.h"
#include "query/query.h"

namespace starburst {

int DefaultEnumerationThreads() {
  // Lets CI (and users) run the whole suite parallel without touching every
  // call site: STARBURST_NUM_THREADS=4 ctest ...
  const char* env = std::getenv("STARBURST_NUM_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  long v = std::strtol(env, &end, 10);
  if (end == env || v < 0 || v > 1024) return 1;
  return static_cast<int>(v);
}

Optimizer::Optimizer(RuleSet rules, OptimizerOptions options)
    : rules_(std::move(rules)), options_(options) {
  // Failures here would be programming errors (duplicate registration in a
  // fresh registry); surface them loudly.
  Status st = RegisterBuiltinOperators(&operators_);
  if (!st.ok()) throw std::runtime_error(st.ToString());
  st = RegisterBuiltinFunctions(&functions_);
  if (!st.ok()) throw std::runtime_error(st.ToString());
}

Result<OptimizeResult> Optimizer::Optimize(const Query& query) {
  auto start = std::chrono::steady_clock::now();
  Tracer* tracer = options_.tracer;
  MetricsRegistry* metrics = options_.metrics;

  CostModel cost_model(options_.cost_params);
  PlanFactory factory(query, cost_model, operators_);
  StarEngine engine(&factory, &rules_, &functions_, options_.engine);
  engine.set_tracer(tracer);
  PlanTable table(&cost_model);
  table.set_tracer(tracer);
  Glue glue(&engine, &table);
  glue.set_tracer(tracer);
  engine.set_glue(&glue);

  // Phase 1: bottom-up STAR expansion over all table subsets (this is where
  // most STAR references and Glue calls happen).
  JoinEnumerator enumerator(&engine, &glue, &table, "JoinRoot",
                            options_.num_threads);
  {
    STARBURST_TRACE_SPAN(tracer, TraceKind::kPhase, "enumeration");
    ScopedTimer timer(metrics, "optimizer.phase.enumeration");
    STARBURST_RETURN_NOT_OK(enumerator.Run());
  }

  // Phase 2: final Glue reference — the query's own required properties:
  // deliver the result at the query site, in the requested order.
  StreamSpec final_spec;
  final_spec.tables = query.AllQuantifiers();
  final_spec.preds =
      query.EligiblePredicates(final_spec.tables, query.AllPredicates());
  if (!query.order_by().empty()) {
    final_spec.required.order = query.order_by();
  }
  final_spec.required.site = query.required_site().value_or(0);

  Result<SAP> final_plans = SAP{};
  {
    STARBURST_TRACE_SPAN(tracer, TraceKind::kPhase, "glue");
    ScopedTimer timer(metrics, "optimizer.phase.glue");
    final_plans = glue.Resolve(final_spec);
  }
  if (!final_plans.ok()) return final_plans.status();
  if (final_plans.value().empty()) {
    return Status::Internal(
        "optimization produced no plan satisfying the query requirements "
        "(disconnected join graph without allow_cartesian?)");
  }

  // Phase 3: pick the cheapest plan off the final Pareto frontier.
  OptimizeResult result;
  {
    STARBURST_TRACE_SPAN(tracer, TraceKind::kPhase, "costing");
    ScopedTimer timer(metrics, "optimizer.phase.costing");
    result.final_plans = std::move(final_plans).value();
    result.best = CheapestPlan(result.final_plans, cost_model);
    result.total_cost = cost_model.Total(result.best->props.cost());
  }
  result.engine_metrics = engine.metrics();
  result.glue_metrics = glue.metrics();
  result.table_stats = table.stats();
  result.enumerator_stats = enumerator.stats();
  result.plan_nodes_created = factory.nodes_created();
  result.plans_in_table = table.num_plans();
  result.optimize_micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count();

  // The ad-hoc structs remain the per-run view on OptimizeResult; the
  // registry is the accumulated, uniformly named view across runs.
  if (metrics != nullptr) {
    result.engine_metrics.Publish(metrics);
    result.glue_metrics.Publish(metrics);
    result.table_stats.Publish(metrics);
    result.enumerator_stats.Publish(metrics);
    metrics->AddCounter("optimizer.runs", 1);
    metrics->AddCounter("optimizer.plan_nodes_created",
                        result.plan_nodes_created);
    metrics->SetGauge("optimizer.plans_in_table",
                      static_cast<double>(result.plans_in_table));
    metrics->RecordLatency("optimizer.optimize", result.optimize_micros);
  }
  return result;
}

}  // namespace starburst
