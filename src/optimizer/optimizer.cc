#include "optimizer/optimizer.h"

#include <chrono>

#include "properties/property_functions.h"
#include "query/query.h"

namespace starburst {

Optimizer::Optimizer(RuleSet rules, OptimizerOptions options)
    : rules_(std::move(rules)), options_(options) {
  // Failures here would be programming errors (duplicate registration in a
  // fresh registry); surface them loudly.
  Status st = RegisterBuiltinOperators(&operators_);
  if (!st.ok()) throw std::runtime_error(st.ToString());
  st = RegisterBuiltinFunctions(&functions_);
  if (!st.ok()) throw std::runtime_error(st.ToString());
}

Result<OptimizeResult> Optimizer::Optimize(const Query& query) {
  auto start = std::chrono::steady_clock::now();

  CostModel cost_model(options_.cost_params);
  PlanFactory factory(query, cost_model, operators_);
  StarEngine engine(&factory, &rules_, &functions_, options_.engine);
  PlanTable table(&cost_model);
  Glue glue(&engine, &table);
  engine.set_glue(&glue);

  JoinEnumerator enumerator(&engine, &glue, &table);
  STARBURST_RETURN_NOT_OK(enumerator.Run());

  // Final Glue reference: the query's own required properties — deliver the
  // result at the query site, in the requested order.
  StreamSpec final_spec;
  final_spec.tables = query.AllQuantifiers();
  final_spec.preds =
      query.EligiblePredicates(final_spec.tables, query.AllPredicates());
  if (!query.order_by().empty()) {
    final_spec.required.order = query.order_by();
  }
  final_spec.required.site = query.required_site().value_or(0);

  auto final_plans = glue.Resolve(final_spec);
  if (!final_plans.ok()) return final_plans.status();
  if (final_plans.value().empty()) {
    return Status::Internal(
        "optimization produced no plan satisfying the query requirements "
        "(disconnected join graph without allow_cartesian?)");
  }

  OptimizeResult result;
  result.final_plans = std::move(final_plans).value();
  result.best = CheapestPlan(result.final_plans, cost_model);
  result.total_cost = cost_model.Total(result.best->props.cost());
  result.engine_metrics = engine.metrics();
  result.glue_metrics = glue.metrics();
  result.table_stats = table.stats();
  result.enumerator_stats = enumerator.stats();
  result.plan_nodes_created = factory.nodes_created();
  result.plans_in_table = table.num_plans();
  result.optimize_micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace starburst
