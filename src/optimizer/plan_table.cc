#include "optimizer/plan_table.h"

#include <algorithm>

#include "cost/cost_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace starburst {

std::string PlanTable::Stats::ToString() const {
  return "{inserts=" + std::to_string(inserts) +
         " kept=" + std::to_string(kept) +
         " pruned=" + std::to_string(pruned_dominated) +
         " evicted=" + std::to_string(evicted_dominated) +
         " lookups=" + std::to_string(lookups) +
         " hits=" + std::to_string(hits) + "}";
}

void PlanTable::Stats::Publish(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->AddCounter("plan_table.inserts", inserts);
  registry->AddCounter("plan_table.kept", kept);
  registry->AddCounter("plan_table.pruned_dominated", pruned_dominated);
  registry->AddCounter("plan_table.evicted_dominated", evicted_dominated);
  registry->AddCounter("plan_table.lookups", lookups);
  registry->AddCounter("plan_table.hits", hits);
}

namespace {
// Paths compare structurally (key columns + dynamic flag), not by name:
// dynamically built indexes get fresh temp names, and a name difference must
// not shield an otherwise dominated plan from pruning.
bool SamePathShape(const AccessPath& a, const AccessPath& b) {
  return a.dynamic == b.dynamic && a.columns == b.columns;
}

bool PathsCover(const AccessPathList& a, const AccessPathList& b) {
  for (const AccessPath& pb : b) {
    bool found = false;
    for (const AccessPath& pa : a) {
      if (SamePathShape(pa, pb)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}
}  // namespace

bool PlanDominates(const PlanOp& a, const PlanOp& b,
                   const CostModel& cost_model) {
  const PropertyVector& pa = a.props;
  const PropertyVector& pb = b.props;
  if (cost_model.Total(pa.cost()) > cost_model.Total(pb.cost())) {
    return false;
  }
  // A costlier-but-cheaper-to-rescan plan may still win as a nested-loop
  // inner, so RESCAN participates in dominance like any other property.
  if (cost_model.Total(pa.rescan()) > cost_model.Total(pb.rescan())) {
    return false;
  }
  if (pa.site() != pb.site()) return false;
  if (pa.temp() != pb.temp()) return false;
  // a's order must satisfy anything b's order satisfies: b.order must be a
  // prefix of a.order.
  if (!OrderSatisfies(pa.order(), pb.order())) return false;
  if (!PathsCover(pa.paths(), pb.paths())) return false;
  // DBC-registered properties (ids beyond the built-ins) participate too:
  // `a` must match every extension property `b` carries, or a plan
  // distinguished only by a new property would be pruned away — defeating
  // the §5 "just add a property" story.
  for (const auto& [id, value] : pb.entries()) {
    if (id < prop::kNumBuiltin) continue;
    const PropertyValue* av = pa.Find(id);
    if (av == nullptr || !PropertyValueEquals(*av, value)) return false;
  }
  return true;
}

void PruneDominated(SAP* plans, const CostModel& cost_model) {
  SAP kept;
  for (PlanPtr& candidate : *plans) {
    bool dominated = false;
    for (const PlanPtr& k : kept) {
      if (PlanDominates(*k, *candidate, cost_model)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    kept.erase(std::remove_if(kept.begin(), kept.end(),
                              [&](const PlanPtr& k) {
                                return PlanDominates(*candidate, *k,
                                                     cost_model);
                              }),
               kept.end());
    kept.push_back(std::move(candidate));
  }
  *plans = std::move(kept);
}

PlanPtr CheapestPlan(const SAP& plans, const CostModel& cost_model) {
  PlanPtr best;
  double best_cost = 0.0;
  for (const PlanPtr& p : plans) {
    double c = cost_model.Total(p->props.cost());
    if (best == nullptr || c < best_cost) {
      best = p;
      best_cost = c;
    }
  }
  return best;
}

namespace {
// "#17 JOIN(MG)" — the trace-facing identity of a plan node.
std::string PlanRef(const PlanOp& plan) {
  return "#" + std::to_string(plan.id) + " " + plan.Label();
}
}  // namespace

bool PlanTable::Insert(QuantifierSet tables, PredSet preds, PlanPtr plan) {
  ++stats_.inserts;
  SAP& bucket = buckets_[Key{tables.mask(), preds.mask()}];
  for (const PlanPtr& kept : bucket) {
    if (PlanDominates(*kept, *plan, *cost_model_)) {
      ++stats_.pruned_dominated;
      if (ShouldTrace(tracer_)) {
        tracer_->Instant(TraceKind::kPlanTable, "prune " + PlanRef(*plan),
                         "dominated by " + PlanRef(*kept));
      }
      return false;
    }
  }
  size_t before = bucket.size();
  bucket.erase(std::remove_if(bucket.begin(), bucket.end(),
                              [&](const PlanPtr& kept) {
                                bool evict =
                                    PlanDominates(*plan, *kept, *cost_model_);
                                if (evict && ShouldTrace(tracer_)) {
                                  tracer_->Instant(
                                      TraceKind::kPlanTable,
                                      "evict " + PlanRef(*kept),
                                      "dominated by " + PlanRef(*plan));
                                }
                                return evict;
                              }),
               bucket.end());
  stats_.evicted_dominated += static_cast<int64_t>(before - bucket.size());
  if (ShouldTrace(tracer_)) {
    tracer_->Instant(TraceKind::kPlanTable, "keep " + PlanRef(*plan),
                     "bucket " + tables.ToString() + " now " +
                         std::to_string(bucket.size() + 1) + " plan(s)");
  }
  bucket.push_back(std::move(plan));
  ++stats_.kept;
  return true;
}

const SAP* PlanTable::Lookup(QuantifierSet tables, PredSet preds) {
  ++stats_.lookups;
  auto it = buckets_.find(Key{tables.mask(), preds.mask()});
  if (it == buckets_.end() || it->second.empty()) return nullptr;
  ++stats_.hits;
  return &it->second;
}

int64_t PlanTable::num_plans() const {
  int64_t n = 0;
  for (const auto& [key, bucket] : buckets_) {
    n += static_cast<int64_t>(bucket.size());
  }
  return n;
}

}  // namespace starburst
