#include "optimizer/plan_table.h"

#include <algorithm>

#include "cost/cost_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/governor.h"
#include "plan/explain.h"

namespace starburst {

std::string PlanTable::Stats::ToString() const {
  return "{inserts=" + std::to_string(inserts) +
         " kept=" + std::to_string(kept) +
         " pruned=" + std::to_string(pruned_dominated) +
         " evicted=" + std::to_string(evicted_dominated) +
         " lookups=" + std::to_string(lookups) +
         " hits=" + std::to_string(hits) +
         " approx_bytes=" + std::to_string(approx_bytes) + "}";
}

int64_t ApproxPlanBytes(const PlanOp& plan) {
  // A node-level estimate: the struct itself plus the heap payloads it
  // uniquely owns. Shared subtrees are counted at their own insertion, not
  // per parent, so the table-wide sum stays linear in kept plans.
  int64_t bytes = static_cast<int64_t>(sizeof(PlanOp));
  bytes += static_cast<int64_t>(plan.flavor.capacity());
  bytes += static_cast<int64_t>(plan.inputs.capacity() * sizeof(PlanPtr));
  for (const auto& [name, value] : plan.args.values()) {
    bytes += static_cast<int64_t>(name.capacity() + sizeof(value) + 16);
  }
  bytes += static_cast<int64_t>(plan.props.entries().size()) * 48;
  return bytes;
}

void PlanTable::Stats::Publish(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->AddCounter("plan_table.inserts", inserts);
  registry->AddCounter("plan_table.kept", kept);
  registry->AddCounter("plan_table.pruned_dominated", pruned_dominated);
  registry->AddCounter("plan_table.evicted_dominated", evicted_dominated);
  registry->AddCounter("plan_table.lookups", lookups);
  registry->AddCounter("plan_table.hits", hits);
  registry->SetGauge("plan_table.approx_bytes",
                     static_cast<double>(approx_bytes));
}

namespace {
// Paths compare structurally (key columns + dynamic flag), not by name:
// dynamically built indexes get fresh temp names, and a name difference must
// not shield an otherwise dominated plan from pruning.
bool SamePathShape(const AccessPath& a, const AccessPath& b) {
  return a.dynamic == b.dynamic && a.columns == b.columns;
}

bool PathsCover(const AccessPathList& a, const AccessPathList& b) {
  for (const AccessPath& pb : b) {
    bool found = false;
    for (const AccessPath& pa : a) {
      if (SamePathShape(pa, pb)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}
}  // namespace

bool PlanDominates(const PlanOp& a, const PlanOp& b,
                   const CostModel& cost_model) {
  const PropertyVector& pa = a.props;
  const PropertyVector& pb = b.props;
  if (cost_model.Total(pa.cost()) > cost_model.Total(pb.cost())) {
    return false;
  }
  // A costlier-but-cheaper-to-rescan plan may still win as a nested-loop
  // inner, so RESCAN participates in dominance like any other property.
  if (cost_model.Total(pa.rescan()) > cost_model.Total(pb.rescan())) {
    return false;
  }
  if (pa.site() != pb.site()) return false;
  if (pa.temp() != pb.temp()) return false;
  // a's order must satisfy anything b's order satisfies: b.order must be a
  // prefix of a.order.
  if (!OrderSatisfies(pa.order(), pb.order())) return false;
  if (!PathsCover(pa.paths(), pb.paths())) return false;
  // DBC-registered properties (ids beyond the built-ins) participate too:
  // `a` must match every extension property `b` carries, or a plan
  // distinguished only by a new property would be pruned away — defeating
  // the §5 "just add a property" story.
  for (const auto& [id, value] : pb.entries()) {
    if (id < prop::kNumBuiltin) continue;
    const PropertyValue* av = pa.Find(id);
    if (av == nullptr || !PropertyValueEquals(*av, value)) return false;
  }
  return true;
}

// The kept set is the set of maximal elements under dominance, which is
// insensitive to arrival order: a plan survives iff nothing in the *input*
// dominates it (two plans that dominate each other are equal on cost and
// every property, and dominance is transitive, so "dominated by a kept plan"
// and "dominated by any arrival" select the same survivors, modulo which of
// several equal plans represents its equivalence class). Parallel
// enumeration therefore yields the same frontier whatever order workers
// insert in; only representative identity can differ, and CheapestPlan's
// structural tie-break makes that invisible downstream.
void PruneDominated(SAP* plans, const CostModel& cost_model) {
  SAP kept;
  for (PlanPtr& candidate : *plans) {
    bool dominated = false;
    for (const PlanPtr& k : kept) {
      if (PlanDominates(*k, *candidate, cost_model)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    kept.erase(std::remove_if(kept.begin(), kept.end(),
                              [&](const PlanPtr& k) {
                                return PlanDominates(*candidate, *k,
                                                     cost_model);
                              }),
               kept.end());
    kept.push_back(std::move(candidate));
  }
  *plans = std::move(kept);
}

PlanPtr CheapestPlan(const SAP& plans, const CostModel& cost_model) {
  PlanPtr best;
  double best_cost = 0.0;
  std::string best_sig;
  for (const PlanPtr& p : plans) {
    double c = cost_model.Total(p->props.cost());
    if (best == nullptr || c < best_cost) {
      best = p;
      best_cost = c;
      best_sig.clear();
    } else if (c == best_cost) {
      // Tie-break on the structural signature first (stable across runs and
      // thread counts), then on node id for byte-identical plans. Node id
      // alone would not do: creation order — and hence id assignment —
      // depends on worker scheduling.
      if (best_sig.empty()) best_sig = PlanSignature(*best);
      std::string sig = PlanSignature(*p);
      if (sig < best_sig || (sig == best_sig && p->id < best->id)) {
        best = p;
        best_sig = std::move(sig);
      }
    }
  }
  return best;
}

namespace {
// "#17 JOIN(MG)" — the trace-facing identity of a plan node.
std::string PlanRef(const PlanOp& plan) {
  return "#" + std::to_string(plan.id) + " " + plan.Label();
}
}  // namespace

bool PlanTable::InsertLocked(QuantifierSet tables, SAP& bucket, PlanPtr plan) {
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (governor_ != nullptr) governor_->NotePlansConsidered(1);
  for (const PlanPtr& kept : bucket) {
    if (PlanDominates(*kept, *plan, *cost_model_)) {
      pruned_dominated_.fetch_add(1, std::memory_order_relaxed);
      if (ShouldTrace(tracer_)) {
        std::lock_guard<std::mutex> trace_lock(trace_mu_);
        tracer_->Instant(TraceKind::kPlanTable, "prune " + PlanRef(*plan),
                         "dominated by " + PlanRef(*kept));
      }
      return false;
    }
  }
  size_t before = bucket.size();
  int64_t evicted_bytes = 0;
  bucket.erase(std::remove_if(bucket.begin(), bucket.end(),
                              [&](const PlanPtr& kept) {
                                bool evict =
                                    PlanDominates(*plan, *kept, *cost_model_);
                                if (evict) {
                                  evicted_bytes += ApproxPlanBytes(*kept);
                                }
                                if (evict && ShouldTrace(tracer_)) {
                                  std::lock_guard<std::mutex> trace_lock(
                                      trace_mu_);
                                  tracer_->Instant(
                                      TraceKind::kPlanTable,
                                      "evict " + PlanRef(*kept),
                                      "dominated by " + PlanRef(*plan));
                                }
                                return evict;
                              }),
               bucket.end());
  evicted_dominated_.fetch_add(static_cast<int64_t>(before - bucket.size()),
                               std::memory_order_relaxed);
  int64_t byte_delta = ApproxPlanBytes(*plan) - evicted_bytes;
  approx_bytes_.fetch_add(byte_delta, std::memory_order_relaxed);
  if (governor_ != nullptr) governor_->NotePlanTableBytes(byte_delta);
  if (ShouldTrace(tracer_)) {
    std::lock_guard<std::mutex> trace_lock(trace_mu_);
    tracer_->Instant(TraceKind::kPlanTable, "keep " + PlanRef(*plan),
                     "bucket " + tables.ToString() + " now " +
                         std::to_string(bucket.size() + 1) + " plan(s)");
  }
  bucket.push_back(std::move(plan));
  kept_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool PlanTable::Insert(QuantifierSet tables, PredSet preds, PlanPtr plan) {
  Key key{tables.mask(), preds.mask()};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  return InsertLocked(tables, shard.buckets[key], std::move(plan));
}

int PlanTable::InsertBatch(QuantifierSet tables, PredSet preds,
                           const SAP& plans) {
  Key key{tables.mask(), preds.mask()};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  SAP& bucket = shard.buckets[key];
  int kept = 0;
  for (const PlanPtr& p : plans) {
    if (InsertLocked(tables, bucket, p)) ++kept;
  }
  return kept;
}

std::optional<SAP> PlanTable::Lookup(QuantifierSet tables, PredSet preds) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  Key key{tables.mask(), preds.mask()};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.buckets.find(key);
  if (it == shard.buckets.end() || it->second.empty()) return std::nullopt;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

bool PlanTable::Contains(QuantifierSet tables, PredSet preds) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  Key key{tables.mask(), preds.mask()};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.buckets.find(key);
  if (it == shard.buckets.end() || it->second.empty()) return false;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

int64_t PlanTable::num_buckets() const {
  int64_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += static_cast<int64_t>(shard.buckets.size());
  }
  return n;
}

int64_t PlanTable::num_plans() const {
  int64_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, bucket] : shard.buckets) {
      n += static_cast<int64_t>(bucket.size());
    }
  }
  return n;
}

void PlanTable::Clear() {
  int64_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, bucket] : shard.buckets) {
      for (const PlanPtr& p : bucket) dropped += ApproxPlanBytes(*p);
    }
    shard.buckets.clear();
  }
  approx_bytes_.fetch_sub(dropped, std::memory_order_relaxed);
  if (governor_ != nullptr) governor_->NotePlanTableBytes(-dropped);
}

PlanTable::Stats PlanTable::stats() const {
  Stats s;
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.kept = kept_.load(std::memory_order_relaxed);
  s.pruned_dominated = pruned_dominated_.load(std::memory_order_relaxed);
  s.evicted_dominated = evicted_dominated_.load(std::memory_order_relaxed);
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.approx_bytes = approx_bytes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace starburst
