#include "optimizer/enumerator.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/governor.h"
#include "query/query.h"

namespace starburst {

std::string JoinEnumerator::Stats::ToString() const {
  return "{subsets=" + std::to_string(subsets) +
         " splits=" + std::to_string(splits_considered) +
         " joinable=" + std::to_string(joinable_pairs) +
         " join_root_refs=" + std::to_string(join_root_refs) + "}";
}

void JoinEnumerator::Stats::Publish(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->AddCounter("enumerator.subsets", subsets);
  registry->AddCounter("enumerator.splits_considered", splits_considered);
  registry->AddCounter("enumerator.joinable_pairs", joinable_pairs);
  registry->AddCounter("enumerator.join_root_refs", join_root_refs);
}

void JoinEnumerator::Stats::MergeFrom(const Stats& other) {
  subsets += other.subsets;
  splits_considered += other.splits_considered;
  joinable_pairs += other.joinable_pairs;
  join_root_refs += other.join_root_refs;
}

namespace {

/// Restores Glue's augmented-plan caching on scope exit. Without a shared
/// memo the cache writes augmented plans back into the plan table, and which
/// plans land there depends on resolve order — a cached temp-probe plan can
/// shadow the root-reference path that pushes predicates into access paths,
/// so candidate sets would differ run-to-run. With a memo attached the cache
/// is a whole-Resolve memo under canonical keys, deterministic at any thread
/// count, and enumeration leaves it on (no guard).
class GlueCacheGuard {
 public:
  explicit GlueCacheGuard(Glue* glue)
      : glue_(glue), saved_(glue->cache_augmented()) {
    glue_->set_cache_augmented(false);
  }
  ~GlueCacheGuard() { glue_->set_cache_augmented(saved_); }
  GlueCacheGuard(const GlueCacheGuard&) = delete;
  GlueCacheGuard& operator=(const GlueCacheGuard&) = delete;

 private:
  Glue* glue_;
  bool saved_;
};

}  // namespace

Status JoinEnumerator::ProcessSubset(uint64_t mask, StarEngine* engine,
                                     Stats* stats) {
  if (governor_ != nullptr) {
    STARBURST_RETURN_NOT_OK(governor_->Check());
  }
  const Query& query = engine->query();
  const PredSet all_preds = query.AllPredicates();
  const bool allow_composite = engine->options().allow_composite_inner;
  const bool allow_cartesian = engine->options().allow_cartesian;
  Tracer* tracer = engine->tracer();

  auto eligible = [&](QuantifierSet tables) {
    return query.EligiblePredicates(tables, all_preds);
  };

  // Joinability: some multi-table predicate inside S links the two halves.
  auto joinable = [&](QuantifierSet t1, QuantifierSet t2) {
    for (int id = 0; id < query.num_predicates(); ++id) {
      const Predicate& p = query.predicate(id);
      if (p.quantifiers.size() < 2) continue;
      if (!t1.Union(t2).ContainsAll(p.quantifiers)) continue;
      if (p.quantifiers.Intersects(t1) && p.quantifiers.Intersects(t2)) {
        return true;
      }
    }
    return false;
  };

  QuantifierSet s = QuantifierSet::FromMask(mask);
  ++stats->subsets;
  std::string subset_label;
  if (ShouldTrace(tracer)) subset_label = "subset " + s.ToString();
  TraceSpan subset_span(tracer, TraceKind::kEnumerator, subset_label);
  PredSet elig_s = eligible(s);
  const uint64_t low_bit = mask & (~mask + 1);

  // Enumerate unordered splits {T1, T2}: T1 keeps the lowest quantifier so
  // each pair is visited once; JoinRoot's PermutedJoin generates both
  // orders (§4.1).
  for (uint64_t sub = (mask - 1) & mask; sub != 0; sub = (sub - 1) & mask) {
    if ((sub & low_bit) != 0) continue;  // T2 must not hold the low bit
    if (governor_ != nullptr && governor_->stopped()) {
      return governor_->Check();
    }
    QuantifierSet t2 = QuantifierSet::FromMask(sub);
    QuantifierSet t1 = s.Minus(t2);
    ++stats->splits_considered;
    if (!allow_composite && t1.size() > 1 && t2.size() > 1) continue;

    PredSet elig_t1 = eligible(t1);
    PredSet elig_t2 = eligible(t2);
    // Both halves were fully enumerated in earlier ranks (the rank barrier
    // guarantees it), so a missing bucket is a definitive "no plans".
    if (!table_->Contains(t1, elig_t1)) continue;
    if (!table_->Contains(t2, elig_t2)) continue;
    if (!joinable(t1, t2) && !allow_cartesian) continue;
    ++stats->joinable_pairs;

    // Newly eligible predicates (§2.3): eligible on the union but on
    // neither input alone.
    PredSet newly = elig_s.Minus(elig_t1).Minus(elig_t2);

    StreamSpec spec1{t1, elig_t1, {}};
    StreamSpec spec2{t2, elig_t2, {}};
    ++stats->join_root_refs;
    auto sap = engine->EvalStar(
        join_root_, {RuleValue(spec1), RuleValue(spec2), RuleValue(newly)});
    if (!sap.ok()) return sap.status();
    // One batch per (subset, split): readers in the next rank never see a
    // partially inserted frontier.
    table_->InsertBatch(s, elig_s, sap.value());
  }
  return Status::OK();
}

Status JoinEnumerator::RunParallel(int n, int threads) {
  // Group the size >= 2 subsets by rank (popcount). Rank k only reads plans
  // of ranks < k, so the masks within one rank are independent work items.
  std::vector<std::vector<uint64_t>> ranks(static_cast<size_t>(n) + 1);
  const uint64_t full = QuantifierSet::FirstN(n).mask();
  for (uint64_t mask = 1; mask <= full; ++mask) {
    int k = std::popcount(mask);
    if (k >= 2) ranks[static_cast<size_t>(k)].push_back(mask);
  }

  Tracer* main_tracer = engine_->tracer();

  // Each worker owns a complete evaluation context over the shared immutable
  // inputs (factory, rules, functions) and the shared thread-safe PlanTable.
  // Engines and Glues hold per-run state (recursion depth, metrics, temp
  // counters) and are not thread-safe, so they cannot be shared.
  struct Worker {
    std::unique_ptr<Tracer> tracer;
    std::unique_ptr<StarEngine> engine;
    std::unique_ptr<Glue> glue;
    Stats stats;
    std::vector<std::pair<uint64_t, Status>> failures;
  };
  std::vector<Worker> workers(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    Worker& w = workers[static_cast<size_t>(i)];
    if (ShouldTrace(main_tracer)) {
      w.tracer = std::make_unique<Tracer>();
      w.tracer->set_enabled(true);
    }
    w.engine = std::make_unique<StarEngine>(&engine_->factory(),
                                            engine_->rules(),
                                            engine_->functions(),
                                            engine_->options());
    w.glue = std::make_unique<Glue>(w.engine.get(), table_,
                                    glue_->access_root());
    // Workers share the main engine/glue's memo (it is the cross-rank cache)
    // and inherit the effective caching knob: with no memo, Run() has
    // already bypassed the order-dependent cache for the whole enumeration.
    w.engine->set_memo(engine_->memo());
    w.glue->set_memo(glue_->memo());
    w.glue->set_cache_augmented(glue_->cache_augmented());
    // Distinct temp-name prefixes keep concurrently built temps from
    // colliding; plan signatures exclude temp names, so plan identity is
    // unaffected.
    w.glue->set_temp_prefix("w" + std::to_string(i) + "_tmp");
    w.engine->set_glue(w.glue.get());
    // Workers observe the same governor: the first budget trip raises the
    // shared stop flag and every worker's next check sees it.
    w.engine->set_governor(governor_);
    w.glue->set_governor(governor_);
    if (w.tracer != nullptr) {
      w.engine->set_tracer(w.tracer.get());
      w.glue->set_tracer(w.tracer.get());
    }
  }

  for (int k = 2; k <= n; ++k) {
    const std::vector<uint64_t>& rank = ranks[static_cast<size_t>(k)];
    if (rank.empty()) continue;
    std::atomic<size_t> next{0};
    auto drain = [&](Worker* w) {
      for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < rank.size();
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        Status st = ProcessSubset(rank[i], w->engine.get(), &w->stats);
        if (!st.ok()) {
          w->failures.emplace_back(rank[i], std::move(st));
          // A tripped budget stops the whole run; don't claim further
          // subsets just to fail them one by one.
          if (governor_ != nullptr && governor_->stopped()) return;
        }
      }
    };
    std::vector<std::thread> pool;
    size_t active = std::min(static_cast<size_t>(threads), rank.size());
    pool.reserve(active);
    for (size_t i = 1; i < active; ++i) {
      pool.emplace_back(drain, &workers[i]);
    }
    drain(&workers[0]);  // the calling thread is worker 0
    for (std::thread& t : pool) t.join();

    // The rank barrier: every subset of size k is fully inserted before any
    // subset of size k+1 reads the table.
    bool failed = false;
    for (const Worker& w : workers) {
      if (!w.failures.empty()) failed = true;
    }
    if (failed) break;
  }

  // Merge worker state back in creation order so the combined stats and
  // trace are deterministic in structure.
  Status result = Status::OK();
  uint64_t failed_mask = ~uint64_t{0};
  for (Worker& w : workers) {
    stats_.MergeFrom(w.stats);
    engine_->metrics().MergeFrom(w.engine->metrics());
    glue_->metrics().MergeFrom(w.glue->metrics());
    if (w.tracer != nullptr && main_tracer != nullptr) {
      main_tracer->MergeFrom(*w.tracer);
    }
    // Report the failure with the smallest mask — the same subset a
    // sequential run would have tripped on first.
    for (auto& [mask, st] : w.failures) {
      if (mask < failed_mask) {
        failed_mask = mask;
        result = std::move(st);
      }
    }
  }
  return result;
}

Status JoinEnumerator::Run() {
  const Query& query = engine_->query();
  const int n = query.num_quantifiers();
  if (n == 0) {
    return Status::InvalidArgument("query has no tables");
  }
  const PredSet all_preds = query.AllPredicates();
  Tracer* tracer = engine_->tracer();
  TraceSpan run_span(tracer, TraceKind::kEnumerator, "enumerate");

  // Candidate sets must not depend on resolve order (see GlueCacheGuard):
  // without a shared memo the order-dependent write-back cache is bypassed
  // for the whole run at any thread count — announced, not silent, so a
  // caller who enabled set_cache_augmented can see why it had no effect.
  std::optional<GlueCacheGuard> cache_guard;
  if (glue_->memo() == nullptr) {
    if (glue_->cache_augmented() && ShouldTrace(tracer)) {
      tracer->Instant(TraceKind::kGlue, "augmented-cache bypassed",
                      "no shared memo; write-back caching is resolve-order "
                      "dependent and stays off during enumeration");
    }
    cache_guard.emplace(glue_);
  }

  // Base case: single-table plans via Glue (which references AccessRoot and
  // fills the plan table).
  for (int q = 0; q < n; ++q) {
    StreamSpec spec;
    spec.tables = QuantifierSet::Single(q);
    spec.preds = query.EligiblePredicates(spec.tables, all_preds);
    auto sap = glue_->Resolve(spec);
    if (!sap.ok()) return sap.status();
    if (sap.value().empty()) {
      // An empty SAP is a legitimate outcome (unsatisfiable requirements,
      // everything pruned), not an engine invariant violation.
      std::string preds_desc;
      for (int id : spec.preds.ToVector()) {
        if (!preds_desc.empty()) preds_desc += ", ";
        preds_desc += query.predicate(id).ToString(&query);
      }
      return Status::NotFound(
          "no access plan satisfies quantifier '" +
          query.quantifier(q).alias + "' (predicates: " +
          (preds_desc.empty() ? "none" : preds_desc) +
          "); its requirements are unsatisfiable or every candidate was "
          "pruned");
    }
  }
  if (n == 1) return Status::OK();

  int threads = num_threads_;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }

  Status status = Status::OK();
  if (threads == 1) {
    // Sequential: subsets in ascending mask order visits every proper
    // subset of S before S, so the DP is bottom-up.
    const uint64_t full = QuantifierSet::FirstN(n).mask();
    for (uint64_t mask = 1; mask <= full && status.ok(); ++mask) {
      if (std::popcount(mask) < 2) continue;
      status = ProcessSubset(mask, engine_, &stats_);
    }
  } else {
    status = RunParallel(n, threads);
  }
  if (!status.ok()) return status;

  if (run_span.active()) {
    run_span.set_detail(stats_.ToString());
  }
  return Status::OK();
}

}  // namespace starburst
