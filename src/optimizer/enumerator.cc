#include "optimizer/enumerator.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/query.h"

namespace starburst {

std::string JoinEnumerator::Stats::ToString() const {
  return "{subsets=" + std::to_string(subsets) +
         " splits=" + std::to_string(splits_considered) +
         " joinable=" + std::to_string(joinable_pairs) +
         " join_root_refs=" + std::to_string(join_root_refs) + "}";
}

void JoinEnumerator::Stats::Publish(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->AddCounter("enumerator.subsets", subsets);
  registry->AddCounter("enumerator.splits_considered", splits_considered);
  registry->AddCounter("enumerator.joinable_pairs", joinable_pairs);
  registry->AddCounter("enumerator.join_root_refs", join_root_refs);
}

Status JoinEnumerator::Run() {
  const Query& query = engine_->query();
  const int n = query.num_quantifiers();
  if (n == 0) {
    return Status::InvalidArgument("query has no tables");
  }
  const PredSet all_preds = query.AllPredicates();
  const bool allow_composite = engine_->options().allow_composite_inner;
  const bool allow_cartesian = engine_->options().allow_cartesian;
  Tracer* tracer = engine_->tracer();
  TraceSpan run_span(tracer, TraceKind::kEnumerator, "enumerate");

  auto eligible = [&](QuantifierSet tables) {
    return query.EligiblePredicates(tables, all_preds);
  };

  // Base case: single-table plans via Glue (which references AccessRoot and
  // fills the plan table).
  for (int q = 0; q < n; ++q) {
    StreamSpec spec;
    spec.tables = QuantifierSet::Single(q);
    spec.preds = eligible(spec.tables);
    auto sap = glue_->Resolve(spec);
    if (!sap.ok()) return sap.status();
    if (sap.value().empty()) {
      return Status::Internal("no access plan generated for quantifier " +
                              std::to_string(q));
    }
  }
  if (n == 1) return Status::OK();

  // Joinability: some multi-table predicate inside S links the two halves.
  auto joinable = [&](QuantifierSet t1, QuantifierSet t2) {
    for (int id = 0; id < query.num_predicates(); ++id) {
      const Predicate& p = query.predicate(id);
      if (p.quantifiers.size() < 2) continue;
      if (!t1.Union(t2).ContainsAll(p.quantifiers)) continue;
      if (p.quantifiers.Intersects(t1) && p.quantifiers.Intersects(t2)) {
        return true;
      }
    }
    return false;
  };

  // Subsets in ascending mask order: every proper subset of S is visited
  // before S, so the DP is bottom-up.
  const uint64_t full = QuantifierSet::FirstN(n).mask();
  for (uint64_t mask = 1; mask <= full; ++mask) {
    QuantifierSet s = QuantifierSet::FromMask(mask);
    if (s.size() < 2) continue;
    ++stats_.subsets;
    std::string subset_label;
    if (ShouldTrace(tracer)) subset_label = "subset " + s.ToString();
    TraceSpan subset_span(tracer, TraceKind::kEnumerator, subset_label);
    PredSet elig_s = eligible(s);
    const uint64_t low_bit = mask & (~mask + 1);

    // Enumerate unordered splits {T1, T2}: T1 keeps the lowest quantifier so
    // each pair is visited once; JoinRoot's PermutedJoin generates both
    // orders (§4.1).
    for (uint64_t sub = (mask - 1) & mask; sub != 0;
         sub = (sub - 1) & mask) {
      if ((sub & low_bit) != 0) continue;  // T2 must not hold the low bit
      QuantifierSet t2 = QuantifierSet::FromMask(sub);
      QuantifierSet t1 = s.Minus(t2);
      ++stats_.splits_considered;
      if (!allow_composite && t1.size() > 1 && t2.size() > 1) continue;

      PredSet elig_t1 = eligible(t1);
      PredSet elig_t2 = eligible(t2);
      if (table_->Lookup(t1, elig_t1) == nullptr) continue;
      if (table_->Lookup(t2, elig_t2) == nullptr) continue;
      if (!joinable(t1, t2) && !allow_cartesian) continue;
      ++stats_.joinable_pairs;

      // Newly eligible predicates (§2.3): eligible on the union but on
      // neither input alone.
      PredSet newly = elig_s.Minus(elig_t1).Minus(elig_t2);

      StreamSpec spec1{t1, elig_t1, {}};
      StreamSpec spec2{t2, elig_t2, {}};
      ++stats_.join_root_refs;
      auto sap = engine_->EvalStar(
          join_root_, {RuleValue(spec1), RuleValue(spec2), RuleValue(newly)});
      if (!sap.ok()) return sap.status();
      for (const PlanPtr& plan : sap.value()) {
        table_->Insert(s, elig_s, plan);
      }
    }
  }
  if (run_span.active()) {
    run_span.set_detail(stats_.ToString());
  }
  return Status::OK();
}

}  // namespace starburst
