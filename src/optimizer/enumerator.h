#ifndef STARBURST_OPTIMIZER_ENUMERATOR_H_
#define STARBURST_OPTIMIZER_ENUMERATOR_H_

#include "glue/glue.h"
#include "optimizer/plan_table.h"
#include "star/engine.h"

namespace starburst {

class MetricsRegistry;

/// Bottom-up System-R-style join enumeration, as sketched in paper §2.3:
/// reference AccessRoot for every table, then repeatedly reference JoinRoot
/// for joinable pairs of plan-bearing table sets until all tables are
/// joined. "Joinable" prefers pairs linked by an eligible join predicate;
/// Cartesian products and composite inners are session parameters.
class JoinEnumerator {
 public:
  struct Stats {
    int64_t subsets = 0;
    int64_t splits_considered = 0;
    int64_t joinable_pairs = 0;
    int64_t join_root_refs = 0;

    std::string ToString() const;
    /// Publishes the counters into `registry` under the `enumerator.` prefix.
    void Publish(MetricsRegistry* registry) const;
  };

  JoinEnumerator(StarEngine* engine, Glue* glue, PlanTable* table,
                 std::string join_root = "JoinRoot")
      : engine_(engine),
        glue_(glue),
        table_(table),
        join_root_(std::move(join_root)) {}

  /// Populates the plan table bottom-up for every achievable table subset.
  Status Run();

  Stats& stats() { return stats_; }

 private:
  StarEngine* engine_;
  Glue* glue_;
  PlanTable* table_;
  std::string join_root_;
  Stats stats_;
};

}  // namespace starburst

#endif  // STARBURST_OPTIMIZER_ENUMERATOR_H_
