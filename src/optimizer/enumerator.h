#ifndef STARBURST_OPTIMIZER_ENUMERATOR_H_
#define STARBURST_OPTIMIZER_ENUMERATOR_H_

#include <cstdint>
#include <string>

#include "glue/glue.h"
#include "optimizer/plan_table.h"
#include "star/engine.h"

namespace starburst {

class MetricsRegistry;
class ResourceGovernor;

/// Bottom-up System-R-style join enumeration, as sketched in paper §2.3:
/// reference AccessRoot for every table, then repeatedly reference JoinRoot
/// for joinable pairs of plan-bearing table sets until all tables are
/// joined. "Joinable" prefers pairs linked by an eligible join predicate;
/// Cartesian products and composite inners are session parameters.
///
/// With `num_threads > 1` the DP runs rank-parallel: every subset of size k
/// depends only on subsets of size < k, so each rank is a parallel batch
/// over a worker pool with a barrier between ranks. Each worker owns a full
/// evaluation context (StarEngine + Glue + Tracer) over the shared immutable
/// inputs and the shared thread-safe PlanTable; each subset is processed by
/// exactly one worker. The result is deterministic — identical best-plan
/// cost and plan shape at any thread count (see DESIGN.md).
class JoinEnumerator {
 public:
  struct Stats {
    int64_t subsets = 0;
    int64_t splits_considered = 0;
    int64_t joinable_pairs = 0;
    int64_t join_root_refs = 0;

    std::string ToString() const;
    /// Publishes the counters into `registry` under the `enumerator.` prefix.
    void Publish(MetricsRegistry* registry) const;
    /// Accumulates a worker's counters into this one.
    void MergeFrom(const Stats& other);
  };

  /// `num_threads`: 1 = sequential (the default), 0 = one per hardware
  /// thread, n = a pool of n workers.
  JoinEnumerator(StarEngine* engine, Glue* glue, PlanTable* table,
                 std::string join_root = "JoinRoot", int num_threads = 1)
      : engine_(engine),
        glue_(glue),
        table_(table),
        join_root_(std::move(join_root)),
        num_threads_(num_threads) {}

  /// Populates the plan table bottom-up for every achievable table subset.
  Status Run();

  Stats& stats() { return stats_; }

  /// Attach a resource governor (null = off). Checked between subsets and —
  /// via per-worker engines and Glues — inside STAR expansion, so a tripped
  /// budget stops every worker within one bounded unit of work. Run() then
  /// returns kResourceExhausted for the Optimizer to catch and degrade.
  void set_governor(ResourceGovernor* governor) { governor_ = governor; }

 private:
  /// Enumerates the splits of one subset and inserts the resulting join
  /// plans; `engine` is the calling worker's (or the main) engine, `stats`
  /// the worker-local counters.
  Status ProcessSubset(uint64_t mask, StarEngine* engine, Stats* stats);

  /// Runs ranks 2..n over a pool of `threads` workers with a barrier
  /// between ranks.
  Status RunParallel(int n, int threads);

  StarEngine* engine_;
  Glue* glue_;
  PlanTable* table_;
  std::string join_root_;
  int num_threads_;
  ResourceGovernor* governor_ = nullptr;
  Stats stats_;
};

}  // namespace starburst

#endif  // STARBURST_OPTIMIZER_ENUMERATOR_H_
