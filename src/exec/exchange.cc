#include "exec/exchange.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "common/fault_injector.h"
#include "exec/governor.h"
#include "obs/profiler.h"

namespace starburst {

int ExchangeWorkersFor(int exec_threads, size_t source_rows, size_t morsels) {
  if (exec_threads <= 1 || source_rows < kExchangeMinRows || morsels <= 1) {
    return 1;
  }
  size_t w = std::min(static_cast<size_t>(exec_threads), morsels);
  return static_cast<int>(w);
}

Status RunMorsels(int workers, size_t morsels,
                  const std::function<Status(size_t)>& fn,
                  ExecGovernor* governor) {
  if (morsels == 0) return Status::OK();
  // Per-morsel governance: a tripped governor (deadline, cancellation) stops
  // new morsels from starting — the skipped morsel records the trip status —
  // while morsels already in flight run to completion, preserving the
  // write-only-your-own-slot discipline.
  auto run_one = [&](size_t m) -> Status {
    if (governor != nullptr) {
      Status g = governor->Check();
      if (!g.ok()) return g;
    }
    return fn(m);
  };
  if (workers <= 1 || morsels == 1) {
    // Even the degenerate path runs every morsel: side effects (per-morsel
    // counters, buffers) must not depend on the worker count, and the pool
    // path has no cancellation either.
    Status first = Status::OK();
    for (size_t m = 0; m < morsels; ++m) {
      Status s = run_one(m);
      if (!s.ok() && first.ok()) first = std::move(s);
    }
    return first;
  }
  size_t pool = std::min(static_cast<size_t>(workers), morsels);
  std::atomic<size_t> next{0};
  // One slot per morsel, written only by the worker that claimed it; the
  // coordinator scans in index order after the join, so the reported error
  // is the one the sequential loop would have hit first.
  std::vector<Status> errs(morsels, Status::OK());
  auto work = [&]() {
    for (;;) {
      size_t m = next.fetch_add(1, std::memory_order_relaxed);
      if (m >= morsels) return;
      Status s = run_one(m);
      if (!s.ok()) errs[m] = std::move(s);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(pool - 1);
  for (size_t i = 1; i < pool; ++i) threads.emplace_back(work);
  work();
  for (std::thread& t : threads) t.join();
  for (size_t m = 0; m < morsels; ++m) {
    if (!errs[m].ok()) return errs[m];
  }
  return Status::OK();
}

int SortRowsBySlots(std::vector<Tuple>* rows, const std::vector<int>& slots,
                    int workers) {
  auto less = [&slots](const Tuple& a, const Tuple& b) {
    for (int s : slots) {
      int c = a[static_cast<size_t>(s)].Compare(b[static_cast<size_t>(s)]);
      if (c != 0) return c < 0;
    }
    return false;
  };
  size_t n = rows->size();
  size_t chunks = std::min(static_cast<size_t>(workers > 1 ? workers : 1),
                           MorselCount(n));
  if (workers <= 1 || n < kExchangeMinRows || chunks <= 1) {
    std::stable_sort(rows->begin(), rows->end(), less);
    return 1;
  }
  // Contiguous chunk sorts, then a pairwise stable-merge tree. Equal keys
  // always merge first-range-first, so the result matches one global
  // std::stable_sort regardless of the chunk boundaries.
  std::vector<size_t> bounds(chunks + 1);
  for (size_t i = 0; i <= chunks; ++i) bounds[i] = i * n / chunks;
  Status st = RunMorsels(static_cast<int>(chunks), chunks, [&](size_t c) {
    std::stable_sort(rows->begin() + static_cast<int64_t>(bounds[c]),
                     rows->begin() + static_cast<int64_t>(bounds[c + 1]),
                     less);
    return Status::OK();
  });
  (void)st;  // chunk sorts cannot fail
  while (bounds.size() > 2) {
    size_t ranges = bounds.size() - 1;
    size_t merges = ranges / 2;
    st = RunMorsels(workers, merges, [&](size_t j) {
      size_t i = j * 2;
      std::inplace_merge(rows->begin() + static_cast<int64_t>(bounds[i]),
                         rows->begin() + static_cast<int64_t>(bounds[i + 1]),
                         rows->begin() + static_cast<int64_t>(bounds[i + 2]),
                         less);
      return Status::OK();
    });
    (void)st;
    std::vector<size_t> next_bounds;
    next_bounds.push_back(bounds[0]);
    for (size_t i = 2; i < bounds.size(); i += 2) {
      next_bounds.push_back(bounds[i]);
    }
    if (next_bounds.back() != bounds.back()) {
      next_bounds.push_back(bounds.back());  // odd leftover range
    }
    bounds = std::move(next_bounds);
  }
  return static_cast<int>(chunks);
}

// ---------------------------------------------------------------------------
// PartitionedJoinTable
// ---------------------------------------------------------------------------

PartitionedJoinTable::PartitionedJoinTable(int key_width)
    : key_width_(key_width) {
  parts_.reserve(kPartitions);
  for (int p = 0; p < kPartitions; ++p) parts_.emplace_back(key_width);
}

Status PartitionedJoinTable::Build(const std::vector<Tuple>& rows,
                                   const std::vector<ExprProgram>& key_progs,
                                   std::vector<ExecFrame>* frames,
                                   int exec_threads, ExecGovernor* governor,
                                   const KeyKernel* key_kernel,
                                   int64_t* kernel_rows,
                                   int64_t* kernel_fallbacks) {
  const size_t n = rows.size();
  const int width = key_width_;
  std::vector<Datum> keys(n * static_cast<size_t>(width));
  std::vector<uint64_t> hashes(n, 0);
  std::vector<char> skip(n, 0);
  size_t morsels = MorselCount(n);
  int workers = ExchangeWorkersFor(exec_threads, n, morsels);
  std::vector<int64_t> krows(morsels, 0);
  std::vector<int64_t> kfalls(morsels, 0);
  STARBURST_RETURN_NOT_OK(RunMorsels(workers, morsels, [&](size_t m) {
    size_t lo = m * kMorselRows;
    size_t hi = std::min(n, lo + kMorselRows);
    for (size_t r = lo; r < hi; ++r) {
      Datum* key = &keys[r * static_cast<size_t>(width)];
      if (key_kernel != nullptr) {
        int64_t kv = 0;
        bool kn = false;
        if (key_kernel->EvalInt(rows[r], &kv, &kn)) {
          ++krows[m];
          if (kn) {
            skip[r] = 1;  // NULL keys never match: row skipped
            continue;
          }
          key[0] = Datum(kv);
          hashes[r] = HashInt64JoinKey(kv);
          continue;
        }
        ++kfalls[m];  // type-mismatch row: generic key programs below
      }
      ProgramCtx ctx{&rows[r], frames, nullptr};
      bool null_key = false;
      for (int k = 0; k < width; ++k) {
        auto v = key_progs[static_cast<size_t>(k)].Eval(ctx);
        if (!v.ok()) return v.status();
        if (v.value().is_null()) null_key = true;
        key[k] = std::move(v).value();
      }
      if (null_key) {
        skip[r] = 1;  // NULL keys never match: row skipped, as sequential
        continue;
      }
      hashes[r] = JoinHashTable::HashKey(key, width);
    }
    return Status::OK();
  }, governor));
  if (kernel_rows != nullptr) {
    for (int64_t v : krows) *kernel_rows += v;
  }
  if (kernel_fallbacks != nullptr) {
    for (int64_t v : kfalls) *kernel_fallbacks += v;
  }
  // Partition-parallel insert: each worker owns whole partitions and walks
  // the rows in global order, so chains replay sequential insertion order.
  STARBURST_RETURN_NOT_OK(RunMorsels(std::min(workers, kPartitions),
                                     static_cast<size_t>(kPartitions),
                                     [&](size_t p) {
    JoinHashTable& table = parts_[p];
    for (size_t r = 0; r < n; ++r) {
      if (skip[r] != 0) continue;
      if (PartitionOf(hashes[r]) != static_cast<int>(p)) continue;
      STARBURST_RETURN_NOT_OK(
          table.Insert(&keys[r * static_cast<size_t>(width)], hashes[r],
                       static_cast<uint32_t>(r)));
    }
    return Status::OK();
  }, governor));
  build_workers_ = workers;
  return Status::OK();
}

size_t PartitionedJoinTable::num_rows() const {
  size_t n = 0;
  for (const JoinHashTable& t : parts_) n += t.num_rows();
  return n;
}

size_t PartitionedJoinTable::num_groups() const {
  size_t n = 0;
  for (const JoinHashTable& t : parts_) n += t.num_groups();
  return n;
}

size_t PartitionedJoinTable::num_slots() const {
  size_t n = 0;
  for (const JoinHashTable& t : parts_) n += t.num_slots();
  return n;
}

int64_t PartitionedJoinTable::ApproxBytes() const {
  int64_t n = 0;
  for (const JoinHashTable& t : parts_) n += t.ApproxBytes();
  return n;
}

// ---------------------------------------------------------------------------
// ExchangeScanIterator
// ---------------------------------------------------------------------------

Status ExchangeScanIterator::DoOpen() {
  // Same fault site, hit exactly once per open on the coordinator — the
  // sequential scan's check sequence, regardless of worker count.
  STARBURST_RETURN_NOT_OK(rt_->faults->Check(faultsite::kExecScanOpen));
  const Query& query = *rt_->query;
  if (!compiled_) {
    is_index_ = node_->flavor == flavor::kIndex;
    q_ = static_cast<int>(node_->args.GetInt(arg::kQuantifier, -1));
    table_ = &rt_->db->table(query.quantifier(q_).table);
    schema_ = node_->args.GetColumns(arg::kCols);
    PredSet preds = node_->args.GetPreds(arg::kPreds);
    CompileEnv env;
    env.schema = &schema_;
    env.frames = rt_->env;
    env.frame_limit = static_cast<size_t>(depth_);
    env.base_quantifier = q_;
    preds_ = PredProgram::Compile(preds, query, env);
    if (!is_index_ && rt_->typed_kernels) {
      KernelEnv kenv;
      kenv.schema = &schema_;
      kenv.query = rt_->query;
      kenv.db = rt_->db;
      kenv.base_quantifier = q_;
      kenv.scan_mode = true;
      kernel_ = KernelProgram::Compile(preds, query, kenv);
      if (kernel_.usable()) {
        rem_preds_ = PredProgram::Compile(kernel_.remainder(), query, env);
      }
    }
    if (is_index_) {
      auto index = rt_->db->FindIndex(query.quantifier(q_).table,
                                      node_->args.GetString(arg::kIndex));
      if (!index.ok()) return index.status();
      ix_ = index.value();
      // Probe-prefix compilation, identical to IndexScanIterator. At depth
      // 0 (the only depth this iterator is built at) resolvable probes are
      // constants.
      CompileEnv probe_env;
      probe_env.frames = rt_->env;
      probe_env.frame_limit = static_cast<size_t>(depth_);
      for (int ord : ix_->key_columns()) {
        ColumnRef key{q_, ord};
        const Expr* probe = nullptr;
        for (int id : preds.ToVector()) {
          const Predicate& p = query.predicate(id);
          if (p.op != CompareOp::kEq) continue;
          if (p.lhs->IsBareColumn() && p.lhs->column() == key) {
            probe = p.rhs.get();
          } else if (p.rhs->IsBareColumn() && p.rhs->column() == key) {
            probe = p.lhs.get();
          }
          if (probe != nullptr) break;
        }
        if (probe == nullptr) break;
        ExprProgram prog = ExprProgram::Compile(*probe, probe_env);
        if (!prog.resolvable()) break;  // not computable before the scan
        probe_progs_.push_back(std::move(prog));
      }
    }
    compiled_ = true;
  }
  if (is_index_) {
    prefix_.clear();
    ProgramCtx ctx{nullptr, rt_->env, nullptr};
    for (const ExprProgram& p : probe_progs_) {
      auto v = p.Eval(ctx);
      if (!v.ok()) return v.status();
      prefix_.push_back(std::move(v).value());
    }
    use_prefix_ = !prefix_.empty();
    if (use_prefix_) pref_entries_ = ix_->LookupPrefix(prefix_);
  }
  ran_ = false;
  morsel_rows_.clear();
  emit_morsel_ = 0;
  emit_pos_ = 0;
  return Status::OK();
}

Status ExchangeScanIterator::RunScan() {
  size_t n;
  if (is_index_) {
    n = use_prefix_ ? pref_entries_.size() : ix_->entries().size();
  } else {
    n = static_cast<size_t>(table_->num_rows());
  }
  size_t morsels = MorselCount(n);
  int workers = ExchangeWorkersFor(rt_->exec_threads, n, morsels);
  morsel_rows_.assign(morsels, {});
  std::vector<int64_t> evals(morsels, 0);
  std::vector<int64_t> krows(morsels, 0);
  std::vector<int64_t> kfalls(morsels, 0);
  const bool use_kernel = !is_index_ && kernel_.usable();
  const bool rem = !rem_preds_.empty();
  STARBURST_RETURN_NOT_OK(RunMorsels(workers, morsels, [&](size_t m) {
    size_t lo = m * kMorselRows;
    size_t hi = std::min(n, lo + kMorselRows);
    std::vector<Tuple>& out = morsel_rows_[m];
    if (use_kernel) {
      // Fused path with a null KernelState: fixed predicate order, so the
      // shared program is read-only across workers. Survivors and mismatch
      // rows merge back in TID order — the morsel's sequential row order.
      std::vector<int64_t> hit, mis;
      kernel_.EvalScan(*table_, static_cast<int64_t>(lo),
                       static_cast<int64_t>(hi), &hit, &mis, nullptr);
      evals[m] = static_cast<int64_t>(hi - lo);
      krows[m] =
          static_cast<int64_t>(hi - lo) - static_cast<int64_t>(mis.size());
      kfalls[m] = static_cast<int64_t>(mis.size()) +
                  (rem ? static_cast<int64_t>(hit.size()) : 0);
      size_t a = 0, b = 0;
      while (a < hit.size() || b < mis.size()) {
        bool from_mis =
            b < mis.size() && (a >= hit.size() || mis[b] < hit[a]);
        int64_t tid = from_mis ? mis[b++] : hit[a++];
        const Tuple& base = table_->row(tid);
        Tuple t;
        t.reserve(schema_.size());
        for (const ColumnRef& c : schema_) {
          if (c.is_tid()) {
            t.push_back(Datum(tid));
          } else {
            t.push_back(base[static_cast<size_t>(c.column)]);
          }
        }
        if (!from_mis && !rem) {
          out.push_back(std::move(t));
          continue;
        }
        ProgramCtx ctx{&t, rt_->env, &base};
        auto keep = (from_mis ? preds_ : rem_preds_).Eval(ctx);
        if (!keep.ok()) return keep.status();
        if (keep.value()) out.push_back(std::move(t));
      }
      return Status::OK();
    }
    int64_t local_evals = 0;
    for (size_t i = lo; i < hi; ++i) {
      Tid tid;
      if (is_index_) {
        const SecondaryIndex::Entry* e =
            use_prefix_ ? pref_entries_[i] : &ix_->entries()[i];
        tid = e->tid;
      } else {
        tid = static_cast<Tid>(i);
      }
      const Tuple& base = table_->row(tid);
      Tuple t;
      t.reserve(schema_.size());
      for (const ColumnRef& c : schema_) {
        if (c.is_tid()) {
          t.push_back(Datum(static_cast<int64_t>(tid)));
        } else {
          t.push_back(base[static_cast<size_t>(c.column)]);
        }
      }
      ProgramCtx ctx{&t, rt_->env, &base};
      ++local_evals;
      auto keep = preds_.Eval(ctx);
      if (!keep.ok()) return keep.status();
      if (keep.value()) out.push_back(std::move(t));
    }
    evals[m] = local_evals;
    return Status::OK();
  }, rt_->governor));
  for (int64_t e : evals) pred_evals_ += e;
  for (int64_t v : krows) kernel_rows_ += v;
  for (int64_t v : kfalls) kernel_fallbacks_ += v;
  if (workers > workers_used_) workers_used_ = workers;
  return Status::OK();
}

Status ExchangeScanIterator::DoNext(RowBatch* out) {
  if (!ran_) {
    STARBURST_RETURN_NOT_OK(RunScan());
    ran_ = true;
  }
  while (static_cast<int>(out->rows.size()) < rt_->batch_size &&
         emit_morsel_ < morsel_rows_.size()) {
    std::vector<Tuple>& rows = morsel_rows_[emit_morsel_];
    if (emit_pos_ >= rows.size()) {
      rows.clear();
      rows.shrink_to_fit();
      ++emit_morsel_;
      emit_pos_ = 0;
      continue;
    }
    out->rows.push_back(std::move(rows[emit_pos_++]));
  }
  return Status::OK();
}

Status ExchangeScanIterator::DoClose() {
  if (rt_->profile != nullptr) {
    OpProfile& p = rt_->profile->at(node_);
    if (pred_evals_ > 0) {
      p.pred_evals += pred_evals_;
      p.pred_steps += pred_evals_ * static_cast<int64_t>(preds_.size());
    }
    if (workers_used_ > 1 && workers_used_ > p.exchange_workers) {
      p.exchange_workers = workers_used_;
    }
    if (kernel_rows_ > 0 || kernel_fallbacks_ > 0) {
      p.kernel_rows += kernel_rows_;
      p.kernel_fallbacks += kernel_fallbacks_;
      p.kernel_fused_preds = kernel_.fused();
      p.kernel_fallback_preds = kernel_.fallback_preds();
    }
  }
  if (kernel_rows_ > 0 || kernel_fallbacks_ > 0) {
    rt_->kernel_rows.fetch_add(kernel_rows_, std::memory_order_relaxed);
    rt_->kernel_fallback_rows.fetch_add(kernel_fallbacks_,
                                        std::memory_order_relaxed);
  }
  kernel_rows_ = 0;
  kernel_fallbacks_ = 0;
  morsel_rows_.clear();
  return Status::OK();
}

}  // namespace starburst
