#ifndef STARBURST_EXEC_PRED_PROGRAM_H_
#define STARBURST_EXEC_PRED_PROGRAM_H_

#include <cstdint>
#include <vector>

#include "exec/executor.h"
#include "query/predicate.h"

namespace starburst {

/// Compilation scope for expression programs: the stream's slot layout, the
/// enclosing nested-loop binding frames (stable indices for the duration of
/// a run), and — during base-table ACCESS/GET — the scanned quantifier whose
/// full base row is visible to predicates on unprojected columns. Resolution
/// order matches the legacy interpreter: schema slot, then frames innermost
/// first, then base row.
struct CompileEnv {
  const Schema* schema = nullptr;
  const std::vector<ExecFrame>* frames = nullptr;
  /// Only frame slots [0, frame_limit) are in scope — frames beyond that
  /// belong to sibling pipelines whose bindings the legacy interpreter would
  /// never see (its stack pops them before this node evaluates).
  size_t frame_limit = 0;
  int base_quantifier = -1;
};

/// Per-row evaluation context for a compiled program. `frames` must be the
/// same vector the program was compiled against (frame loads are by index);
/// `base` is the current base row when the program was compiled with a base
/// quantifier.
struct ProgramCtx {
  const Tuple* row = nullptr;
  const std::vector<ExecFrame>* frames = nullptr;
  const Tuple* base = nullptr;
};

/// A scalar expression compiled to a flat postfix program: column refs are
/// resolved to slot/frame/base loads once at open time, constant subtrees
/// are folded. Columns that do not resolve compile to a trap step that
/// errors only if executed — the legacy interpreter is exactly as lazy.
class ExprProgram {
 public:
  ExprProgram() = default;

  static ExprProgram Compile(const Expr& expr, const CompileEnv& env);

  Result<Datum> Eval(const ProgramCtx& ctx) const;

  /// Folded to a single constant?
  bool IsConstant() const;
  const Datum& ConstantValue() const { return steps_[0].value; }

  /// True if every column reference resolved at compile time.
  bool resolvable() const { return resolvable_; }

 private:
  enum class OpCode : uint8_t {
    kSlot,        // push row[a]
    kFrame,       // push frames[a].tuple[b]
    kBase,        // push base[a]
    kConst,       // push value
    kAdd, kSub, kMul, kDiv,  // pop two, push EvalBinary
    kUnresolved,  // error: column unresolvable at run time
  };
  struct Step {
    OpCode op;
    int32_t a = 0;
    int32_t b = 0;
    Datum value;  // kConst payload
  };

  static void CompileNode(const Expr& expr, const CompileEnv& env,
                          std::vector<Step>* steps, bool* resolvable,
                          int* max_depth);

  std::vector<Step> steps_;
  int max_stack_ = 0;
  bool resolvable_ = true;
};

/// A conjunction of predicates compiled against one stream layout. Preds are
/// evaluated in ascending id order with short-circuiting, exactly like the
/// legacy EvalPredSet, so error/false ordering is preserved. Predicates
/// whose two sides fold to constants are decided at compile time: always-true
/// conjuncts are dropped, always-false ones become an in-order early return.
class PredProgram {
 public:
  PredProgram() = default;

  static PredProgram Compile(PredSet preds, const Query& query,
                             const CompileEnv& env);

  Result<bool> Eval(const ProgramCtx& ctx) const;

  bool empty() const { return preds_.empty(); }
  size_t size() const { return preds_.size(); }

 private:
  struct CompiledPred {
    ExprProgram lhs;
    ExprProgram rhs;
    CompareOp op = CompareOp::kEq;
    bool const_false = false;  // both sides constant and the compare failed
  };
  std::vector<CompiledPred> preds_;
};

}  // namespace starburst

#endif  // STARBURST_EXEC_PRED_PROGRAM_H_
