#include "exec/spill_file.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace starburst {

namespace {

std::atomic<int64_t> g_live_spill_files{0};

constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagString = 3;

void AppendRaw(std::string* buf, const void* p, size_t n) {
  buf->append(static_cast<const char*>(p), n);
}

void AppendU32(std::string* buf, uint32_t v) { AppendRaw(buf, &v, sizeof(v)); }

Status IoError(const std::string& what) {
  return Status::Internal("spill: " + what + ": " + std::strerror(errno));
}

}  // namespace

SpillFile& SpillFile::operator=(SpillFile&& o) noexcept {
  if (this != &o) {
    Discard();
    file_ = o.file_;
    path_ = std::move(o.path_);
    faults_ = o.faults_;
    rows_written_ = o.rows_written_;
    bytes_written_ = o.bytes_written_;
    rbuf_ = std::move(o.rbuf_);
    rpos_ = o.rpos_;
    o.file_ = nullptr;
    o.path_.clear();
    o.faults_ = nullptr;
    o.rows_written_ = 0;
    o.bytes_written_ = 0;
    o.rbuf_.clear();
    o.rpos_ = 0;
  }
  return *this;
}

int64_t SpillFile::LiveFiles() {
  return g_live_spill_files.load(std::memory_order_acquire);
}

void SpillFile::Discard() {
  if (file_ == nullptr) return;
  std::fclose(file_);
  ::unlink(path_.c_str());
  file_ = nullptr;
  path_.clear();
  g_live_spill_files.fetch_sub(1, std::memory_order_acq_rel);
}

Status SpillFile::Create(FaultInjector* faults) {
  Discard();
  faults_ = faults;
  if (faults_ != nullptr) {
    STARBURST_RETURN_NOT_OK(faults_->Check(faultsite::kExecSpillOpen));
  }
  const char* tmpdir = std::getenv("TMPDIR");
  std::string tmpl = (tmpdir != nullptr && *tmpdir != '\0') ? tmpdir : "/tmp";
  tmpl += "/starburst-spill-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  int fd = ::mkstemp(buf.data());
  if (fd < 0) return IoError("mkstemp(" + tmpl + ") failed");
  file_ = ::fdopen(fd, "w+b");
  if (file_ == nullptr) {
    Status st = IoError("fdopen failed");
    ::close(fd);
    ::unlink(buf.data());
    return st;
  }
  path_.assign(buf.data());
  rows_written_ = 0;
  bytes_written_ = 0;
  rbuf_.clear();
  rpos_ = 0;
  g_live_spill_files.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status SpillFile::WriteRows(const std::vector<std::vector<Datum>>& rows) {
  if (file_ == nullptr) return Status::Internal("spill: write before Create");
  if (rows.empty()) return Status::OK();
  // One fault check per batched write keeps the hit count proportional to
  // spill activity, not row count.
  if (faults_ != nullptr) {
    STARBURST_RETURN_NOT_OK(faults_->Check(faultsite::kExecSpillWrite));
  }
  std::string buf;
  for (const auto& row : rows) {
    AppendU32(&buf, static_cast<uint32_t>(row.size()));
    for (const Datum& d : row) {
      if (d.is_null()) {
        buf.push_back(static_cast<char>(kTagNull));
      } else if (d.is_int()) {
        buf.push_back(static_cast<char>(kTagInt));
        int64_t v = d.AsInt();
        AppendRaw(&buf, &v, sizeof(v));
      } else if (d.is_double()) {
        buf.push_back(static_cast<char>(kTagDouble));
        double v = d.AsDouble();
        AppendRaw(&buf, &v, sizeof(v));
      } else {
        buf.push_back(static_cast<char>(kTagString));
        const std::string& s = d.AsString();
        AppendU32(&buf, static_cast<uint32_t>(s.size()));
        buf.append(s);
      }
    }
  }
  if (std::fwrite(buf.data(), 1, buf.size(), file_) != buf.size()) {
    return IoError("write of " + std::to_string(buf.size()) +
                   " bytes to " + path_ + " failed");
  }
  rows_written_ += static_cast<int64_t>(rows.size());
  bytes_written_ += static_cast<int64_t>(buf.size());
  return Status::OK();
}

Status SpillFile::WriteRow(const std::vector<Datum>& row) {
  return WriteRows({row});
}

Status SpillFile::FinishWrite() {
  if (file_ == nullptr) return Status::Internal("spill: finish before Create");
  if (std::fflush(file_) != 0) return IoError("flush of " + path_ + " failed");
  return Status::OK();
}

Status SpillFile::BeginRead() {
  if (file_ == nullptr) return Status::Internal("spill: read before Create");
  if (faults_ != nullptr) {
    STARBURST_RETURN_NOT_OK(faults_->Check(faultsite::kExecSpillRead));
  }
  if (std::fflush(file_) != 0) return IoError("flush of " + path_ + " failed");
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return IoError("rewind of " + path_ + " failed");
  }
  rbuf_.clear();
  rpos_ = 0;
  return Status::OK();
}

bool SpillFile::BufferedRead(void* p, size_t n) {
  constexpr size_t kReadChunk = 64 * 1024;
  char* out = static_cast<char*>(p);
  while (n > 0) {
    if (rpos_ == rbuf_.size()) {
      rbuf_.resize(kReadChunk);
      size_t got = std::fread(rbuf_.data(), 1, kReadChunk, file_);
      rbuf_.resize(got);
      rpos_ = 0;
      if (got == 0) return false;
    }
    size_t take = std::min(n, rbuf_.size() - rpos_);
    std::memcpy(out, rbuf_.data() + rpos_, take);
    rpos_ += take;
    out += take;
    n -= take;
  }
  return true;
}

Status SpillFile::ReadRow(std::vector<Datum>* row, bool* eof) {
  *eof = false;
  uint32_t count = 0;
  if (!BufferedRead(&count, sizeof(count))) {
    if (std::feof(file_)) {
      *eof = true;
      return Status::OK();
    }
    return IoError("read of row header from " + path_ + " failed");
  }
  row->clear();
  row->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t tag = 0;
    if (!BufferedRead(&tag, sizeof(tag))) {
      return IoError("read of datum tag from " + path_ + " failed");
    }
    switch (tag) {
      case kTagNull:
        row->push_back(Datum::NullValue());
        break;
      case kTagInt: {
        int64_t v = 0;
        if (!BufferedRead(&v, sizeof(v))) {
          return IoError("read of int64 from " + path_ + " failed");
        }
        row->push_back(Datum(v));
        break;
      }
      case kTagDouble: {
        double v = 0.0;
        if (!BufferedRead(&v, sizeof(v))) {
          return IoError("read of double from " + path_ + " failed");
        }
        row->push_back(Datum(v));
        break;
      }
      case kTagString: {
        uint32_t len = 0;
        if (!BufferedRead(&len, sizeof(len))) {
          return IoError("read of string length from " + path_ + " failed");
        }
        std::string s(len, '\0');
        if (len > 0 && !BufferedRead(s.data(), len)) {
          return IoError("read of string body from " + path_ + " failed");
        }
        row->push_back(Datum(std::move(s)));
        break;
      }
      default:
        return Status::Internal("spill: corrupt datum tag " +
                                std::to_string(tag) + " in " + path_);
    }
  }
  return Status::OK();
}

}  // namespace starburst
