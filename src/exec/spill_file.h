#ifndef STARBURST_EXEC_SPILL_FILE_H_
#define STARBURST_EXEC_SPILL_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/status.h"
#include "common/value.h"

namespace starburst {

/// One spilled run (or Grace-join partition): a self-deleting temp file of
/// serialized rows, written once front-to-back and then read back in the
/// same order. Owned by the spilling operator; the destructor always closes
/// and unlinks, so no error, cancellation, or injected-fault path can leak
/// a file — tests assert SpillFile::LiveFiles() == 0 after every failure.
///
/// Row format (host-endian; the file never outlives the process):
///   u32 datum count, then per datum a u8 tag
///   (0=null, 1=int64, 2=double, 3=string) and its payload
///   (int64/double raw; string = u32 length + bytes).
///
/// Fault sites: Create -> exec.spill.open, each WriteRows batch ->
/// exec.spill.write, each BeginRead -> exec.spill.read. All spill I/O runs
/// on the coordinator thread, so hit order is deterministic at any batch
/// size and exec thread count.
class SpillFile {
 public:
  SpillFile() = default;
  ~SpillFile() { Discard(); }
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;
  SpillFile(SpillFile&& o) noexcept { *this = std::move(o); }
  SpillFile& operator=(SpillFile&& o) noexcept;

  /// Creates the temp file under $TMPDIR (default /tmp) and opens it for
  /// writing. `faults` may be null; it is retained for the write/read
  /// checks on this file.
  Status Create(FaultInjector* faults);

  /// Appends `rows` (one exec.spill.write fault check per call, so callers
  /// batch writes). Create must have succeeded.
  Status WriteRows(const std::vector<std::vector<Datum>>& rows);

  /// Appends one row (same fault-check granularity as a WriteRows call).
  Status WriteRow(const std::vector<Datum>& row);

  /// Flushes buffered writes; call once when the run is fully written.
  Status FinishWrite();

  /// Rewinds to the first row for read-back (one exec.spill.read check).
  /// Writing after BeginRead is unsupported — the file is written once
  /// front-to-back, then only read.
  Status BeginRead();

  /// Reads the next row. Sets *eof (leaving *row untouched) at end of file.
  Status ReadRow(std::vector<Datum>* row, bool* eof);

  /// Closes and unlinks immediately (idempotent; also run by the dtor).
  void Discard();

  bool created() const { return file_ != nullptr; }
  int64_t rows_written() const { return rows_written_; }
  int64_t bytes_written() const { return bytes_written_; }

  /// Count of SpillFiles currently holding an open temp file, process-wide.
  /// Leak tests assert this returns to zero after every error path.
  static int64_t LiveFiles();

 private:
  /// Copies `n` bytes of the stream into `p` through the chunked read
  /// buffer; false once the file runs out first (check feof vs. error).
  bool BufferedRead(void* p, size_t n);

  std::FILE* file_ = nullptr;
  std::string path_;
  FaultInjector* faults_ = nullptr;
  int64_t rows_written_ = 0;
  int64_t bytes_written_ = 0;
  // Read-back decodes rows out of 64 KiB chunks instead of issuing one
  // locked fread per tag and payload — per-datum stdio calls were the
  // dominant cost of reading a partition back.
  std::string rbuf_;
  size_t rpos_ = 0;
};

}  // namespace starburst

#endif  // STARBURST_EXEC_SPILL_FILE_H_
