#include "exec/governor.h"

#include <cstdlib>

#include "obs/profiler.h"

namespace starburst {

namespace {

int64_t EnvInt64OrZero(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  long long v = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || v < 0) return 0;
  return static_cast<int64_t>(v);
}

}  // namespace

int64_t DefaultExecDeadlineMs() {
  return EnvInt64OrZero("STARBURST_EXEC_DEADLINE_MS");
}

int64_t DefaultExecMemLimit() {
  return EnvInt64OrZero("STARBURST_EXEC_MEM_LIMIT");
}

void ExecGovernor::Trip(Status status) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (trip_status_.ok()) trip_status_ = std::move(status);
  }
  stopped_.store(true, std::memory_order_release);
}

Status ExecGovernor::Check() {
  // Once tripped — by any thread — every check everywhere reports the same
  // Status, so the whole iterator tree winds down cooperatively and Close()
  // runs on every opened operator.
  if (!stopped_.load(std::memory_order_acquire)) {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_acquire)) {
      Trip(Status::Cancelled("query cancelled by client"));
    } else if (deadline_.expired()) {
      Trip(Status::ResourceExhausted(
          "execution deadline of " + std::to_string(deadline_.ms()) +
          "ms exceeded"));
    }
  }
  if (!stopped_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  return trip_status_;
}

bool ExecGovernor::ShouldSpill() const {
  return limits_.mem_limit > 0 && tracker_ != nullptr &&
         tracker_->current_bytes() >= limits_.mem_limit;
}

}  // namespace starburst
