#include "exec/pred_program.h"

#include <algorithm>
#include <utility>

namespace starburst {

namespace {

int SlotIn(const Schema* schema, ColumnRef ref) {
  if (schema == nullptr) return -1;
  for (size_t i = 0; i < schema->size(); ++i) {
    if ((*schema)[i] == ref) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

void ExprProgram::CompileNode(const Expr& expr, const CompileEnv& env,
                              std::vector<Step>* steps, bool* resolvable,
                              int* max_depth) {
  switch (expr.kind()) {
    case ExprKind::kLiteral: {
      Step s{OpCode::kConst};
      s.value = expr.literal();
      steps->push_back(std::move(s));
      *max_depth = std::max(*max_depth, 1);
      return;
    }
    case ExprKind::kColumn: {
      ColumnRef ref = expr.column();
      // Resolution order mirrors Executor::Resolve: stream slot, enclosing
      // NL frames innermost first, then the scan's base row.
      int slot = SlotIn(env.schema, ref);
      if (slot >= 0) {
        steps->push_back(Step{OpCode::kSlot, slot});
      } else {
        int frame = -1, fslot = -1;
        if (env.frames != nullptr) {
          size_t limit = std::min(env.frame_limit, env.frames->size());
          for (int f = static_cast<int>(limit) - 1; f >= 0; --f) {
            int s = SlotIn((*env.frames)[static_cast<size_t>(f)].schema, ref);
            if (s >= 0) {
              frame = f;
              fslot = s;
              break;
            }
          }
        }
        if (frame >= 0) {
          steps->push_back(Step{OpCode::kFrame, frame, fslot});
        } else if (ref.quantifier == env.base_quantifier && !ref.is_tid()) {
          steps->push_back(Step{OpCode::kBase, ref.column});
        } else {
          steps->push_back(Step{OpCode::kUnresolved, ref.quantifier,
                                ref.column});
          *resolvable = false;
        }
      }
      *max_depth = std::max(*max_depth, 1);
      return;
    }
    default: {
      size_t before = steps->size();
      int ldepth = 0, rdepth = 0;
      CompileNode(*expr.lhs(), env, steps, resolvable, &ldepth);
      size_t mid = steps->size();
      CompileNode(*expr.rhs(), env, steps, resolvable, &rdepth);
      // Fold constant subtrees bottom-up: if both operands compiled to a
      // single constant, replace the three steps with the computed value.
      bool lconst = (mid - before) == 1 &&
                    (*steps)[before].op == OpCode::kConst;
      bool rconst = (steps->size() - mid) == 1 &&
                    (*steps)[mid].op == OpCode::kConst;
      // Never fold a division whose divisor folded to zero (or NULL): the
      // NULL that EvalBinary would produce is a *runtime* semantic, and
      // baking it into a constant at compile time would hide the division
      // from every runtime policy (and from EXPLAIN's step counts). Keep
      // the kDiv step; the interpreter reproduces the exact row-time value.
      if (lconst && rconst && expr.kind() == ExprKind::kDiv) {
        const Datum& divisor = (*steps)[mid].value;
        bool zero_or_null =
            divisor.is_null() ||
            (divisor.is_int() && divisor.AsInt() == 0) ||
            (divisor.is_double() && divisor.AsDouble() == 0.0);
        if (zero_or_null) {
          steps->push_back(Step{OpCode::kDiv});
          *max_depth = std::max(*max_depth, std::max(ldepth, 1 + rdepth));
          return;
        }
      }
      if (lconst && rconst) {
        Datum folded = EvalBinary(expr.kind(), (*steps)[before].value,
                                  (*steps)[mid].value);
        steps->resize(before);
        Step s{OpCode::kConst};
        s.value = std::move(folded);
        steps->push_back(std::move(s));
        *max_depth = std::max(*max_depth, 1);
        return;
      }
      OpCode op = OpCode::kAdd;
      switch (expr.kind()) {
        case ExprKind::kAdd: op = OpCode::kAdd; break;
        case ExprKind::kSub: op = OpCode::kSub; break;
        case ExprKind::kMul: op = OpCode::kMul; break;
        case ExprKind::kDiv: op = OpCode::kDiv; break;
        default: break;
      }
      steps->push_back(Step{op});
      // The right operand evaluates while the left's value sits on the stack.
      *max_depth = std::max(*max_depth, std::max(ldepth, 1 + rdepth));
      return;
    }
  }
}

ExprProgram ExprProgram::Compile(const Expr& expr, const CompileEnv& env) {
  ExprProgram p;
  CompileNode(expr, env, &p.steps_, &p.resolvable_, &p.max_stack_);
  return p;
}

bool ExprProgram::IsConstant() const {
  return steps_.size() == 1 && steps_[0].op == OpCode::kConst;
}

Result<Datum> ExprProgram::Eval(const ProgramCtx& ctx) const {
  // The stack depth is known at compile time; stay on the C++ stack for the
  // common shallow case.
  Datum local[8];
  std::vector<Datum> heap;
  Datum* stack = local;
  if (max_stack_ > 8) {
    heap.resize(static_cast<size_t>(max_stack_));
    stack = heap.data();
  }
  int top = 0;
  for (const Step& s : steps_) {
    switch (s.op) {
      case OpCode::kSlot:
        stack[top++] = (*ctx.row)[static_cast<size_t>(s.a)];
        break;
      case OpCode::kFrame:
        stack[top++] =
            (*(*ctx.frames)[static_cast<size_t>(s.a)].tuple)[
                static_cast<size_t>(s.b)];
        break;
      case OpCode::kBase:
        stack[top++] = (*ctx.base)[static_cast<size_t>(s.a)];
        break;
      case OpCode::kConst:
        stack[top++] = s.value;
        break;
      case OpCode::kAdd:
        top--;
        stack[top - 1] = EvalBinary(ExprKind::kAdd, stack[top - 1], stack[top]);
        break;
      case OpCode::kSub:
        top--;
        stack[top - 1] = EvalBinary(ExprKind::kSub, stack[top - 1], stack[top]);
        break;
      case OpCode::kMul:
        top--;
        stack[top - 1] = EvalBinary(ExprKind::kMul, stack[top - 1], stack[top]);
        break;
      case OpCode::kDiv:
        top--;
        stack[top - 1] = EvalBinary(ExprKind::kDiv, stack[top - 1], stack[top]);
        break;
      case OpCode::kUnresolved:
        return Status::Internal("unresolvable column q" +
                                std::to_string(s.a) + ".c" +
                                std::to_string(s.b) + " at run time");
    }
  }
  return std::move(stack[0]);
}

PredProgram PredProgram::Compile(PredSet preds, const Query& query,
                                 const CompileEnv& env) {
  PredProgram prog;
  for (int id : preds.ToVector()) {
    const Predicate& p = query.predicate(id);
    CompiledPred cp;
    cp.lhs = ExprProgram::Compile(*p.lhs, env);
    cp.rhs = ExprProgram::Compile(*p.rhs, env);
    cp.op = p.op;
    if (cp.lhs.IsConstant() && cp.rhs.IsConstant()) {
      // Decide constant conjuncts now; keep always-false ones as in-order
      // early returns so that an unresolvable predicate *after* a false one
      // never errors (exactly the legacy short-circuit behavior).
      if (EvalCompare(cp.op, cp.lhs.ConstantValue(), cp.rhs.ConstantValue())) {
        continue;
      }
      cp.const_false = true;
    }
    prog.preds_.push_back(std::move(cp));
  }
  return prog;
}

Result<bool> PredProgram::Eval(const ProgramCtx& ctx) const {
  for (const CompiledPred& p : preds_) {
    if (p.const_false) return false;
    auto lhs = p.lhs.Eval(ctx);
    if (!lhs.ok()) return lhs.status();
    auto rhs = p.rhs.Eval(ctx);
    if (!rhs.ok()) return rhs.status();
    if (!EvalCompare(p.op, lhs.value(), rhs.value())) return false;
  }
  return true;
}

}  // namespace starburst
