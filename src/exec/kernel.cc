#include "exec/kernel.h"

#include <algorithm>
#include <optional>

#include "query/query.h"

namespace starburst {

using kernel_detail::KPred;
using kernel_detail::NumExpr;
using kernel_detail::NumStep;
using kernel_detail::PredKind;
using kernel_detail::StrOperand;

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

namespace {

/// Catalog-declared type of `ref`, or nullopt when it cannot be established
/// statically. TID pseudo-columns are int64 by construction.
std::optional<ColumnType> DeclaredType(const ColumnRef& ref,
                                       const Query& query) {
  if (ref.is_tid()) return ColumnType::kInt64;
  if (ref.quantifier < 0 || ref.quantifier >= query.num_quantifiers()) {
    return std::nullopt;
  }
  const TableDef& table = query.table_of(ref.quantifier);
  if (ref.column < 0 ||
      ref.column >= static_cast<int>(table.columns.size())) {
    return std::nullopt;
  }
  return table.columns[ref.column].type;
}

/// Resolves a column leaf to a load step, mirroring the interpreter's
/// resolution order. Slot mode sees only the stream schema (a leaf the
/// interpreter would find in a binding frame must not fuse); scan mode sees
/// only the base row of the scanned quantifier, whose values are by
/// construction identical to the projected slots.
bool ResolveLeaf(const ColumnRef& ref, const KernelEnv& env, NumStep* step) {
  if (env.scan_mode) {
    if (ref.quantifier != env.base_quantifier) return false;
    if (ref.is_tid()) {
      step->op = NumStep::Op::kTid;
      return true;
    }
    step->op = NumStep::Op::kBase;
    step->a = ref.column;
    return true;
  }
  if (env.schema == nullptr) return false;
  for (size_t i = 0; i < env.schema->size(); ++i) {
    if ((*env.schema)[i] == ref) {
      step->op = NumStep::Op::kSlot;
      step->a = static_cast<int32_t>(i);
      return true;
    }
  }
  return false;
}

struct NumBuild {
  std::vector<NumStep> steps;
  std::optional<bool> dbl;  // unset until the first typed leaf
  bool has_load = false;
  int depth = 0;
  int max_depth = 0;
};

/// Postfix-compiles `expr` into typed steps. Fails (returns false) on
/// division, string/NULL leaves, unresolvable columns, a type disagreeing
/// with previously seen leaves, or stack depth over the fixed eval stack.
bool CompileNum(const Expr& expr, const Query& query, const KernelEnv& env,
                NumBuild* b) {
  constexpr int kMaxStack = 8;
  switch (expr.kind()) {
    case ExprKind::kColumn: {
      std::optional<ColumnType> type = DeclaredType(expr.column(), query);
      if (!type.has_value() || *type == ColumnType::kString) return false;
      bool dbl = *type == ColumnType::kDouble;
      if (b->dbl.has_value() && *b->dbl != dbl) return false;
      b->dbl = dbl;
      NumStep step;
      if (!ResolveLeaf(expr.column(), env, &step)) return false;
      b->steps.push_back(step);
      b->has_load = true;
      break;
    }
    case ExprKind::kLiteral: {
      const Datum& v = expr.literal();
      NumStep step;
      if (v.is_int()) {
        if (b->dbl.has_value() && *b->dbl) return false;
        b->dbl = false;
        step.op = NumStep::Op::kConstI;
        step.ci = v.AsInt();
      } else if (v.is_double()) {
        if (b->dbl.has_value() && !*b->dbl) return false;
        b->dbl = true;
        step.op = NumStep::Op::kConstD;
        step.cd = v.AsDouble();
      } else {
        return false;  // NULL or string literal: interpreter territory
      }
      b->steps.push_back(step);
      break;
    }
    case ExprKind::kAdd:
    case ExprKind::kSub:
    case ExprKind::kMul: {
      if (!CompileNum(*expr.lhs(), query, env, b)) return false;
      if (!CompileNum(*expr.rhs(), query, env, b)) return false;
      NumStep step;
      step.op = expr.kind() == ExprKind::kAdd
                    ? NumStep::Op::kAdd
                    : (expr.kind() == ExprKind::kSub ? NumStep::Op::kSub
                                                     : NumStep::Op::kMul);
      b->steps.push_back(step);
      b->depth -= 1;  // two pops, one push
      break;
    }
    case ExprKind::kDiv:
      return false;  // keeps the interpreter's NULL-on-zero semantics
  }
  if (expr.kind() == ExprKind::kColumn || expr.kind() == ExprKind::kLiteral) {
    b->depth += 1;
    b->max_depth = std::max(b->max_depth, b->depth);
    if (b->max_depth > kMaxStack) return false;
  }
  return true;
}

/// A comparison side usable by the string fast path: a bare string-typed
/// column or a string literal.
bool CompileStr(const Expr& expr, const Query& query, const KernelEnv& env,
                StrOperand* out, bool* is_const) {
  if (expr.kind() == ExprKind::kLiteral) {
    if (!expr.literal().is_string()) return false;
    out->src = StrOperand::Src::kConst;
    out->val = expr.literal().AsString();
    *is_const = true;
    return true;
  }
  if (expr.kind() != ExprKind::kColumn) return false;
  std::optional<ColumnType> type = DeclaredType(expr.column(), query);
  if (!type.has_value() || *type != ColumnType::kString) return false;
  NumStep step;
  if (!ResolveLeaf(expr.column(), env, &step)) return false;
  out->src = step.op == NumStep::Op::kBase ? StrOperand::Src::kBase
                                           : StrOperand::Src::kSlot;
  out->a = step.a;
  *is_const = false;
  return true;
}

bool CompareWithOp(CompareOp op, int c) {
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

}  // namespace

KernelProgram KernelProgram::Compile(const PredSet& preds, const Query& query,
                                     const KernelEnv& env) {
  KernelProgram out;
  std::vector<int> ids = preds.ToVector();
  size_t i = 0;
  for (; i < ids.size(); ++i) {
    if (out.all_false_) break;
    const Predicate& p = query.predicate(ids[i]);

    // String fast path first: bare string columns/literals.
    StrOperand sl, sr;
    bool lc = false, rc = false;
    if (CompileStr(*p.lhs, query, env, &sl, &lc) &&
        CompileStr(*p.rhs, query, env, &sr, &rc)) {
      if (lc && rc) {
        // Both constant: decide now, exactly like PredProgram's folding.
        int c = sl.val.compare(sr.val);
        out.fused_ += 1;
        if (!CompareWithOp(p.op, c < 0 ? -1 : (c > 0 ? 1 : 0))) {
          out.all_false_ = true;
        }
        continue;
      }
      KPred kp;
      kp.kind = PredKind::kStr;
      kp.op = p.op;
      kp.slhs = std::move(sl);
      kp.srhs = std::move(sr);
      out.preds_.push_back(std::move(kp));
      out.fused_ += 1;
      continue;
    }

    NumBuild bl, br;
    if (!CompileNum(*p.lhs, query, env, &bl) ||
        !CompileNum(*p.rhs, query, env, &br)) {
      break;  // first non-fusible conjunct ends the error-free prefix
    }
    KPred kp;
    kp.kind = PredKind::kNum;
    kp.op = p.op;
    kp.lhs.steps = std::move(bl.steps);
    kp.lhs.dbl = bl.dbl.value_or(false);
    kp.lhs.has_load = bl.has_load;
    kp.rhs.steps = std::move(br.steps);
    kp.rhs.dbl = br.dbl.value_or(false);
    kp.rhs.has_load = br.has_load;
    if (!kp.lhs.has_load && !kp.rhs.has_load) {
      // Constant conjunct: decide it through the pred itself (no row data).
      KernelProgram probe;
      probe.preds_.push_back(std::move(kp));
      Tuple none;
      bool mismatch = false;
      out.fused_ += 1;
      if (!probe.EvalRow(none, nullptr, 0, &mismatch, nullptr)) {
        out.all_false_ = true;
      }
      continue;
    }
    out.preds_.push_back(std::move(kp));
    out.fused_ += 1;
  }
  for (; i < ids.size(); ++i) out.remainder_.Insert(ids[i]);
  out.fallback_preds_ = out.remainder_.size();
  return out;
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

namespace {

/// Result of one typed expression: value or NULL; a mismatch aborts the row.
struct NumResult {
  bool null = false;
  int64_t i = 0;
  double d = 0.0;
};

/// Runs a typed postfix program over fixed stacks. A NULL leaf decides the
/// whole expression (add/sub/mul all propagate NULL first, before looking at
/// the other operand, exactly like EvalBinary); a wrong-typed non-NULL leaf
/// flags a mismatch and the caller routes the row to the interpreter.
inline bool EvalNum(const NumStep* steps, size_t n, bool dbl,
                    const Tuple& row, const Tuple* base, int64_t tid,
                    NumResult* out, bool* mismatch) {
  int64_t si[8];
  double sd[8];
  int sp = 0;
  for (size_t k = 0; k < n; ++k) {
    const NumStep& s = steps[k];
    switch (s.op) {
      case NumStep::Op::kSlot:
      case NumStep::Op::kBase: {
        const Tuple& src = s.op == NumStep::Op::kSlot ? row : *base;
        const Datum& v = src[static_cast<size_t>(s.a)];
        if (v.is_null()) {
          out->null = true;
          return true;
        }
        if (dbl) {
          if (!v.is_double()) {
            *mismatch = true;
            return false;
          }
          sd[sp++] = v.AsDouble();
        } else {
          if (!v.is_int()) {
            *mismatch = true;
            return false;
          }
          si[sp++] = v.AsInt();
        }
        break;
      }
      case NumStep::Op::kTid:
        si[sp++] = tid;
        break;
      case NumStep::Op::kConstI:
        si[sp++] = s.ci;
        break;
      case NumStep::Op::kConstD:
        sd[sp++] = s.cd;
        break;
      case NumStep::Op::kAdd:
        sp -= 1;
        if (dbl) {
          sd[sp - 1] = sd[sp - 1] + sd[sp];
        } else {
          si[sp - 1] = si[sp - 1] + si[sp];
        }
        break;
      case NumStep::Op::kSub:
        sp -= 1;
        if (dbl) {
          sd[sp - 1] = sd[sp - 1] - sd[sp];
        } else {
          si[sp - 1] = si[sp - 1] - si[sp];
        }
        break;
      case NumStep::Op::kMul:
        sp -= 1;
        if (dbl) {
          sd[sp - 1] = sd[sp - 1] * sd[sp];
        } else {
          si[sp - 1] = si[sp - 1] * si[sp];
        }
        break;
    }
  }
  out->null = false;
  if (dbl) {
    out->d = sd[0];
  } else {
    out->i = si[0];
  }
  return true;
}

/// Three-way compare matching Datum::Compare for same/cross numeric kinds:
/// int/int compares at full 64-bit precision, anything else in double.
inline int CompareNum(const NumResult& l, bool ldbl, const NumResult& r,
                      bool rdbl) {
  if (!ldbl && !rdbl) {
    return l.i < r.i ? -1 : (l.i > r.i ? 1 : 0);
  }
  double a = ldbl ? l.d : static_cast<double>(l.i);
  double b = rdbl ? r.d : static_cast<double>(r.i);
  return a < b ? -1 : (a > b ? 1 : 0);
}

/// Lazily sizes the adaptive state and periodically re-sorts the evaluation
/// order by observed pass rate (most selective first). Only the fused,
/// error-free conjuncts ever reorder, so results cannot change.
void TickState(KernelState* state, size_t n) {
  if (state == nullptr) return;
  if (state->order.size() != n) {
    state->order.resize(n);
    for (size_t k = 0; k < n; ++k) state->order[k] = static_cast<int32_t>(k);
    state->seen.assign(n, 0);
    state->passed.assign(n, 0);
    state->calls = 0;
  }
  state->calls += 1;
  if (n > 1 && (state->calls & 63) == 0) {
    auto pass_rate = [state](int32_t p) {
      size_t u = static_cast<size_t>(p);
      return state->seen[u] > 0 ? static_cast<double>(state->passed[u]) /
                                      static_cast<double>(state->seen[u])
                                : 1.0;
    };
    std::stable_sort(state->order.begin(), state->order.end(),
                     [&pass_rate](int32_t a, int32_t b) {
                       return pass_rate(a) < pass_rate(b);
                     });
  }
}

}  // namespace

bool KernelProgram::EvalRow(const Tuple& row, const Tuple* base, int64_t tid,
                            bool* mismatch, KernelState* state) const {
  size_t n = preds_.size();
  for (size_t k = 0; k < n; ++k) {
    size_t pi = state != nullptr ? static_cast<size_t>(state->order[k]) : k;
    const KPred& p = preds_[pi];
    bool pass;
    if (p.kind == PredKind::kStr) {
      const std::string* a = nullptr;
      const std::string* b = nullptr;
      bool null = false;
      for (int side = 0; side < 2 && !null; ++side) {
        const StrOperand& o = side == 0 ? p.slhs : p.srhs;
        const std::string*& slot = side == 0 ? a : b;
        if (o.src == StrOperand::Src::kConst) {
          slot = &o.val;
          continue;
        }
        const Tuple& src = o.src == StrOperand::Src::kSlot ? row : *base;
        const Datum& v = src[static_cast<size_t>(o.a)];
        if (v.is_null()) {
          null = true;
          break;
        }
        if (!v.is_string()) {
          *mismatch = true;
          return false;
        }
        slot = &v.AsString();
      }
      if (null) {
        pass = false;
      } else {
        int c = a->compare(*b);
        pass = CompareWithOp(p.op, c < 0 ? -1 : (c > 0 ? 1 : 0));
      }
    } else {
      NumResult l, r;
      if (!EvalNum(p.lhs.steps.data(), p.lhs.steps.size(), p.lhs.dbl, row,
                   base, tid, &l, mismatch) ||
          !EvalNum(p.rhs.steps.data(), p.rhs.steps.size(), p.rhs.dbl, row,
                   base, tid, &r, mismatch)) {
        return false;
      }
      pass = !l.null && !r.null &&
             CompareWithOp(p.op, CompareNum(l, p.lhs.dbl, r, p.rhs.dbl));
    }
    if (state != nullptr) {
      state->seen[pi] += 1;
      if (pass) state->passed[pi] += 1;
    }
    if (!pass) return false;
  }
  return true;
}

namespace {

/// Each Tuple owns a separate heap buffer of 40-byte Datums, so a cold scan
/// pays a cache miss per row before the kernel reads a single operand.
/// Prefetching a few rows ahead overlaps those misses with evaluation; two
/// lines cover the columns of any small-arity table.
inline void PrefetchRow(const Tuple& row) {
#if defined(__GNUC__) || defined(__clang__)
  const char* p = reinterpret_cast<const char*>(row.data());
  __builtin_prefetch(p);
  __builtin_prefetch(p + 128);
#else
  (void)row;
#endif
}

constexpr int64_t kPrefetchDistance = 12;

}  // namespace

void KernelProgram::EvalScan(const StoredTable& table, int64_t lo, int64_t hi,
                             std::vector<int64_t>* out,
                             std::vector<int64_t>* mismatch,
                             KernelState* state) const {
  if (all_false_) return;
  TickState(state, preds_.size());
  const std::vector<Tuple>& rows = table.rows();
  for (int64_t tid = lo; tid < hi; ++tid) {
    if (tid + kPrefetchDistance < hi) {
      PrefetchRow(rows[static_cast<size_t>(tid + kPrefetchDistance)]);
    }
    const Tuple& row = rows[static_cast<size_t>(tid)];
    bool mis = false;
    if (EvalRow(row, &row, tid, &mis, state)) {
      out->push_back(tid);
    } else if (mis) {
      mismatch->push_back(tid);
    }
  }
}

void KernelProgram::EvalRows(const std::vector<Tuple>& rows, size_t lo,
                             size_t hi, std::vector<int32_t>* out,
                             std::vector<int32_t>* mismatch,
                             KernelState* state) const {
  if (all_false_) return;
  TickState(state, preds_.size());
  for (size_t i = lo; i < hi; ++i) {
    if (i + kPrefetchDistance < hi) {
      PrefetchRow(rows[i + static_cast<size_t>(kPrefetchDistance)]);
    }
    bool mis = false;
    if (EvalRow(rows[i], nullptr, 0, &mis, state)) {
      out->push_back(static_cast<int32_t>(i));
    } else if (mis) {
      mismatch->push_back(static_cast<int32_t>(i));
    }
  }
}

void KernelProgram::EvalBatch(const RowBatch& in, std::vector<int32_t>* out,
                              std::vector<int32_t>* mismatch,
                              KernelState* state) const {
  if (all_false_) return;
  TickState(state, preds_.size());
  size_t n = in.live();
  for (size_t k = 0; k < n; ++k) {
    int32_t idx = in.sel.active ? in.sel.idx[k] : static_cast<int32_t>(k);
    bool mis = false;
    if (EvalRow(in.rows[static_cast<size_t>(idx)], nullptr, 0, &mis, state)) {
      out->push_back(idx);
    } else if (mis) {
      mismatch->push_back(idx);
    }
  }
}

// ---------------------------------------------------------------------------
// Join-key kernel
// ---------------------------------------------------------------------------

KeyKernel KeyKernel::Compile(const Expr& expr, const Query& query,
                             const KernelEnv& env) {
  KeyKernel out;
  NumBuild b;
  if (!CompileNum(expr, query, env, &b)) return out;
  if (b.dbl.value_or(false)) return out;  // int64 keys only
  out.steps_ = std::move(b.steps);
  out.usable_ = true;
  return out;
}

bool KeyKernel::EvalInt(const Tuple& row, int64_t* out, bool* is_null) const {
  NumResult r;
  bool mismatch = false;
  if (!EvalNum(steps_.data(), steps_.size(), /*dbl=*/false, row, nullptr, 0,
               &r, &mismatch)) {
    return false;
  }
  *is_null = r.null;
  *out = r.i;
  return true;
}

uint64_t HashInt64JoinKey(int64_t v) {
  return HashCombine64(0x9e3779b97f4a7c15ULL, DatumHashInt64(v));
}

uint64_t HashNullJoinKey() {
  return HashCombine64(0x9e3779b97f4a7c15ULL, kDatumNullHash64);
}

}  // namespace starburst
