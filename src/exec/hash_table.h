#ifndef STARBURST_EXEC_HASH_TABLE_H_
#define STARBURST_EXEC_HASH_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace starburst {

/// Build side of the vectorized hash join: an open-addressing (linear probe)
/// table from composite Datum keys to the rows that carry them. Keyed on the
/// 64-bit Datum::Hash64 with chained exact-key verification via Compare(),
/// so hash collisions cost probes, never correctness. Rows within a key
/// group are chained in insertion order — the join emits matches in build
/// order, exactly like the legacy std::map-of-row-lists did.
///
/// With key_width 0-width rows it also serves as a plain key set (FILTERBY).
class JoinHashTable {
 public:
  explicit JoinHashTable(int key_width) : key_width_(key_width) {}

  /// Group/entry indices are int32_t and the slot array doubles past the
  /// group count, so the table caps out below 2^31 distinct keys and 2^31
  /// rows. Reserve/Insert report the cap as kResourceExhausted (for the
  /// governor to surface) instead of silently wrapping into UB.
  static constexpr size_t kMaxGroups = static_cast<size_t>(INT32_MAX) / 2;
  static constexpr size_t kMaxEntries = static_cast<size_t>(INT32_MAX);

  /// Pre-sizes the slot array for ~n distinct keys. Fails with
  /// kResourceExhausted when n exceeds kMaxGroups (the old code's
  /// NextPow2(n * 2 + 16) could wrap for huge n).
  Status Reserve(size_t n);

  /// Hash of a composite key (order-dependent combine of Hash64 per datum).
  static uint64_t HashKey(const Datum* key, int width);

  /// Adds `row` under `key` (hash must be HashKey(key, key_width)). Fails
  /// with kResourceExhausted at the int32_t group/entry index caps.
  Status Insert(const Datum* key, uint64_t hash, uint32_t row);

  /// Group id for `key`, or -1 if absent.
  int32_t FindGroup(const Datum* key, uint64_t hash) const;

  /// Typed probe for width-1 tables keyed by an int64: the slot walk of
  /// FindGroup with the exact-key check inlined to one integer compare.
  /// Falls back to the generic Compare per slot only when the stored key is
  /// not an int (a stored double can still equal an int key — Hash64 hashes
  /// them identically, and Compare decides).
  int32_t FindGroupInt(int64_t key, uint64_t hash) const;

  /// Hints the cache that FindGroup for `hash` is imminent: touches the
  /// slot line the probe will start at. Linear probing keeps subsequent
  /// slots on the same or the next line, so one hint covers most probes.
  void Prefetch(uint64_t hash) const {
#if defined(__GNUC__) || defined(__clang__)
    if (!slots_.empty()) __builtin_prefetch(&slots_[hash & slot_mask_]);
#else
    (void)hash;
#endif
  }

  /// Insertion-order chain walk: first entry of a group / next entry / the
  /// row an entry holds. `NextEntry` returns -1 at the end of the chain.
  int32_t GroupHead(int32_t group) const { return group_head_[static_cast<size_t>(group)]; }
  int32_t NextEntry(int32_t entry) const { return entry_next_[static_cast<size_t>(entry)]; }
  uint32_t EntryRow(int32_t entry) const { return entry_row_[static_cast<size_t>(entry)]; }

  size_t num_groups() const { return group_head_.size(); }
  size_t num_rows() const { return entry_row_.size(); }
  size_t num_slots() const { return slots_.size(); }

  /// Accounting-granularity size of the table: key Datum payloads plus the
  /// container element footprints, deterministic from the inserted data so
  /// the profiler's charge can be recomputed independently in tests.
  int64_t ApproxBytes() const;

 private:
  void Rehash(size_t slot_count);  // power of two
  bool KeysEqual(const Datum* a, const Datum* b) const;

  int key_width_;
  // Per group: flat key storage (group g at keys_[g * key_width_]), its
  // hash, and the head/tail of its insertion-order entry chain.
  std::vector<Datum> keys_;
  std::vector<uint64_t> group_hash_;
  std::vector<int32_t> group_head_;
  std::vector<int32_t> group_tail_;
  // Per entry (one per inserted row).
  std::vector<uint32_t> entry_row_;
  std::vector<int32_t> entry_next_;
  // Open-addressing slot array over group ids (-1 = empty).
  std::vector<int32_t> slots_;
  uint64_t slot_mask_ = 0;
};

}  // namespace starburst

#endif  // STARBURST_EXEC_HASH_TABLE_H_
