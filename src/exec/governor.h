#ifndef STARBURST_EXEC_GOVERNOR_H_
#define STARBURST_EXEC_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "optimizer/governor.h"  // for the shared Deadline helper

namespace starburst {

class MemoryTracker;

/// The executor's resource budgets; 0 means unlimited for each.
struct ExecLimits {
  int64_t deadline_ms = 0;  ///< wall-clock budget for one ExecutePlan
  int64_t mem_limit = 0;    ///< tracked-byte threshold that triggers spilling
};

/// A cooperative cancellation token: the client sets it (from any thread)
/// and the executor observes it at its next check point. shared_ptr so the
/// client and the in-flight query can each outlive the other.
using CancelToken = std::shared_ptr<std::atomic<bool>>;

/// STARBURST_EXEC_DEADLINE_MS / STARBURST_EXEC_MEM_LIMIT env defaults,
/// applied when ExecOptions leaves the corresponding field at 0. Malformed
/// or negative values read as 0 (unlimited), matching the optimizer's
/// STARBURST_MAX_PLANS/STARBURST_OPT_DEADLINE_MS parsing.
int64_t DefaultExecDeadlineMs();
int64_t DefaultExecMemLimit();

/// Cooperative resource governor for one plan execution — the runtime
/// sibling of the optimizer's ResourceGovernor. Iterators call Check() once
/// per batch at their Next() boundary, the legacy interpreter once per
/// operator dispatch, and the exchange operator once per morsel on the
/// coordinator; the first trip latches a descriptive Status (first reason
/// wins, like ResourceGovernor::Trip) and every later Check on any thread
/// returns it immediately.
///
/// Two budgets HARD-trip the query:
///   - the wall-clock deadline  -> kResourceExhausted
///   - the client cancel token  -> kCancelled
/// The memory budget never hard-trips. It is a SPILL THRESHOLD: operators
/// that can spill (SORT, JOIN(HA)) consult ShouldSpill() and move state to
/// temp files, so a query under a tight budget still completes with
/// bit-identical results — it just runs from disk. Operators that cannot
/// spill simply stay over budget; the tracker's peak records the truth.
///
/// Deadline overshoot follows the Deadline helper's contract: the worst
/// case past the deadline is one inter-check unit of work (one batch, one
/// morsel, or one legacy operator dispatch) plus scheduler latency.
class ExecGovernor {
 public:
  ExecGovernor(ExecLimits limits, CancelToken cancel)
      : limits_(limits),
        deadline_(limits.deadline_ms),
        cancel_(std::move(cancel)) {}

  /// False when no deadline, no memory budget, and no cancel token — the
  /// executor skips attaching entirely and pays nothing.
  bool enabled() const {
    return deadline_.enabled() || limits_.mem_limit > 0 || cancel_ != nullptr;
  }

  /// The cooperative check: OK while within budget, the latched trip Status
  /// afterwards. Thread-safe and cheap — atomic loads plus one steady_clock
  /// read when a deadline is set. Cancellation is checked before the
  /// deadline so an explicit client stop is always reported as kCancelled.
  Status Check();

  /// True once cancelled or past deadline (the workers' shared stop flag).
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  int64_t mem_limit() const { return limits_.mem_limit; }
  const ExecLimits& limits() const { return limits_; }

  /// Attaches the run's memory tracker. Called by the Executor before any
  /// iterator opens (single-threaded setup), cleared after the run; plain
  /// member access is safe because ShouldSpill() is coordinator-only.
  void set_tracker(const MemoryTracker* tracker) { tracker_ = tracker; }

  /// True when a memory budget is set and the tracked bytes have reached
  /// it — the signal for SORT/JOIN(HA) to move state to temp files.
  /// Coordinator-only (called between batches, never from morsel workers),
  /// so spill decisions stay deterministic for a given charge sequence.
  bool ShouldSpill() const;

 private:
  /// Latches the first trip Status and raises the stop flag.
  void Trip(Status status);

  ExecLimits limits_;
  Deadline deadline_;
  CancelToken cancel_;
  const MemoryTracker* tracker_ = nullptr;
  std::atomic<bool> stopped_{false};
  mutable std::mutex mu_;
  Status trip_status_;
};

}  // namespace starburst

#endif  // STARBURST_EXEC_GOVERNOR_H_
