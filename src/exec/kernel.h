#ifndef STARBURST_EXEC_KERNEL_H_
#define STARBURST_EXEC_KERNEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/batch.h"
#include "exec/executor.h"
#include "query/predicate.h"
#include "storage/table.h"

namespace starburst {

/// Compilation scope for typed kernels. Mirrors CompileEnv minus the NL
/// binding frames: a column that would resolve to a frame (or not at all)
/// makes its predicate fall back to the interpreter. `scan_mode` compiles
/// every leaf against the BASE row of `base_quantifier` (heap scans evaluate
/// predicates over the stored table's contiguous rows before any output
/// tuple is constructed); otherwise leaves resolve to stream slots only.
struct KernelEnv {
  const Schema* schema = nullptr;
  const Query* query = nullptr;
  const Database* db = nullptr;
  int base_quantifier = -1;
  bool scan_mode = false;
};

/// Per-consumer adaptive state: running pass counts drive the short-circuit
/// order of the fused conjuncts (most selective first). Owned by the
/// iterator, never by the shared program, so morsel workers can evaluate the
/// same KernelProgram concurrently by passing nullptr (fixed pred-id order).
struct KernelState {
  std::vector<int32_t> order;
  std::vector<int64_t> seen;
  std::vector<int64_t> passed;
  int64_t calls = 0;
};

/// Implementation detail of the typed kernels, exposed only so the free
/// compile/eval helpers in kernel.cc can share the step layout with both
/// KernelProgram and KeyKernel.
namespace kernel_detail {

struct NumStep {
  enum class Op : uint8_t { kSlot, kBase, kTid, kConstI, kConstD, kAdd, kSub, kMul };
  Op op = Op::kConstI;
  int32_t a = 0;    // slot / base column index
  int64_t ci = 0;   // kConstI payload
  double cd = 0.0;  // kConstD payload
};

/// Typed postfix arithmetic over one column type: all loads are int64 or all
/// are double (`dbl`). NULL loads decide the whole expression instead of
/// branching the program — add/sub/mul propagate NULL exactly like
/// EvalBinary.
struct NumExpr {
  std::vector<NumStep> steps;
  bool dbl = false;
  bool has_load = false;
};

struct StrOperand {
  enum class Src : uint8_t { kSlot, kBase, kConst };
  Src src = Src::kConst;
  int32_t a = 0;
  std::string val;
};

enum class PredKind : uint8_t { kNum, kStr };

struct KPred {
  PredKind kind = PredKind::kNum;
  CompareOp op = CompareOp::kEq;
  NumExpr lhs, rhs;
  StrOperand slhs, srhs;
};

}  // namespace kernel_detail

/// A conjunction prefix lowered to monomorphic typed loops.
///
/// Lowering walks the conjuncts in ascending predicate-id order and fuses
/// the maximal ERROR-FREE prefix: each fused predicate compares two
/// expressions whose leaves all resolve statically to one column type
/// (int64/double column spans, plus a string fast path for bare
/// column/constant comparisons). Division, frame references, unresolvable
/// columns, NULL literals, and mixed-type operands end the prefix; the
/// remaining conjuncts — exactly the ones that can raise a Status — stay
/// with the generic interpreter and run row-at-a-time over the survivors,
/// still in predicate-id order. Because the fused prefix cannot error and
/// conjunction is commutative for the selection it produces, reordering the
/// fused conjuncts by estimated selectivity is observationally safe; error
/// ordering stays bit-identical to the row-major legacy interpreter.
///
/// NULL semantics match EvalCompare/EvalBinary exactly: any NULL leaf makes
/// an arithmetic result NULL, and a NULL on either side of a comparison
/// fails the row. A non-NULL datum whose runtime type contradicts the
/// catalog's declared column type routes that row to the caller's mismatch
/// list; the caller re-evaluates it with the full interpreter program, so a
/// corrupt or exotic row can never change results.
class KernelProgram {
 public:
  KernelProgram() = default;

  static KernelProgram Compile(const PredSet& preds, const Query& query,
                               const KernelEnv& env);

  /// Number of conjuncts fused into the typed prefix (conjuncts decided at
  /// compile time count as fused).
  int fused() const { return fused_; }
  /// Conjuncts left to the interpreter, in predicate-id order.
  const PredSet& remainder() const { return remainder_; }
  int fallback_preds() const { return fallback_preds_; }
  bool usable() const { return fused_ > 0; }

  /// Compile-time decision that every row fails (a const-false conjunct):
  /// Eval* then emits no survivors and no mismatches, which matches the
  /// interpreter's in-order early return (nothing before it can error).
  bool all_false() const { return all_false_; }

  /// Scan mode: evaluates base rows [lo, hi) of `table`; surviving TIDs are
  /// appended to `out` ascending, type-mismatch rows to `mismatch`.
  void EvalScan(const StoredTable& table, int64_t lo, int64_t hi,
                std::vector<int64_t>* out, std::vector<int64_t>* mismatch,
                KernelState* state) const;

  /// Slot mode over a dense tuple vector: rows [lo, hi) of `rows`.
  void EvalRows(const std::vector<Tuple>& rows, size_t lo, size_t hi,
                std::vector<int32_t>* out, std::vector<int32_t>* mismatch,
                KernelState* state) const;

  /// Slot mode over the live rows of a batch; emitted indices point into
  /// `in.rows` (ascending), so they can become the batch's next selection.
  void EvalBatch(const RowBatch& in, std::vector<int32_t>* out,
                 std::vector<int32_t>* mismatch, KernelState* state) const;

 private:
  /// One row through the fused conjunction in `state`'s adaptive order (or
  /// pred order when state is null). Sets *mismatch and returns false when a
  /// datum's runtime type contradicts the declared column type.
  bool EvalRow(const Tuple& row, const Tuple* base, int64_t tid,
               bool* mismatch, KernelState* state) const;

  std::vector<kernel_detail::KPred> preds_;
  int fused_ = 0;
  int fallback_preds_ = 0;
  bool all_false_ = false;
  PredSet remainder_;
};

/// A single join-key expression lowered to an int64 loop (the dominant key
/// shape). Used by the hash join to evaluate build/probe keys without Datum
/// stack traffic; rows whose stored values contradict the declared types
/// fall back to the generic ExprProgram per row.
class KeyKernel {
 public:
  KeyKernel() = default;

  static KeyKernel Compile(const Expr& expr, const Query& query,
                           const KernelEnv& env);

  bool usable() const { return usable_; }

  /// Returns false on a type-mismatch row (caller falls back); otherwise
  /// *is_null / *out describe the key value.
  bool EvalInt(const Tuple& row, int64_t* out, bool* is_null) const;

 private:
  std::vector<kernel_detail::NumStep> steps_;
  bool usable_ = false;
};

/// Hash of a width-1 int64 join key, bit-identical to
/// JoinHashTable::HashKey(&Datum(v), 1).
uint64_t HashInt64JoinKey(int64_t v);

/// Same for a NULL key: JoinHashTable::HashKey of one NULL datum.
uint64_t HashNullJoinKey();

}  // namespace starburst

#endif  // STARBURST_EXEC_KERNEL_H_
