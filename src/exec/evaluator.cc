#include "exec/evaluator.h"

#include <algorithm>

#include "common/strings.h"
#include "obs/workload.h"

namespace starburst {

namespace {
Result<int> SlotOf(const Schema& schema, ColumnRef ref) {
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i] == ref) return static_cast<int>(i);
  }
  return Status::NotFound("column missing from result schema");
}

bool TupleLess(const Tuple& a, const Tuple& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}
}  // namespace

Result<ResultSet> ExecutePlan(const Database& db, const Query& query,
                              const PlanPtr& plan,
                              const ExecutorRegistry* registry) {
  Executor exec(db, query, registry);
  return exec.Run(plan);
}

Result<ResultSet> ExecutePlan(const Database& db, const Query& query,
                              const PlanPtr& plan,
                              const ExecOptions& options) {
  Executor exec(db, query, options.registry);
  if (options.stats != nullptr) exec.set_run_stats(options.stats);
  if (options.metrics != nullptr) exec.set_metrics(options.metrics);
  if (options.faults != nullptr) exec.set_faults(options.faults);
  if (options.vectorized >= 0) exec.set_vectorized(options.vectorized != 0);
  if (options.batch_size > 0) exec.set_batch_size(options.batch_size);
  if (options.exec_threads > 0) exec.set_exec_threads(options.exec_threads);
  if (options.typed_kernels >= 0) {
    exec.set_typed_kernels(options.typed_kernels != 0);
  }
  // Profiling: an explicit sink (or workload repository) turns it on; else
  // the int knob decides, defaulting from STARBURST_PROFILE. The workload
  // repository needs a profile to read actuals from, so it implies a local
  // one when the caller supplied none.
  bool profile_on = options.profile_sink != nullptr ||
                    options.workload != nullptr ||
                    (options.profile < 0 ? DefaultProfileEnabled()
                                         : options.profile != 0);
  ExecProfile local_profile;
  ExecProfile* profile = nullptr;
  if (profile_on) {
    profile = options.profile_sink != nullptr ? options.profile_sink
                                              : &local_profile;
    // One profile = one execution: a reused sink would otherwise keep
    // entries keyed by nodes of plans that no longer exist.
    profile->Clear();
    exec.set_profile(profile);
  }
  // Execution governance: explicit knobs win, 0 inherits the environment,
  // negative forces the knob off. The governor lives on this stack frame for
  // exactly one run; a disabled governor is never attached, so ungoverned
  // runs pay nothing.
  ExecLimits limits;
  limits.deadline_ms = options.exec_deadline_ms > 0
                           ? options.exec_deadline_ms
                           : options.exec_deadline_ms == 0
                                 ? DefaultExecDeadlineMs()
                                 : 0;
  limits.mem_limit = options.exec_mem_limit > 0
                         ? options.exec_mem_limit
                         : options.exec_mem_limit == 0 ? DefaultExecMemLimit()
                                                       : 0;
  ExecGovernor governor(limits, options.cancel);
  if (governor.enabled()) exec.set_governor(&governor);
  auto result = exec.Run(plan);
  if (result.ok() && options.workload != nullptr && profile != nullptr) {
    options.workload->Observe(query, *plan, *profile);
  }
  return result;
}

Result<ResultSet> ExecutePlanAnalyzed(const Database& db, const Query& query,
                                      const PlanPtr& plan,
                                      PlanRunStats* stats,
                                      const ExecutorRegistry* registry) {
  Executor exec(db, query, registry);
  exec.set_run_stats(stats);
  return exec.Run(plan);
}

Result<ResultSet> ExecutePlanAnalyzed(const Database& db, const Query& query,
                                      const PlanPtr& plan,
                                      PlanRunStats* stats,
                                      const ExecOptions& options) {
  ExecOptions opts = options;
  opts.stats = stats;
  return ExecutePlan(db, query, plan, opts);
}

Result<ResultSet> ProjectResult(const ResultSet& rs,
                                const std::vector<ColumnRef>& cols) {
  std::vector<int> slots;
  slots.reserve(cols.size());
  for (const ColumnRef& c : cols) {
    auto s = SlotOf(rs.schema, c);
    if (!s.ok()) return s.status();
    slots.push_back(s.value());
  }
  ResultSet out;
  out.schema = cols;
  out.rows.reserve(rs.rows.size());
  for (const Tuple& t : rs.rows) {
    Tuple p;
    p.reserve(slots.size());
    for (int s : slots) p.push_back(t[static_cast<size_t>(s)]);
    out.rows.push_back(std::move(p));
  }
  return out;
}

std::vector<Tuple> CanonicalRows(std::vector<Tuple> rows) {
  std::sort(rows.begin(), rows.end(), TupleLess);
  return rows;
}

Result<bool> SameResult(const ResultSet& a, const ResultSet& b,
                        const std::vector<ColumnRef>& cols) {
  auto pa = ProjectResult(a, cols);
  if (!pa.ok()) return pa.status();
  auto pb = ProjectResult(b, cols);
  if (!pb.ok()) return pb.status();
  std::vector<Tuple> ra = CanonicalRows(std::move(pa).value().rows);
  std::vector<Tuple> rb = CanonicalRows(std::move(pb).value().rows);
  if (ra.size() != rb.size()) return false;
  for (size_t i = 0; i < ra.size(); ++i) {
    if (ra[i].size() != rb[i].size()) return false;
    for (size_t j = 0; j < ra[i].size(); ++j) {
      if (ra[i][j].Compare(rb[i][j]) != 0) return false;
    }
  }
  return true;
}

Result<bool> IsSorted(const ResultSet& rs, const SortOrder& order) {
  std::vector<int> slots;
  for (const ColumnRef& c : order) {
    auto s = SlotOf(rs.schema, c);
    if (!s.ok()) return s.status();
    slots.push_back(s.value());
  }
  for (size_t i = 1; i < rs.rows.size(); ++i) {
    for (int s : slots) {
      int c = rs.rows[i - 1][static_cast<size_t>(s)].Compare(
          rs.rows[i][static_cast<size_t>(s)]);
      if (c < 0) break;
      if (c > 0) return false;
    }
  }
  return true;
}

std::string FormatResult(const ResultSet& rs, const Query& query,
                         size_t max_rows) {
  std::string out = StrJoinMapped(rs.schema, " | ", [&](ColumnRef c) {
    return query.ColumnName(c);
  });
  out += "\n";
  size_t shown = 0;
  for (const Tuple& t : rs.rows) {
    if (shown++ >= max_rows) {
      out += "... (" + std::to_string(rs.rows.size()) + " rows total)\n";
      break;
    }
    out += StrJoinMapped(t, " | ",
                         [](const Datum& d) { return d.ToString(); });
    out += "\n";
  }
  return out;
}

}  // namespace starburst
