#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "common/fault_injector.h"
#include "exec/batch.h"
#include "exec/governor.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "storage/index.h"

namespace starburst {

Executor::Executor(const Database& db, const Query& query,
                   const ExecutorRegistry* registry)
    : db_(&db),
      query_(&query),
      registry_(registry),
      faults_(FaultInjector::Global()),
      vectorized_(DefaultVectorized()),
      batch_size_(DefaultBatchSize()),
      exec_threads_(DefaultExecThreads()),
      typed_kernels_(DefaultTypedKernels()) {}

// ---------------------------------------------------------------------------
// ExecutorRegistry
// ---------------------------------------------------------------------------

Status ExecutorRegistry::Register(const std::string& op_name, ExecFn exec_fn,
                                  SchemaFn schema_fn) {
  if (!exec_fn) {
    return Status::InvalidArgument("executor for '" + op_name +
                                   "' must be callable");
  }
  if (fns_.count(op_name)) {
    return Status::AlreadyExists("executor for '" + op_name +
                                 "' already registered");
  }
  fns_[op_name] = {std::move(exec_fn), std::move(schema_fn)};
  return Status::OK();
}

const std::pair<ExecFn, SchemaFn>* ExecutorRegistry::Find(
    const std::string& op_name) const {
  auto it = fns_.find(op_name);
  return it == fns_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// ExecContext
// ---------------------------------------------------------------------------

const Query& ExecContext::query() const { return *executor_->query_; }
const Database& ExecContext::database() const { return *executor_->db_; }

Result<std::vector<Tuple>> ExecContext::EvalInput(int i) {
  if (i < 0 || i >= static_cast<int>(node_->inputs.size())) {
    return Status::InvalidArgument("no input " + std::to_string(i));
  }
  auto rows = executor_->Eval(*node_->inputs[static_cast<size_t>(i)]);
  if (!rows.ok()) return rows.status();
  return *rows.value();
}

Result<Schema> ExecContext::InputSchema(int i) {
  if (i < 0 || i >= static_cast<int>(node_->inputs.size())) {
    return Status::InvalidArgument("no input " + std::to_string(i));
  }
  return executor_->SchemaOf(*node_->inputs[static_cast<size_t>(i)]);
}

Result<bool> ExecContext::EvalPredicates(PredSet preds, const Schema& schema,
                                         const Tuple& tuple) {
  return executor_->EvalPredSet(preds, schema, tuple);
}

// ---------------------------------------------------------------------------
// Schema derivation
// ---------------------------------------------------------------------------

namespace {

Result<int> SlotOf(const Schema& schema, ColumnRef ref) {
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i] == ref) return static_cast<int>(i);
  }
  return Status::NotFound("column not in stream schema");
}

}  // namespace

Result<Schema> Executor::SchemaOf(const PlanOp& node) {
  auto it = schema_cache_.find(&node);
  if (it != schema_cache_.end()) return it->second;

  Schema out;
  const std::string& name = node.name();
  if (name == op::kAccess) {
    if (node.flavor == flavor::kTemp || node.flavor == flavor::kTempIndex) {
      auto in = SchemaOf(*node.inputs[0]);
      if (!in.ok()) return in;
      out = std::move(in).value();
    } else {
      out = node.args.GetColumns(arg::kCols);
    }
  } else if (name == op::kGet) {
    auto in = SchemaOf(*node.inputs[0]);
    if (!in.ok()) return in;
    out = std::move(in).value();
    for (const ColumnRef& c : node.args.GetColumns(arg::kCols)) {
      if (!SlotOf(out, c).ok()) out.push_back(c);
    }
  } else if (name == op::kJoin) {
    auto a = SchemaOf(*node.inputs[0]);
    if (!a.ok()) return a;
    auto b = SchemaOf(*node.inputs[1]);
    if (!b.ok()) return b;
    out = std::move(a).value();
    const Schema& rhs = b.value();
    out.insert(out.end(), rhs.begin(), rhs.end());
  } else if (name == op::kSort || name == op::kShip || name == op::kStore ||
             name == op::kFilter) {
    auto in = SchemaOf(*node.inputs[0]);
    if (!in.ok()) return in;
    out = std::move(in).value();
  } else if (name == op::kTidAnd) {
    out = Schema{ColumnRef{node.props.tables().First(),
                           ColumnRef::kTidColumn}};
  } else if (name == op::kProject) {
    out = node.args.GetColumns(arg::kCols);
  } else if (name == op::kFilterBy) {
    auto in = SchemaOf(*node.inputs[0]);  // probe stream layout
    if (!in.ok()) return in;
    out = std::move(in).value();
  } else {
    // Custom operator: user-provided schema function, or a sensible default
    // (concatenate inputs).
    const auto* entry =
        registry_ != nullptr ? registry_->Find(name) : nullptr;
    if (entry != nullptr && entry->second) {
      std::vector<Schema> ins;
      for (const PlanPtr& in : node.inputs) {
        auto s = SchemaOf(*in);
        if (!s.ok()) return s;
        ins.push_back(std::move(s).value());
      }
      auto s = entry->second(node, ins);
      if (!s.ok()) return s;
      out = std::move(s).value();
    } else {
      for (const PlanPtr& in : node.inputs) {
        auto s = SchemaOf(*in);
        if (!s.ok()) return s;
        const Schema& v = s.value();
        out.insert(out.end(), v.begin(), v.end());
      }
    }
  }
  schema_cache_[&node] = out;
  return out;
}

// ---------------------------------------------------------------------------
// Expression / predicate evaluation
// ---------------------------------------------------------------------------

Result<Datum> Executor::Resolve(ColumnRef ref, const Schema& schema,
                                const Tuple& tuple) const {
  auto slot = SlotOf(schema, ref);
  if (slot.ok()) return tuple[static_cast<size_t>(slot.value())];
  // Enclosing nested-loop bindings, innermost first (sideways information
  // passing, paper §4.4).
  for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
    auto s = SlotOf(*it->schema, ref);
    if (s.ok()) return (*it->tuple)[static_cast<size_t>(s.value())];
  }
  // Base rows visible during ACCESS/GET of the referenced quantifier.
  for (auto it = base_rows_.rbegin(); it != base_rows_.rend(); ++it) {
    if (it->quantifier == ref.quantifier && !ref.is_tid()) {
      return (*it->row)[static_cast<size_t>(ref.column)];
    }
  }
  return Status::Internal("unresolvable column q" +
                          std::to_string(ref.quantifier) + ".c" +
                          std::to_string(ref.column) + " at run time");
}

Result<Datum> Executor::EvalExpr(const Expr& expr, const Schema& schema,
                                 const Tuple& tuple) const {
  switch (expr.kind()) {
    case ExprKind::kColumn:
      return Resolve(expr.column(), schema, tuple);
    case ExprKind::kLiteral:
      return expr.literal();
    default: {
      auto lhs = EvalExpr(*expr.lhs(), schema, tuple);
      if (!lhs.ok()) return lhs;
      auto rhs = EvalExpr(*expr.rhs(), schema, tuple);
      if (!rhs.ok()) return rhs;
      return EvalBinary(expr.kind(), lhs.value(), rhs.value());
    }
  }
}

Result<bool> Executor::EvalPred(const Predicate& pred, const Schema& schema,
                                const Tuple& tuple) const {
  auto lhs = EvalExpr(*pred.lhs, schema, tuple);
  if (!lhs.ok()) return lhs.status();
  auto rhs = EvalExpr(*pred.rhs, schema, tuple);
  if (!rhs.ok()) return rhs.status();
  return EvalCompare(pred.op, lhs.value(), rhs.value());
}

Result<bool> Executor::EvalPredSet(PredSet preds, const Schema& schema,
                                   const Tuple& tuple) const {
  for (int id : preds.ToVector()) {
    auto ok = EvalPred(query_->predicate(id), schema, tuple);
    if (!ok.ok()) return ok;
    if (!ok.value()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Correlation analysis
// ---------------------------------------------------------------------------

bool Executor::IsCorrelated(const PlanOp& node) const {
  QuantifierSet own = node.props.tables();
  auto preds_escape = [&](PredSet preds) {
    for (int id : preds.ToVector()) {
      if (!own.ContainsAll(query_->predicate(id).quantifiers)) return true;
    }
    return false;
  };
  for (const char* name :
       {arg::kPreds, arg::kJoinPreds, arg::kResidualPreds}) {
    if (node.args.Has(name) && preds_escape(node.args.GetPreds(name))) {
      return true;
    }
  }
  for (const PlanPtr& in : node.inputs) {
    if (IsCorrelated(*in)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

void Executor::PublishMetrics(const PlanRunStats& stats,
                              bool vectorized) const {
  if (metrics_ == nullptr) return;
  metrics_->AddCounter(vectorized ? "exec.vectorized_runs"
                                  : "exec.legacy_runs", 1);
  metrics_->SetGauge("exec.batch_size", static_cast<double>(batch_size_));
  int64_t total_rows = 0, total_batches = 0;
  std::map<std::string, OpRunStats> by_op;
  for (const auto& [node, s] : stats) {
    OpRunStats& agg = by_op[node->Label()];
    agg.invocations += s.invocations;
    agg.rows += s.rows;
    agg.batches += s.batches;
    agg.wall_micros += s.wall_micros;
    total_rows += s.rows;
    total_batches += s.batches;
  }
  for (const auto& [label, s] : by_op) {
    metrics_->AddCounter("exec.op." + label + ".rows", s.rows);
    if (s.batches > 0) {
      metrics_->AddCounter("exec.op." + label + ".batches", s.batches);
    }
    metrics_->AddCounter("exec.op." + label + ".ns",
                         static_cast<int64_t>(s.wall_micros * 1000.0));
  }
  metrics_->AddCounter("exec.rows", total_rows);
  if (total_batches > 0) metrics_->AddCounter("exec.batches", total_batches);
  if (vectorized && (last_kernel_rows_ > 0 || last_kernel_fallbacks_ > 0)) {
    metrics_->AddCounter("exec.kernel_rows", last_kernel_rows_);
    metrics_->AddCounter("exec.kernel_fallbacks", last_kernel_fallbacks_);
  }
  if (profile_ != nullptr) {
    metrics_->SetGauge("exec.peak_bytes",
                       static_cast<double>(profile_->memory().peak_bytes()));
    metrics_->SetGauge("exec.current_bytes",
                       static_cast<double>(profile_->memory().current_bytes()));
    metrics_->SetGauge(
        "exec.tracker_clamps",
        static_cast<double>(profile_->memory().clamp_count()));
    int64_t spill_bytes = 0;
    for (const auto& [node, p] : profile_->ops()) spill_bytes += p.spill_bytes;
    metrics_->SetGauge("exec.spill_bytes", static_cast<double>(spill_bytes));
  }
}

// ---------------------------------------------------------------------------
// Core evaluation
// ---------------------------------------------------------------------------

Result<ResultSet> Executor::Run(const PlanPtr& plan) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  // Spill decisions compare tracked bytes against the governor's memory
  // budget, so a budget needs a live tracker even when the caller asked for
  // no profile: attach a run-local one and restore afterwards.
  ExecProfile governor_profile;
  ExecProfile* caller_profile = profile_;
  if (governor_ != nullptr && governor_->mem_limit() > 0 &&
      profile_ == nullptr) {
    profile_ = &governor_profile;
  }
  if (governor_ != nullptr && profile_ != nullptr) {
    governor_->set_tracker(&profile_->memory());
  }
  // Pre-register every node so profile coverage does not depend on which
  // operators the chosen engine happens to open (a nested-loop inner with an
  // empty outer never opens, but should still appear with zero counts).
  if (profile_ != nullptr) profile_->Register(*plan);
  // Per-operator counters need per-node stats; collect them into a local map
  // when the caller did not ask for EXPLAIN ANALYZE itself.
  PlanRunStats local_stats;
  PlanRunStats* caller_stats = run_stats_;
  if (metrics_ != nullptr && run_stats_ == nullptr) run_stats_ = &local_stats;

  Result<ResultSet> result = Status::Internal("unreached");
  if (vectorized_) {
    result = RunVectorized(plan);
  } else {
    material_cache_.clear();
    env_.clear();
    base_rows_.clear();
    // A failed run — real or injected — must not strand temps or binding
    // frames: release everything (including the cached materializations'
    // memory charges, so the tracker reads zero) before the error
    // propagates.
    auto release = [&]() {
      if (profile_ != nullptr) {
        for (const auto& [node, cached_rows] : material_cache_) {
          profile_->ReleaseBytes(node, RowsApproxBytes(*cached_rows));
        }
      }
      material_cache_.clear();
      schema_cache_.clear();
      env_.clear();
      base_rows_.clear();
    };
    auto rows = Eval(*plan);
    if (!rows.ok()) {
      release();
      result = rows.status();
    } else {
      auto schema = SchemaOf(*plan);
      if (!schema.ok()) {
        release();
        result = schema.status();
      } else {
        ResultSet rs;
        rs.schema = std::move(schema).value();
        rs.rows = *rows.value();
        result = std::move(rs);
      }
    }
  }

  if (result.ok() && profile_ != nullptr) profile_->CaptureLabels();
  if (run_stats_ != nullptr) PublishMetrics(*run_stats_, vectorized_);
  run_stats_ = caller_stats;
  // Detach the governor's tracker before a run-local profile goes out of
  // scope (the governor may outlive this Run).
  if (governor_ != nullptr) governor_->set_tracker(nullptr);
  profile_ = caller_profile;
  return result;
}

Result<Executor::RowsPtr> Executor::Eval(const PlanOp& node) {
  // The legacy engine's governance check point: once per operator dispatch.
  // Memory never hard-trips here — this engine cannot spill and serves as
  // the unbounded-memory oracle; only deadline/cancel stop it.
  if (governor_ != nullptr) {
    Status g = governor_->Check();
    if (!g.ok()) return g;
  }
  if (run_stats_ == nullptr && profile_ == nullptr) return EvalNode(node);
  // EXPLAIN ANALYZE: time each logical invocation (a cache hit is still an
  // invocation — it is how often the stream was consumed) and accumulate
  // rows produced. Wall time is inclusive of inputs, like the `actual
  // time` column of most systems' EXPLAIN ANALYZE. The profile mirrors the
  // same accounting (opens = invocations, rows_out = rows) so the two
  // engines agree on row counts at any batch size.
  auto start = std::chrono::steady_clock::now();
  auto rows = EvalNode(node);
  double us = std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  if (run_stats_ != nullptr) {
    OpRunStats& s = (*run_stats_)[&node];
    ++s.invocations;
    s.wall_micros += us;
    if (rows.ok()) s.rows += static_cast<int64_t>(rows.value()->size());
  }
  if (profile_ != nullptr) {
    OpProfile& p = profile_->at(&node);
    ++p.opens;
    ++p.next_calls;
    ++p.closes;
    p.next_micros += us;
    if (rows.ok()) {
      p.rows_out += static_cast<int64_t>(rows.value()->size());
      if (!rows.value()->empty()) ++p.batches_out;
    }
  }
  return rows;
}

Result<Executor::RowsPtr> Executor::EvalNode(const PlanOp& node) {
  auto cached = material_cache_.find(&node);
  if (cached != material_cache_.end()) return cached->second;

  Result<std::vector<Tuple>> rows = Status::Internal("unreached");
  const std::string& name = node.name();
  if (name == op::kAccess) {
    rows = EvalAccess(node);
  } else if (name == op::kGet) {
    rows = EvalGet(node);
  } else if (name == op::kSort) {
    rows = EvalSort(node);
  } else if (name == op::kShip || name == op::kStore) {
    rows = EvalStoreLike(node);
  } else if (name == op::kJoin) {
    rows = EvalJoin(node);
  } else if (name == op::kFilter) {
    rows = EvalFilter(node);
  } else if (name == op::kTidAnd) {
    rows = EvalTidAnd(node);
  } else if (name == op::kProject) {
    rows = EvalProject(node);
  } else if (name == op::kFilterBy) {
    rows = EvalFilterBy(node);
  } else {
    const auto* entry =
        registry_ != nullptr ? registry_->Find(name) : nullptr;
    if (entry == nullptr) {
      return Status::Unimplemented("no run-time routine for operator '" +
                                   name + "'");
    }
    ExecContext ctx(this, node);
    rows = entry->first(ctx);
  }
  if (!rows.ok()) return rows.status();
  // Shared, immutable materialization: the cache and the consumer hold the
  // same vector instead of two deep copies.
  RowsPtr ptr =
      std::make_shared<const std::vector<Tuple>>(std::move(rows).value());
  if (!IsCorrelated(node)) {
    material_cache_[&node] = ptr;
    if (profile_ != nullptr) {
      // Cached materializations live until the run releases its caches.
      profile_->ChargeBytes(&node, RowsApproxBytes(*ptr));
    }
  }
  return ptr;
}

Result<std::vector<Tuple>> Executor::EvalAccess(const PlanOp& node) {
  const Query& query = *query_;

  if (node.flavor == flavor::kTemp || node.flavor == flavor::kTempIndex) {
    STARBURST_RETURN_NOT_OK(faults_->Check(faultsite::kExecTempProbe));
    auto in_rows = Eval(*node.inputs[0]);
    if (!in_rows.ok()) return in_rows.status();
    auto schema = SchemaOf(*node.inputs[0]);
    if (!schema.ok()) return schema.status();
    std::vector<Tuple> rows = *in_rows.value();
    if (node.flavor == flavor::kTempIndex) {
      // The dynamic index yields tuples in key order.
      AccessPathList paths = node.inputs[0]->props.paths();
      const AccessPath* dyn = nullptr;
      for (const AccessPath& p : paths) {
        if (p.dynamic) dyn = &p;
      }
      if (dyn == nullptr) {
        return Status::Internal("temp-index ACCESS without dynamic path");
      }
      std::vector<int> slots;
      for (const ColumnRef& c : dyn->columns) {
        auto s = SlotOf(schema.value(), c);
        if (!s.ok()) return s.status();
        slots.push_back(s.value());
      }
      std::stable_sort(rows.begin(), rows.end(),
                       [&slots](const Tuple& a, const Tuple& b) {
                         for (int s : slots) {
                           int c = a[static_cast<size_t>(s)].Compare(
                               b[static_cast<size_t>(s)]);
                           if (c != 0) return c < 0;
                         }
                         return false;
                       });
    }
    PredSet preds = node.args.GetPreds(arg::kPreds);
    std::vector<Tuple> out;
    for (Tuple& t : rows) {
      auto keep = EvalPredSet(preds, schema.value(), t);
      if (!keep.ok()) return keep.status();
      if (keep.value()) out.push_back(std::move(t));
    }
    return out;
  }

  // Base-table flavors.
  STARBURST_RETURN_NOT_OK(faults_->Check(faultsite::kExecScanOpen));
  int q = static_cast<int>(node.args.GetInt(arg::kQuantifier, -1));
  const StoredTable& table = db_->table(query.quantifier(q).table);
  std::vector<ColumnRef> cols = node.args.GetColumns(arg::kCols);
  PredSet preds = node.args.GetPreds(arg::kPreds);
  Schema schema = cols;
  std::vector<Tuple> out;

  auto emit = [&](Tid tid, const Tuple& base) -> Status {
    base_rows_.push_back(BaseRow{q, &base});
    Tuple t;
    t.reserve(cols.size());
    for (const ColumnRef& c : cols) {
      if (c.is_tid()) {
        t.push_back(Datum(static_cast<int64_t>(tid)));
      } else {
        t.push_back(base[static_cast<size_t>(c.column)]);
      }
    }
    auto keep = EvalPredSet(preds, schema, t);
    base_rows_.pop_back();
    if (!keep.ok()) return keep.status();
    if (keep.value()) out.push_back(std::move(t));
    return Status::OK();
  };

  if (node.flavor == flavor::kHeap || node.flavor == flavor::kBTree) {
    for (Tid tid = 0; tid < table.num_rows(); ++tid) {
      STARBURST_RETURN_NOT_OK(emit(tid, table.row(tid)));
    }
    return out;
  }

  if (node.flavor == flavor::kIndex) {
    auto index =
        db_->FindIndex(query.quantifier(q).table, node.args.GetString(arg::kIndex));
    if (!index.ok()) return index.status();
    const SecondaryIndex& ix = *index.value();

    // Try to turn leading equality predicates into a probe prefix whose
    // probe values are computable from enclosing bindings.
    std::vector<Datum> prefix;
    for (int ord : ix.key_columns()) {
      ColumnRef key{q, ord};
      const Predicate* match = nullptr;
      const Expr* probe = nullptr;
      for (int id : preds.ToVector()) {
        const Predicate& p = query.predicate(id);
        if (p.op != CompareOp::kEq) continue;
        if (p.lhs->IsBareColumn() && p.lhs->column() == key) {
          match = &p;
          probe = p.rhs.get();
        } else if (p.rhs->IsBareColumn() && p.rhs->column() == key) {
          match = &p;
          probe = p.lhs.get();
        }
        if (match != nullptr) break;
      }
      if (match == nullptr) break;
      static const Schema kEmptySchema;
      static const Tuple kEmptyTuple;
      auto v = EvalExpr(*probe, kEmptySchema, kEmptyTuple);
      if (!v.ok()) break;  // not computable before the scan; filter instead
      prefix.push_back(std::move(v).value());
    }

    auto emit_entry = [&](const SecondaryIndex::Entry& e) -> Status {
      return emit(e.tid, table.row(e.tid));
    };
    if (!prefix.empty()) {
      for (const SecondaryIndex::Entry* e : ix.LookupPrefix(prefix)) {
        STARBURST_RETURN_NOT_OK(emit_entry(*e));
      }
    } else {
      for (const SecondaryIndex::Entry& e : ix.entries()) {
        STARBURST_RETURN_NOT_OK(emit_entry(e));
      }
    }
    return out;
  }
  return Status::InvalidArgument("unknown ACCESS flavor '" + node.flavor +
                                 "'");
}

Result<std::vector<Tuple>> Executor::EvalGet(const PlanOp& node) {
  auto in_rows = Eval(*node.inputs[0]);
  if (!in_rows.ok()) return in_rows.status();
  auto in_schema = SchemaOf(*node.inputs[0]);
  if (!in_schema.ok()) return in_schema.status();
  auto out_schema = SchemaOf(node);
  if (!out_schema.ok()) return out_schema.status();

  int q = static_cast<int>(node.args.GetInt(arg::kQuantifier, -1));
  const StoredTable& table = db_->table(query_->quantifier(q).table);
  auto tid_slot = SlotOf(in_schema.value(), ColumnRef{q, ColumnRef::kTidColumn});
  if (!tid_slot.ok()) {
    return Status::InvalidArgument("GET input lacks TID column");
  }
  PredSet preds = node.args.GetPreds(arg::kPreds);

  std::vector<Tuple> out;
  for (const Tuple& in : *in_rows.value()) {
    Tid tid = in[static_cast<size_t>(tid_slot.value())].AsInt();
    if (tid < 0 || tid >= table.num_rows()) {
      return Status::Internal("TID out of range in GET");
    }
    const Tuple& base = table.row(tid);
    base_rows_.push_back(BaseRow{q, &base});
    Tuple t = in;
    for (size_t i = in.size(); i < out_schema.value().size(); ++i) {
      const ColumnRef& c = out_schema.value()[i];
      t.push_back(base[static_cast<size_t>(c.column)]);
    }
    auto keep = EvalPredSet(preds, out_schema.value(), t);
    base_rows_.pop_back();
    if (!keep.ok()) return keep.status();
    if (keep.value()) out.push_back(std::move(t));
  }
  return out;
}

Result<std::vector<Tuple>> Executor::EvalSort(const PlanOp& node) {
  STARBURST_RETURN_NOT_OK(faults_->Check(faultsite::kExecSortRun));
  auto in_rows = Eval(*node.inputs[0]);
  if (!in_rows.ok()) return in_rows.status();
  auto schema = SchemaOf(node);
  if (!schema.ok()) return schema.status();
  std::vector<int> slots;
  for (const ColumnRef& c : node.args.GetColumns(arg::kOrder)) {
    auto s = SlotOf(schema.value(), c);
    if (!s.ok()) return s.status();
    slots.push_back(s.value());
  }
  std::vector<Tuple> rows = *in_rows.value();
  std::stable_sort(rows.begin(), rows.end(),
                   [&slots](const Tuple& a, const Tuple& b) {
                     for (int s : slots) {
                       int c = a[static_cast<size_t>(s)].Compare(
                           b[static_cast<size_t>(s)]);
                       if (c != 0) return c < 0;
                     }
                     return false;
                   });
  if (profile_ != nullptr) {
    // The sort buffer is transient (returned by value): charge-and-release
    // still records it in the peak.
    int64_t bytes = RowsApproxBytes(rows);
    OpProfile& p = profile_->at(&node);
    p.sort_rows += static_cast<int64_t>(rows.size());
    p.sort_bytes += bytes;
    profile_->ChargeBytes(&node, bytes);
    profile_->ReleaseBytes(&node, bytes);
  }
  return rows;
}

Result<std::vector<Tuple>> Executor::EvalStoreLike(const PlanOp& node) {
  STARBURST_RETURN_NOT_OK(faults_->Check(faultsite::kExecStoreRun));
  // SHIP and STORE change physical placement, which an in-memory simulation
  // realizes as identity on the tuple stream.
  auto rows = Eval(*node.inputs[0]);
  if (!rows.ok()) return rows.status();
  return *rows.value();
}

Result<std::vector<Tuple>> Executor::EvalJoin(const PlanOp& node) {
  STARBURST_RETURN_NOT_OK(faults_->Check(faultsite::kExecJoinRun));
  const PlanOp& outer_node = *node.inputs[0];
  const PlanOp& inner_node = *node.inputs[1];
  auto outer_schema_r = SchemaOf(outer_node);
  if (!outer_schema_r.ok()) return outer_schema_r.status();
  auto inner_schema_r = SchemaOf(inner_node);
  if (!inner_schema_r.ok()) return inner_schema_r.status();
  auto out_schema_r = SchemaOf(node);
  if (!out_schema_r.ok()) return out_schema_r.status();
  // Stable addresses: schema_cache_ is a std::map.
  const Schema& outer_schema = schema_cache_.at(&outer_node);
  const Schema& inner_schema = schema_cache_.at(&inner_node);
  const Schema& out_schema = schema_cache_.at(&node);

  PredSet join_preds = node.args.GetPreds(arg::kJoinPreds);
  PredSet residual = node.args.GetPreds(arg::kResidualPreds);
  PredSet check = join_preds.Union(residual);

  auto outer_rows_r = Eval(outer_node);
  if (!outer_rows_r.ok()) return outer_rows_r.status();
  RowsPtr outer_ptr = std::move(outer_rows_r).value();
  const std::vector<Tuple>& outer_rows = *outer_ptr;

  std::vector<Tuple> out;
  // `preds` is the part of `check` the join machinery has not already
  // enforced: MG/HA key matches elide their equality predicates.
  auto emit_pair = [&](const Tuple& a, const Tuple& b,
                       PredSet preds) -> Status {
    Tuple t;
    t.reserve(a.size() + b.size());
    t.insert(t.end(), a.begin(), a.end());
    t.insert(t.end(), b.begin(), b.end());
    auto keep = EvalPredSet(preds, out_schema, t);
    if (!keep.ok()) return keep.status();
    if (keep.value()) out.push_back(std::move(t));
    return Status::OK();
  };

  if (node.flavor == flavor::kNL) {
    for (const Tuple& o : outer_rows) {
      env_.push_back(ExecFrame{&outer_schema, &o});
      auto inner_rows = Eval(inner_node);
      env_.pop_back();
      if (!inner_rows.ok()) return inner_rows.status();
      for (const Tuple& i : *inner_rows.value()) {
        STARBURST_RETURN_NOT_OK(emit_pair(o, i, check));
      }
    }
    return out;
  }

  // MG and HA evaluate the inner once (uncorrelated by construction).
  auto inner_rows_r = Eval(inner_node);
  if (!inner_rows_r.ok()) return inner_rows_r.status();
  RowsPtr inner_ptr = std::move(inner_rows_r).value();
  const std::vector<Tuple>& inner_rows = *inner_ptr;

  if (node.flavor == flavor::kMG) {
    // Merge keys: leading pairs of the two inputs' sort orders connected by
    // equality join predicates. Predicates the merge keys enforce (equality
    // on non-NULL values) drop out of the residual check on matched pairs.
    SortOrder oorder = outer_node.props.order();
    SortOrder iorder = inner_node.props.order();
    std::vector<std::pair<int, int>> key_slots;
    PredSet enforced;
    size_t depth = std::min(oorder.size(), iorder.size());
    for (size_t k = 0; k < depth; ++k) {
      int linked = -1;
      for (int id : join_preds.ToVector()) {
        const Predicate& p = query_->predicate(id);
        if (p.op != CompareOp::kEq || !p.lhs->IsBareColumn() ||
            !p.rhs->IsBareColumn()) {
          continue;
        }
        ColumnRef a = p.lhs->column(), b = p.rhs->column();
        if ((a == oorder[k] && b == iorder[k]) ||
            (b == oorder[k] && a == iorder[k])) {
          linked = id;
          break;
        }
      }
      if (linked < 0) break;
      auto os = SlotOf(outer_schema, oorder[k]);
      auto is = SlotOf(inner_schema, iorder[k]);
      if (!os.ok() || !is.ok()) break;
      key_slots.push_back({os.value(), is.value()});
      enforced = enforced.Union(PredSet::Single(linked));
    }

    if (key_slots.empty()) {
      // No mergeable equality key: degrade to pairing with full predicate
      // evaluation (still correct; the rule set avoids generating this).
      for (const Tuple& o : outer_rows) {
        for (const Tuple& i : inner_rows) {
          STARBURST_RETURN_NOT_OK(emit_pair(o, i, check));
        }
      }
      return out;
    }
    PredSet residual_check = check.Minus(enforced);

    auto key_cmp = [&](const Tuple& o, const Tuple& i) {
      for (auto [os, is] : key_slots) {
        // SQL semantics: NULL keys never match; callers skip NULL rows.
        int c = o[static_cast<size_t>(os)].Compare(i[static_cast<size_t>(is)]);
        if (c != 0) return c;
      }
      return 0;
    };
    auto has_null_key = [](const Tuple& t, const std::vector<int>& slots) {
      for (int s : slots) {
        if (t[static_cast<size_t>(s)].is_null()) return true;
      }
      return false;
    };
    std::vector<int> oslots, islots;
    for (auto [os, is] : key_slots) {
      oslots.push_back(os);
      islots.push_back(is);
    }

    size_t i = 0, j = 0;
    while (i < outer_rows.size() && j < inner_rows.size()) {
      if (has_null_key(outer_rows[i], oslots)) {
        ++i;
        continue;
      }
      if (has_null_key(inner_rows[j], islots)) {
        ++j;
        continue;
      }
      int c = key_cmp(outer_rows[i], inner_rows[j]);
      if (c < 0) {
        ++i;
      } else if (c > 0) {
        ++j;
      } else {
        // Equal-key groups: cross product.
        size_t i_end = i;
        while (i_end < outer_rows.size() &&
               !has_null_key(outer_rows[i_end], oslots) &&
               key_cmp(outer_rows[i_end], inner_rows[j]) == 0) {
          ++i_end;
        }
        size_t j_end = j;
        while (j_end < inner_rows.size() &&
               !has_null_key(inner_rows[j_end], islots) &&
               key_cmp(outer_rows[i], inner_rows[j_end]) == 0) {
          ++j_end;
        }
        for (size_t a = i; a < i_end; ++a) {
          for (size_t b = j; b < j_end; ++b) {
            STARBURST_RETURN_NOT_OK(
                emit_pair(outer_rows[a], inner_rows[b], residual_check));
          }
        }
        i = i_end;
        j = j_end;
      }
    }
    return out;
  }

  if (node.flavor == flavor::kHA) {
    // Hash keys: equality join predicates with one side per input. A key
    // match (Compare()==0 on non-NULL values) is exactly what the elided
    // equality predicates would have checked.
    struct HashPair {
      const Expr* outer_expr;
      const Expr* inner_expr;
    };
    QuantifierSet ot = outer_node.props.tables();
    QuantifierSet it = inner_node.props.tables();
    std::vector<HashPair> pairs;
    PredSet enforced;
    for (int id : join_preds.ToVector()) {
      const Predicate& p = query_->predicate(id);
      if (!IsHashable(p, ot, it)) continue;
      bool lhs_outer = ColumnsWithin(p.lhs_columns, ot);
      pairs.push_back(lhs_outer ? HashPair{p.lhs.get(), p.rhs.get()}
                                : HashPair{p.rhs.get(), p.lhs.get()});
      enforced = enforced.Union(PredSet::Single(id));
    }
    if (pairs.empty()) {
      for (const Tuple& o : outer_rows) {
        for (const Tuple& i : inner_rows) {
          STARBURST_RETURN_NOT_OK(emit_pair(o, i, check));
        }
      }
      return out;
    }
    PredSet residual_check = check.Minus(enforced);

    auto key_less = [](const std::vector<Datum>& a,
                       const std::vector<Datum>& b) {
      for (size_t k = 0; k < a.size(); ++k) {
        int c = a[k].Compare(b[k]);
        if (c != 0) return c < 0;
      }
      return false;
    };
    std::map<std::vector<Datum>, std::vector<size_t>, decltype(key_less)>
        build(key_less);
    for (size_t r = 0; r < inner_rows.size(); ++r) {
      std::vector<Datum> key;
      bool null_key = false;
      for (const HashPair& hp : pairs) {
        auto v = EvalExpr(*hp.inner_expr, inner_schema, inner_rows[r]);
        if (!v.ok()) return v.status();
        if (v.value().is_null()) null_key = true;
        key.push_back(std::move(v).value());
      }
      if (!null_key) build[std::move(key)].push_back(r);
    }
    int64_t ha_bytes = 0;
    if (profile_ != nullptr) {
      for (const auto& [key, entries] : build) {
        for (const Datum& d : key) ha_bytes += DatumApproxBytes(d);
        ha_bytes += static_cast<int64_t>(entries.size() * sizeof(size_t));
      }
      OpProfile& p = profile_->at(&node);
      p.hash_build_rows += static_cast<int64_t>(inner_rows.size());
      p.hash_groups += static_cast<int64_t>(build.size());
      p.hash_bytes += ha_bytes;
      profile_->ChargeBytes(&node, ha_bytes);
    }
    for (const Tuple& o : outer_rows) {
      std::vector<Datum> key;
      bool null_key = false;
      for (const HashPair& hp : pairs) {
        auto v = EvalExpr(*hp.outer_expr, outer_schema, o);
        if (!v.ok()) return v.status();
        if (v.value().is_null()) null_key = true;
        key.push_back(std::move(v).value());
      }
      if (null_key) continue;
      auto hit = build.find(key);
      if (hit == build.end()) continue;
      for (size_t r : hit->second) {
        STARBURST_RETURN_NOT_OK(emit_pair(o, inner_rows[r], residual_check));
      }
    }
    if (profile_ != nullptr) {
      profile_->at(&node).hash_probes +=
          static_cast<int64_t>(outer_rows.size());
      profile_->ReleaseBytes(&node, ha_bytes);
    }
    return out;
  }
  return Status::InvalidArgument("unknown JOIN flavor '" + node.flavor + "'");
}

Result<std::vector<Tuple>> Executor::EvalTidAnd(const PlanOp& node) {
  int q = node.props.tables().First();
  ColumnRef tid{q, ColumnRef::kTidColumn};
  auto tids_of = [&](int input) -> Result<std::vector<int64_t>> {
    auto rows = Eval(*node.inputs[static_cast<size_t>(input)]);
    if (!rows.ok()) return rows.status();
    auto schema = SchemaOf(*node.inputs[static_cast<size_t>(input)]);
    if (!schema.ok()) return schema.status();
    auto slot = SlotOf(schema.value(), tid);
    if (!slot.ok()) return slot.status();
    std::vector<int64_t> out;
    out.reserve(rows.value()->size());
    for (const Tuple& t : *rows.value()) {
      out.push_back(t[static_cast<size_t>(slot.value())].AsInt());
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  auto a = tids_of(0);
  if (!a.ok()) return a.status();
  auto b = tids_of(1);
  if (!b.ok()) return b.status();
  std::vector<int64_t> common;
  std::set_intersection(a.value().begin(), a.value().end(),
                        b.value().begin(), b.value().end(),
                        std::back_inserter(common));
  common.erase(std::unique(common.begin(), common.end()), common.end());
  std::vector<Tuple> out;
  out.reserve(common.size());
  for (int64_t t : common) out.push_back(Tuple{Datum(t)});
  return out;
}

Result<std::vector<Tuple>> Executor::EvalProject(const PlanOp& node) {
  auto in_rows = Eval(*node.inputs[0]);
  if (!in_rows.ok()) return in_rows.status();
  auto in_schema = SchemaOf(*node.inputs[0]);
  if (!in_schema.ok()) return in_schema.status();
  std::vector<int> slots;
  for (const ColumnRef& c : node.args.GetColumns(arg::kCols)) {
    auto s = SlotOf(in_schema.value(), c);
    if (!s.ok()) return s.status();
    slots.push_back(s.value());
  }
  std::vector<Tuple> out;
  out.reserve(in_rows.value()->size());
  for (const Tuple& t : *in_rows.value()) {
    Tuple p;
    p.reserve(slots.size());
    for (int s : slots) p.push_back(t[static_cast<size_t>(s)]);
    out.push_back(std::move(p));
  }
  if (node.args.GetBool(arg::kDistinct, false)) {
    std::sort(out.begin(), out.end(), [](const Tuple& a, const Tuple& b) {
      for (size_t i = 0; i < a.size(); ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c < 0;
      }
      return false;
    });
    out.erase(std::unique(out.begin(), out.end(),
                          [](const Tuple& a, const Tuple& b) {
                            for (size_t i = 0; i < a.size(); ++i) {
                              if (a[i].Compare(b[i]) != 0) return false;
                            }
                            return true;
                          }),
              out.end());
  }
  return out;
}

Result<std::vector<Tuple>> Executor::EvalFilterBy(const PlanOp& node) {
  // Both flavors execute the exact semijoin; the Bloom filter's false
  // positives only exist in the cost model (and are absorbed by the final
  // join's predicate re-check anyway).
  auto probe_rows = Eval(*node.inputs[0]);
  if (!probe_rows.ok()) return probe_rows.status();
  auto filter_rows = Eval(*node.inputs[1]);
  if (!filter_rows.ok()) return filter_rows.status();
  auto probe_schema_r = SchemaOf(*node.inputs[0]);
  if (!probe_schema_r.ok()) return probe_schema_r.status();
  auto filter_schema_r = SchemaOf(*node.inputs[1]);
  if (!filter_schema_r.ok()) return filter_schema_r.status();
  const Schema& probe_schema = schema_cache_.at(node.inputs[0].get());
  const Schema& filter_schema = schema_cache_.at(node.inputs[1].get());

  QuantifierSet probe_tables = node.inputs[0]->props.tables();
  QuantifierSet filter_tables = node.inputs[1]->props.tables();
  struct KeyPair {
    const Expr* probe_expr;
    const Expr* filter_expr;
  };
  std::vector<KeyPair> pairs;
  for (int id : node.args.GetPreds(arg::kJoinPreds).ToVector()) {
    const Predicate& p = query_->predicate(id);
    bool lhs_probe = ColumnsWithin(p.lhs_columns, probe_tables);
    pairs.push_back(lhs_probe ? KeyPair{p.lhs.get(), p.rhs.get()}
                              : KeyPair{p.rhs.get(), p.lhs.get()});
  }
  (void)filter_tables;

  auto key_less = [](const std::vector<Datum>& a,
                     const std::vector<Datum>& b) {
    for (size_t k = 0; k < a.size(); ++k) {
      int c = a[k].Compare(b[k]);
      if (c != 0) return c < 0;
    }
    return false;
  };
  std::set<std::vector<Datum>, decltype(key_less)> filter_keys(key_less);
  for (const Tuple& f : *filter_rows.value()) {
    std::vector<Datum> key;
    bool null_key = false;
    for (const KeyPair& kp : pairs) {
      auto v = EvalExpr(*kp.filter_expr, filter_schema, f);
      if (!v.ok()) return v.status();
      if (v.value().is_null()) null_key = true;
      key.push_back(std::move(v).value());
    }
    if (!null_key) filter_keys.insert(std::move(key));
  }

  std::vector<Tuple> out;
  for (const Tuple& t : *probe_rows.value()) {
    std::vector<Datum> key;
    bool null_key = false;
    for (const KeyPair& kp : pairs) {
      auto v = EvalExpr(*kp.probe_expr, probe_schema, t);
      if (!v.ok()) return v.status();
      if (v.value().is_null()) null_key = true;
      key.push_back(std::move(v).value());
    }
    if (!null_key && filter_keys.count(key)) out.push_back(t);
  }
  return out;
}

Result<std::vector<Tuple>> Executor::EvalFilter(const PlanOp& node) {
  auto in_rows = Eval(*node.inputs[0]);
  if (!in_rows.ok()) return in_rows.status();
  auto schema = SchemaOf(node);
  if (!schema.ok()) return schema.status();
  PredSet preds = node.args.GetPreds(arg::kPreds);
  std::vector<Tuple> out;
  for (const Tuple& t : *in_rows.value()) {
    auto keep = EvalPredSet(preds, schema.value(), t);
    if (!keep.ok()) return keep.status();
    if (keep.value()) out.push_back(t);
  }
  return out;
}

}  // namespace starburst
