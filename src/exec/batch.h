#ifndef STARBURST_EXEC_BATCH_H_
#define STARBURST_EXEC_BATCH_H_

#include <cstdlib>
#include <string_view>
#include <utility>
#include <vector>

#include "exec/sel_vector.h"
#include "storage/table.h"

namespace starburst {

/// Default number of rows per RowBatch when neither the API nor the
/// STARBURST_BATCH_SIZE environment variable overrides it.
inline constexpr int kDefaultBatchSize = 1024;

/// Batch size from STARBURST_BATCH_SIZE (clamped to >= 1), else the default.
inline int DefaultBatchSize() {
  const char* env = std::getenv("STARBURST_BATCH_SIZE");
  if (env == nullptr || *env == '\0') return kDefaultBatchSize;
  int n = std::atoi(env);
  return n >= 1 ? n : 1;
}

/// Worker count for the exchange operator from STARBURST_EXEC_THREADS
/// (clamped to [1, 256]), else 1 — parallel execution is strictly opt-in so
/// a default run behaves exactly like the sequential engine.
inline int DefaultExecThreads() {
  const char* env = std::getenv("STARBURST_EXEC_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  int n = std::atoi(env);
  if (n < 1) return 1;
  return n > 256 ? 256 : n;
}

/// Vectorized execution unless STARBURST_VECTORIZED=0 selects the legacy
/// row-at-a-time oracle.
inline bool DefaultVectorized() {
  const char* env = std::getenv("STARBURST_VECTORIZED");
  return env == nullptr || std::string_view(env) != "0";
}

/// Type-specialized fused predicate kernels unless STARBURST_TYPED_KERNELS=0
/// selects the generic postfix interpreter as the differential oracle
/// (exactly like STARBURST_VECTORIZED=0 one level down).
inline bool DefaultTypedKernels() {
  const char* env = std::getenv("STARBURST_TYPED_KERNELS");
  return env == nullptr || std::string_view(env) != "0";
}

/// One unit of flow through the vectorized pipeline: up to the configured
/// batch size of materialized tuples. Row-oriented on purpose — tuples are
/// `std::vector<Datum>` throughout the system and the win over the legacy
/// path comes from amortized dispatch and compiled predicate programs, not
/// from columnar storage.
/// Producers that attach a selection vector must leave at least one live row
/// (or return an empty batch to signal exhaustion); `rows.empty()` therefore
/// remains the exhaustion signal for every consumer.
struct RowBatch {
  std::vector<Tuple> rows;
  SelVector sel;

  bool empty() const { return rows.empty(); }
  size_t size() const { return rows.size(); }
  void clear() {
    rows.clear();
    sel.clear();
  }

  /// Live rows: the selection when active, else every row.
  size_t live() const { return sel.active ? sel.idx.size() : rows.size(); }
  Tuple& live_row(size_t k) {
    return sel.active ? rows[static_cast<size_t>(sel.idx[k])] : rows[k];
  }
  const Tuple& live_row(size_t k) const {
    return sel.active ? rows[static_cast<size_t>(sel.idx[k])] : rows[k];
  }

  /// Materializes the selection: survivors move to the front, the vector
  /// shrinks to the live count, and the selection deactivates. Pipeline
  /// breakers (sort ingest, join build, readers that index rows directly)
  /// compact on entry; streaming consumers iterate live_row instead.
  void Compact() {
    if (!sel.active) return;
    for (size_t k = 0; k < sel.idx.size(); ++k) {
      size_t src = static_cast<size_t>(sel.idx[k]);
      if (src != k) rows[k] = std::move(rows[src]);
    }
    rows.resize(sel.idx.size());
    sel.clear();
  }
};

}  // namespace starburst

#endif  // STARBURST_EXEC_BATCH_H_
