#ifndef STARBURST_EXEC_SEL_VECTOR_H_
#define STARBURST_EXEC_SEL_VECTOR_H_

#include <cstdint>
#include <vector>

namespace starburst {

/// Selection vector over one RowBatch: when `active`, `idx` holds the
/// surviving row positions — sorted ascending, unique, all within the
/// batch's row vector. An inactive SelVector means "all rows live". The
/// vector travels with the batch so downstream operators iterate survivors
/// without materializing a compaction until a pipeline breaker consumes
/// the rows.
struct SelVector {
  bool active = false;
  std::vector<int32_t> idx;

  void clear() {
    active = false;
    idx.clear();
  }
};

}  // namespace starburst

#endif  // STARBURST_EXEC_SEL_VECTOR_H_
