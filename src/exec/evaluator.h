#ifndef STARBURST_EXEC_EVALUATOR_H_
#define STARBURST_EXEC_EVALUATOR_H_

#include <atomic>
#include <memory>

#include "exec/executor.h"
#include "exec/governor.h"
#include "obs/profiler.h"

namespace starburst {

class WorkloadRepository;

/// Convenience: run `plan` over `db` and return the rows.
Result<ResultSet> ExecutePlan(const Database& db, const Query& query,
                              const PlanPtr& plan,
                              const ExecutorRegistry* registry = nullptr);

/// One-stop knobs for ExecutePlan: engine selection, batch sizing, stats and
/// metrics sinks. Fields left at their defaults inherit the environment
/// (STARBURST_VECTORIZED / STARBURST_BATCH_SIZE) or stay disabled.
struct ExecOptions {
  const ExecutorRegistry* registry = nullptr;
  PlanRunStats* stats = nullptr;        // EXPLAIN ANALYZE sink
  MetricsRegistry* metrics = nullptr;   // per-run counter sink
  FaultInjector* faults = nullptr;      // override the global injector
  int vectorized = -1;                  // -1 env default, 0 legacy, 1 batch
  int batch_size = 0;                   // 0 env default, else rows per batch
  int exec_threads = 0;                 // 0 env default, else exchange workers
  int typed_kernels = -1;               // -1 env default, 0 off, 1 fused
  int profile = -1;                     // -1 STARBURST_PROFILE, 0 off, 1 on
  ExecProfile* profile_sink = nullptr;  // operator profile sink (implies on)
  WorkloadRepository* workload = nullptr;  // fold the run into the repository
  // Execution governance: a wall-clock deadline (kResourceExhausted on
  // overrun), a memory budget that triggers SORT / JOIN(HA) spilling, and a
  // cooperative cancellation token (kCancelled once set). 0 inherits the
  // environment (STARBURST_EXEC_DEADLINE_MS / STARBURST_EXEC_MEM_LIMIT);
  // a negative value forces the knob off regardless of the environment.
  int64_t exec_deadline_ms = 0;
  int64_t exec_mem_limit = 0;  // bytes
  CancelToken cancel;          // shared flag; null = not cancellable
};

Result<ResultSet> ExecutePlan(const Database& db, const Query& query,
                              const PlanPtr& plan, const ExecOptions& options);

/// EXPLAIN ANALYZE: like ExecutePlan, but also collects per-node actuals
/// into `stats` for rendering via ExplainOptions::analyze.
Result<ResultSet> ExecutePlanAnalyzed(const Database& db, const Query& query,
                                      const PlanPtr& plan,
                                      PlanRunStats* stats,
                                      const ExecutorRegistry* registry =
                                          nullptr);

/// EXPLAIN ANALYZE with the full option set: collects per-node actuals into
/// `stats` and honors every ExecOptions field (profile sink, workload
/// repository, engine/batch knobs, metrics).
Result<ResultSet> ExecutePlanAnalyzed(const Database& db, const Query& query,
                                      const PlanPtr& plan,
                                      PlanRunStats* stats,
                                      const ExecOptions& options);

/// Reorders/projects the result's columns to `cols` (e.g. the query's select
/// list), so results from structurally different plans become comparable.
Result<ResultSet> ProjectResult(const ResultSet& rs,
                                const std::vector<ColumnRef>& cols);

/// Rows sorted lexicographically — a canonical form for multiset equality.
std::vector<Tuple> CanonicalRows(std::vector<Tuple> rows);

/// True if projecting both results onto `cols` yields the same multiset of
/// rows. The workhorse of the plan-equivalence property tests: every plan in
/// a SAP must agree (paper §2.2 — alternatives are *semantically equal*).
Result<bool> SameResult(const ResultSet& a, const ResultSet& b,
                        const std::vector<ColumnRef>& cols);

/// Verifies the ORDER property: rows are non-decreasing on `order`.
Result<bool> IsSorted(const ResultSet& rs, const SortOrder& order);

/// Renders rows as an aligned table for the examples.
std::string FormatResult(const ResultSet& rs, const Query& query,
                         size_t max_rows = 20);

}  // namespace starburst

#endif  // STARBURST_EXEC_EVALUATOR_H_
