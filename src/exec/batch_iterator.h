#ifndef STARBURST_EXEC_BATCH_ITERATOR_H_
#define STARBURST_EXEC_BATCH_ITERATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "exec/batch.h"
#include "exec/executor.h"

namespace starburst {

class ExecGovernor;
class ExecProfile;
class FaultInjector;

/// Shared state of one vectorized execution: the owning executor (schema and
/// materialization caches, custom-operator bridge), the fault injector, the
/// per-node stats sink, and the nested-loop binding frames. `env` aliases the
/// executor's own binding stack so custom operators that fall back to the
/// legacy evaluator resolve outer columns identically. Frame slots are
/// assigned by NL nesting depth at plan-build time, so compiled frame loads
/// are plain indexed reads.
struct VecRuntime {
  Executor* exec = nullptr;
  const Database* db = nullptr;
  const Query* query = nullptr;
  const ExecutorRegistry* registry = nullptr;
  FaultInjector* faults = nullptr;
  PlanRunStats* stats = nullptr;
  ExecProfile* profile = nullptr;
  /// Execution governor (deadline / cancellation / spill threshold); null
  /// disables governance. Checked once per batch in BatchIterator::Next and
  /// once per morsel on the exchange coordinator.
  ExecGovernor* governor = nullptr;
  /// stats != nullptr || profile != nullptr, precomputed so the disabled
  /// fast path stays one branch per Open/Next/Close.
  bool instrumented = false;
  int batch_size = kDefaultBatchSize;
  /// Exchange worker-pool size. 1 (the default) disables the exchange
  /// operator: no parallel iterator is ever built and the pipeline is the
  /// sequential engine, byte for byte.
  int exec_threads = 1;
  /// Type-specialized fused predicate/key kernels (exec/kernel.{h,cc}). Off
  /// (STARBURST_TYPED_KERNELS=0) runs every predicate through the generic
  /// postfix interpreter — the differential oracle for the typed loops.
  bool typed_kernels = true;
  /// Whole-run kernel accounting, aggregated across iterators (including
  /// exchange morsel workers, hence atomic): rows decided by a fused kernel
  /// and rows routed back to the interpreter (type-mismatch or unfused
  /// conjuncts on kernel-eligible sites).
  std::atomic<int64_t> kernel_rows{0};
  std::atomic<int64_t> kernel_fallback_rows{0};
  std::vector<ExecFrame>* env = nullptr;
  /// Uncorrelated nodes with more than one parent in the plan DAG: they
  /// materialize once through the executor's material cache and replay per
  /// parent (evaluate-once parity with the legacy interpreter).
  std::set<const PlanOp*> shared_nodes;
};

/// Pull-based batch iterator over one LOLEPOP: Open() (re-)starts the
/// stream — correlated NL inners are re-opened per outer binding — and
/// Next() produces up to the configured batch size of rows, with an empty
/// batch signaling exhaustion. Fault sites are honored at Open, which is the
/// batch pipeline's analogue of the legacy per-evaluation checks, so
/// deterministic nth-hit fault specs trip at the same points in both
/// engines.
class BatchIterator {
 public:
  BatchIterator(VecRuntime* rt, const PlanOp* node, int depth)
      : rt_(rt), node_(node), depth_(depth) {}
  virtual ~BatchIterator() = default;

  Status Open();
  Status Next(RowBatch* out);
  /// Ends the stream: closes children, flushes operator detail into the
  /// profile, and releases charged memory. Idempotent; called once after the
  /// root (or a materialized subtree) is drained.
  Status Close();

  const PlanOp& node() const { return *node_; }

 protected:
  virtual Status DoOpen() = 0;
  /// Appends rows to `out` (already cleared). Must either leave at least one
  /// LIVE row (an attached selection vector may hide rows, but never all of
  /// them) or return with `out` empty to signal exhaustion.
  virtual Status DoNext(RowBatch* out) = 0;
  virtual Status DoClose() { return Status::OK(); }

  VecRuntime* rt_;
  const PlanOp* node_;
  /// Number of enclosing NL binding frames (frame slots [0, depth_) are in
  /// scope for column resolution).
  int depth_;
  bool closed_ = false;
};

/// Builds the iterator tree for `node` with `depth` enclosing NL frames.
/// Shared DAG nodes come back wrapped in a materialize-once replay iterator.
Result<std::unique_ptr<BatchIterator>> BuildBatchIterator(VecRuntime* rt,
                                                          const PlanOp& node,
                                                          int depth);

}  // namespace starburst

#endif  // STARBURST_EXEC_BATCH_ITERATOR_H_
