#ifndef STARBURST_EXEC_EXCHANGE_H_
#define STARBURST_EXEC_EXCHANGE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "exec/batch_iterator.h"
#include "exec/hash_table.h"
#include "exec/kernel.h"
#include "exec/pred_program.h"
#include "storage/index.h"

namespace starburst {

/// The exchange LOLEPOP (op::kXchg): morsel-parallel execution for the
/// vectorized engine. The paper's §3 grammar moves streams between sites
/// with SHIP glue; XCHG is the single-site analogue — it moves a stream
/// across a pool of workers and merges it back, without appearing in the
/// plan tree (EXPLAIN annotates the profiled node instead).
///
/// Determinism contract (same spirit as the enumerator's rank-parallel
/// discipline: identical results at any thread count):
///  - Work splits into fixed-size morsels of kMorselRows source rows, so
///    the decomposition is invariant under both thread count and batch size.
///  - Workers claim morsels from an atomic ticket but write only their own
///    morsel's output buffer; the coordinator emits buffers in morsel-index
///    order, reproducing the sequential row order bit for bit.
///  - Per-morsel counters (pred evals, probes, chain steps) are merged by
///    the coordinator in canonical order, so profiles are engine-invariant.
///  - On error every morsel still runs to completion and the lowest
///    morsel-index error is returned — the same error the sequential scan
///    would have hit first in row order.
///  - FaultInjector::Check stays coordinator-only (see fault_injector.h),
///    so nth-hit fault specs trip identically at every thread count.

/// Fixed morsel granularity. Independent of the batch size so the parallel
/// decomposition — and therefore the output — never varies with it.
inline constexpr size_t kMorselRows = 1024;

/// Sources smaller than this run inline on the coordinator (one worker, no
/// threads spawned): below ~2 morsels the pool costs more than it saves.
inline constexpr size_t kExchangeMinRows = 2048;

/// Morsel count for `source_rows` rows.
inline size_t MorselCount(size_t source_rows) {
  return (source_rows + kMorselRows - 1) / kMorselRows;
}

/// Worker count the coordinator will actually use: 1 for small sources or a
/// sequential configuration, else min(exec_threads, morsels).
int ExchangeWorkersFor(int exec_threads, size_t source_rows, size_t morsels);

/// Runs fn(0) .. fn(morsels-1) across `workers` threads (the calling thread
/// participates; workers <= 1 degenerates to a plain loop). fn(m) must write
/// only morsel-m state. Every morsel runs to completion; the error of the
/// lowest failing morsel index is returned.
///
/// When `governor` is non-null it is checked once per morsel claim: after a
/// trip (deadline, cancellation) already-running morsels finish, but every
/// morsel claimed afterwards is skipped and records the trip status instead
/// of running fn — the lowest-index error rule then surfaces it.
Status RunMorsels(int workers, size_t morsels,
                  const std::function<Status(size_t)>& fn,
                  ExecGovernor* governor = nullptr);

/// Stable-sorts `rows` by Compare() over the given slot list, fanning the
/// work out over up to `workers` threads (contiguous chunk sorts followed by
/// a pairwise stable-merge tree). The result is bit-identical to a single
/// std::stable_sort for any chunking, so SORT stays deterministic across
/// thread counts. Returns the number of workers actually used.
int SortRowsBySlots(std::vector<Tuple>* rows, const std::vector<int>& slots,
                    int workers);

/// Build side of the partitioned JOIN(HA): kPartitions JoinHashTables keyed
/// by the HIGH bits of the 64-bit key hash. Each partition receives its rows
/// in global build-row order, so per-key chains replay the sequential
/// insertion order and the probe emits matches bit-identically to one big
/// table. num_rows/num_groups are partition-layout-invariant (each key lands
/// in exactly one partition); num_slots/ApproxBytes are not and must not be
/// asserted across thread counts.
class PartitionedJoinTable {
 public:
  static constexpr int kPartitions = 16;

  /// High bits pick the partition: JoinHashTable's slot index is the LOW
  /// bits of the same hash, so low-bit partitioning would fold every
  /// partition's keys onto 1/16th of its slots.
  static int PartitionOf(uint64_t hash) {
    return static_cast<int>(hash >> 60);
  }

  explicit PartitionedJoinTable(int key_width);

  /// Evaluates `key_progs` over every row (morsel-parallel) and inserts the
  /// non-NULL keys partition-parallel. Key-program failures surface as the
  /// lowest-row-order error, matching the sequential build. A non-null
  /// governor is checked once per morsel (see RunMorsels).
  ///
  /// A non-null `key_kernel` (width-1 typed int64 key) evaluates rows
  /// without the Datum interpreter; per-row type mismatches fall back to
  /// `key_progs`. Kernel traffic is tallied into *kernel_rows /
  /// *kernel_fallbacks on the coordinator after the morsels join.
  Status Build(const std::vector<Tuple>& rows,
               const std::vector<ExprProgram>& key_progs,
               std::vector<ExecFrame>* frames, int exec_threads,
               ExecGovernor* governor = nullptr,
               const KeyKernel* key_kernel = nullptr,
               int64_t* kernel_rows = nullptr,
               int64_t* kernel_fallbacks = nullptr);

  const JoinHashTable& partition(uint64_t hash) const {
    return parts_[static_cast<size_t>(PartitionOf(hash))];
  }

  size_t num_rows() const;
  size_t num_groups() const;
  size_t num_slots() const;
  int64_t ApproxBytes() const;
  int build_workers() const { return build_workers_; }

 private:
  int key_width_;
  std::vector<JoinHashTable> parts_;
  int build_workers_ = 1;
};

/// Morsel-parallel ACCESS over heap/btree/index flavors. Open replicates the
/// sequential iterators' fault check and compilation exactly; the first Next
/// runs every morsel to completion (workers scan disjoint TID/entry ranges
/// through shared const compiled programs) and then streams the buffered
/// morsels out in order. Only built at pipeline depth 0 outside re-opened
/// subtrees, where compiled programs reference no NL binding frames.
class ExchangeScanIterator : public BatchIterator {
 public:
  using BatchIterator::BatchIterator;

 protected:
  Status DoOpen() override;
  Status DoNext(RowBatch* out) override;
  Status DoClose() override;

 private:
  Status RunScan();

  bool compiled_ = false;
  bool is_index_ = false;
  int q_ = -1;
  const StoredTable* table_ = nullptr;
  const SecondaryIndex* ix_ = nullptr;
  Schema schema_;
  PredProgram preds_;
  /// Heap/btree flavors only: fused predicate prefix evaluated over the
  /// base rows of each morsel. Workers pass a null KernelState (fixed pred
  /// order) so the shared program stays immutable.
  KernelProgram kernel_;
  PredProgram rem_preds_;
  int64_t kernel_rows_ = 0;
  int64_t kernel_fallbacks_ = 0;
  std::vector<ExprProgram> probe_progs_;
  std::vector<Datum> prefix_;
  std::vector<const SecondaryIndex::Entry*> pref_entries_;
  bool use_prefix_ = false;
  bool ran_ = false;
  std::vector<std::vector<Tuple>> morsel_rows_;
  size_t emit_morsel_ = 0;
  size_t emit_pos_ = 0;
  int64_t pred_evals_ = 0;
  int workers_used_ = 1;
};

}  // namespace starburst

#endif  // STARBURST_EXEC_EXCHANGE_H_
