#include "exec/batch_iterator.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <functional>
#include <memory>
#include <utility>

#include "common/fault_injector.h"
#include "exec/exchange.h"
#include "exec/governor.h"
#include "exec/hash_table.h"
#include "exec/kernel.h"
#include "exec/pred_program.h"
#include "exec/spill_file.h"
#include "obs/profiler.h"
#include "storage/index.h"

namespace starburst {

using RowsPtr = std::shared_ptr<const std::vector<Tuple>>;

/// Friend bridge into the Executor's private caches. The pipeline shares the
/// legacy engine's schema cache (stable Schema addresses — std::map) and
/// material cache (so temps/NL inners materialize once no matter which engine
/// or custom-op bridge asks first).
struct VecAccess {
  static Result<const Schema*> CachedSchema(Executor* e, const PlanOp& n) {
    auto s = e->SchemaOf(n);
    if (!s.ok()) return s.status();
    return &e->schema_cache_.at(&n);
  }
  static std::map<const PlanOp*, RowsPtr>& Cache(Executor* e) {
    return e->material_cache_;
  }
  static void Release(Executor* e) {
    // Cached materializations carry memory charges (MaterializeSubtree);
    // release them with the rows so an abandoned run leaves the tracker at
    // zero.
    if (e->profile_ != nullptr) {
      for (const auto& [node, rows] : e->material_cache_) {
        e->profile_->ReleaseBytes(node, RowsApproxBytes(*rows));
      }
    }
    e->material_cache_.clear();
    e->schema_cache_.clear();
    e->env_.clear();
    e->base_rows_.clear();
  }
};

// ---------------------------------------------------------------------------
// BatchIterator base: stats/profile instrumentation around the virtual hooks
// ---------------------------------------------------------------------------

Status BatchIterator::Open() {
  if (!rt_->instrumented) return DoOpen();
  auto start = std::chrono::steady_clock::now();
  Status s = DoOpen();
  double us = std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  if (rt_->stats != nullptr) {
    OpRunStats& st = (*rt_->stats)[node_];
    ++st.invocations;
    st.wall_micros += us;
  }
  if (rt_->profile != nullptr) {
    OpProfile& p = rt_->profile->at(node_);
    ++p.opens;
    p.open_micros += us;
  }
  return s;
}

Status BatchIterator::Next(RowBatch* out) {
  out->clear();
  // Governance check point: once per batch, at every iterator boundary. A
  // trip unwinds as a Status through the pull chain; Close() still runs on
  // every opened iterator (RunVectorized closes unconditionally).
  if (rt_->governor != nullptr) {
    Status g = rt_->governor->Check();
    if (!g.ok()) return g;
  }
  if (!rt_->instrumented) return DoNext(out);
  auto start = std::chrono::steady_clock::now();
  Status s = DoNext(out);
  double us = std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  // Row counts are LIVE rows: a batch with a selection vector reports only
  // its survivors, so kernels-on profiles match the compacting pipeline.
  if (rt_->stats != nullptr) {
    OpRunStats& st = (*rt_->stats)[node_];
    st.rows += static_cast<int64_t>(out->live());
    if (!out->rows.empty()) ++st.batches;
    st.wall_micros += us;
  }
  if (rt_->profile != nullptr) {
    OpProfile& p = rt_->profile->at(node_);
    ++p.next_calls;
    p.rows_out += static_cast<int64_t>(out->live());
    if (!out->rows.empty()) ++p.batches_out;
    p.next_micros += us;
  }
  return s;
}

Status BatchIterator::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  if (!rt_->instrumented) return DoClose();
  auto start = std::chrono::steady_clock::now();
  Status s = DoClose();
  double us = std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  if (rt_->profile != nullptr) {
    OpProfile& p = rt_->profile->at(node_);
    ++p.closes;
    p.close_micros += us;
  }
  return s;
}

namespace {

int SlotIn(const Schema& schema, ColumnRef ref) {
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i] == ref) return static_cast<int>(i);
  }
  return -1;
}

bool BatchFull(const RowBatch& b, const VecRuntime& rt) {
  return static_cast<int>(b.rows.size()) >= rt.batch_size;
}

Status DrainInto(BatchIterator* it, std::vector<Tuple>* rows) {
  RowBatch b;
  for (;;) {
    STARBURST_RETURN_NOT_OK(it->Next(&b));
    if (b.empty()) return Status::OK();
    b.Compact();  // materialize any selection before the rows leave the batch
    for (Tuple& t : b.rows) rows->push_back(std::move(t));
  }
}

/// Folds one iterator's kernel tallies into the run-wide atomics and (when
/// profiling) the per-node profile. Static pred counts overwrite rather than
/// add: they describe the compiled program, not the traffic.
void FlushKernelCounters(VecRuntime* rt, const PlanOp* node, int64_t rows,
                         int64_t fallbacks, int fused_preds,
                         int fallback_preds) {
  if (rows == 0 && fallbacks == 0) return;
  rt->kernel_rows.fetch_add(rows, std::memory_order_relaxed);
  rt->kernel_fallback_rows.fetch_add(fallbacks, std::memory_order_relaxed);
  if (rt->profile != nullptr) {
    OpProfile& p = rt->profile->at(node);
    p.kernel_rows += rows;
    p.kernel_fallbacks += fallbacks;
    p.kernel_fused_preds = fused_preds;
    p.kernel_fallback_preds = fallback_preds;
  }
}

/// Streaming lookahead over a child iterator: Peek the current row (pulling
/// the next batch on demand), Advance past it. Merge join runs one of these
/// per side.
class BatchReader {
 public:
  void Reset(BatchIterator* src) {
    src_ = src;
    batch_.clear();
    pos_ = 0;
    done_ = false;
  }
  Status Peek(const Tuple** row) {
    while (!done_ && pos_ >= batch_.rows.size()) {
      STARBURST_RETURN_NOT_OK(src_->Next(&batch_));
      pos_ = 0;
      // Exhaustion is decided on the raw batch; a non-empty batch always has
      // at least one live row, so compaction never yields an empty vector.
      if (batch_.empty()) {
        done_ = true;
      } else {
        batch_.Compact();
      }
    }
    *row = done_ ? nullptr : &batch_.rows[pos_];
    return Status::OK();
  }
  void Advance() { ++pos_; }

 private:
  BatchIterator* src_ = nullptr;
  RowBatch batch_;
  size_t pos_ = 0;
  bool done_ = false;
};

Result<std::unique_ptr<BatchIterator>> Build(VecRuntime* rt,
                                             const PlanOp& node, int depth,
                                             bool reopened);
Result<std::unique_ptr<BatchIterator>> BuildNode(VecRuntime* rt,
                                                 const PlanOp& node,
                                                 int depth, bool reopened);

/// Runs a fresh iterator tree for `node` to completion and returns the rows,
/// caching uncorrelated results in the executor's material cache — the batch
/// pipeline's equivalent of the legacy interpreter's materialize-and-cache
/// evaluation (same evaluate-once semantics, same fault-site hit counts:
/// a cache hit opens nothing).
Result<RowsPtr> MaterializeSubtree(VecRuntime* rt, const PlanOp& node,
                                   int depth) {
  auto& cache = VecAccess::Cache(rt->exec);
  auto hit = cache.find(&node);
  if (hit != cache.end()) return hit->second;
  auto it = BuildNode(rt, node, depth, /*reopened=*/false);
  if (!it.ok()) return it.status();
  STARBURST_RETURN_NOT_OK(it.value()->Open());
  auto rows = std::make_shared<std::vector<Tuple>>();
  STARBURST_RETURN_NOT_OK(DrainInto(it.value().get(), rows.get()));
  STARBURST_RETURN_NOT_OK(it.value()->Close());
  RowsPtr ptr = std::move(rows);
  if (!rt->exec->IsCorrelated(node)) {
    cache[&node] = ptr;
    if (rt->profile != nullptr) {
      // Cached materializations live until the run releases its caches;
      // charge them to the node that produced the rows.
      rt->profile->ChargeBytes(&node, RowsApproxBytes(*ptr));
    }
  }
  return ptr;
}

Status EmitJoinPair(const Tuple& a, const Tuple& b, const PredProgram& check,
                    VecRuntime* rt, RowBatch* out) {
  Tuple t;
  t.reserve(a.size() + b.size());
  t.insert(t.end(), a.begin(), a.end());
  t.insert(t.end(), b.begin(), b.end());
  if (check.empty()) {
    // No residual to evaluate (typical HA equi-join): skip the interpreter
    // dispatch entirely on the hot emission path.
    out->rows.push_back(std::move(t));
    return Status::OK();
  }
  ProgramCtx ctx{&t, rt->env, nullptr};
  auto keep = check.Eval(ctx);
  if (!keep.ok()) return keep.status();
  if (keep.value()) out->rows.push_back(std::move(t));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ACCESS(heap|btree)
// ---------------------------------------------------------------------------

class HeapScanIterator : public BatchIterator {
 public:
  using BatchIterator::BatchIterator;

 protected:
  Status DoOpen() override {
    STARBURST_RETURN_NOT_OK(rt_->faults->Check(faultsite::kExecScanOpen));
    if (!compiled_) {
      q_ = static_cast<int>(node_->args.GetInt(arg::kQuantifier, -1));
      table_ = &rt_->db->table(rt_->query->quantifier(q_).table);
      schema_ = node_->args.GetColumns(arg::kCols);
      CompileEnv env;
      env.schema = &schema_;
      env.frames = rt_->env;
      env.frame_limit = static_cast<size_t>(depth_);
      env.base_quantifier = q_;
      preds_ = PredProgram::Compile(node_->args.GetPreds(arg::kPreds),
                                    *rt_->query, env);
      if (rt_->typed_kernels) {
        KernelEnv kenv;
        kenv.schema = &schema_;
        kenv.query = rt_->query;
        kenv.db = rt_->db;
        kenv.base_quantifier = q_;
        kenv.scan_mode = true;
        kernel_ = KernelProgram::Compile(node_->args.GetPreds(arg::kPreds),
                                         *rt_->query, kenv);
        if (kernel_.usable()) {
          rem_preds_ =
              PredProgram::Compile(kernel_.remainder(), *rt_->query, env);
        }
      }
      compiled_ = true;
    }
    tid_ = 0;
    return Status::OK();
  }

  Status DoNext(RowBatch* out) override {
    if (kernel_.usable()) return KernelNext(out);
    while (!BatchFull(*out, *rt_) && tid_ < table_->num_rows()) {
      const Tuple& base = table_->row(tid_);
      Tuple t;
      t.reserve(schema_.size());
      for (const ColumnRef& c : schema_) {
        if (c.is_tid()) {
          t.push_back(Datum(static_cast<int64_t>(tid_)));
        } else {
          t.push_back(base[static_cast<size_t>(c.column)]);
        }
      }
      ++tid_;
      ProgramCtx ctx{&t, rt_->env, &base};
      ++pred_evals_;
      auto keep = preds_.Eval(ctx);
      if (!keep.ok()) return keep.status();
      if (keep.value()) out->rows.push_back(std::move(t));
    }
    return Status::OK();
  }

  Status DoClose() override {
    if (rt_->profile != nullptr && pred_evals_ > 0) {
      OpProfile& p = rt_->profile->at(node_);
      p.pred_evals += pred_evals_;
      p.pred_steps += pred_evals_ * static_cast<int64_t>(preds_.size());
    }
    FlushKernelCounters(rt_, node_, kernel_rows_, kernel_fallbacks_,
                        kernel_.fused(), kernel_.fallback_preds());
    kernel_rows_ = 0;
    kernel_fallbacks_ = 0;
    return Status::OK();
  }

 private:
  /// Fused path: the kernel evaluates the stored rows in place (no output
  /// tuple is built for non-survivors); interpreter work is limited to
  /// type-mismatch rows (full program) and unfused remainder conjuncts over
  /// the kernel's survivors, merged back in TID order so the first Status
  /// error is raised at exactly the row the legacy loop would raise it.
  Status KernelNext(RowBatch* out) {
    const int64_t nrows = table_->num_rows();
    const bool rem = !rem_preds_.empty();
    while (!BatchFull(*out, *rt_) && tid_ < nrows) {
      int64_t room = static_cast<int64_t>(rt_->batch_size) -
                     static_cast<int64_t>(out->rows.size());
      int64_t hi = std::min<int64_t>(nrows, tid_ + room);
      hit_tids_.clear();
      mis_tids_.clear();
      kernel_.EvalScan(*table_, tid_, hi, &hit_tids_, &mis_tids_, &kstate_);
      pred_evals_ += hi - tid_;
      kernel_rows_ += (hi - tid_) - static_cast<int64_t>(mis_tids_.size());
      kernel_fallbacks_ += static_cast<int64_t>(mis_tids_.size());
      if (rem) kernel_fallbacks_ += static_cast<int64_t>(hit_tids_.size());
      tid_ = hi;
      size_t a = 0, b = 0;
      while (a < hit_tids_.size() || b < mis_tids_.size()) {
        bool from_mis =
            b < mis_tids_.size() &&
            (a >= hit_tids_.size() || mis_tids_[b] < hit_tids_[a]);
        int64_t tid = from_mis ? mis_tids_[b++] : hit_tids_[a++];
        const Tuple& base = table_->row(tid);
        Tuple t;
        t.reserve(schema_.size());
        for (const ColumnRef& c : schema_) {
          if (c.is_tid()) {
            t.push_back(Datum(tid));
          } else {
            t.push_back(base[static_cast<size_t>(c.column)]);
          }
        }
        if (!from_mis && !rem) {
          out->rows.push_back(std::move(t));
          continue;
        }
        ProgramCtx ctx{&t, rt_->env, &base};
        auto keep = (from_mis ? preds_ : rem_preds_).Eval(ctx);
        if (!keep.ok()) return keep.status();
        if (keep.value()) out->rows.push_back(std::move(t));
      }
    }
    return Status::OK();
  }

  bool compiled_ = false;
  int q_ = -1;
  const StoredTable* table_ = nullptr;
  Schema schema_;
  PredProgram preds_;
  KernelProgram kernel_;
  PredProgram rem_preds_;
  KernelState kstate_;
  std::vector<int64_t> hit_tids_;
  std::vector<int64_t> mis_tids_;
  Tid tid_ = 0;
  int64_t pred_evals_ = 0;
  int64_t kernel_rows_ = 0;
  int64_t kernel_fallbacks_ = 0;
};

// ---------------------------------------------------------------------------
// ACCESS(index)
// ---------------------------------------------------------------------------

class IndexScanIterator : public BatchIterator {
 public:
  using BatchIterator::BatchIterator;

 protected:
  Status DoOpen() override {
    STARBURST_RETURN_NOT_OK(rt_->faults->Check(faultsite::kExecScanOpen));
    const Query& query = *rt_->query;
    if (!compiled_) {
      q_ = static_cast<int>(node_->args.GetInt(arg::kQuantifier, -1));
      table_ = &rt_->db->table(query.quantifier(q_).table);
      auto index = rt_->db->FindIndex(query.quantifier(q_).table,
                                      node_->args.GetString(arg::kIndex));
      if (!index.ok()) return index.status();
      ix_ = index.value();
      schema_ = node_->args.GetColumns(arg::kCols);
      PredSet preds = node_->args.GetPreds(arg::kPreds);
      CompileEnv env;
      env.schema = &schema_;
      env.frames = rt_->env;
      env.frame_limit = static_cast<size_t>(depth_);
      env.base_quantifier = q_;
      preds_ = PredProgram::Compile(preds, query, env);
      // Leading equality predicates become a probe prefix when their probe
      // side is computable before the scan (constants or enclosing NL
      // bindings). Compiled once; the probe values are re-evaluated per open
      // so correlated index lookups see the current outer row.
      CompileEnv probe_env;
      probe_env.frames = rt_->env;
      probe_env.frame_limit = static_cast<size_t>(depth_);
      for (int ord : ix_->key_columns()) {
        ColumnRef key{q_, ord};
        const Expr* probe = nullptr;
        for (int id : preds.ToVector()) {
          const Predicate& p = query.predicate(id);
          if (p.op != CompareOp::kEq) continue;
          if (p.lhs->IsBareColumn() && p.lhs->column() == key) {
            probe = p.rhs.get();
          } else if (p.rhs->IsBareColumn() && p.rhs->column() == key) {
            probe = p.lhs.get();
          }
          if (probe != nullptr) break;
        }
        if (probe == nullptr) break;
        ExprProgram prog = ExprProgram::Compile(*probe, probe_env);
        if (!prog.resolvable()) break;  // not computable before the scan
        probe_progs_.push_back(std::move(prog));
      }
      compiled_ = true;
    }
    prefix_.clear();
    ProgramCtx ctx{nullptr, rt_->env, nullptr};
    for (const ExprProgram& p : probe_progs_) {
      auto v = p.Eval(ctx);
      if (!v.ok()) return v.status();
      prefix_.push_back(std::move(v).value());
    }
    use_prefix_ = !prefix_.empty();
    if (use_prefix_) pref_entries_ = ix_->LookupPrefix(prefix_);
    cursor_ = 0;
    return Status::OK();
  }

  Status DoNext(RowBatch* out) override {
    while (!BatchFull(*out, *rt_)) {
      const SecondaryIndex::Entry* e = nullptr;
      if (use_prefix_) {
        if (cursor_ >= pref_entries_.size()) break;
        e = pref_entries_[cursor_++];
      } else {
        const auto& all = ix_->entries();
        if (cursor_ >= all.size()) break;
        e = &all[cursor_++];
      }
      const Tuple& base = table_->row(e->tid);
      Tuple t;
      t.reserve(schema_.size());
      for (const ColumnRef& c : schema_) {
        if (c.is_tid()) {
          t.push_back(Datum(static_cast<int64_t>(e->tid)));
        } else {
          t.push_back(base[static_cast<size_t>(c.column)]);
        }
      }
      ProgramCtx ctx{&t, rt_->env, &base};
      ++pred_evals_;
      auto keep = preds_.Eval(ctx);
      if (!keep.ok()) return keep.status();
      if (keep.value()) out->rows.push_back(std::move(t));
    }
    return Status::OK();
  }

  Status DoClose() override {
    if (rt_->profile != nullptr && pred_evals_ > 0) {
      OpProfile& p = rt_->profile->at(node_);
      p.pred_evals += pred_evals_;
      p.pred_steps += pred_evals_ * static_cast<int64_t>(preds_.size());
    }
    return Status::OK();
  }

 private:
  bool compiled_ = false;
  int q_ = -1;
  const StoredTable* table_ = nullptr;
  const SecondaryIndex* ix_ = nullptr;
  Schema schema_;
  PredProgram preds_;
  std::vector<ExprProgram> probe_progs_;
  std::vector<Datum> prefix_;
  std::vector<const SecondaryIndex::Entry*> pref_entries_;
  bool use_prefix_ = false;
  size_t cursor_ = 0;
  int64_t pred_evals_ = 0;
};

// ---------------------------------------------------------------------------
// ACCESS(temp|temp-index)
// ---------------------------------------------------------------------------

class TempAccessIterator : public BatchIterator {
 public:
  using BatchIterator::BatchIterator;

 protected:
  Status DoOpen() override {
    STARBURST_RETURN_NOT_OK(rt_->faults->Check(faultsite::kExecTempProbe));
    const PlanOp& input = *node_->inputs[0];
    auto rows = MaterializeSubtree(rt_, input, depth_);
    if (!rows.ok()) return rows.status();
    rows_ = std::move(rows).value();
    if (!compiled_) {
      auto schema = VecAccess::CachedSchema(rt_->exec, input);
      if (!schema.ok()) return schema.status();
      schema_ = schema.value();
      input_correlated_ = rt_->exec->IsCorrelated(input);
      CompileEnv env;
      env.schema = schema_;
      env.frames = rt_->env;
      env.frame_limit = static_cast<size_t>(depth_);
      preds_ = PredProgram::Compile(node_->args.GetPreds(arg::kPreds),
                                    *rt_->query, env);
      if (rt_->typed_kernels) {
        KernelEnv kenv;
        kenv.schema = schema_;
        kenv.query = rt_->query;
        kenv.db = rt_->db;
        kernel_ = KernelProgram::Compile(node_->args.GetPreds(arg::kPreds),
                                         *rt_->query, kenv);
        if (kernel_.usable()) {
          rem_preds_ =
              PredProgram::Compile(kernel_.remainder(), *rt_->query, env);
        }
      }
      compiled_ = true;
    }
    if (node_->flavor == flavor::kTempIndex &&
        (!sorted_ready_ || input_correlated_)) {
      // The dynamic index yields tuples in key order.
      AccessPathList paths = input.props.paths();
      const AccessPath* dyn = nullptr;
      for (const AccessPath& p : paths) {
        if (p.dynamic) dyn = &p;
      }
      if (dyn == nullptr) {
        return Status::Internal("temp-index ACCESS without dynamic path");
      }
      std::vector<int> slots;
      for (const ColumnRef& c : dyn->columns) {
        int s = SlotIn(*schema_, c);
        if (s < 0) return Status::NotFound("column not in stream schema");
        slots.push_back(s);
      }
      sorted_rows_ = *rows_;
      // The parallel sort is pure, so it is safe even when this temp-index
      // access sits inside a re-opened (correlated) subtree.
      int sort_workers =
          SortRowsBySlots(&sorted_rows_, slots, rt_->exec_threads);
      sorted_ready_ = true;
      if (rt_->profile != nullptr) {
        if (charged_ > 0) rt_->profile->ReleaseBytes(node_, charged_);
        charged_ = RowsApproxBytes(sorted_rows_);
        rt_->profile->ChargeBytes(node_, charged_);
        OpProfile& p = rt_->profile->at(node_);
        p.sort_rows += static_cast<int64_t>(sorted_rows_.size());
        p.sort_bytes += charged_;
        if (sort_workers > 1 && sort_workers > p.exchange_workers) {
          p.exchange_workers = sort_workers;
        }
      }
    }
    cursor_ = 0;
    return Status::OK();
  }

  Status DoNext(RowBatch* out) override {
    const std::vector<Tuple>& src =
        node_->flavor == flavor::kTempIndex ? sorted_rows_ : *rows_;
    if (kernel_.usable()) return KernelNext(src, out);
    while (!BatchFull(*out, *rt_) && cursor_ < src.size()) {
      const Tuple& t = src[cursor_++];
      ProgramCtx ctx{&t, rt_->env, nullptr};
      ++pred_evals_;
      auto keep = preds_.Eval(ctx);
      if (!keep.ok()) return keep.status();
      if (keep.value()) out->rows.push_back(t);
    }
    return Status::OK();
  }

  Status DoClose() override {
    if (rt_->profile != nullptr) {
      if (charged_ > 0) {
        rt_->profile->ReleaseBytes(node_, charged_);
        charged_ = 0;
      }
      if (pred_evals_ > 0) {
        OpProfile& p = rt_->profile->at(node_);
        p.pred_evals += pred_evals_;
        p.pred_steps += pred_evals_ * static_cast<int64_t>(preds_.size());
      }
    }
    FlushKernelCounters(rt_, node_, kernel_rows_, kernel_fallbacks_,
                        kernel_.fused(), kernel_.fallback_preds());
    kernel_rows_ = 0;
    kernel_fallbacks_ = 0;
    return Status::OK();
  }

 private:
  /// Same merge discipline as the heap scan, over the materialized rows:
  /// survivors and mismatch rows come back as ascending indices, so the
  /// interpreter pass visits them in input order.
  Status KernelNext(const std::vector<Tuple>& src, RowBatch* out) {
    const bool rem = !rem_preds_.empty();
    while (!BatchFull(*out, *rt_) && cursor_ < src.size()) {
      size_t room = static_cast<size_t>(rt_->batch_size) - out->rows.size();
      size_t hi = std::min(src.size(), cursor_ + room);
      hits_.clear();
      mis_.clear();
      kernel_.EvalRows(src, cursor_, hi, &hits_, &mis_, &kstate_);
      pred_evals_ += static_cast<int64_t>(hi - cursor_);
      kernel_rows_ += static_cast<int64_t>(hi - cursor_) -
                      static_cast<int64_t>(mis_.size());
      kernel_fallbacks_ += static_cast<int64_t>(mis_.size());
      if (rem) kernel_fallbacks_ += static_cast<int64_t>(hits_.size());
      cursor_ = hi;
      size_t a = 0, b = 0;
      while (a < hits_.size() || b < mis_.size()) {
        bool from_mis =
            b < mis_.size() && (a >= hits_.size() || mis_[b] < hits_[a]);
        int32_t i = from_mis ? mis_[b++] : hits_[a++];
        const Tuple& t = src[static_cast<size_t>(i)];
        if (!from_mis && !rem) {
          out->rows.push_back(t);
          continue;
        }
        ProgramCtx ctx{&t, rt_->env, nullptr};
        auto keep = (from_mis ? preds_ : rem_preds_).Eval(ctx);
        if (!keep.ok()) return keep.status();
        if (keep.value()) out->rows.push_back(t);
      }
    }
    return Status::OK();
  }

  bool compiled_ = false;
  bool input_correlated_ = false;
  const Schema* schema_ = nullptr;
  PredProgram preds_;
  KernelProgram kernel_;
  PredProgram rem_preds_;
  KernelState kstate_;
  std::vector<int32_t> hits_;
  std::vector<int32_t> mis_;
  RowsPtr rows_;
  std::vector<Tuple> sorted_rows_;
  bool sorted_ready_ = false;
  size_t cursor_ = 0;
  int64_t pred_evals_ = 0;
  int64_t charged_ = 0;
  int64_t kernel_rows_ = 0;
  int64_t kernel_fallbacks_ = 0;
};

// ---------------------------------------------------------------------------
// GET
// ---------------------------------------------------------------------------

class GetIterator : public BatchIterator {
 public:
  GetIterator(VecRuntime* rt, const PlanOp* node, int depth,
              std::unique_ptr<BatchIterator> child)
      : BatchIterator(rt, node, depth), child_(std::move(child)) {}

 protected:
  Status DoOpen() override {
    STARBURST_RETURN_NOT_OK(child_->Open());
    if (!compiled_) {
      auto in_schema = VecAccess::CachedSchema(rt_->exec, *node_->inputs[0]);
      if (!in_schema.ok()) return in_schema.status();
      auto out_schema = VecAccess::CachedSchema(rt_->exec, *node_);
      if (!out_schema.ok()) return out_schema.status();
      out_schema_ = out_schema.value();
      q_ = static_cast<int>(node_->args.GetInt(arg::kQuantifier, -1));
      table_ = &rt_->db->table(rt_->query->quantifier(q_).table);
      tid_slot_ = SlotIn(*in_schema.value(),
                         ColumnRef{q_, ColumnRef::kTidColumn});
      if (tid_slot_ < 0) {
        return Status::InvalidArgument("GET input lacks TID column");
      }
      CompileEnv env;
      env.schema = out_schema_;
      env.frames = rt_->env;
      env.frame_limit = static_cast<size_t>(depth_);
      env.base_quantifier = q_;
      preds_ = PredProgram::Compile(node_->args.GetPreds(arg::kPreds),
                                    *rt_->query, env);
      compiled_ = true;
    }
    in_batch_.clear();
    in_pos_ = 0;
    return Status::OK();
  }

  Status DoNext(RowBatch* out) override {
    while (!BatchFull(*out, *rt_)) {
      if (in_pos_ >= in_batch_.live()) {
        STARBURST_RETURN_NOT_OK(child_->Next(&in_batch_));
        in_pos_ = 0;
        if (in_batch_.empty()) break;
      }
      const Tuple& in = in_batch_.live_row(in_pos_++);
      Tid tid = in[static_cast<size_t>(tid_slot_)].AsInt();
      if (tid < 0 || tid >= table_->num_rows()) {
        return Status::Internal("TID out of range in GET");
      }
      const Tuple& base = table_->row(tid);
      Tuple t = in;
      for (size_t i = in.size(); i < out_schema_->size(); ++i) {
        const ColumnRef& c = (*out_schema_)[i];
        t.push_back(base[static_cast<size_t>(c.column)]);
      }
      ProgramCtx ctx{&t, rt_->env, &base};
      ++pred_evals_;
      auto keep = preds_.Eval(ctx);
      if (!keep.ok()) return keep.status();
      if (keep.value()) out->rows.push_back(std::move(t));
    }
    return Status::OK();
  }

  Status DoClose() override {
    if (rt_->profile != nullptr && pred_evals_ > 0) {
      OpProfile& p = rt_->profile->at(node_);
      p.pred_evals += pred_evals_;
      p.pred_steps += pred_evals_ * static_cast<int64_t>(preds_.size());
    }
    return child_->Close();
  }

 private:
  std::unique_ptr<BatchIterator> child_;
  bool compiled_ = false;
  int q_ = -1;
  const StoredTable* table_ = nullptr;
  const Schema* out_schema_ = nullptr;
  int tid_slot_ = -1;
  PredProgram preds_;
  RowBatch in_batch_;
  size_t in_pos_ = 0;
  int64_t pred_evals_ = 0;
};

// ---------------------------------------------------------------------------
// SORT (blocking; spills to external-merge runs under a memory budget)
// ---------------------------------------------------------------------------

/// Rows below this floor never spill as their own run: with tiny budgets and
/// batch_size=1 the sort would otherwise shed thousands of one-row runs and
/// exhaust file descriptors during the merge.
constexpr size_t kMinSpillRunRows = 256;

class SortIterator : public BatchIterator {
 public:
  SortIterator(VecRuntime* rt, const PlanOp* node, int depth,
               std::unique_ptr<BatchIterator> child)
      : BatchIterator(rt, node, depth), child_(std::move(child)) {}

 protected:
  Status DoOpen() override {
    STARBURST_RETURN_NOT_OK(rt_->faults->Check(faultsite::kExecSortRun));
    STARBURST_RETURN_NOT_OK(child_->Open());
    if (!compiled_) {
      auto schema = VecAccess::CachedSchema(rt_->exec, *node_);
      if (!schema.ok()) return schema.status();
      for (const ColumnRef& c : node_->args.GetColumns(arg::kOrder)) {
        int s = SlotIn(*schema.value(), c);
        if (s < 0) return Status::NotFound("column not in stream schema");
        slots_.push_back(s);
      }
      compiled_ = true;
    }
    drained_ = false;
    merging_ = false;
    rows_.clear();
    pos_ = 0;
    runs_.clear();
    seen_rows_ = 0;
    seen_bytes_ = 0;
    ReleaseCharge();
    return Status::OK();
  }

  Status DoNext(RowBatch* out) override {
    if (!drained_) STARBURST_RETURN_NOT_OK(Drain());
    if (runs_.empty()) {
      // Pure in-memory path: identical to the pre-spill engine.
      while (!BatchFull(*out, *rt_) && pos_ < rows_.size()) {
        out->rows.push_back(std::move(rows_[pos_++]));
      }
      return Status::OK();
    }
    return MergeNext(out);
  }

  Status DoClose() override {
    ReleaseCharge();
    runs_.clear();
    return child_->Close();
  }

 private:
  struct Run {
    std::unique_ptr<SpillFile> file;
    Tuple head;
    bool reading = false;
    bool done = false;
  };

  /// True when the governor's memory budget is set and currently exceeded.
  bool ShouldSpill() const {
    return rt_->governor != nullptr && rt_->governor->ShouldSpill();
  }

  /// Pulls the child to exhaustion, shedding sorted runs to temp files
  /// whenever the tracked bytes cross the budget. Runs are CONTIGUOUS input
  /// segments, each stable-sorted, and the merge breaks ties by run index
  /// (earliest first, in-memory tail last) — exactly one global stable_sort,
  /// so spilled output is bit-identical to the in-memory sort at every
  /// threshold, batch size, and worker count.
  Status Drain() {
    RowBatch b;
    for (;;) {
      STARBURST_RETURN_NOT_OK(child_->Next(&b));
      if (b.empty()) break;
      // Compact before charging: dead rows hidden by a selection vector must
      // not count against the sort's memory budget or row tallies.
      b.Compact();
      if (rt_->profile != nullptr) {
        int64_t delta = RowsApproxBytes(b.rows);
        charged_ += delta;
        seen_bytes_ += delta;
        rt_->profile->ChargeBytes(node_, delta);
      }
      seen_rows_ += static_cast<int64_t>(b.rows.size());
      for (Tuple& t : b.rows) rows_.push_back(std::move(t));
      if (ShouldSpill() && rows_.size() >= kMinSpillRunRows) {
        STARBURST_RETURN_NOT_OK(SpillRun());
      }
    }
    // Parallel chunk-sort + stable merge; bit-identical to one
    // std::stable_sort at every worker count (exec_threads 1 is exactly
    // that call).
    int sort_workers = SortRowsBySlots(&rows_, slots_, rt_->exec_threads);
    drained_ = true;
    if (rt_->profile != nullptr) {
      OpProfile& p = rt_->profile->at(node_);
      p.sort_rows += seen_rows_;
      p.sort_bytes += seen_bytes_;
      if (sort_workers > 1 && sort_workers > p.exchange_workers) {
        p.exchange_workers = sort_workers;
      }
    }
    return Status::OK();
  }

  Status SpillRun() {
    SortRowsBySlots(&rows_, slots_, rt_->exec_threads);
    auto file = std::make_unique<SpillFile>();
    STARBURST_RETURN_NOT_OK(file->Create(rt_->faults));
    STARBURST_RETURN_NOT_OK(file->WriteRows(rows_));
    STARBURST_RETURN_NOT_OK(file->FinishWrite());
    if (rt_->profile != nullptr) {
      OpProfile& p = rt_->profile->at(node_);
      p.spill_runs += 1;
      p.spill_bytes += file->bytes_written();
    }
    Run run;
    run.file = std::move(file);
    runs_.push_back(std::move(run));
    rows_.clear();
    ReleaseCharge();
    return Status::OK();
  }

  Status Advance(Run* r) {
    if (!r->reading) {
      STARBURST_RETURN_NOT_OK(r->file->BeginRead());
      r->reading = true;
    }
    bool eof = false;
    STARBURST_RETURN_NOT_OK(r->file->ReadRow(&r->head, &eof));
    if (eof) r->done = true;
    return Status::OK();
  }

  bool RowLess(const Tuple& a, const Tuple& b) const {
    for (int s : slots_) {
      int c = a[static_cast<size_t>(s)].Compare(b[static_cast<size_t>(s)]);
      if (c != 0) return c < 0;
    }
    return false;
  }

  /// K-way merge over the spilled runs plus the sorted in-memory tail.
  /// Strict less with runs visited in spill order (tail last) keeps equal
  /// keys in input order — the stable_sort tie-break.
  Status MergeNext(RowBatch* out) {
    if (!merging_) {
      for (Run& r : runs_) STARBURST_RETURN_NOT_OK(Advance(&r));
      merging_ = true;
    }
    while (!BatchFull(*out, *rt_)) {
      Run* best = nullptr;
      for (Run& r : runs_) {
        if (r.done) continue;
        if (best == nullptr || RowLess(r.head, best->head)) best = &r;
      }
      bool tail_has = pos_ < rows_.size();
      if (best == nullptr && !tail_has) return Status::OK();
      // The earliest run wins ties (strict less above); the tail — the
      // latest input segment — wins only when strictly smaller.
      if (best != nullptr && (!tail_has || !RowLess(rows_[pos_], best->head))) {
        out->rows.push_back(std::move(best->head));
        best->head = Tuple();
        STARBURST_RETURN_NOT_OK(Advance(best));
      } else {
        out->rows.push_back(std::move(rows_[pos_++]));
      }
    }
    return Status::OK();
  }

  void ReleaseCharge() {
    if (charged_ > 0 && rt_->profile != nullptr) {
      rt_->profile->ReleaseBytes(node_, charged_);
    }
    charged_ = 0;
  }

  std::unique_ptr<BatchIterator> child_;
  bool compiled_ = false;
  std::vector<int> slots_;
  std::vector<Tuple> rows_;
  std::vector<Run> runs_;
  bool drained_ = false;
  bool merging_ = false;
  size_t pos_ = 0;
  int64_t charged_ = 0;
  int64_t seen_rows_ = 0;
  int64_t seen_bytes_ = 0;
};

// ---------------------------------------------------------------------------
// STORE / SHIP (identity on the stream; placement is simulated)
// ---------------------------------------------------------------------------

class StoreLikeIterator : public BatchIterator {
 public:
  StoreLikeIterator(VecRuntime* rt, const PlanOp* node, int depth,
                    std::unique_ptr<BatchIterator> child)
      : BatchIterator(rt, node, depth), child_(std::move(child)) {}

 protected:
  Status DoOpen() override {
    STARBURST_RETURN_NOT_OK(rt_->faults->Check(faultsite::kExecStoreRun));
    return child_->Open();
  }

  Status DoNext(RowBatch* out) override { return child_->Next(out); }

  Status DoClose() override { return child_->Close(); }

 private:
  std::unique_ptr<BatchIterator> child_;
};

// ---------------------------------------------------------------------------
// FILTER
// ---------------------------------------------------------------------------

class FilterIterator : public BatchIterator {
 public:
  FilterIterator(VecRuntime* rt, const PlanOp* node, int depth,
                 std::unique_ptr<BatchIterator> child)
      : BatchIterator(rt, node, depth), child_(std::move(child)) {}

 protected:
  Status DoOpen() override {
    STARBURST_RETURN_NOT_OK(child_->Open());
    if (!compiled_) {
      auto schema = VecAccess::CachedSchema(rt_->exec, *node_);
      if (!schema.ok()) return schema.status();
      CompileEnv env;
      env.schema = schema.value();
      env.frames = rt_->env;
      env.frame_limit = static_cast<size_t>(depth_);
      preds_ = PredProgram::Compile(node_->args.GetPreds(arg::kPreds),
                                    *rt_->query, env);
      if (rt_->typed_kernels) {
        KernelEnv kenv;
        kenv.schema = env.schema;
        kenv.query = rt_->query;
        kenv.db = rt_->db;
        kernel_ = KernelProgram::Compile(node_->args.GetPreds(arg::kPreds),
                                         *rt_->query, kenv);
        if (kernel_.usable()) {
          rem_preds_ =
              PredProgram::Compile(kernel_.remainder(), *rt_->query, env);
        }
      }
      compiled_ = true;
    }
    in_batch_.clear();
    in_pos_ = 0;
    return Status::OK();
  }

  Status DoNext(RowBatch* out) override {
    if (kernel_.usable()) return KernelNext(out);
    while (!BatchFull(*out, *rt_)) {
      if (in_pos_ >= in_batch_.live()) {
        STARBURST_RETURN_NOT_OK(child_->Next(&in_batch_));
        in_pos_ = 0;
        if (in_batch_.empty()) break;
      }
      Tuple& t = in_batch_.live_row(in_pos_++);
      ProgramCtx ctx{&t, rt_->env, nullptr};
      ++pred_evals_;
      auto keep = preds_.Eval(ctx);
      if (!keep.ok()) return keep.status();
      if (keep.value()) out->rows.push_back(std::move(t));
    }
    return Status::OK();
  }

  Status DoClose() override {
    if (rt_->profile != nullptr && pred_evals_ > 0) {
      OpProfile& p = rt_->profile->at(node_);
      p.pred_evals += pred_evals_;
      p.pred_steps += pred_evals_ * static_cast<int64_t>(preds_.size());
    }
    FlushKernelCounters(rt_, node_, kernel_rows_, kernel_fallbacks_,
                        kernel_.fused(), kernel_.fallback_preds());
    kernel_rows_ = 0;
    kernel_fallbacks_ = 0;
    return child_->Close();
  }

 private:
  /// Fused path: the child batch moves into `out` wholesale and the kernel's
  /// survivors become its selection vector — no tuple is copied or moved
  /// until a pipeline breaker compacts. Batches whose rows all fail are
  /// skipped (a non-empty batch must carry a live row), so exhaustion still
  /// reads as an empty batch.
  Status KernelNext(RowBatch* out) {
    const bool rem = !rem_preds_.empty();
    for (;;) {
      STARBURST_RETURN_NOT_OK(child_->Next(out));
      if (out->empty()) return Status::OK();
      const int64_t live = static_cast<int64_t>(out->live());
      hits_.clear();
      mis_.clear();
      kernel_.EvalBatch(*out, &hits_, &mis_, &kstate_);
      pred_evals_ += live;
      kernel_rows_ += live - static_cast<int64_t>(mis_.size());
      kernel_fallbacks_ += static_cast<int64_t>(mis_.size());
      if (rem) kernel_fallbacks_ += static_cast<int64_t>(hits_.size());
      if (!rem && mis_.empty()) {
        if (hits_.empty()) continue;
        out->sel.active = true;
        out->sel.idx.swap(hits_);
        return Status::OK();
      }
      // Interpreter pass over mismatch rows (full program) and kernel
      // survivors (remainder conjuncts), merged in row order so the first
      // Status error matches the row-major legacy loop.
      final_.clear();
      size_t a = 0, b = 0;
      while (a < hits_.size() || b < mis_.size()) {
        bool from_mis =
            b < mis_.size() && (a >= hits_.size() || mis_[b] < hits_[a]);
        int32_t i = from_mis ? mis_[b++] : hits_[a++];
        const Tuple& t = out->rows[static_cast<size_t>(i)];
        ProgramCtx ctx{&t, rt_->env, nullptr};
        auto keep = (from_mis ? preds_ : rem_preds_).Eval(ctx);
        if (!keep.ok()) return keep.status();
        if (keep.value()) final_.push_back(i);
      }
      if (final_.empty()) continue;
      out->sel.active = true;
      out->sel.idx.swap(final_);
      return Status::OK();
    }
  }

  std::unique_ptr<BatchIterator> child_;
  bool compiled_ = false;
  PredProgram preds_;
  KernelProgram kernel_;
  PredProgram rem_preds_;
  KernelState kstate_;
  std::vector<int32_t> hits_;
  std::vector<int32_t> mis_;
  std::vector<int32_t> final_;
  RowBatch in_batch_;
  size_t in_pos_ = 0;
  int64_t pred_evals_ = 0;
  int64_t kernel_rows_ = 0;
  int64_t kernel_fallbacks_ = 0;
};

// ---------------------------------------------------------------------------
// PROJECT (streaming; DISTINCT blocks on sort+unique)
// ---------------------------------------------------------------------------

class ProjectIterator : public BatchIterator {
 public:
  ProjectIterator(VecRuntime* rt, const PlanOp* node, int depth,
                  std::unique_ptr<BatchIterator> child)
      : BatchIterator(rt, node, depth), child_(std::move(child)) {}

 protected:
  Status DoOpen() override {
    STARBURST_RETURN_NOT_OK(child_->Open());
    if (!compiled_) {
      auto in_schema = VecAccess::CachedSchema(rt_->exec, *node_->inputs[0]);
      if (!in_schema.ok()) return in_schema.status();
      for (const ColumnRef& c : node_->args.GetColumns(arg::kCols)) {
        int s = SlotIn(*in_schema.value(), c);
        if (s < 0) return Status::NotFound("column not in stream schema");
        slots_.push_back(s);
      }
      distinct_ = node_->args.GetBool(arg::kDistinct, false);
      compiled_ = true;
    }
    in_batch_.clear();
    in_pos_ = 0;
    drained_ = false;
    rows_.clear();
    pos_ = 0;
    return Status::OK();
  }

  Status DoNext(RowBatch* out) override {
    if (distinct_) {
      if (!drained_) {
        std::vector<Tuple> in;
        STARBURST_RETURN_NOT_OK(DrainInto(child_.get(), &in));
        rows_.reserve(in.size());
        for (const Tuple& t : in) rows_.push_back(Project(t));
        std::sort(rows_.begin(), rows_.end(),
                  [](const Tuple& a, const Tuple& b) {
                    for (size_t i = 0; i < a.size(); ++i) {
                      int c = a[i].Compare(b[i]);
                      if (c != 0) return c < 0;
                    }
                    return false;
                  });
        rows_.erase(std::unique(rows_.begin(), rows_.end(),
                                [](const Tuple& a, const Tuple& b) {
                                  for (size_t i = 0; i < a.size(); ++i) {
                                    if (a[i].Compare(b[i]) != 0) return false;
                                  }
                                  return true;
                                }),
                    rows_.end());
        drained_ = true;
        if (rt_->profile != nullptr) {
          charged_ = RowsApproxBytes(rows_);
          rt_->profile->ChargeBytes(node_, charged_);
        }
      }
      while (!BatchFull(*out, *rt_) && pos_ < rows_.size()) {
        out->rows.push_back(std::move(rows_[pos_++]));
      }
      return Status::OK();
    }
    while (!BatchFull(*out, *rt_)) {
      if (in_pos_ >= in_batch_.live()) {
        STARBURST_RETURN_NOT_OK(child_->Next(&in_batch_));
        in_pos_ = 0;
        if (in_batch_.empty()) break;
      }
      out->rows.push_back(Project(in_batch_.live_row(in_pos_++)));
    }
    return Status::OK();
  }

  Status DoClose() override {
    if (charged_ > 0 && rt_->profile != nullptr) {
      rt_->profile->ReleaseBytes(node_, charged_);
      charged_ = 0;
    }
    return child_->Close();
  }

 private:
  Tuple Project(const Tuple& t) const {
    Tuple p;
    p.reserve(slots_.size());
    for (int s : slots_) p.push_back(t[static_cast<size_t>(s)]);
    return p;
  }

  std::unique_ptr<BatchIterator> child_;
  bool compiled_ = false;
  std::vector<int> slots_;
  bool distinct_ = false;
  RowBatch in_batch_;
  size_t in_pos_ = 0;
  std::vector<Tuple> rows_;
  bool drained_ = false;
  size_t pos_ = 0;
  int64_t charged_ = 0;
};

// ---------------------------------------------------------------------------
// TIDAND (blocking TID-list intersection)
// ---------------------------------------------------------------------------

class TidAndIterator : public BatchIterator {
 public:
  TidAndIterator(VecRuntime* rt, const PlanOp* node, int depth,
                 std::unique_ptr<BatchIterator> a,
                 std::unique_ptr<BatchIterator> b)
      : BatchIterator(rt, node, depth),
        a_(std::move(a)),
        b_(std::move(b)) {}

 protected:
  Status DoOpen() override {
    STARBURST_RETURN_NOT_OK(a_->Open());
    STARBURST_RETURN_NOT_OK(b_->Open());
    if (!compiled_) {
      int q = node_->props.tables().First();
      ColumnRef tid{q, ColumnRef::kTidColumn};
      for (int i = 0; i < 2; ++i) {
        auto schema = VecAccess::CachedSchema(
            rt_->exec, *node_->inputs[static_cast<size_t>(i)]);
        if (!schema.ok()) return schema.status();
        int s = SlotIn(*schema.value(), tid);
        if (s < 0) return Status::NotFound("column not in stream schema");
        slot_[i] = s;
      }
      compiled_ = true;
    }
    drained_ = false;
    rows_.clear();
    pos_ = 0;
    return Status::OK();
  }

  Status DoNext(RowBatch* out) override {
    if (!drained_) {
      auto tids_of = [this](BatchIterator* it,
                            int slot) -> Result<std::vector<int64_t>> {
        std::vector<Tuple> rows;
        STARBURST_RETURN_NOT_OK(DrainInto(it, &rows));
        std::vector<int64_t> tids;
        tids.reserve(rows.size());
        for (const Tuple& t : rows) {
          tids.push_back(t[static_cast<size_t>(slot)].AsInt());
        }
        std::sort(tids.begin(), tids.end());
        return tids;
      };
      auto ta = tids_of(a_.get(), slot_[0]);
      if (!ta.ok()) return ta.status();
      auto tb = tids_of(b_.get(), slot_[1]);
      if (!tb.ok()) return tb.status();
      std::vector<int64_t> common;
      std::set_intersection(ta.value().begin(), ta.value().end(),
                            tb.value().begin(), tb.value().end(),
                            std::back_inserter(common));
      common.erase(std::unique(common.begin(), common.end()), common.end());
      rows_.reserve(common.size());
      for (int64_t t : common) rows_.push_back(Tuple{Datum(t)});
      drained_ = true;
    }
    while (!BatchFull(*out, *rt_) && pos_ < rows_.size()) {
      out->rows.push_back(std::move(rows_[pos_++]));
    }
    return Status::OK();
  }

  Status DoClose() override {
    STARBURST_RETURN_NOT_OK(a_->Close());
    return b_->Close();
  }

 private:
  std::unique_ptr<BatchIterator> a_;
  std::unique_ptr<BatchIterator> b_;
  bool compiled_ = false;
  int slot_[2] = {-1, -1};
  std::vector<Tuple> rows_;
  bool drained_ = false;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// FILTERBY (exact semijoin; the hash table doubles as a key set)
// ---------------------------------------------------------------------------

class FilterByIterator : public BatchIterator {
 public:
  FilterByIterator(VecRuntime* rt, const PlanOp* node, int depth,
                   std::unique_ptr<BatchIterator> probe,
                   std::unique_ptr<BatchIterator> filter)
      : BatchIterator(rt, node, depth),
        probe_(std::move(probe)),
        filter_(std::move(filter)) {}

 protected:
  Status DoOpen() override {
    STARBURST_RETURN_NOT_OK(probe_->Open());
    STARBURST_RETURN_NOT_OK(filter_->Open());
    if (!compiled_) {
      auto probe_schema =
          VecAccess::CachedSchema(rt_->exec, *node_->inputs[0]);
      if (!probe_schema.ok()) return probe_schema.status();
      auto filter_schema =
          VecAccess::CachedSchema(rt_->exec, *node_->inputs[1]);
      if (!filter_schema.ok()) return filter_schema.status();
      QuantifierSet probe_tables = node_->inputs[0]->props.tables();
      CompileEnv penv;
      penv.schema = probe_schema.value();
      penv.frames = rt_->env;
      penv.frame_limit = static_cast<size_t>(depth_);
      CompileEnv fenv = penv;
      fenv.schema = filter_schema.value();
      for (int id : node_->args.GetPreds(arg::kJoinPreds).ToVector()) {
        const Predicate& p = rt_->query->predicate(id);
        bool lhs_probe = ColumnsWithin(p.lhs_columns, probe_tables);
        probe_key_.push_back(
            ExprProgram::Compile(lhs_probe ? *p.lhs : *p.rhs, penv));
        filter_key_.push_back(
            ExprProgram::Compile(lhs_probe ? *p.rhs : *p.lhs, fenv));
      }
      compiled_ = true;
    }
    built_ = false;
    ReleaseCharge();
    ht_.reset();
    in_batch_.clear();
    in_pos_ = 0;
    return Status::OK();
  }

  Status DoNext(RowBatch* out) override {
    const int width = static_cast<int>(filter_key_.size());
    if (!built_) {
      std::vector<Tuple> filter_rows;
      STARBURST_RETURN_NOT_OK(DrainInto(filter_.get(), &filter_rows));
      ht_ = std::make_unique<JoinHashTable>(width);
      STARBURST_RETURN_NOT_OK(ht_->Reserve(filter_rows.size()));
      key_buf_.resize(static_cast<size_t>(width));
      for (const Tuple& f : filter_rows) {
        ProgramCtx ctx{&f, rt_->env, nullptr};
        bool null_key = false;
        for (int k = 0; k < width; ++k) {
          auto v = filter_key_[static_cast<size_t>(k)].Eval(ctx);
          if (!v.ok()) return v.status();
          if (v.value().is_null()) null_key = true;
          key_buf_[static_cast<size_t>(k)] = std::move(v).value();
        }
        if (null_key) continue;
        STARBURST_RETURN_NOT_OK(ht_->Insert(
            key_buf_.data(), JoinHashTable::HashKey(key_buf_.data(), width),
            0));
      }
      built_ = true;
      if (rt_->profile != nullptr) {
        charged_ = ht_->ApproxBytes();
        rt_->profile->ChargeBytes(node_, charged_);
        OpProfile& p = rt_->profile->at(node_);
        p.hash_build_rows += static_cast<int64_t>(ht_->num_rows());
        p.hash_groups += static_cast<int64_t>(ht_->num_groups());
        p.hash_buckets += static_cast<int64_t>(ht_->num_slots());
        p.hash_bytes += charged_;
      }
    }
    while (!BatchFull(*out, *rt_)) {
      if (in_pos_ >= in_batch_.live()) {
        STARBURST_RETURN_NOT_OK(probe_->Next(&in_batch_));
        in_pos_ = 0;
        if (in_batch_.empty()) break;
      }
      Tuple& t = in_batch_.live_row(in_pos_++);
      ProgramCtx ctx{&t, rt_->env, nullptr};
      bool null_key = false;
      for (int k = 0; k < width; ++k) {
        auto v = probe_key_[static_cast<size_t>(k)].Eval(ctx);
        if (!v.ok()) return v.status();
        if (v.value().is_null()) null_key = true;
        key_buf_[static_cast<size_t>(k)] = std::move(v).value();
      }
      if (null_key) continue;
      ++probes_;
      if (ht_->FindGroup(key_buf_.data(),
                         JoinHashTable::HashKey(key_buf_.data(), width)) >= 0) {
        out->rows.push_back(std::move(t));
      }
    }
    return Status::OK();
  }

  Status DoClose() override {
    if (rt_->profile != nullptr) {
      ReleaseCharge();
      if (probes_ > 0) rt_->profile->at(node_).hash_probes += probes_;
    }
    STARBURST_RETURN_NOT_OK(probe_->Close());
    return filter_->Close();
  }

 private:
  void ReleaseCharge() {
    if (charged_ > 0 && rt_->profile != nullptr) {
      rt_->profile->ReleaseBytes(node_, charged_);
    }
    charged_ = 0;
  }

  std::unique_ptr<BatchIterator> probe_;
  std::unique_ptr<BatchIterator> filter_;
  bool compiled_ = false;
  std::vector<ExprProgram> probe_key_;
  std::vector<ExprProgram> filter_key_;
  std::unique_ptr<JoinHashTable> ht_;
  bool built_ = false;
  std::vector<Datum> key_buf_;
  int64_t probes_ = 0;
  int64_t charged_ = 0;
  RowBatch in_batch_;
  size_t in_pos_ = 0;
};

// ---------------------------------------------------------------------------
// JOIN(NL): sideways information passing through the shared binding frames
// ---------------------------------------------------------------------------

class NLJoinIterator : public BatchIterator {
 public:
  NLJoinIterator(VecRuntime* rt, const PlanOp* node, int depth,
                 std::unique_ptr<BatchIterator> outer,
                 std::unique_ptr<BatchIterator> inner, bool correlated)
      : BatchIterator(rt, node, depth),
        outer_(std::move(outer)),
        inner_(std::move(inner)),
        correlated_(correlated) {}

 protected:
  Status DoOpen() override {
    STARBURST_RETURN_NOT_OK(rt_->faults->Check(faultsite::kExecJoinRun));
    STARBURST_RETURN_NOT_OK(outer_->Open());
    if (!compiled_) {
      auto os = VecAccess::CachedSchema(rt_->exec, *node_->inputs[0]);
      if (!os.ok()) return os.status();
      outer_schema_ = os.value();
      auto out_schema = VecAccess::CachedSchema(rt_->exec, *node_);
      if (!out_schema.ok()) return out_schema.status();
      PredSet check = node_->args.GetPreds(arg::kJoinPreds)
                          .Union(node_->args.GetPreds(arg::kResidualPreds));
      CompileEnv env;
      env.schema = out_schema.value();
      env.frames = rt_->env;
      env.frame_limit = static_cast<size_t>(depth_);
      check_ = PredProgram::Compile(check, *rt_->query, env);
      compiled_ = true;
    }
    // This NL's binding frame lives at slot depth_ for the whole run; the
    // inner pipeline compiled its frame loads against that index.
    if (rt_->env->size() <= static_cast<size_t>(depth_)) {
      rt_->env->resize(static_cast<size_t>(depth_) + 1,
                       ExecFrame{nullptr, nullptr});
    }
    (*rt_->env)[static_cast<size_t>(depth_)] =
        ExecFrame{outer_schema_, nullptr};
    outer_batch_.clear();
    outer_pos_ = 0;
    have_row_ = false;
    cur_ = nullptr;
    inner_rows_.reset();
    inner_pos_ = 0;
    inner_batch_.clear();
    inner_batch_pos_ = 0;
    return Status::OK();
  }

  Status DoNext(RowBatch* out) override {
    std::vector<ExecFrame>& env = *rt_->env;
    for (;;) {
      if (BatchFull(*out, *rt_)) return Status::OK();
      if (!have_row_) {
        if (outer_pos_ >= outer_batch_.live()) {
          STARBURST_RETURN_NOT_OK(outer_->Next(&outer_batch_));
          outer_pos_ = 0;
          if (outer_batch_.empty()) return Status::OK();  // exhausted
        }
        cur_ = &outer_batch_.live_row(outer_pos_++);
        have_row_ = true;
        env[static_cast<size_t>(depth_)] = ExecFrame{outer_schema_, cur_};
        if (correlated_) {
          // Per-outer-row re-evaluation of the inner (the legacy interpreter
          // re-evals exactly the correlated subtrees; uncorrelated pieces
          // inside are materialize-wrapped by the builder).
          STARBURST_RETURN_NOT_OK(inner_->Open());
          inner_batch_.clear();
          inner_batch_pos_ = 0;
        } else {
          if (inner_rows_ == nullptr) {
            auto rows =
                MaterializeSubtree(rt_, *node_->inputs[1], depth_ + 1);
            if (!rows.ok()) return rows.status();
            inner_rows_ = std::move(rows).value();
          }
          inner_pos_ = 0;
        }
      } else {
        // Resuming mid-row (batch boundary or after a sibling NL at the same
        // nesting depth ran): re-assert this join's binding.
        env[static_cast<size_t>(depth_)] = ExecFrame{outer_schema_, cur_};
      }
      if (correlated_) {
        for (;;) {
          if (BatchFull(*out, *rt_)) return Status::OK();
          if (inner_batch_pos_ >= inner_batch_.live()) {
            STARBURST_RETURN_NOT_OK(inner_->Next(&inner_batch_));
            inner_batch_pos_ = 0;
            if (inner_batch_.empty()) {
              have_row_ = false;
              break;
            }
          }
          STARBURST_RETURN_NOT_OK(
              EmitJoinPair(*cur_, inner_batch_.live_row(inner_batch_pos_++),
                           check_, rt_, out));
        }
      } else {
        const std::vector<Tuple>& inner = *inner_rows_;
        while (inner_pos_ < inner.size()) {
          if (BatchFull(*out, *rt_)) return Status::OK();
          STARBURST_RETURN_NOT_OK(
              EmitJoinPair(*cur_, inner[inner_pos_++], check_, rt_, out));
        }
        have_row_ = false;
      }
    }
  }

  Status DoClose() override {
    STARBURST_RETURN_NOT_OK(outer_->Close());
    if (inner_ != nullptr) return inner_->Close();
    return Status::OK();
  }

 private:
  std::unique_ptr<BatchIterator> outer_;
  std::unique_ptr<BatchIterator> inner_;  // correlated inners only
  bool correlated_;
  bool compiled_ = false;
  const Schema* outer_schema_ = nullptr;
  PredProgram check_;
  RowBatch outer_batch_;
  size_t outer_pos_ = 0;
  bool have_row_ = false;
  const Tuple* cur_ = nullptr;
  RowsPtr inner_rows_;  // uncorrelated inner, materialized once
  size_t inner_pos_ = 0;
  RowBatch inner_batch_;  // correlated inner, streamed per outer row
  size_t inner_batch_pos_ = 0;
};

// ---------------------------------------------------------------------------
// JOIN(MG): streams both sorted inputs; equal-key groups cross-product
// ---------------------------------------------------------------------------

class MergeJoinIterator : public BatchIterator {
 public:
  MergeJoinIterator(VecRuntime* rt, const PlanOp* node, int depth,
                    std::unique_ptr<BatchIterator> outer,
                    std::unique_ptr<BatchIterator> inner)
      : BatchIterator(rt, node, depth),
        outer_(std::move(outer)),
        inner_(std::move(inner)) {}

 protected:
  Status DoOpen() override {
    STARBURST_RETURN_NOT_OK(rt_->faults->Check(faultsite::kExecJoinRun));
    STARBURST_RETURN_NOT_OK(outer_->Open());
    STARBURST_RETURN_NOT_OK(inner_->Open());
    if (!compiled_) {
      auto os = VecAccess::CachedSchema(rt_->exec, *node_->inputs[0]);
      if (!os.ok()) return os.status();
      auto is = VecAccess::CachedSchema(rt_->exec, *node_->inputs[1]);
      if (!is.ok()) return is.status();
      auto out_schema = VecAccess::CachedSchema(rt_->exec, *node_);
      if (!out_schema.ok()) return out_schema.status();
      PredSet join_preds = node_->args.GetPreds(arg::kJoinPreds);
      PredSet check = join_preds.Union(
          node_->args.GetPreds(arg::kResidualPreds));
      // Merge keys: leading pairs of the two inputs' sort orders connected
      // by equality join predicates; those predicates are enforced by the
      // key match itself and drop out of the compiled residual check.
      SortOrder oorder = node_->inputs[0]->props.order();
      SortOrder iorder = node_->inputs[1]->props.order();
      PredSet enforced;
      size_t key_depth = std::min(oorder.size(), iorder.size());
      for (size_t k = 0; k < key_depth; ++k) {
        int linked = -1;
        for (int id : join_preds.ToVector()) {
          const Predicate& p = rt_->query->predicate(id);
          if (p.op != CompareOp::kEq || !p.lhs->IsBareColumn() ||
              !p.rhs->IsBareColumn()) {
            continue;
          }
          ColumnRef a = p.lhs->column(), b = p.rhs->column();
          if ((a == oorder[k] && b == iorder[k]) ||
              (b == oorder[k] && a == iorder[k])) {
            linked = id;
            break;
          }
        }
        if (linked < 0) break;
        int oslot = SlotIn(*os.value(), oorder[k]);
        int islot = SlotIn(*is.value(), iorder[k]);
        if (oslot < 0 || islot < 0) break;
        oslots_.push_back(oslot);
        islots_.push_back(islot);
        enforced = enforced.Union(PredSet::Single(linked));
      }
      degrade_ = oslots_.empty();
      CompileEnv env;
      env.schema = out_schema.value();
      env.frames = rt_->env;
      env.frame_limit = static_cast<size_t>(depth_);
      check_ = PredProgram::Compile(
          degrade_ ? check : check.Minus(enforced), *rt_->query, env);
      compiled_ = true;
    }
    oreader_.Reset(outer_.get());
    ireader_.Reset(inner_.get());
    emitting_ = false;
    ogroup_.clear();
    igroup_.clear();
    gi_ = gj_ = 0;
    drained_ = false;
    dorows_.clear();
    dirows_.clear();
    di_ = dj_ = 0;
    return Status::OK();
  }

  Status DoNext(RowBatch* out) override {
    if (degrade_) return DegradeNext(out);
    for (;;) {
      if (BatchFull(*out, *rt_)) return Status::OK();
      if (emitting_) {
        while (gi_ < ogroup_.size()) {
          while (gj_ < igroup_.size()) {
            if (BatchFull(*out, *rt_)) return Status::OK();
            STARBURST_RETURN_NOT_OK(
                EmitJoinPair(ogroup_[gi_], igroup_[gj_], check_, rt_, out));
            ++gj_;
          }
          gj_ = 0;
          ++gi_;
        }
        emitting_ = false;
      }
      // Advance both sides past NULL keys (SQL: NULL keys never match) to
      // the next comparable pair.
      const Tuple* o = nullptr;
      for (;;) {
        STARBURST_RETURN_NOT_OK(oreader_.Peek(&o));
        if (o == nullptr || !HasNullKey(*o, oslots_)) break;
        oreader_.Advance();
      }
      if (o == nullptr) return Status::OK();  // exhausted
      const Tuple* i = nullptr;
      for (;;) {
        STARBURST_RETURN_NOT_OK(ireader_.Peek(&i));
        if (i == nullptr || !HasNullKey(*i, islots_)) break;
        ireader_.Advance();
      }
      if (i == nullptr) return Status::OK();
      int c = KeyCmp(*o, *i);
      if (c < 0) {
        oreader_.Advance();
        continue;
      }
      if (c > 0) {
        ireader_.Advance();
        continue;
      }
      // Equal keys: buffer both groups, then cross-product (resumable).
      key_.clear();
      for (int s : oslots_) key_.push_back((*o)[static_cast<size_t>(s)]);
      ogroup_.clear();
      for (;;) {
        ogroup_.push_back(*o);
        oreader_.Advance();
        STARBURST_RETURN_NOT_OK(oreader_.Peek(&o));
        if (o == nullptr || HasNullKey(*o, oslots_) ||
            !KeyEquals(*o, oslots_)) {
          break;
        }
      }
      igroup_.clear();
      for (;;) {
        igroup_.push_back(*i);
        ireader_.Advance();
        STARBURST_RETURN_NOT_OK(ireader_.Peek(&i));
        if (i == nullptr || HasNullKey(*i, islots_) ||
            !KeyEquals(*i, islots_)) {
          break;
        }
      }
      gi_ = gj_ = 0;
      emitting_ = true;
    }
  }

 private:
  static bool HasNullKey(const Tuple& t, const std::vector<int>& slots) {
    for (int s : slots) {
      if (t[static_cast<size_t>(s)].is_null()) return true;
    }
    return false;
  }
  int KeyCmp(const Tuple& o, const Tuple& i) const {
    for (size_t k = 0; k < oslots_.size(); ++k) {
      int c = o[static_cast<size_t>(oslots_[k])].Compare(
          i[static_cast<size_t>(islots_[k])]);
      if (c != 0) return c;
    }
    return 0;
  }
  bool KeyEquals(const Tuple& t, const std::vector<int>& slots) const {
    for (size_t k = 0; k < slots.size(); ++k) {
      if (t[static_cast<size_t>(slots[k])].Compare(key_[k]) != 0) {
        return false;
      }
    }
    return true;
  }

  // No mergeable equality key: degrade to pairing with full predicate
  // evaluation (still correct; the rule set avoids generating this).
  Status DegradeNext(RowBatch* out) {
    if (!drained_) {
      STARBURST_RETURN_NOT_OK(DrainInto(outer_.get(), &dorows_));
      STARBURST_RETURN_NOT_OK(DrainInto(inner_.get(), &dirows_));
      drained_ = true;
    }
    if (dirows_.empty()) return Status::OK();
    while (di_ < dorows_.size()) {
      if (BatchFull(*out, *rt_)) return Status::OK();
      STARBURST_RETURN_NOT_OK(
          EmitJoinPair(dorows_[di_], dirows_[dj_], check_, rt_, out));
      if (++dj_ >= dirows_.size()) {
        dj_ = 0;
        ++di_;
      }
    }
    return Status::OK();
  }

 protected:
  Status DoClose() override {
    STARBURST_RETURN_NOT_OK(outer_->Close());
    return inner_->Close();
  }

 private:
  std::unique_ptr<BatchIterator> outer_;
  std::unique_ptr<BatchIterator> inner_;
  bool compiled_ = false;
  std::vector<int> oslots_, islots_;
  bool degrade_ = false;
  PredProgram check_;
  BatchReader oreader_, ireader_;
  // Equal-key group state.
  std::vector<Datum> key_;
  std::vector<Tuple> ogroup_, igroup_;
  size_t gi_ = 0, gj_ = 0;
  bool emitting_ = false;
  // Degrade-mode state.
  bool drained_ = false;
  std::vector<Tuple> dorows_, dirows_;
  size_t di_ = 0, dj_ = 0;
};

// ---------------------------------------------------------------------------
// JOIN(HA): open-addressing build side, streamed probe side
// ---------------------------------------------------------------------------

class HashJoinIterator : public BatchIterator {
 public:
  /// `exchange_ok` (builder-computed: exec_threads > 1, depth 0, not in a
  /// re-opened subtree) selects the partitioned build + probe-morsel path;
  /// its output is bit-identical to the streaming path.
  HashJoinIterator(VecRuntime* rt, const PlanOp* node, int depth,
                   std::unique_ptr<BatchIterator> outer,
                   std::unique_ptr<BatchIterator> inner, bool exchange_ok)
      : BatchIterator(rt, node, depth),
        outer_(std::move(outer)),
        inner_(std::move(inner)),
        exchange_ok_(exchange_ok) {}

 protected:
  Status DoOpen() override {
    STARBURST_RETURN_NOT_OK(rt_->faults->Check(faultsite::kExecJoinRun));
    STARBURST_RETURN_NOT_OK(outer_->Open());
    STARBURST_RETURN_NOT_OK(inner_->Open());
    if (!compiled_) {
      auto os = VecAccess::CachedSchema(rt_->exec, *node_->inputs[0]);
      if (!os.ok()) return os.status();
      auto is = VecAccess::CachedSchema(rt_->exec, *node_->inputs[1]);
      if (!is.ok()) return is.status();
      auto out_schema = VecAccess::CachedSchema(rt_->exec, *node_);
      if (!out_schema.ok()) return out_schema.status();
      PredSet join_preds = node_->args.GetPreds(arg::kJoinPreds);
      PredSet check = join_preds.Union(
          node_->args.GetPreds(arg::kResidualPreds));
      QuantifierSet ot = node_->inputs[0]->props.tables();
      QuantifierSet it = node_->inputs[1]->props.tables();
      CompileEnv oenv;
      oenv.schema = os.value();
      oenv.frames = rt_->env;
      oenv.frame_limit = static_cast<size_t>(depth_);
      CompileEnv ienv = oenv;
      ienv.schema = is.value();
      PredSet enforced;
      const Expr* okey_expr = nullptr;
      const Expr* ikey_expr = nullptr;
      for (int id : join_preds.ToVector()) {
        const Predicate& p = rt_->query->predicate(id);
        if (!IsHashable(p, ot, it)) continue;
        bool lhs_outer = ColumnsWithin(p.lhs_columns, ot);
        outer_key_.push_back(
            ExprProgram::Compile(lhs_outer ? *p.lhs : *p.rhs, oenv));
        inner_key_.push_back(
            ExprProgram::Compile(lhs_outer ? *p.rhs : *p.lhs, ienv));
        okey_expr = lhs_outer ? p.lhs.get() : p.rhs.get();
        ikey_expr = lhs_outer ? p.rhs.get() : p.lhs.get();
        enforced = enforced.Union(PredSet::Single(id));
      }
      // Width-1 keys whose expressions lower to a pure int64 loop skip the
      // Datum interpreter on both build and probe; the hash is bit-identical
      // to JoinHashTable::HashKey over the equivalent Datum.
      if (rt_->typed_kernels && outer_key_.size() == 1) {
        KernelEnv kenv;
        kenv.query = rt_->query;
        kenv.db = rt_->db;
        kenv.schema = os.value();
        okk_ = KeyKernel::Compile(*okey_expr, *rt_->query, kenv);
        kenv.schema = is.value();
        ikk_ = KeyKernel::Compile(*ikey_expr, *rt_->query, kenv);
        typed_keys_ = okk_.usable() && ikk_.usable();
      }
      degrade_ = outer_key_.empty();
      CompileEnv env;
      env.schema = out_schema.value();
      env.frames = rt_->env;
      env.frame_limit = static_cast<size_t>(depth_);
      check_ = PredProgram::Compile(
          degrade_ ? check : check.Minus(enforced), *rt_->query, env);
      compiled_ = true;
    }
    built_ = false;
    ReleaseCharge();
    build_rows_.clear();
    ht_.reset();
    chain_ = -1;
    cur_ = nullptr;
    outer_batch_.clear();
    outer_pos_ = 0;
    drained_ = false;
    dorows_.clear();
    di_ = dj_ = 0;
    pt_.reset();
    probe_rows_.clear();
    pmorsel_out_.clear();
    probed_ = false;
    pemit_morsel_ = 0;
    pemit_pos_ = 0;
    grace_ = false;
    grace_done_ = false;
    gmerge_init_ = false;
    for (auto& f : opart_) f.reset();
    spill_runs_ = 0;
    spill_bytes_ = 0;
    return Status::OK();
  }

  Status DoNext(RowBatch* out) override {
    if (degrade_) return DegradeNext(out);
    if (grace_) return GraceNext(out);
    if (exchange_ok_) return ParallelNext(out);
    const int width = static_cast<int>(inner_key_.size());
    if (!built_) {
      STARBURST_RETURN_NOT_OK(DrainBuildSide());
      if (grace_) return GraceNext(out);
      ht_ = std::make_unique<JoinHashTable>(width);
      STARBURST_RETURN_NOT_OK(ht_->Reserve(build_rows_.size()));
      key_buf_.resize(static_cast<size_t>(width));
      for (size_t r = 0; r < build_rows_.size(); ++r) {
        if (typed_keys_) {
          int64_t kv = 0;
          bool kn = false;
          if (ikk_.EvalInt(build_rows_[r], &kv, &kn)) {
            ++kernel_rows_;
            if (kn) continue;  // NULL keys never match: row skipped
            key_buf_[0] = Datum(kv);
            STARBURST_RETURN_NOT_OK(ht_->Insert(
                key_buf_.data(), HashInt64JoinKey(kv),
                static_cast<uint32_t>(r)));
            continue;
          }
          ++kernel_fallbacks_;  // type-mismatch row: generic key eval below
        }
        ProgramCtx ctx{&build_rows_[r], rt_->env, nullptr};
        bool null_key = false;
        for (int k = 0; k < width; ++k) {
          auto v = inner_key_[static_cast<size_t>(k)].Eval(ctx);
          if (!v.ok()) return v.status();
          if (v.value().is_null()) null_key = true;
          key_buf_[static_cast<size_t>(k)] = std::move(v).value();
        }
        if (null_key) continue;  // NULL keys never match: row skipped
        STARBURST_RETURN_NOT_OK(ht_->Insert(
            key_buf_.data(), JoinHashTable::HashKey(key_buf_.data(), width),
            static_cast<uint32_t>(r)));
      }
      built_ = true;
      if (rt_->profile != nullptr) {
        // The build side holds both the materialized rows (charged by
        // DrainBuildSide) and the table structure for the probe phase.
        int64_t ht_bytes = ht_->ApproxBytes();
        charged_ += ht_bytes;
        rt_->profile->ChargeBytes(node_, ht_bytes);
        OpProfile& p = rt_->profile->at(node_);
        p.hash_build_rows += static_cast<int64_t>(build_rows_.size());
        p.hash_groups += static_cast<int64_t>(ht_->num_groups());
        p.hash_buckets += static_cast<int64_t>(ht_->num_slots());
        p.hash_bytes += ht_bytes;
      }
    }
    for (;;) {
      if (BatchFull(*out, *rt_)) return Status::OK();
      if (chain_ >= 0) {
        const Tuple& b = build_rows_[ht_->EntryRow(chain_)];
        STARBURST_RETURN_NOT_OK(EmitJoinPair(*cur_, b, check_, rt_, out));
        chain_ = ht_->NextEntry(chain_);
        ++chain_steps_;
        continue;
      }
      if (outer_pos_ >= outer_batch_.live()) {
        STARBURST_RETURN_NOT_OK(outer_->Next(&outer_batch_));
        outer_pos_ = 0;
        if (outer_batch_.empty()) return Status::OK();  // exhausted
        if (typed_keys_) PrecomputeOuterKeys();
      }
      size_t opos = outer_pos_;
      cur_ = &outer_batch_.live_row(outer_pos_++);
      uint64_t h = 0;
      bool have_key = false;
      if (typed_keys_) {
        // The whole batch's keys and hashes are already computed, so the
        // probe a few rows ahead can warm its slot line while this one runs.
        constexpr size_t kProbeAhead = 8;
        if (opos + kProbeAhead < okind_.size() &&
            okind_[opos + kProbeAhead] == kOuterTyped) {
          ht_->Prefetch(ohash_[opos + kProbeAhead]);
        }
        if (okind_[opos] == kOuterNull) continue;
        if (okind_[opos] == kOuterTyped) {
          h = ohash_[opos];
          have_key = true;
        }
      }
      if (!have_key) {
        ProgramCtx ctx{cur_, rt_->env, nullptr};
        bool null_key = false;
        for (int k = 0; k < width; ++k) {
          auto v = outer_key_[static_cast<size_t>(k)].Eval(ctx);
          if (!v.ok()) return v.status();
          if (v.value().is_null()) null_key = true;
          key_buf_[static_cast<size_t>(k)] = std::move(v).value();
        }
        if (null_key) continue;
        h = JoinHashTable::HashKey(key_buf_.data(), width);
      }
      ++probes_;
      int32_t g = have_key ? ht_->FindGroupInt(okeys_[opos], h)
                           : ht_->FindGroup(key_buf_.data(), h);
      if (g >= 0) chain_ = ht_->GroupHead(g);
    }
  }

  Status DoClose() override {
    if (rt_->profile != nullptr) {
      ReleaseCharge();
      if (probes_ > 0 || chain_steps_ > 0) {
        OpProfile& p = rt_->profile->at(node_);
        p.hash_probes += probes_;
        p.hash_chain_steps += chain_steps_;
      }
      if (workers_used_ > 1) {
        OpProfile& p = rt_->profile->at(node_);
        if (workers_used_ > p.exchange_workers) {
          p.exchange_workers = workers_used_;
        }
      }
    }
    FlushKernelCounters(rt_, node_, kernel_rows_, kernel_fallbacks_,
                        typed_keys_ ? 1 : 0, 0);
    kernel_rows_ = 0;
    kernel_fallbacks_ = 0;
    for (auto& f : opart_) f.reset();
    STARBURST_RETURN_NOT_OK(outer_->Close());
    return inner_->Close();
  }

 private:
  void ReleaseCharge() {
    if (charged_ > 0 && rt_->profile != nullptr) {
      rt_->profile->ReleaseBytes(node_, charged_);
    }
    charged_ = 0;
  }

  /// Drains the build side, charges its bytes, and decides whether this
  /// join must go to the Grace partition-spill path: the governor's memory
  /// budget is set, already exceeded, and there is a build side to shed.
  /// The decision is coordinator-only and happens before any table is
  /// built, so the streaming/parallel in-memory paths stay untouched when
  /// memory is plentiful.
  Status DrainBuildSide() {
    STARBURST_RETURN_NOT_OK(DrainInto(inner_.get(), &build_rows_));
    if (rt_->profile != nullptr) {
      charged_ = RowsApproxBytes(build_rows_);
      rt_->profile->ChargeBytes(node_, charged_);
    }
    if (rt_->governor != nullptr && !build_rows_.empty() &&
        rt_->governor->ShouldSpill()) {
      grace_ = true;
    }
    return Status::OK();
  }

  /// Exchange path: partitioned build (global-row-order chains), drained
  /// outer, probe morsels into per-morsel buffers, emission in morsel order.
  /// Every observable — row order, rows/batches out, probes, chain steps,
  /// build rows, groups — matches the streaming path; only partition-layout
  /// detail (buckets, bytes) differs.
  Status ParallelNext(RowBatch* out) {
    const int width = static_cast<int>(inner_key_.size());
    if (!built_) {
      STARBURST_RETURN_NOT_OK(DrainBuildSide());
      if (grace_) return GraceNext(out);
      pt_ = std::make_unique<PartitionedJoinTable>(width);
      STARBURST_RETURN_NOT_OK(
          pt_->Build(build_rows_, inner_key_, rt_->env, rt_->exec_threads,
                     rt_->governor, typed_keys_ ? &ikk_ : nullptr,
                     &kernel_rows_, &kernel_fallbacks_));
      built_ = true;
      if (pt_->build_workers() > workers_used_) {
        workers_used_ = pt_->build_workers();
      }
      if (rt_->profile != nullptr) {
        int64_t pt_bytes = pt_->ApproxBytes();
        charged_ += pt_bytes;
        rt_->profile->ChargeBytes(node_, pt_bytes);
        OpProfile& p = rt_->profile->at(node_);
        p.hash_build_rows += static_cast<int64_t>(build_rows_.size());
        p.hash_groups += static_cast<int64_t>(pt_->num_groups());
        p.hash_buckets += static_cast<int64_t>(pt_->num_slots());
        p.hash_bytes += pt_bytes;
      }
    }
    if (!probed_) {
      // The drained outer is pipeline transport (like RowBatches), not
      // operator state — it is not charged to the tracker.
      STARBURST_RETURN_NOT_OK(DrainInto(outer_.get(), &probe_rows_));
      size_t n = probe_rows_.size();
      size_t morsels = MorselCount(n);
      int workers = ExchangeWorkersFor(rt_->exec_threads, n, morsels);
      pmorsel_out_.assign(morsels, {});
      std::vector<int64_t> probes(morsels, 0);
      std::vector<int64_t> chains(morsels, 0);
      std::vector<int64_t> krows(morsels, 0);
      std::vector<int64_t> kfalls(morsels, 0);
      STARBURST_RETURN_NOT_OK(RunMorsels(workers, morsels, [&](size_t m) {
        size_t lo = m * kMorselRows;
        size_t hi = std::min(n, lo + kMorselRows);
        std::vector<Datum> kb(static_cast<size_t>(width));
        RowBatch local;
        for (size_t r = lo; r < hi; ++r) {
          const Tuple& o = probe_rows_[r];
          uint64_t h = 0;
          bool have_key = false;
          if (typed_keys_) {
            int64_t kv = 0;
            bool kn = false;
            if (okk_.EvalInt(o, &kv, &kn)) {
              ++krows[m];
              if (kn) continue;
              kb[0] = Datum(kv);
              h = HashInt64JoinKey(kv);
              have_key = true;
            } else {
              ++kfalls[m];
            }
          }
          if (!have_key) {
            ProgramCtx ctx{&o, rt_->env, nullptr};
            bool null_key = false;
            for (int k = 0; k < width; ++k) {
              auto v = outer_key_[static_cast<size_t>(k)].Eval(ctx);
              if (!v.ok()) return v.status();
              if (v.value().is_null()) null_key = true;
              kb[static_cast<size_t>(k)] = std::move(v).value();
            }
            if (null_key) continue;
            h = JoinHashTable::HashKey(kb.data(), width);
          }
          ++probes[m];
          const JoinHashTable& table = pt_->partition(h);
          int32_t g = table.FindGroup(kb.data(), h);
          if (g < 0) continue;
          for (int32_t e = table.GroupHead(g); e >= 0;
               e = table.NextEntry(e)) {
            STARBURST_RETURN_NOT_OK(
                EmitJoinPair(o, build_rows_[table.EntryRow(e)], check_, rt_,
                             &local));
            ++chains[m];
          }
        }
        pmorsel_out_[m] = std::move(local.rows);
        return Status::OK();
      }, rt_->governor));
      for (int64_t v : probes) probes_ += v;
      for (int64_t v : chains) chain_steps_ += v;
      for (int64_t v : krows) kernel_rows_ += v;
      for (int64_t v : kfalls) kernel_fallbacks_ += v;
      if (workers > workers_used_) workers_used_ = workers;
      probed_ = true;
      pemit_morsel_ = 0;
      pemit_pos_ = 0;
    }
    while (!BatchFull(*out, *rt_) && pemit_morsel_ < pmorsel_out_.size()) {
      std::vector<Tuple>& rows = pmorsel_out_[pemit_morsel_];
      if (pemit_pos_ >= rows.size()) {
        rows.clear();
        rows.shrink_to_fit();
        ++pemit_morsel_;
        pemit_pos_ = 0;
        continue;
      }
      out->rows.push_back(std::move(rows[pemit_pos_++]));
    }
    return Status::OK();
  }

  Status DegradeNext(RowBatch* out) {
    if (!drained_) {
      STARBURST_RETURN_NOT_OK(DrainInto(outer_.get(), &dorows_));
      STARBURST_RETURN_NOT_OK(DrainInto(inner_.get(), &build_rows_));
      drained_ = true;
    }
    if (build_rows_.empty()) return Status::OK();
    while (di_ < dorows_.size()) {
      if (BatchFull(*out, *rt_)) return Status::OK();
      STARBURST_RETURN_NOT_OK(
          EmitJoinPair(dorows_[di_], build_rows_[dj_], check_, rt_, out));
      if (++dj_ >= build_rows_.size()) {
        dj_ = 0;
        ++di_;
      }
    }
    return Status::OK();
  }

  // -------------------------------------------------------------------------
  // Grace partition-spill path (memory budget exceeded at build time).
  //
  // Both sides are hash-partitioned to temp files on the key's high bits
  // (the same bits PartitionedJoinTable uses, so a key group lands wholly in
  // one partition), then partitions are joined one at a time: only 1/16th of
  // the build side plus one table is ever in memory. Probe rows carry their
  // global arrival index through the files; the final 16-way merge on that
  // index restores exactly the streaming emission order (probe-row major,
  // build-chain order within a row — chains stay in global build order
  // because partition files are written in global row order). Output is
  // therefore bit-identical to the in-memory paths at every threshold,
  // batch size, and exec thread count. All spill I/O runs on the
  // coordinator, keeping fault-site hit order deterministic.
  // -------------------------------------------------------------------------

  static constexpr size_t kGraceParts = 16;
  static constexpr size_t kSpillFlushRows = 256;

  static size_t GracePartition(uint64_t hash) {
    return static_cast<size_t>(hash >> 60) & (kGraceParts - 1);
  }

  /// Key evaluation for the Grace loops: the typed kernel first — the same
  /// fast path the in-memory build and probe take — with the generic
  /// interpreter on type-mismatch fallback. Fills key_buf_, stores the key's
  /// hash in *hash (unset for NULL keys, which every caller skips), and
  /// returns whether any key column was NULL.
  Result<bool> GraceKeyHash(const std::vector<ExprProgram>& progs,
                            const KeyKernel& kk, const Tuple& row, int width,
                            uint64_t* hash) {
    if (typed_keys_) {
      int64_t kv = 0;
      bool kn = false;
      if (kk.EvalInt(row, &kv, &kn)) {
        ++kernel_rows_;
        if (kn) return true;
        key_buf_[0] = Datum(kv);
        *hash = HashInt64JoinKey(kv);
        return false;
      }
      ++kernel_fallbacks_;
    }
    auto null_key = EvalKey(progs, row);
    if (!null_key.ok()) return null_key.status();
    if (!null_key.value()) {
      *hash = JoinHashTable::HashKey(key_buf_.data(), width);
    }
    return null_key.value();
  }

  /// Evaluates `progs` over `row` into key_buf_; returns whether any key
  /// column was NULL.
  Result<bool> EvalKey(const std::vector<ExprProgram>& progs,
                       const Tuple& row) {
    ProgramCtx ctx{&row, rt_->env, nullptr};
    bool null_key = false;
    for (size_t k = 0; k < progs.size(); ++k) {
      auto v = progs[k].Eval(ctx);
      if (!v.ok()) return v.status();
      if (v.value().is_null()) null_key = true;
      key_buf_[k] = std::move(v).value();
    }
    return null_key;
  }

  /// Flushes `buf` into `*file`, creating the temp file on first use.
  Status FlushPart(std::unique_ptr<SpillFile>* file, std::vector<Tuple>* buf) {
    if (buf->empty()) return Status::OK();
    if (*file == nullptr) {
      *file = std::make_unique<SpillFile>();
      STARBURST_RETURN_NOT_OK((*file)->Create(rt_->faults));
    }
    STARBURST_RETURN_NOT_OK((*file)->WriteRows(*buf));
    buf->clear();
    return Status::OK();
  }

  /// Seals one partition file and folds it into the spill statistics.
  Status FinishSpill(SpillFile* f) {
    if (f == nullptr) return Status::OK();
    STARBURST_RETURN_NOT_OK(f->FinishWrite());
    ++spill_runs_;
    spill_bytes_ += f->bytes_written();
    return Status::OK();
  }

  Status GraceNext(RowBatch* out) {
    if (!grace_done_) STARBURST_RETURN_NOT_OK(GraceRun());
    if (!gmerge_init_) {
      for (size_t p = 0; p < kGraceParts; ++p) {
        ghead_done_[p] = true;
        if (opart_[p] == nullptr) continue;
        STARBURST_RETURN_NOT_OK(opart_[p]->BeginRead());
        ghead_done_[p] = false;
        STARBURST_RETURN_NOT_OK(GraceAdvance(p));
      }
      gmerge_init_ = true;
    }
    while (!BatchFull(*out, *rt_)) {
      int best = -1;
      for (size_t p = 0; p < kGraceParts; ++p) {
        if (ghead_done_[p]) continue;
        if (best < 0 ||
            ghead_[p][0].AsInt() < ghead_[static_cast<size_t>(best)][0].AsInt()) {
          best = static_cast<int>(p);
        }
      }
      if (best < 0) return Status::OK();  // all partitions drained
      Tuple& h = ghead_[static_cast<size_t>(best)];
      out->rows.push_back(Tuple(std::make_move_iterator(h.begin() + 1),
                                std::make_move_iterator(h.end())));
      STARBURST_RETURN_NOT_OK(GraceAdvance(static_cast<size_t>(best)));
    }
    return Status::OK();
  }

  Status GraceAdvance(size_t p) {
    bool eof = false;
    STARBURST_RETURN_NOT_OK(opart_[p]->ReadRow(&ghead_[p], &eof));
    if (eof) {
      ghead_done_[p] = true;
      opart_[p].reset();  // done with this partition: unlink immediately
    }
    return Status::OK();
  }

  Status GraceRun() {
    const int width = static_cast<int>(inner_key_.size());
    key_buf_.resize(static_cast<size_t>(width));
    const int64_t build_total = static_cast<int64_t>(build_rows_.size());

    // Phase 1: shed the build side to one temp file per partition, in
    // global row order.
    std::array<std::unique_ptr<SpillFile>, kGraceParts> bpart;
    {
      std::array<std::vector<Tuple>, kGraceParts> buf;
      for (size_t r = 0; r < build_rows_.size(); ++r) {
        uint64_t h = 0;
        auto null_key = GraceKeyHash(inner_key_, ikk_, build_rows_[r], width,
                                     &h);
        if (!null_key.ok()) return null_key.status();
        if (null_key.value()) continue;  // NULL keys never match: row skipped
        size_t p = GracePartition(h);
        buf[p].push_back(build_rows_[r]);
        if (buf[p].size() >= kSpillFlushRows) {
          STARBURST_RETURN_NOT_OK(FlushPart(&bpart[p], &buf[p]));
        }
      }
      for (size_t p = 0; p < kGraceParts; ++p) {
        STARBURST_RETURN_NOT_OK(FlushPart(&bpart[p], &buf[p]));
        STARBURST_RETURN_NOT_OK(FinishSpill(bpart[p].get()));
      }
    }
    // The build rows now live on disk; release the in-memory copy — the
    // entire point of spilling.
    build_rows_.clear();
    build_rows_.shrink_to_fit();
    ReleaseCharge();

    // Phase 2: stream the probe side into the same partitions, each row
    // prefixed with its global arrival index (Datum int64) so emission
    // order can be reconstructed after the per-partition joins.
    std::array<std::unique_ptr<SpillFile>, kGraceParts> ppart;
    {
      std::array<std::vector<Tuple>, kGraceParts> buf;
      RowBatch b;
      int64_t idx = 0;
      for (;;) {
        STARBURST_RETURN_NOT_OK(outer_->Next(&b));
        if (b.empty()) break;
        for (Tuple& o : b.rows) {
          int64_t my_idx = idx++;
          uint64_t h = 0;
          auto null_key = GraceKeyHash(outer_key_, okk_, o, width, &h);
          if (!null_key.ok()) return null_key.status();
          if (null_key.value()) continue;
          ++probes_;
          size_t p = GracePartition(h);
          Tuple row;
          row.reserve(o.size() + 1);
          row.push_back(Datum(my_idx));
          for (Datum& d : o) row.push_back(std::move(d));
          buf[p].push_back(std::move(row));
          if (buf[p].size() >= kSpillFlushRows) {
            STARBURST_RETURN_NOT_OK(FlushPart(&ppart[p], &buf[p]));
          }
        }
      }
      for (size_t p = 0; p < kGraceParts; ++p) {
        STARBURST_RETURN_NOT_OK(FlushPart(&ppart[p], &buf[p]));
        STARBURST_RETURN_NOT_OK(FinishSpill(ppart[p].get()));
      }
    }

    // Phase 3: join one partition at a time; matches go to a per-partition
    // output file, still index-prefixed.
    for (size_t p = 0; p < kGraceParts; ++p) {
      STARBURST_RETURN_NOT_OK(
          GraceJoinPartition(width, bpart[p].get(), ppart[p].get(),
                             &opart_[p]));
      bpart[p].reset();  // free the temp file and its descriptor eagerly
      ppart[p].reset();
      STARBURST_RETURN_NOT_OK(FinishSpill(opart_[p].get()));
    }

    if (rt_->profile != nullptr) {
      OpProfile& prof = rt_->profile->at(node_);
      prof.hash_build_rows += build_total;
      prof.spill_runs += spill_runs_;
      prof.spill_bytes += spill_bytes_;
    }
    grace_done_ = true;
    return Status::OK();
  }

  Status GraceJoinPartition(int width, SpillFile* bfile, SpillFile* pfile,
                            std::unique_ptr<SpillFile>* ofile) {
    // A partition with no probes emits nothing; one with no build rows can
    // match nothing. Either way there is no work.
    if (bfile == nullptr || pfile == nullptr) return Status::OK();
    std::vector<Tuple> prows;
    STARBURST_RETURN_NOT_OK(bfile->BeginRead());
    for (;;) {
      Tuple row;
      bool eof = false;
      STARBURST_RETURN_NOT_OK(bfile->ReadRow(&row, &eof));
      if (eof) break;
      prows.push_back(std::move(row));
    }
    JoinHashTable table(width);
    STARBURST_RETURN_NOT_OK(table.Reserve(prows.size()));
    for (size_t r = 0; r < prows.size(); ++r) {
      uint64_t h = 0;
      auto null_key = GraceKeyHash(inner_key_, ikk_, prows[r], width, &h);
      if (!null_key.ok()) return null_key.status();
      // Null-key rows never reached the partition files.
      STARBURST_RETURN_NOT_OK(
          table.Insert(key_buf_.data(), h, static_cast<uint32_t>(r)));
    }
    int64_t charge = RowsApproxBytes(prows) + table.ApproxBytes();
    if (rt_->profile != nullptr) {
      rt_->profile->ChargeBytes(node_, charge);
      OpProfile& prof = rt_->profile->at(node_);
      prof.hash_groups += static_cast<int64_t>(table.num_groups());
      prof.hash_buckets += static_cast<int64_t>(table.num_slots());
      prof.hash_bytes += table.ApproxBytes();
    }
    // The partition's table must be released on EVERY exit — including
    // injected faults mid-probe — or a cancelled run would strand charges.
    Status st = GraceProbePartition(width, prows, table, pfile, ofile);
    if (rt_->profile != nullptr) rt_->profile->ReleaseBytes(node_, charge);
    return st;
  }

  Status GraceProbePartition(int width, const std::vector<Tuple>& prows,
                             const JoinHashTable& table, SpillFile* pfile,
                             std::unique_ptr<SpillFile>* ofile) {
    STARBURST_RETURN_NOT_OK(pfile->BeginRead());
    std::vector<Tuple> obuf;
    for (;;) {
      Tuple row;
      bool eof = false;
      STARBURST_RETURN_NOT_OK(pfile->ReadRow(&row, &eof));
      if (eof) break;
      int64_t idx = row[0].AsInt();
      Tuple o(std::make_move_iterator(row.begin() + 1),
              std::make_move_iterator(row.end()));
      uint64_t h = 0;
      auto null_key = GraceKeyHash(outer_key_, okk_, o, width, &h);
      if (!null_key.ok()) return null_key.status();
      if (null_key.value()) continue;
      int32_t g = width == 1 && key_buf_[0].is_int()
                      ? table.FindGroupInt(key_buf_[0].AsInt(), h)
                      : table.FindGroup(key_buf_.data(), h);
      if (g < 0) continue;
      RowBatch local;
      for (int32_t e = table.GroupHead(g); e >= 0; e = table.NextEntry(e)) {
        STARBURST_RETURN_NOT_OK(EmitJoinPair(
            o, prows[static_cast<size_t>(table.EntryRow(e))], check_, rt_,
            &local));
        ++chain_steps_;
      }
      for (Tuple& t : local.rows) {
        Tuple orow;
        orow.reserve(t.size() + 1);
        orow.push_back(Datum(idx));
        for (Datum& d : t) orow.push_back(std::move(d));
        obuf.push_back(std::move(orow));
        if (obuf.size() >= kSpillFlushRows) {
          STARBURST_RETURN_NOT_OK(FlushPart(ofile, &obuf));
        }
      }
    }
    return FlushPart(ofile, &obuf);
  }

  /// Evaluates the typed outer key for every live row of a fresh probe
  /// batch. The hash-table probe is the random-access hot spot of the
  /// serial path; knowing the whole batch's hashes up front lets the probe
  /// loop prefetch slot lines a few rows ahead of their use.
  void PrecomputeOuterKeys() {
    size_t n = outer_batch_.live();
    okeys_.assign(n, 0);
    ohash_.assign(n, 0);
    okind_.assign(n, kOuterFallback);
    for (size_t k = 0; k < n; ++k) {
      int64_t kv = 0;
      bool kn = false;
      if (!okk_.EvalInt(outer_batch_.live_row(k), &kv, &kn)) {
        ++kernel_fallbacks_;
        continue;
      }
      ++kernel_rows_;
      if (kn) {
        okind_[k] = kOuterNull;
      } else {
        okind_[k] = kOuterTyped;
        okeys_[k] = kv;
        ohash_[k] = HashInt64JoinKey(kv);
      }
    }
  }

  std::unique_ptr<BatchIterator> outer_;
  std::unique_ptr<BatchIterator> inner_;
  bool compiled_ = false;
  std::vector<ExprProgram> outer_key_, inner_key_;
  bool degrade_ = false;
  PredProgram check_;
  std::vector<Tuple> build_rows_;
  std::unique_ptr<JoinHashTable> ht_;
  bool built_ = false;
  std::vector<Datum> key_buf_;
  RowBatch outer_batch_;
  size_t outer_pos_ = 0;
  const Tuple* cur_ = nullptr;
  int32_t chain_ = -1;
  int64_t probes_ = 0;
  int64_t chain_steps_ = 0;
  int64_t charged_ = 0;
  // Typed width-1 int64 key kernels (build side / probe side).
  KeyKernel ikk_;
  KeyKernel okk_;
  bool typed_keys_ = false;
  int64_t kernel_rows_ = 0;
  int64_t kernel_fallbacks_ = 0;
  // Per-batch precomputed probe keys (typed path), enabling slot prefetch.
  enum : uint8_t { kOuterNull = 0, kOuterTyped = 1, kOuterFallback = 2 };
  std::vector<int64_t> okeys_;
  std::vector<uint64_t> ohash_;
  std::vector<uint8_t> okind_;
  // Degrade-mode state.
  bool drained_ = false;
  std::vector<Tuple> dorows_;
  size_t di_ = 0, dj_ = 0;
  // Exchange-mode state.
  bool exchange_ok_ = false;
  std::unique_ptr<PartitionedJoinTable> pt_;
  std::vector<Tuple> probe_rows_;
  std::vector<std::vector<Tuple>> pmorsel_out_;
  bool probed_ = false;
  size_t pemit_morsel_ = 0;
  size_t pemit_pos_ = 0;
  int workers_used_ = 1;
  // Grace partition-spill state.
  bool grace_ = false;
  bool grace_done_ = false;
  bool gmerge_init_ = false;
  std::array<std::unique_ptr<SpillFile>, kGraceParts> opart_;
  std::array<Tuple, kGraceParts> ghead_;
  std::array<bool, kGraceParts> ghead_done_{};
  int64_t spill_runs_ = 0;
  int64_t spill_bytes_ = 0;
};

// ---------------------------------------------------------------------------
// Custom operators: bridge into the legacy evaluator
// ---------------------------------------------------------------------------

class CustomOpIterator : public BatchIterator {
 public:
  CustomOpIterator(VecRuntime* rt, const PlanOp* node, int depth,
                   const ExecFn* fn)
      : BatchIterator(rt, node, depth), fn_(fn) {}

 protected:
  Status DoOpen() override {
    evaluated_ = false;
    rows_.clear();
    pos_ = 0;
    return Status::OK();
  }

  Status DoNext(RowBatch* out) override {
    if (!evaluated_) {
      // The run-time routine sees exactly the enclosing bindings the legacy
      // stack would hold here: truncate sibling pipelines' frames for the
      // duration of the call.
      std::vector<ExecFrame>& env = *rt_->env;
      size_t keep = std::min(env.size(), static_cast<size_t>(depth_));
      std::vector<ExecFrame> saved(env.begin() + static_cast<long>(keep),
                                   env.end());
      env.resize(keep);
      ExecContext ctx(rt_->exec, *node_);
      auto rows = (*fn_)(ctx);
      env.insert(env.end(), saved.begin(), saved.end());
      if (!rows.ok()) return rows.status();
      rows_ = std::move(rows).value();
      evaluated_ = true;
    }
    while (!BatchFull(*out, *rt_) && pos_ < rows_.size()) {
      out->rows.push_back(std::move(rows_[pos_++]));
    }
    return Status::OK();
  }

 private:
  const ExecFn* fn_;
  bool evaluated_ = false;
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Materialize-once replay (shared DAG nodes; uncorrelated subtrees inside
// re-opened regions)
// ---------------------------------------------------------------------------

class MaterializeIterator : public BatchIterator {
 public:
  using BatchIterator::BatchIterator;

 protected:
  Status DoOpen() override {
    auto rows = MaterializeSubtree(rt_, *node_, depth_);
    if (!rows.ok()) return rows.status();
    rows_ = std::move(rows).value();
    pos_ = 0;
    return Status::OK();
  }

  Status DoNext(RowBatch* out) override {
    while (!BatchFull(*out, *rt_) && pos_ < rows_->size()) {
      out->rows.push_back((*rows_)[pos_++]);
    }
    return Status::OK();
  }

 private:
  RowsPtr rows_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// `reopened` marks subtrees that may be opened more than once (correlated
/// NL inners and everything below them). An uncorrelated node inside such a
/// region materializes once and replays — exactly the set of nodes the
/// legacy interpreter's material cache would have saved from re-evaluation.
Result<std::unique_ptr<BatchIterator>> Build(VecRuntime* rt,
                                             const PlanOp& node, int depth,
                                             bool reopened) {
  if ((reopened || rt->shared_nodes.count(&node) > 0) &&
      !rt->exec->IsCorrelated(node)) {
    return std::unique_ptr<BatchIterator>(
        new MaterializeIterator(rt, &node, depth));
  }
  return BuildNode(rt, node, depth, reopened);
}

Result<std::unique_ptr<BatchIterator>> BuildNode(VecRuntime* rt,
                                                 const PlanOp& node,
                                                 int depth, bool reopened) {
  const std::string& name = node.name();
  // Exchange eligibility: parallel iterators are only built at pipeline
  // depth 0 outside re-opened subtrees, where compiled programs reference no
  // NL binding frames and Open runs exactly once — so workers share nothing
  // mutable and the coordinator's fault-check sequence stays sequential.
  const bool exchange_ok =
      rt->exec_threads > 1 && depth == 0 && !reopened;
  if (name == op::kAccess) {
    if (node.flavor == flavor::kTemp || node.flavor == flavor::kTempIndex) {
      return std::unique_ptr<BatchIterator>(
          new TempAccessIterator(rt, &node, depth));
    }
    if (node.flavor == flavor::kHeap || node.flavor == flavor::kBTree ||
        node.flavor == flavor::kIndex) {
      if (exchange_ok) {
        return std::unique_ptr<BatchIterator>(
            new ExchangeScanIterator(rt, &node, depth));
      }
      if (node.flavor == flavor::kIndex) {
        return std::unique_ptr<BatchIterator>(
            new IndexScanIterator(rt, &node, depth));
      }
      return std::unique_ptr<BatchIterator>(
          new HeapScanIterator(rt, &node, depth));
    }
    return Status::InvalidArgument("unknown ACCESS flavor '" + node.flavor +
                                   "'");
  }
  if (name == op::kJoin) {
    auto outer = Build(rt, *node.inputs[0], depth, reopened);
    if (!outer.ok()) return outer.status();
    if (node.flavor == flavor::kNL) {
      bool correlated = rt->exec->IsCorrelated(*node.inputs[1]);
      std::unique_ptr<BatchIterator> inner;
      if (correlated) {
        auto in = Build(rt, *node.inputs[1], depth + 1, /*reopened=*/true);
        if (!in.ok()) return in.status();
        inner = std::move(in).value();
      }
      return std::unique_ptr<BatchIterator>(
          new NLJoinIterator(rt, &node, depth, std::move(outer).value(),
                             std::move(inner), correlated));
    }
    auto inner = Build(rt, *node.inputs[1], depth, reopened);
    if (!inner.ok()) return inner.status();
    if (node.flavor == flavor::kMG) {
      return std::unique_ptr<BatchIterator>(
          new MergeJoinIterator(rt, &node, depth, std::move(outer).value(),
                                std::move(inner).value()));
    }
    if (node.flavor == flavor::kHA) {
      return std::unique_ptr<BatchIterator>(
          new HashJoinIterator(rt, &node, depth, std::move(outer).value(),
                               std::move(inner).value(), exchange_ok));
    }
    return Status::InvalidArgument("unknown JOIN flavor '" + node.flavor +
                                   "'");
  }
  if (name == op::kGet || name == op::kSort || name == op::kShip ||
      name == op::kStore || name == op::kFilter || name == op::kProject) {
    auto child = Build(rt, *node.inputs[0], depth, reopened);
    if (!child.ok()) return child.status();
    if (name == op::kGet) {
      return std::unique_ptr<BatchIterator>(
          new GetIterator(rt, &node, depth, std::move(child).value()));
    }
    if (name == op::kSort) {
      return std::unique_ptr<BatchIterator>(
          new SortIterator(rt, &node, depth, std::move(child).value()));
    }
    if (name == op::kFilter) {
      return std::unique_ptr<BatchIterator>(
          new FilterIterator(rt, &node, depth, std::move(child).value()));
    }
    if (name == op::kProject) {
      return std::unique_ptr<BatchIterator>(
          new ProjectIterator(rt, &node, depth, std::move(child).value()));
    }
    return std::unique_ptr<BatchIterator>(
        new StoreLikeIterator(rt, &node, depth, std::move(child).value()));
  }
  if (name == op::kTidAnd) {
    auto a = Build(rt, *node.inputs[0], depth, reopened);
    if (!a.ok()) return a.status();
    auto b = Build(rt, *node.inputs[1], depth, reopened);
    if (!b.ok()) return b.status();
    return std::unique_ptr<BatchIterator>(
        new TidAndIterator(rt, &node, depth, std::move(a).value(),
                           std::move(b).value()));
  }
  if (name == op::kFilterBy) {
    auto probe = Build(rt, *node.inputs[0], depth, reopened);
    if (!probe.ok()) return probe.status();
    auto filter = Build(rt, *node.inputs[1], depth, reopened);
    if (!filter.ok()) return filter.status();
    return std::unique_ptr<BatchIterator>(
        new FilterByIterator(rt, &node, depth, std::move(probe).value(),
                             std::move(filter).value()));
  }
  const auto* entry =
      rt->registry != nullptr ? rt->registry->Find(name) : nullptr;
  if (entry == nullptr) {
    return Status::Unimplemented("no run-time routine for operator '" + name +
                                 "'");
  }
  return std::unique_ptr<BatchIterator>(
      new CustomOpIterator(rt, &node, depth, &entry->first));
}

}  // namespace

Result<std::unique_ptr<BatchIterator>> BuildBatchIterator(VecRuntime* rt,
                                                          const PlanOp& node,
                                                          int depth) {
  return Build(rt, node, depth, /*reopened=*/false);
}

// ---------------------------------------------------------------------------
// Executor entry point
// ---------------------------------------------------------------------------

Result<ResultSet> Executor::RunVectorized(const PlanPtr& plan) {
  material_cache_.clear();
  env_.clear();
  base_rows_.clear();

  VecRuntime rt;
  rt.exec = this;
  rt.db = db_;
  rt.query = query_;
  rt.registry = registry_;
  rt.faults = faults_;
  rt.stats = run_stats_;
  rt.profile = profile_;
  rt.governor = governor_;
  rt.instrumented = rt.stats != nullptr || rt.profile != nullptr;
  rt.batch_size = batch_size_;
  rt.exec_threads = exec_threads_;
  rt.typed_kernels = typed_kernels_;
  rt.env = &env_;
  // Nodes reachable through more than one parent in the plan DAG
  // materialize once and replay.
  {
    std::map<const PlanOp*, int> refs;
    std::function<void(const PlanOp&)> count = [&](const PlanOp& n) {
      if (++refs[&n] > 1) return;
      for (const PlanPtr& in : n.inputs) count(*in);
    };
    count(*plan);
    for (const auto& [n, c] : refs) {
      if (c > 1 && !IsCorrelated(*n)) rt.shared_nodes.insert(n);
    }
  }

  auto schema = SchemaOf(*plan);
  if (!schema.ok()) {
    VecAccess::Release(this);
    return schema.status();
  }
  ResultSet rs;
  rs.schema = std::move(schema).value();

  auto it = BuildBatchIterator(&rt, *plan, 0);
  if (!it.ok()) {
    VecAccess::Release(this);
    return it.status();
  }
  Status s = it.value()->Open();
  if (s.ok()) {
    RowBatch b;
    for (;;) {
      s = it.value()->Next(&b);
      if (!s.ok() || b.empty()) break;
      b.Compact();  // the result set is the final pipeline breaker
      rs.rows.reserve(rs.rows.size() + b.rows.size());
      for (Tuple& t : b.rows) rs.rows.push_back(std::move(t));
    }
  }
  // Close unconditionally: a failed Open/Next (deadline, cancellation,
  // injected fault) must still release every operator's charges and temp
  // files. The primary error wins over any close-time error.
  Status close_status = it.value()->Close();
  if (s.ok()) s = close_status;
  last_kernel_rows_ = rt.kernel_rows.load(std::memory_order_relaxed);
  last_kernel_fallbacks_ =
      rt.kernel_fallback_rows.load(std::memory_order_relaxed);
  if (!s.ok()) {
    VecAccess::Release(this);
    return s;
  }
  if (profile_ != nullptr) profile_->CaptureLabels();
  env_.clear();
  return rs;
}

}  // namespace starburst
