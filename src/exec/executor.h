#ifndef STARBURST_EXEC_EXECUTOR_H_
#define STARBURST_EXEC_EXECUTOR_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "plan/explain.h"
#include "plan/plan.h"
#include "query/query.h"
#include "storage/table.h"

namespace starburst {

class ExecGovernor;
class ExecProfile;
class FaultInjector;
class MetricsRegistry;

/// Positional layout of a tuple stream: which query-scope column each slot
/// holds. Index ACCESSes expose `ColumnRef{q, kTidColumn}` slots.
using Schema = std::vector<ColumnRef>;

/// A fully materialized stream.
struct ResultSet {
  Schema schema;
  std::vector<Tuple> rows;
};

/// One enclosing nested-loop binding: the outer stream's layout and its
/// current tuple. Shared between the legacy interpreter's binding stack and
/// the vectorized pipeline (so custom operators see the same scope either
/// way).
struct ExecFrame {
  const Schema* schema;
  const Tuple* tuple;
};

class Executor;

/// What a user-registered run-time routine may use (paper §5: adding a
/// LOLEPOP requires "a run-time execution routine that will be invoked by
/// the query evaluator").
class ExecContext {
 public:
  ExecContext(Executor* executor, const PlanOp& node)
      : executor_(executor), node_(&node) {}

  const PlanOp& node() const { return *node_; }
  const Query& query() const;
  const Database& database() const;

  /// Evaluates input `i` (respecting any outer bindings in scope) and
  /// returns its rows; `InputSchema` gives the matching layout.
  Result<std::vector<Tuple>> EvalInput(int i);
  Result<Schema> InputSchema(int i);

  /// Evaluates the predicate set over a tuple laid out by `schema`,
  /// consulting enclosing nested-loop bindings for free columns.
  Result<bool> EvalPredicates(PredSet preds, const Schema& schema,
                              const Tuple& tuple);

 private:
  Executor* executor_;
  const PlanOp* node_;
};

using ExecFn = std::function<Result<std::vector<Tuple>>(ExecContext&)>;
using SchemaFn = std::function<Result<Schema>(const PlanOp&,
                                              const std::vector<Schema>&)>;

/// Run-time routines for operators beyond the built-ins. The schema function
/// may be omitted: the default concatenates the input schemas (right for
/// join-like operators) or passes through a single input.
class ExecutorRegistry {
 public:
  Status Register(const std::string& op_name, ExecFn exec_fn,
                  SchemaFn schema_fn = nullptr);
  const std::pair<ExecFn, SchemaFn>* Find(const std::string& op_name) const;

 private:
  std::map<std::string, std::pair<ExecFn, SchemaFn>> fns_;
};

/// Interprets plan DAGs over a Database: the paper's query evaluator. Two
/// interchangeable engines share this class:
///
///  - The vectorized pipeline (default): every built-in LOLEPOP is a pull
///    BatchIterator producing RowBatches, predicates run as compiled
///    PredPrograms, and the HA join builds an open-addressing hash table
///    (exec/batch_iterator.cc).
///  - The legacy materializing recursive interpreter, kept verbatim behind
///    `set_vectorized(false)` / STARBURST_VECTORIZED=0 as the differential
///    oracle.
///
/// Nested-loop inners that reference outer columns (sideways information
/// passing, §4.4) are re-evaluated per outer tuple under a binding stack in
/// both engines; uncorrelated subplans and temps materialize once through
/// `material_cache_`.
class Executor {
 public:
  Executor(const Database& db, const Query& query,
           const ExecutorRegistry* registry = nullptr);

  /// Runs the plan to completion. On failure — real or injected — every
  /// cached materialization (temps, NL inners) is released before the error
  /// returns, so an abandoned run leaks no execution state.
  Result<ResultSet> Run(const PlanPtr& plan);

  /// The output layout of `plan` without running it.
  Result<Schema> SchemaOf(const PlanOp& plan);

  /// True if the subtree references columns of quantifiers outside its own
  /// TABLES property (i.e. must be re-evaluated per outer binding).
  bool IsCorrelated(const PlanOp& node) const;

  /// Collect per-node actuals (EXPLAIN ANALYZE) into `stats` during Run.
  /// Null (the default) disables collection and its timing overhead.
  void set_run_stats(PlanRunStats* stats) { run_stats_ = stats; }

  /// Override the fault injector (tests); defaults to FaultInjector::Global().
  void set_faults(FaultInjector* faults) { faults_ = faults; }

  /// Engine selection and batch sizing; both default from the environment
  /// (STARBURST_VECTORIZED, STARBURST_BATCH_SIZE).
  void set_vectorized(bool on) { vectorized_ = on; }
  bool vectorized() const { return vectorized_; }
  void set_batch_size(int rows) { batch_size_ = rows >= 1 ? rows : 1; }
  int batch_size() const { return batch_size_; }

  /// Exchange worker count for the vectorized engine (defaults from
  /// STARBURST_EXEC_THREADS). 1 disables the exchange operator entirely —
  /// the pipeline is then byte-for-byte the sequential engine.
  void set_exec_threads(int n) {
    exec_threads_ = n >= 1 ? (n > 256 ? 256 : n) : 1;
  }
  int exec_threads() const { return exec_threads_; }

  /// Type-specialized fused predicate/key kernels in the vectorized engine
  /// (defaults from STARBURST_TYPED_KERNELS; off runs every predicate
  /// through the generic interpreter — the differential oracle).
  void set_typed_kernels(bool on) { typed_kernels_ = on; }
  bool typed_kernels() const { return typed_kernels_; }

  /// Kernel traffic of the most recent vectorized Run: rows decided by a
  /// fused kernel, and rows routed back to the interpreter.
  int64_t last_kernel_rows() const { return last_kernel_rows_; }
  int64_t last_kernel_fallbacks() const { return last_kernel_fallbacks_; }

  /// Publish per-operator rows/batches/time counters after each Run.
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Collect the operator profile (Open/Next/Close timings, rows, memory,
  /// operator detail) into `profile` during Run. Null (the default) disables
  /// profiling; the fast path then costs one branch per batch.
  void set_profile(ExecProfile* profile) { profile_ = profile; }
  ExecProfile* profile() const { return profile_; }

  /// Attach the execution governor (deadline / cancellation / spill
  /// threshold). Null (the default) disables governance entirely. Checked
  /// once per batch at iterator boundaries, once per morsel on the exchange
  /// coordinator, and once per operator dispatch in the legacy engine.
  void set_governor(ExecGovernor* governor) { governor_ = governor; }
  ExecGovernor* governor() const { return governor_; }

  /// Number of cached subplan materializations currently held (tests assert
  /// this drops to zero after a failed Run).
  size_t cached_materializations() const { return material_cache_.size(); }

 private:
  friend class ExecContext;
  /// Internal bridge for the vectorized pipeline (exec/batch_iterator.cc).
  friend struct VecAccess;

  /// Materialized subplan results are shared, not copied: the cache and any
  /// in-flight consumer hold the same immutable row vector.
  using RowsPtr = std::shared_ptr<const std::vector<Tuple>>;

  Result<RowsPtr> Eval(const PlanOp& node);
  Result<RowsPtr> EvalNode(const PlanOp& node);

  /// Resolves a column against (schema, tuple), then enclosing NL frames,
  /// then — during base-table scans — the current base row.
  Result<Datum> Resolve(ColumnRef ref, const Schema& schema,
                        const Tuple& tuple) const;
  Result<Datum> EvalExpr(const Expr& expr, const Schema& schema,
                         const Tuple& tuple) const;
  Result<bool> EvalPred(const Predicate& pred, const Schema& schema,
                        const Tuple& tuple) const;
  Result<bool> EvalPredSet(PredSet preds, const Schema& schema,
                           const Tuple& tuple) const;

  // Built-in operators (legacy row-at-a-time engine).
  Result<std::vector<Tuple>> EvalAccess(const PlanOp& node);
  Result<std::vector<Tuple>> EvalGet(const PlanOp& node);
  Result<std::vector<Tuple>> EvalSort(const PlanOp& node);
  Result<std::vector<Tuple>> EvalStoreLike(const PlanOp& node);
  Result<std::vector<Tuple>> EvalJoin(const PlanOp& node);
  Result<std::vector<Tuple>> EvalTidAnd(const PlanOp& node);
  Result<std::vector<Tuple>> EvalProject(const PlanOp& node);
  Result<std::vector<Tuple>> EvalFilterBy(const PlanOp& node);
  Result<std::vector<Tuple>> EvalFilter(const PlanOp& node);

  /// The batch-pipeline engine (exec/batch_iterator.cc).
  Result<ResultSet> RunVectorized(const PlanPtr& plan);

  /// Publishes per-operator and whole-run counters from `stats`.
  void PublishMetrics(const PlanRunStats& stats, bool vectorized) const;

  const Database* db_;
  const Query* query_;
  const ExecutorRegistry* registry_;
  PlanRunStats* run_stats_ = nullptr;
  ExecProfile* profile_ = nullptr;
  ExecGovernor* governor_ = nullptr;
  FaultInjector* faults_;
  MetricsRegistry* metrics_ = nullptr;
  bool vectorized_;
  int batch_size_;
  int exec_threads_;
  bool typed_kernels_;
  int64_t last_kernel_rows_ = 0;
  int64_t last_kernel_fallbacks_ = 0;

  std::vector<ExecFrame> env_;
  // Cached materializations of uncorrelated subplans (NL inners, temps).
  std::map<const PlanOp*, RowsPtr> material_cache_;
  std::map<const PlanOp*, Schema> schema_cache_;
  // Base row visible while scanning/fetching quantifier q (for predicates
  // that reference columns the ACCESS did not project).
  struct BaseRow {
    int quantifier;
    const Tuple* row;
  };
  std::vector<BaseRow> base_rows_;
};

}  // namespace starburst

#endif  // STARBURST_EXEC_EXECUTOR_H_
