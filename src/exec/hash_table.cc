#include "exec/hash_table.h"

namespace starburst {

namespace {

size_t NextPow2(size_t n) {
  size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

uint64_t JoinHashTable::HashKey(const Datum* key, int width) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < width; ++i) {
    h = HashCombine64(h, key[i].Hash64());
  }
  return h;
}

bool JoinHashTable::KeysEqual(const Datum* a, const Datum* b) const {
  for (int i = 0; i < key_width_; ++i) {
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

Status JoinHashTable::Reserve(size_t n) {
  if (n > kMaxGroups) {
    return Status::ResourceExhausted(
        "hash table reserve of " + std::to_string(n) +
        " keys exceeds the int32 group-index cap");
  }
  size_t want = NextPow2(n * 2 + 16);
  if (want > slots_.size()) Rehash(want);
  return Status::OK();
}

void JoinHashTable::Rehash(size_t slot_count) {
  slots_.assign(slot_count, -1);
  slot_mask_ = slot_count - 1;
  for (size_t g = 0; g < group_hash_.size(); ++g) {
    uint64_t idx = group_hash_[g] & slot_mask_;
    while (slots_[idx] != -1) idx = (idx + 1) & slot_mask_;
    slots_[idx] = static_cast<int32_t>(g);
  }
}

Status JoinHashTable::Insert(const Datum* key, uint64_t hash, uint32_t row) {
  if (entry_row_.size() >= kMaxEntries) {
    return Status::ResourceExhausted(
        "hash table is full: int32 entry-index cap reached");
  }
  // Keep load factor under 1/2.
  if (slots_.empty() || (group_head_.size() + 1) * 2 > slots_.size()) {
    if (group_head_.size() >= kMaxGroups) {
      return Status::ResourceExhausted(
          "hash table is full: int32 group-index cap reached");
    }
    Rehash(NextPow2(slots_.empty() ? 16 : slots_.size() * 2));
  }
  uint64_t idx = hash & slot_mask_;
  int32_t group = -1;
  while (slots_[idx] != -1) {
    int32_t g = slots_[idx];
    if (group_hash_[static_cast<size_t>(g)] == hash &&
        KeysEqual(key, &keys_[static_cast<size_t>(g) *
                             static_cast<size_t>(key_width_)])) {
      group = g;
      break;
    }
    idx = (idx + 1) & slot_mask_;
  }
  if (group == -1) {
    group = static_cast<int32_t>(group_head_.size());
    for (int i = 0; i < key_width_; ++i) keys_.push_back(key[i]);
    group_hash_.push_back(hash);
    group_head_.push_back(-1);
    group_tail_.push_back(-1);
    slots_[idx] = group;
  }
  int32_t entry = static_cast<int32_t>(entry_row_.size());
  entry_row_.push_back(row);
  entry_next_.push_back(-1);
  size_t g = static_cast<size_t>(group);
  if (group_head_[g] == -1) {
    group_head_[g] = entry;
  } else {
    entry_next_[static_cast<size_t>(group_tail_[g])] = entry;
  }
  group_tail_[g] = entry;
  return Status::OK();
}

int64_t JoinHashTable::ApproxBytes() const {
  int64_t bytes = 0;
  for (const Datum& d : keys_) {
    bytes += static_cast<int64_t>(sizeof(Datum));
    if (d.is_string()) bytes += static_cast<int64_t>(d.AsString().size());
  }
  bytes += static_cast<int64_t>(group_hash_.size() * sizeof(uint64_t));
  bytes += static_cast<int64_t>(group_head_.size() * sizeof(int32_t));
  bytes += static_cast<int64_t>(group_tail_.size() * sizeof(int32_t));
  bytes += static_cast<int64_t>(entry_row_.size() * sizeof(uint32_t));
  bytes += static_cast<int64_t>(entry_next_.size() * sizeof(int32_t));
  bytes += static_cast<int64_t>(slots_.size() * sizeof(int32_t));
  return bytes;
}

int32_t JoinHashTable::FindGroupInt(int64_t key, uint64_t hash) const {
  if (slots_.empty()) return -1;
  uint64_t idx = hash & slot_mask_;
  while (slots_[idx] != -1) {
    int32_t g = slots_[idx];
    if (group_hash_[static_cast<size_t>(g)] == hash) {
      const Datum& d = keys_[static_cast<size_t>(g)];
      if (d.is_int() ? d.AsInt() == key : Datum(key).Compare(d) == 0) {
        return g;
      }
    }
    idx = (idx + 1) & slot_mask_;
  }
  return -1;
}

int32_t JoinHashTable::FindGroup(const Datum* key, uint64_t hash) const {
  if (slots_.empty()) return -1;
  uint64_t idx = hash & slot_mask_;
  while (slots_[idx] != -1) {
    int32_t g = slots_[idx];
    if (group_hash_[static_cast<size_t>(g)] == hash &&
        KeysEqual(key, &keys_[static_cast<size_t>(g) *
                             static_cast<size_t>(key_width_)])) {
      return g;
    }
    idx = (idx + 1) & slot_mask_;
  }
  return -1;
}

}  // namespace starburst
