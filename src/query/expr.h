#ifndef STARBURST_QUERY_EXPR_H_
#define STARBURST_QUERY_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace starburst {

class Query;

/// A column reference at query scope: quantifier (table occurrence in the
/// FROM list) plus column ordinal within that table's definition.
/// `column == kTidColumn` denotes the tuple identifier pseudo-column that
/// index ACCESSes expose and GET consumes (paper §2.1).
struct ColumnRef {
  static constexpr int kTidColumn = -1;

  int quantifier = 0;
  int column = 0;

  bool is_tid() const { return column == kTidColumn; }

  bool operator==(const ColumnRef& o) const {
    return quantifier == o.quantifier && column == o.column;
  }
  bool operator<(const ColumnRef& o) const {
    if (quantifier != o.quantifier) return quantifier < o.quantifier;
    return column < o.column;
  }
};

using ColumnSet = std::set<ColumnRef>;

/// Scalar expression node kinds. Arithmetic is enough to exercise the
/// paper's "expressions OK" join predicates (§4.4) and hashable predicates
/// of the form expr(χ(T1)) = expr(χ(T2)) (§4.5.1).
enum class ExprKind { kColumn, kLiteral, kAdd, kSub, kMul, kDiv };

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable scalar expression tree over column references and literals.
class Expr {
 public:
  static ExprPtr Column(ColumnRef ref);
  static ExprPtr Literal(Datum value);
  static ExprPtr Binary(ExprKind op, ExprPtr lhs, ExprPtr rhs);

  ExprKind kind() const { return kind_; }
  const ColumnRef& column() const { return column_; }
  const Datum& literal() const { return literal_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

  /// Collects every column referenced anywhere in the tree.
  void CollectColumns(ColumnSet* out) const;
  ColumnSet Columns() const;

  /// True if the tree is exactly one bare column reference.
  bool IsBareColumn() const { return kind_ == ExprKind::kColumn; }

  /// Renders with quantifier aliases resolved through `query` (nullptr ->
  /// positional names like q0.c1).
  std::string ToString(const Query* query = nullptr) const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  ColumnRef column_;
  Datum literal_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// Evaluates arithmetic over datums; NULL propagates. Division by zero
/// yields NULL (SQL-ish, keeps the evaluator total).
Datum EvalBinary(ExprKind op, const Datum& lhs, const Datum& rhs);

}  // namespace starburst

#endif  // STARBURST_QUERY_EXPR_H_
