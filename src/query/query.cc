#include "query/query.h"

#include "common/strings.h"

namespace starburst {

Result<int> Query::AddQuantifier(const std::string& table_name,
                                 std::string alias) {
  auto table = catalog_->FindTable(table_name);
  if (!table.ok()) return table.status();
  if (alias.empty()) alias = table_name;
  for (const Quantifier& q : quantifiers_) {
    if (q.alias == alias) {
      return Status::AlreadyExists("duplicate quantifier alias '" + alias +
                                   "'");
    }
  }
  if (num_quantifiers() >= QuantifierSet::kMaxId) {
    return Status::InvalidArgument("too many quantifiers (max 64)");
  }
  Quantifier q;
  q.alias = std::move(alias);
  q.table = table.value();
  quantifiers_.push_back(std::move(q));
  return num_quantifiers() - 1;
}

Result<int> Query::AddPredicate(ExprPtr lhs, CompareOp op, ExprPtr rhs) {
  if (lhs == nullptr || rhs == nullptr) {
    return Status::InvalidArgument("predicate sides must be non-null");
  }
  if (num_predicates() >= PredSet::kMaxId) {
    return Status::InvalidArgument("too many predicates (max 64)");
  }
  Predicate p;
  p.id = num_predicates();
  p.lhs = std::move(lhs);
  p.rhs = std::move(rhs);
  p.op = op;
  p.lhs_columns = p.lhs->Columns();
  p.rhs_columns = p.rhs->Columns();
  for (const ColumnRef& c : p.Columns()) {
    if (c.quantifier < 0 || c.quantifier >= num_quantifiers()) {
      return Status::InvalidArgument("predicate references unknown quantifier");
    }
    if (!c.is_tid() &&
        (c.column < 0 ||
         c.column >= static_cast<int>(table_of(c.quantifier).columns.size()))) {
      return Status::InvalidArgument("predicate references unknown column");
    }
    p.quantifiers.Insert(c.quantifier);
  }
  predicates_.push_back(std::move(p));
  return predicates_.back().id;
}

Result<ColumnRef> Query::ResolveColumn(const std::string& alias,
                                       const std::string& column) const {
  for (int q = 0; q < num_quantifiers(); ++q) {
    if (quantifiers_[q].alias != alias) continue;
    int ord = table_of(q).FindColumn(column);
    if (ord < 0) {
      return Status::NotFound("no column '" + column + "' in '" + alias + "'");
    }
    return ColumnRef{q, ord};
  }
  return Status::NotFound("no quantifier with alias '" + alias + "'");
}

Result<ColumnRef> Query::ResolveBareColumn(const std::string& column) const {
  std::optional<ColumnRef> found;
  for (int q = 0; q < num_quantifiers(); ++q) {
    int ord = table_of(q).FindColumn(column);
    if (ord < 0) continue;
    if (found.has_value()) {
      return Status::InvalidArgument("ambiguous column '" + column + "'");
    }
    found = ColumnRef{q, ord};
  }
  if (!found.has_value()) {
    return Status::NotFound("no column named '" + column + "'");
  }
  return *found;
}

std::string Query::ColumnName(ColumnRef ref) const {
  if (ref.quantifier < 0 || ref.quantifier >= num_quantifiers()) {
    return "q?" + std::to_string(ref.quantifier);
  }
  const std::string& alias = quantifiers_[ref.quantifier].alias;
  if (ref.is_tid()) return alias + ".TID";
  return alias + "." + table_of(ref.quantifier).columns[ref.column].name;
}

const ColumnDef& Query::column_def(ColumnRef ref) const {
  return table_of(ref.quantifier).columns[ref.column];
}

PredSet Query::EligiblePredicates(QuantifierSet tables,
                                  PredSet candidates) const {
  PredSet out;
  for (int id : candidates.ToVector()) {
    if (IsEligible(predicates_[id], tables)) out.Insert(id);
  }
  return out;
}

ColumnSet Query::ColumnsNeeded(int q) const {
  ColumnSet out;
  for (const ColumnRef& c : select_list_) {
    if (c.quantifier == q) out.insert(c);
  }
  for (const ColumnRef& c : order_by_) {
    if (c.quantifier == q) out.insert(c);
  }
  for (const Predicate& p : predicates_) {
    for (const ColumnRef& c : p.Columns()) {
      if (c.quantifier == q) out.insert(c);
    }
  }
  return out;
}

std::string Query::ToString() const {
  std::string out = "SELECT ";
  out += StrJoinMapped(select_list_, ", ",
                       [this](ColumnRef c) { return ColumnName(c); });
  out += " FROM ";
  out += StrJoinMapped(quantifiers_, ", ", [this](const Quantifier& q) {
    const std::string& tbl = catalog_->table(q.table).name;
    return q.alias == tbl ? tbl : tbl + " " + q.alias;
  });
  if (!predicates_.empty()) {
    out += " WHERE ";
    out += StrJoinMapped(predicates_, " AND ", [this](const Predicate& p) {
      return p.ToString(this);
    });
  }
  if (!order_by_.empty()) {
    out += " ORDER BY ";
    out += StrJoinMapped(order_by_, ", ",
                         [this](ColumnRef c) { return ColumnName(c); });
  }
  return out;
}

}  // namespace starburst
