#include "query/expr.h"

#include "query/query.h"

namespace starburst {

ExprPtr Expr::Column(ColumnRef ref) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumn;
  e->column_ = ref;
  return e;
}

ExprPtr Expr::Literal(Datum value) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(value);
  return e;
}

ExprPtr Expr::Binary(ExprKind op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

void Expr::CollectColumns(ColumnSet* out) const {
  switch (kind_) {
    case ExprKind::kColumn:
      out->insert(column_);
      return;
    case ExprKind::kLiteral:
      return;
    default:
      lhs_->CollectColumns(out);
      rhs_->CollectColumns(out);
      return;
  }
}

ColumnSet Expr::Columns() const {
  ColumnSet out;
  CollectColumns(&out);
  return out;
}

std::string Expr::ToString(const Query* query) const {
  switch (kind_) {
    case ExprKind::kColumn:
      if (query != nullptr) return query->ColumnName(column_);
      if (column_.is_tid()) {
        return "q" + std::to_string(column_.quantifier) + ".TID";
      }
      return "q" + std::to_string(column_.quantifier) + ".c" +
             std::to_string(column_.column);
    case ExprKind::kLiteral:
      return literal_.ToString();
    case ExprKind::kAdd:
      return "(" + lhs_->ToString(query) + " + " + rhs_->ToString(query) + ")";
    case ExprKind::kSub:
      return "(" + lhs_->ToString(query) + " - " + rhs_->ToString(query) + ")";
    case ExprKind::kMul:
      return "(" + lhs_->ToString(query) + " * " + rhs_->ToString(query) + ")";
    case ExprKind::kDiv:
      return "(" + lhs_->ToString(query) + " / " + rhs_->ToString(query) + ")";
  }
  return "?";
}

Datum EvalBinary(ExprKind op, const Datum& lhs, const Datum& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Datum::NullValue();
  if (lhs.is_string() || rhs.is_string()) return Datum::NullValue();
  // Integer arithmetic when both sides are ints (except division by zero).
  if (lhs.is_int() && rhs.is_int()) {
    int64_t a = lhs.AsInt(), b = rhs.AsInt();
    switch (op) {
      case ExprKind::kAdd:
        return Datum(a + b);
      case ExprKind::kSub:
        return Datum(a - b);
      case ExprKind::kMul:
        return Datum(a * b);
      case ExprKind::kDiv:
        if (b == 0) return Datum::NullValue();
        return Datum(a / b);
      default:
        return Datum::NullValue();
    }
  }
  double a = lhs.AsDouble(), b = rhs.AsDouble();
  switch (op) {
    case ExprKind::kAdd:
      return Datum(a + b);
    case ExprKind::kSub:
      return Datum(a - b);
    case ExprKind::kMul:
      return Datum(a * b);
    case ExprKind::kDiv:
      if (b == 0) return Datum::NullValue();
      return Datum(a / b);
    default:
      return Datum::NullValue();
  }
}

}  // namespace starburst
