#ifndef STARBURST_QUERY_PREDICATE_H_
#define STARBURST_QUERY_PREDICATE_H_

#include <string>
#include <vector>

#include "common/id_set.h"
#include "query/expr.h"

namespace starburst {

class Query;

/// Comparison operators for predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

/// SQL three-valued logic collapsed to two: a comparison involving NULL is
/// not satisfied.
bool EvalCompare(CompareOp op, const Datum& lhs, const Datum& rhs);

/// A conjunct of the WHERE clause: `lhs op rhs` over scalar expressions.
/// Disjunctions/subqueries are out of scope exactly as in the paper's JP
/// definition ("no ORs or subqueries, etc., but expressions OK", §4.4).
struct Predicate {
  int id = -1;
  ExprPtr lhs;
  CompareOp op = CompareOp::kEq;
  ExprPtr rhs;
  /// Quantifiers referenced on either side (derived at AddPredicate time).
  QuantifierSet quantifiers;
  /// Columns referenced on each side (derived).
  ColumnSet lhs_columns;
  ColumnSet rhs_columns;

  ColumnSet Columns() const;
  std::string ToString(const Query* query = nullptr) const;
};

/// --- Predicate classification (paper §4.4 and §4.5) -----------------------
///
/// All classifiers take the two table (quantifier) sets being joined.
/// Notation from the paper:
///   JP = join predicates: reference both sides, nothing outside T1 ∪ T2.
///   SP = sortable: 'col1 op col2' with col1 ∈ χ(T1), col2 ∈ χ(T2) (or
///        flipped).
///   HP = hashable: 'expr(χ(T1)) = expr(χ(T2))'.
///   IP = eligible on the inner only: χ(p) ⊆ χ(T2).
///   XP = indexable: 'expr(χ(T1)) op T2.col' (or flipped).

bool IsEligible(const Predicate& p, QuantifierSet tables);
bool IsJoinPredicate(const Predicate& p, QuantifierSet t1, QuantifierSet t2);
bool IsSortable(const Predicate& p, QuantifierSet t1, QuantifierSet t2);
bool IsHashable(const Predicate& p, QuantifierSet t1, QuantifierSet t2);
bool IsInnerOnly(const Predicate& p, QuantifierSet inner);
bool IsIndexable(const Predicate& p, QuantifierSet outer, QuantifierSet inner);

/// For a sortable predicate, the column belonging to side `side` (one of the
/// two join inputs). Requires IsSortable(p, side, other).
ColumnRef SortColumnFor(const Predicate& p, QuantifierSet side);

/// For an indexable predicate, the bare inner column (the `T2.col` side).
ColumnRef IndexColumnFor(const Predicate& p, QuantifierSet inner);

/// Whether all quantifiers of `columns` lie within `tables`.
bool ColumnsWithin(const ColumnSet& columns, QuantifierSet tables);

}  // namespace starburst

#endif  // STARBURST_QUERY_PREDICATE_H_
