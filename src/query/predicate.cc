#include "query/predicate.h"

#include "query/query.h"

namespace starburst {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCompare(CompareOp op, const Datum& lhs, const Datum& rhs) {
  if (lhs.is_null() || rhs.is_null()) return false;
  int c = lhs.Compare(rhs);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

ColumnSet Predicate::Columns() const {
  ColumnSet out = lhs_columns;
  out.insert(rhs_columns.begin(), rhs_columns.end());
  return out;
}

std::string Predicate::ToString(const Query* query) const {
  return lhs->ToString(query) + " " + CompareOpName(op) + " " +
         rhs->ToString(query);
}

namespace {

QuantifierSet QuantifiersOf(const ColumnSet& columns) {
  QuantifierSet out;
  for (const ColumnRef& c : columns) out.Insert(c.quantifier);
  return out;
}

}  // namespace

bool ColumnsWithin(const ColumnSet& columns, QuantifierSet tables) {
  return tables.ContainsAll(QuantifiersOf(columns));
}

bool IsEligible(const Predicate& p, QuantifierSet tables) {
  return tables.ContainsAll(p.quantifiers);
}

bool IsJoinPredicate(const Predicate& p, QuantifierSet t1, QuantifierSet t2) {
  // References both sides; eligible on the union; no ORs/subqueries exist in
  // this predicate form by construction.
  return p.quantifiers.Intersects(t1) && p.quantifiers.Intersects(t2) &&
         t1.Union(t2).ContainsAll(p.quantifiers);
}

bool IsSortable(const Predicate& p, QuantifierSet t1, QuantifierSet t2) {
  if (!IsJoinPredicate(p, t1, t2)) return false;
  if (!p.lhs->IsBareColumn() || !p.rhs->IsBareColumn()) return false;
  QuantifierSet lq = QuantifiersOf(p.lhs_columns);
  QuantifierSet rq = QuantifiersOf(p.rhs_columns);
  return (t1.ContainsAll(lq) && t2.ContainsAll(rq)) ||
         (t2.ContainsAll(lq) && t1.ContainsAll(rq));
}

bool IsHashable(const Predicate& p, QuantifierSet t1, QuantifierSet t2) {
  if (p.op != CompareOp::kEq) return false;
  if (!IsJoinPredicate(p, t1, t2)) return false;
  QuantifierSet lq = QuantifiersOf(p.lhs_columns);
  QuantifierSet rq = QuantifiersOf(p.rhs_columns);
  if (lq.empty() || rq.empty()) return false;
  return (t1.ContainsAll(lq) && t2.ContainsAll(rq)) ||
         (t2.ContainsAll(lq) && t1.ContainsAll(rq));
}

bool IsInnerOnly(const Predicate& p, QuantifierSet inner) {
  return !p.quantifiers.empty() && inner.ContainsAll(p.quantifiers);
}

bool IsIndexable(const Predicate& p, QuantifierSet outer, QuantifierSet inner) {
  if (!IsJoinPredicate(p, outer, inner)) return false;
  QuantifierSet lq = QuantifiersOf(p.lhs_columns);
  QuantifierSet rq = QuantifiersOf(p.rhs_columns);
  // 'expr(χ(outer)) op inner.col': one side is a bare inner column, the other
  // side references only outer tables.
  if (p.rhs->IsBareColumn() && inner.ContainsAll(rq) && outer.ContainsAll(lq)) {
    return true;
  }
  if (p.lhs->IsBareColumn() && inner.ContainsAll(lq) && outer.ContainsAll(rq)) {
    return true;
  }
  return false;
}

ColumnRef SortColumnFor(const Predicate& p, QuantifierSet side) {
  if (p.lhs->IsBareColumn() && side.Contains(p.lhs->column().quantifier)) {
    return p.lhs->column();
  }
  return p.rhs->column();
}

ColumnRef IndexColumnFor(const Predicate& p, QuantifierSet inner) {
  if (p.rhs->IsBareColumn() && inner.Contains(p.rhs->column().quantifier)) {
    return p.rhs->column();
  }
  return p.lhs->column();
}

}  // namespace starburst
