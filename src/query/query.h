#ifndef STARBURST_QUERY_QUERY_H_
#define STARBURST_QUERY_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/id_set.h"
#include "query/expr.h"
#include "query/predicate.h"

namespace starburst {

/// A table occurrence in the FROM list. The same stored table may appear
/// under several quantifiers (self-joins).
struct Quantifier {
  std::string alias;
  TableId table = -1;
};

/// A parsed, analyzed conjunctive query: SELECT <columns> FROM <quantifiers>
/// WHERE <conjuncts> [ORDER BY <columns>], optionally with a required result
/// site (the R* "query site" requirement). This is the non-procedural input
/// the optimizer turns into a SAP.
class Query {
 public:
  explicit Query(const Catalog* catalog) : catalog_(catalog) {}

  const Catalog& catalog() const { return *catalog_; }

  /// Adds a quantifier over `table_name`; `alias` defaults to the name.
  /// Returns the quantifier id.
  Result<int> AddQuantifier(const std::string& table_name,
                            std::string alias = "");

  /// Adds a WHERE conjunct and returns its predicate id. Fails if the
  /// expressions reference unknown quantifiers/columns.
  Result<int> AddPredicate(ExprPtr lhs, CompareOp op, ExprPtr rhs);

  void AddSelectColumn(ColumnRef ref) { select_list_.push_back(ref); }
  void AddOrderBy(ColumnRef ref) { order_by_.push_back(ref); }
  void set_required_site(SiteId site) { required_site_ = site; }

  int num_quantifiers() const { return static_cast<int>(quantifiers_.size()); }
  const Quantifier& quantifier(int id) const { return quantifiers_[id]; }
  const TableDef& table_of(int quantifier) const {
    return catalog_->table(quantifiers_[quantifier].table);
  }

  int num_predicates() const { return static_cast<int>(predicates_.size()); }
  const Predicate& predicate(int id) const { return predicates_[id]; }

  const std::vector<ColumnRef>& select_list() const { return select_list_; }
  const std::vector<ColumnRef>& order_by() const { return order_by_; }
  std::optional<SiteId> required_site() const { return required_site_; }

  /// Resolves "alias.column" (or bare column if unambiguous).
  Result<ColumnRef> ResolveColumn(const std::string& alias,
                                  const std::string& column) const;
  Result<ColumnRef> ResolveBareColumn(const std::string& column) const;

  /// "alias.COLNAME" rendering for explain output.
  std::string ColumnName(ColumnRef ref) const;
  const ColumnDef& column_def(ColumnRef ref) const;

  QuantifierSet AllQuantifiers() const {
    return QuantifierSet::FirstN(num_quantifiers());
  }
  PredSet AllPredicates() const { return PredSet::FirstN(num_predicates()); }

  /// Predicates in `candidates` eligible on `tables` (χ(p) ⊆ χ(tables)).
  PredSet EligiblePredicates(QuantifierSet tables, PredSet candidates) const;

  /// Columns of quantifier `q` that the rest of the query needs: referenced
  /// by the select list, order-by, or any predicate. Drives projection
  /// push-down in ACCESS.
  ColumnSet ColumnsNeeded(int q) const;

  /// Human-readable one-line rendering for logs and explain headers.
  std::string ToString() const;

 private:
  const Catalog* catalog_;
  std::vector<Quantifier> quantifiers_;
  std::vector<Predicate> predicates_;
  std::vector<ColumnRef> select_list_;
  std::vector<ColumnRef> order_by_;
  std::optional<SiteId> required_site_;
};

}  // namespace starburst

#endif  // STARBURST_QUERY_QUERY_H_
