#include "glue/glue.h"

#include "common/fault_injector.h"
#include "cost/cost_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/governor.h"
#include "query/query.h"
#include "star/memo.h"

namespace starburst {

Glue::Glue(StarEngine* engine, PlanTable* table, std::string access_root)
    : engine_(engine),
      table_(table),
      faults_(FaultInjector::Global()),
      access_root_(std::move(access_root)) {}

std::string Glue::Metrics::ToString() const {
  return "{calls=" + std::to_string(calls) +
         " base_hits=" + std::to_string(base_hits) +
         " root_refs=" + std::to_string(root_references) +
         " veneers=" + std::to_string(veneers_added) +
         " skipped=" + std::to_string(plans_skipped) +
         " aug_hits=" + std::to_string(augmented_cache_hits) +
         " aug_misses=" + std::to_string(augmented_cache_misses) +
         " bypassed=" + std::to_string(cache_bypassed) + "}";
}

void Glue::Metrics::Publish(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->AddCounter("glue.calls", calls);
  registry->AddCounter("glue.base_hits", base_hits);
  registry->AddCounter("glue.root_references", root_references);
  registry->AddCounter("glue.veneers_added", veneers_added);
  registry->AddCounter("glue.plans_skipped", plans_skipped);
  registry->AddCounter("glue.augmented_cache_hits", augmented_cache_hits);
  registry->AddCounter("glue.augmented_cache_misses", augmented_cache_misses);
  registry->AddCounter("glue.cache_bypassed", cache_bypassed);
}

void Glue::Metrics::MergeFrom(const Metrics& other) {
  calls += other.calls;
  base_hits += other.base_hits;
  root_references += other.root_references;
  veneers_added += other.veneers_added;
  plans_skipped += other.plans_skipped;
  augmented_cache_hits += other.augmented_cache_hits;
  augmented_cache_misses += other.augmented_cache_misses;
  cache_bypassed += other.cache_bypassed;
}

namespace {
/// Predicates in `preds` that reference quantifiers outside `tables` —
/// converted join predicates whose probe values change per outer tuple
/// (sideways information passing, §4.4). They may be pushed into a plain
/// stream's access path, but never frozen into a temp: a temp is built once,
/// so correlated predicates must be applied when the temp is probed.
PredSet CorrelatedSubset(const Query& query, PredSet preds,
                         QuantifierSet tables) {
  PredSet out;
  for (int id : preds.ToVector()) {
    if (!tables.ContainsAll(query.predicate(id).quantifiers)) out.Insert(id);
  }
  return out;
}
}  // namespace

Result<SAP> Glue::BasePlans(const StreamSpec& spec, PredSet base_preds) {
  std::optional<SAP> hit = table_->Lookup(spec.tables, base_preds);
  if (hit.has_value()) {
    ++metrics_.base_hits;
    return *std::move(hit);
  }
  if (spec.tables.size() == 1) {
    // Re-reference the single-table root STAR with exactly these predicates
    // — this is what lets a nested-loop join push converted join predicates
    // into the inner's access path instead of retrofitting a FILTER (§4.4).
    ++metrics_.root_references;
    StreamSpec clean;
    clean.tables = spec.tables;
    clean.preds = base_preds;
    auto sap = engine_->EvalStar(access_root_,
                                 {RuleValue(clean), RuleValue(base_preds)});
    if (!sap.ok()) return sap.status();
    // One batch insert: concurrent readers of this key see either no bucket
    // or the fully pruned frontier, never a half-built one.
    table_->InsertBatch(spec.tables, base_preds, sap.value());
    hit = table_->Lookup(spec.tables, base_preds);
    return hit.has_value() ? *std::move(hit) : SAP{};
  }
  // Composite stream: fall back to the canonical bucket (all predicates
  // eligible within the table set, which is how the join enumerator stores
  // plans); Augment retrofits anything extra that was pushed down.
  const Query& query = engine_->query();
  PredSet canonical =
      query.EligiblePredicates(spec.tables, query.AllPredicates());
  hit = table_->Lookup(spec.tables, canonical);
  if (hit.has_value()) {
    ++metrics_.base_hits;
    return *std::move(hit);
  }
  return Status::NotFound(
      "no plans for composite stream " + spec.tables.ToString() +
      "; the join enumerator must populate the plan table bottom-up");
}

bool Glue::Satisfies(const PlanOp& plan, const StreamSpec& spec) const {
  const PropertyVector& p = plan.props;
  if (!p.preds().ContainsAll(spec.preds)) return false;
  const Requirements& req = spec.required;
  if (req.order.has_value() && !OrderSatisfies(p.order(), *req.order)) {
    return false;
  }
  if (req.site.has_value() && p.site() != *req.site) return false;
  if (req.temp && !p.temp()) return false;
  if (req.path.has_value()) {
    bool found = false;
    for (const AccessPath& path : p.paths()) {
      if (OrderSatisfies(path.columns, *req.path)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

Result<PlanPtr> Glue::Augment(PlanPtr plan, const StreamSpec& spec) {
  const PlanFactory& factory = engine_->factory();
  const Requirements& req = spec.required;
  const bool materializes = req.temp || req.path.has_value();
  PlanPtr p = std::move(plan);
  PredSet missing = spec.preds.Minus(p->props.preds());

  // Returns false (and nulls p) when this candidate cannot take the veneer.
  auto veneer = [&](Result<PlanPtr> made) -> bool {
    if (!made.ok()) {
      p = nullptr;
      return false;
    }
    p = std::move(made).value();
    ++metrics_.veneers_added;
    return true;
  };

  // 1. Plain streams apply leftover predicates with a FILTER right away
  //    (composite inners with pushed-down join predicates). Materialized
  //    streams defer them to the probe in step 5.
  if (!materializes && !missing.empty()) {
    OpArgs filter_args;
    filter_args.Set(arg::kPreds, missing);
    if (!veneer(factory.Make(op::kFilter, "", {p}, std::move(filter_args)))) {
      return PlanPtr{};
    }
    missing = PredSet{};
  }

  // 2. [order=...]: SORT unless the stream already arrives in a satisfying
  //    order.
  if (req.order.has_value() &&
      !OrderSatisfies(p->props.order(), *req.order)) {
    OpArgs sort_args;
    sort_args.Set(arg::kOrder, *req.order);
    if (!veneer(factory.Make(op::kSort, "", {p}, std::move(sort_args)))) {
      return PlanPtr{};
    }
  }

  // 3. [site=...]: SHIP to the required site (before any STORE, so the temp
  //    is built where it will be probed, as R* does).
  if (req.site.has_value() && p->props.site() != *req.site) {
    OpArgs ship_args;
    ship_args.Set(arg::kSite, static_cast<int64_t>(*req.site));
    if (!veneer(factory.Make(op::kShip, "", {p}, std::move(ship_args)))) {
      return PlanPtr{};
    }
  }

  // 4. [temp] / [paths >= IX]: STORE, optionally building the dynamic
  //    index (§4.5.3: "the STARs implementing Glue will add [order] and
  //    [temp] requirements to ensure the creation of a compact index").
  if (materializes && !p->props.temp()) {
    // An injected failure here must surface as an error, not as a "candidate
    // cannot take the veneer" nullptr — a silent skip would just pick a
    // different plan and hide the fault.
    STARBURST_RETURN_NOT_OK(faults_->Check(faultsite::kGlueStore));
    OpArgs store_args;
    store_args.Set(arg::kTempName, temp_prefix_ + std::to_string(++temp_counter_));
    if (req.path.has_value()) store_args.Set(arg::kIndexOn, *req.path);
    if (!veneer(factory.Make(op::kStore, "", {p}, std::move(store_args)))) {
      return PlanPtr{};
    }
  }

  // 5. Probe the materialized stream with the deferred (typically
  //    correlated) predicates.
  if (materializes && !missing.empty()) {
    OpArgs probe_args;
    probe_args.Set(arg::kPreds, missing);
    const char* probe_flavor =
        req.path.has_value() ? flavor::kTempIndex : flavor::kTemp;
    if (!veneer(factory.Make(op::kAccess, probe_flavor, {p},
                             std::move(probe_args)))) {
      return PlanPtr{};
    }
  }
  return p;
}

Result<SAP> Glue::Resolve(const StreamSpec& spec) {
  if (governor_ != nullptr) {
    STARBURST_RETURN_NOT_OK(governor_->Check());
  }
  STARBURST_RETURN_NOT_OK(faults_->Check(faultsite::kGlueResolve));
  ++metrics_.calls;
  const Query& query = engine_->query();
  std::string label;
  if (ShouldTrace(tracer_)) label = "Resolve " + spec.ToString(&query);
  TraceSpan span(tracer_, TraceKind::kGlue, label);
  const int64_t veneers_before = metrics_.veneers_added;
  const int64_t skipped_before = metrics_.plans_skipped;

  // With a shared memo attached, the augmented-plan cache is a whole-Resolve
  // memo entry: Resolve is a pure function of the spec within one run (the
  // rank barrier completes every bucket it reads before a later rank can
  // reference it, and augmented plans no longer enter the plan table), so
  // the first resolution of a spec — by any worker — serves all later ones.
  const bool use_memo = memo_ != nullptr && cache_augmented_;
  std::string memo_key;
  if (use_memo) {
    memo_key = "glue|" + CanonicalSpecKey(spec);
    if (std::optional<SAP> cached = memo_->Lookup(memo_key)) {
      ++metrics_.augmented_cache_hits;
      if (span.active()) {
        span.set_detail("memo hit, " + std::to_string(cached->size()) +
                        " plan(s)");
      }
      return *std::move(cached);
    }
    ++metrics_.augmented_cache_misses;
  }

  // Correlated predicates cannot be frozen into a temp; keep them out of the
  // base plans when the stream will be materialized.
  PredSet base_preds = spec.preds;
  if (spec.required.temp || spec.required.path.has_value()) {
    base_preds =
        base_preds.Minus(CorrelatedSubset(query, spec.preds, spec.tables));
  }
  auto base = BasePlans(spec, base_preds);
  if (!base.ok()) return base.status();

  const CostModel& cost_model = engine_->factory().cost_model();
  SAP out;
  int64_t bypassed = 0;
  for (const PlanPtr& candidate : base.value()) {
    PlanPtr p = candidate;
    if (!Satisfies(*p, spec)) {
      auto augmented = Augment(p, spec);
      if (!augmented.ok()) return augmented.status();
      p = std::move(augmented).value();
      if (p == nullptr || !Satisfies(*p, spec)) {
        ++metrics_.plans_skipped;
        continue;
      }
      // Remember the augmented plan so later Glue references with the same
      // requirements find it ready-made (Figure 3's plan 3). With a memo the
      // whole Resolve result is memoized after pruning (below); the legacy
      // plan-table write-back is only used memo-less and outside enumeration
      // because it is resolve-order dependent.
      if (use_memo) {
        // Covered by the whole-Resolve memo insert below.
      } else if (cache_augmented_) {
        table_->Insert(spec.tables, p->props.preds(), p);
      } else {
        ++bypassed;
      }
    }
    out.push_back(std::move(p));
  }
  if (bypassed > 0) {
    metrics_.cache_bypassed += bypassed;
    if (ShouldTrace(tracer_)) {
      tracer_->Instant(TraceKind::kGlue, "augmented-cache bypassed",
                       std::to_string(bypassed) + " plan(s) not cached");
    }
  }
  PruneDominated(&out, cost_model);
  if (!engine_->options().glue_return_all && out.size() > 1) {
    PlanPtr best = CheapestPlan(out, cost_model);
    out = SAP{std::move(best)};
  }
  if (span.active()) {
    span.set_detail(
        std::to_string(out.size()) + " plan(s), " +
        std::to_string(metrics_.veneers_added - veneers_before) +
        " veneer op(s), " +
        std::to_string(metrics_.plans_skipped - skipped_before) +
        " rejected");
  }
  // Memoize the complete, pruned frontier: error paths return before this
  // point, so concurrent readers only ever see finished resolutions.
  if (use_memo) {
    memo_->Insert(memo_key, out);
  }
  return out;
}

}  // namespace starburst
