#ifndef STARBURST_GLUE_GLUE_H_
#define STARBURST_GLUE_GLUE_H_

#include <string>

#include "optimizer/plan_table.h"
#include "star/engine.h"

namespace starburst {

class ExpansionMemo;
class FaultInjector;
class Query;
class MetricsRegistry;
class ResourceGovernor;
class Tracer;

/// The paper's Glue mechanism (§3.2): given a stream spec with accumulated
/// required properties, it
///   1. checks the plan table for plans with the required relational
///      properties, referencing the top-most (access) STAR if none exist;
///   2. injects a "veneer" of glue operators — SORT for [order], SHIP for
///      [site], STORE for [temp], STORE+dynamic-index+probe for [paths];
///   3. returns either all satisfying plans (Pareto frontier) or just the
///      cheapest, per EngineOptions::glue_return_all.
class Glue : public GlueInterface {
 public:
  struct Metrics {
    int64_t calls = 0;
    int64_t base_hits = 0;        ///< plan-table hit for the relational key
    int64_t root_references = 0;  ///< AccessRoot re-references (step 1)
    int64_t veneers_added = 0;    ///< glue operators injected (step 2)
    int64_t plans_skipped = 0;    ///< candidates that could not be augmented
    int64_t augmented_cache_hits = 0;    ///< whole-Resolve memo hits
    int64_t augmented_cache_misses = 0;  ///< whole-Resolve memo misses
    int64_t cache_bypassed = 0;  ///< augmented plans not cached (knob off)

    std::string ToString() const;
    /// Publishes the counters into `registry` under the `glue.` prefix.
    void Publish(MetricsRegistry* registry) const;
    /// Accumulates another Glue instance's counters (parallel enumeration
    /// merges per-worker Glues back into the main one after the run).
    void MergeFrom(const Metrics& other);
  };

  Glue(StarEngine* engine, PlanTable* table,
       std::string access_root = "AccessRoot");

  Result<SAP> Resolve(const StreamSpec& spec) override;

  Metrics& metrics() { return metrics_; }
  /// Attach a tracer to record Resolve spans (null = off).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  /// Attach a resource governor checked at every Resolve (null = off).
  void set_governor(ResourceGovernor* governor) { governor_ = governor; }
  /// Override the fault injector (tests); defaults to FaultInjector::Global().
  void set_faults(FaultInjector* faults) { faults_ = faults; }

  /// Whether Resolve may cache augmented plans (Figure 3's plan 3). With a
  /// shared memo attached (see set_memo) the cache is a whole-Resolve memo
  /// entry under the spec's canonical key — deterministic at any thread
  /// count, so it stays on during enumeration. Without a memo the legacy
  /// behavior applies: augmented plans are written back into the plan table,
  /// which is resolve-order dependent, so the join enumerator bypasses the
  /// cache for the duration of enumeration (and says so with a trace
  /// instant and the cache_bypassed metric).
  void set_cache_augmented(bool cache) { cache_augmented_ = cache; }
  bool cache_augmented() const { return cache_augmented_; }

  /// Attach a shared expansion memo (null = off). When set and caching is
  /// enabled, Resolve results are memoized whole under canonical spec keys
  /// instead of inserting augmented plans into the plan table.
  void set_memo(ExpansionMemo* memo) { memo_ = memo; }
  ExpansionMemo* memo() const { return memo_; }

  /// The root STAR this Glue references for single-table streams (exposed so
  /// parallel enumeration workers can clone the configuration).
  const std::string& access_root() const { return access_root_; }

  /// Prefix for generated temp names ("tmp" by default). Parallel workers
  /// get distinct prefixes ("w0_tmp", ...) so concurrently built temps never
  /// collide; plan signatures exclude temp names, so determinism is kept.
  void set_temp_prefix(std::string prefix) { temp_prefix_ = std::move(prefix); }

 private:
  /// Plans for the spec's relational content before any veneer: plan-table
  /// bucket for (tables, base_preds), created by re-referencing the
  /// single-table root STAR when absent. For composite streams the canonical
  /// bucket is used and missing predicates are retrofitted by Augment.
  Result<SAP> BasePlans(const StreamSpec& spec, PredSet base_preds);

  /// Adds the veneer operators needed for `plan` to satisfy the spec;
  /// returns nullptr when this candidate cannot be augmented (e.g. the sort
  /// key is not in the stream).
  Result<PlanPtr> Augment(PlanPtr plan, const StreamSpec& spec);

  bool Satisfies(const PlanOp& plan, const StreamSpec& spec) const;

  StarEngine* engine_;
  PlanTable* table_;
  ExpansionMemo* memo_ = nullptr;
  Tracer* tracer_ = nullptr;
  ResourceGovernor* governor_ = nullptr;
  FaultInjector* faults_;
  std::string access_root_;
  Metrics metrics_;
  bool cache_augmented_ = true;
  std::string temp_prefix_ = "tmp";
  int temp_counter_ = 0;
};

}  // namespace starburst

#endif  // STARBURST_GLUE_GLUE_H_
