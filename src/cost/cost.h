#ifndef STARBURST_COST_COST_H_
#define STARBURST_COST_COST_H_

#include <string>

namespace starburst {

/// Estimated resource consumption of a plan, per [LOHM 85]: "total resources,
/// a linear combination of I/O, CPU, and communications costs". Components
/// are kept separate so the weights can be tuned per deployment (and so the
/// distributed benchmarks can report communication separately).
struct Cost {
  double io = 0.0;    ///< page reads/writes
  double cpu = 0.0;   ///< abstract instruction units
  double comm = 0.0;  ///< messages + bytes shipped (already combined)

  Cost operator+(const Cost& o) const {
    return Cost{io + o.io, cpu + o.cpu, comm + o.comm};
  }
  Cost& operator+=(const Cost& o) {
    io += o.io;
    cpu += o.cpu;
    comm += o.comm;
    return *this;
  }
  Cost operator*(double k) const { return Cost{io * k, cpu * k, comm * k}; }

  bool operator==(const Cost& o) const {
    return io == o.io && cpu == o.cpu && comm == o.comm;
  }

  std::string ToString() const;
};

/// Weights of the linear combination. Defaults approximate a 1988-era
/// disk-bound centralized system with costly WAN communication.
struct CostWeights {
  double io = 1.0;
  double cpu = 0.01;
  double comm = 1.0;
};

inline double TotalCost(const Cost& c, const CostWeights& w = CostWeights{}) {
  return c.io * w.io + c.cpu * w.cpu + c.comm * w.comm;
}

}  // namespace starburst

#endif  // STARBURST_COST_COST_H_
