#include "cost/selectivity.h"

#include <algorithm>
#include <cmath>

#include "query/query.h"

namespace starburst {

namespace {

constexpr double kDefaultEq = 0.1;
constexpr double kDefaultRange = 1.0 / 3.0;

double Clamp01(double v) { return std::min(1.0, std::max(1e-9, v)); }

/// Distinct-value statistic of a bare-column side, or 0 if not a bare column.
double DistinctOf(const Query& query, const ExprPtr& e) {
  if (!e->IsBareColumn() || e->column().is_tid()) return 0.0;
  return std::max(1.0, query.column_def(e->column()).distinct_values);
}

/// Range interpolation for `col op literal` when min/max statistics exist.
double RangeSelectivity(const Query& query, const ExprPtr& col,
                        const Datum& lit, CompareOp op) {
  if (!col->IsBareColumn() || col->column().is_tid()) return kDefaultRange;
  const ColumnDef& def = query.column_def(col->column());
  if (!def.min_value || !def.max_value || lit.is_null() || lit.is_string()) {
    return kDefaultRange;
  }
  double lo = *def.min_value, hi = *def.max_value;
  if (hi <= lo) return kDefaultRange;
  double v = lit.AsDouble();
  double frac_below = (v - lo) / (hi - lo);
  switch (op) {
    case CompareOp::kLt:
    case CompareOp::kLe:
      return Clamp01(frac_below);
    case CompareOp::kGt:
    case CompareOp::kGe:
      return Clamp01(1.0 - frac_below);
    default:
      return kDefaultRange;
  }
}

}  // namespace

double PredicateSelectivity(const Query& query, const Predicate& p) {
  const bool lhs_lit = p.lhs_columns.empty();
  const bool rhs_lit = p.rhs_columns.empty();
  double d_lhs = DistinctOf(query, p.lhs);
  double d_rhs = DistinctOf(query, p.rhs);

  double eq;
  if (d_lhs > 0 && d_rhs > 0) {
    eq = 1.0 / std::max(d_lhs, d_rhs);  // col = col
  } else if (d_lhs > 0 && rhs_lit) {
    eq = 1.0 / d_lhs;  // col = literal
  } else if (d_rhs > 0 && lhs_lit) {
    eq = 1.0 / d_rhs;  // literal = col
  } else {
    eq = kDefaultEq;  // expression = expression
  }

  switch (p.op) {
    case CompareOp::kEq:
      return Clamp01(eq);
    case CompareOp::kNe:
      return Clamp01(1.0 - eq);
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kGt:
    case CompareOp::kGe:
      if (d_lhs > 0 && rhs_lit) {
        return RangeSelectivity(query, p.lhs, p.rhs->literal(), p.op);
      }
      if (d_rhs > 0 && lhs_lit) {
        // Flip the operator to view it as `col op literal`.
        CompareOp flipped = p.op;
        switch (p.op) {
          case CompareOp::kLt:
            flipped = CompareOp::kGt;
            break;
          case CompareOp::kLe:
            flipped = CompareOp::kGe;
            break;
          case CompareOp::kGt:
            flipped = CompareOp::kLt;
            break;
          case CompareOp::kGe:
            flipped = CompareOp::kLe;
            break;
          default:
            break;
        }
        return RangeSelectivity(query, p.rhs, p.lhs->literal(), flipped);
      }
      return kDefaultRange;
  }
  return kDefaultRange;
}

double CombinedSelectivity(const Query& query, PredSet preds,
                           PredSet already_applied) {
  double sel = 1.0;
  for (int id : preds.Minus(already_applied).ToVector()) {
    sel *= PredicateSelectivity(query, query.predicate(id));
  }
  return sel;
}

}  // namespace starburst
