#ifndef STARBURST_COST_SELECTIVITY_H_
#define STARBURST_COST_SELECTIVITY_H_

#include "common/id_set.h"
#include "query/predicate.h"

namespace starburst {

class Query;

/// System-R-style single-predicate selectivity estimate [SELI 79]:
///   col = literal   -> 1 / distinct(col)
///   col = col       -> 1 / max(distinct, distinct)
///   col <> ...      -> 1 - eq estimate
///   col < literal   -> interpolated from (min,max) when known, else 1/3
///   other ranges    -> 1/3
///   expr = expr     -> 1/10 (no statistics on expressions)
double PredicateSelectivity(const Query& query, const Predicate& p);

/// Product over the set, assuming independence (as System R did). Predicates
/// in `already_applied` contribute nothing — this is how property functions
/// avoid double-counting join predicates that were pushed into an input.
double CombinedSelectivity(const Query& query, PredSet preds,
                           PredSet already_applied = PredSet{});

}  // namespace starburst

#endif  // STARBURST_COST_SELECTIVITY_H_
