#ifndef STARBURST_COST_COST_MODEL_H_
#define STARBURST_COST_COST_MODEL_H_

#include "catalog/catalog.h"
#include "cost/cost.h"
#include "properties/property.h"

namespace starburst {

class Query;

/// Tunable constants of the cost formulas. Defaults approximate the
/// R*-validated model of [MACK 86]: unit = one sequential page I/O; CPU is
/// charged per tuple touched and per predicate comparison; communication is
/// per-message plus per-byte [LOHM 85].
struct CostParams {
  double page_bytes = 4096.0;
  double cpu_per_tuple = 1.0;        ///< per tuple produced/touched
  double cpu_per_compare = 0.25;     ///< per predicate or sort comparison
  double cpu_per_hash = 0.5;         ///< per tuple hashed (build or probe)
  double random_io = 1.0;            ///< cost of one random page fetch
  double msg_cost = 5.0;             ///< per network message, comm units
  double msg_bytes = 4096.0;         ///< payload per message
  double byte_cost = 0.0005;         ///< per byte shipped
  double sort_memory_pages = 64.0;   ///< sorts within this spill nothing
  /// Temps at most this many pages stay buffer-resident: rescans and index
  /// probes of them cost CPU only ([MACK 86] temp handling; this is what
  /// makes §4.5.2/§4.5.3 materialization strategies pay off).
  double buffer_pages = 64.0;
  double index_fanout = 200.0;       ///< entries per index leaf page
  CostWeights weights;
};

/// Cost estimation helpers shared by all property functions. Stateless apart
/// from the parameters; safe to share across threads.
class CostModel {
 public:
  explicit CostModel(CostParams params = CostParams{}) : params_(params) {}

  const CostParams& params() const { return params_; }
  double Total(const Cost& c) const { return TotalCost(c, params_.weights); }

  /// Average stored width (bytes) of a tuple carrying `cols`.
  double RowWidth(const Query& query, const ColumnSet& cols) const;

  /// Pages occupied by `rows` tuples of `row_bytes` each (>= 1 when rows>0).
  double PagesFor(double rows, double row_bytes) const;

  /// Full sequential scan of a stored table.
  Cost ScanCost(const TableDef& table) const;

  /// B-tree range access touching `fraction` of the table's pages.
  Cost BTreeAccessCost(const TableDef& table, double fraction) const;

  /// Secondary-index scan returning `matches` entries out of `index` on
  /// `table` (leaf pages touched scale with the matched fraction).
  Cost IndexScanCost(const TableDef& table, const IndexDef& index,
                     double match_fraction, double matches) const;

  /// Random fetches of `rows` data tuples by TID.
  Cost FetchCost(double rows) const;

  /// Fetches of `rows` tuples by *sorted* TIDs: page accesses are sequential
  /// and each data page is touched at most once (the paper's omitted
  /// "sorting TIDs taken from an unordered index in order to order I/O
  /// accesses to data pages" STAR, §4).
  Cost SortedFetchCost(double rows, double table_pages) const;

  /// Sort `rows` of `row_bytes`: N log N compares plus spill I/O when the
  /// run exceeds sort_memory_pages.
  Cost SortCost(double rows, double row_bytes) const;

  /// Ship `rows` of `row_bytes` to another site.
  Cost ShipCost(double rows, double row_bytes) const;

  /// Write `rows` of `row_bytes` into a temp (sequential page writes).
  Cost StoreCost(double rows, double row_bytes) const;

  /// Read a materialized temp of `rows`/`row_bytes` (sequential).
  Cost TempScanCost(double rows, double row_bytes) const;

  /// Build a dynamic index over `rows` entries (paper §4.5.3): sort the keys
  /// and write compact leaves.
  Cost IndexBuildCost(double rows, double key_bytes) const;

  /// Probe a dynamic/temp index expecting `matches` of `rows` entries.
  Cost IndexProbeCost(double rows, double matches) const;

  /// CPU to evaluate `num_preds` predicates over `rows` tuples.
  Cost PredicateCost(double rows, int num_preds) const;

  /// CPU to emit `rows` result tuples.
  Cost OutputCost(double rows) const;

 private:
  CostParams params_;
};

}  // namespace starburst

#endif  // STARBURST_COST_COST_MODEL_H_
