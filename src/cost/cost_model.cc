#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

#include "query/query.h"

namespace starburst {

double CostModel::RowWidth(const Query& query, const ColumnSet& cols) const {
  double width = 0.0;
  for (const ColumnRef& c : cols) {
    width += c.is_tid() ? 8.0 : query.column_def(c).avg_width;
  }
  return std::max(8.0, width);
}

double CostModel::PagesFor(double rows, double row_bytes) const {
  if (rows <= 0) return 0.0;
  return std::max(1.0, std::ceil(rows * row_bytes / params_.page_bytes));
}

Cost CostModel::ScanCost(const TableDef& table) const {
  Cost c;
  c.io = table.data_pages;
  c.cpu = table.row_count * params_.cpu_per_tuple;
  return c;
}

Cost CostModel::BTreeAccessCost(const TableDef& table,
                                double fraction) const {
  fraction = std::clamp(fraction, 0.0, 1.0);
  Cost c;
  // Descend (~3 levels) then read the matched fraction of data pages.
  c.io = 3.0 + std::max(1.0, table.data_pages * fraction);
  c.cpu = std::max(1.0, table.row_count * fraction) * params_.cpu_per_tuple;
  return c;
}

Cost CostModel::IndexScanCost(const TableDef& table, const IndexDef& index,
                              double match_fraction, double matches) const {
  match_fraction = std::clamp(match_fraction, 0.0, 1.0);
  (void)table;
  Cost c;
  c.io = 2.0 + std::max(1.0, index.leaf_pages * match_fraction);
  c.cpu = std::max(1.0, matches) * params_.cpu_per_tuple;
  return c;
}

Cost CostModel::FetchCost(double rows) const {
  Cost c;
  c.io = rows * params_.random_io;
  c.cpu = rows * params_.cpu_per_tuple;
  return c;
}

Cost CostModel::SortedFetchCost(double rows, double table_pages) const {
  Cost c;
  // Yao's formula (smooth approximation): the expected number of distinct
  // pages touched by `rows` uniformly spread references — sorted access
  // visits each such page exactly once.
  double pages = std::max(1.0, table_pages);
  double touched = pages * (1.0 - std::exp(-rows / pages));
  c.io = std::min(rows * params_.random_io, touched);
  c.cpu = rows * params_.cpu_per_tuple;
  return c;
}

Cost CostModel::SortCost(double rows, double row_bytes) const {
  Cost c;
  if (rows <= 1) return c;
  c.cpu = rows * std::log2(std::max(2.0, rows)) * params_.cpu_per_compare;
  double pages = PagesFor(rows, row_bytes);
  if (pages > params_.sort_memory_pages) {
    c.io = 2.0 * pages;  // one spill write + one merge read
  }
  return c;
}

Cost CostModel::ShipCost(double rows, double row_bytes) const {
  Cost c;
  double bytes = std::max(0.0, rows) * row_bytes;
  double msgs = std::max(1.0, std::ceil(bytes / params_.msg_bytes));
  c.comm = msgs * params_.msg_cost + bytes * params_.byte_cost;
  c.cpu = rows * params_.cpu_per_tuple;  // marshal/unmarshal
  return c;
}

Cost CostModel::StoreCost(double rows, double row_bytes) const {
  Cost c;
  c.io = PagesFor(rows, row_bytes);
  c.cpu = rows * params_.cpu_per_tuple;
  return c;
}

Cost CostModel::TempScanCost(double rows, double row_bytes) const {
  Cost c;
  double pages = PagesFor(rows, row_bytes);
  // Buffer-resident temps re-read for free (I/O-wise).
  c.io = pages > params_.buffer_pages ? pages : 0.0;
  c.cpu = rows * params_.cpu_per_tuple;
  return c;
}

Cost CostModel::IndexBuildCost(double rows, double key_bytes) const {
  Cost c = SortCost(rows, key_bytes + 8.0);
  c.io += PagesFor(rows, key_bytes + 8.0);  // write compact leaves
  c.cpu += rows * params_.cpu_per_tuple;
  return c;
}

Cost CostModel::IndexProbeCost(double rows, double matches) const {
  Cost c;
  double leaf_pages = std::max(1.0, std::ceil(rows / params_.index_fanout));
  // Entries plus data of 8-byte-keyed temps: buffer-resident probes are
  // CPU-only; larger temps pay a descend + matched-leaf + fetch I/O.
  double data_pages = PagesFor(rows, 32.0);
  if (leaf_pages + data_pages > params_.buffer_pages) {
    c.io = 1.0 +
           std::min(leaf_pages,
                    std::max(1.0, std::ceil(matches / params_.index_fanout)));
    c.io += matches * params_.random_io;
  }
  c.cpu = (std::log2(std::max(2.0, rows)) + std::max(1.0, matches)) *
          params_.cpu_per_tuple;
  return c;
}

Cost CostModel::PredicateCost(double rows, int num_preds) const {
  Cost c;
  c.cpu = rows * num_preds * params_.cpu_per_compare;
  return c;
}

Cost CostModel::OutputCost(double rows) const {
  Cost c;
  c.cpu = rows * params_.cpu_per_tuple;
  return c;
}

}  // namespace starburst
