#ifndef STARBURST_BASELINE_TRANSFORM_OPTIMIZER_H_
#define STARBURST_BASELINE_TRANSFORM_OPTIMIZER_H_

#include <string>

#include "baseline/transform_rules.h"
#include "cost/cost_model.h"

namespace starburst {

struct BaselineOptions {
  TransformRuleOptions rules;
  CostParams cost_params;
  /// Safety caps: transformational search is the side of E1 that explodes.
  int64_t max_plans = 20000;
  int max_iterations = 100;
};

/// Effort counters of the transformational search — the quantities the
/// paper's §1 argues against: every iteration attempts every rule at every
/// node of every plan, with unification and duplicate detection.
struct BaselineMetrics {
  int64_t iterations = 0;
  int64_t rule_node_attempts = 0;
  int64_t pattern_comparisons = 0;
  int64_t conditions_evaluated = 0;
  int64_t matches = 0;
  int64_t transformations_applied = 0;
  int64_t plans_generated = 0;
  int64_t duplicates_rejected = 0;
  int64_t invalid_rejected = 0;   ///< rewrites failing well-formedness
  int64_t ancestors_rebuilt = 0;  ///< cost re-estimations of shared parents
  bool hit_caps = false;

  std::string ToString() const;
};

struct BaselineResult {
  PlanPtr best;
  double total_cost = 0.0;
  int64_t plans_total = 0;
  BaselineMetrics metrics;
  double optimize_micros = 0.0;
};

/// An EXODUS/Freytag-style transformational optimizer over the same LOLEPOP
/// plan algebra and cost model as the STAR engine: start from one initial
/// plan, exhaustively apply transformation rules to every node of every
/// plan until closure (or caps), then pick the cheapest plan satisfying the
/// query requirements. Centralized queries only — the baseline exists for
/// the E1 efficiency comparison, not as a production path.
class TransformOptimizer {
 public:
  explicit TransformOptimizer(BaselineOptions options = BaselineOptions{});

  Result<BaselineResult> Optimize(const Query& query);

 private:
  BaselineOptions options_;
  OperatorRegistry operators_;
  /// Builtin-registration outcome, reported from Optimize() rather than
  /// thrown from the constructor.
  Status init_status_;
};

}  // namespace starburst

#endif  // STARBURST_BASELINE_TRANSFORM_OPTIMIZER_H_
