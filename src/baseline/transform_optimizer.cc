#include "baseline/transform_optimizer.h"

#include <chrono>
#include <set>

#include "plan/explain.h"
#include "plan/validate.h"
#include "properties/property_functions.h"

namespace starburst {

std::string BaselineMetrics::ToString() const {
  return "{iterations=" + std::to_string(iterations) +
         " attempts=" + std::to_string(rule_node_attempts) +
         " comparisons=" + std::to_string(pattern_comparisons) +
         " conditions=" + std::to_string(conditions_evaluated) +
         " matches=" + std::to_string(matches) +
         " applied=" + std::to_string(transformations_applied) +
         " plans=" + std::to_string(plans_generated) +
         " dups=" + std::to_string(duplicates_rejected) +
         " invalid=" + std::to_string(invalid_rejected) +
         " rebuilt=" + std::to_string(ancestors_rebuilt) +
         (hit_caps ? " CAPPED" : "") + "}";
}

TransformOptimizer::TransformOptimizer(BaselineOptions options)
    : options_(options) {
  init_status_ = RegisterBuiltinOperators(&operators_);
}

Result<BaselineResult> TransformOptimizer::Optimize(const Query& query) {
  STARBURST_RETURN_NOT_OK(init_status_);
  auto start = std::chrono::steady_clock::now();
  if (query.catalog().num_sites() > 1) {
    // Not a limitation of the approach per se, but distributed rules are out
    // of scope for the baseline (see header).
  }

  CostModel cost_model(options_.cost_params);
  PlanFactory factory(query, cost_model, operators_);
  std::vector<TransformRule> rules = DefaultTransformRules(options_.rules);

  BaselineResult result;
  BaselineMetrics& m = result.metrics;

  auto initial = MakeInitialPlan(factory);
  if (!initial.ok()) return initial.status();

  std::vector<PlanPtr> pool{std::move(initial).value()};
  std::set<std::string> seen{PlanSignature(*pool[0])};
  std::vector<PlanPtr> frontier = pool;

  while (!frontier.empty() && m.iterations < options_.max_iterations &&
         static_cast<int64_t>(pool.size()) < options_.max_plans) {
    ++m.iterations;
    std::vector<PlanPtr> next;
    for (const PlanPtr& plan : frontier) {
      for (const PlanPath& path : EnumeratePaths(plan)) {
        PlanPtr node = NodeAt(plan, path);
        for (const TransformRule& rule : rules) {
          ++m.rule_node_attempts;
          MatchResult match;
          if (!MatchPattern(rule.pattern, node, &match,
                            &m.pattern_comparisons)) {
            continue;
          }
          ++m.matches;
          if (rule.condition) {
            ++m.conditions_evaluated;
            if (!rule.condition(match, factory)) continue;
          }
          auto replacements = rule.apply(match, factory);
          if (!replacements.ok()) {
            if (replacements.status().code() ==
                StatusCode::kInvalidArgument) {
              continue;
            }
            return replacements.status();
          }
          for (PlanPtr& replacement : replacements.value()) {
            ++m.transformations_applied;
            auto rebuilt = ReplaceAt(factory, plan, path,
                                     std::move(replacement),
                                     &m.ancestors_rebuilt);
            if (!rebuilt.ok()) continue;
            // Transformations can move a correlated subtree out of the
            // scope that binds it; a well-formedness pass must reject those
            // plans (one more per-plan cost of this architecture, [ROSE 87]).
            if (!ValidatePlan(*rebuilt.value(), query).ok()) {
              ++m.invalid_rejected;
              continue;
            }
            std::string sig = PlanSignature(*rebuilt.value());
            if (!seen.insert(std::move(sig)).second) {
              ++m.duplicates_rejected;
              continue;
            }
            ++m.plans_generated;
            pool.push_back(rebuilt.value());
            next.push_back(std::move(rebuilt).value());
            if (static_cast<int64_t>(pool.size()) >= options_.max_plans) {
              m.hit_caps = true;
              break;
            }
          }
          if (m.hit_caps) break;
        }
        if (m.hit_caps) break;
      }
      if (m.hit_caps) break;
    }
    frontier = std::move(next);
  }
  if (m.iterations >= options_.max_iterations) m.hit_caps = true;

  // Finalize: append SORT/SHIP veneers needed by the query, then pick the
  // cheapest.
  auto finalize = [&](const PlanPtr& plan) -> Result<PlanPtr> {
    PlanPtr p = plan;
    if (!query.order_by().empty() &&
        !OrderSatisfies(p->props.order(), query.order_by())) {
      OpArgs args;
      args.Set(arg::kOrder, query.order_by());
      auto sorted = factory.Make(op::kSort, "", {p}, std::move(args));
      if (!sorted.ok()) return sorted;
      p = std::move(sorted).value();
    }
    SiteId site = query.required_site().value_or(0);
    if (p->props.site() != site) {
      OpArgs args;
      args.Set(arg::kSite, static_cast<int64_t>(site));
      auto shipped = factory.Make(op::kShip, "", {p}, std::move(args));
      if (!shipped.ok()) return shipped;
      p = std::move(shipped).value();
    }
    return p;
  };

  for (const PlanPtr& plan : pool) {
    auto finalized = finalize(plan);
    if (!finalized.ok()) continue;
    double cost = cost_model.Total(finalized.value()->props.cost());
    if (result.best == nullptr || cost < result.total_cost) {
      result.best = std::move(finalized).value();
      result.total_cost = cost;
    }
  }
  if (result.best == nullptr) {
    return Status::Internal("baseline produced no finalizable plan");
  }
  result.plans_total = static_cast<int64_t>(pool.size());
  result.optimize_micros = std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - start)
                               .count();
  return result;
}

}  // namespace starburst
