#include "baseline/pattern.h"

namespace starburst {

bool MatchPattern(const Pattern& pattern, const PlanPtr& node,
                  MatchResult* result, int64_t* comparisons) {
  ++*comparisons;
  if (node == nullptr) return false;
  if (pattern.binding >= 0) {
    if (result->bindings.size() <=
        static_cast<size_t>(pattern.binding)) {
      result->bindings.resize(static_cast<size_t>(pattern.binding) + 1);
    }
    result->bindings[static_cast<size_t>(pattern.binding)] = node;
  }
  if (pattern.kind == Pattern::Kind::kAny) return true;
  if (node->name() != pattern.op_name) return false;
  if (!pattern.flavor.empty() && node->flavor != pattern.flavor) return false;
  if (node->inputs.size() != pattern.children.size()) return false;
  for (size_t i = 0; i < pattern.children.size(); ++i) {
    if (!MatchPattern(pattern.children[i], node->inputs[i], result,
                      comparisons)) {
      return false;
    }
  }
  return true;
}

namespace {
void EnumerateRec(const PlanPtr& node, PlanPath* current,
                  std::vector<PlanPath>* out) {
  out->push_back(*current);
  for (size_t i = 0; i < node->inputs.size(); ++i) {
    current->push_back(static_cast<int>(i));
    EnumerateRec(node->inputs[i], current, out);
    current->pop_back();
  }
}
}  // namespace

std::vector<PlanPath> EnumeratePaths(const PlanPtr& root) {
  std::vector<PlanPath> out;
  PlanPath current;
  EnumerateRec(root, &current, &out);
  return out;
}

PlanPtr NodeAt(const PlanPtr& root, const PlanPath& path) {
  PlanPtr node = root;
  for (int child : path) {
    node = node->inputs[static_cast<size_t>(child)];
  }
  return node;
}

Result<PlanPtr> ReplaceAt(const PlanFactory& factory, const PlanPtr& root,
                          const PlanPath& path, PlanPtr replacement,
                          int64_t* rebuilt_nodes) {
  if (path.empty()) return replacement;
  std::vector<PlanPtr> child_inputs = root->inputs;
  PlanPath rest(path.begin() + 1, path.end());
  auto rebuilt = ReplaceAt(factory, child_inputs[static_cast<size_t>(path[0])],
                           rest, std::move(replacement), rebuilt_nodes);
  if (!rebuilt.ok()) return rebuilt;
  child_inputs[static_cast<size_t>(path[0])] = std::move(rebuilt).value();
  ++*rebuilt_nodes;
  return factory.Make(root->name(), root->flavor, std::move(child_inputs),
                      root->args);
}

}  // namespace starburst
