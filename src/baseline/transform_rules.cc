#include "baseline/transform_rules.h"

#include "properties/property_functions.h"

namespace starburst {

namespace {

/// Join/residual predicate derivation relative to what the inputs applied.
struct JoinPredSplit {
  PredSet join;
  PredSet residual;
};

JoinPredSplit SplitPreds(const Query& query, const std::string& join_flavor,
                         const PropertyVector& outer,
                         const PropertyVector& inner) {
  QuantifierSet s = outer.tables().Union(inner.tables());
  PredSet applied = outer.preds().Union(inner.preds());
  PredSet newly =
      query.EligiblePredicates(s, query.AllPredicates()).Minus(applied);

  JoinPredSplit split;
  for (int id : newly.ToVector()) {
    const Predicate& p = query.predicate(id);
    bool as_join = false;
    if (join_flavor == flavor::kMG) {
      as_join = IsSortable(p, outer.tables(), inner.tables());
    } else if (join_flavor == flavor::kHA) {
      as_join = IsHashable(p, outer.tables(), inner.tables());
    } else {
      as_join = IsJoinPredicate(p, outer.tables(), inner.tables());
    }
    if (as_join) {
      split.join.Insert(id);
    } else {
      split.residual.Insert(id);
    }
  }
  if (join_flavor == flavor::kHA) {
    // §4.5.1: hashable predicates remain residual as well (collisions).
    split.residual = split.residual.Union(split.join);
  }
  return split;
}

SortOrder SortColsFor(const Query& query, PredSet sortable,
                      QuantifierSet side) {
  SortOrder out;
  for (int id : sortable.ToVector()) {
    ColumnRef c = SortColumnFor(query.predicate(id), side);
    if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
  }
  return out;
}

Result<PlanPtr> AccessPlanFor(const PlanFactory& factory, int q) {
  const Query& query = factory.query();
  const TableDef& table = query.table_of(q);
  PredSet single =
      query.EligiblePredicates(QuantifierSet::Single(q),
                               query.AllPredicates());
  ColumnSet needed = query.ColumnsNeeded(q);
  std::vector<ColumnRef> cols(needed.begin(), needed.end());
  OpArgs args;
  args.Set(arg::kQuantifier, static_cast<int64_t>(q));
  args.Set(arg::kCols, cols);
  args.Set(arg::kPreds, single);
  const char* flv = table.storage == StorageKind::kBTree ? flavor::kBTree
                                                         : flavor::kHeap;
  return factory.Make(op::kAccess, flv, {}, std::move(args));
}

bool Joinable(const Query& query, QuantifierSet a, QuantifierSet b) {
  for (int id = 0; id < query.num_predicates(); ++id) {
    const Predicate& p = query.predicate(id);
    if (p.quantifiers.size() < 2) continue;
    if (a.Union(b).ContainsAll(p.quantifiers) &&
        p.quantifiers.Intersects(a) && p.quantifiers.Intersects(b)) {
      return true;
    }
  }
  return false;
}

}  // namespace

Result<PlanPtr> MakeBaselineJoin(const PlanFactory& factory,
                                 const std::string& join_flavor,
                                 PlanPtr outer, PlanPtr inner) {
  const Query& query = factory.query();
  JoinPredSplit split =
      SplitPreds(query, join_flavor, outer->props, inner->props);
  OpArgs args;
  args.Set(arg::kJoinPreds, split.join);
  args.Set(arg::kResidualPreds, split.residual);
  return factory.Make(op::kJoin, join_flavor,
                      {std::move(outer), std::move(inner)}, std::move(args));
}

Result<PlanPtr> MakeInitialPlan(const PlanFactory& factory) {
  const Query& query = factory.query();
  if (query.num_quantifiers() == 0) {
    return Status::InvalidArgument("query has no tables");
  }
  auto plan = AccessPlanFor(factory, 0);
  if (!plan.ok()) return plan;
  PlanPtr acc = std::move(plan).value();
  for (int q = 1; q < query.num_quantifiers(); ++q) {
    auto rhs = AccessPlanFor(factory, q);
    if (!rhs.ok()) return rhs;
    auto joined = MakeBaselineJoin(factory, flavor::kNL, std::move(acc),
                                   std::move(rhs).value());
    if (!joined.ok()) return joined;
    acc = std::move(joined).value();
  }
  return acc;
}

std::vector<TransformRule> DefaultTransformRules(
    const TransformRuleOptions& options) {
  std::vector<TransformRule> rules;

  // JOIN(f, A, B) -> JOIN(f, B, A). The transformational hazard the paper
  // mentions (§4.1) — re-application undoes itself — is contained only by
  // the optimizer's duplicate detection.
  {
    TransformRule r;
    r.name = "join-commute";
    r.pattern = Pattern::Op(op::kJoin, "",
                            {Pattern::Any(0), Pattern::Any(1)}, 2);
    r.apply = [](const MatchResult& m,
                 const PlanFactory& f) -> Result<std::vector<PlanPtr>> {
      auto swapped = MakeBaselineJoin(f, m.bindings[2]->flavor,
                                      m.bindings[1], m.bindings[0]);
      if (!swapped.ok()) return std::vector<PlanPtr>{};
      return std::vector<PlanPtr>{std::move(swapped).value()};
    };
    rules.push_back(std::move(r));
  }

  // JOIN(JOIN(A, B), C) -> JOIN(A, JOIN(B, C)).
  {
    TransformRule r;
    r.name = "join-assoc";
    r.pattern = Pattern::Op(
        op::kJoin, "",
        {Pattern::Op(op::kJoin, "", {Pattern::Any(0), Pattern::Any(1)}),
         Pattern::Any(2)});
    r.condition = [](const MatchResult& m, const PlanFactory& f) {
      return Joinable(f.query(), m.bindings[1]->props.tables(),
                      m.bindings[2]->props.tables());
    };
    r.apply = [](const MatchResult& m,
                 const PlanFactory& f) -> Result<std::vector<PlanPtr>> {
      auto bc = MakeBaselineJoin(f, flavor::kNL, m.bindings[1],
                                 m.bindings[2]);
      if (!bc.ok()) return std::vector<PlanPtr>{};
      auto abc = MakeBaselineJoin(f, flavor::kNL, m.bindings[0],
                                  std::move(bc).value());
      if (!abc.ok()) return std::vector<PlanPtr>{};
      return std::vector<PlanPtr>{std::move(abc).value()};
    };
    rules.push_back(std::move(r));
  }

  if (options.merge_join) {
    // JOIN(NL, A, B) -> JOIN(MG, SORT(A), SORT(B)) when sortable predicates
    // link the inputs.
    TransformRule r;
    r.name = "nl-to-merge";
    r.pattern = Pattern::Op(op::kJoin, flavor::kNL,
                            {Pattern::Any(0), Pattern::Any(1)});
    r.apply = [](const MatchResult& m,
                 const PlanFactory& f) -> Result<std::vector<PlanPtr>> {
      const Query& query = f.query();
      const PlanPtr& a = m.bindings[0];
      const PlanPtr& b = m.bindings[1];
      PredSet sortable;
      PredSet applied = a->props.preds().Union(b->props.preds());
      QuantifierSet s = a->props.tables().Union(b->props.tables());
      for (int id :
           query.EligiblePredicates(s, query.AllPredicates())
               .Minus(applied)
               .ToVector()) {
        if (IsSortable(query.predicate(id), a->props.tables(),
                       b->props.tables())) {
          sortable.Insert(id);
        }
      }
      if (sortable.empty()) return std::vector<PlanPtr>{};

      auto sorted = [&](const PlanPtr& in,
                        QuantifierSet side) -> Result<PlanPtr> {
        SortOrder order = SortColsFor(query, sortable, side);
        if (OrderSatisfies(in->props.order(), order)) return in;
        OpArgs args;
        args.Set(arg::kOrder, order);
        return f.Make(op::kSort, "", {in}, std::move(args));
      };
      auto sa = sorted(a, a->props.tables());
      if (!sa.ok()) return std::vector<PlanPtr>{};
      auto sb = sorted(b, b->props.tables());
      if (!sb.ok()) return std::vector<PlanPtr>{};
      auto mg = MakeBaselineJoin(f, flavor::kMG, std::move(sa).value(),
                                 std::move(sb).value());
      if (!mg.ok()) return std::vector<PlanPtr>{};
      return std::vector<PlanPtr>{std::move(mg).value()};
    };
    rules.push_back(std::move(r));
  }

  if (options.hash_join) {
    TransformRule r;
    r.name = "nl-to-hash";
    r.pattern = Pattern::Op(op::kJoin, flavor::kNL,
                            {Pattern::Any(0), Pattern::Any(1)});
    r.apply = [](const MatchResult& m,
                 const PlanFactory& f) -> Result<std::vector<PlanPtr>> {
      const Query& query = f.query();
      const PlanPtr& a = m.bindings[0];
      const PlanPtr& b = m.bindings[1];
      bool any_hashable = false;
      QuantifierSet s = a->props.tables().Union(b->props.tables());
      PredSet applied = a->props.preds().Union(b->props.preds());
      for (int id : query.EligiblePredicates(s, query.AllPredicates())
                        .Minus(applied)
                        .ToVector()) {
        if (IsHashable(query.predicate(id), a->props.tables(),
                       b->props.tables())) {
          any_hashable = true;
        }
      }
      if (!any_hashable) return std::vector<PlanPtr>{};
      auto ha = MakeBaselineJoin(f, flavor::kHA, a, b);
      if (!ha.ok()) return std::vector<PlanPtr>{};
      return std::vector<PlanPtr>{std::move(ha).value()};
    };
    rules.push_back(std::move(r));
  }

  // JOIN(NL, A, single-table inner) -> push converted join predicates into
  // an index probe of the inner (the baseline's version of sideways
  // information passing, needed for plan-space parity with the STARs).
  {
    TransformRule r;
    r.name = "index-inner";
    r.pattern = Pattern::Op(op::kJoin, flavor::kNL,
                            {Pattern::Any(0), Pattern::Any(1)});
    r.condition = [](const MatchResult& m, const PlanFactory&) {
      return m.bindings[1]->props.tables().size() == 1;
    };
    r.apply = [](const MatchResult& m,
                 const PlanFactory& f) -> Result<std::vector<PlanPtr>> {
      const Query& query = f.query();
      const PlanPtr& outer = m.bindings[0];
      const PlanPtr& inner = m.bindings[1];
      int q = inner->props.tables().First();
      const TableDef& table = query.table_of(q);

      // Predicates the probe may apply: the inner's own plus join
      // predicates against the outer.
      PredSet pushable = inner->props.preds();
      QuantifierSet s = outer->props.tables().Union(inner->props.tables());
      for (int id : query.EligiblePredicates(s, query.AllPredicates())
                        .ToVector()) {
        const Predicate& p = query.predicate(id);
        if (IsJoinPredicate(p, outer->props.tables(),
                            inner->props.tables())) {
          pushable.Insert(id);
        }
      }

      std::vector<PlanPtr> out;
      for (const IndexDef& ix : table.indexes) {
        std::vector<ColumnRef> key;
        for (int ord : ix.key_columns) key.push_back(ColumnRef{q, ord});
        PredSet kp = IndexEligiblePreds(query, q, key, pushable);
        if (kp.empty()) continue;
        std::vector<ColumnRef> ixcols = key;
        ixcols.push_back(ColumnRef{q, ColumnRef::kTidColumn});
        OpArgs access_args;
        access_args.Set(arg::kQuantifier, static_cast<int64_t>(q));
        access_args.Set(arg::kIndex, ix.name);
        access_args.Set(arg::kCols, ixcols);
        access_args.Set(arg::kPreds, kp);
        auto access =
            f.Make(op::kAccess, flavor::kIndex, {}, std::move(access_args));
        if (!access.ok()) continue;

        ColumnSet needed = query.ColumnsNeeded(q);
        std::vector<ColumnRef> cols(needed.begin(), needed.end());
        OpArgs get_args;
        get_args.Set(arg::kQuantifier, static_cast<int64_t>(q));
        get_args.Set(arg::kCols, cols);
        get_args.Set(arg::kPreds, pushable.Minus(kp));
        auto get = f.Make(op::kGet, "", {std::move(access).value()},
                          std::move(get_args));
        if (!get.ok()) continue;
        auto joined = MakeBaselineJoin(f, flavor::kNL, outer,
                                       std::move(get).value());
        if (!joined.ok()) continue;
        out.push_back(std::move(joined).value());
      }
      return out;
    };
    rules.push_back(std::move(r));
  }
  return rules;
}

}  // namespace starburst
