#ifndef STARBURST_BASELINE_TRANSFORM_RULES_H_
#define STARBURST_BASELINE_TRANSFORM_RULES_H_

#include <functional>
#include <string>
#include <vector>

#include "baseline/pattern.h"
#include "query/query.h"

namespace starburst {

/// One plan-transformation rule (EXODUS-style): a structural pattern, an
/// optional condition evaluated after unification, and an apply function
/// producing zero or more replacement subtrees for the matched node.
struct TransformRule {
  std::string name;
  Pattern pattern;
  std::function<bool(const MatchResult&, const PlanFactory&)> condition;
  std::function<Result<std::vector<PlanPtr>>(const MatchResult&,
                                             const PlanFactory&)> apply;
};

struct TransformRuleOptions {
  bool merge_join = true;
  bool hash_join = false;
};

/// The baseline rule base, mirroring the STAR repertoire so the E1
/// comparison explores a comparable plan space:
///   join-commute      JOIN(f, A, B)        -> JOIN(NL, B, A)
///   join-assoc        JOIN(JOIN(A,B), C)   -> JOIN(A, JOIN(B,C))
///   nl-to-merge       JOIN(NL, A, B)       -> JOIN(MG, SORT(A), SORT(B))
///   nl-to-hash        JOIN(NL, A, B)       -> JOIN(HA, A, B)
///   index-inner       JOIN(NL, A, access)  -> JOIN(NL, A, index probe with
///                                             pushed join predicates)
std::vector<TransformRule> DefaultTransformRules(
    const TransformRuleOptions& options = {});

/// Builds a join node over two plan-bearing inputs, deriving join/residual
/// predicate sets from eligibility (used by the rules and by the initial
/// plan builder).
Result<PlanPtr> MakeBaselineJoin(const PlanFactory& factory,
                                 const std::string& join_flavor,
                                 PlanPtr outer, PlanPtr inner);

/// Builds the baseline's initial plan: a left-deep nested-loop join over the
/// quantifiers in FROM order, heap/btree accesses with single-table
/// predicates pushed down.
Result<PlanPtr> MakeInitialPlan(const PlanFactory& factory);

}  // namespace starburst

#endif  // STARBURST_BASELINE_TRANSFORM_RULES_H_
