#ifndef STARBURST_BASELINE_PATTERN_H_
#define STARBURST_BASELINE_PATTERN_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/plan.h"

namespace starburst {

/// A structural pattern over plan trees, the matching machinery of a
/// transformational optimizer (EXODUS [GRAE 87a] / Freytag [FREY 87]). The
/// paper's efficiency argument (§1) is that this unification — attempted for
/// every (rule, plan node) pair on every iteration — is what STAR expansion
/// avoids; the match counters here are the measured quantity of E1.
struct Pattern {
  enum class Kind {
    kAny,  ///< matches any subtree, binds it to `binding`
    kOp,   ///< matches a node with the given operator (and flavor, if set)
  };

  Kind kind = Kind::kAny;
  std::string op_name;
  std::string flavor;  ///< empty = any flavor
  std::vector<Pattern> children;
  int binding = -1;  ///< slot in MatchResult::bindings, -1 = unbound

  static Pattern Any(int binding) {
    Pattern p;
    p.kind = Kind::kAny;
    p.binding = binding;
    return p;
  }
  static Pattern Op(std::string op, std::string flv,
                    std::vector<Pattern> children, int binding = -1) {
    Pattern p;
    p.kind = Kind::kOp;
    p.op_name = std::move(op);
    p.flavor = std::move(flv);
    p.children = std::move(children);
    p.binding = binding;
    return p;
  }
};

struct MatchResult {
  std::vector<PlanPtr> bindings;
};

/// Matches `pattern` against the subtree rooted at `node`, recording bound
/// subtrees. `*comparisons` is incremented per pattern-node comparison.
bool MatchPattern(const Pattern& pattern, const PlanPtr& node,
                  MatchResult* result, int64_t* comparisons);

/// A position in a plan tree: child indices from the root.
using PlanPath = std::vector<int>;

/// All node positions of the tree, preorder.
std::vector<PlanPath> EnumeratePaths(const PlanPtr& root);

/// The node at `path`.
PlanPtr NodeAt(const PlanPtr& root, const PlanPath& path);

/// Rebuilds the tree with the subtree at `path` replaced by `replacement`,
/// re-deriving every ancestor's property vector through the factory (this is
/// the re-estimation cost the paper attributes to transformational systems,
/// §6). `*rebuilt_nodes` counts re-derived ancestors.
Result<PlanPtr> ReplaceAt(const PlanFactory& factory, const PlanPtr& root,
                          const PlanPath& path, PlanPtr replacement,
                          int64_t* rebuilt_nodes);

}  // namespace starburst

#endif  // STARBURST_BASELINE_PATTERN_H_
