# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/dsl_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/cost_test[1]_include.cmake")
include("/root/repo/build/tests/storage_exec_test[1]_include.cmake")
include("/root/repo/build/tests/star_engine_test[1]_include.cmake")
include("/root/repo/build/tests/glue_test[1]_include.cmake")
include("/root/repo/build/tests/plan_table_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_property_test[1]_include.cmake")
include("/root/repo/build/tests/extensibility_test[1]_include.cmake")
include("/root/repo/build/tests/access_strategies_test[1]_include.cmake")
include("/root/repo/build/tests/filtration_test[1]_include.cmake")
include("/root/repo/build/tests/dsl_printer_test[1]_include.cmake")
include("/root/repo/build/tests/validate_test[1]_include.cmake")
include("/root/repo/build/tests/explain_test[1]_include.cmake")
include("/root/repo/build/tests/enumerator_test[1]_include.cmake")
include("/root/repo/build/tests/sharing_test[1]_include.cmake")
include("/root/repo/build/tests/executor_edge_test[1]_include.cmake")
include("/root/repo/build/tests/builtins_test[1]_include.cmake")
