// The Database Customizer's workflow (paper §5): extend a running optimizer
// with (a) a new strategy for an existing operator, written in the rule DSL,
// and (b) an entirely new LOLEPOP — property function + run-time routine +
// STAR — without touching library code.

#include <cstdio>

#include "catalog/synthetic.h"
#include "cost/selectivity.h"
#include "exec/evaluator.h"
#include "optimizer/optimizer.h"
#include "plan/explain.h"
#include "sql/parser.h"
#include "star/default_rules.h"
#include "star/dsl_parser.h"
#include "storage/datagen.h"

using namespace starburst;

int main() {
  Catalog catalog = MakePaperCatalog();
  Query query = ParseSql(catalog,
                         "SELECT EMP.NAME FROM DEPT, EMP WHERE "
                         "DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO")
                    .ValueOrDie();

  // ---- (a) strategies are data -------------------------------------------
  Optimizer optimizer(DefaultRuleSet());  // ships with NL + MG only
  OptimizeResult before = optimizer.Optimize(query).ValueOrDie();
  std::printf("NL+MG rule base:   best cost %.1f, %lld plans built\n",
              before.total_cost,
              static_cast<long long>(before.engine_metrics.plans_built));

  // Add the §4.5.1 hash join by editing the live rule base — equivalent to
  // appending the alternative to the rules file and re-running.
  AddHashJoinAlternative(&optimizer.rules());
  OptimizeResult with_hash = optimizer.Optimize(query).ValueOrDie();
  std::printf("+hash join STAR:   best cost %.1f, %lld plans built\n",
              with_hash.total_cost,
              static_cast<long long>(with_hash.engine_metrics.plans_built));

  // Or replace a whole STAR from text: restrict JoinRoot to the given order
  // (no permutation) and watch the plan space shrink.
  Status st = LoadRules(&optimizer.rules(), R"(
    star JoinRoot(T1, T2, P)
      alt 'no-permutation':
        PermutedJoin(T1, T2, P)
    end
  )");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  OptimizeResult narrowed = optimizer.Optimize(query).ValueOrDie();
  std::printf("JoinRoot replaced: best cost %.1f, %lld plans built\n\n",
              narrowed.total_cost,
              static_cast<long long>(narrowed.engine_metrics.plans_built));

  // ---- (b) a new LOLEPOP: SAMPLE -----------------------------------------
  // A bernoulli-sampling operator: keeps roughly one tuple in `rate`.
  // Step 1 of §5: the property function.
  Optimizer sampled_opt(DefaultRuleSet());
  Status reg = sampled_opt.operators().Register(OperatorDef{
      "SAMPLE",
      1,
      1,
      {},
      [](const OpContext& ctx) -> Result<PropertyVector> {
        const PropertyVector& in = *ctx.inputs[0];
        int64_t rate = ctx.args.GetInt("rate", 10);
        PropertyVector out = in;
        out.set_card(in.card() / static_cast<double>(rate));
        Cost c = in.cost();
        c.cpu += in.card() * 0.1;
        out.set_cost(c);
        out.set_order(SortOrder{});  // sampling is order-preserving, but be
                                     // conservative for the demo
        return out;
      }});
  if (!reg.ok()) {
    std::fprintf(stderr, "%s\n", reg.ToString().c_str());
    return 1;
  }
  // Step 2: a STAR that uses it — sample the EMP side before joining.
  st = LoadRules(&sampled_opt.rules(), R"(
    star JMeth(T1, T2, P)
      where JP = join_preds(P, T1, T2)
      where IP = inner_preds(P, T2)
      alt 'sampled-nested-loop':
        JOIN:NL(SAMPLE(Glue(T1, {}); rate = 10), Glue(T2, union(JP, IP));
                join_preds = JP,
                residual_preds = minus(P, union(JP, IP)))
    end
  )", &sampled_opt.operators());
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  OptimizeResult sampled = sampled_opt.Optimize(query).ValueOrDie();
  std::printf("SAMPLE-based JMeth replaces the join methods entirely:\n%s\n",
              ExplainPlan(*sampled.best, query).c_str());

  // Step 3 of §5: the run-time routine, registered with the evaluator.
  ExecutorRegistry exec_registry;
  st = exec_registry.Register(
      "SAMPLE", [](ExecContext& ctx) -> Result<std::vector<Tuple>> {
        auto rows = ctx.EvalInput(0);
        if (!rows.ok()) return rows;
        int64_t rate = ctx.node().args.GetInt("rate", 10);
        std::vector<Tuple> out;
        for (size_t i = 0; i < rows.value().size();
             i += static_cast<size_t>(rate)) {
          out.push_back(rows.value()[i]);
        }
        return out;
      });
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  Database db(catalog);
  if (auto pop = PopulatePaperDatabase(&db, 2, 0.05); !pop.ok()) {
    std::fprintf(stderr, "%s\n", pop.ToString().c_str());
    return 1;
  }
  ResultSet rs =
      ExecutePlan(db, query, sampled.best, &exec_registry).ValueOrDie();
  std::printf("Executing the sampled plan: %zu rows (approximate answer).\n",
              rs.rows.size());
  return 0;
}
