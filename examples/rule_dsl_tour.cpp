// A tour of the STAR rule DSL: load the default rule base from its text
// file, inspect it, evaluate individual STARs against a query, and trace how
// requirements accumulate until Glue resolves them (paper §2.2-§3.2).

#include <cstdio>

#include "catalog/synthetic.h"
#include "cost/cost_model.h"
#include "glue/glue.h"
#include "optimizer/plan_table.h"
#include "plan/explain.h"
#include "properties/property_functions.h"
#include "sql/parser.h"
#include "star/builtins.h"
#include "star/dsl_parser.h"

#ifndef STARBURST_RULES_DIR
#define STARBURST_RULES_DIR "rules"
#endif

using namespace starburst;

int main() {
  // 1. Rules are input data: parse the shipped rule file.
  RuleSet rules;
  Status st = LoadRulesFromFile(
      &rules, std::string(STARBURST_RULES_DIR) + "/default.star");
  if (!st.ok()) {
    std::fprintf(stderr, "cannot load rules: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Loaded %d STARs from rules/default.star:\n ", rules.size());
  for (const std::string& name : rules.Names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n");

  const Star& jmeth = *rules.Find("JMeth").ValueOrDie();
  std::printf("JMeth(%zu params) has %zu alternative definitions:\n",
              jmeth.params.size(), jmeth.alternatives.size());
  for (const Alternative& alt : jmeth.alternatives) {
    std::printf("  - %-18s %s\n", alt.label.c_str(),
                alt.condition ? "(conditional)" : "(always applicable)");
  }
  std::printf("\n");

  // 2. Wire up a per-query engine by hand (what Optimizer does internally).
  Catalog catalog = MakePaperCatalog();
  Query query = ParseSql(catalog,
                         "SELECT EMP.NAME FROM DEPT, EMP WHERE "
                         "DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO")
                    .ValueOrDie();
  CostModel cost_model;
  OperatorRegistry operators;
  FunctionRegistry functions;
  if (!RegisterBuiltinOperators(&operators).ok()) return 1;
  if (!RegisterBuiltinFunctions(&functions).ok()) return 1;
  PlanFactory factory(query, cost_model, operators);
  StarEngine engine(&factory, &rules, &functions);
  PlanTable table(&cost_model);
  Glue glue(&engine, &table);
  engine.set_glue(&glue);

  // 3. Evaluate a single STAR: AccessRoot over EMP.
  StreamSpec emp;
  emp.tables = QuantifierSet::Single(1);
  SAP access =
      engine.EvalStar("AccessRoot", {RuleValue(emp), RuleValue(PredSet{})})
          .ValueOrDie();
  std::printf("AccessRoot(EMP, {}) returned a SAP of %zu plans:\n",
              access.size());
  for (const PlanPtr& p : access) {
    std::printf("%s", ExplainPlan(*p, query).c_str());
  }

  // 4. Requirements accumulate on the stream until Glue is referenced.
  StreamSpec ordered = emp;
  ordered.required.order =
      SortOrder{query.ResolveColumn("EMP", "DNO").ValueOrDie()};
  std::printf("\nstream spec with requirement: %s\n",
              ordered.ToString(&query).c_str());
  SAP resolved = glue.Resolve(ordered).ValueOrDie();
  std::printf("Glue resolves it to %zu plan(s):\n", resolved.size());
  for (const PlanPtr& p : resolved) {
    std::printf("%s", ExplainPlan(*p, query).c_str());
  }

  // 5. Full join expansion: JoinRoot over (DEPT, EMP) with the join pred.
  StreamSpec dept;
  dept.tables = QuantifierSet::Single(0);
  dept.preds = PredSet::Single(0);
  SAP joins = engine
                  .EvalStar("JoinRoot",
                            {RuleValue(dept), RuleValue(emp),
                             RuleValue(PredSet::Single(1))})
                  .ValueOrDie();
  std::printf("\nJoinRoot(DEPT, EMP, {DNO=DNO}) -> SAP of %zu plans; "
              "engine metrics %s\n",
              joins.size(), engine.metrics().ToString().c_str());
  std::printf("cheapest join alternative:\n%s",
              ExplainPlan(*CheapestPlan(joins, cost_model), query).c_str());
  return 0;
}
