// Quickstart: the paper's running example end to end.
//
// Builds the DEPT/EMP catalog of §2.1, parses the Figure-1 query, optimizes
// it with the default STAR rule base, prints the alternative plans Glue kept
// and the winner, then executes the winner on a generated database.

#include <cstdio>

#include "catalog/synthetic.h"
#include "exec/evaluator.h"
#include "optimizer/optimizer.h"
#include "plan/explain.h"
#include "sql/parser.h"
#include "star/default_rules.h"
#include "storage/datagen.h"

using namespace starburst;

int main() {
  // 1. Catalog: DEPT(DNO, MGR, DNAME, BUDGET), EMP(ENO, DNO, NAME, ADDRESS,
  //    SALARY) with an index on EMP.DNO — exactly Figure 1's setting.
  Catalog catalog = MakePaperCatalog();

  // 2. Parse the query.
  const char* sql =
      "SELECT EMP.NAME, EMP.ADDRESS FROM DEPT, EMP "
      "WHERE DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO";
  Query query = ParseSql(catalog, sql).ValueOrDie();
  std::printf("Query: %s\n\n", query.ToString().c_str());

  // 3. Optimize with the full §4 strategy repertoire.
  DefaultRuleOptions rules;
  rules.merge_join = true;
  rules.hash_join = true;
  rules.dynamic_index = true;
  rules.forced_projection = true;
  Optimizer optimizer(DefaultRuleSet(rules));
  OptimizeResult result = optimizer.Optimize(query).ValueOrDie();

  std::printf("Optimizer effort: %s\n",
              result.engine_metrics.ToString().c_str());
  std::printf("Glue:             %s\n", result.glue_metrics.ToString().c_str());
  std::printf("Plan table:       %s (%lld plans kept)\n\n",
              result.table_stats.ToString().c_str(),
              static_cast<long long>(result.plans_in_table));

  std::printf("Final alternatives (Pareto frontier):\n");
  for (const PlanPtr& plan : result.final_plans) {
    std::printf("--- total cost %.1f ---\n%s",
                TotalCost(plan->props.cost()),
                ExplainPlan(*plan, query).c_str());
  }
  std::printf("\nChosen plan (cost %.1f):\n%s\n", result.total_cost,
              ExplainPlan(*result.best, query).c_str());

  // 4. Execute on a small generated database.
  Database db(catalog);
  if (auto st = PopulatePaperDatabase(&db, /*seed=*/42, /*scale=*/0.02);
      !st.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n", st.ToString().c_str());
    return 1;
  }
  ResultSet rs = ExecutePlan(db, query, result.best).ValueOrDie();
  ResultSet projected = ProjectResult(rs, query.select_list()).ValueOrDie();
  std::printf("Result (%zu rows):\n%s", projected.rows.size(),
              FormatResult(projected, query, 10).c_str());
  return 0;
}
