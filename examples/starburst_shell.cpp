// An interactive shell over the library: type SQL, get the optimized plan
// and its rows; inspect and edit the live rule base between queries. Reads
// from stdin, so it works scripted too:
//
//   echo "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 3" | starburst_shell
//
// Commands:
//   <sql>                 optimize, explain, execute
//   \explain <sql>        optimize + explain only
//   \analyze <sql>        EXPLAIN ANALYZE: execute and show actual vs
//                         estimated rows (with q-error) per operator
//   \trace on|off         record the rule-firing trace of each query
//   \trace [json]         show the last trace (text tree or Chrome JSON)
//   \rules                list the STARs in the live rule base
//   \show <star>          pretty-print one STAR in the rule DSL
//   \enable <strategy>    hash_join | forced_projection | dynamic_index |
//                         bloomjoin | tid_sort | index_and
//   \load <file>          load/replace STARs from a rule file
//   \catalog              list tables, columns, indexes, sites
//   \metrics [prom]       optimizer effort counters + metrics registry
//                         (prom = Prometheus text exposition)
//   \threads [n]          show/set join-enumeration worker threads
//   \budget [spec]        show/set optimizer budgets (deadline_ms=, plans=,
//                         bytes=; 0 = unlimited, "off" clears all)
//   \faults [spec]        show/set fault injection (STARBURST_FAULTS syntax)
//   \vectorized [on|off]  show/set the execution engine (batch pipeline vs
//                         the legacy row-at-a-time oracle)
//   \kernels [on|off]     show/set type-specialized fused predicate kernels
//                         in the vectorized engine (off = interpreter only;
//                         exec.kernel_* counters appear in \metrics)
//   \batchsize [n]        show/set rows per batch (0 = env default)
//   \execthreads [n]      show/set exchange worker threads for parallel
//                         scans/joins/sorts (0 = env default, 1 = off)
//   \execbudget [spec]    show/set execution-time governance (deadline_ms=,
//                         mem=; 0 = env default, "off" disables both; a
//                         mem budget makes SORT / JOIN(HA) spill to disk)
//   \profile [on|off|json] show/set per-operator execution profiling (wall
//                         time, rows, memory, operator detail); json dumps
//                         the last profile
//   \workload [json|clear] workload statistics repository: per-query records
//                         and per-(table, predicate-shape) cardinality
//                         feedback aggregated across runs
//   \cache [on|off|clear|stats]  normalized-SQL plan cache: repeated
//                         statements (even with different literals or
//                         aliases) reuse the optimized plan; invalidated by
//                         catalog generation bumps and by \enable / \load
//   \prepare <name> <sql> validate a statement template with ? markers and
//                         store it under <name>
//   \execp <name> [p...]  bind parameters ('quoted' = string, else number)
//                         and run the prepared statement
//   \help, \quit

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "catalog/synthetic.h"
#include "common/fault_injector.h"
#include "exec/batch.h"
#include "exec/evaluator.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "obs/workload.h"
#include "optimizer/optimizer.h"
#include "plan/explain.h"
#include "server/plan_cache.h"
#include "sql/parser.h"
#include "star/default_rules.h"
#include "star/dsl_parser.h"
#include "star/dsl_printer.h"
#include "storage/datagen.h"

using namespace starburst;

namespace {

void PrintCatalog(const Catalog& catalog) {
  for (int t = 0; t < catalog.num_tables(); ++t) {
    const TableDef& def = catalog.table(t);
    std::printf("  %s (%lld rows, %s, site %s)\n", def.name.c_str(),
                static_cast<long long>(def.row_count),
                StorageKindName(def.storage),
                catalog.site_name(def.site).c_str());
    std::string cols;
    for (const ColumnDef& c : def.columns) {
      if (!cols.empty()) cols += ", ";
      cols += c.name;
    }
    std::printf("    columns: %s\n", cols.c_str());
    for (const IndexDef& ix : def.indexes) {
      std::string keys;
      for (int ord : ix.key_columns) {
        if (!keys.empty()) keys += ", ";
        keys += def.columns[static_cast<size_t>(ord)].name;
      }
      std::printf("    index %s (%s)\n", ix.name.c_str(), keys.c_str());
    }
  }
}

void PrintHelp() {
  std::printf(
      "  <sql>               optimize, explain, and execute a query\n"
      "  \\explain <sql>      optimize and explain only\n"
      "  \\analyze <sql>      execute and show actual vs estimated rows\n"
      "  \\trace on|off       record a rule-firing trace per query\n"
      "  \\trace [json]       show the last trace (tree, or Chrome JSON)\n"
      "  \\rules              list the STARs of the live rule base\n"
      "  \\show <star>        pretty-print one STAR\n"
      "  \\enable <strategy>  hash_join, forced_projection, dynamic_index,\n"
      "                      bloomjoin, tid_sort, index_and\n"
      "  \\load <file>        load/replace STARs from a rule file\n"
      "  \\catalog            show tables and indexes\n"
      "  \\threads [n]        show/set join-enumeration threads (0 = hw)\n"
      "  \\memo [on|off]      show/toggle the shared expansion memo and\n"
      "                      augmented-plan cache (memo.* in \\metrics)\n"
      "  \\budget [spec]      show/set budgets: deadline_ms=N plans=N "
      "bytes=N (0 = unlimited, 'off' clears)\n"
      "  \\faults [spec]      show/set fault injection, e.g. "
      "exec.scan.open=2 or seed=7,rate=0.02 ('off' disarms)\n"
      "  \\vectorized [on|off] show/set the execution engine (on = batch\n"
      "                      pipeline, off = row-at-a-time oracle)\n"
      "  \\kernels [on|off]   show/set fused typed predicate kernels (off =\n"
      "                      interpreter only; exec.kernel_rows and\n"
      "                      exec.kernel_fallbacks land in \\metrics)\n"
      "  \\batchsize [n]      show/set rows per batch (0 = env default)\n"
      "  \\execthreads [n]    show/set exchange worker threads (0 = env\n"
      "                      default STARBURST_EXEC_THREADS, 1 = off)\n"
      "  \\execbudget [spec]  show/set execution governance: deadline_ms=N\n"
      "                      mem=BYTES (0 = env default, 'off' disables;\n"
      "                      a mem budget makes SORT/JOIN(HA) spill)\n"
      "  \\profile [on|off]   show/set per-operator profiling (time, rows,\n"
      "                      memory, hash/sort/predicate detail; shown by\n"
      "                      \\analyze); \\profile json dumps the last one\n"
      "  \\workload [json]    per-query records and (table, pred-shape)\n"
      "                      cardinality feedback ('clear' resets)\n"
      "  \\cache [on|off|clear|stats] normalized-SQL plan cache (default\n"
      "                      on; literal- and alias-varied statements share\n"
      "                      one entry)\n"
      "  \\prepare <name> <sql> store a statement template with ? markers\n"
      "  \\execp <name> [p..] bind ('quoted' = string, else number) and run\n"
      "  \\metrics [prom]     effort counters + registry (prom = Prometheus\n"
      "                      text exposition)\n"
      "  \\quit               exit\n");
}

struct Shell {
  Catalog catalog;
  Database db;
  Tracer tracer;
  MetricsRegistry metrics;
  Optimizer optimizer;
  OptimizeResult last;
  int vectorized = -1;  // -1 env default, 0 legacy interpreter, 1 batch
  int typed_kernels = -1;  // -1 env default (STARBURST_TYPED_KERNELS)
  int batch_size = 0;   // 0 env default
  int exec_threads = 0;  // 0 env default (STARBURST_EXEC_THREADS)
  // Execution governance (0 = env default, negative = forced off).
  long long exec_deadline_ms = 0;  // STARBURST_EXEC_DEADLINE_MS
  long long exec_mem_limit = 0;    // STARBURST_EXEC_MEM_LIMIT (bytes)
  int profile = -1;     // -1 env default (STARBURST_PROFILE), 0 off, 1 on
  ExecProfile last_profile;
  WorkloadRepository workload;
  PlanCache plan_cache;
  bool cache_on = true;
  std::map<std::string, std::pair<std::string, int>> prepared;  // sql, #params

  Shell()
      : catalog(MakePaperCatalog()),
        db(catalog),
        optimizer(DefaultRuleSet(), MakeOptions(&tracer, &metrics)),
        plan_cache(/*num_shards=*/4, &metrics) {
    Status st = PopulatePaperDatabase(&db, /*seed=*/42, /*scale=*/0.02);
    if (!st.ok()) {
      std::fprintf(stderr, "datagen: %s\n", st.ToString().c_str());
    }
  }

  static OptimizerOptions MakeOptions(Tracer* tracer,
                                      MetricsRegistry* metrics) {
    OptimizerOptions opts;
    opts.tracer = tracer;
    opts.metrics = metrics;
    return opts;
  }

  void RunSql(const std::string& sql, bool execute, bool analyze = false) {
    ScopedTimer parse_timer(&metrics, "optimizer.phase.parse");
    auto parsed = ParseSql(catalog, sql);
    parse_timer.Stop();
    if (!parsed.ok()) {
      std::printf("parse error: %s\n", parsed.status().ToString().c_str());
      return;
    }
    RunQuery(parsed.value(), execute, analyze);
  }

  void RunQuery(const Query& query, bool execute, bool analyze = false) {
    tracer.Clear();
    PlanPtr plan;
    double cost = 0.0;
    bool cache_hit = false;
    if (cache_on) {
      // Same single-flight path the server uses; in this single-threaded
      // shell it degenerates to a plain lookup, but it shares the counters
      // (server.cache_* in \metrics) and the generation-invalidation rules.
      PlanCacheKey key = PlanCacheKeyForQuery(query);
      auto cached = plan_cache.GetOrOptimize(
          key, catalog,
          [&]() -> Result<CachedPlan> {
            auto result = optimizer.Optimize(query);
            if (!result.ok()) return result.status();
            last = std::move(result).value();
            CachedPlan entry;
            entry.plan = last.best;
            entry.total_cost = last.total_cost;
            entry.signature = PlanSignature(*last.best);
            return entry;
          },
          &cache_hit);
      if (!cached.ok()) {
        std::printf("optimizer error: %s\n",
                    cached.status().ToString().c_str());
        return;
      }
      plan = cached.value()->plan;
      cost = cached.value()->total_cost;
    } else {
      auto result = optimizer.Optimize(query);
      if (!result.ok()) {
        std::printf("optimizer error: %s\n",
                    result.status().ToString().c_str());
        return;
      }
      last = std::move(result).value();
      plan = last.best;
      cost = last.total_cost;
    }
    if (!cache_hit && last.degraded()) {
      std::printf("note: degraded to greedy enumeration (%s)\n",
                  last.degradation_reason.c_str());
    }
    if (!analyze) {
      if (cache_hit) {
        std::printf("plan (cost %.1f, cached):\n%s", cost,
                    ExplainPlan(*plan, query).c_str());
      } else {
        std::printf("plan (cost %.1f, %zu alternatives kept):\n%s", cost,
                    last.final_plans.size(),
                    ExplainPlan(*plan, query).c_str());
      }
    }
    if (!execute) return;
    PlanRunStats run_stats;
    ExecOptions exec_opts;
    exec_opts.metrics = &metrics;
    exec_opts.vectorized = vectorized;
    exec_opts.typed_kernels = typed_kernels;
    exec_opts.batch_size = batch_size;
    exec_opts.exec_threads = exec_threads;
    exec_opts.exec_deadline_ms = exec_deadline_ms;
    exec_opts.exec_mem_limit = exec_mem_limit;
    if (analyze) exec_opts.stats = &run_stats;
    bool profiling =
        profile == 1 || (profile == -1 && DefaultProfileEnabled());
    if (profiling) {
      exec_opts.profile_sink = &last_profile;
      exec_opts.workload = &workload;
    } else {
      exec_opts.profile = 0;
    }
    ScopedTimer exec_timer(&metrics, "exec.run");
    auto rs = ExecutePlan(db, query, plan, exec_opts);
    exec_timer.Stop();
    if (!rs.ok()) {
      std::printf("executor error: %s\n", rs.status().ToString().c_str());
      return;
    }
    metrics.AddCounter("exec.rows_returned",
                       static_cast<int64_t>(rs.value().rows.size()));
    if (analyze) {
      ExplainOptions opts;
      opts.analyze = true;
      opts.run_stats = &run_stats;
      if (profiling) opts.profile = &last_profile;
      std::printf("plan (cost %.1f%s) with actuals:\n%s", cost,
                  cache_hit ? ", cached" : "",
                  ExplainPlan(*plan, query, opts).c_str());
      std::printf("(%zu row(s))\n", rs.value().rows.size());
      return;
    }
    auto shown = ProjectResult(rs.value(), query.select_list());
    if (!shown.ok()) {
      std::printf("%s\n", shown.status().ToString().c_str());
      return;
    }
    std::printf("%s", FormatResult(shown.value(), query, 12).c_str());
  }

  void Enable(const std::string& strategy) {
    RuleSet& rules = optimizer.rules();
    if (strategy == "hash_join") {
      AddHashJoinAlternative(&rules);
    } else if (strategy == "forced_projection") {
      AddForcedProjectionAlternative(&rules);
    } else if (strategy == "dynamic_index") {
      AddDynamicIndexAlternative(&rules);
    } else if (strategy == "bloomjoin") {
      AddBloomJoinAlternative(&rules);
    } else if (strategy == "tid_sort") {
      AddTidSortAlternative(&rules);
    } else if (strategy == "index_and") {
      AddIndexAndAlternative(&rules);
    } else {
      std::printf("unknown strategy '%s'\n", strategy.c_str());
      return;
    }
    plan_cache.Clear();  // cached plans predate the new rule repertoire
    std::printf("enabled %s (rule base now has %d STARs; plan cache "
                "cleared)\n",
                strategy.c_str(), optimizer.rules().size());
  }

  /// 'quoted' = string literal, otherwise integer then double then string.
  static Datum ParseParam(const std::string& tok) {
    if (tok.size() >= 2 && tok.front() == '\'' && tok.back() == '\'') {
      return Datum(tok.substr(1, tok.size() - 2));
    }
    char* end = nullptr;
    long long i = std::strtoll(tok.c_str(), &end, 10);
    if (end != tok.c_str() && *end == '\0') {
      return Datum(static_cast<int64_t>(i));
    }
    double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() && *end == '\0') return Datum(d);
    return Datum(tok);
  }

  void Command(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    std::string rest;
    std::getline(in, rest);
    while (!rest.empty() && rest.front() == ' ') rest.erase(rest.begin());

    if (cmd == "\\help") {
      PrintHelp();
    } else if (cmd == "\\catalog") {
      PrintCatalog(catalog);
    } else if (cmd == "\\rules") {
      for (const std::string& name : optimizer.rules().Names()) {
        const Star& star = *optimizer.rules().Find(name).ValueOrDie();
        std::printf("  %-16s (%zu params, %zu alternatives%s)\n",
                    name.c_str(), star.params.size(),
                    star.alternatives.size(),
                    star.exclusive ? ", exclusive" : "");
      }
    } else if (cmd == "\\show") {
      auto star = optimizer.rules().Find(rest);
      if (!star.ok()) {
        std::printf("%s\n", star.status().ToString().c_str());
        return;
      }
      auto text = FormatStar(*star.value());
      std::printf("%s", text.ok() ? text.value().c_str()
                                  : text.status().ToString().c_str());
    } else if (cmd == "\\enable") {
      Enable(rest);
    } else if (cmd == "\\load") {
      Status st = LoadRulesFromFile(&optimizer.rules(), rest,
                                    &optimizer.operators());
      if (st.ok()) plan_cache.Clear();  // plans predate the new rule base
      std::printf("%s\n",
                  st.ok() ? "loaded (plan cache cleared)"
                          : st.ToString().c_str());
    } else if (cmd == "\\cache") {
      if (rest == "on") {
        cache_on = true;
      } else if (rest == "off") {
        cache_on = false;
      } else if (rest == "clear") {
        plan_cache.Clear();
      } else if (!rest.empty() && rest != "stats") {
        std::printf("usage: \\cache [on|off|clear|stats]\n");
        return;
      }
      std::printf("plan cache: %s, %zu entr%s, %lld hits / %lld misses / "
                  "%lld invalidations\n",
                  cache_on ? "on" : "off", plan_cache.size(),
                  plan_cache.size() == 1 ? "y" : "ies",
                  static_cast<long long>(metrics.counter("server.cache_hits")),
                  static_cast<long long>(
                      metrics.counter("server.cache_misses")),
                  static_cast<long long>(
                      metrics.counter("server.cache_invalidations")));
    } else if (cmd == "\\prepare") {
      std::istringstream spec(rest);
      std::string name;
      spec >> name;
      std::string sql;
      std::getline(spec, sql);
      while (!sql.empty() && sql.front() == ' ') sql.erase(sql.begin());
      if (name.empty() || sql.empty()) {
        std::printf("usage: \\prepare <name> <sql with ? markers>\n");
        return;
      }
      int num_params = 0;
      auto tmpl = ParseSqlTemplate(catalog, sql, &num_params);
      if (!tmpl.ok()) {
        std::printf("prepare error: %s\n", tmpl.status().ToString().c_str());
        return;
      }
      prepared[name] = {sql, num_params};
      std::printf("prepared '%s' (%d parameter%s)\n", name.c_str(),
                  num_params, num_params == 1 ? "" : "s");
    } else if (cmd == "\\execp") {
      std::istringstream spec(rest);
      std::string name;
      spec >> name;
      auto it = prepared.find(name);
      if (it == prepared.end()) {
        std::printf("no prepared statement '%s' (see \\prepare)\n",
                    name.c_str());
        return;
      }
      std::vector<Datum> params;
      std::string tok;
      while (spec >> tok) params.push_back(ParseParam(tok));
      auto bound = BindSql(catalog, it->second.first, params);
      if (!bound.ok()) {
        std::printf("bind error: %s\n", bound.status().ToString().c_str());
        return;
      }
      RunQuery(bound.value(), /*execute=*/true);
    } else if (cmd == "\\explain") {
      RunSql(rest, /*execute=*/false);
    } else if (cmd == "\\analyze") {
      RunSql(rest, /*execute=*/true, /*analyze=*/true);
    } else if (cmd == "\\trace") {
      if (rest == "on") {
        tracer.set_enabled(true);
        std::printf("tracing on — run a query, then \\trace to view\n");
      } else if (rest == "off") {
        tracer.set_enabled(false);
      } else if (rest == "json") {
        std::printf("%s\n", tracer.ToChromeJson().c_str());
      } else if (tracer.events().empty()) {
        std::printf("no trace recorded (\\trace on, then run a query)\n");
      } else {
        std::printf("%s", tracer.ToText().c_str());
      }
    } else if (cmd == "\\threads") {
      if (rest.empty()) {
        std::printf("enumeration threads: %d%s\n",
                    optimizer.options().num_threads,
                    optimizer.options().num_threads == 0
                        ? " (hardware concurrency)"
                        : "");
        return;
      }
      char* end = nullptr;
      long n = std::strtol(rest.c_str(), &end, 10);
      if (end == rest.c_str() || *end != '\0' || n < 0 || n > 1024) {
        std::printf("usage: \\threads <0..1024>   (0 = hardware "
                    "concurrency)\n");
        return;
      }
      optimizer.options().num_threads = static_cast<int>(n);
      std::printf("enumeration threads set to %ld%s\n", n,
                  n == 0 ? " (hardware concurrency)" : "");
    } else if (cmd == "\\metrics") {
      if (rest == "prom") {
        std::printf("%s", metrics.TakeSnapshot().ToPrometheus().c_str());
        return;
      }
      std::printf("engine: %s\nglue:   %s\ntable:  %s\nenum:   %s\n"
                  "memo:   %s\n",
                  last.engine_metrics.ToString().c_str(),
                  last.glue_metrics.ToString().c_str(),
                  last.table_stats.ToString().c_str(),
                  last.enumerator_stats.ToString().c_str(),
                  last.memo_stats.ToString().c_str());
      if (last.degraded()) {
        std::printf("degraded: %s\n", last.degradation_reason.c_str());
      }
      std::printf("registry (cumulative):\n%s",
                  metrics.TakeSnapshot().ToText().c_str());
    } else if (cmd == "\\profile") {
      if (rest == "on") {
        profile = 1;
      } else if (rest == "off") {
        profile = 0;
      } else if (rest == "json") {
        if (last_profile.empty()) {
          std::printf("no profile recorded (\\profile on, then run a "
                      "query)\n");
        } else {
          std::printf("%s\n", last_profile.ToJson().c_str());
        }
        return;
      } else if (!rest.empty()) {
        std::printf("usage: \\profile [on|off|json]\n");
        return;
      }
      std::printf("profiling: %s\n",
                  profile == 1   ? "on"
                  : profile == 0 ? "off"
                                 : "environment default (STARBURST_PROFILE)");
    } else if (cmd == "\\workload") {
      if (rest == "clear") {
        workload.Clear();
        std::printf("workload repository cleared\n");
        return;
      }
      if (rest == "json") {
        std::printf("%s\n", workload.ToJson().c_str());
        return;
      }
      if (!rest.empty()) {
        std::printf("usage: \\workload [json|clear]\n");
        return;
      }
      if (workload.size() == 0) {
        std::printf("workload repository empty (\\profile on, then run "
                    "queries)\n");
        return;
      }
      std::printf("queries (%zu of %zu slots):\n", workload.size(),
                  workload.capacity());
      for (const WorkloadQueryRecord& r : workload.Records()) {
        std::printf("  %s runs=%lld rows=%lld time=%.0fus peak=%lldB "
                    "max_qerr=%.2f\n    %s\n",
                    r.digest.c_str(), static_cast<long long>(r.runs),
                    static_cast<long long>(r.last_rows), r.last_total_micros,
                    static_cast<long long>(r.last_peak_bytes), r.max_q_error,
                    r.normalized.c_str());
      }
      std::printf("table/predicate-shape feedback:\n");
      for (const TableShapeStats& s : workload.TableStats()) {
        std::printf("  %-8s %-40s n=%lld est=%.1f actual=%.1f "
                    "mean_qerr=%.2f max_qerr=%.2f\n",
                    s.table.c_str(), s.shape.c_str(),
                    static_cast<long long>(s.observations), s.est_rows,
                    s.actual_rows, s.mean_q_error(), s.max_q_error);
      }
    } else if (cmd == "\\budget") {
      OptimizerOptions& opts = optimizer.options();
      if (rest.empty()) {
        std::printf("deadline_ms=%lld plans=%lld bytes=%lld "
                    "(0 = unlimited)\n",
                    static_cast<long long>(opts.deadline_ms),
                    static_cast<long long>(opts.max_plans),
                    static_cast<long long>(opts.max_plan_table_bytes));
        return;
      }
      if (rest == "off") {
        opts.deadline_ms = opts.max_plans = opts.max_plan_table_bytes = 0;
        std::printf("budgets cleared\n");
        return;
      }
      std::istringstream spec(rest);
      std::string part;
      bool ok = true;
      while (spec >> part) {
        auto eq = part.find('=');
        char* end = nullptr;
        long long v = eq == std::string::npos
                          ? -1
                          : std::strtoll(part.c_str() + eq + 1, &end, 10);
        if (eq == std::string::npos || end == part.c_str() + eq + 1 ||
            *end != '\0' || v < 0) {
          ok = false;
          break;
        }
        std::string key = part.substr(0, eq);
        if (key == "deadline_ms") {
          opts.deadline_ms = v;
        } else if (key == "plans") {
          opts.max_plans = v;
        } else if (key == "bytes") {
          opts.max_plan_table_bytes = v;
        } else {
          ok = false;
          break;
        }
      }
      if (!ok) {
        std::printf("usage: \\budget [deadline_ms=N] [plans=N] [bytes=N] "
                    "| off\n");
        return;
      }
      std::printf("budgets: deadline_ms=%lld plans=%lld bytes=%lld\n",
                  static_cast<long long>(opts.deadline_ms),
                  static_cast<long long>(opts.max_plans),
                  static_cast<long long>(opts.max_plan_table_bytes));
    } else if (cmd == "\\memo") {
      OptimizerOptions& opts = optimizer.options();
      if (rest == "on") {
        opts.shared_memo = true;
        opts.cache_augmented = true;
      } else if (rest == "off") {
        opts.shared_memo = false;
        opts.cache_augmented = false;
      } else if (!rest.empty()) {
        std::printf("usage: \\memo [on|off]\n");
        return;
      }
      std::printf("shared memo %s, augmented-plan cache %s\n",
                  opts.shared_memo ? "on" : "off",
                  opts.cache_augmented ? "on" : "off");
    } else if (cmd == "\\vectorized") {
      if (rest == "on") {
        vectorized = 1;
      } else if (rest == "off") {
        vectorized = 0;
      } else if (!rest.empty()) {
        std::printf("usage: \\vectorized [on|off]\n");
        return;
      }
      std::printf("engine: %s\n",
                  vectorized == 1   ? "vectorized batch pipeline"
                  : vectorized == 0 ? "legacy row-at-a-time"
                                    : "environment default "
                                      "(STARBURST_VECTORIZED)");
    } else if (cmd == "\\kernels") {
      if (rest == "on") {
        typed_kernels = 1;
      } else if (rest == "off") {
        typed_kernels = 0;
      } else if (!rest.empty()) {
        std::printf("usage: \\kernels [on|off]\n");
        return;
      }
      std::printf("typed kernels: %s (fused=%lld fallback=%lld so far)\n",
                  typed_kernels == 1   ? "on"
                  : typed_kernels == 0 ? "off"
                                       : "environment default "
                                         "(STARBURST_TYPED_KERNELS)",
                  static_cast<long long>(metrics.counter("exec.kernel_rows")),
                  static_cast<long long>(
                      metrics.counter("exec.kernel_fallbacks")));
    } else if (cmd == "\\batchsize") {
      if (rest.empty()) {
        if (batch_size > 0) {
          std::printf("batch size: %d rows\n", batch_size);
        } else {
          std::printf("batch size: environment default "
                      "(STARBURST_BATCH_SIZE, fallback %d)\n",
                      kDefaultBatchSize);
        }
        return;
      }
      char* end = nullptr;
      long n = std::strtol(rest.c_str(), &end, 10);
      if (end == rest.c_str() || *end != '\0' || n < 0 || n > 1 << 20) {
        std::printf("usage: \\batchsize <0..1048576>   (0 = env default)\n");
        return;
      }
      batch_size = static_cast<int>(n);
      if (batch_size > 0) {
        std::printf("batch size set to %d rows\n", batch_size);
      } else {
        std::printf("batch size: environment default\n");
      }
    } else if (cmd == "\\execthreads") {
      if (rest.empty()) {
        if (exec_threads > 0) {
          std::printf("exec threads: %d\n", exec_threads);
        } else {
          std::printf("exec threads: environment default "
                      "(STARBURST_EXEC_THREADS, fallback 1)\n");
        }
        return;
      }
      char* end = nullptr;
      long n = std::strtol(rest.c_str(), &end, 10);
      if (end == rest.c_str() || *end != '\0' || n < 0 || n > 256) {
        std::printf("usage: \\execthreads <0..256>   (0 = env default)\n");
        return;
      }
      exec_threads = static_cast<int>(n);
      if (exec_threads > 0) {
        std::printf("exec threads set to %d\n", exec_threads);
      } else {
        std::printf("exec threads: environment default\n");
      }
    } else if (cmd == "\\execbudget") {
      auto show = [this]() {
        auto knob = [](long long v) {
          return v > 0 ? std::to_string(v)
                       : v == 0 ? std::string("env") : std::string("off");
        };
        std::printf("exec budget: deadline_ms=%s mem=%s (0 = env default "
                    "STARBURST_EXEC_DEADLINE_MS / STARBURST_EXEC_MEM_LIMIT)\n",
                    knob(exec_deadline_ms).c_str(),
                    knob(exec_mem_limit).c_str());
      };
      if (rest.empty()) {
        show();
        return;
      }
      if (rest == "off") {
        exec_deadline_ms = exec_mem_limit = -1;
        show();
        return;
      }
      std::istringstream spec(rest);
      std::string part;
      bool ok = true;
      while (spec >> part) {
        auto eq = part.find('=');
        char* end = nullptr;
        long long v = eq == std::string::npos
                          ? -1
                          : std::strtoll(part.c_str() + eq + 1, &end, 10);
        if (eq == std::string::npos || end == part.c_str() + eq + 1 ||
            *end != '\0' || v < 0) {
          ok = false;
          break;
        }
        std::string key = part.substr(0, eq);
        if (key == "deadline_ms") {
          exec_deadline_ms = v;
        } else if (key == "mem") {
          exec_mem_limit = v;
        } else {
          ok = false;
          break;
        }
      }
      if (!ok) {
        std::printf("usage: \\execbudget [deadline_ms=N] [mem=BYTES] | off "
                    "  (0 = env default)\n");
        return;
      }
      show();
    } else if (cmd == "\\faults") {
      if (rest.empty()) {
        std::printf("%s\n", FaultInjector::Global()->ToString().c_str());
        return;
      }
      Status st = FaultInjector::Global()->Configure(rest);
      std::printf("%s\n", st.ok() ? FaultInjector::Global()->ToString().c_str()
                                  : st.ToString().c_str());
    } else {
      std::printf("unknown command %s (try \\help)\n", cmd.c_str());
    }
  }
};

}  // namespace

int main() {
  Shell shell;
  std::printf("starburst shell — DEPT/EMP demo database loaded. \\help for "
              "commands.\n");
  std::string line;
  while (true) {
    std::printf("star> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line[0] == '\\') {
      shell.Command(line);
    } else {
      shell.RunSql(line, /*execute=*/true);
    }
  }
  std::printf("\n");
  return 0;
}
