// Distributed query optimization, R*-style (paper §4.2 and Figure 3).
//
// DEPT is stored at N.Y., EMP at the query site, and the user wants the
// answer delivered at L.A. The join-site STARs (PermutedJoin / RemoteJoin /
// SitedJoin) require the join at every candidate site; Glue injects SHIP
// veneers and the cost model's communication component decides.

#include <cstdio>

#include "catalog/synthetic.h"
#include "exec/evaluator.h"
#include "optimizer/optimizer.h"
#include "plan/explain.h"
#include "sql/parser.h"
#include "star/default_rules.h"
#include "storage/datagen.h"

using namespace starburst;

int main() {
  PaperCatalogOptions copts;
  copts.distributed = true;  // sites: query-site, N.Y. (DEPT), L.A.
  Catalog catalog = MakePaperCatalog(copts);

  const char* sql =
      "SELECT EMP.NAME, EMP.ADDRESS FROM DEPT, EMP "
      "WHERE DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO "
      "ORDER BY EMP.NAME AT SITE 'L.A.'";
  Query query = ParseSql(catalog, sql).ValueOrDie();
  std::printf("Query: %s\n", query.ToString().c_str());
  std::printf("DEPT lives at %s, EMP at %s, result required at %s.\n\n",
              catalog.site_name(query.table_of(0).site).c_str(),
              catalog.site_name(query.table_of(1).site).c_str(),
              catalog.site_name(*query.required_site()).c_str());

  Optimizer optimizer(DefaultRuleSet());
  OptimizeResult result = optimizer.Optimize(query).ValueOrDie();

  Cost c = result.best->props.cost();
  std::printf("Chosen plan (io=%.1f cpu=%.1f comm=%.1f, total %.1f):\n%s\n",
              c.io, c.cpu, c.comm, result.total_cost,
              ExplainPlan(*result.best, query).c_str());

  std::printf("Join-site alternatives were generated for every site in "
              "sigma; the plan table kept %lld plans across %lld buckets.\n\n",
              static_cast<long long>(result.plans_in_table),
              static_cast<long long>(result.table_stats.kept));

  // Execute: SHIP is a costed no-op in the in-memory simulation, so the
  // same evaluator runs distributed plans.
  Database db(catalog);
  if (auto st = PopulatePaperDatabase(&db, 1, 0.02); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  ResultSet rs = ExecutePlan(db, query, result.best).ValueOrDie();
  ResultSet shown = ProjectResult(rs, query.select_list()).ValueOrDie();
  std::printf("Result (%zu rows, delivered 'at L.A.'):\n%s", shown.rows.size(),
              FormatResult(shown, query, 8).c_str());

  // What-if: make communication 100x more expensive — the optimizer reacts
  // by re-placing work (semijoin-style reductions would go here; see
  // DESIGN.md future work).
  OptimizerOptions expensive;
  expensive.cost_params.msg_cost *= 100.0;
  expensive.cost_params.byte_cost *= 100.0;
  Optimizer pricey(DefaultRuleSet(), expensive);
  OptimizeResult r2 = pricey.Optimize(query).ValueOrDie();
  Cost c2 = r2.best->props.cost();
  std::printf("\nWith 100x communication cost the chosen plan ships %.0f "
              "comm-units (was %.0f):\n%s",
              c2.comm, c.comm, ExplainPlan(*r2.best, query).c_str());
  return 0;
}
