// Tests for plan rendering: ExplainPlan's tree output and PlanSignature's
// structural identity (the baseline's duplicate detector depends on the
// latter distinguishing everything that matters and nothing that doesn't).

#include <gtest/gtest.h>

#include "catalog/synthetic.h"
#include "plan/explain.h"
#include "sql/parser.h"
#include "test_util.h"

namespace starburst {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest()
      : catalog_(MakePaperCatalog()),
        query_(ParseSql(catalog_,
                        "SELECT EMP.NAME FROM DEPT, EMP WHERE "
                        "DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO")
                   .ValueOrDie()),
        harness_(query_, DefaultRuleSet()) {}

  PlanPtr DeptScan(PredSet preds) {
    OpArgs args;
    args.Set(arg::kQuantifier, int64_t{0});
    args.Set(arg::kCols, std::vector<ColumnRef>{ColumnRef{0, 0},
                                                ColumnRef{0, 1}});
    args.Set(arg::kPreds, preds);
    return harness_.factory()
        .Make(op::kAccess, flavor::kHeap, {}, std::move(args))
        .ValueOrDie();
  }

  Catalog catalog_;
  Query query_;
  EngineHarness harness_;
};

TEST_F(ExplainTest, TreeShowsOperatorsArgsAndProperties) {
  OpArgs sort_args;
  sort_args.Set(arg::kOrder, std::vector<ColumnRef>{ColumnRef{0, 0}});
  PlanPtr plan = harness_.factory()
                     .Make(op::kSort, "", {DeptScan(PredSet::Single(0))},
                           std::move(sort_args))
                     .ValueOrDie();
  std::string text = ExplainPlan(*plan, query_);
  EXPECT_NE(text.find("SORT order={DEPT.DNO}"), std::string::npos) << text;
  EXPECT_NE(text.find("ACCESS(heap) DEPT"), std::string::npos);
  EXPECT_NE(text.find("DEPT.MGR = 'Haas'"), std::string::npos);
  EXPECT_NE(text.find("card="), std::string::npos);
  // Child is indented under parent.
  EXPECT_LT(text.find("SORT"), text.find("ACCESS"));

  ExplainOptions bare;
  bare.show_properties = false;
  bare.show_args = false;
  std::string short_text = ExplainPlan(*plan, query_, bare);
  EXPECT_EQ(short_text.find("card="), std::string::npos);
  EXPECT_EQ(short_text.find("cols="), std::string::npos);
}

TEST_F(ExplainTest, SignatureDistinguishesWhatMatters) {
  PlanPtr with_pred = DeptScan(PredSet::Single(0));
  PlanPtr without_pred = DeptScan(PredSet{});
  EXPECT_NE(PlanSignature(*with_pred), PlanSignature(*without_pred));

  // Same construction twice -> same signature (duplicate detection).
  EXPECT_EQ(PlanSignature(*with_pred),
            PlanSignature(*DeptScan(PredSet::Single(0))));

  OpArgs sort_a;
  sort_a.Set(arg::kOrder, std::vector<ColumnRef>{ColumnRef{0, 0}});
  OpArgs sort_b;
  sort_b.Set(arg::kOrder, std::vector<ColumnRef>{ColumnRef{0, 1}});
  PlanPtr sorted_a = harness_.factory()
                         .Make(op::kSort, "", {with_pred}, std::move(sort_a))
                         .ValueOrDie();
  PlanPtr sorted_b = harness_.factory()
                         .Make(op::kSort, "", {with_pred}, std::move(sort_b))
                         .ValueOrDie();
  EXPECT_NE(PlanSignature(*sorted_a), PlanSignature(*sorted_b));
}

TEST_F(ExplainTest, CountNodesCountsSharedSubplansOnce) {
  PlanPtr scan = DeptScan(PredSet{});
  OpArgs args;
  args.Set(arg::kJoinPreds, PredSet{});
  args.Set(arg::kResidualPreds, PredSet{});
  // A degenerate shape sharing `scan` twice is not constructible through
  // JOIN (overlap check), so test via FILTER chains.
  OpArgs f1;
  f1.Set(arg::kPreds, PredSet::Single(0));
  PlanPtr a = harness_.factory()
                  .Make(op::kFilter, "", {scan}, std::move(f1))
                  .ValueOrDie();
  EXPECT_EQ(scan->CountNodes(), 1);
  EXPECT_EQ(a->CountNodes(), 2);
}

}  // namespace
}  // namespace starburst
